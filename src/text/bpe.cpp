#include "text/bpe.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "vlog/fragment.hpp"

namespace vsd::text {

namespace {

std::uint64_t pair_key(int a, int b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

Tokenizer Tokenizer::byte_fallback() {
  Tokenizer t;
  t.vocab_.resize(kNumSpecials);
  t.vocab_[kFrag] = std::string(vlog::kFragMarker);
  for (int b = 0; b < 256; ++b) {
    t.vocab_.push_back(std::string(1, static_cast<char>(b)));
  }
  return t;
}

Tokenizer Tokenizer::train(const std::vector<std::string>& corpus, Config config) {
  Tokenizer t = byte_fallback();
  check(config.vocab_size >= t.vocab_size(),
        "vocab_size smaller than specials + bytes");

  // Tokenise the corpus at byte level, splitting out special tokens so
  // merges never cross a [FRAG] boundary.
  std::vector<std::vector<int>> seqs;
  seqs.reserve(corpus.size());
  for (const std::string& doc : corpus) {
    seqs.push_back(t.encode(doc));
  }

  while (t.vocab_size() < config.vocab_size) {
    // Count adjacent pairs (skipping specials).
    std::unordered_map<std::uint64_t, int> counts;
    for (const auto& seq : seqs) {
      for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
        if (seq[i] < kNumSpecials || seq[i + 1] < kNumSpecials) continue;
        ++counts[pair_key(seq[i], seq[i + 1])];
      }
    }
    std::uint64_t best_key = 0;
    int best_count = 1;  // require frequency >= 2
    for (const auto& [key, count] : counts) {
      if (count > best_count ||
          (count == best_count && best_count > 1 && key < best_key)) {
        best_key = key;
        best_count = count;
      }
    }
    if (best_count < 2) break;

    const int left = static_cast<int>(best_key >> 32);
    const int right = static_cast<int>(best_key & 0xFFFFFFFFu);
    const int merged = t.vocab_size();
    t.vocab_.push_back(t.vocab_[static_cast<std::size_t>(left)] +
                       t.vocab_[static_cast<std::size_t>(right)]);
    t.merges_[best_key] = merged;

    // Apply the merge in place.
    for (auto& seq : seqs) {
      std::size_t w = 0;
      for (std::size_t r = 0; r < seq.size(); ++r) {
        if (r + 1 < seq.size() && seq[r] == left && seq[r + 1] == right) {
          seq[w++] = merged;
          ++r;
        } else {
          seq[w++] = seq[r];
        }
      }
      seq.resize(w);
    }
  }
  return t;
}

std::vector<int> Tokenizer::encode_bytes(std::string_view piece) const {
  std::vector<int> ids;
  ids.reserve(piece.size());
  for (const char c : piece) {
    ids.push_back(kNumSpecials + static_cast<unsigned char>(c));
  }
  // Apply merges greedily by rank (lowest merged id first), GPT-2 style.
  while (ids.size() >= 2) {
    int best_rank = -1;
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      const auto it = merges_.find(pair_key(ids[i], ids[i + 1]));
      if (it == merges_.end()) continue;
      if (best_rank < 0 || it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank < 0) break;
    ids[best_pos] = best_rank;
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }
  return ids;
}

std::vector<int> Tokenizer::encode(std::string_view text, bool add_bos,
                                   bool add_eos) const {
  std::vector<int> out;
  if (add_bos) out.push_back(kBos);
  const std::string_view marker = vlog::kFragMarker;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t hit = text.find(marker, pos);
    const std::size_t end = hit == std::string_view::npos ? text.size() : hit;
    if (end > pos) {
      std::vector<int> ids = encode_bytes(text.substr(pos, end - pos));
      out.insert(out.end(), ids.begin(), ids.end());
    }
    if (hit == std::string_view::npos) break;
    out.push_back(kFrag);
    pos = hit + marker.size();
  }
  if (add_eos) out.push_back(kEos);
  return out;
}

std::string Tokenizer::decode(std::span<const int> ids, bool keep_special) const {
  std::string out;
  for (const int id : ids) {
    if (id < 0 || id >= vocab_size()) continue;
    if (is_special(id)) {
      if (keep_special && id == kFrag) out += vocab_[kFrag];
      continue;
    }
    out += vocab_[static_cast<std::size_t>(id)];
  }
  return out;
}

const std::string& Tokenizer::token_text(int id) const {
  check(id >= 0 && id < vocab_size(), "token id out of range");
  return vocab_[static_cast<std::size_t>(id)];
}

std::string Tokenizer::serialize() const {
  std::ostringstream out;
  out << "vsd-bpe-v1\n" << vocab_.size() << "\n";
  // Only merges need persisting beyond the fixed prefix; store as triples.
  std::vector<std::pair<std::uint64_t, int>> merges(merges_.begin(), merges_.end());
  std::sort(merges.begin(), merges.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  out << merges.size() << "\n";
  for (const auto& [key, id] : merges) {
    out << (key >> 32) << " " << (key & 0xFFFFFFFFu) << " " << id << "\n";
  }
  return out.str();
}

Tokenizer Tokenizer::deserialize(std::string_view data) {
  std::istringstream in{std::string(data)};
  std::string magic;
  in >> magic;
  check(magic == "vsd-bpe-v1", "bad tokenizer serialization");
  std::size_t vocab_size = 0;
  std::size_t merge_count = 0;
  in >> vocab_size >> merge_count;
  Tokenizer t = byte_fallback();
  for (std::size_t i = 0; i < merge_count; ++i) {
    int left = 0;
    int right = 0;
    int id = 0;
    in >> left >> right >> id;
    check(static_cast<std::size_t>(id) == t.vocab_.size(), "bad merge order");
    t.vocab_.push_back(t.vocab_[static_cast<std::size_t>(left)] +
                       t.vocab_[static_cast<std::size_t>(right)]);
    t.merges_[pair_key(left, right)] = id;
  }
  check(t.vocab_.size() == vocab_size, "tokenizer size mismatch");
  return t;
}

}  // namespace vsd::text
