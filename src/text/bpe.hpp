// Trainable byte-level BPE tokenizer with atomic special tokens.
//
// This is the reproduction's analogue of the base models' tokenizers.  The
// [FRAG] marker (vsd::vlog::kFragMarker) is registered as a special token
// so the syntax-enriched labels of vsd::spec can place fragment boundaries
// as single vocabulary items, exactly as the paper requires.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vsd::text {

class Tokenizer {
 public:
  struct Config {
    int vocab_size = 512;  // includes specials and the 256 byte tokens
  };

  /// Fixed special-token ids.
  static constexpr int kPad = 0;
  static constexpr int kBos = 1;
  static constexpr int kEos = 2;
  static constexpr int kFrag = 3;
  static constexpr int kIgnore = 4;  // label-masking id ([IGNORE] in the paper)
  static constexpr int kNumSpecials = 5;

  /// Trains BPE merges on `corpus` until `config.vocab_size` is reached
  /// (or no pair occurs at least twice).
  static Tokenizer train(const std::vector<std::string>& corpus, Config config);

  /// Byte-only tokenizer (no merges); useful for tests.
  static Tokenizer byte_fallback();

  std::vector<int> encode(std::string_view text, bool add_bos = false,
                          bool add_eos = false) const;

  /// Inverse of encode.  Special tokens are dropped unless `keep_special`;
  /// [FRAG] decodes to its literal text when kept.
  std::string decode(std::span<const int> ids, bool keep_special = false) const;

  int vocab_size() const { return static_cast<int>(vocab_.size()); }

  /// The byte string this id expands to ("" for [PAD]/[BOS]/[EOS]/[IGNORE],
  /// "[FRAG]" for kFrag).
  const std::string& token_text(int id) const;

  bool is_special(int id) const { return id < kNumSpecials; }

  /// Serialisation for checkpointing.
  std::string serialize() const;
  static Tokenizer deserialize(std::string_view data);

 private:
  Tokenizer() = default;

  std::vector<int> encode_bytes(std::string_view piece) const;

  // vocab_[id] = byte expansion.  ids: specials, then 256 bytes, then merges.
  std::vector<std::string> vocab_;
  // merge ranks: (left id, right id) -> merged id, applied lowest-id first.
  std::unordered_map<std::uint64_t, int> merges_;
};

}  // namespace vsd::text
