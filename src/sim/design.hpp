// Elaborated design: the flattened runtime representation consumed by the
// event-driven simulator.
//
// Elaboration flattens the module hierarchy (instances become prefixed
// signal names, generate-for loops are unrolled, parameters are folded)
// into a single list of signals plus a single list of processes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vlog/ast.hpp"
#include "sim/value.hpp"

namespace vsd::sim {

/// One elaborated net/variable (possibly a memory array).
struct Signal {
  std::string name;   // flattened hierarchical name: "u0.q"
  int width = 1;
  bool is_signed = false;
  int msb = 0;        // declared bounds; msb may be < lsb
  int lsb = 0;
  bool is_reg = false;
  bool is_const = false;  // parameter/genvar pseudo-signal: value is fixed
  Value value;        // current value (non-array signals)

  // Memory arrays: reg [7:0] m [0:15]
  bool is_array = false;
  int array_lo = 0;
  int array_hi = -1;
  std::vector<Value> words;

  /// Maps a declared bit index (e.g. 5 in x[5]) to a physical lsb-offset.
  /// Returns -1 when out of range.
  int bit_offset(std::int64_t declared_index) const {
    if (msb >= lsb) {
      if (declared_index < lsb || declared_index > msb) return -1;
      return static_cast<int>(declared_index - lsb);
    }
    if (declared_index < msb || declared_index > lsb) return -1;
    return static_cast<int>(lsb - declared_index);
  }
};

enum class ProcKind : std::uint8_t { Initial, Always, ContAssign };

/// An elaborated process.  For ContAssign, `lhs`/`rhs` point into the AST
/// and `sensitivity` lists the signals whose change re-triggers evaluation.
struct Process {
  ProcKind kind = ProcKind::Initial;
  const vlog::Stmt* body = nullptr;        // Initial / Always
  const vlog::Expr* lhs = nullptr;         // ContAssign
  const vlog::Expr* rhs = nullptr;         // ContAssign
  std::string scope;                        // hierarchical prefix ("u0.")
  std::vector<int> sensitivity;             // ContAssign static sensitivity
};

/// One formal-to-actual port connection of an elaborated instance, kept for
/// hierarchical analysis (vlog/dataflow.hpp's port-contract passes).  The
/// simulator itself only needs the synthesized ContAssign processes; these
/// records preserve what those assigns erase — which port each one came
/// from, its direction, and the connection's declared shapes.  Unconnected
/// ports (explicit `.p()` or simply omitted) are recorded with a null
/// `actual` so dangling-input checks see them.
struct PortBinding {
  std::string instance;     // flat instance path without trailing dot: "u0"
  std::string module_name;  // instantiated module
  std::string port;         // formal port name
  vlog::PortDir dir = vlog::PortDir::Input;
  int formal_signal = -1;   // flat signal id of the child-side port signal
  int formal_width = 0;
  const vlog::Expr* actual = nullptr;  // parent-scope expression, nullable
  int actual_width = 0;     // best-effort inferred width; 0 when unknown
  int connect_process = -1; // index of the synthesized ContAssign, -1 if none
  int line = 0;             // instantiation line
};

/// A module-scope user function/task visible to the interpreter.
struct RoutineDef {
  const vlog::FunctionItem* function = nullptr;
  const vlog::TaskItem* task = nullptr;
  std::string scope;
};

/// Fully elaborated design.
struct Design {
  std::vector<Signal> signals;
  std::unordered_map<std::string, int> signal_index;
  std::vector<Process> processes;
  std::unordered_map<std::string, RoutineDef> routines;  // scoped name
  std::vector<int> top_inputs;   // signal ids of top-level input ports
  std::vector<int> top_outputs;  // signal ids of top-level output ports
  std::vector<PortBinding> port_bindings;  // every elaborated instance port

  /// Synthetic expressions created during elaboration (port-connection
  /// identifiers); owned here so Process pointers stay valid.
  std::vector<std::unique_ptr<vlog::Expr>> owned_exprs;

  int find(const std::string& name) const {
    const auto it = signal_index.find(name);
    return it == signal_index.end() ? -1 : it->second;
  }
};

/// Result of elaboration.  The design borrows AST nodes from `unit`, which
/// is therefore owned (shared) by the result.
struct ElabResult {
  std::shared_ptr<const vlog::SourceUnit> unit;
  std::unique_ptr<Design> design;
  bool ok = false;
  std::string error;
};

/// Elaborates `top` (by name) from `unit`.  `param_overrides` override the
/// top module's parameters.
ElabResult elaborate(std::shared_ptr<const vlog::SourceUnit> unit,
                     const std::string& top,
                     const std::vector<std::pair<std::string, std::int64_t>>&
                         param_overrides = {});

}  // namespace vsd::sim
