#include "sim/value.hpp"

#include <algorithm>

namespace vsd::sim {

char logic_char(Logic l) {
  switch (l) {
    case Logic::Zero: return '0';
    case Logic::One: return '1';
    case Logic::X: return 'x';
    case Logic::Z: return 'z';
  }
  return '?';
}

Logic logic_from_char(char c) {
  switch (c) {
    case '0': return Logic::Zero;
    case '1': return Logic::One;
    case 'x': case 'X': return Logic::X;
    case 'z': case 'Z': return Logic::Z;
    default: throw Error(std::string("bad logic digit '") + c + "'");
  }
}

Value::Value(int width, Logic fill, bool is_signed) : signed_(is_signed) {
  check(width >= 1, "Value width must be >= 1");
  bits_.assign(static_cast<std::size_t>(width), fill);
}

Value Value::from_uint(std::uint64_t v, int width, bool is_signed) {
  Value out(width, Logic::Zero, is_signed);
  for (int i = 0; i < width && i < 64; ++i) {
    out.bits_[static_cast<std::size_t>(i)] =
        ((v >> i) & 1u) != 0 ? Logic::One : Logic::Zero;
  }
  return out;
}

Value Value::from_int(std::int64_t v, int width) {
  Value out(width, Logic::Zero, /*is_signed=*/true);
  for (int i = 0; i < width; ++i) {
    const std::int64_t shifted = i < 64 ? (v >> i) : (v >> 63);
    out.bits_[static_cast<std::size_t>(i)] =
        (shifted & 1) != 0 ? Logic::One : Logic::Zero;
  }
  return out;
}

Value Value::from_bits_msb_first(std::string_view bits, bool is_signed) {
  check(!bits.empty(), "empty bit string");
  Value out(static_cast<int>(bits.size()), Logic::X, is_signed);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out.bits_[bits.size() - 1 - i] = logic_from_char(bits[i]);
  }
  return out;
}

bool Value::has_xz() const {
  return std::any_of(bits_.begin(), bits_.end(), [](Logic l) {
    return l == Logic::X || l == Logic::Z;
  });
}

bool Value::is_all_x() const {
  return std::all_of(bits_.begin(), bits_.end(),
                     [](Logic l) { return l == Logic::X; });
}

bool Value::is_true(bool* unknown) const {
  bool saw_one = false;
  bool saw_xz = false;
  for (const Logic l : bits_) {
    if (l == Logic::One) saw_one = true;
    if (l == Logic::X || l == Logic::Z) saw_xz = true;
  }
  if (unknown != nullptr) *unknown = !saw_one && saw_xz;
  return saw_one;
}

std::uint64_t Value::to_uint() const {
  std::uint64_t v = 0;
  const int n = std::min(width(), 64);
  for (int i = 0; i < n; ++i) {
    if (bits_[static_cast<std::size_t>(i)] == Logic::One) v |= 1ull << i;
  }
  return v;
}

std::int64_t Value::to_int() const {
  std::uint64_t v = to_uint();
  const int w = std::min(width(), 64);
  if (signed_ && w < 64 && bits_[static_cast<std::size_t>(w - 1)] == Logic::One) {
    v |= ~((1ull << w) - 1);  // sign-extend
  }
  return static_cast<std::int64_t>(v);
}

std::string Value::to_bit_string() const {
  std::string s;
  s.reserve(bits_.size());
  for (auto it = bits_.rbegin(); it != bits_.rend(); ++it) {
    s.push_back(logic_char(*it));
  }
  return s;
}

std::string Value::to_literal() const {
  return std::to_string(width()) + "'b" + to_bit_string();
}

std::string Value::to_decimal_string() const {
  if (has_xz()) return "x";
  // Repeated divide-by-10 over the bit vector (supports >64-bit values).
  std::vector<int> digits(bits_.size());
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    digits[bits_.size() - 1 - i] = bits_[i] == Logic::One ? 1 : 0;
  }
  std::string out;
  bool all_zero = false;
  while (!all_zero) {
    int rem = 0;
    all_zero = true;
    for (int& d : digits) {
      const int cur = rem * 2 + d;
      d = cur / 10;
      rem = cur % 10;
      if (d != 0) all_zero = false;
    }
    out.push_back(static_cast<char>('0' + rem));
    if (all_zero) break;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

Value Value::resized(int width) const {
  check(width >= 1, "resize width must be >= 1");
  Value out(width, Logic::Zero, signed_);
  const int copy = std::min(width, this->width());
  for (int i = 0; i < copy; ++i) out.bits_[static_cast<std::size_t>(i)] = bits_[static_cast<std::size_t>(i)];
  if (width > this->width()) {
    const Logic msb = bits_.back();
    Logic ext = Logic::Zero;
    if (msb == Logic::X || msb == Logic::Z) ext = msb;
    else if (signed_) ext = msb;
    for (int i = this->width(); i < width; ++i) out.bits_[static_cast<std::size_t>(i)] = ext;
  }
  return out;
}

Value Value::binary_common(const Value& a, const Value& b, int width) {
  (void)a;
  (void)b;
  return Value(width, Logic::X, a.signed_ && b.signed_);
}

// --- arithmetic --------------------------------------------------------------

namespace {

bool both_known(const Value& a, const Value& b) {
  return !a.has_xz() && !b.has_xz();
}

// Full-width binary addition over known bits; `borrow_mode` selects subtract.
Value add_sub(const Value& a, const Value& b, bool subtract) {
  const int w = max_width(a, b);
  const bool s = a.is_signed() && b.is_signed();
  if (a.has_xz() || b.has_xz()) return Value(w, Logic::X, s);
  Value av = a.resized(w);
  Value bv = b.resized(w);
  Value out(w, Logic::Zero, s);
  int carry = subtract ? 1 : 0;
  for (int i = 0; i < w; ++i) {
    const int ab = av.bit(i) == Logic::One ? 1 : 0;
    int bb = bv.bit(i) == Logic::One ? 1 : 0;
    if (subtract) bb = 1 - bb;
    const int sum = ab + bb + carry;
    out.set_bit(i, (sum & 1) != 0 ? Logic::One : Logic::Zero);
    carry = sum >> 1;
  }
  return out;
}

}  // namespace

Value Value::add(const Value& a, const Value& b) { return add_sub(a, b, false); }
Value Value::sub(const Value& a, const Value& b) { return add_sub(a, b, true); }

Value Value::mul(const Value& a, const Value& b) {
  const int w = max_width(a, b);
  const bool s = a.signed_ && b.signed_;
  if (!both_known(a, b)) return Value(w, Logic::X, s);
  // Schoolbook over bit vectors (handles >64-bit widths).
  Value av = a.resized(w);
  Value acc(w, Logic::Zero, s);
  for (int i = 0; i < w; ++i) {
    if (b.width() > i ? b.bit(i) == Logic::One : false) {
      acc = add_sub(acc, shl(av, Value::from_uint(static_cast<std::uint64_t>(i), 32)), false);
    }
  }
  acc.set_signed(s);
  return acc;
}

Value Value::div(const Value& a, const Value& b) {
  const int w = max_width(a, b);
  const bool s = a.signed_ && b.signed_;
  if (!both_known(a, b)) return Value(w, Logic::X, s);
  if (w <= 64) {
    if (s) {
      const std::int64_t bb = b.resized(w).to_int();
      if (bb == 0) return Value(w, Logic::X, s);
      return from_int(a.resized(w).to_int() / bb, w);
    }
    const std::uint64_t bb = b.to_uint();
    if (bb == 0) return Value(w, Logic::X, s);
    return from_uint(a.to_uint() / bb, w, s);
  }
  return Value(w, Logic::X, s);  // >64-bit division unsupported; yields x
}

Value Value::mod(const Value& a, const Value& b) {
  const int w = max_width(a, b);
  const bool s = a.signed_ && b.signed_;
  if (!both_known(a, b)) return Value(w, Logic::X, s);
  if (w <= 64) {
    if (s) {
      const std::int64_t bb = b.resized(w).to_int();
      if (bb == 0) return Value(w, Logic::X, s);
      return from_int(a.resized(w).to_int() % bb, w);
    }
    const std::uint64_t bb = b.to_uint();
    if (bb == 0) return Value(w, Logic::X, s);
    return from_uint(a.to_uint() % bb, w, s);
  }
  return Value(w, Logic::X, s);
}

Value Value::pow(const Value& a, const Value& b) {
  const int w = a.width();
  if (!both_known(a, b)) return Value(w, Logic::X, a.signed_);
  std::uint64_t base = a.to_uint();
  std::uint64_t exp = b.to_uint();
  std::uint64_t out = 1;
  while (exp > 0) {
    if ((exp & 1) != 0) out *= base;
    base *= base;
    exp >>= 1;
  }
  return from_uint(out, w, a.signed_);
}

Value Value::negate(const Value& a) {
  return sub(from_uint(0, a.width(), a.signed_), a);
}

// --- bitwise -------------------------------------------------------------------

namespace {

Logic and3(Logic a, Logic b) {
  if (a == Logic::Zero || b == Logic::Zero) return Logic::Zero;
  if (a == Logic::One && b == Logic::One) return Logic::One;
  return Logic::X;
}

Logic or3(Logic a, Logic b) {
  if (a == Logic::One || b == Logic::One) return Logic::One;
  if (a == Logic::Zero && b == Logic::Zero) return Logic::Zero;
  return Logic::X;
}

Logic xor3(Logic a, Logic b) {
  if (a == Logic::X || a == Logic::Z || b == Logic::X || b == Logic::Z) {
    return Logic::X;
  }
  return a == b ? Logic::Zero : Logic::One;
}

Logic not3(Logic a) {
  if (a == Logic::Zero) return Logic::One;
  if (a == Logic::One) return Logic::Zero;
  return Logic::X;
}

template <typename F>
Value bitwise(const Value& a, const Value& b, F f) {
  const int w = max_width(a, b);
  Value av = a.resized(w);
  Value bv = b.resized(w);
  Value out(w, Logic::X, a.is_signed() && b.is_signed());
  for (int i = 0; i < w; ++i) out.set_bit(i, f(av.bit(i), bv.bit(i)));
  return out;
}

}  // namespace

Value Value::bit_and(const Value& a, const Value& b) { return bitwise(a, b, and3); }
Value Value::bit_or(const Value& a, const Value& b) { return bitwise(a, b, or3); }
Value Value::bit_xor(const Value& a, const Value& b) { return bitwise(a, b, xor3); }
Value Value::bit_xnor(const Value& a, const Value& b) {
  return bitwise(a, b, [](Logic x, Logic y) { return not3(xor3(x, y)); });
}

Value Value::bit_not(const Value& a) {
  Value out(a.width(), Logic::X, a.signed_);
  for (int i = 0; i < a.width(); ++i) out.set_bit(i, not3(a.bit(i)));
  return out;
}

// --- reductions -----------------------------------------------------------------

Value Value::reduce_and(const Value& a) {
  Logic acc = Logic::One;
  for (int i = 0; i < a.width(); ++i) acc = and3(acc, a.bit(i));
  Value out(1, acc);
  return out;
}

Value Value::reduce_or(const Value& a) {
  Logic acc = Logic::Zero;
  for (int i = 0; i < a.width(); ++i) acc = or3(acc, a.bit(i));
  Value out(1, acc);
  return out;
}

Value Value::reduce_xor(const Value& a) {
  Logic acc = Logic::Zero;
  for (int i = 0; i < a.width(); ++i) acc = xor3(acc, a.bit(i));
  Value out(1, acc);
  return out;
}

// --- logical --------------------------------------------------------------------

namespace {

Logic truthiness(const Value& v) {
  bool unknown = false;
  const bool t = v.is_true(&unknown);
  if (t) return Logic::One;
  return unknown ? Logic::X : Logic::Zero;
}

}  // namespace

Value Value::logic_and(const Value& a, const Value& b) {
  return Value(1, and3(truthiness(a), truthiness(b)));
}

Value Value::logic_or(const Value& a, const Value& b) {
  return Value(1, or3(truthiness(a), truthiness(b)));
}

Value Value::logic_not(const Value& a) {
  return Value(1, not3(truthiness(a)));
}

// --- comparison -----------------------------------------------------------------

Value Value::eq(const Value& a, const Value& b) {
  const int w = max_width(a, b);
  Value av = a.resized(w);
  Value bv = b.resized(w);
  if (av.has_xz() || bv.has_xz()) return Value(1, Logic::X);
  for (int i = 0; i < w; ++i) {
    if (av.bit(i) != bv.bit(i)) return Value(1, Logic::Zero);
  }
  return Value(1, Logic::One);
}

Value Value::neq(const Value& a, const Value& b) { return logic_not(eq(a, b)); }

Value Value::case_eq(const Value& a, const Value& b) {
  const int w = max_width(a, b);
  Value av = a.resized(w);
  Value bv = b.resized(w);
  for (int i = 0; i < w; ++i) {
    if (av.bit(i) != bv.bit(i)) return Value(1, Logic::Zero);
  }
  return Value(1, Logic::One);
}

Value Value::case_neq(const Value& a, const Value& b) {
  return case_eq(a, b).bit(0) == Logic::One ? Value(1, Logic::Zero)
                                            : Value(1, Logic::One);
}

namespace {

// -1: a < b, 0: equal, +1: a > b, 2: unknown
int compare(const Value& a, const Value& b) {
  const int w = max_width(a, b);
  Value av = a.resized(w);
  Value bv = b.resized(w);
  if (av.has_xz() || bv.has_xz()) return 2;
  const bool s = a.is_signed() && b.is_signed();
  if (s) {
    const bool an = av.bit(w - 1) == Logic::One;
    const bool bn = bv.bit(w - 1) == Logic::One;
    if (an != bn) return an ? -1 : 1;
  }
  for (int i = w - 1; i >= 0; --i) {
    if (av.bit(i) != bv.bit(i)) return av.bit(i) == Logic::One ? 1 : -1;
  }
  return 0;
}

Value cmp_result(int c, bool lt_true, bool eq_true, bool gt_true) {
  if (c == 2) return Value(1, Logic::X);
  const bool r = (c < 0 && lt_true) || (c == 0 && eq_true) || (c > 0 && gt_true);
  return Value(1, r ? Logic::One : Logic::Zero);
}

}  // namespace

Value Value::lt(const Value& a, const Value& b) { return cmp_result(compare(a, b), true, false, false); }
Value Value::le(const Value& a, const Value& b) { return cmp_result(compare(a, b), true, true, false); }
Value Value::gt(const Value& a, const Value& b) { return cmp_result(compare(a, b), false, false, true); }
Value Value::ge(const Value& a, const Value& b) { return cmp_result(compare(a, b), false, true, true); }

// --- shifts ----------------------------------------------------------------------

Value Value::shl(const Value& a, const Value& amount) {
  if (amount.has_xz()) return Value(a.width(), Logic::X, a.signed_);
  const std::uint64_t n = amount.to_uint();
  Value out(a.width(), Logic::Zero, a.signed_);
  for (int i = 0; i < a.width(); ++i) {
    const std::uint64_t src = static_cast<std::uint64_t>(i);
    if (src >= n && static_cast<int>(src - n) < a.width()) {
      out.set_bit(i, a.bit(static_cast<int>(src - n)));
    }
  }
  return out;
}

Value Value::shr(const Value& a, const Value& amount) {
  if (amount.has_xz()) return Value(a.width(), Logic::X, a.signed_);
  const std::uint64_t n = amount.to_uint();
  Value out(a.width(), Logic::Zero, a.signed_);
  for (int i = 0; i < a.width(); ++i) {
    const std::uint64_t src = static_cast<std::uint64_t>(i) + n;
    if (src < static_cast<std::uint64_t>(a.width())) {
      out.set_bit(i, a.bit(static_cast<int>(src)));
    }
  }
  return out;
}

Value Value::ashr(const Value& a, const Value& amount) {
  if (!a.signed_) return shr(a, amount);
  if (amount.has_xz()) return Value(a.width(), Logic::X, a.signed_);
  const std::uint64_t n = amount.to_uint();
  const Logic sign = a.bit(a.width() - 1);
  Value out(a.width(), sign, a.signed_);
  for (int i = 0; i < a.width(); ++i) {
    const std::uint64_t src = static_cast<std::uint64_t>(i) + n;
    if (src < static_cast<std::uint64_t>(a.width())) {
      out.set_bit(i, a.bit(static_cast<int>(src)));
    }
  }
  return out;
}

// --- structure ---------------------------------------------------------------------

Value Value::concat(const std::vector<Value>& parts_msb_first) {
  int total = 0;
  for (const Value& p : parts_msb_first) total += p.width();
  check(total >= 1, "empty concatenation");
  Value out(total, Logic::X, false);
  int hi = total;
  for (const Value& p : parts_msb_first) {
    hi -= p.width();
    for (int i = 0; i < p.width(); ++i) out.set_bit(hi + i, p.bit(i));
  }
  return out;
}

Value Value::repl(int count, const Value& v) {
  check(count >= 1, "replication count must be >= 1");
  std::vector<Value> parts(static_cast<std::size_t>(count), v);
  return concat(parts);
}

Value Value::extract(int lo, int width) const {
  check(width >= 1, "extract width must be >= 1");
  Value out(width, Logic::X, false);
  for (int i = 0; i < width; ++i) {
    const int src = lo + i;
    if (src >= 0 && src < this->width()) out.set_bit(i, bit(src));
  }
  return out;
}

void Value::deposit(int lo, const Value& v) {
  for (int i = 0; i < v.width(); ++i) {
    const int dst = lo + i;
    if (dst >= 0 && dst < width()) set_bit(dst, v.bit(i));
  }
}

}  // namespace vsd::sim
