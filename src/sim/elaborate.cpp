// Elaboration: AST -> flattened runtime Design.
#include <algorithm>
#include <set>

#include "sim/design.hpp"
#include "sim/elab_detail.hpp"
#include "vlog/const_eval.hpp"
#include "common/error.hpp"

namespace vsd::sim {

using vlog::Expr;
using vlog::ExprKind;
using vlog::ItemKind;
using vlog::Module;
using vlog::ModuleItem;
using vlog::NetType;
using vlog::PortDir;
using vlog::SourceUnit;

namespace detail {

std::optional<Value> const_eval(const Expr& e, const ParamEnv& env) {
  switch (e.kind) {
    case ExprKind::Number: {
      const auto& n = static_cast<const vlog::NumberExpr&>(e);
      if (n.is_real) {
        return Value::from_int(static_cast<std::int64_t>(n.real_value), 64);
      }
      return Value::from_bits_msb_first(n.bits, n.is_signed);
    }
    case ExprKind::Ident: {
      const auto& i = static_cast<const vlog::IdentExpr&>(e);
      if (i.path.size() != 1) return std::nullopt;
      const auto it = env.find(i.path[0]);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const vlog::UnaryExpr&>(e);
      auto v = const_eval(*u.operand, env);
      if (!v) return std::nullopt;
      switch (u.op) {
        case vlog::UnaryOp::Plus: return v;
        case vlog::UnaryOp::Minus: return Value::negate(*v);
        case vlog::UnaryOp::LogicNot: return Value::logic_not(*v);
        case vlog::UnaryOp::BitNot: return Value::bit_not(*v);
        case vlog::UnaryOp::ReduceAnd: return Value::reduce_and(*v);
        case vlog::UnaryOp::ReduceNand: return Value::bit_not(Value::reduce_and(*v));
        case vlog::UnaryOp::ReduceOr: return Value::reduce_or(*v);
        case vlog::UnaryOp::ReduceNor: return Value::bit_not(Value::reduce_or(*v));
        case vlog::UnaryOp::ReduceXor: return Value::reduce_xor(*v);
        case vlog::UnaryOp::ReduceXnor: return Value::bit_not(Value::reduce_xor(*v));
      }
      return std::nullopt;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const vlog::BinaryExpr&>(e);
      auto l = const_eval(*b.lhs, env);
      auto r = const_eval(*b.rhs, env);
      if (!l || !r) return std::nullopt;
      const int w = max_width(*l, *r);
      switch (b.op) {
        case vlog::BinaryOp::Add: return Value::add(l->resized(w), r->resized(w));
        case vlog::BinaryOp::Sub: return Value::sub(l->resized(w), r->resized(w));
        case vlog::BinaryOp::Mul: return Value::mul(*l, *r);
        case vlog::BinaryOp::Div: return Value::div(*l, *r);
        case vlog::BinaryOp::Mod: return Value::mod(*l, *r);
        case vlog::BinaryOp::Pow: return Value::pow(*l, *r);
        case vlog::BinaryOp::Eq: return Value::eq(*l, *r);
        case vlog::BinaryOp::Neq: return Value::neq(*l, *r);
        case vlog::BinaryOp::CaseEq: return Value::case_eq(*l, *r);
        case vlog::BinaryOp::CaseNeq: return Value::case_neq(*l, *r);
        case vlog::BinaryOp::Lt: return Value::lt(*l, *r);
        case vlog::BinaryOp::Le: return Value::le(*l, *r);
        case vlog::BinaryOp::Gt: return Value::gt(*l, *r);
        case vlog::BinaryOp::Ge: return Value::ge(*l, *r);
        case vlog::BinaryOp::LogicAnd: return Value::logic_and(*l, *r);
        case vlog::BinaryOp::LogicOr: return Value::logic_or(*l, *r);
        case vlog::BinaryOp::BitAnd: return Value::bit_and(*l, *r);
        case vlog::BinaryOp::BitOr: return Value::bit_or(*l, *r);
        case vlog::BinaryOp::BitXor: return Value::bit_xor(*l, *r);
        case vlog::BinaryOp::BitXnor: return Value::bit_xnor(*l, *r);
        case vlog::BinaryOp::Shl: return Value::shl(*l, *r);
        case vlog::BinaryOp::Shr: return Value::shr(*l, *r);
        case vlog::BinaryOp::AShl: return Value::shl(*l, *r);
        case vlog::BinaryOp::AShr: return Value::ashr(*l, *r);
      }
      return std::nullopt;
    }
    case ExprKind::Ternary: {
      const auto& t = static_cast<const vlog::TernaryExpr&>(e);
      auto c = const_eval(*t.cond, env);
      if (!c) return std::nullopt;
      bool unknown = false;
      const bool taken = c->is_true(&unknown);
      if (unknown) return std::nullopt;
      return const_eval(taken ? *t.then_expr : *t.else_expr, env);
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const vlog::CallExpr&>(e);
      if (c.is_system && c.callee == "$clog2" && c.args.size() == 1) {
        auto v = const_eval(*c.args[0], env);
        if (!v || v->has_xz()) return std::nullopt;
        std::uint64_t n = v->to_uint();
        int r = 0;
        if (n > 0) --n;
        while (n > 0) {
          ++r;
          n >>= 1;
        }
        return Value::from_uint(static_cast<std::uint64_t>(r), 32);
      }
      return std::nullopt;
    }
    case ExprKind::Concat: {
      const auto& cc = static_cast<const vlog::ConcatExpr&>(e);
      std::vector<Value> parts;
      for (const auto& p : cc.parts) {
        auto v = const_eval(*p, env);
        if (!v) return std::nullopt;
        parts.push_back(std::move(*v));
      }
      return Value::concat(parts);
    }
    case ExprKind::Repl: {
      const auto& r = static_cast<const vlog::ReplExpr&>(e);
      auto count = const_eval(*r.count, env);
      auto body = const_eval(*r.body, env);
      if (!count || !body || count->has_xz()) return std::nullopt;
      const auto n = static_cast<int>(count->to_uint());
      if (n < 1 || n > 1 << 16) return std::nullopt;
      return Value::repl(n, *body);
    }
    default:
      return std::nullopt;
  }
}

std::optional<std::int64_t> const_eval_int(const Expr& e, const ParamEnv& env) {
  auto v = const_eval(e, env);
  if (v && !v->has_xz()) return v->to_int();
  // Fall back to the shared plain-integer fold (vlog/const_eval.hpp) so both
  // front ends agree on what counts as a constant in width-free contexts
  // (ranges, generate bounds): anything lint's const_int folds, we fold.
  return vlog::fold_int(
      &e, [&env](const std::string& name) -> std::optional<std::int64_t> {
        const auto it = env.find(name);
        if (it == env.end() || it->second.has_xz()) return std::nullopt;
        return it->second.to_int();
      });
}

void collect_reads(const Expr* e, const ScopeResolver& resolve,
                   std::set<int>& out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case ExprKind::Ident: {
      const int id = resolve(static_cast<const vlog::IdentExpr&>(*e).full_name());
      if (id >= 0) out.insert(id);
      break;
    }
    case ExprKind::Select: {
      const auto& s = static_cast<const vlog::SelectExpr&>(*e);
      collect_reads(s.base.get(), resolve, out);
      collect_reads(s.index.get(), resolve, out);
      collect_reads(s.width.get(), resolve, out);
      break;
    }
    case ExprKind::Unary:
      collect_reads(static_cast<const vlog::UnaryExpr&>(*e).operand.get(), resolve, out);
      break;
    case ExprKind::Binary: {
      const auto& b = static_cast<const vlog::BinaryExpr&>(*e);
      collect_reads(b.lhs.get(), resolve, out);
      collect_reads(b.rhs.get(), resolve, out);
      break;
    }
    case ExprKind::Ternary: {
      const auto& t = static_cast<const vlog::TernaryExpr&>(*e);
      collect_reads(t.cond.get(), resolve, out);
      collect_reads(t.then_expr.get(), resolve, out);
      collect_reads(t.else_expr.get(), resolve, out);
      break;
    }
    case ExprKind::Concat:
      for (const auto& p : static_cast<const vlog::ConcatExpr&>(*e).parts) {
        collect_reads(p.get(), resolve, out);
      }
      break;
    case ExprKind::Repl: {
      const auto& r = static_cast<const vlog::ReplExpr&>(*e);
      collect_reads(r.count.get(), resolve, out);
      collect_reads(r.body.get(), resolve, out);
      break;
    }
    case ExprKind::Call:
      for (const auto& a : static_cast<const vlog::CallExpr&>(*e).args) {
        collect_reads(a.get(), resolve, out);
      }
      break;
    default:
      break;
  }
}

}  // namespace detail

namespace {

using detail::ParamEnv;
using detail::const_eval;
using detail::const_eval_int;

class ElabFailure : public std::exception {
 public:
  explicit ElabFailure(std::string msg) : msg_(std::move(msg)) {}
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  std::string msg_;
};

class Elaborator {
 public:
  explicit Elaborator(const SourceUnit& unit) : unit_(unit) {
    for (const auto& m : unit.modules) modules_[m->name] = m.get();
    design_ = std::make_unique<Design>();
  }

  std::unique_ptr<Design> run(const std::string& top,
                              const std::vector<std::pair<std::string, std::int64_t>>&
                                  overrides) {
    const Module* m = find_module(top);
    ParamEnv env;
    for (const auto& [name, value] : overrides) {
      env[name] = Value::from_int(value, 32);
    }
    elab_module(*m, "", env, /*is_top=*/true, /*depth=*/0);
    finalize();
    validate_names();
    return std::move(design_);
  }

 private:
  const Module* find_module(const std::string& name) const {
    const auto it = modules_.find(name);
    if (it == modules_.end()) throw ElabFailure("unknown module '" + name + "'");
    return it->second;
  }

  int add_signal(Signal sig) {
    if (design_->signal_index.count(sig.name) > 0) {
      return design_->signal_index.at(sig.name);
    }
    const int id = static_cast<int>(design_->signals.size());
    design_->signal_index[sig.name] = id;
    design_->signals.push_back(std::move(sig));
    return id;
  }

  /// Resolver following the scope chain: "a.b." -> try a.b.x, a.x, x.
  detail::ScopeResolver resolver(const std::string& scope) const {
    const Design* d = design_.get();
    return [d, scope](const std::string& name) -> int {
      std::string s = scope;
      while (true) {
        const int id = d->find(s + name);
        if (id >= 0) return id;
        if (s.empty()) return -1;
        // Drop the innermost "x." component.
        const std::size_t dot = s.rfind('.', s.size() - 2);
        s = dot == std::string::npos ? std::string() : s.substr(0, dot + 1);
      }
    };
  }

  struct PendingConn {
    const Expr* formal_side = nullptr;  // synthetic ident (child port)
    const Expr* actual = nullptr;       // parent-scope expression
    bool child_drives = false;          // true for output ports
  };

  // Creates a synthetic identifier expression owned by the design.
  const Expr* make_ident(const std::string& flat_name) {
    auto id = std::make_unique<vlog::IdentExpr>();
    id->path.push_back(flat_name);
    const Expr* raw = id.get();
    owned_.push_back(std::move(id));
    return raw;
  }

  void add_cont_assign(const Expr* lhs, const Expr* rhs, const std::string& scope) {
    Process p;
    p.kind = ProcKind::ContAssign;
    p.lhs = lhs;
    p.rhs = rhs;
    p.scope = scope;
    // Sensitivity is filled in by finalize() once every signal exists
    // (forward references to later declarations are legal Verilog).
    design_->processes.push_back(std::move(p));
  }

  /// Post-pass: computes continuous-assign sensitivities over the complete
  /// signal table.
  void finalize() {
    for (Process& p : design_->processes) {
      if (p.kind != ProcKind::ContAssign) continue;
      std::set<int> reads;
      detail::collect_reads(p.rhs, resolver(p.scope), reads);
      collect_lhs_index_reads(p.lhs, p.scope, reads);
      p.sensitivity.assign(reads.begin(), reads.end());
    }
  }

  void collect_lhs_index_reads(const Expr* lhs, const std::string& scope,
                               std::set<int>& out) {
    if (lhs == nullptr) return;
    if (lhs->kind == ExprKind::Select) {
      const auto& s = static_cast<const vlog::SelectExpr&>(*lhs);
      detail::collect_reads(s.index.get(), resolver(scope), out);
      detail::collect_reads(s.width.get(), resolver(scope), out);
      collect_lhs_index_reads(s.base.get(), scope, out);
    } else if (lhs->kind == ExprKind::Concat) {
      for (const auto& p : static_cast<const vlog::ConcatExpr&>(*lhs).parts) {
        collect_lhs_index_reads(p.get(), scope, out);
      }
    }
  }

  std::pair<int, int> range_bounds(const std::optional<vlog::Range>& r,
                                   const ParamEnv& env, const char* what) {
    if (!r) return {0, 0};
    const auto msb = const_eval_int(*r->msb, env);
    const auto lsb = const_eval_int(*r->lsb, env);
    if (!msb || !lsb) throw ElabFailure(std::string("non-constant range in ") + what);
    const std::int64_t span = std::abs(*msb - *lsb);
    if (span >= 1 << 16) throw ElabFailure("range too wide");
    return {static_cast<int>(*msb), static_cast<int>(*lsb)};
  }

  void elab_module(const Module& m, const std::string& prefix, ParamEnv overrides,
                   bool is_top, int depth) {
    if (depth > 32) throw ElabFailure("instantiation too deep (recursive?)");

    // 1. Parameters: header params then body params, respecting overrides.
    ParamEnv env;
    auto bind_param = [&](const std::string& name, const Expr& value) {
      const auto it = overrides.find(name);
      if (it != overrides.end()) {
        env[name] = it->second;
        return;
      }
      auto v = const_eval(value, env);
      if (!v) throw ElabFailure("non-constant parameter '" + name + "' in " + m.name);
      env[name] = std::move(*v);
    };
    for (const auto& pa : m.header_params) bind_param(pa.name, *pa.value);
    for (const auto& item : m.items) {
      if (item->kind != ItemKind::ParamDecl) continue;
      const auto& pd = static_cast<const vlog::ParamDeclItem&>(*item);
      for (const auto& pa : pd.params) {
        if (pd.local) {
          auto v = const_eval(*pa.value, env);
          if (!v) throw ElabFailure("non-constant localparam '" + pa.name + "'");
          env[pa.name] = std::move(*v);
        } else {
          bind_param(pa.name, *pa.value);
        }
      }
    }

    // 2. Port directions/shapes: ANSI header or body port declarations.
    struct PortShape {
      PortDir dir = PortDir::Input;
      bool is_reg = false;
      bool is_signed = false;
      int msb = 0, lsb = 0;
      bool declared = false;
    };
    std::unordered_map<std::string, PortShape> port_shapes;
    std::vector<std::string> port_order;
    for (const auto& p : m.ports) {
      PortShape shape;
      shape.dir = p.dir;
      shape.is_reg = p.is_reg;
      shape.is_signed = p.is_signed;
      shape.declared = p.ansi;
      if (p.range) {
        const auto [msb, lsb] = range_bounds(p.range, env, "port");
        shape.msb = msb;
        shape.lsb = lsb;
      }
      port_shapes[p.name] = shape;
      port_order.push_back(p.name);
    }
    for (const auto& item : m.items) {
      if (item->kind != ItemKind::PortDecl) continue;
      const auto& pd = static_cast<const vlog::PortDeclItem&>(*item);
      const auto [msb, lsb] = range_bounds(pd.range, env, "port declaration");
      for (const auto& name : pd.names) {
        const auto it = port_shapes.find(name);
        if (it == port_shapes.end()) {
          throw ElabFailure("port declaration for non-port '" + name + "' in " + m.name);
        }
        it->second.dir = pd.dir;
        it->second.is_reg = it->second.is_reg || pd.is_reg;
        it->second.is_signed = pd.is_signed;
        it->second.msb = msb;
        it->second.lsb = lsb;
        it->second.declared = true;
      }
    }
    // Merge reg/width info from body net declarations of port names.
    for (const auto& item : m.items) {
      if (item->kind != ItemKind::NetDecl) continue;
      const auto& nd = static_cast<const vlog::NetDeclItem&>(*item);
      for (const auto& dn : nd.nets) {
        const auto it = port_shapes.find(dn.name);
        if (it == port_shapes.end()) continue;
        if (nd.net == NetType::Reg || nd.net == NetType::Integer) it->second.is_reg = true;
        if (nd.range) {
          const auto [msb, lsb] = range_bounds(nd.range, env, "net declaration");
          it->second.msb = msb;
          it->second.lsb = lsb;
        }
        if (nd.is_signed) it->second.is_signed = true;
      }
    }

    // 3. Create port signals.
    for (const auto& name : port_order) {
      const PortShape& shape = port_shapes.at(name);
      if (!shape.declared) {
        throw ElabFailure("port '" + name + "' of " + m.name + " lacks a declaration");
      }
      Signal sig;
      sig.name = prefix + name;
      sig.msb = shape.msb;
      sig.lsb = shape.lsb;
      sig.width = std::abs(shape.msb - shape.lsb) + 1;
      sig.is_signed = shape.is_signed;
      sig.is_reg = shape.is_reg;
      sig.value = Value(sig.width, Logic::X, sig.is_signed);
      const int id = add_signal(std::move(sig));
      if (is_top) {
        if (shape.dir == PortDir::Input) design_->top_inputs.push_back(id);
        else if (shape.dir == PortDir::Output) design_->top_outputs.push_back(id);
      }
    }

    // 4. Remaining items.
    elab_items(m.items, m, prefix, env, depth);

    // 5. Parameters become constant pseudo-signals so runtime expressions
    //    (e.g. `q <= WIDTH - 1`) can read them through the scope chain.
    for (const auto& [name, value] : env) {
      if (design_->signal_index.count(prefix + name) > 0) continue;
      Signal sig;
      sig.name = prefix + name;
      sig.width = value.width();
      sig.is_signed = value.is_signed();
      sig.msb = value.width() - 1;
      sig.lsb = 0;
      sig.is_const = true;
      sig.value = value;
      add_signal(std::move(sig));
    }
  }

  void elab_items(const std::vector<vlog::ItemPtr>& items, const Module& m,
                  const std::string& prefix, ParamEnv& env, int depth) {
    // Phase 1: declarations, so processes and instances elaborated in
    // phase 2 may reference nets declared later in the module.
    for (const auto& item : items) {
      if (item->kind == ItemKind::NetDecl) {
        elab_net_decl(static_cast<const vlog::NetDeclItem&>(*item), prefix, env);
      }
    }
    for (const auto& item : items) {
      switch (item->kind) {
        case ItemKind::PortDecl:
        case ItemKind::ParamDecl:
        case ItemKind::Genvar:
        case ItemKind::NetDecl:
          break;  // handled during setup / compile-time / phase 1
        case ItemKind::ContAssign: {
          const auto& a = static_cast<const vlog::ContAssignItem&>(*item);
          for (const auto& [lhs, rhs] : a.assigns) {
            add_cont_assign(lhs.get(), rhs.get(), prefix);
          }
          break;
        }
        case ItemKind::Always: {
          Process p;
          p.kind = ProcKind::Always;
          p.body = static_cast<const vlog::AlwaysItem&>(*item).body.get();
          p.scope = prefix;
          design_->processes.push_back(std::move(p));
          break;
        }
        case ItemKind::Initial: {
          Process p;
          p.kind = ProcKind::Initial;
          p.body = static_cast<const vlog::InitialItem&>(*item).body.get();
          p.scope = prefix;
          design_->processes.push_back(std::move(p));
          break;
        }
        case ItemKind::Function: {
          const auto& f = static_cast<const vlog::FunctionItem&>(*item);
          RoutineDef def;
          def.function = &f;
          def.scope = prefix;
          design_->routines[prefix + f.name] = def;
          break;
        }
        case ItemKind::Task: {
          const auto& t = static_cast<const vlog::TaskItem&>(*item);
          RoutineDef def;
          def.task = &t;
          def.scope = prefix;
          design_->routines[prefix + t.name] = def;
          break;
        }
        case ItemKind::Instance:
          elab_instance(static_cast<const vlog::InstanceItem&>(*item), prefix, env, depth);
          break;
        case ItemKind::GenerateFor:
          elab_generate_for(static_cast<const vlog::GenerateForItem&>(*item), m,
                            prefix, env, depth);
          break;
      }
    }
  }

  void elab_net_decl(const vlog::NetDeclItem& nd, const std::string& prefix,
                     const ParamEnv& env) {
    int msb = 0;
    int lsb = 0;
    bool is_signed = nd.is_signed;
    bool is_reg = nd.net == NetType::Reg;
    if (nd.net == NetType::Integer || nd.net == NetType::Time) {
      msb = nd.net == NetType::Integer ? 31 : 63;
      is_signed = nd.net == NetType::Integer;
      is_reg = true;
    } else if (nd.range) {
      std::tie(msb, lsb) = range_bounds(nd.range, env, "net declaration");
    }
    for (const auto& dn : nd.nets) {
      if (design_->signal_index.count(prefix + dn.name) > 0) {
        // Port re-declaration — already created; apply initializer if any.
        if (dn.init != nullptr) apply_initializer(prefix + dn.name, *dn.init, prefix, env, is_reg);
        continue;
      }
      Signal sig;
      sig.name = prefix + dn.name;
      sig.msb = msb;
      sig.lsb = lsb;
      sig.width = std::abs(msb - lsb) + 1;
      sig.is_signed = is_signed;
      sig.is_reg = is_reg;
      if (nd.net == NetType::Supply0) sig.value = Value(sig.width, Logic::Zero);
      else if (nd.net == NetType::Supply1) sig.value = Value(sig.width, Logic::One);
      else sig.value = Value(sig.width, Logic::X, is_signed);
      if (dn.unpacked) {
        const auto [alo, ahi] = range_bounds(dn.unpacked, env, "memory declaration");
        sig.is_array = true;
        sig.array_lo = std::min(alo, ahi);
        sig.array_hi = std::max(alo, ahi);
        const auto words = static_cast<std::size_t>(sig.array_hi - sig.array_lo + 1);
        if (words > 1u << 20) throw ElabFailure("memory too large");
        sig.words.assign(words, Value(sig.width, Logic::X, is_signed));
      }
      add_signal(std::move(sig));
      if (dn.init != nullptr) apply_initializer(prefix + dn.name, *dn.init, prefix, env, is_reg);
    }
  }

  void apply_initializer(const std::string& flat_name, const Expr& init,
                         const std::string& prefix, const ParamEnv& env,
                         bool is_reg) {
    if (is_reg) {
      // reg r = expr;  — constant initial value (like `initial r = expr`).
      auto v = const_eval(init, env);
      Signal& sig = design_->signals[static_cast<std::size_t>(design_->find(flat_name))];
      if (v) sig.value = v->resized(sig.width);
      return;
    }
    // wire w = expr;  — shorthand for a continuous assignment.
    add_cont_assign(make_ident(flat_name), &init, prefix);
  }

  /// Best-effort bit width of a parent-scope expression, for the port
  /// width-contract records.  0 means "unknown or width-flexible" (unsized
  /// literals, parameters, unresolvable names) and suppresses the check.
  int expr_width(const Expr* e, const std::string& scope,
                 const ParamEnv& env) const {
    if (e == nullptr) return 0;
    switch (e->kind) {
      case ExprKind::Number: {
        const auto& n = static_cast<const vlog::NumberExpr&>(*e);
        if (n.is_real) return 0;
        // Only explicitly sized literals ("4'b1010") have a contract width.
        const auto tick = n.text.find('\'');
        if (tick == std::string::npos || tick == 0) return 0;
        return static_cast<int>(n.bits.size());
      }
      case ExprKind::Ident: {
        const int id = resolver(scope)(
            static_cast<const vlog::IdentExpr&>(*e).full_name());
        if (id < 0) return 0;
        const Signal& s = design_->signals[static_cast<std::size_t>(id)];
        return s.is_const ? 0 : s.width;  // parameters are width-flexible
      }
      case ExprKind::Select: {
        const auto& s = static_cast<const vlog::SelectExpr&>(*e);
        switch (s.select) {
          case vlog::SelectKind::Bit: {
            // m[i] on a memory selects a whole word; on a vector, one bit.
            if (s.base != nullptr && s.base->kind == ExprKind::Ident) {
              const int id = resolver(scope)(
                  static_cast<const vlog::IdentExpr&>(*s.base).full_name());
              if (id >= 0 &&
                  design_->signals[static_cast<std::size_t>(id)].is_array) {
                return design_->signals[static_cast<std::size_t>(id)].width;
              }
            }
            return 1;
          }
          case vlog::SelectKind::Part: {
            const auto msb = const_eval_int(*s.index, env);
            const auto lsb = const_eval_int(*s.width, env);
            if (!msb || !lsb) return 0;
            return static_cast<int>(std::abs(*msb - *lsb)) + 1;
          }
          case vlog::SelectKind::IndexedUp:
          case vlog::SelectKind::IndexedDown: {
            const auto w = const_eval_int(*s.width, env);
            return (w && *w > 0) ? static_cast<int>(*w) : 0;
          }
        }
        return 0;
      }
      case ExprKind::Concat: {
        int total = 0;
        for (const auto& p : static_cast<const vlog::ConcatExpr&>(*e).parts) {
          const int w = expr_width(p.get(), scope, env);
          if (w == 0) return 0;
          total += w;
        }
        return total;
      }
      case ExprKind::Repl: {
        const auto& r = static_cast<const vlog::ReplExpr&>(*e);
        const auto n = const_eval_int(*r.count, env);
        const int w = expr_width(r.body.get(), scope, env);
        if (!n || *n < 1 || w == 0) return 0;
        return static_cast<int>(*n) * w;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const vlog::UnaryExpr&>(*e);
        switch (u.op) {
          case vlog::UnaryOp::Plus:
          case vlog::UnaryOp::Minus:
          case vlog::UnaryOp::BitNot:
            return expr_width(u.operand.get(), scope, env);
          default:
            return 1;  // !x and the reductions
        }
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const vlog::BinaryExpr&>(*e);
        switch (b.op) {
          case vlog::BinaryOp::Eq:
          case vlog::BinaryOp::Neq:
          case vlog::BinaryOp::CaseEq:
          case vlog::BinaryOp::CaseNeq:
          case vlog::BinaryOp::Lt:
          case vlog::BinaryOp::Le:
          case vlog::BinaryOp::Gt:
          case vlog::BinaryOp::Ge:
          case vlog::BinaryOp::LogicAnd:
          case vlog::BinaryOp::LogicOr:
            return 1;
          case vlog::BinaryOp::Shl:
          case vlog::BinaryOp::Shr:
          case vlog::BinaryOp::AShl:
          case vlog::BinaryOp::AShr:
            return expr_width(b.lhs.get(), scope, env);
          default: {
            const int l = expr_width(b.lhs.get(), scope, env);
            const int r = expr_width(b.rhs.get(), scope, env);
            return (l == 0 || r == 0) ? 0 : std::max(l, r);
          }
        }
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const vlog::TernaryExpr&>(*e);
        const int a = expr_width(t.then_expr.get(), scope, env);
        const int b = expr_width(t.else_expr.get(), scope, env);
        return (a == 0 || b == 0) ? 0 : std::max(a, b);
      }
      default:
        return 0;
    }
  }

  void elab_instance(const vlog::InstanceItem& inst, const std::string& prefix,
                     const ParamEnv& env, int depth) {
    const Module* child = find_module(inst.module_name);
    const std::string child_prefix = prefix + inst.instance_name + ".";

    // Parameter overrides.
    ParamEnv child_overrides;
    if (!inst.param_overrides.empty()) {
      std::vector<std::string> header_names;
      for (const auto& pa : child->header_params) header_names.push_back(pa.name);
      std::size_t ordered = 0;
      for (const auto& c : inst.param_overrides) {
        std::string name = c.formal;
        if (name.empty()) {
          if (ordered >= header_names.size()) {
            throw ElabFailure("too many ordered parameter overrides for " + inst.module_name);
          }
          name = header_names[ordered++];
        }
        if (c.actual == nullptr) continue;
        auto v = const_eval(*c.actual, env);
        if (!v) throw ElabFailure("non-constant parameter override '" + name + "'");
        child_overrides[name] = std::move(*v);
      }
    }

    elab_module(*child, child_prefix, child_overrides, /*is_top=*/false, depth + 1);

    // Port connections.
    std::vector<std::string> formal_order;
    std::unordered_map<std::string, PortDir> dirs;
    for (const auto& p : child->ports) formal_order.push_back(p.name);
    for (const auto& p : child->ports) {
      if (p.ansi) dirs[p.name] = p.dir;
    }
    for (const auto& item : child->items) {
      if (item->kind != ItemKind::PortDecl) continue;
      const auto& pd = static_cast<const vlog::PortDeclItem&>(*item);
      for (const auto& n : pd.names) dirs[n] = pd.dir;
    }

    // Besides synthesizing the ContAssigns that carry values across the
    // boundary, record one PortBinding per formal port — connected or not —
    // so the hierarchical port-contract passes (vlog/dataflow) can see what
    // the flattening erases.
    auto start_binding = [&](const std::string& formal) {
      PortBinding pb;
      pb.instance = prefix + inst.instance_name;
      pb.module_name = inst.module_name;
      pb.port = formal;
      pb.formal_signal = design_->find(child_prefix + formal);
      if (pb.formal_signal >= 0) {
        pb.formal_width =
            design_->signals[static_cast<std::size_t>(pb.formal_signal)].width;
      }
      pb.line = inst.line;
      return pb;
    };

    std::size_t ordered = 0;
    std::set<std::string> mentioned;
    for (const auto& c : inst.connections) {
      std::string formal = c.formal;
      if (formal.empty()) {
        if (ordered >= formal_order.size()) {
          throw ElabFailure("too many ordered connections for " + inst.module_name);
        }
        formal = formal_order[ordered++];
      }
      mentioned.insert(formal);
      if (c.actual == nullptr) {  // .port() — left unconnected
        const auto dir_it = dirs.find(formal);
        if (dir_it != dirs.end() && design_->find(child_prefix + formal) >= 0) {
          PortBinding pb = start_binding(formal);
          pb.dir = dir_it->second;
          design_->port_bindings.push_back(std::move(pb));
        }
        continue;
      }
      const auto dir_it = dirs.find(formal);
      if (dir_it == dirs.end()) {
        throw ElabFailure("connection to unknown port '" + formal + "' of " +
                          inst.module_name);
      }
      const std::string flat_formal = child_prefix + formal;
      if (design_->find(flat_formal) < 0) {
        throw ElabFailure("internal: missing port signal " + flat_formal);
      }
      PortBinding pb = start_binding(formal);
      pb.dir = dir_it->second;
      pb.actual = c.actual.get();
      pb.actual_width = expr_width(c.actual.get(), prefix, env);
      pb.connect_process = static_cast<int>(design_->processes.size());
      switch (dir_it->second) {
        case PortDir::Input:
          add_cont_assign(make_ident(flat_formal), c.actual.get(), prefix);
          break;
        case PortDir::Output:
          add_cont_assign(c.actual.get(), make_ident(flat_formal), prefix);
          break;
        case PortDir::Inout:
          throw ElabFailure("inout ports are not supported");
      }
      design_->port_bindings.push_back(std::move(pb));
    }
    // Formal ports never mentioned in the connection list are unconnected.
    for (const auto& formal : formal_order) {
      if (mentioned.count(formal) > 0) continue;
      const auto dir_it = dirs.find(formal);
      if (dir_it == dirs.end() || design_->find(child_prefix + formal) < 0) continue;
      PortBinding pb = start_binding(formal);
      pb.dir = dir_it->second;
      design_->port_bindings.push_back(std::move(pb));
    }
  }

  void elab_generate_for(const vlog::GenerateForItem& g, const Module& m,
                         const std::string& prefix, ParamEnv& env, int depth) {
    auto init = const_eval_int(*g.init, env);
    if (!init) throw ElabFailure("non-constant generate-for init");
    std::int64_t i = *init;
    int iterations = 0;
    while (true) {
      ParamEnv iter_env = env;
      iter_env[g.genvar] = Value::from_int(i, 32);
      auto cond = detail::const_eval(*g.cond, iter_env);
      if (!cond) throw ElabFailure("non-constant generate-for condition");
      bool unknown = false;
      if (!cond->is_true(&unknown) || unknown) break;
      if (++iterations > 4096) throw ElabFailure("generate-for runs too long");

      const std::string label = g.label.empty() ? "genblk" : g.label;
      const std::string iter_prefix =
          prefix + label + "[" + std::to_string(i) + "].";
      // Expose the genvar value inside the block as a constant signal.
      Signal gv;
      gv.name = iter_prefix + g.genvar;
      gv.width = 32;
      gv.is_signed = true;
      gv.msb = 31;
      gv.is_const = true;
      gv.value = Value::from_int(i, 32);
      add_signal(std::move(gv));

      ParamEnv body_env = iter_env;
      elab_items(g.body, m, iter_prefix, body_env, depth);

      auto next = const_eval_int(*g.step, iter_env);
      if (!next) throw ElabFailure("non-constant generate-for step");
      if (*next == i) throw ElabFailure("generate-for does not advance");
      i = *next;
    }
  }

  // --- post-elaboration name validation (the "compile" gate) --------------

  bool routine_exists(const std::string& scope, const std::string& name) const {
    std::string s = scope;
    while (true) {
      if (design_->routines.count(s + name) > 0) return true;
      if (s.empty()) return false;
      const std::size_t dot = s.rfind('.', s.size() - 2);
      s = dot == std::string::npos ? std::string() : s.substr(0, dot + 1);
    }
  }

  void validate_expr(const Expr* e, const std::string& scope,
                     const std::set<std::string>& locals) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::Ident: {
        const auto& i = static_cast<const vlog::IdentExpr&>(*e);
        if (i.path.size() == 1 && locals.count(i.path[0]) > 0) return;
        if (resolver(scope)(i.full_name()) >= 0) return;
        throw ElabFailure("undeclared identifier '" + i.full_name() + "'");
      }
      case ExprKind::Select: {
        const auto& s = static_cast<const vlog::SelectExpr&>(*e);
        validate_expr(s.base.get(), scope, locals);
        validate_expr(s.index.get(), scope, locals);
        validate_expr(s.width.get(), scope, locals);
        return;
      }
      case ExprKind::Unary:
        validate_expr(static_cast<const vlog::UnaryExpr&>(*e).operand.get(), scope, locals);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const vlog::BinaryExpr&>(*e);
        validate_expr(b.lhs.get(), scope, locals);
        validate_expr(b.rhs.get(), scope, locals);
        return;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const vlog::TernaryExpr&>(*e);
        validate_expr(t.cond.get(), scope, locals);
        validate_expr(t.then_expr.get(), scope, locals);
        validate_expr(t.else_expr.get(), scope, locals);
        return;
      }
      case ExprKind::Concat:
        for (const auto& p : static_cast<const vlog::ConcatExpr&>(*e).parts) {
          validate_expr(p.get(), scope, locals);
        }
        return;
      case ExprKind::Repl: {
        const auto& r = static_cast<const vlog::ReplExpr&>(*e);
        validate_expr(r.count.get(), scope, locals);
        validate_expr(r.body.get(), scope, locals);
        return;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const vlog::CallExpr&>(*e);
        if (!c.is_system && !routine_exists(scope, c.callee)) {
          throw ElabFailure("call to undeclared function '" + c.callee + "'");
        }
        for (const auto& a : c.args) validate_expr(a.get(), scope, locals);
        return;
      }
      default:
        return;
    }
  }

  void validate_stmt(const vlog::Stmt* s, const std::string& scope,
                     const std::set<std::string>& locals) {
    if (s == nullptr) return;
    using vlog::StmtKind;
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& st : static_cast<const vlog::BlockStmt&>(*s).body) {
          validate_stmt(st.get(), scope, locals);
        }
        return;
      case StmtKind::Assign: {
        const auto& a = static_cast<const vlog::AssignStmt&>(*s);
        validate_expr(a.lhs.get(), scope, locals);
        validate_expr(a.rhs.get(), scope, locals);
        validate_expr(a.delay.get(), scope, locals);
        return;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const vlog::IfStmt&>(*s);
        validate_expr(i.cond.get(), scope, locals);
        validate_stmt(i.then_stmt.get(), scope, locals);
        validate_stmt(i.else_stmt.get(), scope, locals);
        return;
      }
      case StmtKind::Case: {
        const auto& c = static_cast<const vlog::CaseStmt&>(*s);
        validate_expr(c.subject.get(), scope, locals);
        for (const auto& item : c.items) {
          for (const auto& l : item.labels) validate_expr(l.get(), scope, locals);
          validate_stmt(item.body.get(), scope, locals);
        }
        return;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const vlog::ForStmt&>(*s);
        validate_stmt(loop.init.get(), scope, locals);
        validate_expr(loop.cond.get(), scope, locals);
        validate_stmt(loop.step.get(), scope, locals);
        validate_stmt(loop.body.get(), scope, locals);
        return;
      }
      case StmtKind::While: {
        const auto& loop = static_cast<const vlog::WhileStmt&>(*s);
        validate_expr(loop.cond.get(), scope, locals);
        validate_stmt(loop.body.get(), scope, locals);
        return;
      }
      case StmtKind::Repeat: {
        const auto& loop = static_cast<const vlog::RepeatStmt&>(*s);
        validate_expr(loop.count.get(), scope, locals);
        validate_stmt(loop.body.get(), scope, locals);
        return;
      }
      case StmtKind::Forever:
        validate_stmt(static_cast<const vlog::ForeverStmt&>(*s).body.get(), scope, locals);
        return;
      case StmtKind::Delay: {
        const auto& d = static_cast<const vlog::DelayStmt&>(*s);
        validate_expr(d.delay.get(), scope, locals);
        validate_stmt(d.body.get(), scope, locals);
        return;
      }
      case StmtKind::EventControl: {
        const auto& e = static_cast<const vlog::EventControlStmt&>(*s);
        for (const auto& ev : e.events) validate_expr(ev.signal.get(), scope, locals);
        validate_stmt(e.body.get(), scope, locals);
        return;
      }
      case StmtKind::Wait: {
        const auto& w = static_cast<const vlog::WaitStmt&>(*s);
        validate_expr(w.cond.get(), scope, locals);
        validate_stmt(w.body.get(), scope, locals);
        return;
      }
      case StmtKind::SysTask:
        for (const auto& a : static_cast<const vlog::SysTaskStmt&>(*s).args) {
          validate_expr(a.get(), scope, locals);
        }
        return;
      case StmtKind::TaskCall: {
        const auto& t = static_cast<const vlog::TaskCallStmt&>(*s);
        if (!routine_exists(scope, t.name)) {
          throw ElabFailure("call to undeclared task '" + t.name + "'");
        }
        for (const auto& a : t.args) validate_expr(a.get(), scope, locals);
        return;
      }
      default:
        return;
    }
  }

  static std::set<std::string> routine_locals(const RoutineDef& def) {
    std::set<std::string> locals;
    auto add_net_locals = [&locals](const std::vector<vlog::ItemPtr>& items) {
      for (const auto& item : items) {
        if (item->kind != ItemKind::NetDecl) continue;
        for (const auto& dn : static_cast<const vlog::NetDeclItem&>(*item).nets) {
          locals.insert(dn.name);
        }
      }
    };
    if (def.function != nullptr) {
      locals.insert(def.function->name);
      for (const auto& a : def.function->args) locals.insert(a.name);
      add_net_locals(def.function->locals);
    }
    if (def.task != nullptr) {
      for (const auto& a : def.task->args) locals.insert(a.name);
      add_net_locals(def.task->locals);
    }
    return locals;
  }

  void validate_names() {
    const std::set<std::string> no_locals;
    for (const Process& p : design_->processes) {
      if (p.kind == ProcKind::ContAssign) {
        validate_expr(p.lhs, p.scope, no_locals);
        validate_expr(p.rhs, p.scope, no_locals);
      } else {
        validate_stmt(p.body, p.scope, no_locals);
      }
    }
    for (const auto& [name, def] : design_->routines) {
      const std::set<std::string> locals = routine_locals(def);
      if (def.function != nullptr) validate_stmt(def.function->body.get(), def.scope, locals);
      if (def.task != nullptr) validate_stmt(def.task->body.get(), def.scope, locals);
    }
  }

  const SourceUnit& unit_;
  std::unordered_map<std::string, const Module*> modules_;
  std::unique_ptr<Design> design_;
  std::vector<std::unique_ptr<vlog::Expr>> owned_;

 public:
  std::vector<std::unique_ptr<vlog::Expr>>& owned_exprs() { return owned_; }
};

}  // namespace

ElabResult elaborate(std::shared_ptr<const SourceUnit> unit, const std::string& top,
                     const std::vector<std::pair<std::string, std::int64_t>>& overrides) {
  ElabResult out;
  out.unit = unit;
  if (!unit) {
    out.error = "null source unit";
    return out;
  }
  try {
    Elaborator e(*unit);
    out.design = e.run(top, overrides);
    out.design->owned_exprs = std::move(e.owned_exprs());
    out.ok = true;
  } catch (const ElabFailure& f) {
    out.error = f.what();
  } catch (const Error& err) {
    out.error = err.what();
  }
  return out;
}

}  // namespace vsd::sim
