// 4-state logic values with Verilog operator semantics.
//
// A Value is a fixed-width vector of {0,1,x,z} digits (lsb-first) plus a
// signedness flag.  All operators follow IEEE 1364 semantics: arithmetic
// with any x/z operand yields all-x, comparisons yield 1'bx, case equality
// matches x/z literally, logical connectives use 3-valued truth tables.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace vsd::sim {

/// One 4-state logic digit.
enum class Logic : std::uint8_t { Zero = 0, One = 1, X = 2, Z = 3 };

char logic_char(Logic l);
Logic logic_from_char(char c);

class Value {
 public:
  /// Zero-width values are disallowed; default is 1-bit x.
  Value() : bits_(1, Logic::X) {}

  /// All-`fill` value of `width` bits.
  explicit Value(int width, Logic fill = Logic::X, bool is_signed = false);

  /// From an unsigned integer, truncated/zero-extended to `width`.
  static Value from_uint(std::uint64_t v, int width, bool is_signed = false);

  /// From a signed integer (sign-extended into `width` bits).
  static Value from_int(std::int64_t v, int width = 32);

  /// From an msb-first digit string over {0,1,x,z} (as produced by
  /// vlog::decode_number).
  static Value from_bits_msb_first(std::string_view bits, bool is_signed = false);

  int width() const { return static_cast<int>(bits_.size()); }
  bool is_signed() const { return signed_; }
  void set_signed(bool s) { signed_ = s; }

  Logic bit(int i) const { return bits_[static_cast<std::size_t>(i)]; }
  void set_bit(int i, Logic l) { bits_[static_cast<std::size_t>(i)] = l; }

  bool has_xz() const;
  bool is_all_x() const;

  /// True iff every bit is 0 or 1 and the value is non-zero.  x/z bits make
  /// the answer "unknown", reported via `*unknown` when provided.
  bool is_true(bool* unknown = nullptr) const;

  /// Interprets as unsigned (x/z read as 0); truncates above 64 bits.
  std::uint64_t to_uint() const;
  /// Interprets as two's complement signed.
  std::int64_t to_int() const;

  /// msb-first digit string, e.g. "10x0".
  std::string to_bit_string() const;
  /// Verilog-style literal, e.g. "4'b10x0".
  std::string to_literal() const;
  /// Decimal rendering ("x" if any bit unknown), as %d would print.
  std::string to_decimal_string() const;

  /// Truncates or extends to `width` following Verilog rules: signed values
  /// sign-extend, unsigned zero-extend, x/z msb extends as itself.
  Value resized(int width) const;

  bool identical(const Value& o) const { return bits_ == o.bits_; }

  // --- arithmetic (operands must be pre-sized to a common width) ----------
  static Value add(const Value& a, const Value& b);
  static Value sub(const Value& a, const Value& b);
  static Value mul(const Value& a, const Value& b);
  static Value div(const Value& a, const Value& b);
  static Value mod(const Value& a, const Value& b);
  static Value pow(const Value& a, const Value& b);
  static Value negate(const Value& a);

  // --- bitwise -------------------------------------------------------------
  static Value bit_and(const Value& a, const Value& b);
  static Value bit_or(const Value& a, const Value& b);
  static Value bit_xor(const Value& a, const Value& b);
  static Value bit_xnor(const Value& a, const Value& b);
  static Value bit_not(const Value& a);

  // --- reductions (1-bit result) -------------------------------------------
  static Value reduce_and(const Value& a);
  static Value reduce_or(const Value& a);
  static Value reduce_xor(const Value& a);

  // --- logical (1-bit result, 3-valued) -------------------------------------
  static Value logic_and(const Value& a, const Value& b);
  static Value logic_or(const Value& a, const Value& b);
  static Value logic_not(const Value& a);

  // --- comparison (1-bit result) --------------------------------------------
  static Value eq(const Value& a, const Value& b);
  static Value neq(const Value& a, const Value& b);
  static Value case_eq(const Value& a, const Value& b);
  static Value case_neq(const Value& a, const Value& b);
  static Value lt(const Value& a, const Value& b);
  static Value le(const Value& a, const Value& b);
  static Value gt(const Value& a, const Value& b);
  static Value ge(const Value& a, const Value& b);

  // --- shifts (shift amount self-determined; x amount => all-x) -------------
  static Value shl(const Value& a, const Value& amount);
  static Value shr(const Value& a, const Value& amount);
  static Value ashr(const Value& a, const Value& amount);

  // --- structure ------------------------------------------------------------
  /// Concatenation: `parts` listed msb-first (Verilog {a, b} => a is high).
  static Value concat(const std::vector<Value>& parts_msb_first);
  static Value repl(int count, const Value& v);

  /// Extracts bits [lo, lo+width) (lsb-indexed).  Out-of-range bits read x.
  Value extract(int lo, int width) const;
  /// Writes `v` into bits [lo, lo+v.width()); out-of-range bits ignored.
  void deposit(int lo, const Value& v);

 private:
  static Value binary_common(const Value& a, const Value& b, int width);

  std::vector<Logic> bits_;  // lsb-first
  bool signed_ = false;
};

/// Result width of a context-determined binary operation.
inline int max_width(const Value& a, const Value& b) {
  return a.width() > b.width() ? a.width() : b.width();
}

}  // namespace vsd::sim
