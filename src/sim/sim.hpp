// Event-driven 4-state Verilog simulator (the reproduction's substitute
// for Icarus Verilog in the paper's functional-correctness checks).
//
// Supports: continuous assignments, always/initial processes, blocking and
// non-blocking assignment with delays, event controls (@posedge/negedge/*),
// wait, case/casez/casex, for/while/repeat/forever, memories, functions,
// tasks, module instances (flattened at elaboration), generate-for, and the
// common system tasks ($display/$write/$monitor/$finish/$time/$random...).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/design.hpp"
#include "sim/coro.hpp"

namespace vsd::sim {

/// Simulation resource limits.  Generated (possibly adversarial) code must
/// never hang the evaluation harness, so every loop has a budget.
struct SimOptions {
  std::uint64_t max_time = 1'000'000;        // simulated time units
  std::uint64_t max_activations = 500'000;   // process resumes
  std::uint64_t max_statements = 5'000'000;  // interpreted statements
  int max_delta = 20'000;                    // delta cycles per time step
};

enum class SimStatus {
  Finished,       // $finish reached
  Quiet,          // no more events (simulation ran dry)
  TimeLimit,      // max_time exceeded
  ActivityLimit,  // activation/statement/delta budget exceeded
  RuntimeError,   // interpreter error (bad select, unknown name, ...)
};

/// One run of an elaborated design.
class Simulation {
 public:
  explicit Simulation(ElabResult elab, SimOptions opts = {});
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Runs until $finish, quiescence, or a resource limit.
  SimStatus run();

  /// Runs until simulated time exceeds `t` (or termination).  Events at
  /// time <= t are fully processed; time is left at min(next event, t+1).
  SimStatus run_until(std::uint64_t t);

  /// Settles all zero-delay activity at the current time (delta cycles +
  /// non-blocking updates), without advancing time.
  SimStatus settle();

  /// Drives a top-level input (or any signal) from outside, then returns.
  /// Call settle()/run_until() afterwards to propagate.
  void poke(const std::string& name, const Value& v);

  /// Reads a signal's current value by flattened name.
  Value peek(const std::string& name) const;

  bool has_signal(const std::string& name) const;

  std::uint64_t now() const { return now_; }
  bool finished() const { return finish_; }
  const std::string& log() const { return log_; }
  const std::string& error() const { return error_; }
  const Design& design() const { return *design_; }

 private:
  friend class Interp;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::unique_ptr<Design> design_;
  std::shared_ptr<const vlog::SourceUnit> unit_;  // keeps AST alive

  std::uint64_t now_ = 0;
  bool finish_ = false;
  std::string log_;
  std::string error_;
};

}  // namespace vsd::sim
