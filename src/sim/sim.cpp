#include "sim/sim.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "sim/elab_detail.hpp"

namespace vsd::sim {

using vlog::Expr;
using vlog::ExprKind;
using vlog::Stmt;
using vlog::StmtKind;

namespace {

/// Thrown by the interpreter to abort the whole simulation.
struct SimAbort {
  SimStatus status;
  std::string msg;
};

/// Thrown on $finish / $stop / $fatal.
struct FinishRequest {};

/// Local variable frame for functions and tasks.
struct Frame {
  std::unordered_map<std::string, Value> vars;
  Frame* parent = nullptr;

  Value* find(const std::string& name) {
    const auto it = vars.find(name);
    if (it != vars.end()) return &it->second;
    return parent != nullptr ? parent->find(name) : nullptr;
  }
};

/// Resolved assignment target.
struct LRef {
  bool is_frame = false;
  std::string frame_var;
  int sig = -1;
  int word = -1;  // memory word index (array offset), -1 for plain signals
  int lo = 0;     // physical lsb offset
  int width = 1;
  bool valid = true;  // x index etc. => write silently dropped (Verilog rule)
};

struct NbaEntry {
  LRef ref;
  Value value;
};

struct Watcher {
  int proc = -1;
  std::uint64_t gen = 0;
  EdgeSense sense = EdgeSense::Any;
};

struct FutureEvent {
  std::uint64_t time = 0;
  std::uint64_t seq = 0;
  int proc = -1;  // >= 0: resume process; -1: apply NBA entry
  std::shared_ptr<NbaEntry> nba;
};

struct FutureOrder {
  bool operator()(const FutureEvent& a, const FutureEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct ProcRt {
  SimTask task;
  bool alive = true;
  bool in_active = false;
  std::uint64_t gen = 0;  // bumped on each wake; stale watchers are skipped
};

struct MonitorEntry {
  const vlog::SysTaskStmt* stmt = nullptr;
  std::string scope;
  std::string last;
};

}  // namespace

struct Simulation::Impl {
  Simulation* owner = nullptr;
  SimOptions opts;

  std::vector<ProcRt> procs;
  std::deque<int> active;
  std::vector<NbaEntry> nba;
  std::priority_queue<FutureEvent, std::vector<FutureEvent>, FutureOrder> future;
  std::uint64_t seq = 0;

  std::vector<std::vector<Watcher>> waiters;       // per-signal dynamic
  std::vector<std::vector<int>> static_watchers;   // per-signal cont-assigns
  std::vector<MonitorEntry> monitors;
  std::unordered_map<const Stmt*, std::vector<int>> star_cache;

  std::uint64_t activations = 0;
  std::uint64_t statements = 0;
  std::uint64_t rng_state = 0x1234'5678'9abc'def0ull;

  Design& design() { return *owner->design_; }

  // ----------------------------------------------------------------------
  // Name resolution (scope chain)
  // ----------------------------------------------------------------------

  int resolve(const std::string& scope, const std::string& name) const {
    const Design& d = *owner->design_;
    std::string s = scope;
    while (true) {
      const int id = d.find(s + name);
      if (id >= 0) return id;
      if (s.empty()) return -1;
      const std::size_t dot = s.rfind('.', s.size() - 2);
      s = dot == std::string::npos ? std::string() : s.substr(0, dot + 1);
    }
  }

  const RoutineDef* resolve_routine(const std::string& scope,
                                    const std::string& name) const {
    const Design& d = *owner->design_;
    std::string s = scope;
    while (true) {
      const auto it = d.routines.find(s + name);
      if (it != d.routines.end()) return &it->second;
      if (s.empty()) return nullptr;
      const std::size_t dot = s.rfind('.', s.size() - 2);
      s = dot == std::string::npos ? std::string() : s.substr(0, dot + 1);
    }
  }

  [[noreturn]] void abort_sim(const std::string& msg) const {
    throw SimAbort{SimStatus::RuntimeError, msg};
  }

  void count_statement() {
    if (++statements > opts.max_statements) {
      throw SimAbort{SimStatus::ActivityLimit, "statement budget exceeded"};
    }
  }

  // ----------------------------------------------------------------------
  // Static width analysis (context-determined expression widths)
  // ----------------------------------------------------------------------

  int width_of(const Expr* e, Frame* f, const std::string& scope) {
    if (e == nullptr) return 1;
    switch (e->kind) {
      case ExprKind::Number:
        return std::max(1, static_cast<const vlog::NumberExpr&>(*e).width);
      case ExprKind::String: {
        const auto& s = static_cast<const vlog::StringExpr&>(*e);
        return std::max<int>(8, static_cast<int>(s.value.size()) * 8);
      }
      case ExprKind::Ident: {
        const auto& i = static_cast<const vlog::IdentExpr&>(*e);
        if (f != nullptr && i.path.size() == 1) {
          if (Value* v = f->find(i.path[0])) return v->width();
        }
        const int id = resolve(scope, i.full_name());
        if (id < 0) return 32;
        return design().signals[static_cast<std::size_t>(id)].width;
      }
      case ExprKind::Select: {
        const auto& s = static_cast<const vlog::SelectExpr&>(*e);
        switch (s.select) {
          case vlog::SelectKind::Bit: {
            // Word select on a memory yields the word width.
            if (s.base->kind == ExprKind::Ident) {
              const int id = resolve(
                  scope, static_cast<const vlog::IdentExpr&>(*s.base).full_name());
              if (id >= 0 && design().signals[static_cast<std::size_t>(id)].is_array) {
                return design().signals[static_cast<std::size_t>(id)].width;
              }
            }
            return 1;
          }
          case vlog::SelectKind::Part: {
            const auto msb = detail::const_eval_int(*s.index, {});
            const auto lsb = detail::const_eval_int(*s.width, {});
            if (msb && lsb) return static_cast<int>(std::abs(*msb - *lsb)) + 1;
            return 32;
          }
          case vlog::SelectKind::IndexedUp:
          case vlog::SelectKind::IndexedDown: {
            const auto w = detail::const_eval_int(*s.width, {});
            return w ? static_cast<int>(*w) : 32;
          }
        }
        return 1;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const vlog::UnaryExpr&>(*e);
        switch (u.op) {
          case vlog::UnaryOp::Plus:
          case vlog::UnaryOp::Minus:
          case vlog::UnaryOp::BitNot:
            return width_of(u.operand.get(), f, scope);
          default:
            return 1;  // logical not, reductions
        }
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const vlog::BinaryExpr&>(*e);
        switch (b.op) {
          case vlog::BinaryOp::Eq: case vlog::BinaryOp::Neq:
          case vlog::BinaryOp::CaseEq: case vlog::BinaryOp::CaseNeq:
          case vlog::BinaryOp::Lt: case vlog::BinaryOp::Le:
          case vlog::BinaryOp::Gt: case vlog::BinaryOp::Ge:
          case vlog::BinaryOp::LogicAnd: case vlog::BinaryOp::LogicOr:
            return 1;
          case vlog::BinaryOp::Shl: case vlog::BinaryOp::Shr:
          case vlog::BinaryOp::AShl: case vlog::BinaryOp::AShr:
          case vlog::BinaryOp::Pow:
            return width_of(b.lhs.get(), f, scope);
          default:
            return std::max(width_of(b.lhs.get(), f, scope),
                            width_of(b.rhs.get(), f, scope));
        }
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const vlog::TernaryExpr&>(*e);
        return std::max(width_of(t.then_expr.get(), f, scope),
                        width_of(t.else_expr.get(), f, scope));
      }
      case ExprKind::Concat: {
        const auto& c = static_cast<const vlog::ConcatExpr&>(*e);
        int w = 0;
        for (const auto& p : c.parts) w += width_of(p.get(), f, scope);
        return std::max(1, w);
      }
      case ExprKind::Repl: {
        const auto& r = static_cast<const vlog::ReplExpr&>(*e);
        const auto n = detail::const_eval_int(*r.count, {});
        return std::max(1, static_cast<int>(n.value_or(1)) *
                               width_of(r.body.get(), f, scope));
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const vlog::CallExpr&>(*e);
        if (c.is_system) {
          if (c.callee == "$time") return 64;
          if ((c.callee == "$signed" || c.callee == "$unsigned") && !c.args.empty()) {
            return width_of(c.args[0].get(), f, scope);
          }
          return 32;
        }
        if (const RoutineDef* r = resolve_routine(scope, c.callee);
            r != nullptr && r->function != nullptr) {
          if (r->function->return_range) {
            const auto msb = detail::const_eval_int(*r->function->return_range->msb, {});
            const auto lsb = detail::const_eval_int(*r->function->return_range->lsb, {});
            if (msb && lsb) return static_cast<int>(std::abs(*msb - *lsb)) + 1;
          }
          return 32;
        }
        return 32;
      }
    }
    return 1;
  }

  // ----------------------------------------------------------------------
  // Expression evaluation
  // ----------------------------------------------------------------------

  Value eval(const Expr* e, Frame* f, const std::string& scope, int ctx = 0) {
    if (e == nullptr) abort_sim("null expression");
    switch (e->kind) {
      case ExprKind::Number: {
        const auto& n = static_cast<const vlog::NumberExpr&>(*e);
        if (n.is_real) {
          return Value::from_int(static_cast<std::int64_t>(n.real_value), 64);
        }
        Value v = Value::from_bits_msb_first(n.bits, n.is_signed);
        if (ctx > v.width()) v = v.resized(ctx);
        return v;
      }
      case ExprKind::String: {
        const auto& s = static_cast<const vlog::StringExpr&>(*e);
        const int w = std::max<int>(8, static_cast<int>(s.value.size()) * 8);
        Value v(w, Logic::Zero);
        int hi = w;
        for (const char c : s.value) {
          hi -= 8;
          v.deposit(hi, Value::from_uint(static_cast<unsigned char>(c), 8));
        }
        return v;
      }
      case ExprKind::Ident: {
        const auto& i = static_cast<const vlog::IdentExpr&>(*e);
        if (f != nullptr && i.path.size() == 1) {
          if (Value* v = f->find(i.path[0])) {
            return ctx > v->width() ? v->resized(ctx) : *v;
          }
        }
        const int id = resolve(scope, i.full_name());
        if (id < 0) abort_sim("unknown identifier '" + i.full_name() + "'");
        const Signal& sig = design().signals[static_cast<std::size_t>(id)];
        if (sig.is_array) abort_sim("memory '" + sig.name + "' used without index");
        return ctx > sig.value.width() ? sig.value.resized(ctx) : sig.value;
      }
      case ExprKind::Select:
        return eval_select(static_cast<const vlog::SelectExpr&>(*e), f, scope, ctx);
      case ExprKind::Unary: {
        const auto& u = static_cast<const vlog::UnaryExpr&>(*e);
        switch (u.op) {
          case vlog::UnaryOp::Plus: return eval(u.operand.get(), f, scope, ctx);
          case vlog::UnaryOp::Minus:
            return Value::negate(eval(u.operand.get(), f, scope, ctx));
          case vlog::UnaryOp::LogicNot:
            return Value::logic_not(eval(u.operand.get(), f, scope));
          case vlog::UnaryOp::BitNot:
            return Value::bit_not(eval(u.operand.get(), f, scope, ctx));
          case vlog::UnaryOp::ReduceAnd:
            return Value::reduce_and(eval(u.operand.get(), f, scope));
          case vlog::UnaryOp::ReduceNand:
            return Value::bit_not(Value::reduce_and(eval(u.operand.get(), f, scope)));
          case vlog::UnaryOp::ReduceOr:
            return Value::reduce_or(eval(u.operand.get(), f, scope));
          case vlog::UnaryOp::ReduceNor:
            return Value::bit_not(Value::reduce_or(eval(u.operand.get(), f, scope)));
          case vlog::UnaryOp::ReduceXor:
            return Value::reduce_xor(eval(u.operand.get(), f, scope));
          case vlog::UnaryOp::ReduceXnor:
            return Value::bit_not(Value::reduce_xor(eval(u.operand.get(), f, scope)));
        }
        abort_sim("bad unary op");
      }
      case ExprKind::Binary:
        return eval_binary(static_cast<const vlog::BinaryExpr&>(*e), f, scope, ctx);
      case ExprKind::Ternary: {
        const auto& t = static_cast<const vlog::TernaryExpr&>(*e);
        const Value c = eval(t.cond.get(), f, scope);
        bool unknown = false;
        const bool taken = c.is_true(&unknown);
        const int w = std::max(ctx, std::max(width_of(t.then_expr.get(), f, scope),
                                             width_of(t.else_expr.get(), f, scope)));
        if (unknown) {
          // 4-state merge: bits that agree keep their value, others become x.
          const Value a = eval(t.then_expr.get(), f, scope, w).resized(w);
          const Value b = eval(t.else_expr.get(), f, scope, w).resized(w);
          Value out(w, Logic::X);
          for (int i = 0; i < w; ++i) {
            if (a.bit(i) == b.bit(i)) out.set_bit(i, a.bit(i));
          }
          return out;
        }
        return eval(taken ? t.then_expr.get() : t.else_expr.get(), f, scope, w)
            .resized(w);
      }
      case ExprKind::Concat: {
        const auto& c = static_cast<const vlog::ConcatExpr&>(*e);
        std::vector<Value> parts;
        parts.reserve(c.parts.size());
        for (const auto& p : c.parts) parts.push_back(eval(p.get(), f, scope));
        return Value::concat(parts);
      }
      case ExprKind::Repl: {
        const auto& r = static_cast<const vlog::ReplExpr&>(*e);
        const Value count = eval(r.count.get(), f, scope);
        if (count.has_xz()) abort_sim("x/z replication count");
        const auto n = static_cast<int>(count.to_uint());
        if (n < 1 || n > 1 << 16) abort_sim("bad replication count");
        return Value::repl(n, eval(r.body.get(), f, scope));
      }
      case ExprKind::Call:
        return eval_call(static_cast<const vlog::CallExpr&>(*e), f, scope);
    }
    abort_sim("bad expression kind");
  }

  Value eval_binary(const vlog::BinaryExpr& b, Frame* f, const std::string& scope,
                    int ctx) {
    using vlog::BinaryOp;
    switch (b.op) {
      case BinaryOp::Add: case BinaryOp::Sub: case BinaryOp::Mul:
      case BinaryOp::Div: case BinaryOp::Mod:
      case BinaryOp::BitAnd: case BinaryOp::BitOr:
      case BinaryOp::BitXor: case BinaryOp::BitXnor: {
        const int w = std::max(ctx, std::max(width_of(b.lhs.get(), f, scope),
                                             width_of(b.rhs.get(), f, scope)));
        Value l = eval(b.lhs.get(), f, scope, w).resized(w);
        Value r = eval(b.rhs.get(), f, scope, w).resized(w);
        switch (b.op) {
          case BinaryOp::Add: return Value::add(l, r);
          case BinaryOp::Sub: return Value::sub(l, r);
          case BinaryOp::Mul: return Value::mul(l, r);
          case BinaryOp::Div: return Value::div(l, r);
          case BinaryOp::Mod: return Value::mod(l, r);
          case BinaryOp::BitAnd: return Value::bit_and(l, r);
          case BinaryOp::BitOr: return Value::bit_or(l, r);
          case BinaryOp::BitXor: return Value::bit_xor(l, r);
          default: return Value::bit_xnor(l, r);
        }
      }
      case BinaryOp::Pow:
        return Value::pow(eval(b.lhs.get(), f, scope, ctx),
                          eval(b.rhs.get(), f, scope));
      case BinaryOp::Eq:
        return Value::eq(eval(b.lhs.get(), f, scope), eval(b.rhs.get(), f, scope));
      case BinaryOp::Neq:
        return Value::neq(eval(b.lhs.get(), f, scope), eval(b.rhs.get(), f, scope));
      case BinaryOp::CaseEq:
        return Value::case_eq(eval(b.lhs.get(), f, scope), eval(b.rhs.get(), f, scope));
      case BinaryOp::CaseNeq:
        return Value::case_neq(eval(b.lhs.get(), f, scope), eval(b.rhs.get(), f, scope));
      case BinaryOp::Lt:
        return Value::lt(eval(b.lhs.get(), f, scope), eval(b.rhs.get(), f, scope));
      case BinaryOp::Le:
        return Value::le(eval(b.lhs.get(), f, scope), eval(b.rhs.get(), f, scope));
      case BinaryOp::Gt:
        return Value::gt(eval(b.lhs.get(), f, scope), eval(b.rhs.get(), f, scope));
      case BinaryOp::Ge:
        return Value::ge(eval(b.lhs.get(), f, scope), eval(b.rhs.get(), f, scope));
      case BinaryOp::LogicAnd:
        return Value::logic_and(eval(b.lhs.get(), f, scope),
                                eval(b.rhs.get(), f, scope));
      case BinaryOp::LogicOr:
        return Value::logic_or(eval(b.lhs.get(), f, scope),
                               eval(b.rhs.get(), f, scope));
      case BinaryOp::Shl: case BinaryOp::AShl:
        return Value::shl(eval(b.lhs.get(), f, scope, ctx),
                          eval(b.rhs.get(), f, scope));
      case BinaryOp::Shr:
        return Value::shr(eval(b.lhs.get(), f, scope, ctx),
                          eval(b.rhs.get(), f, scope));
      case BinaryOp::AShr:
        return Value::ashr(eval(b.lhs.get(), f, scope, ctx),
                           eval(b.rhs.get(), f, scope));
    }
    abort_sim("bad binary op");
  }

  Value eval_select(const vlog::SelectExpr& s, Frame* f, const std::string& scope,
                    int /*ctx*/) {
    // Memory word access: ident[idx] where ident is an array.
    if (s.base->kind == ExprKind::Ident) {
      const auto& id = static_cast<const vlog::IdentExpr&>(*s.base);
      const int sig_id = resolve(scope, id.full_name());
      if (sig_id >= 0) {
        const Signal& sig = design().signals[static_cast<std::size_t>(sig_id)];
        if (sig.is_array) {
          if (s.select != vlog::SelectKind::Bit) {
            abort_sim("part-select on memory '" + sig.name + "'");
          }
          const Value idx = eval(s.index.get(), f, scope);
          if (idx.has_xz()) return Value(sig.width, Logic::X);
          const std::int64_t word = idx.to_int() - sig.array_lo;
          if (word < 0 || word >= static_cast<std::int64_t>(sig.words.size())) {
            return Value(sig.width, Logic::X);
          }
          return sig.words[static_cast<std::size_t>(word)];
        }
      }
    }
    const Value base = eval(s.base.get(), f, scope);
    // Physical offset mapping uses the declared range when the base is a
    // plain signal; otherwise assumes [w-1:0].
    int msb = base.width() - 1;
    int lsb = 0;
    if (s.base->kind == ExprKind::Ident) {
      const auto& id = static_cast<const vlog::IdentExpr&>(*s.base);
      if (f == nullptr || id.path.size() != 1 || f->find(id.path[0]) == nullptr) {
        const int sig_id = resolve(scope, id.full_name());
        if (sig_id >= 0) {
          const Signal& sig = design().signals[static_cast<std::size_t>(sig_id)];
          msb = sig.msb;
          lsb = sig.lsb;
        }
      }
    }
    const bool descending = msb >= lsb;
    auto offset_of = [&](std::int64_t declared) -> int {
      if (descending) {
        if (declared < lsb || declared > msb) return -1;
        return static_cast<int>(declared - lsb);
      }
      if (declared < msb || declared > lsb) return -1;
      return static_cast<int>(lsb - declared);
    };
    switch (s.select) {
      case vlog::SelectKind::Bit: {
        const Value idx = eval(s.index.get(), f, scope);
        if (idx.has_xz()) return Value(1, Logic::X);
        const int off = offset_of(idx.to_int());
        if (off < 0) return Value(1, Logic::X);
        return base.extract(off, 1);
      }
      case vlog::SelectKind::Part: {
        const Value hi = eval(s.index.get(), f, scope);
        const Value lo = eval(s.width.get(), f, scope);
        if (hi.has_xz() || lo.has_xz()) return Value(1, Logic::X);
        const int off_hi = offset_of(hi.to_int());
        const int off_lo = offset_of(lo.to_int());
        if (off_hi < 0 || off_lo < 0) {
          const int w = static_cast<int>(std::abs(hi.to_int() - lo.to_int())) + 1;
          return Value(std::max(1, w), Logic::X);
        }
        const int lo_off = std::min(off_hi, off_lo);
        const int w = std::abs(off_hi - off_lo) + 1;
        return base.extract(lo_off, w);
      }
      case vlog::SelectKind::IndexedUp:
      case vlog::SelectKind::IndexedDown: {
        const Value idx = eval(s.index.get(), f, scope);
        const Value wv = eval(s.width.get(), f, scope);
        if (wv.has_xz()) abort_sim("x/z indexed-select width");
        const int w = static_cast<int>(wv.to_uint());
        if (w < 1 || w > 1 << 16) abort_sim("bad indexed-select width");
        if (idx.has_xz()) return Value(w, Logic::X);
        std::int64_t base_decl = idx.to_int();
        std::int64_t lo_decl;
        if (s.select == vlog::SelectKind::IndexedUp) {
          lo_decl = descending ? base_decl : base_decl + w - 1;
        } else {
          lo_decl = descending ? base_decl - w + 1 : base_decl;
        }
        const int off = offset_of(lo_decl);
        if (off < 0) return Value(w, Logic::X);
        return base.extract(off, w);
      }
    }
    abort_sim("bad select kind");
  }

  Value eval_call(const vlog::CallExpr& c, Frame* f, const std::string& scope) {
    if (c.is_system) {
      if (c.callee == "$time" || c.callee == "$stime" || c.callee == "$realtime") {
        return Value::from_uint(owner->now_, 64);
      }
      if (c.callee == "$signed" && c.args.size() == 1) {
        Value v = eval(c.args[0].get(), f, scope);
        v.set_signed(true);
        return v;
      }
      if (c.callee == "$unsigned" && c.args.size() == 1) {
        Value v = eval(c.args[0].get(), f, scope);
        v.set_signed(false);
        return v;
      }
      if (c.callee == "$random") {
        rng_state = rng_state * 6364136223846793005ull + 1442695040888963407ull;
        return Value::from_uint(rng_state >> 16, 32, /*is_signed=*/true);
      }
      if (c.callee == "$clog2" && c.args.size() == 1) {
        const Value v = eval(c.args[0].get(), f, scope);
        if (v.has_xz()) return Value(32, Logic::X);
        std::uint64_t n = v.to_uint();
        int r = 0;
        if (n > 0) --n;
        while (n > 0) {
          ++r;
          n >>= 1;
        }
        return Value::from_uint(static_cast<std::uint64_t>(r), 32);
      }
      abort_sim("unsupported system function " + c.callee);
    }
    const RoutineDef* r = resolve_routine(scope, c.callee);
    if (r == nullptr || r->function == nullptr) {
      abort_sim("call to unknown function '" + c.callee + "'");
    }
    const vlog::FunctionItem& fn = *r->function;
    if (c.args.size() != fn.args.size()) {
      abort_sim("function '" + c.callee + "' arity mismatch");
    }
    Frame frame;
    for (std::size_t i = 0; i < fn.args.size(); ++i) {
      int w = 32;
      if (fn.args[i].range) {
        const auto msb = detail::const_eval_int(*fn.args[i].range->msb, {});
        const auto lsb = detail::const_eval_int(*fn.args[i].range->lsb, {});
        if (msb && lsb) w = static_cast<int>(std::abs(*msb - *lsb)) + 1;
      }
      Value v = eval(c.args[i].get(), f, scope, w).resized(w);
      v.set_signed(fn.args[i].is_signed || fn.args[i].net == vlog::NetType::Integer);
      frame.vars[fn.args[i].name] = std::move(v);
    }
    int ret_w = 32;
    bool ret_signed = fn.is_signed;
    if (fn.return_range) {
      const auto msb = detail::const_eval_int(*fn.return_range->msb, {});
      const auto lsb = detail::const_eval_int(*fn.return_range->lsb, {});
      if (msb && lsb) ret_w = static_cast<int>(std::abs(*msb - *lsb)) + 1;
    }
    frame.vars[fn.name] = Value(ret_w, Logic::X, ret_signed);
    for (const auto& local : fn.locals) {
      if (local->kind != vlog::ItemKind::NetDecl) continue;
      const auto& nd = static_cast<const vlog::NetDeclItem&>(*local);
      int w = 1;
      bool sgn = nd.is_signed;
      if (nd.net == vlog::NetType::Integer) {
        w = 32;
        sgn = true;
      } else if (nd.range) {
        const auto msb = detail::const_eval_int(*nd.range->msb, {});
        const auto lsb = detail::const_eval_int(*nd.range->lsb, {});
        if (msb && lsb) w = static_cast<int>(std::abs(*msb - *lsb)) + 1;
      }
      for (const auto& dn : nd.nets) frame.vars[dn.name] = Value(w, Logic::X, sgn);
    }
    exec_sync(fn.body.get(), &frame, r->scope, 0);
    return frame.vars.at(fn.name);
  }

  // ----------------------------------------------------------------------
  // LValue resolution and writes
  // ----------------------------------------------------------------------

  void resolve_lvalue(const Expr* e, Frame* f, const std::string& scope,
                      std::vector<LRef>& out) {
    if (e == nullptr) abort_sim("null lvalue");
    switch (e->kind) {
      case ExprKind::Concat:
        for (const auto& p : static_cast<const vlog::ConcatExpr&>(*e).parts) {
          resolve_lvalue(p.get(), f, scope, out);
        }
        return;
      case ExprKind::Ident: {
        const auto& id = static_cast<const vlog::IdentExpr&>(*e);
        if (f != nullptr && id.path.size() == 1) {
          if (Value* v = f->find(id.path[0])) {
            LRef ref;
            ref.is_frame = true;
            ref.frame_var = id.path[0];
            ref.lo = 0;
            ref.width = v->width();
            out.push_back(std::move(ref));
            return;
          }
        }
        const int sig_id = resolve(scope, id.full_name());
        if (sig_id < 0) abort_sim("assignment to unknown '" + id.full_name() + "'");
        const Signal& sig = design().signals[static_cast<std::size_t>(sig_id)];
        if (sig.is_array) abort_sim("memory '" + sig.name + "' assigned without index");
        LRef ref;
        ref.sig = sig_id;
        ref.lo = 0;
        ref.width = sig.width;
        out.push_back(std::move(ref));
        return;
      }
      case ExprKind::Select: {
        const auto& s = static_cast<const vlog::SelectExpr&>(*e);
        // Innermost base must be an identifier.
        const Expr* base = s.base.get();
        if (base->kind == ExprKind::Ident) {
          const auto& id = static_cast<const vlog::IdentExpr&>(*base);
          if (f != nullptr && id.path.size() == 1 && f->find(id.path[0]) != nullptr) {
            // Select on a frame variable (function local).
            Value* v = f->find(id.path[0]);
            LRef ref;
            ref.is_frame = true;
            ref.frame_var = id.path[0];
            fill_select_offsets(s, f, scope, v->width() - 1, 0, ref);
            out.push_back(std::move(ref));
            return;
          }
          const int sig_id = resolve(scope, id.full_name());
          if (sig_id < 0) abort_sim("assignment to unknown '" + id.full_name() + "'");
          const Signal& sig = design().signals[static_cast<std::size_t>(sig_id)];
          LRef ref;
          ref.sig = sig_id;
          if (sig.is_array) {
            if (s.select != vlog::SelectKind::Bit) {
              abort_sim("part-select write on memory '" + sig.name + "'");
            }
            const Value idx = eval(s.index.get(), f, scope);
            if (idx.has_xz()) {
              ref.valid = false;
              ref.width = sig.width;
            } else {
              const std::int64_t word = idx.to_int() - sig.array_lo;
              if (word < 0 || word >= static_cast<std::int64_t>(sig.words.size())) {
                ref.valid = false;
              }
              ref.word = static_cast<int>(word);
              ref.width = sig.width;
            }
            out.push_back(std::move(ref));
            return;
          }
          fill_select_offsets(s, f, scope, sig.msb, sig.lsb, ref);
          out.push_back(std::move(ref));
          return;
        }
        if (base->kind == ExprKind::Select) {
          // Bit/part select of a memory word: m[i][3:0].
          const auto& inner = static_cast<const vlog::SelectExpr&>(*base);
          if (inner.base->kind != ExprKind::Ident) abort_sim("unsupported lvalue");
          const auto& id = static_cast<const vlog::IdentExpr&>(*inner.base);
          const int sig_id = resolve(scope, id.full_name());
          if (sig_id < 0) abort_sim("assignment to unknown '" + id.full_name() + "'");
          const Signal& sig = design().signals[static_cast<std::size_t>(sig_id)];
          if (!sig.is_array) abort_sim("nested select on non-memory lvalue");
          LRef ref;
          ref.sig = sig_id;
          const Value idx = eval(inner.index.get(), f, scope);
          if (idx.has_xz()) {
            ref.valid = false;
            ref.width = sig.width;
            out.push_back(std::move(ref));
            return;
          }
          const std::int64_t word = idx.to_int() - sig.array_lo;
          if (word < 0 || word >= static_cast<std::int64_t>(sig.words.size())) {
            ref.valid = false;
          }
          ref.word = static_cast<int>(word);
          fill_select_offsets(s, f, scope, sig.msb, sig.lsb, ref);
          out.push_back(std::move(ref));
          return;
        }
        abort_sim("unsupported lvalue");
      }
      default:
        abort_sim("expression is not an lvalue");
    }
  }

  void fill_select_offsets(const vlog::SelectExpr& s, Frame* f,
                           const std::string& scope, int msb, int lsb, LRef& ref) {
    const bool descending = msb >= lsb;
    auto offset_of = [&](std::int64_t declared) -> int {
      if (descending) {
        if (declared < lsb || declared > msb) return -1;
        return static_cast<int>(declared - lsb);
      }
      if (declared < msb || declared > lsb) return -1;
      return static_cast<int>(lsb - declared);
    };
    switch (s.select) {
      case vlog::SelectKind::Bit: {
        const Value idx = eval(s.index.get(), f, scope);
        if (idx.has_xz()) {
          ref.valid = false;
          ref.width = 1;
          return;
        }
        const int off = offset_of(idx.to_int());
        if (off < 0) ref.valid = false;
        ref.lo = std::max(0, off);
        ref.width = 1;
        return;
      }
      case vlog::SelectKind::Part: {
        const Value hi = eval(s.index.get(), f, scope);
        const Value lo = eval(s.width.get(), f, scope);
        if (hi.has_xz() || lo.has_xz()) {
          ref.valid = false;
          ref.width = 1;
          return;
        }
        const int off_hi = offset_of(hi.to_int());
        const int off_lo = offset_of(lo.to_int());
        if (off_hi < 0 || off_lo < 0) {
          ref.valid = false;
          ref.width = static_cast<int>(std::abs(hi.to_int() - lo.to_int())) + 1;
          return;
        }
        ref.lo = std::min(off_hi, off_lo);
        ref.width = std::abs(off_hi - off_lo) + 1;
        return;
      }
      case vlog::SelectKind::IndexedUp:
      case vlog::SelectKind::IndexedDown: {
        const Value idx = eval(s.index.get(), f, scope);
        const Value wv = eval(s.width.get(), f, scope);
        if (wv.has_xz()) abort_sim("x/z indexed-select width");
        const int w = static_cast<int>(wv.to_uint());
        if (w < 1 || w > 1 << 16) abort_sim("bad indexed-select width");
        ref.width = w;
        if (idx.has_xz()) {
          ref.valid = false;
          return;
        }
        const std::int64_t base_decl = idx.to_int();
        const bool up = s.select == vlog::SelectKind::IndexedUp;
        const std::int64_t lo_decl =
            up ? (descending ? base_decl : base_decl + w - 1)
               : (descending ? base_decl - w + 1 : base_decl);
        const int off = offset_of(lo_decl);
        if (off < 0) {
          ref.valid = false;
          return;
        }
        ref.lo = off;
        return;
      }
    }
  }

  /// Applies a resolved write immediately (blocking / continuous), waking
  /// sensitive processes.
  void apply_write(const LRef& ref, const Value& value, Frame* f) {
    if (!ref.valid) return;
    const Value sized = value.resized(ref.width);
    if (ref.is_frame) {
      Value* v = f != nullptr ? f->find(ref.frame_var) : nullptr;
      if (v == nullptr) abort_sim("internal: lost frame variable " + ref.frame_var);
      v->deposit(ref.lo, sized);
      return;
    }
    Signal& sig = design().signals[static_cast<std::size_t>(ref.sig)];
    Value& target = ref.word >= 0 ? sig.words[static_cast<std::size_t>(ref.word)]
                                  : sig.value;
    const Value old_bits = target.extract(ref.lo, ref.width);
    if (old_bits.identical(sized)) return;
    const Logic old_b0 = target.bit(0);
    target.deposit(ref.lo, sized);
    const Logic new_b0 = target.bit(0);
    notify_change(ref.sig, old_b0, new_b0);
  }

  static bool is_posedge(Logic a, Logic b) {
    const bool a_low = a == Logic::Zero;
    const bool a_mid = a == Logic::X || a == Logic::Z;
    const bool b_high = b == Logic::One;
    const bool b_mid = b == Logic::X || b == Logic::Z;
    return (a_low && (b_high || b_mid)) || (a_mid && b_high);
  }
  static bool is_negedge(Logic a, Logic b) {
    const bool a_high = a == Logic::One;
    const bool a_mid = a == Logic::X || a == Logic::Z;
    const bool b_low = b == Logic::Zero;
    const bool b_mid = b == Logic::X || b == Logic::Z;
    return (a_high && (b_low || b_mid)) || (a_mid && b_low);
  }

  void notify_change(int sig_id, Logic old_b0, Logic new_b0) {
    for (const int p : static_watchers[static_cast<std::size_t>(sig_id)]) {
      push_active(p);
    }
    auto& list = waiters[static_cast<std::size_t>(sig_id)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Watcher& w = list[i];
      if (w.gen != procs[static_cast<std::size_t>(w.proc)].gen) continue;  // stale
      bool fire = false;
      switch (w.sense) {
        case EdgeSense::Any: fire = true; break;
        case EdgeSense::Pos: fire = is_posedge(old_b0, new_b0); break;
        case EdgeSense::Neg: fire = is_negedge(old_b0, new_b0); break;
      }
      if (fire) {
        wake_proc(w.proc);
      } else {
        list[keep++] = w;
      }
    }
    list.resize(keep);
  }

  void push_active(int p) {
    ProcRt& rt = procs[static_cast<std::size_t>(p)];
    if (!rt.alive || rt.in_active) return;
    rt.in_active = true;
    active.push_back(p);
  }

  /// Wakes a suspended process: bumps its generation (invalidating other
  /// registered waiters) and schedules it.
  void wake_proc(int p) {
    ProcRt& rt = procs[static_cast<std::size_t>(p)];
    if (!rt.alive) return;
    ++rt.gen;
    push_active(p);
  }

  // ----------------------------------------------------------------------
  // Statement execution: synchronous path (function bodies)
  // ----------------------------------------------------------------------

  void exec_sync(const Stmt* s, Frame* f, const std::string& scope, int depth) {
    if (s == nullptr) return;
    if (depth > 256) abort_sim("function nesting too deep");
    count_statement();
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& st : static_cast<const vlog::BlockStmt&>(*s).body) {
          exec_sync(st.get(), f, scope, depth + 1);
        }
        return;
      case StmtKind::Assign: {
        const auto& a = static_cast<const vlog::AssignStmt&>(*s);
        if (a.non_blocking || a.delay != nullptr) {
          abort_sim("non-blocking/delayed assignment inside function");
        }
        do_blocking_assign(a, f, scope);
        return;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const vlog::IfStmt&>(*s);
        if (eval(i.cond.get(), f, scope).is_true()) {
          exec_sync(i.then_stmt.get(), f, scope, depth + 1);
        } else if (i.else_stmt != nullptr) {
          exec_sync(i.else_stmt.get(), f, scope, depth + 1);
        }
        return;
      }
      case StmtKind::Case: {
        const auto& c = static_cast<const vlog::CaseStmt&>(*s);
        if (const Stmt* body = select_case_item(c, f, scope)) {
          exec_sync(body, f, scope, depth + 1);
        }
        return;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const vlog::ForStmt&>(*s);
        exec_sync(loop.init.get(), f, scope, depth + 1);
        while (eval(loop.cond.get(), f, scope).is_true()) {
          exec_sync(loop.body.get(), f, scope, depth + 1);
          exec_sync(loop.step.get(), f, scope, depth + 1);
          count_statement();
        }
        return;
      }
      case StmtKind::While: {
        const auto& loop = static_cast<const vlog::WhileStmt&>(*s);
        while (eval(loop.cond.get(), f, scope).is_true()) {
          exec_sync(loop.body.get(), f, scope, depth + 1);
          count_statement();
        }
        return;
      }
      case StmtKind::Repeat: {
        const auto& loop = static_cast<const vlog::RepeatStmt&>(*s);
        const Value n = eval(loop.count.get(), f, scope);
        const std::uint64_t count = n.has_xz() ? 0 : n.to_uint();
        for (std::uint64_t i = 0; i < count; ++i) {
          exec_sync(loop.body.get(), f, scope, depth + 1);
          count_statement();
        }
        return;
      }
      case StmtKind::SysTask:
        exec_sys_task(static_cast<const vlog::SysTaskStmt&>(*s), f, scope);
        return;
      case StmtKind::Null:
        return;
      default:
        abort_sim("statement not allowed inside a function");
    }
  }

  void do_blocking_assign(const vlog::AssignStmt& a, Frame* f,
                          const std::string& scope) {
    std::vector<LRef> refs;
    resolve_lvalue(a.lhs.get(), f, scope, refs);
    int total = 0;
    for (const LRef& r : refs) total += r.width;
    Value v = eval(a.rhs.get(), f, scope, total).resized(total);
    // Concat lvalues: msb-first in source order.
    int hi = total;
    for (const LRef& r : refs) {
      hi -= r.width;
      apply_write(r, v.extract(hi, r.width), f);
    }
  }

  const Stmt* select_case_item(const vlog::CaseStmt& c, Frame* f,
                               const std::string& scope) {
    const Value subject = eval(c.subject.get(), f, scope);
    const Stmt* default_body = nullptr;
    for (const auto& item : c.items) {
      if (item.labels.empty()) {
        if (default_body == nullptr) default_body = item.body.get();
        continue;
      }
      for (const auto& label : item.labels) {
        const Value lv = eval(label.get(), f, scope);
        if (case_label_matches(c.case_kind, subject, lv)) return item.body.get();
      }
    }
    return default_body;
  }

  static bool case_label_matches(vlog::CaseKind kind, const Value& subject,
                                 const Value& label) {
    const int w = max_width(subject, label);
    const Value s = subject.resized(w);
    const Value l = label.resized(w);
    for (int i = 0; i < w; ++i) {
      const Logic sb = s.bit(i);
      const Logic lb = l.bit(i);
      const bool wild_z = kind != vlog::CaseKind::Case &&
                          (sb == Logic::Z || lb == Logic::Z);
      const bool wild_x = kind == vlog::CaseKind::Casex &&
                          (sb == Logic::X || lb == Logic::X);
      if (wild_z || wild_x) continue;
      if (sb != lb) return false;
    }
    return true;
  }

  // ----------------------------------------------------------------------
  // Statement execution: coroutine path (processes; may suspend)
  // ----------------------------------------------------------------------

  SimTask exec_stmt(const Stmt* s, Frame* f, std::string scope) {
    if (s == nullptr) co_return;
    count_statement();
    switch (s->kind) {
      case StmtKind::Block: {
        const auto& b = static_cast<const vlog::BlockStmt&>(*s);
        for (const auto& st : b.body) co_await exec_stmt(st.get(), f, scope);
        co_return;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const vlog::AssignStmt&>(*s);
        if (!a.non_blocking) {
          if (a.delay != nullptr) {
            // Evaluate now, assign after the delay (IEEE intra-assign rule).
            std::vector<LRef> refs;
            resolve_lvalue(a.lhs.get(), f, scope, refs);
            int total = 0;
            for (const LRef& r : refs) total += r.width;
            Value v = eval(a.rhs.get(), f, scope, total).resized(total);
            const Value d = eval(a.delay.get(), f, scope);
            co_yield Suspend::for_delay(d.has_xz() ? 0 : d.to_uint());
            int hi = total;
            for (const LRef& r : refs) {
              hi -= r.width;
              apply_write(r, v.extract(hi, r.width), f);
            }
          } else {
            do_blocking_assign(a, f, scope);
          }
          co_return;
        }
        // Non-blocking assignment.
        std::vector<LRef> refs;
        resolve_lvalue(a.lhs.get(), f, scope, refs);
        int total = 0;
        for (const LRef& r : refs) total += r.width;
        Value v = eval(a.rhs.get(), f, scope, total).resized(total);
        std::uint64_t delay = 0;
        if (a.delay != nullptr) {
          const Value d = eval(a.delay.get(), f, scope);
          delay = d.has_xz() ? 0 : d.to_uint();
        }
        int hi = total;
        for (const LRef& r : refs) {
          hi -= r.width;
          if (r.is_frame) abort_sim("non-blocking assignment to a local variable");
          NbaEntry entry{r, v.extract(hi, r.width)};
          if (delay == 0) {
            nba.push_back(std::move(entry));
          } else {
            FutureEvent ev;
            ev.time = owner->now_ + delay;
            ev.seq = ++seq;
            ev.nba = std::make_shared<NbaEntry>(std::move(entry));
            future.push(std::move(ev));
          }
        }
        co_return;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const vlog::IfStmt&>(*s);
        if (eval(i.cond.get(), f, scope).is_true()) {
          co_await exec_stmt(i.then_stmt.get(), f, scope);
        } else if (i.else_stmt != nullptr) {
          co_await exec_stmt(i.else_stmt.get(), f, scope);
        }
        co_return;
      }
      case StmtKind::Case: {
        const auto& c = static_cast<const vlog::CaseStmt&>(*s);
        const Stmt* body = select_case_item(c, f, scope);
        if (body != nullptr) co_await exec_stmt(body, f, scope);
        co_return;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const vlog::ForStmt&>(*s);
        co_await exec_stmt(loop.init.get(), f, scope);
        while (eval(loop.cond.get(), f, scope).is_true()) {
          co_await exec_stmt(loop.body.get(), f, scope);
          co_await exec_stmt(loop.step.get(), f, scope);
          count_statement();
        }
        co_return;
      }
      case StmtKind::While: {
        const auto& loop = static_cast<const vlog::WhileStmt&>(*s);
        while (eval(loop.cond.get(), f, scope).is_true()) {
          co_await exec_stmt(loop.body.get(), f, scope);
          count_statement();
        }
        co_return;
      }
      case StmtKind::Repeat: {
        const auto& loop = static_cast<const vlog::RepeatStmt&>(*s);
        const Value n = eval(loop.count.get(), f, scope);
        const std::uint64_t count = n.has_xz() ? 0 : n.to_uint();
        for (std::uint64_t i = 0; i < count; ++i) {
          co_await exec_stmt(loop.body.get(), f, scope);
          count_statement();
        }
        co_return;
      }
      case StmtKind::Forever: {
        const auto& loop = static_cast<const vlog::ForeverStmt&>(*s);
        while (true) {
          const std::uint64_t before = activations;
          co_await exec_stmt(loop.body.get(), f, scope);
          count_statement();
          if (activations == before) {
            abort_sim("forever loop body never suspends");
          }
        }
      }
      case StmtKind::Delay: {
        const auto& d = static_cast<const vlog::DelayStmt&>(*s);
        const Value dv = eval(d.delay.get(), f, scope);
        co_yield Suspend::for_delay(dv.has_xz() ? 0 : dv.to_uint());
        co_await exec_stmt(d.body.get(), f, scope);
        co_return;
      }
      case StmtKind::EventControl: {
        const auto& e = static_cast<const vlog::EventControlStmt&>(*s);
        co_yield Suspend::for_edges(event_waits(e, f, scope));
        co_await exec_stmt(e.body.get(), f, scope);
        co_return;
      }
      case StmtKind::Wait: {
        const auto& w = static_cast<const vlog::WaitStmt&>(*s);
        while (!eval(w.cond.get(), f, scope).is_true()) {
          std::set<int> reads;
          detail::collect_reads(
              w.cond.get(),
              [this, &scope](const std::string& n) { return resolve(scope, n); },
              reads);
          if (reads.empty()) abort_sim("wait() on a constant false condition");
          std::vector<EdgeWait> waits_list;
          for (const int id : reads) waits_list.push_back({id, EdgeSense::Any});
          co_yield Suspend::for_edges(std::move(waits_list));
        }
        co_await exec_stmt(w.body.get(), f, scope);
        co_return;
      }
      case StmtKind::SysTask:
        exec_sys_task(static_cast<const vlog::SysTaskStmt&>(*s), f, scope);
        co_return;
      case StmtKind::TaskCall: {
        const auto& t = static_cast<const vlog::TaskCallStmt&>(*s);
        co_await exec_user_task(t, f, scope);
        co_return;
      }
      case StmtKind::Disable:
      case StmtKind::Trigger:
        co_return;  // named-event machinery is out of scope; treated as no-ops
      case StmtKind::Null:
        co_return;
    }
  }

  SimTask exec_user_task(const vlog::TaskCallStmt& t, Frame* f, std::string scope) {
    const RoutineDef* r = resolve_routine(scope, t.name);
    if (r == nullptr || r->task == nullptr) {
      abort_sim("call to unknown task '" + t.name + "'");
    }
    const vlog::TaskItem& task = *r->task;
    if (t.args.size() != task.args.size()) {
      abort_sim("task '" + t.name + "' arity mismatch");
    }
    Frame frame;
    frame.parent = nullptr;
    for (std::size_t i = 0; i < task.args.size(); ++i) {
      int w = 32;
      if (task.args[i].range) {
        const auto msb = detail::const_eval_int(*task.args[i].range->msb, {});
        const auto lsb = detail::const_eval_int(*task.args[i].range->lsb, {});
        if (msb && lsb) w = static_cast<int>(std::abs(*msb - *lsb)) + 1;
      }
      if (task.args[i].dir == vlog::PortDir::Input) {
        frame.vars[task.args[i].name] = eval(t.args[i].get(), f, scope, w).resized(w);
      } else {
        frame.vars[task.args[i].name] = Value(w, Logic::X);
      }
    }
    for (const auto& local : task.locals) {
      if (local->kind != vlog::ItemKind::NetDecl) continue;
      const auto& nd = static_cast<const vlog::NetDeclItem&>(*local);
      int w = nd.net == vlog::NetType::Integer ? 32 : 1;
      if (nd.range) {
        const auto msb = detail::const_eval_int(*nd.range->msb, {});
        const auto lsb = detail::const_eval_int(*nd.range->lsb, {});
        if (msb && lsb) w = static_cast<int>(std::abs(*msb - *lsb)) + 1;
      }
      for (const auto& dn : nd.nets) frame.vars[dn.name] = Value(w, Logic::X);
    }
    co_await exec_stmt(task.body.get(), &frame, r->scope);
    // Copy back output arguments.
    for (std::size_t i = 0; i < task.args.size(); ++i) {
      if (task.args[i].dir == vlog::PortDir::Input) continue;
      std::vector<LRef> refs;
      resolve_lvalue(t.args[i].get(), f, scope, refs);
      if (refs.size() == 1) apply_write(refs[0], frame.vars.at(task.args[i].name), f);
    }
  }

  std::vector<EdgeWait> event_waits(const vlog::EventControlStmt& e, Frame* f,
                                    const std::string& scope) {
    std::vector<EdgeWait> out;
    if (e.star) {
      auto it = star_cache.find(e.body.get());
      if (it == star_cache.end()) {
        std::set<int> reads;
        collect_stmt_reads(e.body.get(), scope, reads);
        std::vector<int> ids(reads.begin(), reads.end());
        it = star_cache.emplace(e.body.get(), std::move(ids)).first;
      }
      for (const int id : it->second) out.push_back({id, EdgeSense::Any});
      if (out.empty()) abort_sim("always @(*) with empty sensitivity");
      return out;
    }
    for (const auto& ev : e.events) {
      EdgeSense sense = EdgeSense::Any;
      if (ev.edge == vlog::EdgeKind::Posedge) sense = EdgeSense::Pos;
      if (ev.edge == vlog::EdgeKind::Negedge) sense = EdgeSense::Neg;
      if (ev.signal->kind == ExprKind::Ident) {
        const auto& id = static_cast<const vlog::IdentExpr&>(*ev.signal);
        const int sig_id = resolve(scope, id.full_name());
        if (sig_id < 0) abort_sim("unknown event signal '" + id.full_name() + "'");
        out.push_back({sig_id, sense});
      } else {
        std::set<int> reads;
        detail::collect_reads(
            ev.signal.get(),
            [this, &scope](const std::string& n) { return resolve(scope, n); },
            reads);
        for (const int id : reads) out.push_back({id, sense});
      }
    }
    (void)f;
    if (out.empty()) abort_sim("event control without signals");
    return out;
  }

  void collect_stmt_reads(const Stmt* s, const std::string& scope,
                          std::set<int>& out) {
    if (s == nullptr) return;
    const auto resolve_fn = [this, &scope](const std::string& n) {
      return resolve(scope, n);
    };
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& st : static_cast<const vlog::BlockStmt&>(*s).body) {
          collect_stmt_reads(st.get(), scope, out);
        }
        return;
      case StmtKind::Assign: {
        const auto& a = static_cast<const vlog::AssignStmt&>(*s);
        detail::collect_reads(a.rhs.get(), resolve_fn, out);
        // Index expressions on the LHS are reads too.
        collect_lhs_reads(a.lhs.get(), scope, out);
        return;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const vlog::IfStmt&>(*s);
        detail::collect_reads(i.cond.get(), resolve_fn, out);
        collect_stmt_reads(i.then_stmt.get(), scope, out);
        collect_stmt_reads(i.else_stmt.get(), scope, out);
        return;
      }
      case StmtKind::Case: {
        const auto& c = static_cast<const vlog::CaseStmt&>(*s);
        detail::collect_reads(c.subject.get(), resolve_fn, out);
        for (const auto& item : c.items) {
          for (const auto& l : item.labels) detail::collect_reads(l.get(), resolve_fn, out);
          collect_stmt_reads(item.body.get(), scope, out);
        }
        return;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const vlog::ForStmt&>(*s);
        collect_stmt_reads(loop.init.get(), scope, out);
        detail::collect_reads(loop.cond.get(), resolve_fn, out);
        collect_stmt_reads(loop.step.get(), scope, out);
        collect_stmt_reads(loop.body.get(), scope, out);
        return;
      }
      case StmtKind::While: {
        const auto& loop = static_cast<const vlog::WhileStmt&>(*s);
        detail::collect_reads(loop.cond.get(), resolve_fn, out);
        collect_stmt_reads(loop.body.get(), scope, out);
        return;
      }
      case StmtKind::Repeat: {
        const auto& loop = static_cast<const vlog::RepeatStmt&>(*s);
        detail::collect_reads(loop.count.get(), resolve_fn, out);
        collect_stmt_reads(loop.body.get(), scope, out);
        return;
      }
      case StmtKind::SysTask:
        for (const auto& a : static_cast<const vlog::SysTaskStmt&>(*s).args) {
          detail::collect_reads(a.get(), resolve_fn, out);
        }
        return;
      case StmtKind::TaskCall:
        for (const auto& a : static_cast<const vlog::TaskCallStmt&>(*s).args) {
          detail::collect_reads(a.get(), resolve_fn, out);
        }
        return;
      default:
        return;
    }
  }

  void collect_lhs_reads(const Expr* lhs, const std::string& scope,
                         std::set<int>& out) {
    if (lhs == nullptr) return;
    const auto resolve_fn = [this, &scope](const std::string& n) {
      return resolve(scope, n);
    };
    if (lhs->kind == ExprKind::Select) {
      const auto& s = static_cast<const vlog::SelectExpr&>(*lhs);
      detail::collect_reads(s.index.get(), resolve_fn, out);
      detail::collect_reads(s.width.get(), resolve_fn, out);
      collect_lhs_reads(s.base.get(), scope, out);
    } else if (lhs->kind == ExprKind::Concat) {
      for (const auto& p : static_cast<const vlog::ConcatExpr&>(*lhs).parts) {
        collect_lhs_reads(p.get(), scope, out);
      }
    }
  }

  // ----------------------------------------------------------------------
  // System tasks
  // ----------------------------------------------------------------------

  void exec_sys_task(const vlog::SysTaskStmt& t, Frame* f, const std::string& scope) {
    const std::string& n = t.name;
    if (n == "$finish" || n == "$stop") {
      throw FinishRequest{};
    }
    if (n == "$fatal") {
      owner->log_ += format_args(t.args, f, scope);
      owner->log_ += "\n";
      throw FinishRequest{};
    }
    if (n == "$display" || n == "$displayb" || n == "$displayh" || n == "$error" ||
        n == "$warning" || n == "$info" || n == "$strobe") {
      owner->log_ += format_args(t.args, f, scope);
      owner->log_ += "\n";
      return;
    }
    if (n == "$write") {
      owner->log_ += format_args(t.args, f, scope);
      return;
    }
    if (n == "$monitor") {
      MonitorEntry m;
      m.stmt = &t;
      m.scope = scope;
      monitors.push_back(std::move(m));
      return;
    }
    // $dumpfile/$dumpvars/$timeformat/$readmem*/...: ignored.
  }

  std::string format_args(const std::vector<vlog::ExprPtr>& args, Frame* f,
                          const std::string& scope) {
    if (args.empty()) return "";
    std::string out;
    std::size_t next = 0;
    if (args[0]->kind == ExprKind::String) {
      const std::string& fmt = static_cast<const vlog::StringExpr&>(*args[0]).value;
      next = 1;
      for (std::size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] != '%') {
          out.push_back(fmt[i]);
          continue;
        }
        ++i;
        // Skip width/zero-padding flags.
        while (i < fmt.size() && (std::isdigit(static_cast<unsigned char>(fmt[i])))) ++i;
        if (i >= fmt.size()) break;
        const char spec = static_cast<char>(std::tolower(static_cast<unsigned char>(fmt[i])));
        if (spec == '%') {
          out.push_back('%');
          continue;
        }
        if (spec == 'm') {
          out += scope.empty() ? "top" : scope.substr(0, scope.size() - 1);
          continue;
        }
        if (next >= args.size()) {
          out += "<missing>";
          continue;
        }
        const Expr* arg = args[next++].get();
        if (spec == 's' && arg->kind == ExprKind::String) {
          out += static_cast<const vlog::StringExpr&>(*arg).value;
          continue;
        }
        const Value v = eval(arg, f, scope);
        switch (spec) {
          case 'd': case 't':
            if (v.is_signed() && !v.has_xz() && v.to_int() < 0) {
              out += "-" + Value::negate(v).to_decimal_string();
            } else {
              out += v.to_decimal_string();
            }
            break;
          case 'b': out += v.to_bit_string(); break;
          case 'h': case 'x': {
            std::string hex;
            for (int bit = 0; bit < v.width(); bit += 4) {
              const Value nib = v.extract(bit, std::min(4, v.width() - bit));
              if (nib.has_xz()) {
                hex.insert(hex.begin(), nib.to_bit_string().find('z') != std::string::npos
                                            ? 'z' : 'x');
              } else {
                hex.insert(hex.begin(), "0123456789abcdef"[nib.to_uint() & 0xF]);
              }
            }
            out += hex;
            break;
          }
          case 'o': {
            std::string oct;
            for (int bit = 0; bit < v.width(); bit += 3) {
              const Value d = v.extract(bit, std::min(3, v.width() - bit));
              if (d.has_xz()) oct.insert(oct.begin(), 'x');
              else oct.insert(oct.begin(), static_cast<char>('0' + (d.to_uint() & 7)));
            }
            out += oct;
            break;
          }
          case 'c':
            out.push_back(static_cast<char>(v.to_uint() & 0xFF));
            break;
          case 's': {
            std::string text;
            for (int bit = v.width() - 8; bit >= 0; bit -= 8) {
              const char c = static_cast<char>(v.extract(bit, 8).to_uint() & 0xFF);
              if (c != '\0') text.push_back(c);
            }
            out += text;
            break;
          }
          default:
            out += v.to_decimal_string();
            break;
        }
      }
      return out;
    }
    // No leading format string: print args as decimals, space separated.
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out.push_back(' ');
      if (args[i]->kind == ExprKind::String) {
        out += static_cast<const vlog::StringExpr&>(*args[i]).value;
      } else {
        out += eval(args[i].get(), f, scope).to_decimal_string();
      }
    }
    return out;
  }

  void eval_monitors() {
    for (MonitorEntry& m : monitors) {
      std::string text;
      try {
        text = format_args(m.stmt->args, nullptr, m.scope);
      } catch (const SimAbort&) {
        continue;
      }
      if (text != m.last) {
        m.last = text;
        owner->log_ += text;
        owner->log_ += "\n";
      }
    }
  }

  // ----------------------------------------------------------------------
  // Process bodies and the scheduler
  // ----------------------------------------------------------------------

  SimTask run_initial(const Stmt* body, std::string scope) {
    co_await exec_stmt(body, nullptr, scope);
  }

  SimTask run_always(const Stmt* body, std::string scope) {
    while (true) {
      const std::uint64_t before = activations;
      co_await exec_stmt(body, nullptr, scope);
      count_statement();
      if (activations == before) {
        abort_sim("always block never suspends");
      }
    }
  }

  void eval_cont_assign(const Process& p) {
    std::vector<LRef> refs;
    resolve_lvalue(p.lhs, nullptr, p.scope, refs);
    int total = 0;
    for (const LRef& r : refs) total += r.width;
    Value v = eval(p.rhs, nullptr, p.scope, total).resized(total);
    int hi = total;
    for (const LRef& r : refs) {
      hi -= r.width;
      apply_write(r, v.extract(hi, r.width), nullptr);
    }
  }

  void start() {
    const Design& d = design();
    waiters.assign(d.signals.size(), {});
    static_watchers.assign(d.signals.size(), {});
    procs.resize(d.processes.size());
    for (std::size_t i = 0; i < d.processes.size(); ++i) {
      const Process& p = d.processes[i];
      if (p.kind == ProcKind::ContAssign) {
        for (const int sig : p.sensitivity) {
          static_watchers[static_cast<std::size_t>(sig)].push_back(static_cast<int>(i));
        }
      } else if (p.kind == ProcKind::Always) {
        procs[i].task = run_always(p.body, p.scope);
      } else {
        procs[i].task = run_initial(p.body, p.scope);
      }
      push_active(static_cast<int>(i));
    }
  }

  /// Runs one process activation; returns false when the simulation should
  /// stop (finish or error).
  bool run_proc(int pid) {
    ProcRt& rt = procs[static_cast<std::size_t>(pid)];
    rt.in_active = false;
    if (!rt.alive) return true;
    if (++activations > opts.max_activations) {
      owner->error_ = "activation budget exceeded";
      last_status = SimStatus::ActivityLimit;
      return false;
    }
    const Process& p = design().processes[static_cast<std::size_t>(pid)];
    try {
      if (p.kind == ProcKind::ContAssign) {
        eval_cont_assign(p);
        return true;
      }
      if (!rt.task.resume()) {
        rt.alive = false;
        return true;
      }
      // Suspended: act on the request.
      const Suspend& susp = rt.task.pending();
      if (susp.kind == Suspend::Kind::Delay) {
        FutureEvent ev;
        ev.time = owner->now_ + std::max<std::uint64_t>(0, susp.delay);
        ev.seq = ++seq;
        ev.proc = pid;
        future.push(std::move(ev));
      } else {
        ++rt.gen;
        for (const EdgeWait& w : susp.waits) {
          waiters[static_cast<std::size_t>(w.signal)].push_back(
              Watcher{pid, rt.gen, w.sense});
        }
      }
      return true;
    } catch (const FinishRequest&) {
      owner->finish_ = true;
      rt.alive = false;
      last_status = SimStatus::Finished;
      return false;
    } catch (const SimAbort& a) {
      owner->error_ = a.msg;
      rt.alive = false;
      last_status = a.status;
      return false;
    } catch (const Error& e) {
      owner->error_ = e.what();
      rt.alive = false;
      last_status = SimStatus::RuntimeError;
      return false;
    }
  }

  SimStatus last_status = SimStatus::Quiet;

  /// Core event loop: processes all events with time <= `until`.
  SimStatus loop(std::uint64_t until) {
    if (owner->finish_) return SimStatus::Finished;
    if (!owner->error_.empty()) return last_status;
    while (true) {
      // Delta cycles at the current time.
      int delta = 0;
      while (!active.empty() || !nba.empty()) {
        if (++delta > opts.max_delta) {
          owner->error_ = "delta cycle limit exceeded (combinational loop?)";
          return SimStatus::ActivityLimit;
        }
        while (!active.empty()) {
          const int pid = active.front();
          active.pop_front();
          if (!run_proc(pid)) return last_status;
        }
        std::vector<NbaEntry> pending = std::move(nba);
        nba.clear();
        for (const NbaEntry& e : pending) {
          try {
            apply_write(e.ref, e.value, nullptr);
          } catch (const SimAbort& a) {
            owner->error_ = a.msg;
            return a.status;
          }
        }
      }
      eval_monitors();
      if (future.empty()) return SimStatus::Quiet;
      const std::uint64_t next_t = future.top().time;
      if (next_t > until) {
        owner->now_ = until;
        return SimStatus::TimeLimit;
      }
      owner->now_ = next_t;
      while (!future.empty() && future.top().time == next_t) {
        FutureEvent ev = future.top();
        future.pop();
        if (ev.proc >= 0) {
          wake_proc(ev.proc);
        } else if (ev.nba) {
          nba.push_back(*ev.nba);
        }
      }
    }
  }
};

Simulation::Simulation(ElabResult elab, SimOptions opts)
    : impl_(std::make_unique<Impl>()) {
  check(elab.ok && elab.design != nullptr, "Simulation requires a successful elaboration");
  design_ = std::move(elab.design);
  unit_ = std::move(elab.unit);
  impl_->owner = this;
  impl_->opts = opts;
  impl_->start();
  // Run the time-0 delta cycles so that every process reaches its first
  // suspension point (event waiters registered, initial values applied)
  // before the caller's first poke()/peek().  This matches the IEEE
  // "processes start at time 0" semantics.
  impl_->loop(0);
}

Simulation::~Simulation() = default;

SimStatus Simulation::run() {
  const SimStatus s = impl_->loop(impl_->opts.max_time);
  return s;
}

SimStatus Simulation::run_until(std::uint64_t t) {
  return impl_->loop(std::min<std::uint64_t>(t, impl_->opts.max_time));
}

SimStatus Simulation::settle() { return impl_->loop(now_); }

void Simulation::poke(const std::string& name, const Value& v) {
  const int id = design_->find(name);
  check(id >= 0, "poke: unknown signal " + name);
  LRef ref;
  ref.sig = id;
  ref.lo = 0;
  ref.width = design_->signals[static_cast<std::size_t>(id)].width;
  impl_->apply_write(ref, v, nullptr);
}

Value Simulation::peek(const std::string& name) const {
  const int id = design_->find(name);
  check(id >= 0, "peek: unknown signal " + name);
  return design_->signals[static_cast<std::size_t>(id)].value;
}

bool Simulation::has_signal(const std::string& name) const {
  return design_->find(name) >= 0;
}

}  // namespace vsd::sim
