// Shared helpers between the elaborator and the interpreter: constant
// expression evaluation over a parameter environment, and read-set
// collection for sensitivity analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "sim/value.hpp"
#include "vlog/ast.hpp"

namespace vsd::sim::detail {

/// Compile-time name environment (parameters, genvars).
using ParamEnv = std::unordered_map<std::string, Value>;

/// Evaluates a constant expression; nullopt if it references anything
/// outside `env` or uses an unsupported construct.
std::optional<Value> const_eval(const vlog::Expr& e, const ParamEnv& env);

/// const_eval + known-integer conversion.
std::optional<std::int64_t> const_eval_int(const vlog::Expr& e, const ParamEnv& env);

/// Maps a (possibly hierarchical) name to a signal id, or -1.
using ScopeResolver = std::function<int(const std::string&)>;

/// Inserts the ids of all signals read by `e` into `out`.
void collect_reads(const vlog::Expr* e, const ScopeResolver& resolve,
                   std::set<int>& out);

}  // namespace vsd::sim::detail
