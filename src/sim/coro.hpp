// SimTask — a recursive coroutine used to execute Verilog processes.
//
// Statement execution is written as ordinary recursive coroutines; a
// process suspends by `co_yield`-ing a Suspend request (delay or edge
// wait), which bubbles to the scheduler no matter how deeply nested the
// yielding statement is (symmetric transfer keeps the stack flat).
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

namespace vsd::sim {

enum class EdgeSense : std::uint8_t { Any, Pos, Neg };

/// One entry of an event wait list: signal id + edge sense.
struct EdgeWait {
  int signal = -1;
  EdgeSense sense = EdgeSense::Any;
};

/// A request from a running process to the scheduler.
struct Suspend {
  enum class Kind : std::uint8_t { Delay, Edges } kind = Suspend::Kind::Delay;
  std::uint64_t delay = 0;
  std::vector<EdgeWait> waits;

  static Suspend for_delay(std::uint64_t d) {
    Suspend s;
    s.kind = Kind::Delay;
    s.delay = d;
    return s;
  }
  static Suspend for_edges(std::vector<EdgeWait> w) {
    Suspend s;
    s.kind = Kind::Edges;
    s.waits = std::move(w);
    return s;
  }
};

class SimTask {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    Suspend pending;                 // valid on the root promise after a yield
    promise_type* root = this;
    promise_type* parent = nullptr;
    Handle self;
    Handle leaf;                     // root only: deepest active coroutine
    std::exception_ptr exc;

    SimTask get_return_object() {
      self = Handle::from_promise(*this);
      leaf = self;
      return SimTask(self);
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        promise_type& p = h.promise();
        if (p.parent != nullptr) {
          p.root->leaf = p.parent->self;
          if (p.exc != nullptr && p.parent->exc == nullptr) {
            // Propagate so the parent's ChildAwaiter can rethrow.
          }
          return p.parent->self;
        }
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    std::suspend_always yield_value(Suspend s) {
      root->pending = std::move(s);
      return {};
    }
    void return_void() {}
    void unhandled_exception() { exc = std::current_exception(); }
  };

  SimTask() = default;
  explicit SimTask(Handle h) : h_(h) {}
  SimTask(SimTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  SimTask& operator=(SimTask&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  ~SimTask() { destroy(); }

  /// Awaiting a SimTask from inside another SimTask runs it as a child:
  /// its yields bubble to the root, its completion resumes the parent.
  struct ChildAwaiter {
    Handle child;
    bool await_ready() const noexcept { return !child || child.done(); }
    std::coroutine_handle<> await_suspend(Handle parent) noexcept {
      child.promise().parent = &parent.promise();
      child.promise().root = parent.promise().root;
      parent.promise().root->leaf = child;
      return child;
    }
    void await_resume() {
      if (child && child.promise().exc != nullptr) {
        std::rethrow_exception(child.promise().exc);
      }
    }
  };
  ChildAwaiter operator co_await() const noexcept { return ChildAwaiter{h_}; }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return !h_ || h_.done(); }

  /// Resumes the deepest suspended coroutine of this (root) task.
  /// Returns false when the task has completed.  Rethrows any exception
  /// that escaped the task body.
  bool resume() {
    if (done()) return false;
    h_.promise().leaf.resume();
    if (h_.done()) {
      if (h_.promise().exc != nullptr) std::rethrow_exception(h_.promise().exc);
      return false;
    }
    return true;
  }

  /// The suspend request recorded by the last yield (root task only).
  const Suspend& pending() const { return h_.promise().pending; }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_;
};

}  // namespace vsd::sim
