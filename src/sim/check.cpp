#include "sim/check.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "vlog/parser.hpp"

namespace vsd::sim {

namespace {

std::shared_ptr<const vlog::SourceUnit> parse_shared(const std::string& source,
                                                     std::string* error) {
  vlog::ParseResult r = vlog::parse(source);
  if (!r.ok || !r.unit || r.unit->modules.empty()) {
    if (error != nullptr) {
      *error = r.ok ? "no modules found" : r.error;
    }
    return nullptr;
  }
  return std::shared_ptr<const vlog::SourceUnit>(std::move(r.unit));
}

std::string pick_top(const vlog::SourceUnit& unit, const std::string& requested) {
  if (!requested.empty()) return requested;
  return unit.modules.back()->name;
}

bool contains_ci(const std::string& haystack, std::string_view needle) {
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  if (needle.empty() || haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool name_is_clock(const std::string& n) {
  return n == "clk" || n == "clock" || n == "i_clk" || n == "clk_i";
}

struct ResetInfo {
  bool is_reset = false;
  bool active_low = false;
};

ResetInfo classify_reset(const std::string& n) {
  static const char* kActiveHigh[] = {"rst", "reset", "arst", "srst", "i_rst", "rst_i", "clr", "clear"};
  static const char* kActiveLow[] = {"rst_n", "reset_n", "rstn", "resetn", "arst_n", "nrst", "nreset", "aresetn"};
  for (const char* s : kActiveLow) {
    if (n == s) return {true, true};
  }
  for (const char* s : kActiveHigh) {
    if (n == s) return {true, false};
  }
  return {};
}

}  // namespace

CompileCheck check_compiles(const std::string& source, const std::string& top) {
  CompileCheck out;
  std::string err;
  auto unit = parse_shared(source, &err);
  if (!unit) {
    out.error = "parse: " + err;
    return out;
  }
  ElabResult elab = elaborate(unit, pick_top(*unit, top));
  if (!elab.ok) {
    out.error = "elaborate: " + elab.error;
    return out;
  }
  out.ok = true;
  return out;
}

TbResult run_testbench(const std::string& source, const std::string& top,
                       SimOptions opts) {
  TbResult out;
  std::string err;
  auto unit = parse_shared(source, &err);
  if (!unit) {
    out.error = "parse: " + err;
    return out;
  }
  ElabResult elab = elaborate(unit, pick_top(*unit, top));
  if (!elab.ok) {
    out.error = "elaborate: " + elab.error;
    return out;
  }
  Simulation sim(std::move(elab), opts);
  out.status = sim.run();
  out.log = sim.log();
  out.error = sim.error();
  out.ran = out.status == SimStatus::Finished || out.status == SimStatus::Quiet;
  const bool has_fail = contains_ci(out.log, "fail") || contains_ci(out.log, "error") ||
                        contains_ci(out.log, "mismatch");
  const bool has_pass = contains_ci(out.log, "pass");
  out.passed = out.ran && has_pass && !has_fail;
  return out;
}

namespace {

struct PortView {
  std::string name;
  int width = 1;
  bool is_clock = false;
  ResetInfo reset;
};

/// Extracts the top module's input/output port lists from an elaborated
/// design (the elaborator records top_inputs/top_outputs in port order).
struct Interface {
  std::vector<PortView> inputs;
  std::vector<PortView> outputs;
};

Interface interface_of(const Simulation& sim) {
  Interface out;
  const Design& d = sim.design();
  for (const int id : d.top_inputs) {
    const Signal& s = d.signals[static_cast<std::size_t>(id)];
    PortView p;
    p.name = s.name;
    p.width = s.width;
    p.is_clock = name_is_clock(s.name);
    p.reset = classify_reset(s.name);
    out.inputs.push_back(std::move(p));
  }
  for (const int id : d.top_outputs) {
    const Signal& s = d.signals[static_cast<std::size_t>(id)];
    PortView p;
    p.name = s.name;
    p.width = s.width;
    out.outputs.push_back(std::move(p));
  }
  return out;
}

Value random_value(Rng& rng, int width) {
  Value v(width, Logic::Zero);
  for (int i = 0; i < width; ++i) {
    v.set_bit(i, rng.next_bool() ? Logic::One : Logic::Zero);
  }
  return v;
}

/// Compares candidate output bits against golden; golden x/z bits are
/// don't-care.
bool outputs_agree(const Value& golden, const Value& cand) {
  if (golden.width() != cand.width()) return false;
  for (int i = 0; i < golden.width(); ++i) {
    const Logic g = golden.bit(i);
    if (g == Logic::X || g == Logic::Z) continue;
    if (cand.bit(i) != g) return false;
  }
  return true;
}

}  // namespace

DiffResult diff_check(const std::string& golden_src, const std::string& candidate_src,
                      const std::string& top, const DiffOptions& opts) {
  DiffResult out;

  std::string err;
  auto golden_unit = parse_shared(golden_src, &err);
  if (!golden_unit) {
    out.detail = "golden parse failed: " + err;
    return out;
  }
  ElabResult golden_elab = elaborate(golden_unit, top);
  if (!golden_elab.ok) {
    out.detail = "golden elaboration failed: " + golden_elab.error;
    return out;
  }

  auto cand_unit = parse_shared(candidate_src, &err);
  if (!cand_unit) {
    out.detail = "candidate parse failed: " + err;
    return out;
  }
  bool has_top = false;
  for (const auto& m : cand_unit->modules) has_top |= m->name == top;
  if (!has_top) {
    out.detail = "candidate does not define module '" + top + "'";
    return out;
  }
  ElabResult cand_elab = elaborate(cand_unit, top);
  if (!cand_elab.ok) {
    out.detail = "candidate elaboration failed: " + cand_elab.error;
    return out;
  }
  out.candidate_compiles = true;

  Simulation golden(std::move(golden_elab), opts.sim);
  Simulation cand(std::move(cand_elab), opts.sim);

  const Interface gif = interface_of(golden);
  const Interface cif = interface_of(cand);
  if (gif.inputs.size() != cif.inputs.size() ||
      gif.outputs.size() != cif.outputs.size()) {
    out.detail = "port count mismatch";
    return out;
  }
  for (const auto& gp : gif.inputs) {
    const auto it = std::find_if(cif.inputs.begin(), cif.inputs.end(),
                                 [&](const PortView& p) { return p.name == gp.name; });
    if (it == cif.inputs.end() || it->width != gp.width) {
      out.detail = "input port mismatch: " + gp.name;
      return out;
    }
  }
  for (const auto& gp : gif.outputs) {
    const auto it = std::find_if(cif.outputs.begin(), cif.outputs.end(),
                                 [&](const PortView& p) { return p.name == gp.name; });
    if (it == cif.outputs.end() || it->width != gp.width) {
      out.detail = "output port mismatch: " + gp.name;
      return out;
    }
  }
  out.interface_matches = true;

  Rng rng(opts.seed);
  const PortView* clock = nullptr;
  for (const auto& p : gif.inputs) {
    if (p.is_clock) {
      clock = &p;
      break;
    }
  }

  auto drive_both = [&](const std::string& name, const Value& v) {
    golden.poke(name, v);
    cand.poke(name, v);
  };
  auto settle_both = [&]() -> bool {
    const SimStatus gs = golden.settle();
    const SimStatus cs = cand.settle();
    if (gs == SimStatus::RuntimeError || gs == SimStatus::ActivityLimit) {
      out.detail = "golden simulation error: " + golden.error();
      return false;
    }
    if (cs == SimStatus::RuntimeError || cs == SimStatus::ActivityLimit) {
      out.detail = "candidate simulation error: " + cand.error();
      return false;
    }
    return true;
  };
  auto compare_outputs = [&](int step) {
    for (const auto& p : gif.outputs) {
      ++out.checks;
      const Value g = golden.peek(p.name);
      const Value c = cand.peek(p.name);
      if (!outputs_agree(g, c)) {
        ++out.mismatches;
        if (out.detail.empty()) {
          out.detail = "step " + std::to_string(step) + ": " + p.name + " golden=" +
                       g.to_bit_string() + " candidate=" + c.to_bit_string();
        }
      }
    }
  };

  if (clock != nullptr) {
    // Sequential protocol: apply reset, then random inputs each cycle.
    drive_both(clock->name, Value::from_uint(0, 1));
    for (const auto& p : gif.inputs) {
      if (p.is_clock) continue;
      if (p.reset.is_reset) {
        drive_both(p.name, Value::from_uint(p.reset.active_low ? 0 : 1, p.width));
      } else {
        drive_both(p.name, random_value(rng, p.width));
      }
    }
    if (!settle_both()) return out;
    // Two reset cycles.
    for (int i = 0; i < 2; ++i) {
      drive_both(clock->name, Value::from_uint(1, 1));
      if (!settle_both()) return out;
      drive_both(clock->name, Value::from_uint(0, 1));
      if (!settle_both()) return out;
    }
    // Deassert resets.
    for (const auto& p : gif.inputs) {
      if (p.reset.is_reset) {
        drive_both(p.name, Value::from_uint(p.reset.active_low ? 1 : 0, p.width));
      }
    }
    if (!settle_both()) return out;
    for (int cycle = 0; cycle < opts.cycles; ++cycle) {
      for (const auto& p : gif.inputs) {
        if (p.is_clock || p.reset.is_reset) continue;
        drive_both(p.name, random_value(rng, p.width));
      }
      if (!settle_both()) return out;
      drive_both(clock->name, Value::from_uint(1, 1));
      if (!settle_both()) return out;
      compare_outputs(cycle);
      drive_both(clock->name, Value::from_uint(0, 1));
      if (!settle_both()) return out;
    }
  } else {
    // Combinational protocol: random vectors.
    for (int vec = 0; vec < opts.vectors; ++vec) {
      for (const auto& p : gif.inputs) {
        drive_both(p.name, random_value(rng, p.width));
      }
      if (!settle_both()) return out;
      compare_outputs(vec);
    }
  }

  out.equivalent = out.mismatches == 0 && out.checks > 0 && out.detail.empty();
  return out;
}

}  // namespace vsd::sim
