// Syntax / functional checking built on the simulator.
//
// This is the evaluation-side substitute for the paper's iverilog flow:
//   * check_compiles  — "design and its testbench successfully compile"
//   * run_testbench   — run a self-checking testbench ($display protocol)
//   * diff_check      — drive identical stimuli into a candidate and a
//                       golden reference, compare outputs cycle by cycle
//                       (the functional-correctness judgement for pass@k)
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "sim/sim.hpp"

namespace vsd::sim {

/// Result of a compile (parse + elaborate) check.
struct CompileCheck {
  bool ok = false;
  std::string error;
};

/// Parses `source` and elaborates module `top` (default: last module in
/// the file, which is the testbench convention).
CompileCheck check_compiles(const std::string& source, const std::string& top = "");

/// Result of running a self-checking testbench.
struct TbResult {
  bool ran = false;      // compiled and simulated to completion
  bool passed = false;   // log reports success and no failure
  SimStatus status = SimStatus::Quiet;
  std::string log;
  std::string error;
};

/// Runs `source` with `top` as the testbench top module.  The testbench
/// passes when its $display output contains "TEST PASSED" (or "PASS") and
/// no "FAIL"/"ERROR" line.
TbResult run_testbench(const std::string& source, const std::string& top,
                       SimOptions opts = {});

/// Options for differential functional checking.
struct DiffOptions {
  int cycles = 64;           // clocked designs: clock cycles to compare
  int vectors = 64;          // combinational designs: random input vectors
  std::uint64_t seed = 1;    // stimulus seed
  SimOptions sim;            // per-step simulation limits
};

/// Outcome of a differential check.
struct DiffResult {
  bool candidate_compiles = false;
  bool interface_matches = false;  // same ports and widths as the golden
  bool equivalent = false;         // all compared outputs agreed
  int checks = 0;
  int mismatches = 0;
  std::string detail;              // first mismatch / failure description
};

/// Compares `candidate_src` against `golden_src`.  Both must contain a
/// module named `top`.  Port directions/widths are taken from the golden.
/// Clock inputs are recognised by name (clk/clock); resets by name
/// (rst/reset/rst_n/...; *_n/*n variants are driven active-low).  Inputs
/// are randomised each cycle/vector; outputs are compared after settling,
/// with golden x bits treated as don't-care.
DiffResult diff_check(const std::string& golden_src, const std::string& candidate_src,
                      const std::string& top, const DiffOptions& opts = {});

}  // namespace vsd::sim
