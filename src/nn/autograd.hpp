// Tape-based reverse-mode automatic differentiation over Tensor.
//
// A computation graph is built from Var nodes (shared_ptr).  `backward()`
// topologically sorts the graph and runs each node's backward closure,
// accumulating into input gradients.  Ops are deliberately fused at the
// granularity the transformer needs (attention, cross-entropy) to keep
// graphs small and CPU-friendly.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace vsd::nn {

struct Node;
using Var = std::shared_ptr<Node>;

struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily, same shape as value
  std::vector<Var> inputs;
  std::function<void()> backward_fn;  // reads this->grad, accumulates inputs
  bool requires_grad = false;
  std::string name;  // parameters only; useful for debugging/serialisation

  Tensor& ensure_grad() {
    if (grad.empty()) grad = Tensor::zeros(value.rows(), value.cols());
    return grad;
  }
};

/// Creates a leaf node (parameter or constant input).
Var make_leaf(Tensor value, bool requires_grad, std::string name = "");

/// Runs reverse-mode differentiation from `loss` (must be 1x1).
void backward(const Var& loss);

// --- operations ------------------------------------------------------------

/// y = x W + b.  x:[T,D] W:[D,E] b:[1,E] (b may be null).
Var linear(const Var& x, const Var& w, const Var& b);

/// Elementwise sum (same shapes).
Var add(const Var& a, const Var& b);

/// y = x * s (scalar constant).
Var scale(const Var& x, float s);

/// SiLU activation x * sigmoid(x).
Var silu(const Var& x);

/// Elementwise product (same shapes).
Var mul(const Var& a, const Var& b);

/// RMSNorm over rows with learned gain g:[1,D].
Var rmsnorm(const Var& x, const Var& g);

/// Embedding lookup + positional embedding:
/// out[t] = tok[ids[t]] + pos[pos_offset + t].
Var embed(const Var& tok_table, const Var& pos_table, std::span<const int> ids,
          int pos_offset = 0);

/// Multi-head self attention over pre-projected Q,K,V ([T,D] each).
/// `causal` masks future positions.
Var attention(const Var& q, const Var& k, const Var& v, int n_heads, bool causal);

/// Multi-head cross attention: Q from decoder [T,D], K/V from encoder [S,D].
Var cross_attention(const Var& q, const Var& k, const Var& v, int n_heads);

/// Mean cross-entropy over rows of logits [T,V] against `targets` (size T).
/// Rows whose target == ignore_id contribute nothing.  Returns 1x1 loss and
/// reports the number of counted rows via *counted (optional).
Var cross_entropy(const Var& logits, std::span<const int> targets, int ignore_id,
                  int* counted = nullptr);

/// Weighted sum of scalar losses: sum_i coeff[i] * losses[i].  Missing
/// (null) losses are skipped.
Var weighted_sum(const std::vector<Var>& losses, const std::vector<float>& coeffs);

/// Rows [begin, end) of x as a view-copy (gradient routed back).
Var slice_rows(const Var& x, int begin, int end);

}  // namespace vsd::nn
