#include "nn/kernel_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "nn/kernels.hpp"
#include "nn/kernels_simd.hpp"
#include "nn/quant.hpp"

namespace vsd::nn {

namespace {

// This TU is compiled WITHOUT ISA flags: it only probes and selects.  The
// vectorized bodies live in kernels_simd.cpp (per-file -mavx2 -mfma) and
// are reached exclusively through the tables below, after the probe said
// the machine executes them.

// kernels_simd.hpp duplicates the kdetail blocking geometry so the
// ISA-flagged TU never includes kernels.hpp (comdat-leak hazard); keep the
// copies in lockstep here, the one TU that sees both.
static_assert(simd_detail::kTileRows == kdetail::kTileRows &&
                  simd_detail::kTileCols == kdetail::kTileCols,
              "kernels_simd.hpp tile geometry out of sync with kernels.hpp");

// The SIMD q8 kernels take raw arrays (same comdat hazard: std::vector
// accessors must not instantiate under -mavx2), so the table entries are
// these baseline-compiled trampolines that unpack QuantizedWeights.
#if defined(VSD_KERNELS_HAVE_AVX2)
void q8_rows_avx2(const float* a, const QuantizedWeights& w, float* c, int i0,
                  int i1, float* acc) {
  simd_avx2::q8_rows(a, w.q.data(), w.scale.data(), w.zero.data(), w.k, w.n,
                     w.group, c, i0, i1, acc);
}
#endif
#if defined(VSD_KERNELS_HAVE_NEON)
void q8_rows_neon(const float* a, const QuantizedWeights& w, float* c, int i0,
                  int i1, float* acc) {
  simd_neon::q8_rows(a, w.q.data(), w.scale.data(), w.zero.data(), w.k, w.n,
                     w.group, c, i0, i1, acc);
}
#endif

bool avx2_available() {
#if defined(VSD_KERNELS_HAVE_AVX2)
  // FMA rides along with the AVX2 tier (the fast kernels use it), so both
  // must probe true before the tier is eligible.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool neon_available() {
#if defined(VSD_KERNELS_HAVE_NEON)
  return true;  // NEON is baseline on every aarch64 this builds for
#else
  return false;
#endif
}

KernelIsa probe_isa() {
  if (avx2_available()) return KernelIsa::Avx2;
  if (neon_available()) return KernelIsa::Neon;
  return KernelIsa::Scalar;
}

/// The probe result, optionally capped by VSD_KERNEL_ISA (asking for a
/// tier this build/machine lacks falls back to scalar, never crashes).
KernelIsa initial_isa() {
  KernelIsa isa = probe_isa();
  if (const char* env = std::getenv("VSD_KERNEL_ISA")) {
    if (std::strcmp(env, "scalar") == 0) {
      isa = KernelIsa::Scalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      isa = avx2_available() ? KernelIsa::Avx2 : KernelIsa::Scalar;
    } else if (std::strcmp(env, "neon") == 0) {
      isa = neon_available() ? KernelIsa::Neon : KernelIsa::Scalar;
    }
    // Anything else: ignore the override and keep the probe result.
  }
  return isa;
}

KernelMode initial_mode() {
  if (const char* env = std::getenv("VSD_KERNEL")) {
    KernelMode m = KernelMode::Exact;
    if (parse_kernel_mode(env, m)) return m;
  }
  return KernelMode::Exact;
}

std::mutex g_mu;                     // guards lazy init only
std::atomic<int> g_isa{-1};          // -1 => not yet probed
std::atomic<int> g_mode{-1};         // -1 => not yet read from env

// --- the tables --------------------------------------------------------------

constexpr KernelOps kScalarOps{
    kdetail::matmul_acc_rows, kdetail::matmul_acc_tile,
    matmul_acc_kouter_blocked, kdetail::matmul_bt_acc_tile,
    q8_matmul_acc_rows_scalar};

#if defined(VSD_KERNELS_HAVE_AVX2)
constexpr KernelOps kAvx2ExactOps{
    simd_avx2::acc_rows_exact, simd_avx2::acc_tile_exact,
    simd_avx2::acc_kouter_exact,
    // B^T dot products accumulate over p INSIDE one output element — any
    // SIMD sweep over p reassociates, so the exact tier keeps the scalar
    // register-tiled dots.
    kdetail::matmul_bt_acc_tile, q8_rows_avx2};
constexpr KernelOps kAvx2FastOps{
    simd_avx2::acc_rows_fast, simd_avx2::acc_tile_fast,
    simd_avx2::acc_kouter_fast, simd_avx2::bt_tile_fast, q8_rows_avx2};
#endif

#if defined(VSD_KERNELS_HAVE_NEON)
constexpr KernelOps kNeonExactOps{
    simd_neon::acc_rows_exact, simd_neon::acc_tile_exact,
    simd_neon::acc_kouter_exact, kdetail::matmul_bt_acc_tile, q8_rows_neon};
constexpr KernelOps kNeonFastOps{
    simd_neon::acc_rows_fast, simd_neon::acc_tile_fast,
    simd_neon::acc_kouter_fast, simd_neon::bt_tile_fast, q8_rows_neon};
#endif

}  // namespace

KernelIsa dispatched_isa() {
  const int cached = g_isa.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<KernelIsa>(cached);
  const std::lock_guard<std::mutex> lock(g_mu);
  if (g_isa.load(std::memory_order_relaxed) < 0) {
    g_isa.store(static_cast<int>(initial_isa()), std::memory_order_release);
  }
  return static_cast<KernelIsa>(g_isa.load(std::memory_order_relaxed));
}

void set_kernel_isa(KernelIsa isa) {
  if (!kernel_isa_available(isa)) isa = KernelIsa::Scalar;
  g_isa.store(static_cast<int>(isa), std::memory_order_release);
}

bool kernel_isa_available(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::Scalar: return true;
    case KernelIsa::Avx2: return avx2_available();
    case KernelIsa::Neon: return neon_available();
  }
  return false;
}

KernelMode kernel_mode() {
  const int cached = g_mode.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<KernelMode>(cached);
  const std::lock_guard<std::mutex> lock(g_mu);
  if (g_mode.load(std::memory_order_relaxed) < 0) {
    g_mode.store(static_cast<int>(initial_mode()), std::memory_order_release);
  }
  return static_cast<KernelMode>(g_mode.load(std::memory_order_relaxed));
}

void set_kernel_mode(KernelMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_release);
}

bool parse_kernel_mode(const char* name, KernelMode& out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "exact") == 0) {
    out = KernelMode::Exact;
    return true;
  }
  if (std::strcmp(name, "fast") == 0) {
    out = KernelMode::Fast;
    return true;
  }
  return false;
}

const char* isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::Scalar: return "scalar";
    case KernelIsa::Avx2: return "avx2";
    case KernelIsa::Neon: return "neon";
  }
  return "scalar";
}

const char* kernel_mode_name(KernelMode mode) {
  return mode == KernelMode::Fast ? "fast" : "exact";
}

const KernelOps& kernels_for(KernelIsa isa, KernelMode mode) {
#if defined(VSD_KERNELS_HAVE_AVX2)
  if (isa == KernelIsa::Avx2 && avx2_available()) {
    return mode == KernelMode::Fast ? kAvx2FastOps : kAvx2ExactOps;
  }
#endif
#if defined(VSD_KERNELS_HAVE_NEON)
  if (isa == KernelIsa::Neon && neon_available()) {
    return mode == KernelMode::Fast ? kNeonFastOps : kNeonExactOps;
  }
#endif
  (void)isa;
  (void)mode;
  return kScalarOps;
}

const KernelOps& active_kernels() {
  return kernels_for(dispatched_isa(), kernel_mode());
}

}  // namespace vsd::nn
