#include "nn/autograd.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "nn/parallel.hpp"

namespace vsd::nn {

Var make_leaf(Tensor value, bool requires_grad, std::string name) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  n->name = std::move(name);
  return n;
}

namespace {

Var make_op(Tensor value, std::vector<Var> inputs, std::function<void()> backward_fn) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->inputs = std::move(inputs);
  bool any = false;
  for (const Var& in : n->inputs) any = any || in->requires_grad;
  n->requires_grad = any;
  if (any) n->backward_fn = std::move(backward_fn);
  return n;
}

void topo_visit(const Var& v, std::unordered_set<Node*>& seen, std::vector<Var>& order) {
  if (!v || !v->requires_grad || seen.count(v.get()) > 0) return;
  seen.insert(v.get());
  for (const Var& in : v->inputs) topo_visit(in, seen, order);
  order.push_back(v);
}

}  // namespace

void backward(const Var& loss) {
  check(loss && loss->value.rows() == 1 && loss->value.cols() == 1,
        "backward() expects a scalar loss");
  std::unordered_set<Node*> seen;
  std::vector<Var> order;
  topo_visit(loss, seen, order);
  loss->ensure_grad().at(0, 0) = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node& n = **it;
    if (n.backward_fn && !n.grad.empty()) n.backward_fn();
  }
}

Var linear(const Var& x, const Var& w, const Var& b) {
  const int t = x->value.rows();
  const int d = x->value.cols();
  const int e = w->value.cols();
  check(w->value.rows() == d, "linear: shape mismatch");
  Tensor out(t, e);
  linear_acc(x->value.data(), w->value.data(), out.data(), t, d, e);
  if (b) {
    check(b->value.cols() == e, "linear: bias mismatch");
    for (int i = 0; i < t; ++i) {
      float* row = out.row(i);
      const float* brow = b->value.data();
      for (int j = 0; j < e; ++j) row[j] += brow[j];
    }
  }
  std::vector<Var> inputs = b ? std::vector<Var>{x, w, b} : std::vector<Var>{x, w};
  Node* xn = x.get();
  Node* wn = w.get();
  Node* bn = b ? b.get() : nullptr;
  auto result = make_op(std::move(out), std::move(inputs), nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [xn, wn, bn, rn, t, d, e]() {
      const float* dy = rn->grad.data();
      if (xn->requires_grad) {
        // Row/column partitions accumulate each grad element in one chunk,
        // so the parallel driver is bit-identical to matmul_bt_acc even
        // into a non-zero (accumulating) gradient.
        linear_bt_acc(dy, wn->value.data(), xn->ensure_grad().data(), t, e, d);
      }
      if (wn->requires_grad) {
        matmul_at_acc(xn->value.data(), dy, wn->ensure_grad().data(), t, d, e);
      }
      if (bn != nullptr && bn->requires_grad) {
        float* db = bn->ensure_grad().data();
        for (int i = 0; i < t; ++i) {
          const float* row = rn->grad.row(i);
          for (int j = 0; j < e; ++j) db[j] += row[j];
        }
      }
    };
  }
  return result;
}

Var add(const Var& a, const Var& b) {
  check(a->value.same_shape(b->value), "add: shape mismatch");
  Tensor out = a->value;
  const float* bp = b->value.data();
  float* op = out.data();
  for (std::size_t i = 0; i < out.size(); ++i) op[i] += bp[i];
  Node* an = a.get();
  Node* bn = b.get();
  auto result = make_op(std::move(out), {a, b}, nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [an, bn, rn]() {
      const float* dy = rn->grad.data();
      if (an->requires_grad) {
        float* da = an->ensure_grad().data();
        for (std::size_t i = 0; i < rn->grad.size(); ++i) da[i] += dy[i];
      }
      if (bn->requires_grad) {
        float* db = bn->ensure_grad().data();
        for (std::size_t i = 0; i < rn->grad.size(); ++i) db[i] += dy[i];
      }
    };
  }
  return result;
}

Var scale(const Var& x, float s) {
  Tensor out = x->value;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] *= s;
  Node* xn = x.get();
  auto result = make_op(std::move(out), {x}, nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [xn, rn, s]() {
      float* dx = xn->ensure_grad().data();
      const float* dy = rn->grad.data();
      for (std::size_t i = 0; i < rn->grad.size(); ++i) dx[i] += s * dy[i];
    };
  }
  return result;
}

Var silu(const Var& x) {
  Tensor out = x->value;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float v = out.data()[i];
    out.data()[i] = v / (1.0f + std::exp(-v));
  }
  Node* xn = x.get();
  auto result = make_op(std::move(out), {x}, nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [xn, rn]() {
      float* dx = xn->ensure_grad().data();
      const float* dy = rn->grad.data();
      const float* xv = xn->value.data();
      for (std::size_t i = 0; i < rn->grad.size(); ++i) {
        const float v = xv[i];
        const float sig = 1.0f / (1.0f + std::exp(-v));
        dx[i] += dy[i] * (sig * (1.0f + v * (1.0f - sig)));
      }
    };
  }
  return result;
}

Var mul(const Var& a, const Var& b) {
  check(a->value.same_shape(b->value), "mul: shape mismatch");
  Tensor out = a->value;
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] *= b->value.data()[i];
  Node* an = a.get();
  Node* bn = b.get();
  auto result = make_op(std::move(out), {a, b}, nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [an, bn, rn]() {
      const float* dy = rn->grad.data();
      if (an->requires_grad) {
        float* da = an->ensure_grad().data();
        const float* bv = bn->value.data();
        for (std::size_t i = 0; i < rn->grad.size(); ++i) da[i] += dy[i] * bv[i];
      }
      if (bn->requires_grad) {
        float* db = bn->ensure_grad().data();
        const float* av = an->value.data();
        for (std::size_t i = 0; i < rn->grad.size(); ++i) db[i] += dy[i] * av[i];
      }
    };
  }
  return result;
}

Var rmsnorm(const Var& x, const Var& g) {
  const int t = x->value.rows();
  const int d = x->value.cols();
  check(g->value.cols() == d && g->value.rows() == 1, "rmsnorm: gain mismatch");
  Tensor out(t, d);
  std::vector<float> inv_rms(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) {
    const float* row = x->value.row(i);
    float sum = 0.0f;
    for (int j = 0; j < d; ++j) sum += row[j] * row[j];
    const float inv = 1.0f / std::sqrt(sum / static_cast<float>(d) + 1e-6f);
    inv_rms[static_cast<std::size_t>(i)] = inv;
    float* orow = out.row(i);
    const float* grow = g->value.data();
    for (int j = 0; j < d; ++j) orow[j] = row[j] * inv * grow[j];
  }
  Node* xn = x.get();
  Node* gn = g.get();
  auto result = make_op(std::move(out), {x, g}, nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [xn, gn, rn, t, d, inv_rms = std::move(inv_rms)]() {
      const float* gv = gn->value.data();
      for (int i = 0; i < t; ++i) {
        const float* dy = rn->grad.row(i);
        const float* xv = xn->value.row(i);
        const float inv = inv_rms[static_cast<std::size_t>(i)];
        if (gn->requires_grad) {
          float* dg = gn->ensure_grad().data();
          for (int j = 0; j < d; ++j) dg[j] += dy[j] * xv[j] * inv;
        }
        if (xn->requires_grad) {
          float* dx = xn->ensure_grad().row(i);
          // dL/dx = inv * g * dy - inv^3 / d * x * sum(dy * g * x)
          float dot = 0.0f;
          for (int j = 0; j < d; ++j) dot += dy[j] * gv[j] * xv[j];
          const float k = inv * inv * inv * dot / static_cast<float>(d);
          for (int j = 0; j < d; ++j) dx[j] += dy[j] * gv[j] * inv - k * xv[j];
        }
      }
    };
  }
  return result;
}

Var embed(const Var& tok_table, const Var& pos_table, std::span<const int> ids,
          int pos_offset) {
  const int t = static_cast<int>(ids.size());
  const int d = tok_table->value.cols();
  check(t >= 1, "embed: empty sequence");
  check(pos_offset + t <= pos_table->value.rows(), "embed: sequence too long");
  Tensor out(t, d);
  for (int i = 0; i < t; ++i) {
    const int id = ids[static_cast<std::size_t>(i)];
    check(id >= 0 && id < tok_table->value.rows(), "embed: id out of range");
    const float* trow = tok_table->value.row(id);
    const float* prow = pos_table->value.row(pos_offset + i);
    float* orow = out.row(i);
    for (int j = 0; j < d; ++j) orow[j] = trow[j] + prow[j];
  }
  std::vector<int> ids_copy(ids.begin(), ids.end());
  Node* tn = tok_table.get();
  Node* pn = pos_table.get();
  auto result = make_op(std::move(out), {tok_table, pos_table}, nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [tn, pn, rn, t, d, pos_offset, ids = std::move(ids_copy)]() {
      for (int i = 0; i < t; ++i) {
        const float* dy = rn->grad.row(i);
        if (tn->requires_grad) {
          float* dt = tn->ensure_grad().row(ids[static_cast<std::size_t>(i)]);
          for (int j = 0; j < d; ++j) dt[j] += dy[j];
        }
        if (pn->requires_grad) {
          float* dp = pn->ensure_grad().row(pos_offset + i);
          for (int j = 0; j < d; ++j) dp[j] += dy[j];
        }
      }
    };
  }
  return result;
}

namespace {

/// Shared attention kernel.  q:[T,D], k/v:[S,D]; causal applies only when
/// the sequences coincide (self-attention).
Var attention_impl(const Var& q, const Var& k, const Var& v, int n_heads,
                   bool causal) {
  const int t = q->value.rows();
  const int s = k->value.rows();
  const int d = q->value.cols();
  check(d % n_heads == 0, "attention: heads must divide d_model");
  check(k->value.cols() == d && v->value.cols() == d && v->value.rows() == s,
        "attention: shape mismatch");
  const int dh = d / n_heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));

  Tensor out(t, d);
  // probs[h][t][s]
  auto probs = std::make_shared<std::vector<Tensor>>();
  probs->reserve(static_cast<std::size_t>(n_heads));
  for (int h = 0; h < n_heads; ++h) {
    probs->emplace_back(t, s);
    Tensor& p = probs->back();
    const int off = h * dh;
    for (int i = 0; i < t; ++i) {
      const float* qrow = q->value.row(i) + off;
      const int limit = causal ? i + 1 : s;
      float maxv = -1e30f;
      float* prow = p.row(i);
      for (int j = 0; j < limit; ++j) {
        const float* krow = k->value.row(j) + off;
        float dot = 0.0f;
        for (int c = 0; c < dh; ++c) dot += qrow[c] * krow[c];
        dot *= inv_sqrt;
        prow[j] = dot;
        maxv = std::max(maxv, dot);
      }
      float denom = 0.0f;
      for (int j = 0; j < limit; ++j) {
        prow[j] = std::exp(prow[j] - maxv);
        denom += prow[j];
      }
      const float inv_denom = 1.0f / denom;
      for (int j = 0; j < limit; ++j) prow[j] *= inv_denom;
      for (int j = limit; j < s; ++j) prow[j] = 0.0f;
      float* orow = out.row(i) + off;
      for (int c = 0; c < dh; ++c) orow[c] = 0.0f;
      for (int j = 0; j < limit; ++j) {
        const float pv = prow[j];
        if (pv == 0.0f) continue;
        const float* vrow = v->value.row(j) + off;
        for (int c = 0; c < dh; ++c) orow[c] += pv * vrow[c];
      }
    }
  }

  Node* qn = q.get();
  Node* kn = k.get();
  Node* vn = v.get();
  auto result = make_op(std::move(out), {q, k, v}, nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [qn, kn, vn, rn, n_heads, t, s, dh, inv_sqrt, causal,
                           probs]() {
      std::vector<float> dp(static_cast<std::size_t>(s));
      for (int h = 0; h < n_heads; ++h) {
        const Tensor& p = (*probs)[static_cast<std::size_t>(h)];
        const int off = h * dh;
        for (int i = 0; i < t; ++i) {
          const int limit = causal ? i + 1 : s;
          const float* dy = rn->grad.row(i) + off;
          const float* prow = p.row(i);
          // dV and dp.
          float dot_dp_p = 0.0f;
          for (int j = 0; j < limit; ++j) {
            const float* vrow = vn->value.row(j) + off;
            float acc = 0.0f;
            for (int c = 0; c < dh; ++c) acc += dy[c] * vrow[c];
            dp[static_cast<std::size_t>(j)] = acc;
            dot_dp_p += acc * prow[j];
            if (vn->requires_grad) {
              float* dv = vn->ensure_grad().row(j) + off;
              const float pv = prow[j];
              for (int c = 0; c < dh; ++c) dv[c] += pv * dy[c];
            }
          }
          // ds = p * (dp - sum(dp*p)); dQ, dK.
          const float* qrow = qn->value.row(i) + off;
          float* dq = qn->requires_grad ? qn->ensure_grad().row(i) + off : nullptr;
          for (int j = 0; j < limit; ++j) {
            const float ds = prow[j] * (dp[static_cast<std::size_t>(j)] - dot_dp_p) *
                             inv_sqrt;
            if (ds == 0.0f) continue;
            const float* krow = kn->value.row(j) + off;
            if (dq != nullptr) {
              for (int c = 0; c < dh; ++c) dq[c] += ds * krow[c];
            }
            if (kn->requires_grad) {
              float* dk = kn->ensure_grad().row(j) + off;
              for (int c = 0; c < dh; ++c) dk[c] += ds * qrow[c];
            }
          }
        }
      }
    };
  }
  return result;
}

}  // namespace

Var attention(const Var& q, const Var& k, const Var& v, int n_heads, bool causal) {
  return attention_impl(q, k, v, n_heads, causal);
}

Var cross_attention(const Var& q, const Var& k, const Var& v, int n_heads) {
  return attention_impl(q, k, v, n_heads, /*causal=*/false);
}

Var cross_entropy(const Var& logits, std::span<const int> targets, int ignore_id,
                  int* counted) {
  const int t = logits->value.rows();
  const int vsz = logits->value.cols();
  check(static_cast<int>(targets.size()) == t, "cross_entropy: target size mismatch");
  auto probs = std::make_shared<Tensor>(t, vsz);
  int count = 0;
  double loss_sum = 0.0;
  for (int i = 0; i < t; ++i) {
    const int target = targets[static_cast<std::size_t>(i)];
    const float* row = logits->value.row(i);
    float* prow = probs->row(i);
    if (target == ignore_id) {
      for (int j = 0; j < vsz; ++j) prow[j] = 0.0f;
      continue;
    }
    check(target >= 0 && target < vsz, "cross_entropy: target out of range");
    float maxv = row[0];
    for (int j = 1; j < vsz; ++j) maxv = std::max(maxv, row[j]);
    float denom = 0.0f;
    for (int j = 0; j < vsz; ++j) {
      prow[j] = std::exp(row[j] - maxv);
      denom += prow[j];
    }
    const float inv = 1.0f / denom;
    for (int j = 0; j < vsz; ++j) prow[j] *= inv;
    loss_sum += -std::log(static_cast<double>(std::max(prow[target], 1e-12f)));
    ++count;
  }
  if (counted != nullptr) *counted = count;
  Tensor out(1, 1);
  out.at(0, 0) = count > 0 ? static_cast<float>(loss_sum / count) : 0.0f;
  std::vector<int> targets_copy(targets.begin(), targets.end());
  Node* ln = logits.get();
  auto result = make_op(std::move(out), {logits}, nullptr);
  Node* rn = result.get();
  if (result->requires_grad && count > 0) {
    result->backward_fn = [ln, rn, t, vsz, count, probs,
                           targets = std::move(targets_copy), ignore_id]() {
      const float dscale = rn->grad.at(0, 0) / static_cast<float>(count);
      float* dl = ln->ensure_grad().data();
      for (int i = 0; i < t; ++i) {
        const int target = targets[static_cast<std::size_t>(i)];
        if (target == ignore_id) continue;
        const float* prow = probs->row(i);
        float* drow = dl + static_cast<std::size_t>(i) * vsz;
        for (int j = 0; j < vsz; ++j) drow[j] += dscale * prow[j];
        drow[target] -= dscale;
      }
    };
  } else {
    result->backward_fn = nullptr;
  }
  return result;
}

Var weighted_sum(const std::vector<Var>& losses, const std::vector<float>& coeffs) {
  check(losses.size() == coeffs.size(), "weighted_sum: size mismatch");
  Tensor out(1, 1);
  std::vector<Var> inputs;
  std::vector<float> used_coeffs;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    if (!losses[i]) continue;
    out.at(0, 0) += coeffs[i] * losses[i]->value.at(0, 0);
    inputs.push_back(losses[i]);
    used_coeffs.push_back(coeffs[i]);
  }
  check(!inputs.empty(), "weighted_sum: no losses");
  std::vector<Node*> raw;
  raw.reserve(inputs.size());
  for (const Var& v : inputs) raw.push_back(v.get());
  auto result = make_op(std::move(out), std::move(inputs), nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [rn, raw = std::move(raw), used_coeffs]() {
      const float dy = rn->grad.at(0, 0);
      for (std::size_t i = 0; i < raw.size(); ++i) {
        if (raw[i]->requires_grad) raw[i]->ensure_grad().at(0, 0) += dy * used_coeffs[i];
      }
    };
  }
  return result;
}

Var slice_rows(const Var& x, int begin, int end) {
  check(begin >= 0 && end <= x->value.rows() && begin < end, "slice_rows: bad range");
  const int d = x->value.cols();
  Tensor out(end - begin, d);
  for (int i = begin; i < end; ++i) {
    const float* src = x->value.row(i);
    float* dst = out.row(i - begin);
    std::copy(src, src + d, dst);
  }
  Node* xn = x.get();
  auto result = make_op(std::move(out), {x}, nullptr);
  Node* rn = result.get();
  if (result->requires_grad) {
    result->backward_fn = [xn, rn, begin, d]() {
      for (int i = 0; i < rn->grad.rows(); ++i) {
        float* dx = xn->ensure_grad().row(begin + i);
        const float* dy = rn->grad.row(i);
        for (int j = 0; j < d; ++j) dx[j] += dy[j];
      }
    };
  }
  return result;
}

}  // namespace vsd::nn
