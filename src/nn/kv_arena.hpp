// nn::KvArena — block-paged KV-cache storage with refcounted
// copy-on-write prefix sharing (the vLLM/PagedAttention storage model,
// scaled to this codebase).
//
// KV rows live in fixed-size token-pages: one page holds every decoder
// layer's K and V rows for `page` consecutive positions, contiguously.
// An InferSession no longer owns flat [max_seq, D] buffers; it holds a
// page table (vector of page ids) into an arena shared by every session
// (and every warm cache entry) of one model.  Sharing is by refcount:
// capturing a prompt prefix (`InferSession::share_prefix`) or restoring
// one (`adopt_prefix`) bumps the covered pages' refcounts — O(pages)
// instead of the O(bytes) row copies the old KvSnapshot path paid — and
// a session appending into a page it shares with someone else first
// clones just that page (copy-on-write), so divergence costs one page,
// not a whole prefix.
//
// Determinism: pages only move bytes (memcpy on clone, row writes on
// feed); attention always reads rows in ascending position order through
// the page table, so paged and flat KV layouts are bit-identical — a
// one-page-per-sequence arena IS the old flat buffer.
//
// Thread safety: alloc/free take the arena mutex; refcounts are atomic
// (incref requires the caller to already hold a reference, which every
// caller does — you can only share pages you reference).  Page buffers
// are published before their id is handed out and never deallocated
// while any reference exists, so concurrent readers of shared pages need
// no further synchronization.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "nn/tensor.hpp"

namespace vsd::nn {

struct KvArenaOptions {
  int page = 16;      // positions per page
  int max_pages = 0;  // hard page-id cap; 0 => derived (64 sequences' worth)
};

/// O(1) pressure sample for per-tick monitoring: unlike KvArenaStats it
/// never scans the page directory, so the scheduler can read it every
/// tick without the shared-page census cost.
struct KvPressure {
  int in_use = 0;       // pages currently referenced
  int free_pages = 0;   // buffers parked on the free list
  int cap = 0;          // hard page-id cap
  long cow_clones = 0;  // cumulative copy-on-write clones
};

/// A point-in-time accounting of one arena (serve summary / bench ledger).
struct KvArenaStats {
  int page = 0;                    // positions per page
  std::size_t page_bytes = 0;      // bytes per page (all layers' K+V rows)
  std::size_t pages_total = 0;     // pages currently referenced (in use)
  std::size_t pages_shared = 0;    // in-use pages with refcount > 1
  std::size_t pages_free = 0;      // allocated buffers parked on the free list
  long pages_cow_cloned = 0;       // cumulative copy-on-write page clones
  std::size_t bytes = 0;           // pages_total * page_bytes
};

class KvArena {
 public:
  /// Geometry comes from the model: `n_layers` decoder layers of width
  /// `d_model`.  `max_seq` sizes the derived default page cap.
  KvArena(int n_layers, int d_model, int max_seq, KvArenaOptions opts = {});

  int page_size() const { return page_; }
  int n_layers() const { return n_layers_; }
  int d_model() const { return d_model_; }
  std::size_t page_floats() const { return page_floats_; }
  std::size_t page_bytes() const { return page_floats_ * sizeof(float); }
  int max_pages() const { return cap_; }
  /// Pages needed to hold `len` positions (ceil division).
  int pages_for(int len) const { return (len + page_ - 1) / page_; }

  /// Allocates a page (free list first), refcount 1.  Throws when the
  /// page cap is exhausted (`--kv-pages-max` raises it).
  int alloc_page();
  /// Adds a reference.  The caller must already hold one.
  void incref(int id);
  /// Drops a reference; the page returns to the free list at zero.
  void decref(int id);
  int refcount(int id) const;

  /// Copy-on-write clone: a fresh page with identical bytes, refcount 1.
  /// The caller must hold a reference on `id` (it is reading the page).
  int clone_page(int id);

  /// Base of a page's float storage.  Valid while the caller holds a
  /// reference on the page.
  float* page_data(int id) { return pages_[static_cast<std::size_t>(id)].get(); }
  const float* page_data(int id) const {
    return pages_[static_cast<std::size_t>(id)].get();
  }

  // Row addressing inside a page: all K rows of a layer, then its V rows.
  std::size_t k_offset(int layer, int slot) const {
    return (static_cast<std::size_t>(layer) * 2 * static_cast<std::size_t>(page_) +
            static_cast<std::size_t>(slot)) *
           static_cast<std::size_t>(d_model_);
  }
  std::size_t v_offset(int layer, int slot) const {
    return (static_cast<std::size_t>(layer) * 2 * static_cast<std::size_t>(page_) +
            static_cast<std::size_t>(page_) + static_cast<std::size_t>(slot)) *
           static_cast<std::size_t>(d_model_);
  }
  float* k_row(int id, int layer, int slot) {
    return page_data(id) + k_offset(layer, slot);
  }
  const float* k_row(int id, int layer, int slot) const {
    return page_data(id) + k_offset(layer, slot);
  }
  float* v_row(int id, int layer, int slot) {
    return page_data(id) + v_offset(layer, slot);
  }
  const float* v_row(int id, int layer, int slot) const {
    return page_data(id) + v_offset(layer, slot);
  }

  KvArenaStats stats() const;
  KvPressure pressure() const;

 private:
  const int page_;
  const int n_layers_;
  const int d_model_;
  const int cap_;
  const std::size_t page_floats_;

  mutable std::mutex mu_;                         // free list + directory growth
  std::vector<std::unique_ptr<float[]>> pages_;   // directory, fixed size cap_
  std::unique_ptr<std::atomic<int>[]> refs_;
  std::vector<int> free_;                         // ids with refcount 0
  int next_ = 0;                                  // first never-allocated id
  std::atomic<long> cow_clones_{0};
};

/// A refcounted run of arena pages covering the first `len` positions of
/// some sequence — the unit the serving layer's prefix cache stores and
/// the currency of zero-copy prefix sharing.  Holding a KvPrefix keeps
/// the covered pages (and the arena) alive; destruction drops the page
/// references.  Movable, not copyable (copying would need refcount bumps
/// the type makes explicit via InferSession::share_prefix).
class KvPrefix {
 public:
  KvPrefix() = default;
  KvPrefix(std::shared_ptr<KvArena> arena, std::vector<int> pages, int len,
           Tensor enc_out);
  KvPrefix(KvPrefix&& o) noexcept;
  KvPrefix& operator=(KvPrefix&& o) noexcept;
  KvPrefix(const KvPrefix&) = delete;
  KvPrefix& operator=(const KvPrefix&) = delete;
  ~KvPrefix();

  const std::shared_ptr<KvArena>& arena() const { return arena_; }
  const std::vector<int>& pages() const { return pages_; }
  int len() const { return len_; }
  const Tensor& enc_out() const { return enc_out_; }
  bool empty() const { return len_ == 0; }

  /// KV row access through the prefix's own page table (cross-arena
  /// adoption materializes rows through these).
  const float* k_row(int layer, int pos) const;
  const float* v_row(int layer, int pos) const;

  /// Bytes held: covered pages (each counted in full — the page is the
  /// allocation unit) plus any encoder context.  Sharing is accounted at
  /// the cache level, where distinct pages across entries are visible.
  std::size_t byte_size() const;

  void release();

 private:
  std::shared_ptr<KvArena> arena_;
  std::vector<int> pages_;
  int len_ = 0;
  Tensor enc_out_;
};

}  // namespace vsd::nn
