#include "nn/kv_arena.hpp"

#include <cstring>

namespace vsd::nn {

namespace {

int derived_cap(int max_seq, int page, int requested) {
  if (requested > 0) return requested;
  // Default: 64 sequences' worth of pages — covers a serving batch plus a
  // default-sized warm cache with room for copy-on-write divergence.
  const int per_seq = (max_seq + page - 1) / page;
  const int cap = 64 * per_seq;
  return cap < 256 ? 256 : cap;
}

}  // namespace

KvArena::KvArena(int n_layers, int d_model, int max_seq, KvArenaOptions opts)
    : page_(opts.page),
      n_layers_(n_layers),
      d_model_(d_model),
      cap_(derived_cap(max_seq, opts.page < 1 ? 1 : opts.page, opts.max_pages)),
      page_floats_(static_cast<std::size_t>(n_layers) * 2 *
                   static_cast<std::size_t>(page_ < 1 ? 1 : page_) *
                   static_cast<std::size_t>(d_model)) {
  check(page_ >= 1, "KvArena: page size must be >= 1");
  check(n_layers_ >= 1 && d_model_ >= 1, "KvArena: bad model geometry");
  check(cap_ >= pages_for(max_seq),
        "KvArena: max_pages cannot hold even one max_seq sequence");
  pages_.resize(static_cast<std::size_t>(cap_));
  refs_ = std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(cap_));
  for (int i = 0; i < cap_; ++i) refs_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
}

int KvArena::alloc_page() {
  const std::lock_guard<std::mutex> lock(mu_);
  int id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    check(next_ < cap_,
          "KvArena: out of pages (raise --kv-pages-max or shrink the cache)");
    id = next_++;
    pages_[static_cast<std::size_t>(id)] =
        std::make_unique<float[]>(page_floats_);
  }
  refs_[static_cast<std::size_t>(id)].store(1, std::memory_order_relaxed);
  return id;
}

void KvArena::incref(int id) {
  // The caller holds a reference, so the count is >= 1 and cannot hit
  // zero concurrently; a relaxed bump is enough.
  refs_[static_cast<std::size_t>(id)].fetch_add(1, std::memory_order_relaxed);
}

void KvArena::decref(int id) {
  const int prev =
      refs_[static_cast<std::size_t>(id)].fetch_sub(1, std::memory_order_acq_rel);
  check(prev >= 1, "KvArena: decref of a free page");
  if (prev == 1) {
    const std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(id);  // buffer stays allocated for reuse
  }
}

int KvArena::refcount(int id) const {
  return refs_[static_cast<std::size_t>(id)].load(std::memory_order_acquire);
}

int KvArena::clone_page(int id) {
  const int copy = alloc_page();
  std::memcpy(page_data(copy), page_data(id), page_bytes());
  cow_clones_.fetch_add(1, std::memory_order_relaxed);
  return copy;
}

KvArenaStats KvArena::stats() const {
  KvArenaStats s;
  s.page = page_;
  s.page_bytes = page_bytes();
  s.pages_cow_cloned = cow_clones_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  s.pages_free = free_.size();
  s.pages_total = static_cast<std::size_t>(next_) - free_.size();
  for (int i = 0; i < next_; ++i) {
    if (refs_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed) > 1) {
      ++s.pages_shared;
    }
  }
  s.bytes = s.pages_total * s.page_bytes;
  return s;
}

KvPressure KvArena::pressure() const {
  KvPressure p;
  p.cap = cap_;
  p.cow_clones = cow_clones_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  p.free_pages = static_cast<int>(free_.size());
  p.in_use = next_ - p.free_pages;
  return p;
}

// --- KvPrefix -----------------------------------------------------------------

KvPrefix::KvPrefix(std::shared_ptr<KvArena> arena, std::vector<int> pages,
                   int len, Tensor enc_out)
    : arena_(std::move(arena)),
      pages_(std::move(pages)),
      len_(len),
      enc_out_(std::move(enc_out)) {}

KvPrefix::KvPrefix(KvPrefix&& o) noexcept
    : arena_(std::move(o.arena_)),
      pages_(std::move(o.pages_)),
      len_(o.len_),
      enc_out_(std::move(o.enc_out_)) {
  o.pages_.clear();
  o.len_ = 0;
}

KvPrefix& KvPrefix::operator=(KvPrefix&& o) noexcept {
  if (this != &o) {
    release();
    arena_ = std::move(o.arena_);
    pages_ = std::move(o.pages_);
    len_ = o.len_;
    enc_out_ = std::move(o.enc_out_);
    o.pages_.clear();
    o.len_ = 0;
  }
  return *this;
}

KvPrefix::~KvPrefix() { release(); }

void KvPrefix::release() {
  if (arena_) {
    for (const int id : pages_) arena_->decref(id);
  }
  pages_.clear();
  len_ = 0;
  arena_.reset();
  enc_out_ = Tensor();
}

const float* KvPrefix::k_row(int layer, int pos) const {
  const int p = arena_->page_size();
  return arena_->k_row(pages_[static_cast<std::size_t>(pos / p)], layer, pos % p);
}

const float* KvPrefix::v_row(int layer, int pos) const {
  const int p = arena_->page_size();
  return arena_->v_row(pages_[static_cast<std::size_t>(pos / p)], layer, pos % p);
}

std::size_t KvPrefix::byte_size() const {
  const std::size_t page_bytes = arena_ ? arena_->page_bytes() : 0;
  return pages_.size() * page_bytes + enc_out_.size() * sizeof(float);
}

}  // namespace vsd::nn
