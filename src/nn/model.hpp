// Miniature transformer language models (decoder-only and encoder-decoder)
// with optional MEDUSA-style extra decoding heads.
//
// These stand in for CodeLlama-7b (decoder-only) and CodeT5p-220m
// (encoder-decoder) in the reproduction: the speculative-decoding method
// under study operates on decoding mechanics and label construction, which
// are architecture-size independent.
//
// Two execution paths share one set of weights:
//   * a training path building an autograd graph (micro-batch of one
//     sequence, as in the paper's QLoRA setup), and
//   * an inference path with a KV cache that can feed several positions in
//     one call and truncate (roll back) — exactly the primitive speculative
//     decoding needs for candidate verification.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/autograd.hpp"
#include "nn/kv_arena.hpp"
#include "nn/quant.hpp"

namespace vsd::nn {

/// Compressed-weight accounting for the fast kernel mode (surfaces in the
/// serve summary's `kernel` block).  All zero until a fast-mode inference
/// packs the first matrix.
struct QuantStats {
  int matrices = 0;             // [D, V] weights packed so far
  std::size_t int8_bytes = 0;   // packed size (codes + per-group affines)
  std::size_t fp32_bytes = 0;   // the fp32 originals they replace
  double max_abs_error = 0.0;   // worst |w - dequant(w)| across matrices
};

struct ModelConfig {
  int vocab = 512;
  int d_model = 64;
  int n_layers = 2;
  int n_heads = 2;
  int d_ff = 192;
  int max_seq = 512;
  bool encoder_decoder = false;  // CodeT5p-style when true
  int enc_layers = 2;
  int n_medusa_heads = 0;        // 0 => plain NTP model

  std::size_t param_count() const;
};

class InferSession;

class TransformerModel {
 public:
  TransformerModel(ModelConfig cfg, std::uint64_t seed);

  const ModelConfig& config() const { return cfg_; }

  // --- training graph -------------------------------------------------------
  /// Encoder hidden states [S, D] (encoder-decoder models only).
  Var encode_hidden(std::span<const int> src_ids);
  /// Decoder hidden states [T, D]; `enc` supplies cross-attention context
  /// for encoder-decoder models (null for decoder-only).
  Var decode_hidden(std::span<const int> ids, const Var& enc = nullptr);
  /// Base LM logits [T, V].
  Var lm_logits(const Var& hidden);
  /// MEDUSA head logits [T, V] for head index k in [0, n_medusa_heads).
  Var head_logits(const Var& hidden, int k);

  // --- parameters ------------------------------------------------------------
  const std::vector<Var>& params() const { return params_; }
  /// Per-parameter learning-rate multiplier (MEDUSA heads train at 4x the
  /// base LR, Section IV-A2).
  float lr_mult(const Var& p) const;
  std::size_t param_count() const;

  // --- inference-path scoring (no autograd) ----------------------------------
  /// Base-LM logits for hidden rows [n, D] -> [n, V].  Thread-safe (reads
  /// weights only) and row-independent: scoring a [B, D] stack of rows
  /// gathered from many sessions is bit-identical to B separate [1, D]
  /// calls, which is what lets the serving scheduler fuse the per-session
  /// logits matmuls into one [B, D] x [D, V] pass per tick.  Under
  /// `--kernel fast` the [D, V] weight streams as grouped int8
  /// (quant.hpp), packed lazily on the first fast-mode call — results
  /// then differ by the quantization error; exact mode never touches the
  /// packed weights.
  Tensor infer_lm_logits(const Tensor& hidden) const;
  /// MEDUSA-head logits [n, D] -> [n, V] for head k; same row-independent
  /// batching contract (and fast-mode compression of the head's [D, V]
  /// projection) as infer_lm_logits.
  Tensor infer_head_logits(const Tensor& hidden, int k) const;

  /// Accounting for the lazily packed compressed weights (zeros until a
  /// fast-mode inference runs).  Thread-safe.
  QuantStats quant_stats() const;

  /// Simple binary checkpoint (config + named tensors).
  std::string serialize() const;
  static std::unique_ptr<TransformerModel> deserialize(std::string_view data);

 private:
  friend class InferSession;

  Var param(const std::string& name) const;
  Var add_param(const std::string& name, Tensor t);
  Var block_forward(Var x, const std::string& prefix, bool causal, const Var& enc);

  /// The grouped-int8 pack of parameter `name`, built on first use.
  /// Contract: fast-mode inference only starts after training finishes
  /// (the CLI switches the kernel mode post-training), so a pack never
  /// goes stale — weights are frozen by the time anything reads it.
  const QuantizedWeights& quantized(const std::string& name) const;

  ModelConfig cfg_;
  std::vector<Var> params_;
  std::unordered_map<std::string, Var> by_name_;
  // Lazily packed compressed weights (see quantized()).  Mutable + mutex:
  // packing happens inside const, concurrent inference calls.
  mutable std::mutex quant_mu_;
  mutable std::unordered_map<std::string, std::unique_ptr<QuantizedWeights>>
      quant_;
};

/// Detachable DEEP COPY of the first `len` positions of an InferSession's
/// KV cache (plus any encoder context).  Compatibility shim from before
/// the paged KvArena: production prefix reuse goes through
/// InferSession::share_prefix / adopt_prefix (O(pages) refcount bumps on
/// shared arena pages); a snapshot still materializes detached row copies
/// for tests and cross-process uses, at O(bytes).
struct KvSnapshot {
  int len = 0;                  // cached positions
  std::vector<Tensor> k_rows;   // per decoder layer: [len, D]
  std::vector<Tensor> v_rows;
  Tensor enc_out;               // [S, D] encoder output (enc-dec only)

  std::size_t byte_size() const;
};

/// KV-cached inference over a TransformerModel (no gradients).
///
/// Storage is a page table into a KvArena: fixed-size token-pages holding
/// all layers' K/V rows for a run of positions, shared by refcount across
/// sessions and warm-cache entries of one model.  Feeds append through
/// the table with zero-copy row access (attention resolves row pointers
/// through the pages in ascending position order, so results are
/// bit-identical to a flat [max_seq, D] cache for ANY page size); a feed
/// that would write into a page shared with another holder first clones
/// just that page (copy-on-write).  Pass a shared arena to let sessions
/// share prefix pages; by default each session gets a private arena.
class InferSession {
 public:
  explicit InferSession(const TransformerModel& m,
                        std::shared_ptr<KvArena> arena = nullptr);
  InferSession(const InferSession&) = delete;
  InferSession& operator=(const InferSession&) = delete;
  ~InferSession();

  /// Encoder-decoder models: run the encoder once over the source prompt.
  void set_encoder(std::span<const int> src_ids);

  /// Appends `ids` at the current position and returns their final hidden
  /// states [n, D].  Cost is one pass over n positions (this batching is
  /// what makes speculative verification cheaper than n sequential steps).
  Tensor feed(std::span<const int> ids);

  /// Rolls the cache back to `new_len` positions (rejected speculation).
  void truncate(int new_len);

  /// Clears the sequence (and any encoder context) so the KV-cache
  /// allocations can be reused for a new request (serving session reuse).
  void reset();

  /// Shares the first `upto_len` cached positions (1 <= upto_len <= len())
  /// as a refcounted page run — O(pages) refcount bumps, zero row copies.
  /// The prefix keeps its pages (and the arena) alive independently of
  /// this session; a later feed past a shared page copy-on-writes it.
  KvPrefix share_prefix(int upto_len) const;

  /// Replaces this session's state with the first `upto_len` positions of
  /// `p` (-1 => all of it).  Same-arena prefixes are adopted by reference
  /// — O(pages) refcount bumps, the restored-prefill fast path; a prefix
  /// from a different arena (or page geometry) is materialized by copying
  /// rows into freshly allocated pages.
  void adopt_prefix(const KvPrefix& p, int upto_len = -1);

  /// DEEP-COPY compatibility shims over the paged storage (see
  /// KvSnapshot): snapshot copies rows out of the pages; restore copies
  /// them into freshly allocated pages.
  KvSnapshot snapshot(int upto_len) const;
  void restore(const KvSnapshot& snap, int upto_len = -1);

  int len() const { return len_; }
  const std::shared_ptr<KvArena>& arena() const { return arena_; }

  /// Base-model logits for hidden rows [n, V].
  Tensor lm_logits(const Tensor& hidden) const;
  /// MEDUSA-head logits [n, V].
  Tensor head_logits(const Tensor& hidden, int k) const;

 private:
  const TransformerModel& m_;
  std::shared_ptr<KvArena> arena_;
  int len_ = 0;
  // Page table: pages_[i] holds positions [i*page, (i+1)*page).  The
  // invariant between calls is pages_.size() == ceil(len_ / page): a
  // rollback drops (derefs) pages wholly beyond the new length.
  std::vector<int> pages_;
  Tensor enc_out_;  // [S, D] encoder output (encoder-decoder only)

  const Tensor& weight(const std::string& name) const;
  void release_pages(std::size_t from_page);
  /// Makes positions [len_, len_ + n) writable: copy-on-writes a shared
  /// tail page and appends freshly allocated pages as needed.
  void prepare_append(int n);
};

}  // namespace vsd::nn
