// Miniature transformer language models (decoder-only and encoder-decoder)
// with optional MEDUSA-style extra decoding heads.
//
// These stand in for CodeLlama-7b (decoder-only) and CodeT5p-220m
// (encoder-decoder) in the reproduction: the speculative-decoding method
// under study operates on decoding mechanics and label construction, which
// are architecture-size independent.
//
// Two execution paths share one set of weights:
//   * a training path building an autograd graph (micro-batch of one
//     sequence, as in the paper's QLoRA setup), and
//   * an inference path with a KV cache that can feed several positions in
//     one call and truncate (roll back) — exactly the primitive speculative
//     decoding needs for candidate verification.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/autograd.hpp"

namespace vsd::nn {

struct ModelConfig {
  int vocab = 512;
  int d_model = 64;
  int n_layers = 2;
  int n_heads = 2;
  int d_ff = 192;
  int max_seq = 512;
  bool encoder_decoder = false;  // CodeT5p-style when true
  int enc_layers = 2;
  int n_medusa_heads = 0;        // 0 => plain NTP model

  std::size_t param_count() const;
};

class InferSession;

class TransformerModel {
 public:
  TransformerModel(ModelConfig cfg, std::uint64_t seed);

  const ModelConfig& config() const { return cfg_; }

  // --- training graph -------------------------------------------------------
  /// Encoder hidden states [S, D] (encoder-decoder models only).
  Var encode_hidden(std::span<const int> src_ids);
  /// Decoder hidden states [T, D]; `enc` supplies cross-attention context
  /// for encoder-decoder models (null for decoder-only).
  Var decode_hidden(std::span<const int> ids, const Var& enc = nullptr);
  /// Base LM logits [T, V].
  Var lm_logits(const Var& hidden);
  /// MEDUSA head logits [T, V] for head index k in [0, n_medusa_heads).
  Var head_logits(const Var& hidden, int k);

  // --- parameters ------------------------------------------------------------
  const std::vector<Var>& params() const { return params_; }
  /// Per-parameter learning-rate multiplier (MEDUSA heads train at 4x the
  /// base LR, Section IV-A2).
  float lr_mult(const Var& p) const;
  std::size_t param_count() const;

  // --- inference-path scoring (no autograd) ----------------------------------
  /// Base-LM logits for hidden rows [n, D] -> [n, V].  Thread-safe (reads
  /// weights only) and row-independent: scoring a [B, D] stack of rows
  /// gathered from many sessions is bit-identical to B separate [1, D]
  /// calls, which is what lets the serving scheduler fuse the per-session
  /// logits matmuls into one [B, D] x [D, V] pass per tick.
  Tensor infer_lm_logits(const Tensor& hidden) const;
  /// MEDUSA-head logits [n, D] -> [n, V] for head k; same row-independent
  /// batching contract as infer_lm_logits.
  Tensor infer_head_logits(const Tensor& hidden, int k) const;

  /// Simple binary checkpoint (config + named tensors).
  std::string serialize() const;
  static std::unique_ptr<TransformerModel> deserialize(std::string_view data);

 private:
  friend class InferSession;

  Var param(const std::string& name) const;
  Var add_param(const std::string& name, Tensor t);
  Var block_forward(Var x, const std::string& prefix, bool causal, const Var& enc);

  ModelConfig cfg_;
  std::vector<Var> params_;
  std::unordered_map<std::string, Var> by_name_;
};

/// Detachable copy of the first `len` positions of an InferSession's KV
/// cache (plus any encoder context): the unit of reuse behind the serving
/// layer's prompt-prefix cache.  A snapshot outlives the session it was
/// taken from and can be restored into any session of a same-shaped model.
struct KvSnapshot {
  int len = 0;                  // cached positions
  std::vector<Tensor> k_rows;   // per decoder layer: [len, D]
  std::vector<Tensor> v_rows;
  Tensor enc_out;               // [S, D] encoder output (enc-dec only)

  std::size_t byte_size() const;
};

/// KV-cached inference over a TransformerModel (no gradients).
class InferSession {
 public:
  explicit InferSession(const TransformerModel& m);

  /// Encoder-decoder models: run the encoder once over the source prompt.
  void set_encoder(std::span<const int> src_ids);

  /// Appends `ids` at the current position and returns their final hidden
  /// states [n, D].  Cost is one pass over n positions (this batching is
  /// what makes speculative verification cheaper than n sequential steps).
  Tensor feed(std::span<const int> ids);

  /// Rolls the cache back to `new_len` positions (rejected speculation).
  void truncate(int new_len);

  /// Clears the sequence (and any encoder context) so the KV-cache
  /// allocations can be reused for a new request (serving session reuse).
  void reset();

  /// Copies the first `upto_len` cached positions (1 <= upto_len <= len())
  /// into a detachable snapshot, so a prompt prefill can be captured once
  /// and replayed into other sessions.
  KvSnapshot snapshot(int upto_len) const;

  /// Replaces this session's state with the first `upto_len` positions of
  /// `snap` (-1 => all of it) — a restored prefill, ready to feed suffix
  /// tokens.  The snapshot must come from a same-shaped model.
  void restore(const KvSnapshot& snap, int upto_len = -1);

  int len() const { return len_; }

  /// Base-model logits for hidden rows [n, V].
  Tensor lm_logits(const Tensor& hidden) const;
  /// MEDUSA-head logits [n, V].
  Tensor head_logits(const Tensor& hidden, int k) const;

 private:
  const TransformerModel& m_;
  int len_ = 0;
  // Per decoder layer: cached K and V, each [max_seq, D].
  std::vector<Tensor> k_cache_;
  std::vector<Tensor> v_cache_;
  Tensor enc_out_;  // [S, D] encoder output (encoder-decoder only)

  const Tensor& weight(const std::string& name) const;
};

}  // namespace vsd::nn
