// Process-wide compute pool and parallel GEMM drivers.
//
// One shared vsd::ThreadPool (the "compute pool") sits under every
// inference matmul in the process.  Sizing:
//   * VSD_COMPUTE_THREADS=N or the CLI's --compute-threads N pin it;
//   * otherwise it defaults to std::thread::hardware_concurrency();
//   * 1 means no pool at all — apply_linear takes the exact pre-existing
//     serial kernels (matmul_acc / matmul_acc_kouter), byte-for-byte the
//     old execution path.
//
// Determinism: the drivers only ever partition whole output rows or whole
// output columns across workers, and every partition runs the blocked
// kernels of kernels.hpp, whose per-element accumulation order matches the
// serial references.  Results are therefore bit-identical for ANY thread
// count — the serving stack's temperature-0 token parity holds at
// --compute-threads 1 and 64 alike.
//
// Nesting: kernels issued from a compute-pool worker (e.g. a draft-head
// pass the scheduler fanned out as one coarse task) run serially inline on
// that worker instead of re-submitting to the pool, so the pool can never
// deadlock on itself.
#pragma once

#include <functional>

#include "common/thread_pool.hpp"

namespace vsd::nn {

/// Real core count (memoized std::thread::hardware_concurrency, >= 1).
/// Work fan-out is capped here: threads past the hardware only add context
/// switches, so on a single-core host the pool is created but never fed —
/// kernels run their serial blocked path.
int hardware_threads();

/// Current compute-pool width.  First call initializes from
/// VSD_COMPUTE_THREADS (falling back to hardware concurrency; >= 1).
int compute_threads();

/// Resizes the process-wide pool (n < 1 is clamped to 1; 1 tears the pool
/// down and restores the exact serial path).  Not safe to call while
/// kernels are in flight — call it at startup or between serving passes,
/// as the CLI, benches, and tests do.
void set_compute_threads(int n);

/// The shared pool, or nullptr when compute_threads() == 1.  It holds
/// compute_threads() - 1 workers — the thread issuing a kernel always works
/// the first chunk itself, so N means N occupied threads, not N + 1.
/// Coarse-grained callers (the scheduler's per-head scoring passes) may
/// submit whole tasks here; kernels inside such tasks automatically run
/// serially.
ThreadPool* compute_pool();

/// True on a compute-pool worker thread (inside a submitted task).
bool on_compute_worker();

/// Splits [0, total) into contiguous chunks of at least min_grain and runs
/// body(lo, hi) for each — across the compute pool when it exists and the
/// range is worth splitting, inline otherwise (always inline when already
/// on a compute worker).  The calling thread works on the first chunk.
/// Exceptions from any chunk rethrow here.
void parallel_ranges(int total, int min_grain,
                     const std::function<void(int, int)>& body);

/// C[MxN] += A[MxK] * B[KxN], row- or column-partitioned across the
/// compute pool (bit-identical to matmul_acc for any thread count).
/// Row partitioning is preferred; skinny-but-wide shapes — the [B, D] x
/// [D, V] logit GEMMs — fall back to column partitioning so a small batch
/// still spreads across the pool.
void matmul_acc_parallel(const float* a, const float* b, float* c, int m,
                         int k, int n);

/// C[MxN] += A[MxK] * B^T (B is [NxK]), partitioned like
/// matmul_acc_parallel; bit-identical to matmul_bt_acc.
void matmul_bt_acc_parallel(const float* a, const float* b, float* c, int m,
                            int k, int n);

/// The production linear-layer entry (used by every inference matmul):
/// parallel blocked drivers when the compute pool exists, the exact
/// pre-existing serial kernels at compute_threads() == 1.
void linear_acc(const float* a, const float* b, float* c, int m, int k, int n);

/// Same dispatch for the transposed-weight product (dX += dY * W^T in the
/// linear backward): matmul_bt_acc_parallel with a pool, the reference
/// matmul_bt_acc at compute_threads() == 1.
void linear_bt_acc(const float* a, const float* b, float* c, int m, int k, int n);

}  // namespace vsd::nn
