// Grouped int8 weight compression for the fast kernel mode.
//
// A [K, N] weight matrix is quantized along K in groups of `group` rows:
// each (group, column) pair gets an affine (scale, zero) so one int8 code
// dequantizes as  w = zero + scale * q.  The [D, V] logit and MEDUSA-head
// weights this targets are streamed once per GEMM and dominate the hot
// loop's memory traffic; int8 codes cut that stream 4x, and the group
// factorization lets the kernel hoist the affine out of the inner loop:
//
//   c[i][j] += sum_p a[i][p] * (zero[g][j] + scale[g][j] * q[p][j])
//            = sum_g ( rowsum_g(a_i) * zero[g][j]
//                      + scale[g][j] * sum_{p in g} a[i][p] * q[p][j] )
//
// so the inner loop is pure int8->float convert + multiply-accumulate with
// ONE fused affine per (group, column).  This is the representation-size
// vs exactness trade the ACAS-Xu BDD table-compression work frames (see
// PAPERS.md): `--kernel fast` opts into it, the bit-exact fp32 path stays
// the default.
#pragma once

#include <cstdint>
#include <vector>

namespace vsd::nn {

/// A [K, N] weight matrix packed as grouped int8 (see file comment).
/// Packing is deterministic (round-half-away rounding, no RNG), so two
/// packs of the same weights are byte-identical.
struct QuantizedWeights {
  int k = 0;
  int n = 0;
  int group = 32;                // rows per quantization group along K
  std::vector<std::int8_t> q;    // [k, n] row-major codes
  std::vector<float> scale;      // [groups(), n]
  std::vector<float> zero;       // [groups(), n]

  int groups() const { return group > 0 ? (k + group - 1) / group : 0; }

  /// Packs `w` ([k, n] row-major fp32).  Each (group, column) range maps
  /// its [min, max] onto codes [-127, 127]; a constant range packs as
  /// scale 0 + zero = the constant, reproducing it exactly.
  static QuantizedWeights pack(const float* w, int k, int n, int group = 32);

  /// Reconstructs the fp32 matrix (out is [k, n] row-major).
  void dequantize(float* out) const;

  /// Largest |w - dequant(w)| over the matrix it was packed from.
  double max_abs_error(const float* w) const;

  /// Bytes held by the packed representation (codes + affines).
  std::size_t byte_size() const;
  /// Bytes the fp32 original occupies.
  std::size_t fp32_byte_size() const;
};

/// C rows [i0, i1) += A[.xK] * dequant(W) — the scalar reference for the
/// quantized GEMM.  Per (row, group): one row-sum of A, one int8 MAC sweep
/// per column, one fused affine; `acc` is caller-provided scratch of at
/// least `n` floats (kept out of the signature's hot loop so parallel row
/// chunks can reuse per-thread buffers).
void q8_matmul_acc_rows_scalar(const float* a, const QuantizedWeights& w,
                               float* c, int i0, int i1, float* acc);

/// Production entry: C[MxN] += A[MxK] * dequant(W), row-partitioned across
/// the compute pool, inner kernel chosen by the dispatched ISA.  Fast-mode
/// only — results differ from the fp32 GEMM by the quantization error.
void q8_linear_acc(const float* a, const QuantizedWeights& w, float* c, int m);

}  // namespace vsd::nn
