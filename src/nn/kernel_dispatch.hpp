// Runtime kernel dispatch: one CPUID-style probe at startup picks the
// widest instruction set this binary carries AND this machine executes
// (AVX2+FMA on x86, NEON on arm), and every GEMM driver in parallel.hpp
// routes through the selected function table instead of calling the
// blocked scalar kernels directly.
//
// Two independent axes:
//
//   * KernelIsa — WHICH instructions run.  Chosen by probe, overridable
//     with VSD_KERNEL_ISA=scalar (CI's forced-scalar leg) or
//     set_kernel_isa() (tests).  The exact-mode SIMD kernels vectorize
//     across output elements only — separate mul/add, same zero-skip, same
//     per-element accumulation order as the scalar reference — so
//     switching ISA NEVER changes the produced floats in exact mode.
//
//   * KernelMode — WHAT the kernels are allowed to do.  `exact` (default)
//     keeps the repo's bit-identity contract: every output element
//     accumulates in the reference order, so T=0 token parity holds across
//     scalar/AVX2/NEON alike.  `fast` opts into FMA contraction and
//     within-element reassociation (8-wide dot products), and lets the
//     model score logits through grouped-int8 compressed weights
//     (quant.hpp) — measurably faster, no longer bit-identical; the eval
//     harness and benches ledger its accept-rate/quality deltas.
//
// Both knobs are process-global (like the compute pool in parallel.hpp):
// the CLI sets them from --kernel / $VSD_KERNEL before any forward pass,
// and the serve scheduler re-asserts its configured mode at run start.
#pragma once

namespace vsd::nn {

struct QuantizedWeights;

enum class KernelIsa {
  Scalar = 0,  // the blocked scalar kernels of kernels.hpp
  Avx2 = 1,    // AVX2 (+FMA in fast mode), x86-64
  Neon = 2,    // NEON (+vfma in fast mode), arm64
};

enum class KernelMode {
  Exact = 0,  // bit-identical accumulation order (default)
  Fast = 1,   // FMA + reassociation + int8 compressed weights
};

/// The function table one (isa, mode) pair dispatches to.  Signatures
/// mirror the kdetail kernels: range kernels cover output rows [i0, i1),
/// tile kernels an (i, j) rectangle, so the parallel drivers can partition
/// work identically for every ISA.
struct KernelOps {
  using RangeFn = void (*)(const float* a, const float* b, float* c, int k,
                           int n, int i0, int i1);
  using TileFn = void (*)(const float* a, const float* b, float* c, int k,
                          int n, int i0, int i1, int j0, int j1);
  using GemmFn = void (*)(const float* a, const float* b, float* c, int m,
                          int k, int n);
  using Q8RowsFn = void (*)(const float* a, const QuantizedWeights& w,
                            float* c, int i0, int i1, float* acc);

  RangeFn acc_rows = nullptr;    // C rows += A * B, full width
  TileFn acc_tile = nullptr;     // C (i, j) rectangle += A * B
  GemmFn acc_kouter = nullptr;   // whole C += A * B, k-outer j-blocked
  TileFn bt_tile = nullptr;      // C rectangle += A * B^T (dot products)
  Q8RowsFn q8_rows = nullptr;    // C rows += A * dequant(W), grouped int8
};

/// The ISA the probe selected (first call probes; later calls are a load).
/// VSD_KERNEL_ISA=scalar|avx2|neon caps the probe result — asking for an
/// ISA the build or machine lacks falls back to scalar, never crashes.
KernelIsa dispatched_isa();

/// Overrides the dispatched ISA (tests; clamped to what this build/machine
/// can run, like the env cap).  Not safe while kernels are in flight.
void set_kernel_isa(KernelIsa isa);

/// True when `isa` is both compiled into this binary and executable here.
bool kernel_isa_available(KernelIsa isa);

/// Process-wide kernel mode.  First call initializes from VSD_KERNEL
/// (exact|fast, default exact).
KernelMode kernel_mode();
void set_kernel_mode(KernelMode mode);

/// Parses "exact" / "fast"; returns false (out untouched) on anything else.
bool parse_kernel_mode(const char* name, KernelMode& out);

const char* isa_name(KernelIsa isa);
const char* kernel_mode_name(KernelMode mode);

/// The table for an explicit (isa, mode) pair — benches and tests compare
/// tiers side by side.  An unavailable ISA returns the scalar table.
const KernelOps& kernels_for(KernelIsa isa, KernelMode mode);

/// The table the current (dispatched_isa(), kernel_mode()) selects — what
/// every parallel.hpp driver runs through.
const KernelOps& active_kernels();

}  // namespace vsd::nn
