// Explicitly vectorized GEMM kernels behind the dispatch table
// (kernel_dispatch.hpp).  Two tiers per ISA:
//
//   * exact — vectorizes ACROSS output elements only (each SIMD lane owns
//     a distinct c[i][j]), with separate multiply and add (the build pins
//     -ffp-contract=off project-wide — see the top-level CMakeLists — so
//     the scalar reference also rounds mul then add on every target,
//     including aarch64 where default contraction would fuse into fmla)
//     and the scalar reference's exact-zero skip.  Per element the p loop
//     is untouched: bit-identical to kernels.hpp for every shape, which is
//     what lets exact mode dispatch to AVX2/NEON without breaking T=0
//     token parity.
//
//   * fast — FMA contraction plus within-element reassociation: the B^T
//     dot products vectorize over p with an 8-wide accumulator and a
//     horizontal reduce, and the grouped-int8 kernel dequantizes codes in
//     register (quant.hpp).  Fast results differ from the reference in the
//     last ulps (fp32) or by the quantization error (int8); only
//     `--kernel fast` runs these.
//
// The AVX2 translation unit is compiled with -mavx2 -mfma (per-file CMake
// option) and holds ONLY functions reached through the dispatch table
// after the CPUID probe — nothing here may run unguarded on a non-AVX2
// machine.  For the same reason the TU must not instantiate any shared
// inline/template code (std::vector members, <algorithm> helpers, the
// kernels.hpp inline references): a comdat symbol emitted out-of-line
// under -mavx2 could be picked by the linker over the baseline copy and
// then executed unguarded.  So these entry points take only raw pointers
// and ints — kernel_dispatch.cpp (baseline-compiled) unpacks
// QuantizedWeights before crossing into this TU.
#pragma once

#include <cstdint>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define VSD_KERNELS_HAVE_AVX2 1
#endif
// AArch64 only: the kernels use A64-only intrinsics (vaddvq_f32), and
// NEON there is baseline so the tier needs no runtime probe.  32-bit ARM
// (armv7/armhf) falls back to the scalar kernels.
#if defined(__aarch64__) && defined(__ARM_NEON)
#define VSD_KERNELS_HAVE_NEON 1
#endif

namespace vsd::nn {

namespace simd_detail {

// Blocking geometry, duplicated from kdetail so this header pulls in no
// shared inline code (see the comdat note above).  kernel_dispatch.cpp
// includes both headers and static_asserts the values stay in sync.
inline constexpr int kTileRows = 8;
inline constexpr int kTileCols = 256;

}  // namespace simd_detail

#if defined(VSD_KERNELS_HAVE_AVX2)
namespace simd_avx2 {

// exact tier — bit-identical to the kdetail scalar kernels.
void acc_rows_exact(const float* a, const float* b, float* c, int k, int n,
                    int i0, int i1);
void acc_tile_exact(const float* a, const float* b, float* c, int k, int n,
                    int i0, int i1, int j0, int j1);
void acc_kouter_exact(const float* a, const float* b, float* c, int m, int k,
                      int n);

// fast tier — FMA + reassociation permitted.
void acc_rows_fast(const float* a, const float* b, float* c, int k, int n,
                   int i0, int i1);
void acc_tile_fast(const float* a, const float* b, float* c, int k, int n,
                   int i0, int i1, int j0, int j1);
void acc_kouter_fast(const float* a, const float* b, float* c, int m, int k,
                     int n);
void bt_tile_fast(const float* a, const float* b, float* c, int k, int n,
                  int i0, int i1, int j0, int j1);
/// Grouped-int8 rows kernel over the unpacked QuantizedWeights arrays:
/// q is [k, n] row-major codes, scale/zero are [groups, n].
void q8_rows(const float* a, const std::int8_t* q, const float* scale,
             const float* zero, int k, int n, int group, float* c, int i0,
             int i1, float* acc);

}  // namespace simd_avx2
#endif  // VSD_KERNELS_HAVE_AVX2

#if defined(VSD_KERNELS_HAVE_NEON)
namespace simd_neon {

void acc_rows_exact(const float* a, const float* b, float* c, int k, int n,
                    int i0, int i1);
void acc_tile_exact(const float* a, const float* b, float* c, int k, int n,
                    int i0, int i1, int j0, int j1);
void acc_kouter_exact(const float* a, const float* b, float* c, int m, int k,
                      int n);

void acc_rows_fast(const float* a, const float* b, float* c, int k, int n,
                   int i0, int i1);
void acc_tile_fast(const float* a, const float* b, float* c, int k, int n,
                   int i0, int i1, int j0, int j1);
void acc_kouter_fast(const float* a, const float* b, float* c, int m, int k,
                     int n);
void bt_tile_fast(const float* a, const float* b, float* c, int k, int n,
                  int i0, int i1, int j0, int j1);
void q8_rows(const float* a, const std::int8_t* q, const float* scale,
             const float* zero, int k, int n, int group, float* c, int i0,
             int i1, float* acc);

}  // namespace simd_neon
#endif  // VSD_KERNELS_HAVE_NEON

}  // namespace vsd::nn
