#include "nn/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "nn/kernel_dispatch.hpp"
#include "nn/parallel.hpp"

namespace vsd::nn {

namespace {

std::string layer_prefix(bool encoder, int layer) {
  return (encoder ? "enc.L" : "dec.L") + std::to_string(layer) + ".";
}

}  // namespace

std::size_t ModelConfig::param_count() const {
  std::size_t n = 0;
  const auto d = static_cast<std::size_t>(d_model);
  const auto v = static_cast<std::size_t>(vocab);
  const auto ff = static_cast<std::size_t>(d_ff);
  n += v * d;                                   // tok
  n += static_cast<std::size_t>(max_seq) * d;   // pos
  const std::size_t self_block = d + 4 * d * d + d + d * ff + ff + ff * d + d;
  const std::size_t cross = d + 4 * d * d;
  n += static_cast<std::size_t>(n_layers) * (self_block + (encoder_decoder ? cross : 0));
  if (encoder_decoder) {
    n += static_cast<std::size_t>(enc_layers) * self_block + d;  // + enc final norm
  }
  n += d;      // final norm
  n += d * v;  // lm head
  n += static_cast<std::size_t>(n_medusa_heads) * (d * d + d + d * v);
  return n;
}

TransformerModel::TransformerModel(ModelConfig cfg, std::uint64_t seed) : cfg_(cfg) {
  Rng rng(seed);
  const int d = cfg.d_model;
  const float sd = 0.02f;
  const float res_sd = sd / std::sqrt(static_cast<float>(2 * cfg.n_layers));

  add_param("tok", Tensor::randn(cfg.vocab, d, sd, rng));
  add_param("pos", Tensor::randn(cfg.max_seq, d, sd, rng));

  auto add_block = [&](const std::string& p, bool with_cross) {
    add_param(p + "ln1.g", Tensor::full(1, d, 1.0f));
    add_param(p + "wq", Tensor::randn(d, d, sd, rng));
    add_param(p + "wk", Tensor::randn(d, d, sd, rng));
    add_param(p + "wv", Tensor::randn(d, d, sd, rng));
    add_param(p + "wo", Tensor::randn(d, d, res_sd, rng));
    if (with_cross) {
      add_param(p + "lnx.g", Tensor::full(1, d, 1.0f));
      add_param(p + "xwq", Tensor::randn(d, d, sd, rng));
      add_param(p + "xwk", Tensor::randn(d, d, sd, rng));
      add_param(p + "xwv", Tensor::randn(d, d, sd, rng));
      add_param(p + "xwo", Tensor::randn(d, d, res_sd, rng));
    }
    add_param(p + "ln2.g", Tensor::full(1, d, 1.0f));
    add_param(p + "w1", Tensor::randn(d, cfg.d_ff, sd, rng));
    add_param(p + "b1", Tensor::zeros(1, cfg.d_ff));
    add_param(p + "w2", Tensor::randn(cfg.d_ff, d, res_sd, rng));
    add_param(p + "b2", Tensor::zeros(1, d));
  };

  if (cfg.encoder_decoder) {
    for (int l = 0; l < cfg.enc_layers; ++l) add_block(layer_prefix(true, l), false);
    add_param("enc.lnf.g", Tensor::full(1, d, 1.0f));
  }
  for (int l = 0; l < cfg.n_layers; ++l) {
    add_block(layer_prefix(false, l), cfg.encoder_decoder);
  }
  add_param("lnf.g", Tensor::full(1, d, 1.0f));
  add_param("lm", Tensor::randn(d, cfg.vocab, sd, rng));
  for (int k = 0; k < cfg.n_medusa_heads; ++k) {
    const std::string p = "mh" + std::to_string(k) + ".";
    add_param(p + "w1", Tensor::randn(d, d, sd, rng));
    add_param(p + "b1", Tensor::zeros(1, d));
    add_param(p + "lm", Tensor::randn(d, cfg.vocab, sd, rng));
  }
}

Var TransformerModel::add_param(const std::string& name, Tensor t) {
  Var v = make_leaf(std::move(t), /*requires_grad=*/true, name);
  params_.push_back(v);
  by_name_[name] = v;
  return v;
}

Var TransformerModel::param(const std::string& name) const {
  const auto it = by_name_.find(name);
  check(it != by_name_.end(), "unknown parameter " + name);
  return it->second;
}

float TransformerModel::lr_mult(const Var& p) const {
  // MEDUSA heads: 4x the base learning rate (paper Section IV-A2).
  return p->name.rfind("mh", 0) == 0 ? 4.0f : 1.0f;
}

std::size_t TransformerModel::param_count() const {
  std::size_t n = 0;
  for (const Var& p : params_) n += p->value.size();
  return n;
}

Var TransformerModel::block_forward(Var x, const std::string& p, bool causal,
                                    const Var& enc) {
  // Self-attention sublayer.
  Var h = rmsnorm(x, param(p + "ln1.g"));
  Var q = linear(h, param(p + "wq"), nullptr);
  Var k = linear(h, param(p + "wk"), nullptr);
  Var v = linear(h, param(p + "wv"), nullptr);
  Var attn = attention(q, k, v, cfg_.n_heads, causal);
  x = add(x, linear(attn, param(p + "wo"), nullptr));
  // Cross-attention sublayer (decoder of encoder-decoder models).
  if (enc) {
    Var hx = rmsnorm(x, param(p + "lnx.g"));
    Var xq = linear(hx, param(p + "xwq"), nullptr);
    Var xk = linear(enc, param(p + "xwk"), nullptr);
    Var xv = linear(enc, param(p + "xwv"), nullptr);
    Var xattn = cross_attention(xq, xk, xv, cfg_.n_heads);
    x = add(x, linear(xattn, param(p + "xwo"), nullptr));
  }
  // MLP sublayer.
  Var h2 = rmsnorm(x, param(p + "ln2.g"));
  Var mid = silu(linear(h2, param(p + "w1"), param(p + "b1")));
  x = add(x, linear(mid, param(p + "w2"), param(p + "b2")));
  return x;
}

Var TransformerModel::encode_hidden(std::span<const int> src_ids) {
  check(cfg_.encoder_decoder, "encode_hidden on a decoder-only model");
  Var x = embed(param("tok"), param("pos"), src_ids);
  for (int l = 0; l < cfg_.enc_layers; ++l) {
    x = block_forward(x, layer_prefix(true, l), /*causal=*/false, nullptr);
  }
  return rmsnorm(x, param("enc.lnf.g"));
}

Var TransformerModel::decode_hidden(std::span<const int> ids, const Var& enc) {
  check(!cfg_.encoder_decoder || enc != nullptr,
        "encoder-decoder model needs encoder context");
  Var x = embed(param("tok"), param("pos"), ids);
  for (int l = 0; l < cfg_.n_layers; ++l) {
    x = block_forward(x, layer_prefix(false, l), /*causal=*/true,
                      cfg_.encoder_decoder ? enc : nullptr);
  }
  return rmsnorm(x, param("lnf.g"));
}

Var TransformerModel::lm_logits(const Var& hidden) {
  return linear(hidden, param("lm"), nullptr);
}

Var TransformerModel::head_logits(const Var& hidden, int k) {
  check(k >= 0 && k < cfg_.n_medusa_heads, "medusa head index out of range");
  const std::string p = "mh" + std::to_string(k) + ".";
  // MEDUSA residual block: h' = h + SiLU(W1 h + b1); logits = h' W_lm.
  Var res = silu(linear(hidden, param(p + "w1"), param(p + "b1")));
  Var h2 = add(hidden, res);
  return linear(h2, param(p + "lm"), nullptr);
}

// --- serialization ------------------------------------------------------------

std::string TransformerModel::serialize() const {
  std::ostringstream out(std::ios::binary);
  out << "vsd-model-v1\n";
  out << cfg_.vocab << " " << cfg_.d_model << " " << cfg_.n_layers << " "
      << cfg_.n_heads << " " << cfg_.d_ff << " " << cfg_.max_seq << " "
      << (cfg_.encoder_decoder ? 1 : 0) << " " << cfg_.enc_layers << " "
      << cfg_.n_medusa_heads << "\n";
  for (const Var& p : params_) {
    out << p->name << " " << p->value.rows() << " " << p->value.cols() << "\n";
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  return out.str();
}

std::unique_ptr<TransformerModel> TransformerModel::deserialize(std::string_view data) {
  std::istringstream in{std::string(data), std::ios::binary};
  std::string magic;
  std::getline(in, magic);
  check(magic == "vsd-model-v1", "bad model serialization");
  ModelConfig cfg;
  int ed = 0;
  in >> cfg.vocab >> cfg.d_model >> cfg.n_layers >> cfg.n_heads >> cfg.d_ff >>
      cfg.max_seq >> ed >> cfg.enc_layers >> cfg.n_medusa_heads;
  cfg.encoder_decoder = ed != 0;
  in.ignore();  // newline
  auto model = std::make_unique<TransformerModel>(cfg, /*seed=*/0);
  for (const Var& p : model->params_) {
    std::string name;
    int rows = 0;
    int cols = 0;
    in >> name >> rows >> cols;
    in.ignore();
    check(name == p->name, "parameter order mismatch: " + name + " vs " + p->name);
    check(rows == p->value.rows() && cols == p->value.cols(), "shape mismatch " + name);
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  return model;
}

// --- inference ------------------------------------------------------------------

std::size_t KvSnapshot::byte_size() const {
  std::size_t n = 0;
  for (const Tensor& t : k_rows) n += t.size() * sizeof(float);
  for (const Tensor& t : v_rows) n += t.size() * sizeof(float);
  n += enc_out.size() * sizeof(float);
  return n;
}

InferSession::InferSession(const TransformerModel& m,
                           std::shared_ptr<KvArena> arena)
    : m_(m), arena_(std::move(arena)) {
  const ModelConfig& cfg = m.config();
  if (!arena_) {
    arena_ = std::make_shared<KvArena>(cfg.n_layers, cfg.d_model, cfg.max_seq);
  }
  check(arena_->n_layers() == cfg.n_layers && arena_->d_model() == cfg.d_model,
        "InferSession: arena geometry does not match the model");
}

InferSession::~InferSession() { release_pages(0); }

void InferSession::release_pages(std::size_t from_page) {
  for (std::size_t i = from_page; i < pages_.size(); ++i) {
    arena_->decref(pages_[i]);
  }
  pages_.resize(from_page);
}

void InferSession::prepare_append(int n) {
  const int P = arena_->page_size();
  // A partially filled tail page could be shared with a prefix holder (a
  // warm-cache entry or a forked session); clone it before writing into
  // its free slots — copy-on-write at page granularity.
  if (len_ % P != 0) {
    int& tail = pages_.back();
    if (arena_->refcount(tail) > 1) {
      const int copy = arena_->clone_page(tail);
      arena_->decref(tail);
      tail = copy;
    }
  }
  while (static_cast<int>(pages_.size()) * P < len_ + n) {
    pages_.push_back(arena_->alloc_page());
  }
}

const Tensor& InferSession::weight(const std::string& name) const {
  return m_.param(name)->value;
}

namespace {

// y[TxE] = x[TxD] W[DxE] (+ b).  linear_acc routes through the compute
// pool's blocked parallel drivers when --compute-threads > 1 and takes the
// exact historical serial kernels (k-outer for multi-row inputs, plain ikj
// for one row) at 1; every variant is bit-identical, so the thread count
// never changes an activation.
Tensor apply_linear(const Tensor& x, const Tensor& w, const Tensor* b) {
  Tensor out(x.rows(), w.cols());
  linear_acc(x.data(), w.data(), out.data(), x.rows(), x.cols(), w.cols());
  if (b != nullptr) {
    for (int i = 0; i < out.rows(); ++i) {
      float* row = out.row(i);
      for (int j = 0; j < out.cols(); ++j) row[j] += b->data()[j];
    }
  }
  return out;
}

void apply_rmsnorm_inplace(Tensor& x, const Tensor& g) {
  for (int i = 0; i < x.rows(); ++i) {
    float* row = x.row(i);
    float sum = 0.0f;
    for (int j = 0; j < x.cols(); ++j) sum += row[j] * row[j];
    const float inv = 1.0f / std::sqrt(sum / static_cast<float>(x.cols()) + 1e-6f);
    for (int j = 0; j < x.cols(); ++j) row[j] *= inv * g.data()[j];
  }
}

void apply_silu_inplace(Tensor& x) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float v = x.data()[i];
    x.data()[i] = v / (1.0f + std::exp(-v));
  }
}

}  // namespace

void InferSession::set_encoder(std::span<const int> src_ids) {
  const ModelConfig& cfg = m_.config();
  check(cfg.encoder_decoder, "set_encoder on a decoder-only model");
  const int s = static_cast<int>(src_ids.size());
  check(s >= 1 && s <= cfg.max_seq, "encoder input length out of range");
  const Tensor& tok = weight("tok");
  const Tensor& pos = weight("pos");
  Tensor x(s, cfg.d_model);
  for (int i = 0; i < s; ++i) {
    const float* trow = tok.row(src_ids[static_cast<std::size_t>(i)]);
    const float* prow = pos.row(i);
    float* orow = x.row(i);
    for (int j = 0; j < cfg.d_model; ++j) orow[j] = trow[j] + prow[j];
  }
  for (int l = 0; l < cfg.enc_layers; ++l) {
    const std::string p = layer_prefix(true, l);
    Tensor h = x;
    apply_rmsnorm_inplace(h, weight(p + "ln1.g"));
    Tensor q = apply_linear(h, weight(p + "wq"), nullptr);
    Tensor k = apply_linear(h, weight(p + "wk"), nullptr);
    Tensor v = apply_linear(h, weight(p + "wv"), nullptr);
    // Full (non-causal) attention.
    const int dh = cfg.d_model / cfg.n_heads;
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
    Tensor attn(s, cfg.d_model);
    std::vector<float> scores(static_cast<std::size_t>(s));
    for (int hI = 0; hI < cfg.n_heads; ++hI) {
      const int off = hI * dh;
      for (int i = 0; i < s; ++i) {
        const float* qrow = q.row(i) + off;
        float maxv = -1e30f;
        for (int j = 0; j < s; ++j) {
          const float* krow = k.row(j) + off;
          float dot = 0.0f;
          for (int c = 0; c < dh; ++c) dot += qrow[c] * krow[c];
          scores[static_cast<std::size_t>(j)] = dot * inv_sqrt;
          maxv = std::max(maxv, scores[static_cast<std::size_t>(j)]);
        }
        float denom = 0.0f;
        for (int j = 0; j < s; ++j) {
          scores[static_cast<std::size_t>(j)] =
              std::exp(scores[static_cast<std::size_t>(j)] - maxv);
          denom += scores[static_cast<std::size_t>(j)];
        }
        float* orow = attn.row(i) + off;
        for (int c = 0; c < dh; ++c) orow[c] = 0.0f;
        for (int j = 0; j < s; ++j) {
          const float pv = scores[static_cast<std::size_t>(j)] / denom;
          const float* vrow = v.row(j) + off;
          for (int c = 0; c < dh; ++c) orow[c] += pv * vrow[c];
        }
      }
    }
    Tensor proj = apply_linear(attn, weight(p + "wo"), nullptr);
    for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] += proj.data()[i];
    Tensor h2 = x;
    apply_rmsnorm_inplace(h2, weight(p + "ln2.g"));
    Tensor mid = apply_linear(h2, weight(p + "w1"), &weight(p + "b1"));
    apply_silu_inplace(mid);
    Tensor out2 = apply_linear(mid, weight(p + "w2"), &weight(p + "b2"));
    for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] += out2.data()[i];
  }
  apply_rmsnorm_inplace(x, weight("enc.lnf.g"));
  enc_out_ = std::move(x);
}

Tensor InferSession::feed(std::span<const int> ids) {
  const ModelConfig& cfg = m_.config();
  const int n = static_cast<int>(ids.size());
  check(n >= 1, "feed: empty input");
  check(len_ + n <= cfg.max_seq, "feed: sequence exceeds max_seq");
  check(!cfg.encoder_decoder || enc_out_.rows() > 0,
        "feed: encoder context not set");
  const int d = cfg.d_model;
  const Tensor& tok = weight("tok");
  const Tensor& pos = weight("pos");
  Tensor x(n, d);
  for (int i = 0; i < n; ++i) {
    const int id = ids[static_cast<std::size_t>(i)];
    check(id >= 0 && id < cfg.vocab, "feed: id out of range");
    const float* trow = tok.row(id);
    const float* prow = pos.row(len_ + i);
    float* orow = x.row(i);
    for (int j = 0; j < d; ++j) orow[j] = trow[j] + prow[j];
  }

  const int dh = d / cfg.n_heads;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
  std::vector<float> scores(static_cast<std::size_t>(cfg.max_seq));

  // Make positions [len_, len_+n) writable (CoW a shared tail page,
  // append fresh pages), then resolve every cached row's location once
  // per layer: the attention loops read rows [0, len_+n) repeatedly, and
  // a flat pointer array keeps them division-free and in the exact
  // ascending-position order of the old flat cache — bit-identical
  // accumulation for any page size.
  prepare_append(n);
  const int P = arena_->page_size();
  const int total = len_ + n;
  std::vector<const float*> kptr(static_cast<std::size_t>(total));
  std::vector<const float*> vptr(static_cast<std::size_t>(total));

  for (int l = 0; l < cfg.n_layers; ++l) {
    const std::string p = layer_prefix(false, l);
    Tensor h = x;
    apply_rmsnorm_inplace(h, weight(p + "ln1.g"));
    Tensor q = apply_linear(h, weight(p + "wq"), nullptr);
    Tensor k = apply_linear(h, weight(p + "wk"), nullptr);
    Tensor v = apply_linear(h, weight(p + "wv"), nullptr);
    // Append to the cache pages.
    for (int i = 0; i < n; ++i) {
      const int pos = len_ + i;
      const int page = pages_[static_cast<std::size_t>(pos / P)];
      std::memcpy(arena_->k_row(page, l, pos % P), k.row(i),
                  sizeof(float) * static_cast<std::size_t>(d));
      std::memcpy(arena_->v_row(page, l, pos % P), v.row(i),
                  sizeof(float) * static_cast<std::size_t>(d));
    }
    for (std::size_t pi = 0; pi < pages_.size(); ++pi) {
      const int base = static_cast<int>(pi) * P;
      const int count = std::min(P, total - base);
      for (int s = 0; s < count; ++s) {
        kptr[static_cast<std::size_t>(base + s)] = arena_->k_row(pages_[pi], l, s);
        vptr[static_cast<std::size_t>(base + s)] = arena_->v_row(pages_[pi], l, s);
      }
    }
    // Causal attention against the cache.
    Tensor attn(n, d);
    for (int hI = 0; hI < cfg.n_heads; ++hI) {
      const int off = hI * dh;
      for (int i = 0; i < n; ++i) {
        const int limit = len_ + i + 1;
        const float* qrow = q.row(i) + off;
        float maxv = -1e30f;
        for (int j = 0; j < limit; ++j) {
          const float* krow = kptr[static_cast<std::size_t>(j)] + off;
          float dot = 0.0f;
          for (int c = 0; c < dh; ++c) dot += qrow[c] * krow[c];
          scores[static_cast<std::size_t>(j)] = dot * inv_sqrt;
          maxv = std::max(maxv, scores[static_cast<std::size_t>(j)]);
        }
        float denom = 0.0f;
        for (int j = 0; j < limit; ++j) {
          scores[static_cast<std::size_t>(j)] =
              std::exp(scores[static_cast<std::size_t>(j)] - maxv);
          denom += scores[static_cast<std::size_t>(j)];
        }
        const float inv_denom = 1.0f / denom;
        float* orow = attn.row(i) + off;
        for (int c = 0; c < dh; ++c) orow[c] = 0.0f;
        for (int j = 0; j < limit; ++j) {
          const float pv = scores[static_cast<std::size_t>(j)] * inv_denom;
          const float* vrow = vptr[static_cast<std::size_t>(j)] + off;
          for (int c = 0; c < dh; ++c) orow[c] += pv * vrow[c];
        }
      }
    }
    Tensor proj = apply_linear(attn, weight(p + "wo"), nullptr);
    for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] += proj.data()[i];

    if (cfg.encoder_decoder) {
      Tensor hx = x;
      apply_rmsnorm_inplace(hx, weight(p + "lnx.g"));
      Tensor xq = apply_linear(hx, weight(p + "xwq"), nullptr);
      Tensor xk = apply_linear(enc_out_, weight(p + "xwk"), nullptr);
      Tensor xv = apply_linear(enc_out_, weight(p + "xwv"), nullptr);
      const int s = enc_out_.rows();
      Tensor xattn(n, d);
      for (int hI = 0; hI < cfg.n_heads; ++hI) {
        const int off = hI * dh;
        for (int i = 0; i < n; ++i) {
          const float* qrow = xq.row(i) + off;
          float maxv = -1e30f;
          for (int j = 0; j < s; ++j) {
            const float* krow = xk.row(j) + off;
            float dot = 0.0f;
            for (int c = 0; c < dh; ++c) dot += qrow[c] * krow[c];
            scores[static_cast<std::size_t>(j)] = dot * inv_sqrt;
            maxv = std::max(maxv, scores[static_cast<std::size_t>(j)]);
          }
          float denom = 0.0f;
          for (int j = 0; j < s; ++j) {
            scores[static_cast<std::size_t>(j)] =
                std::exp(scores[static_cast<std::size_t>(j)] - maxv);
            denom += scores[static_cast<std::size_t>(j)];
          }
          const float inv_denom = 1.0f / denom;
          float* orow = xattn.row(i) + off;
          for (int c = 0; c < dh; ++c) orow[c] = 0.0f;
          for (int j = 0; j < s; ++j) {
            const float pv = scores[static_cast<std::size_t>(j)] * inv_denom;
            const float* vrow = xv.row(j) + off;
            for (int c = 0; c < dh; ++c) orow[c] += pv * vrow[c];
          }
        }
      }
      Tensor xproj = apply_linear(xattn, weight(p + "xwo"), nullptr);
      for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] += xproj.data()[i];
    }

    Tensor h2 = x;
    apply_rmsnorm_inplace(h2, weight(p + "ln2.g"));
    Tensor mid = apply_linear(h2, weight(p + "w1"), &weight(p + "b1"));
    apply_silu_inplace(mid);
    Tensor out2 = apply_linear(mid, weight(p + "w2"), &weight(p + "b2"));
    for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] += out2.data()[i];
  }
  apply_rmsnorm_inplace(x, weight("lnf.g"));
  len_ += n;
  return x;
}

void InferSession::truncate(int new_len) {
  check(new_len >= 0 && new_len <= len_, "truncate: bad length");
  // Pages wholly beyond the new length go back to the arena; a partially
  // covered tail page is kept (its stale rows are overwritten — after a
  // copy-on-write if the page is shared — by the next feed).
  release_pages(static_cast<std::size_t>(arena_->pages_for(new_len)));
  len_ = new_len;
}

void InferSession::reset() {
  release_pages(0);
  len_ = 0;
  enc_out_ = Tensor();
}

KvPrefix InferSession::share_prefix(int upto_len) const {
  check(upto_len >= 1 && upto_len <= len_, "share_prefix: bad length");
  const std::size_t np = static_cast<std::size_t>(arena_->pages_for(upto_len));
  std::vector<int> run(pages_.begin(), pages_.begin() + static_cast<long>(np));
  for (const int id : run) arena_->incref(id);
  return KvPrefix(arena_, std::move(run), upto_len, enc_out_);
}

void InferSession::adopt_prefix(const KvPrefix& p, int upto_len) {
  check(upto_len == -1 || upto_len >= 1, "adopt_prefix: bad length");
  const int n = upto_len < 0 ? p.len() : upto_len;
  check(n >= 1 && n <= p.len(), "adopt_prefix: bad length");
  check(n <= m_.config().max_seq, "adopt_prefix: prefix exceeds max_seq");
  const KvArena& src = *p.arena();
  check(src.n_layers() == m_.config().n_layers &&
            src.d_model() == m_.config().d_model,
        "adopt_prefix: prefix geometry does not match the model");
  release_pages(0);
  const std::size_t np = static_cast<std::size_t>(arena_->pages_for(n));
  if (p.arena() == arena_) {
    // Fast path: same arena — adopt the pages by reference.
    pages_.assign(p.pages().begin(), p.pages().begin() + static_cast<long>(np));
    for (const int id : pages_) arena_->incref(id);
  } else {
    // A prefix from another arena (or page geometry): materialize it by
    // copying rows into freshly allocated pages of our own.
    const int P = arena_->page_size();
    const std::size_t row_bytes =
        sizeof(float) * static_cast<std::size_t>(m_.config().d_model);
    pages_.reserve(np);
    for (std::size_t i = 0; i < np; ++i) pages_.push_back(arena_->alloc_page());
    for (int l = 0; l < m_.config().n_layers; ++l) {
      for (int pos = 0; pos < n; ++pos) {
        const int page = pages_[static_cast<std::size_t>(pos / P)];
        std::memcpy(arena_->k_row(page, l, pos % P), p.k_row(l, pos), row_bytes);
        std::memcpy(arena_->v_row(page, l, pos % P), p.v_row(l, pos), row_bytes);
      }
    }
  }
  enc_out_ = p.enc_out();
  len_ = n;
}

KvSnapshot InferSession::snapshot(int upto_len) const {
  check(upto_len >= 1 && upto_len <= len_, "snapshot: bad length");
  const int d = m_.config().d_model;
  const int L = m_.config().n_layers;
  const std::size_t row_bytes = sizeof(float) * static_cast<std::size_t>(d);
  KvSnapshot snap;
  snap.len = upto_len;
  snap.k_rows.reserve(static_cast<std::size_t>(L));
  snap.v_rows.reserve(static_cast<std::size_t>(L));
  const int P = arena_->page_size();
  for (int l = 0; l < L; ++l) {
    Tensor k(upto_len, d);
    Tensor v(upto_len, d);
    for (int pos = 0; pos < upto_len; ++pos) {
      const int page = pages_[static_cast<std::size_t>(pos / P)];
      std::memcpy(k.row(pos), arena_->k_row(page, l, pos % P), row_bytes);
      std::memcpy(v.row(pos), arena_->v_row(page, l, pos % P), row_bytes);
    }
    snap.k_rows.push_back(std::move(k));
    snap.v_rows.push_back(std::move(v));
  }
  snap.enc_out = enc_out_;
  return snap;
}

void InferSession::restore(const KvSnapshot& snap, int upto_len) {
  // Only the documented -1 sentinel means "all of it"; any other negative
  // value is caller arithmetic gone wrong, not a request for everything.
  check(upto_len == -1 || upto_len >= 1, "restore: bad length");
  const int n = upto_len < 0 ? snap.len : upto_len;
  check(n >= 1 && n <= snap.len, "restore: bad length");
  check(n <= m_.config().max_seq, "restore: snapshot exceeds max_seq");
  const int L = m_.config().n_layers;
  check(static_cast<int>(snap.k_rows.size()) == L &&
            static_cast<int>(snap.v_rows.size()) == L,
        "restore: layer count mismatch");
  check(!snap.k_rows.empty() && snap.k_rows[0].cols() == m_.config().d_model,
        "restore: width mismatch");
  release_pages(0);
  const std::size_t np = static_cast<std::size_t>(arena_->pages_for(n));
  pages_.reserve(np);
  for (std::size_t i = 0; i < np; ++i) pages_.push_back(arena_->alloc_page());
  const int P = arena_->page_size();
  const std::size_t row_bytes =
      sizeof(float) * static_cast<std::size_t>(m_.config().d_model);
  for (int l = 0; l < L; ++l) {
    for (int pos = 0; pos < n; ++pos) {
      const int page = pages_[static_cast<std::size_t>(pos / P)];
      std::memcpy(arena_->k_row(page, l, pos % P), snap.k_rows[static_cast<std::size_t>(l)].row(pos), row_bytes);
      std::memcpy(arena_->v_row(page, l, pos % P), snap.v_rows[static_cast<std::size_t>(l)].row(pos), row_bytes);
    }
  }
  enc_out_ = snap.enc_out;
  len_ = n;
}

const QuantizedWeights& TransformerModel::quantized(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(quant_mu_);
  auto it = quant_.find(name);
  if (it == quant_.end()) {
    const Tensor& w = param(name)->value;
    it = quant_
             .emplace(name, std::make_unique<QuantizedWeights>(
                                QuantizedWeights::pack(w.data(), w.rows(),
                                                       w.cols())))
             .first;
  }
  return *it->second;
}

QuantStats TransformerModel::quant_stats() const {
  const std::lock_guard<std::mutex> lock(quant_mu_);
  QuantStats s;
  for (const auto& [name, qw] : quant_) {
    ++s.matrices;
    s.int8_bytes += qw->byte_size();
    s.fp32_bytes += qw->fp32_byte_size();
    s.max_abs_error =
        std::max(s.max_abs_error, qw->max_abs_error(param(name)->value.data()));
  }
  return s;
}

Tensor TransformerModel::infer_lm_logits(const Tensor& hidden) const {
  check(hidden.cols() == cfg_.d_model, "infer_lm_logits: width mismatch");
  // Fast mode streams the [D, V] logit weight as grouped int8 — the
  // widest, most bandwidth-bound matrix of the tick.  Exact mode (the
  // default) keeps the bit-identical fp32 path.
  if (kernel_mode() == KernelMode::Fast) {
    const QuantizedWeights& qw = quantized("lm");
    Tensor out(hidden.rows(), qw.n);
    q8_linear_acc(hidden.data(), qw, out.data(), hidden.rows());
    return out;
  }
  return apply_linear(hidden, param("lm")->value, nullptr);
}

Tensor TransformerModel::infer_head_logits(const Tensor& hidden, int k) const {
  check(k >= 0 && k < cfg_.n_medusa_heads, "medusa head index out of range");
  check(hidden.cols() == cfg_.d_model, "infer_head_logits: width mismatch");
  const std::string p = "mh" + std::to_string(k) + ".";
  Tensor mid = apply_linear(hidden, param(p + "w1")->value, &param(p + "b1")->value);
  apply_silu_inplace(mid);
  for (std::size_t i = 0; i < mid.size(); ++i) mid.data()[i] += hidden.data()[i];
  if (kernel_mode() == KernelMode::Fast) {
    const QuantizedWeights& qw = quantized(p + "lm");
    Tensor out(mid.rows(), qw.n);
    q8_linear_acc(mid.data(), qw, out.data(), mid.rows());
    return out;
  }
  return apply_linear(mid, param(p + "lm")->value, nullptr);
}

Tensor InferSession::lm_logits(const Tensor& hidden) const {
  return m_.infer_lm_logits(hidden);
}

Tensor InferSession::head_logits(const Tensor& hidden, int k) const {
  return m_.infer_head_logits(hidden, k);
}

}  // namespace vsd::nn
