// AdamW optimizer and the cosine-with-warmup learning-rate schedule used by
// the paper's fine-tuning recipe.
#pragma once

#include <cmath>
#include <vector>

#include "nn/autograd.hpp"

namespace vsd::nn {

class AdamW {
 public:
  struct Options {
    float lr = 5e-4f;   // paper: initial LR 5e-4 for the base model
    float beta1 = 0.9f;
    float beta2 = 0.95f;
    float eps = 1e-8f;
    float weight_decay = 0.01f;
    float grad_clip = 1.0f;  // global-norm clip; <= 0 disables
  };

  /// `lr_mults` gives a per-parameter LR multiplier (heads train at 4x).
  AdamW(std::vector<Var> params, std::vector<float> lr_mults, Options opts)
      : params_(std::move(params)), lr_mults_(std::move(lr_mults)), opts_(opts) {
    check(params_.size() == lr_mults_.size(), "AdamW: mult size mismatch");
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const Var& p : params_) {
      m_.emplace_back(p->value.rows(), p->value.cols());
      v_.emplace_back(p->value.rows(), p->value.cols());
    }
  }

  void zero_grad() {
    for (const Var& p : params_) {
      if (!p->grad.empty()) p->grad.fill(0.0f);
    }
  }

  /// One update.  `lr_scale` comes from the schedule (in [0,1]).
  void step(float lr_scale) {
    ++t_;
    // Global-norm gradient clipping.
    float scale = 1.0f;
    if (opts_.grad_clip > 0.0f) {
      double norm_sq = 0.0;
      for (const Var& p : params_) {
        if (p->grad.empty()) continue;
        const float* g = p->grad.data();
        for (std::size_t i = 0; i < p->grad.size(); ++i) {
          norm_sq += static_cast<double>(g[i]) * g[i];
        }
      }
      const double norm = std::sqrt(norm_sq);
      if (norm > opts_.grad_clip) {
        scale = static_cast<float>(opts_.grad_clip / (norm + 1e-12));
      }
    }
    const float bc1 = 1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
      Var& p = params_[pi];
      if (p->grad.empty()) continue;
      const float lr = opts_.lr * lr_scale * lr_mults_[pi];
      float* w = p->value.data();
      const float* g = p->grad.data();
      float* m = m_[pi].data();
      float* v = v_[pi].data();
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        const float gi = g[i] * scale;
        m[i] = opts_.beta1 * m[i] + (1.0f - opts_.beta1) * gi;
        v[i] = opts_.beta2 * v[i] + (1.0f - opts_.beta2) * gi * gi;
        const float mhat = m[i] / bc1;
        const float vhat = v[i] / bc2;
        w[i] -= lr * (mhat / (std::sqrt(vhat) + opts_.eps) +
                      opts_.weight_decay * w[i]);
      }
    }
  }

  int steps_taken() const { return t_; }

 private:
  std::vector<Var> params_;
  std::vector<float> lr_mults_;
  Options opts_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int t_ = 0;
};

/// Cosine schedule with linear warmup; returns a multiplier in [0,1].
inline float cosine_lr_scale(int step, int total_steps, int warmup_steps) {
  if (total_steps <= 0) return 1.0f;
  if (step < warmup_steps) {
    return static_cast<float>(step + 1) / static_cast<float>(warmup_steps);
  }
  const float progress = static_cast<float>(step - warmup_steps) /
                         static_cast<float>(std::max(1, total_steps - warmup_steps));
  return 0.5f * (1.0f + std::cos(3.14159265358979f * std::min(1.0f, progress)));
}

/// λ's sine growth from 0 to `lambda_max` over training (paper Eq. 2 text:
/// "λ follows a sine growth pattern, increasing from 0 to 0.2").
inline float lambda_sine(int step, int total_steps, float lambda_max = 0.2f) {
  if (total_steps <= 0) return lambda_max;
  const float progress = std::min(1.0f, static_cast<float>(step) /
                                            static_cast<float>(total_steps));
  return lambda_max * std::sin(0.5f * 3.14159265358979f * progress);
}

}  // namespace vsd::nn
