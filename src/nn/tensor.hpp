// Dense row-major float tensor (rank 1 or 2 is all the library needs).
#pragma once

#include <algorithm>  // Tensor::fill uses std::fill
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vsd::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols) : rows_(rows), cols_(cols) {
    check(rows >= 1 && cols >= 1, "Tensor dims must be >= 1");
    data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0f);
  }

  static Tensor zeros(int rows, int cols) { return Tensor(rows, cols); }

  static Tensor randn(int rows, int cols, float stddev, Rng& rng) {
    Tensor t(rows, cols);
    for (float& v : t.data_) {
      v = static_cast<float>(rng.next_gaussian()) * stddev;
    }
    return t;
  }

  static Tensor full(int rows, int cols, float value) {
    Tensor t(rows, cols);
    for (float& v : t.data_) v = value;
    return t;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  float at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  bool same_shape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// C[MxN] += A[MxK] * B[KxN].  ikj loop order for contiguous inner access.
inline void matmul_acc(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[MxN] += A[MxK] * B[KxN], k-outer loop order: streams the B matrix
/// exactly once and keeps the whole [MxN] accumulator hot, instead of
/// re-streaming all of B for every row of A as matmul_acc does.  This is
/// the kernel behind the fused batched forward: when M is a small batch of
/// gathered rows (so C fits in cache) and B is a weight matrix shared by
/// the batch, the weight traffic drops from M passes to one.  Each output
/// element accumulates over p in the same ascending order as matmul_acc,
/// so the results are bit-identical — batching never changes tokens.
inline void matmul_acc_kouter(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[MxN] += A[MxK] * B^T where B is [NxK].
inline void matmul_bt_acc(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

/// C[KxN] += A^T * B where A is [MxK], B is [MxN].
inline void matmul_at_acc(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    const float* brow = b + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace vsd::nn
