// Cache-blocked GEMM kernels, bit-identical to the reference loops in
// tensor.hpp.
//
// Determinism contract: every kernel here accumulates each output element
// c[i][j] over p = 0..K-1 in the SAME ascending order as its reference
// kernel (matmul_acc / matmul_acc_kouter / matmul_bt_acc), including the
// reference's skip of exact-zero A elements.  Blocking only reorders work
// BETWEEN output elements, never within one, and the parallel drivers in
// parallel.hpp only ever partition whole output rows or columns — so for
// any tile size and any thread count the produced floats are bit-identical
// to the serial reference.  That is what lets the serving stack swap these
// kernels in without touching the repo's temperature-0 token-parity
// invariant.
//
// The pointers are __restrict: callers must pass non-overlapping A, B, C
// (every call site writes a freshly zeroed output), which frees the
// compiler from emitting runtime alias checks before vectorizing the
// contiguous inner loops.
#pragma once

#include <algorithm>
#include <cstddef>

#include "nn/tensor.hpp"

namespace vsd::nn {

namespace kdetail {

// Blocking geometry.  kPanelFloats bounds the C row panel streamed per p
// step to ~24 KiB (L1-resident); kTileRows / kTileCols shape the generic
// ranged tile used by column-partitioned parallel chunks.
inline constexpr int kPanelFloats = 6144;
inline constexpr int kTileRows = 8;
inline constexpr int kTileCols = 256;

/// Rows per L1 panel for an N-column output (clamped to [8, 512]).
inline int panel_rows(int n) {
  return std::max(8, std::min(512, kPanelFloats / std::max(n, 1)));
}

/// C rows [i0, i1) += A * B over the full [0, N) width — the k-outer
/// __restrict core (p, then i, then a full contiguous j sweep).  This loop
/// shape is what GCC vectorizes best at plain -O3: B is streamed once per
/// panel, the C panel stays hot, and __restrict removes the runtime alias
/// checks.  Per element the p loop runs 0..K-1 ascending with the same
/// zero-skip as matmul_acc, so any row partition composes bit-exactly.
inline void matmul_acc_rows(const float* __restrict a, const float* __restrict b,
                            float* __restrict c, int k, int n, int i0, int i1) {
  // The j sweep is hand-unrolled by 8: each unrolled slot touches a
  // DIFFERENT output element, so per-element accumulation order is
  // untouched — the unroll only pins down the vector codegen, which at
  // these small trip counts otherwise swings with inlining context.
  const int n8 = n & ~7;
  for (int p = 0; p < k; ++p) {
    const float* __restrict brow = b + static_cast<std::size_t>(p) * n;
    for (int i = i0; i < i1; ++i) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0f) continue;
      float* __restrict crow = c + static_cast<std::size_t>(i) * n;
      int j = 0;
      for (; j < n8; j += 8) {
        crow[j + 0] += av * brow[j + 0];
        crow[j + 1] += av * brow[j + 1];
        crow[j + 2] += av * brow[j + 2];
        crow[j + 3] += av * brow[j + 3];
        crow[j + 4] += av * brow[j + 4];
        crow[j + 5] += av * brow[j + 5];
        crow[j + 6] += av * brow[j + 6];
        crow[j + 7] += av * brow[j + 7];
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C rows [i0, i1), blocked into L1-sized row panels of the core above.
inline void matmul_acc_rows_blocked(const float* a, const float* b, float* c,
                                    int k, int n, int i0, int i1) {
  const int panel = panel_rows(n);
  for (int ib = i0; ib < i1; ib += panel) {
    matmul_acc_rows(a, b, c, k, n, ib, std::min(i1, ib + panel));
  }
}

/// C[i0:i1) x [j0:j1) += A[.xK] * B[KxN] over the full K range — the
/// generic ranged tile behind column-partitioned parallel chunks.  Same
/// per-element accumulation order and zero-skip as matmul_acc, so any
/// (i, j) partition of the output composes bit-exactly.
inline void matmul_acc_tile(const float* __restrict a, const float* __restrict b,
                            float* __restrict c, int k, int n, int i0, int i1,
                            int j0, int j1) {
  for (int ib = i0; ib < i1; ib += kTileRows) {
    const int ie = std::min(i1, ib + kTileRows);
    for (int jb = j0; jb < j1; jb += kTileCols) {
      const int je = std::min(j1, jb + kTileCols);
      for (int p = 0; p < k; ++p) {
        const float* __restrict brow = b + static_cast<std::size_t>(p) * n;
        for (int i = ib; i < ie; ++i) {
          const float av = a[static_cast<std::size_t>(i) * k + p];
          if (av == 0.0f) continue;
          float* __restrict crow = c + static_cast<std::size_t>(i) * n;
          for (int j = jb; j < je; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

/// C[i0:i1) x [j0:j1) += A * B^T (B is [NxK]) — register-tiled dot
/// products.  Each element's local accumulator sums p ascending from 0 and
/// lands in C with one add, exactly like matmul_bt_acc.
inline void matmul_bt_acc_tile(const float* __restrict a, const float* __restrict b,
                               float* __restrict c, int k, int n, int i0, int i1,
                               int j0, int j1) {
  constexpr int kDotCols = 8;  // B rows reused across the row tile
  for (int ib = i0; ib < i1; ib += kTileRows) {
    const int ie = std::min(i1, ib + kTileRows);
    for (int jb = j0; jb < j1; jb += kDotCols) {
      const int je = std::min(j1, jb + kDotCols);
      for (int i = ib; i < ie; ++i) {
        const float* __restrict arow = a + static_cast<std::size_t>(i) * k;
        float* __restrict crow = c + static_cast<std::size_t>(i) * n;
        for (int j = jb; j < je; ++j) {
          const float* __restrict brow = b + static_cast<std::size_t>(j) * k;
          float acc = 0.0f;
          for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += acc;
        }
      }
    }
  }
}

}  // namespace kdetail

/// Blocked C[MxN] += A[MxK] * B[KxN]; bit-identical to matmul_acc.
inline void matmul_acc_blocked(const float* a, const float* b, float* c, int m,
                               int k, int n) {
  kdetail::matmul_acc_rows_blocked(a, b, c, k, n, 0, m);
}

/// Blocked k-outer variant: j-blocks of B are streamed exactly once while
/// the whole [M x block] C panel stays hot — the multi-row (weight-
/// streaming) shape of matmul_acc_kouter with L1-sized column blocks.
/// Bit-identical to matmul_acc_kouter (and so to matmul_acc).
inline void matmul_acc_kouter_blocked(const float* __restrict a,
                                      const float* __restrict b,
                                      float* __restrict c, int m, int k, int n) {
  for (int jb = 0; jb < n; jb += kdetail::kTileCols) {
    const int je = std::min(n, jb + kdetail::kTileCols);
    for (int p = 0; p < k; ++p) {
      const float* __restrict brow = b + static_cast<std::size_t>(p) * n;
      for (int i = 0; i < m; ++i) {
        const float av = a[static_cast<std::size_t>(i) * k + p];
        if (av == 0.0f) continue;
        float* __restrict crow = c + static_cast<std::size_t>(i) * n;
        for (int j = jb; j < je; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// Blocked C[MxN] += A[MxK] * B^T (B is [NxK]); bit-identical to
/// matmul_bt_acc.
inline void matmul_bt_acc_blocked(const float* a, const float* b, float* c,
                                  int m, int k, int n) {
  kdetail::matmul_bt_acc_tile(a, b, c, k, n, 0, m, 0, n);
}

}  // namespace vsd::nn
