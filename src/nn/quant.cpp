#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "nn/kernel_dispatch.hpp"
#include "nn/parallel.hpp"

namespace vsd::nn {

QuantizedWeights QuantizedWeights::pack(const float* w, int k, int n,
                                        int group) {
  check(k >= 1 && n >= 1, "QuantizedWeights::pack: empty matrix");
  check(group >= 1, "QuantizedWeights::pack: group must be >= 1");
  QuantizedWeights out;
  out.k = k;
  out.n = n;
  out.group = group;
  const int gs = out.groups();
  out.q.assign(static_cast<std::size_t>(k) * n, 0);
  out.scale.assign(static_cast<std::size_t>(gs) * n, 0.0f);
  out.zero.assign(static_cast<std::size_t>(gs) * n, 0.0f);
  for (int g = 0; g < gs; ++g) {
    const int p0 = g * group;
    const int p1 = std::min(k, p0 + group);
    for (int j = 0; j < n; ++j) {
      float lo = w[static_cast<std::size_t>(p0) * n + j];
      float hi = lo;
      for (int p = p0 + 1; p < p1; ++p) {
        const float v = w[static_cast<std::size_t>(p) * n + j];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      // Affine map of [lo, hi] onto codes [-127, 127].  A constant range
      // packs as scale 0 + zero = the constant (reproduced exactly); the
      // symmetric code range keeps the map round-trip stable.
      const float zero = 0.5f * (lo + hi);
      const float half = 0.5f * (hi - lo);
      const float scale = half > 0.0f ? half / 127.0f : 0.0f;
      const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
      out.zero[static_cast<std::size_t>(g) * n + j] = zero;
      out.scale[static_cast<std::size_t>(g) * n + j] = scale;
      for (int p = p0; p < p1; ++p) {
        const float v = w[static_cast<std::size_t>(p) * n + j];
        const float code = std::round((v - zero) * inv);
        out.q[static_cast<std::size_t>(p) * n + j] = static_cast<std::int8_t>(
            std::clamp(code, -127.0f, 127.0f));
      }
    }
  }
  return out;
}

void QuantizedWeights::dequantize(float* out) const {
  for (int p = 0; p < k; ++p) {
    const int g = p / group;
    const float* sc = scale.data() + static_cast<std::size_t>(g) * n;
    const float* zr = zero.data() + static_cast<std::size_t>(g) * n;
    const std::int8_t* qrow = q.data() + static_cast<std::size_t>(p) * n;
    float* orow = out + static_cast<std::size_t>(p) * n;
    for (int j = 0; j < n; ++j) {
      orow[j] = zr[j] + sc[j] * static_cast<float>(qrow[j]);
    }
  }
}

double QuantizedWeights::max_abs_error(const float* w) const {
  double worst = 0.0;
  for (int p = 0; p < k; ++p) {
    const int g = p / group;
    for (int j = 0; j < n; ++j) {
      const float deq =
          zero[static_cast<std::size_t>(g) * n + j] +
          scale[static_cast<std::size_t>(g) * n + j] *
              static_cast<float>(q[static_cast<std::size_t>(p) * n + j]);
      worst = std::max(
          worst, std::abs(static_cast<double>(deq) -
                          static_cast<double>(w[static_cast<std::size_t>(p) * n + j])));
    }
  }
  return worst;
}

std::size_t QuantizedWeights::byte_size() const {
  return q.size() * sizeof(std::int8_t) +
         (scale.size() + zero.size()) * sizeof(float);
}

std::size_t QuantizedWeights::fp32_byte_size() const {
  return static_cast<std::size_t>(k) * n * sizeof(float);
}

void q8_matmul_acc_rows_scalar(const float* a, const QuantizedWeights& w,
                               float* c, int i0, int i1, float* acc) {
  const int k = w.k;
  const int n = w.n;
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int g = 0; g * w.group < k; ++g) {
      const int p0 = g * w.group;
      const int p1 = std::min(k, p0 + w.group);
      std::fill(acc, acc + n, 0.0f);
      float rowsum = 0.0f;
      for (int p = p0; p < p1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        rowsum += av;
        const std::int8_t* qrow = w.q.data() + static_cast<std::size_t>(p) * n;
        for (int j = 0; j < n; ++j) {
          acc[j] += av * static_cast<float>(qrow[j]);
        }
      }
      const float* sc = w.scale.data() + static_cast<std::size_t>(g) * n;
      const float* zr = w.zero.data() + static_cast<std::size_t>(g) * n;
      for (int j = 0; j < n; ++j) {
        crow[j] += rowsum * zr[j] + sc[j] * acc[j];
      }
    }
  }
}

void q8_linear_acc(const float* a, const QuantizedWeights& w, float* c, int m) {
  const KernelOps& ops = active_kernels();
  // Row partition only (the quantized matrices are [D, V]: wide outputs,
  // but every row chunk re-reads the whole packed weight anyway, and rows
  // are what the fused scheduler batches).  Each chunk carries its own
  // dequant scratch so pool workers never share a buffer.
  const long per_row = static_cast<long>(w.k) * w.n;
  const int rows_min = static_cast<int>(
      std::max<long>(1, (65536 + per_row - 1) / std::max<long>(per_row, 1)));
  parallel_ranges(m, rows_min, [&](int lo, int hi) {
    std::vector<float> acc(static_cast<std::size_t>(w.n));
    ops.q8_rows(a, w, c, lo, hi, acc.data());
  });
}

}  // namespace vsd::nn
