// Vectorized kernel tier (see kernels_simd.hpp for the exact/fast
// contract).  This translation unit is compiled with the ISA flags the
// kernels need (-mavx2 -mfma on x86); -ffp-contract=off is pinned
// project-wide, so the exact tier's separate _mm256_mul_ps/_mm256_add_ps
// (and vmulq/vaddq) never re-fuse into FMA, while the fast tier's
// explicit _mm256_fmadd_ps / vfmaq_f32 builtins still emit FMA.
//
// Nothing here may run unless the dispatch probe selected the ISA — and
// because the whole TU is built with ISA flags, it must not instantiate
// any shared inline/template code (a comdat symbol emitted out-of-line
// here could be chosen by the linker over the baseline copy and executed
// unguarded on an older machine).  Hence: no kernels.hpp/quant.hpp/
// <algorithm> includes, local min/fill helpers with internal linkage, raw
// pointers at the API boundary.  std::memcpy is an extern libc call, not
// a template, and stays.
#include "nn/kernels_simd.hpp"

#include <cstdint>
#include <cstring>

#if defined(VSD_KERNELS_HAVE_AVX2)
#include <immintrin.h>
#endif
#if defined(VSD_KERNELS_HAVE_NEON)
#include <arm_neon.h>
#endif

namespace vsd::nn {

namespace {

inline int imin(int a, int b) { return a < b ? a : b; }

inline void zero_fill(float* p, int n) {
  for (int i = 0; i < n; ++i) p[i] = 0.0f;
}

}  // namespace

#if defined(VSD_KERNELS_HAVE_AVX2)
namespace simd_avx2 {

namespace {

/// Sum of the 8 lanes (fast tier only — a reduction reassociates).
inline float hsum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

}  // namespace

// --- exact tier --------------------------------------------------------------
// Lane j of every vector owns output element c[i][j] and nothing else, so
// `c += av * b` is the same mul-then-add rounding the scalar reference
// performs on that element; the p loop and the zero-skip are untouched.

void acc_rows_exact(const float* a, const float* b, float* c, int k, int n,
                    int i0, int i1) {
  const int n8 = n & ~7;
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = i0; i < i1; ++i) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      const __m256 vav = _mm256_set1_ps(av);
      int j = 0;
      for (; j < n8; j += 8) {
        const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(brow + j));
        _mm256_storeu_ps(crow + j,
                         _mm256_add_ps(_mm256_loadu_ps(crow + j), prod));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void acc_tile_exact(const float* a, const float* b, float* c, int k, int n,
                    int i0, int i1, int j0, int j1) {
  using simd_detail::kTileCols;
  using simd_detail::kTileRows;
  for (int ib = i0; ib < i1; ib += kTileRows) {
    const int ie = imin(i1, ib + kTileRows);
    for (int jb = j0; jb < j1; jb += kTileCols) {
      const int je = imin(j1, jb + kTileCols);
      const int je8 = jb + ((je - jb) & ~7);
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<std::size_t>(p) * n;
        for (int i = ib; i < ie; ++i) {
          const float av = a[static_cast<std::size_t>(i) * k + p];
          if (av == 0.0f) continue;
          float* crow = c + static_cast<std::size_t>(i) * n;
          const __m256 vav = _mm256_set1_ps(av);
          int j = jb;
          for (; j < je8; j += 8) {
            const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(brow + j));
            _mm256_storeu_ps(crow + j,
                             _mm256_add_ps(_mm256_loadu_ps(crow + j), prod));
          }
          for (; j < je; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void acc_kouter_exact(const float* a, const float* b, float* c, int m, int k,
                      int n) {
  using simd_detail::kTileCols;
  for (int jb = 0; jb < n; jb += kTileCols) {
    const int je = imin(n, jb + kTileCols);
    const int je8 = jb + ((je - jb) & ~7);
    for (int p = 0; p < k; ++p) {
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int i = 0; i < m; ++i) {
        const float av = a[static_cast<std::size_t>(i) * k + p];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<std::size_t>(i) * n;
        const __m256 vav = _mm256_set1_ps(av);
        int j = jb;
        for (; j < je8; j += 8) {
          const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(brow + j));
          _mm256_storeu_ps(crow + j,
                           _mm256_add_ps(_mm256_loadu_ps(crow + j), prod));
        }
        for (; j < je; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// --- fast tier ---------------------------------------------------------------
// Same loop structure with FMA contraction; bt_tile additionally
// vectorizes each dot product over p (reassociation) and q8_rows
// dequantizes grouped-int8 codes in register.

void acc_rows_fast(const float* a, const float* b, float* c, int k, int n,
                   int i0, int i1) {
  const int n8 = n & ~7;
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = i0; i < i1; ++i) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      const __m256 vav = _mm256_set1_ps(av);
      int j = 0;
      for (; j < n8; j += 8) {
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j),
                                         _mm256_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void acc_tile_fast(const float* a, const float* b, float* c, int k, int n,
                   int i0, int i1, int j0, int j1) {
  using simd_detail::kTileCols;
  using simd_detail::kTileRows;
  for (int ib = i0; ib < i1; ib += kTileRows) {
    const int ie = imin(i1, ib + kTileRows);
    for (int jb = j0; jb < j1; jb += kTileCols) {
      const int je = imin(j1, jb + kTileCols);
      const int je8 = jb + ((je - jb) & ~7);
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<std::size_t>(p) * n;
        for (int i = ib; i < ie; ++i) {
          const float av = a[static_cast<std::size_t>(i) * k + p];
          if (av == 0.0f) continue;
          float* crow = c + static_cast<std::size_t>(i) * n;
          const __m256 vav = _mm256_set1_ps(av);
          int j = jb;
          for (; j < je8; j += 8) {
            _mm256_storeu_ps(crow + j,
                             _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j),
                                             _mm256_loadu_ps(crow + j)));
          }
          for (; j < je; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void acc_kouter_fast(const float* a, const float* b, float* c, int m, int k,
                     int n) {
  using simd_detail::kTileCols;
  for (int jb = 0; jb < n; jb += kTileCols) {
    const int je = imin(n, jb + kTileCols);
    const int je8 = jb + ((je - jb) & ~7);
    for (int p = 0; p < k; ++p) {
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int i = 0; i < m; ++i) {
        const float av = a[static_cast<std::size_t>(i) * k + p];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<std::size_t>(i) * n;
        const __m256 vav = _mm256_set1_ps(av);
        int j = jb;
        for (; j < je8; j += 8) {
          _mm256_storeu_ps(crow + j,
                           _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j),
                                           _mm256_loadu_ps(crow + j)));
        }
        for (; j < je; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void bt_tile_fast(const float* a, const float* b, float* c, int k, int n,
                  int i0, int i1, int j0, int j1) {
  using simd_detail::kTileRows;
  constexpr int kDotCols = 8;
  const int k8 = k & ~7;
  for (int ib = i0; ib < i1; ib += kTileRows) {
    const int ie = imin(i1, ib + kTileRows);
    for (int jb = j0; jb < j1; jb += kDotCols) {
      const int je = imin(j1, jb + kDotCols);
      for (int i = ib; i < ie; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * k;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int j = jb; j < je; ++j) {
          const float* brow = b + static_cast<std::size_t>(j) * k;
          __m256 vacc = _mm256_setzero_ps();
          int p = 0;
          for (; p < k8; p += 8) {
            vacc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                                   _mm256_loadu_ps(brow + p), vacc);
          }
          float acc = hsum8(vacc);
          for (; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += acc;
        }
      }
    }
  }
}

void q8_rows(const float* a, const std::int8_t* q, const float* scale,
             const float* zero, int k, int n, int group, float* c, int i0,
             int i1, float* acc) {
  const int n8 = n & ~7;
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int g = 0; g * group < k; ++g) {
      const int p0 = g * group;
      const int p1 = imin(k, p0 + group);
      zero_fill(acc, n);
      float rowsum = 0.0f;
      for (int p = p0; p < p1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        rowsum += av;
        const std::int8_t* qrow = q + static_cast<std::size_t>(p) * n;
        const __m256 vav = _mm256_set1_ps(av);
        int j = 0;
        for (; j < n8; j += 8) {
          const __m128i q8 =
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(qrow + j));
          const __m256 qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
          _mm256_storeu_ps(acc + j,
                           _mm256_fmadd_ps(vav, qf, _mm256_loadu_ps(acc + j)));
        }
        for (; j < n; ++j) acc[j] += av * static_cast<float>(qrow[j]);
      }
      const float* sc = scale + static_cast<std::size_t>(g) * n;
      const float* zr = zero + static_cast<std::size_t>(g) * n;
      const __m256 vsum = _mm256_set1_ps(rowsum);
      int j = 0;
      for (; j < n8; j += 8) {
        __m256 cv = _mm256_loadu_ps(crow + j);
        cv = _mm256_fmadd_ps(vsum, _mm256_loadu_ps(zr + j), cv);
        cv = _mm256_fmadd_ps(_mm256_loadu_ps(sc + j), _mm256_loadu_ps(acc + j),
                             cv);
        _mm256_storeu_ps(crow + j, cv);
      }
      for (; j < n; ++j) crow[j] += rowsum * zr[j] + sc[j] * acc[j];
    }
  }
}

}  // namespace simd_avx2
#endif  // VSD_KERNELS_HAVE_AVX2

#if defined(VSD_KERNELS_HAVE_NEON)
namespace simd_neon {

namespace {

inline float hsum4(float32x4_t v) { return vaddvq_f32(v); }

}  // namespace

// NEON mirrors the AVX2 tiers 4 lanes wide.  Exact keeps separate
// vmulq/vaddq (vfmaq fuses — same single-rounding hazard as x86 FMA);
// the project-wide -ffp-contract=off keeps the compiler from re-fusing
// them, here AND in every TU instantiating the scalar reference.

void acc_rows_exact(const float* a, const float* b, float* c, int k, int n,
                    int i0, int i1) {
  const int n4 = n & ~3;
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = i0; i < i1; ++i) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      const float32x4_t vav = vdupq_n_f32(av);
      int j = 0;
      for (; j < n4; j += 4) {
        const float32x4_t prod = vmulq_f32(vav, vld1q_f32(brow + j));
        vst1q_f32(crow + j, vaddq_f32(vld1q_f32(crow + j), prod));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void acc_tile_exact(const float* a, const float* b, float* c, int k, int n,
                    int i0, int i1, int j0, int j1) {
  using simd_detail::kTileCols;
  using simd_detail::kTileRows;
  for (int ib = i0; ib < i1; ib += kTileRows) {
    const int ie = imin(i1, ib + kTileRows);
    for (int jb = j0; jb < j1; jb += kTileCols) {
      const int je = imin(j1, jb + kTileCols);
      const int je4 = jb + ((je - jb) & ~3);
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<std::size_t>(p) * n;
        for (int i = ib; i < ie; ++i) {
          const float av = a[static_cast<std::size_t>(i) * k + p];
          if (av == 0.0f) continue;
          float* crow = c + static_cast<std::size_t>(i) * n;
          const float32x4_t vav = vdupq_n_f32(av);
          int j = jb;
          for (; j < je4; j += 4) {
            const float32x4_t prod = vmulq_f32(vav, vld1q_f32(brow + j));
            vst1q_f32(crow + j, vaddq_f32(vld1q_f32(crow + j), prod));
          }
          for (; j < je; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void acc_kouter_exact(const float* a, const float* b, float* c, int m, int k,
                      int n) {
  using simd_detail::kTileCols;
  for (int jb = 0; jb < n; jb += kTileCols) {
    const int je = imin(n, jb + kTileCols);
    const int je4 = jb + ((je - jb) & ~3);
    for (int p = 0; p < k; ++p) {
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int i = 0; i < m; ++i) {
        const float av = a[static_cast<std::size_t>(i) * k + p];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<std::size_t>(i) * n;
        const float32x4_t vav = vdupq_n_f32(av);
        int j = jb;
        for (; j < je4; j += 4) {
          const float32x4_t prod = vmulq_f32(vav, vld1q_f32(brow + j));
          vst1q_f32(crow + j, vaddq_f32(vld1q_f32(crow + j), prod));
        }
        for (; j < je; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void acc_rows_fast(const float* a, const float* b, float* c, int k, int n,
                   int i0, int i1) {
  const int n4 = n & ~3;
  for (int p = 0; p < k; ++p) {
    const float* brow = b + static_cast<std::size_t>(p) * n;
    for (int i = i0; i < i1; ++i) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      const float32x4_t vav = vdupq_n_f32(av);
      int j = 0;
      for (; j < n4; j += 4) {
        vst1q_f32(crow + j,
                  vfmaq_f32(vld1q_f32(crow + j), vav, vld1q_f32(brow + j)));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void acc_tile_fast(const float* a, const float* b, float* c, int k, int n,
                   int i0, int i1, int j0, int j1) {
  using simd_detail::kTileCols;
  using simd_detail::kTileRows;
  for (int ib = i0; ib < i1; ib += kTileRows) {
    const int ie = imin(i1, ib + kTileRows);
    for (int jb = j0; jb < j1; jb += kTileCols) {
      const int je = imin(j1, jb + kTileCols);
      const int je4 = jb + ((je - jb) & ~3);
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<std::size_t>(p) * n;
        for (int i = ib; i < ie; ++i) {
          const float av = a[static_cast<std::size_t>(i) * k + p];
          if (av == 0.0f) continue;
          float* crow = c + static_cast<std::size_t>(i) * n;
          const float32x4_t vav = vdupq_n_f32(av);
          int j = jb;
          for (; j < je4; j += 4) {
            vst1q_f32(crow + j,
                      vfmaq_f32(vld1q_f32(crow + j), vav, vld1q_f32(brow + j)));
          }
          for (; j < je; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void acc_kouter_fast(const float* a, const float* b, float* c, int m, int k,
                     int n) {
  using simd_detail::kTileCols;
  for (int jb = 0; jb < n; jb += kTileCols) {
    const int je = imin(n, jb + kTileCols);
    const int je4 = jb + ((je - jb) & ~3);
    for (int p = 0; p < k; ++p) {
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int i = 0; i < m; ++i) {
        const float av = a[static_cast<std::size_t>(i) * k + p];
        if (av == 0.0f) continue;
        float* crow = c + static_cast<std::size_t>(i) * n;
        const float32x4_t vav = vdupq_n_f32(av);
        int j = jb;
        for (; j < je4; j += 4) {
          vst1q_f32(crow + j,
                    vfmaq_f32(vld1q_f32(crow + j), vav, vld1q_f32(brow + j)));
        }
        for (; j < je; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void bt_tile_fast(const float* a, const float* b, float* c, int k, int n,
                  int i0, int i1, int j0, int j1) {
  using simd_detail::kTileRows;
  constexpr int kDotCols = 8;
  const int k4 = k & ~3;
  for (int ib = i0; ib < i1; ib += kTileRows) {
    const int ie = imin(i1, ib + kTileRows);
    for (int jb = j0; jb < j1; jb += kDotCols) {
      const int je = imin(j1, jb + kDotCols);
      for (int i = ib; i < ie; ++i) {
        const float* arow = a + static_cast<std::size_t>(i) * k;
        float* crow = c + static_cast<std::size_t>(i) * n;
        for (int j = jb; j < je; ++j) {
          const float* brow = b + static_cast<std::size_t>(j) * k;
          float32x4_t vacc = vdupq_n_f32(0.0f);
          int p = 0;
          for (; p < k4; p += 4) {
            vacc = vfmaq_f32(vacc, vld1q_f32(arow + p), vld1q_f32(brow + p));
          }
          float acc = hsum4(vacc);
          for (; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += acc;
        }
      }
    }
  }
}

void q8_rows(const float* a, const std::int8_t* q, const float* scale,
             const float* zero, int k, int n, int group, float* c, int i0,
             int i1, float* acc) {
  const int n4 = n & ~3;
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int g = 0; g * group < k; ++g) {
      const int p0 = g * group;
      const int p1 = imin(k, p0 + group);
      zero_fill(acc, n);
      float rowsum = 0.0f;
      for (int p = p0; p < p1; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        rowsum += av;
        const std::int8_t* qrow = q + static_cast<std::size_t>(p) * n;
        const float32x4_t vav = vdupq_n_f32(av);
        int j = 0;
        for (; j < n4; j += 4) {
          std::int32_t bits;  // 4-byte load: vld1_s8 would read past the row
          std::memcpy(&bits, qrow + j, sizeof(bits));
          const int16x8_t q16 = vmovl_s8(vreinterpret_s8_s32(vdup_n_s32(bits)));
          const float32x4_t qf = vcvtq_f32_s32(vmovl_s16(vget_low_s16(q16)));
          vst1q_f32(acc + j, vfmaq_f32(vld1q_f32(acc + j), vav, qf));
        }
        for (; j < n; ++j) acc[j] += av * static_cast<float>(qrow[j]);
      }
      const float* sc = scale + static_cast<std::size_t>(g) * n;
      const float* zr = zero + static_cast<std::size_t>(g) * n;
      const float32x4_t vsum = vdupq_n_f32(rowsum);
      int j = 0;
      for (; j < n4; j += 4) {
        float32x4_t cv = vld1q_f32(crow + j);
        cv = vfmaq_f32(cv, vsum, vld1q_f32(zr + j));
        cv = vfmaq_f32(cv, vld1q_f32(sc + j), vld1q_f32(acc + j));
        vst1q_f32(crow + j, cv);
      }
      for (; j < n; ++j) crow[j] += rowsum * zr[j] + sc[j] * acc[j];
    }
  }
}

}  // namespace simd_neon
#endif  // VSD_KERNELS_HAVE_NEON

}  // namespace vsd::nn
