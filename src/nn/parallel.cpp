#include "nn/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nn/kernel_dispatch.hpp"
#include "nn/kernels.hpp"

namespace vsd::nn {

namespace {

// Don't split below this many multiply-accumulates per chunk: a pool
// handoff costs a few microseconds, so a chunk must carry tens of
// microseconds of arithmetic to win.  (65536 MACs ~ ten microseconds of a
// blocked [, 64] x [64, 384] logit GEMM.)  Purely a performance threshold —
// partitioning never changes the produced floats.
constexpr long kGrainMacs = 65536;

std::mutex g_mu;                        // guards (re)initialization only
std::atomic<int> g_threads{0};          // 0 => not yet initialized
std::unique_ptr<ThreadPool> g_pool;     // owned under g_mu
std::atomic<ThreadPool*> g_pool_raw{nullptr};  // lock-free hot-path read

thread_local bool t_on_worker = false;

int env_or_hardware_threads() {
  if (const char* env = std::getenv("VSD_COMPUTE_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

int hardware_threads() {
  static const int hw = [] {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }();
  return hw;
}

namespace {

/// Installs a pool of width - 1 workers: the thread that issues a kernel
/// always works the first chunk itself, so N compute threads means N - 1
/// pool workers plus the caller — `--compute-threads 2` occupies exactly
/// two threads, not three.  Every worker marks itself, so a kernel issued
/// from inside a pool task (a nested split, or a coarse task like a
/// scheduler head pass) detects the nesting and runs serially instead of
/// waiting on the pool it is occupying.  Called under g_mu.
void install_pool_locked(int width) {
  g_pool_raw.store(nullptr, std::memory_order_release);
  g_pool.reset();  // joins idle workers; callers guarantee no kernels in flight
  g_threads.store(width, std::memory_order_release);
  if (width > 1) {
    g_pool = std::make_unique<ThreadPool>(width - 1, [] { t_on_worker = true; });
    g_pool_raw.store(g_pool.get(), std::memory_order_release);
  }
}

}  // namespace

int compute_threads() {
  const int cached = g_threads.load(std::memory_order_acquire);
  if (cached != 0) return cached;
  const std::lock_guard<std::mutex> lock(g_mu);
  if (g_threads.load(std::memory_order_relaxed) == 0) {
    install_pool_locked(env_or_hardware_threads());
  }
  return g_threads.load(std::memory_order_relaxed);
}

void set_compute_threads(int n) {
  const std::lock_guard<std::mutex> lock(g_mu);
  const int want = std::max(1, n);
  if (want == g_threads.load(std::memory_order_relaxed)) return;
  install_pool_locked(want);
}

ThreadPool* compute_pool() {
  compute_threads();  // force lazy init
  return g_pool_raw.load(std::memory_order_acquire);
}

bool on_compute_worker() { return t_on_worker; }

namespace {

/// Chunk count parallel_ranges would split [0, total) into: 1 when there is
/// no pool, we are already on a pool worker, or the range is too small to
/// feed two chunks of min_grain.  Fan-out is additionally capped by the
/// REAL core count — an oversubscribed pool (--compute-threads past the
/// hardware) would only add context switches, never arithmetic.  Letting
/// drivers plan first keeps the serial fallback a direct kernel call — no
/// std::function detour on the hot single-thread path.
int plan_chunks(int total, int min_grain) {
  if (total <= 0 || t_on_worker || hardware_threads() < 2) return 1;
  ThreadPool* pool = compute_pool();
  if (pool == nullptr) return 1;
  // pool->size() + 1 == the requested --compute-threads width (workers
  // plus the calling thread, which always takes the first chunk).
  const int cap = std::min(pool->size() + 1, hardware_threads());
  return std::max(1, std::min(cap, total / std::max(1, min_grain)));
}

}  // namespace

void parallel_ranges(int total, int min_grain,
                     const std::function<void(int, int)>& body) {
  if (total <= 0) return;
  const int max_chunks = plan_chunks(total, min_grain);
  if (max_chunks <= 1) {
    body(0, total);
    return;
  }
  ThreadPool* pool = compute_pool();
  const int step = (total + max_chunks - 1) / max_chunks;
  std::vector<std::future<void>> pending;
  pending.reserve(static_cast<std::size_t>(max_chunks - 1));
  // Workers reference `body` (and through it the caller's buffers), so
  // this frame must not unwind until every submitted chunk has finished —
  // even when a submit or the caller's own chunk throws.  Join first,
  // rethrow after.
  std::exception_ptr err;
  try {
    for (int lo = step; lo < total; lo += step) {
      const int hi = std::min(total, lo + step);
      pending.push_back(pool->submit([lo, hi, &body] { body(lo, hi); }));
    }
    body(0, std::min(step, total));
  } catch (...) {
    err = std::current_exception();
  }
  for (auto& f : pending) f.wait();
  if (err) std::rethrow_exception(err);
  // get() rethrows the first worker-chunk failure (a partial GEMM must
  // never escape silently).
  for (auto& f : pending) f.get();
}

namespace {

/// Row-range driver through the dispatch table: the L1 panel blocking of
/// matmul_acc_rows_blocked around whichever acc_rows kernel the probe
/// selected.  Panel bounds only partition output rows, so the exact tier
/// stays bit-identical to the scalar reference for every ISA.
void acc_rows_blocked_dispatched(const KernelOps& ops, const float* a,
                                 const float* b, float* c, int k, int n,
                                 int i0, int i1) {
  const int panel = kdetail::panel_rows(n);
  for (int ib = i0; ib < i1; ib += panel) {
    ops.acc_rows(a, b, c, k, n, ib, std::min(i1, ib + panel));
  }
}

}  // namespace

void matmul_acc_parallel(const float* a, const float* b, float* c, int m,
                         int k, int n) {
  // Prefer whole-row chunks; skinny-but-wide logit shapes fall back to
  // column chunks so a small batch still spreads across the pool.  Both
  // plans leave every output element in exactly one chunk, and every chunk
  // runs the dispatched (scalar / AVX2 / NEON) kernel tier.
  const KernelOps& ops = active_kernels();
  const long per_row = static_cast<long>(k) * n;
  const int rows_min = static_cast<int>(
      std::max<long>(1, (kGrainMacs + per_row - 1) / std::max<long>(per_row, 1)));
  if (plan_chunks(m, rows_min) >= 2) {
    parallel_ranges(m, rows_min, [&](int lo, int hi) {
      acc_rows_blocked_dispatched(ops, a, b, c, k, n, lo, hi);
    });
    return;
  }
  const long per_col = static_cast<long>(m) * k;
  const int cols_min = static_cast<int>(
      std::max<long>(1, (kGrainMacs + per_col - 1) / std::max<long>(per_col, 1)));
  if (plan_chunks(n, cols_min) >= 2) {
    parallel_ranges(n, cols_min, [&](int lo, int hi) {
      ops.acc_tile(a, b, c, k, n, 0, m, lo, hi);
    });
    return;
  }
  acc_rows_blocked_dispatched(ops, a, b, c, k, n, 0, m);
}

void matmul_bt_acc_parallel(const float* a, const float* b, float* c, int m,
                            int k, int n) {
  const KernelOps& ops = active_kernels();
  const long per_row = static_cast<long>(k) * n;
  const int rows_min = static_cast<int>(
      std::max<long>(1, (kGrainMacs + per_row - 1) / std::max<long>(per_row, 1)));
  if (plan_chunks(m, rows_min) >= 2) {
    parallel_ranges(m, rows_min, [&](int lo, int hi) {
      ops.bt_tile(a, b, c, k, n, lo, hi, 0, n);
    });
    return;
  }
  const long per_col = static_cast<long>(m) * k;
  const int cols_min = static_cast<int>(
      std::max<long>(1, (kGrainMacs + per_col - 1) / std::max<long>(per_col, 1)));
  if (plan_chunks(n, cols_min) >= 2) {
    parallel_ranges(n, cols_min, [&](int lo, int hi) {
      ops.bt_tile(a, b, c, k, n, 0, m, lo, hi);
    });
    return;
  }
  ops.bt_tile(a, b, c, k, n, 0, m, 0, n);
}

void linear_acc(const float* a, const float* b, float* c, int m, int k, int n) {
  if (compute_threads() > 1) {
    matmul_acc_parallel(a, b, c, m, k, n);
    return;
  }
  // compute_threads() == 1 with scalar dispatch: the exact pre-existing
  // serial path — k-outer weight streaming for multi-row inputs, the plain
  // ikj loop for one row.  A vector ISA takes the dispatched kernels
  // instead (bit-identical in exact mode, so T=0 parity still holds).
  if (dispatched_isa() == KernelIsa::Scalar) {
    if (m > 1) {
      matmul_acc_kouter(a, b, c, m, k, n);
    } else {
      matmul_acc(a, b, c, m, k, n);
    }
    return;
  }
  const KernelOps& ops = active_kernels();
  if (m > 1) {
    ops.acc_kouter(a, b, c, m, k, n);
  } else {
    acc_rows_blocked_dispatched(ops, a, b, c, k, n, 0, 1);
  }
}

void linear_bt_acc(const float* a, const float* b, float* c, int m, int k, int n) {
  if (compute_threads() > 1) {
    matmul_bt_acc_parallel(a, b, c, m, k, n);
  } else if (dispatched_isa() == KernelIsa::Scalar) {
    matmul_bt_acc(a, b, c, m, k, n);
  } else {
    active_kernels().bt_tile(a, b, c, k, n, 0, m, 0, n);
  }
}

}  // namespace vsd::nn
