#include "eval/passk.hpp"

namespace vsd::eval {

double pass_at_k(int n, int c, int k) {
  check(n >= 1 && c >= 0 && c <= n && k >= 1, "pass_at_k: bad arguments");
  if (k > n) k = n;
  if (c == 0) return 0.0;
  if (n - c < k) return 1.0;
  // 1 - prod_{i=0}^{k-1} (n - c - i) / (n - i)
  double prod = 1.0;
  for (int i = 0; i < k; ++i) {
    prod *= static_cast<double>(n - c - i) / static_cast<double>(n - i);
  }
  return 1.0 - prod;
}

double mean_pass_at_k(const std::vector<std::pair<int, int>>& n_and_c, int k) {
  if (n_and_c.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [n, c] : n_and_c) sum += pass_at_k(n, c, k);
  return sum / static_cast<double>(n_and_c.size());
}

double pass_rate(const std::vector<std::pair<int, int>>& n_and_c) {
  if (n_and_c.empty()) return 0.0;
  int passed = 0;
  for (const auto& [n, c] : n_and_c) passed += c > 0 ? 1 : 0;
  return static_cast<double>(passed) / static_cast<double>(n_and_c.size());
}

}  // namespace vsd::eval
