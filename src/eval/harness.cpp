#include "eval/harness.hpp"

#include <cstdlib>
#include <future>

#include "serve/thread_pool.hpp"
#include "sim/check.hpp"
#include "vlog/dataflow.hpp"
#include "vlog/lint.hpp"
#include "vlog/parser.hpp"

namespace vsd::eval {

TrainedSystem train_system(const SystemConfig& cfg, const data::Dataset& full,
                           const text::Tokenizer& tokenizer) {
  TrainedSystem sys;
  sys.config = cfg;
  sys.tokenizer = tokenizer;

  data::Dataset ds = data::subset(full, cfg.fraction, cfg.seed ^ 0xDA7A);
  sys.train_items = static_cast<int>(ds.items.size());

  nn::ModelConfig mc;
  mc.vocab = tokenizer.vocab_size();
  mc.d_model = cfg.d_model;
  mc.n_layers = cfg.n_layers;
  mc.n_heads = cfg.attn_heads;
  mc.d_ff = cfg.d_ff;
  mc.max_seq = cfg.max_seq;
  mc.encoder_decoder = cfg.encoder_decoder;
  mc.enc_layers = cfg.enc_layers;
  mc.n_medusa_heads = cfg.method == spec::Method::NTP ? 0 : cfg.medusa_heads;
  sys.model = std::make_unique<nn::TransformerModel>(mc, cfg.seed);

  spec::TrainConfig tc;
  tc.method = cfg.method;
  tc.epochs = cfg.epochs;
  tc.lr = cfg.lr;
  tc.max_seq = cfg.max_seq - 8;
  tc.seed = cfg.seed;
  spec::Trainer trainer(*sys.model, tc);
  const auto examples =
      data::encode_for_training(ds, tokenizer, cfg.method == spec::Method::Ours);
  sys.train_stats = trainer.fit(examples);
  return sys;
}

PreparedRequest prepare_request(const TrainedSystem& sys, const std::string& prompt,
                                const spec::DecodeConfig& dcfg) {
  PreparedRequest req;
  if (sys.config.encoder_decoder) {
    req.prompt_ids = sys.tokenizer.encode(prompt);
  } else {
    req.prompt_ids = sys.tokenizer.encode(prompt, /*add_bos=*/true);
  }
  req.config = dcfg;
  req.config.fragment_integrity = sys.config.method == spec::Method::Ours;
  if (sys.config.method == spec::Method::Ours) {
    // Ours emits [FRAG]-marked sequences, ~1.5x longer in tokens for the
    // same code; give it budget so modules are not truncated mid-body
    // (markers are stripped before evaluation and don't count as output).
    req.config.max_new_tokens =
        req.config.max_new_tokens + req.config.max_new_tokens / 2;
  }
  // Clamp the prompt to leave room for generation.
  const int max_prompt = sys.config.max_seq - req.config.max_new_tokens - 16;
  if (static_cast<int>(req.prompt_ids.size()) > max_prompt && max_prompt > 0) {
    req.prompt_ids.resize(static_cast<std::size_t>(max_prompt));
  }
  return req;
}

spec::DecodeResult generate(const TrainedSystem& sys, const std::string& prompt,
                            const spec::DecodeConfig& dcfg, Rng& rng) {
  const spec::Decoder decoder(*sys.model);
  const PreparedRequest req = prepare_request(sys, prompt, dcfg);
  if (sys.config.method == spec::Method::NTP) {
    return decoder.ntp(req.prompt_ids, req.config, rng);
  }
  return decoder.speculative(req.prompt_ids, req.config, rng);
}

BenchScores evaluate_quality(const TrainedSystem& sys,
                             const std::vector<BenchProblem>& problems,
                             const QualityOptions& opts) {
  BenchScores scores;

  // One task per (problem, temperature, sample) cell.  RNG streams are
  // pre-split serially in grid order, so a sample's draws do not depend on
  // when (or on which worker) it runs — scores are bit-identical for any
  // opts.workers.
  struct SampleTask {
    int problem;
    float temperature;
    int sample;
    Rng rng;
  };
  std::vector<SampleTask> tasks;
  tasks.reserve(problems.size() * opts.temperatures.size() *
                static_cast<std::size_t>(opts.n_samples));
  Rng base(opts.seed);
  for (int p = 0; p < static_cast<int>(problems.size()); ++p) {
    for (const float temp : opts.temperatures) {
      for (int s = 0; s < opts.n_samples; ++s) {
        tasks.push_back({p, temp, s, base.split()});
      }
    }
  }

  std::vector<std::uint8_t> syn_ok(tasks.size(), 0);
  std::vector<std::uint8_t> func_ok(tasks.size(), 0);
  std::vector<std::uint8_t> lint_ok(tasks.size(), 0);
  std::vector<std::uint8_t> elab_clean(tasks.size(), 0);
  const auto run_sample = [&](std::size_t i) {
    const SampleTask& tk = tasks[i];
    const BenchProblem& p = problems[static_cast<std::size_t>(tk.problem)];
    spec::DecodeConfig dcfg;
    dcfg.temperature = tk.temperature;
    dcfg.max_new_tokens = opts.max_new_tokens;
    Rng rng = tk.rng;
    const spec::DecodeResult r = generate(sys, problem_prompt(p), dcfg, rng);
    const std::string text = sys.tokenizer.decode(r.ids);
    const std::string candidate = assemble_candidate(p, text);
    const bool syntax = vlog::syntax_ok(candidate) &&
                        sim::check_compiles(candidate, p.module_name).ok;
    bool functional = false;
    if (syntax) {
      sim::DiffOptions dopts;
      dopts.cycles = 48;
      dopts.vectors = 48;
      dopts.seed = opts.seed ^ (static_cast<std::uint64_t>(tk.sample) << 8);
      const sim::DiffResult d =
          sim::diff_check(p.golden_code, candidate, p.module_name, dopts);
      functional = d.equivalent;
    }
    syn_ok[i] = syntax ? 1 : 0;
    func_ok[i] = functional ? 1 : 0;
    // Lint-clean: the serve --check lint accept criterion (parses and no
    // Error-severity findings).  Checked against the same candidate.
    lint_ok[i] = (syntax && vlog::lint_ok(candidate)) ? 1 : 0;
    // Elab-clean: the serve --check elab accept criterion (elaborates and
    // the hierarchical L2xx passes report no errors).
    elab_clean[i] =
        (syntax && vlog::elab_ok(candidate, p.module_name)) ? 1 : 0;
  };

  if (opts.workers <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) run_sample(i);
  } else {
    serve::ThreadPool pool(opts.workers);
    std::vector<std::future<void>> done;
    done.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      done.push_back(pool.submit([&run_sample, i] { run_sample(i); }));
    }
    for (std::future<void>& f : done) f.get();
  }

  // Reduce: per problem, the best temperature's pass counts (as before).
  std::vector<std::pair<int, int>> func_nc;
  std::vector<std::pair<int, int>> syn_nc;
  std::vector<std::pair<int, int>> lint_nc;
  std::vector<std::pair<int, int>> elab_nc;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < problems.size(); ++p) {
    int best_func = -1;
    int best_syn = -1;
    int best_lint = -1;
    int best_elab = -1;
    for (std::size_t t = 0; t < opts.temperatures.size(); ++t) {
      int c_func = 0;
      int c_syn = 0;
      int c_lint = 0;
      int c_elab = 0;
      for (int s = 0; s < opts.n_samples; ++s, ++cursor) {
        c_syn += syn_ok[cursor];
        c_func += func_ok[cursor];
        c_lint += lint_ok[cursor];
        c_elab += elab_clean[cursor];
      }
      best_func = std::max(best_func, c_func);
      best_syn = std::max(best_syn, c_syn);
      best_lint = std::max(best_lint, c_lint);
      best_elab = std::max(best_elab, c_elab);
    }
    func_nc.emplace_back(opts.n_samples, best_func);
    syn_nc.emplace_back(opts.n_samples, best_syn);
    lint_nc.emplace_back(opts.n_samples, best_lint);
    elab_nc.emplace_back(opts.n_samples, best_elab);
  }

  for (const int k : opts.ks) {
    scores.func_pass_at_k.push_back(mean_pass_at_k(func_nc, k));
    scores.syn_pass_at_k.push_back(mean_pass_at_k(syn_nc, k));
  }
  scores.func_rate = pass_rate(func_nc);
  scores.syn_rate = pass_rate(syn_nc);
  scores.lint_rate = pass_rate(lint_nc);
  scores.elab_rate = pass_rate(elab_nc);
  return scores;
}

SpeedRow evaluate_speed(const TrainedSystem& sys,
                        const std::vector<std::string>& prompts,
                        const SpeedOptions& opts, double t_step_seconds) {
  SpeedRow row;
  Rng rng(opts.seed);
  double sum_speed_model = 0.0;
  double sum_speed_wall = 0.0;
  double sum_accept = 0.0;
  int outputs = 0;

  const float temps[2] = {0.0f, opts.sampling_temperature};
  const int n = std::min<int>(opts.n_prompts, static_cast<int>(prompts.size()));
  for (int i = 0; i < n; ++i) {
    for (const float temp : temps) {
      spec::DecodeConfig dcfg;
      dcfg.temperature = temp;
      dcfg.max_new_tokens = opts.max_new_tokens;
      const spec::DecodeResult r = generate(sys, prompts[static_cast<std::size_t>(i)],
                                            dcfg, rng);
      if (r.ids.empty() || r.steps == 0) continue;
      const double tokens = static_cast<double>(r.ids.size());
      const double modeled_time = static_cast<double>(r.steps) * t_step_seconds;
      // Eq. 3: mean over outputs of length / time.
      sum_speed_model += tokens / std::max(modeled_time, 1e-12);
      sum_speed_wall += tokens / std::max(r.wall_seconds, 1e-12);
      sum_accept += r.mean_accepted();
      row.total_tokens += tokens;
      row.total_steps += r.steps;
      ++outputs;
    }
  }
  if (outputs > 0) {
    row.tokens_per_sec_model = sum_speed_model / outputs;
    row.tokens_per_sec_wall = sum_speed_wall / outputs;
    row.mean_accepted = sum_accept / outputs;
  }
  return row;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

}  // namespace vsd::eval
