// Evaluation benchmarks in the style of RTLLM and VGen (paper Section
// IV-B), built from the held-out template pool: each problem has a prompt,
// a target module name, and a golden reference design used by the
// simulator-based functional check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace vsd::eval {

enum class BenchStyle {
  RtllmLike,  // natural-language spec only
  VgenLike,   // spec + module header (the paper's "low-level" prompts)
};

struct BenchProblem {
  std::string id;
  BenchStyle style = BenchStyle::RtllmLike;
  std::string family;
  std::string instruction;  // NL description used to build the prompt
  std::string header;       // module header (included in VGen-like prompts)
  std::string module_name;
  std::string golden_code;
};

/// Full prompt text fed to the model for this problem (Alpaca-style, with
/// the header appended for VGen-like problems so the model completes the
/// body — matching the paper's use of VGen low-level prompts).
std::string problem_prompt(const BenchProblem& p);

/// For VGen-like problems the generated text continues the header; this
/// assembles a complete candidate module from the raw generation.
std::string assemble_candidate(const BenchProblem& p, const std::string& generation);

/// Benchmark suites; problems are deterministic in `seed`.
std::vector<BenchProblem> make_rtllm_like(int n, std::uint64_t seed);
std::vector<BenchProblem> make_vgen_like(int n, std::uint64_t seed);

/// Benchmark problems drawn from dataset items themselves (the retrieval
/// regime used by the scaled-down quality benches: a 10^5-parameter model
/// cannot generalise to unseen identifier/width combinations, so the
/// controlled method comparison evaluates regeneration fidelity on
/// in-corpus designs; see EXPERIMENTS.md "benchmark construction").
std::vector<BenchProblem> make_from_dataset(const data::Dataset& ds, int n,
                                            BenchStyle style, std::uint64_t seed);

/// Diverse prompt set for the speed evaluation (the paper augments RTLLM/
/// VGen-format prompts to 575 with GPT-4; we sample the same formats from
/// the template space).
std::vector<std::string> make_speed_prompts(int n, std::uint64_t seed);

}  // namespace vsd::eval
