#include "eval/benchmarks.hpp"

#include "data/dataset.hpp"
#include "data/templates.hpp"

namespace vsd::eval {

namespace {

std::vector<BenchProblem> make_suite(BenchStyle style, const char* prefix, int n,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BenchProblem> out;
  const auto& families = data::TemplateLibrary::families();
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Round-robin over families for coverage, random parameters within.
    const std::string& family = families[static_cast<std::size_t>(i) % families.size()];
    data::RtlSample s = data::TemplateLibrary::generate(family, rng, data::Pool::Eval);
    BenchProblem p;
    p.id = std::string(prefix) + "-" + std::to_string(i);
    p.style = style;
    p.family = s.family;
    p.instruction = s.description;
    p.header = s.header;
    p.module_name = s.module_name;
    p.golden_code = s.code;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

std::string problem_prompt(const BenchProblem& p) {
  std::string prompt = data::alpaca_prompt(p.instruction);
  if (p.style == BenchStyle::VgenLike) {
    prompt += p.header + "\n";
  }
  return prompt;
}

std::string assemble_candidate(const BenchProblem& p, const std::string& generation) {
  // Trim leading whitespace, cut after the first complete module (models
  // may ramble past `endmodule`).
  std::string text = generation;
  const std::size_t start = text.find_first_not_of(" \t\n\r");
  if (start != std::string::npos && start > 0) text.erase(0, start);
  const std::size_t end = text.find("endmodule");
  if (end != std::string::npos) text.resize(end + 9);

  if (p.style == BenchStyle::VgenLike) {
    // The prompt already contains the header; if the model restarted the
    // module from scratch anyway, use its complete module as-is.
    if (text.rfind("module", 0) == 0) return text;
    return p.header + "\n" + text;
  }
  return text;
}

std::vector<BenchProblem> make_from_dataset(const data::Dataset& ds, int n,
                                            BenchStyle style, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::size_t> idx(ds.items.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<BenchProblem> out;
  const int count = std::min<int>(n, static_cast<int>(idx.size()));
  for (int i = 0; i < count; ++i) {
    const data::DatasetItem& item = ds.items[idx[static_cast<std::size_t>(i)]];
    BenchProblem p;
    p.id = std::string(style == BenchStyle::VgenLike ? "vgen-ds-" : "rtllm-ds-") +
           std::to_string(i);
    p.style = style;
    p.family = item.family;
    p.instruction = item.instruction;
    // Header = first line of the module (up to and incl. the first ';').
    const std::size_t semi = item.code.find(';');
    p.header = semi == std::string::npos ? item.code : item.code.substr(0, semi + 1);
    p.module_name = item.module_name;
    p.golden_code = item.code;
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<BenchProblem> make_rtllm_like(int n, std::uint64_t seed) {
  return make_suite(BenchStyle::RtllmLike, "rtllm", n, seed);
}

std::vector<BenchProblem> make_vgen_like(int n, std::uint64_t seed) {
  return make_suite(BenchStyle::VgenLike, "vgen", n, seed ^ 0x9E3779B9u);
}

std::vector<std::string> make_speed_prompts(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    data::RtlSample s = data::TemplateLibrary::generate_any(
        rng, rng.next_bool() ? data::Pool::Eval : data::Pool::Train);
    std::string prompt = data::alpaca_prompt(s.description);
    if (rng.next_bool()) prompt += s.header + "\n";  // VGen-format half
    out.push_back(std::move(prompt));
  }
  return out;
}

}  // namespace vsd::eval
