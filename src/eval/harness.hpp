// End-to-end experiment harness: trains a (model, method, data-fraction)
// system and evaluates quality (Table I / Fig. 6) and speed (Table II /
// Fig. 1) exactly along the paper's protocol, scaled to CPU.
//
// Speed metric note: the paper measures wall-clock tokens/s on A800 GPUs,
// where batch-1 decoding is memory-bandwidth-bound and verifying n+1
// drafted positions costs roughly one forward pass.  On a single CPU core
// our miniature models are compute-bound, so we report BOTH raw wall-clock
// tokens/s and a *serving-latency model* tokens/s (= tokens / (steps x
// t_step), with t_step calibrated as the measured single-token step time).
// The latency model reproduces the regime the paper measures; see
// EXPERIMENTS.md.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "eval/benchmarks.hpp"
#include "eval/passk.hpp"
#include "nn/model.hpp"
#include "spec/decode.hpp"
#include "spec/trainer.hpp"
#include "text/bpe.hpp"

namespace vsd::eval {

/// Scaled-down analogue of one fine-tuning run from the paper.
struct SystemConfig {
  spec::Method method = spec::Method::Ours;
  bool encoder_decoder = false;  // false: CodeLlama-like; true: CodeT5p-like
  double fraction = 1.0;         // training-data fraction (1/4 .. 1)
  int medusa_heads = 10;         // paper: 10 heads
  int epochs = 20;   // paper trains much longer relative to model scale
  float lr = 2e-3f;  // paper: 5e-4 at 7B scale; miniature models need more
  int vocab = 384;
  int d_model = 80;
  int n_layers = 2;
  int enc_layers = 1;
  int attn_heads = 2;
  int d_ff = 192;
  int max_seq = 448;
  std::uint64_t seed = 1;
};

struct TrainedSystem {
  SystemConfig config;
  std::unique_ptr<nn::TransformerModel> model;
  text::Tokenizer tokenizer = text::Tokenizer::byte_fallback();
  spec::TrainStats train_stats;
  int train_items = 0;
};

/// Trains one system.  `tokenizer` must have been trained on the full
/// dataset (shared across methods so vocabularies are comparable).
TrainedSystem train_system(const SystemConfig& cfg, const data::Dataset& full,
                           const text::Tokenizer& tokenizer);

/// Generates one completion for a prompt with the system's method.
spec::DecodeResult generate(const TrainedSystem& sys, const std::string& prompt,
                            const spec::DecodeConfig& dcfg, Rng& rng);

/// Tokenizes and clamps `prompt` exactly as generate() does and returns
/// the decode-ready ids plus the per-request config (fragment integrity
/// and the "Ours" marker-token budget applied).  This is the admission
/// path the serving layer uses to build serve::Requests.
struct PreparedRequest {
  std::vector<int> prompt_ids;
  spec::DecodeConfig config;
};
PreparedRequest prepare_request(const TrainedSystem& sys, const std::string& prompt,
                                const spec::DecodeConfig& dcfg);

// --- quality (Table I, Fig. 6) ---------------------------------------------

struct QualityOptions {
  int n_samples = 20;                         // n in Eq. 5
  std::vector<float> temperatures = {0.4f, 0.8f};
  int max_new_tokens = 300;
  std::vector<int> ks = {1, 5, 10};
  std::uint64_t seed = 99;
  // Worker threads for the samples x problems grid (serve::ThreadPool).
  // Every sample draws from its own pre-split RNG stream, so scores are
  // bit-identical for ANY worker count, including the workers=1 serial
  // path.
  int workers = 1;
};

struct BenchScores {
  std::vector<double> func_pass_at_k;  // aligned with QualityOptions::ks
  double func_rate = 0.0;
  std::vector<double> syn_pass_at_k;
  double syn_rate = 0.0;
  // Fraction of samples whose candidate passes the semantic linter with no
  // Error-severity findings (vlog::lint_ok) — same entry point as `vsd
  // serve --check lint`.  Always <= syn_rate's sample-level pass share:
  // lint requires a parse plus clean symbol/driver resolution.
  double lint_rate = 0.0;
  // Fraction whose candidate also elaborates and passes the hierarchical
  // dataflow passes with no Error-severity L2xx finding (vlog::elab_ok) —
  // same entry point as `vsd serve --check elab`.
  double elab_rate = 0.0;
};

BenchScores evaluate_quality(const TrainedSystem& sys,
                             const std::vector<BenchProblem>& problems,
                             const QualityOptions& opts);

// --- speed (Table II, Fig. 1) ------------------------------------------------

struct SpeedOptions {
  int n_prompts = 60;           // paper uses 575; scaled via env knob
  int max_new_tokens = 220;
  float sampling_temperature = 0.8f;  // paper: greedy + T=0.8 per prompt
  std::uint64_t seed = 7;
};

struct SpeedRow {
  double tokens_per_sec_model = 0.0;  // serving-latency model (headline)
  double tokens_per_sec_wall = 0.0;   // raw CPU wall clock
  double mean_accepted = 0.0;         // tokens committed per decode step
  double total_tokens = 0.0;
  double total_steps = 0.0;
};

/// Runs the Eq. 3 speed measurement over `prompts` (greedy + sampling per
/// prompt).  `t_step_seconds` is the calibrated one-token step latency.
SpeedRow evaluate_speed(const TrainedSystem& sys,
                        const std::vector<std::string>& prompts,
                        const SpeedOptions& opts, double t_step_seconds);

/// Eq. 4 speedup helper.
inline double speedup(const SpeedRow& method, const SpeedRow& ntp_baseline) {
  return ntp_baseline.tokens_per_sec_model > 0.0
             ? method.tokens_per_sec_model / ntp_baseline.tokens_per_sec_model
             : 0.0;
}

/// Reads an integer scale knob from the environment (VSD_* variables let
/// the bench binaries run anywhere from smoke-test to paper-scale).
int env_int(const char* name, int fallback);
double env_double(const char* name, double fallback);

}  // namespace vsd::eval
