// Evaluation metrics: pass@k (paper Eq. 5, from VerilogEval) and
// Pass Rate (Eq. 6).
#pragma once

#include <vector>

#include "common/error.hpp"

namespace vsd::eval {

/// Unbiased pass@k estimator for one prompt: 1 - C(n-c, k) / C(n, k),
/// where n samples were drawn and c passed.
double pass_at_k(int n, int c, int k);

/// Mean pass@k across prompts given per-prompt (n, c).
double mean_pass_at_k(const std::vector<std::pair<int, int>>& n_and_c, int k);

/// Eq. 6: fraction of benchmark prompts with at least one passing sample.
double pass_rate(const std::vector<std::pair<int, int>>& n_and_c);

}  // namespace vsd::eval
