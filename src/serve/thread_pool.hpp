// serve::ThreadPool — thin alias for the shared vsd::ThreadPool.
//
// The pool implementation moved to common/thread_pool.hpp so the nn
// compute-kernel layer can parallelize GEMMs without linking the serving
// layer (nn sits below serve in the layer map).  Serving code keeps its
// historical serve::ThreadPool spelling through this alias.
#pragma once

#include "common/thread_pool.hpp"

namespace vsd::serve {

using vsd::ThreadPool;

}  // namespace vsd::serve
