// Minimal JSON emission helpers shared by `vsd serve` and the benches'
// --json output.  Writing only — the repo has no JSON consumer in-tree;
// files land in the perf ledger (BENCH_*.json) or downstream tooling.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace vsd::serve {

namespace detail {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if s[i] does
/// not begin one.  Rejects lone continuations, truncation, overlong
/// encodings (0xC0/0xC1, 0xE0 0x80-0x9F, 0xF0 0x80-0x8F), UTF-16
/// surrogates (0xED 0xA0-0xBF), and code points above U+10FFFF.
inline std::size_t utf8_len(std::string_view s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char b0 = byte(i);
  std::size_t need = 0;
  if ((b0 & 0xE0) == 0xC0) need = 1;
  else if ((b0 & 0xF0) == 0xE0) need = 2;
  else if ((b0 & 0xF8) == 0xF0) need = 3;
  else return 0;
  if (b0 == 0xC0 || b0 == 0xC1 || b0 > 0xF4) return 0;
  if (i + need >= s.size()) return 0;  // truncated at end of string
  for (std::size_t k = 1; k <= need; ++k) {
    if ((byte(i + k) & 0xC0) != 0x80) return 0;
  }
  const unsigned char b1 = byte(i + 1);
  if (b0 == 0xE0 && b1 < 0xA0) return 0;
  if (b0 == 0xED && b1 >= 0xA0) return 0;
  if (b0 == 0xF0 && b1 < 0x90) return 0;
  if (b0 == 0xF4 && b1 > 0x8F) return 0;
  return need + 1;
}

}  // namespace detail

/// Escapes `s` for use inside a double-quoted JSON string.  Valid UTF-8
/// sequences pass through untouched; lone high bytes (the byte-level
/// tokenizer can emit them as single-byte tokens) are escaped as \u00XX
/// so the output line stays valid JSON.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else if (u < 0x80) {
          out += c;
        } else if (const std::size_t n = detail::utf8_len(s, i); n > 0) {
          out.append(s.substr(i, n));
          i += n - 1;
        } else {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        }
      }
    }
  }
  return out;
}

}  // namespace vsd::serve
