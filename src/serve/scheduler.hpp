// serve::Scheduler — continuous batched decoding (the vLLM-style serving
// loop, scaled to this codebase).  The scheduler keeps up to `batch`
// spec::DecodeSessions in flight; every tick it advances each live session
// one speculative step (the steps fan out across a ThreadPool), admits
// queued requests the moment a slot frees up, and completes each request
// independently — there is no barrier on the slowest prompt.  Each slot
// owns one nn::InferSession whose KV-cache allocations are reset and
// reused across the requests it hosts.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "nn/kernel_dispatch.hpp"
#include "nn/model.hpp"
#include "serve/request_queue.hpp"
#include "spec/decode.hpp"

namespace vsd::obs {
class TraceWriter;
}  // namespace vsd::obs

namespace vsd::serve {

class SessionCache;

/// Result of one post-acceptance check stage (e.g. `--check lint`) over one
/// completed request.  `diagnostics_json` is a JSON array literal ready to
/// splice into the request's JSON-lines result.
struct CheckOutcome {
  std::string stage;  // filled in by the scheduler from the stage's name
  bool pass = true;
  int errors = 0;
  int warnings = 0;
  int infos = 0;
  double wall_seconds = 0.0;
  std::string diagnostics_json = "[]";
};

/// A check stage body: runs on a pool worker after a request's tokens are
/// final, so it must not touch scheduler state.  Decoding is NOT gated on
/// any stage — token output is bit-identical with and without checks.
using CheckFn =
    std::function<CheckOutcome(const Request&, const spec::DecodeResult&)>;

/// A named check stage.  `name` derives the stage's metric names
/// (`serve.check.<name>_s`, `.pass`, `.fail`) and its `check:<name>` trace
/// span.  serve/check_stage.hpp is the registry of built-in stages.
struct CheckStage {
  std::string name;
  CheckFn fn;
};

/// Every stage's outcome for one request, in the configured stage order.
/// All stages always run (a failing stage does not short-circuit the rest),
/// so the report shape is fixed per run.
struct CheckReport {
  std::vector<CheckOutcome> stages;

  bool pass() const {
    for (const CheckOutcome& s : stages) {
      if (!s.pass) return false;
    }
    return true;
  }
  double total_seconds() const {
    double t = 0.0;
    for (const CheckOutcome& s : stages) t += s.wall_seconds;
    return t;
  }
  const CheckOutcome* find(const std::string& name) const {
    for (const CheckOutcome& s : stages) {
      if (s.stage == name) return &s;
    }
    return nullptr;
  }
};

struct SchedulerOptions {
  int workers = 1;  // threads advancing sessions each tick
  int batch = 1;    // max in-flight sessions (continuous-batch width)
  // Fused batched forward (on by default): each tick, the per-session
  // propose stages run on the pool, then the scheduler gathers every
  // pending ScoreRequest's hidden rows and runs ONE stacked
  // [B, D] x [D, V] base-LM pass (plus one per draft head) instead of B
  // per-session matmuls, scattering the logits rows back before
  // acceptance.  The scoring matmuls are row-independent, so results are
  // token-identical to the serial path; fusing just amortises the weight
  // streaming across the batch for a single-core wall-clock win.  false
  // falls back to fully per-session steps (`vsd serve --no-fuse`).
  bool fuse = true;
  // Optional prompt-prefix KV cache (see serve/session_cache.hpp): slot
  // admission adopts the longest cached prefix of each prompt — O(pages)
  // refcount bumps into the shared arena — so the prefill feeds only the
  // suffix, and each prompt's own prefill is captured (share_prefix)
  // after its first step.  Decoder-only models; results stay
  // token-identical to the uncached path.  nullptr disables reuse.
  SessionCache* cache = nullptr;
  // Paged KV arena geometry (`vsd serve --kv-page / --kv-pages-max`):
  // every slot's InferSession and every cache entry share one arena of
  // `kv_page`-position pages.  kv_pages_max == 0 derives a cap from the
  // batch width and warm-cache capacity.
  int kv_page = 16;
  int kv_pages_max = 0;
  // A pre-built arena to serve from (benchmarks reuse one across runs so
  // warm cache entries stay same-arena and adopt by reference).  Null =>
  // the scheduler builds its own from kv_page / kv_pages_max.
  std::shared_ptr<nn::KvArena> kv_arena = nullptr;
  // Observability (both optional, off by default — zero overhead when
  // unset beyond a branch per record site).  `metrics` is the registry
  // the run's counters/gauges/histograms land in; nullptr gives the run a
  // private scheduler-local registry so ServeStats still carries latency
  // quantiles.  `trace` streams per-tick phase spans, per-request
  // lifecycle spans, and pressure counters into a Chrome-trace buffer
  // (`vsd serve --trace FILE`).
  obs::Registry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
  // Post-acceptance check stages (`vsd serve --check lint,elab`).  When
  // non-empty, each completed request runs every stage in order on the
  // shared pool while decoding continues; its slot frees immediately, and
  // the completion callback is invoked once the whole report lands (FIFO in
  // check-submission order).  Each stage's name derives its metric names —
  // `serve.check.<name>_s` histogram, `serve.check.<name>.pass` / `.fail`
  // counters — and a `check:<name>` span per request in the trace timeline;
  // `serve.check.total_s` records the per-request total across stages.
  std::vector<CheckStage> checks{};
  // Kernel policy for the run (`vsd serve --kernel exact|fast`), asserted
  // process-wide at run start so every tick's GEMMs — fused and per-slot
  // alike — execute the same tier; run() restores the ambient mode on
  // return.  The mode is process-global state, so at most one run() may be
  // in flight per process at a time — two concurrent schedulers would flip
  // each other's tier mid-tick.  Defaults to the ambient mode at options
  // construction ($VSD_KERNEL or exact); a later nn::set_kernel_mode() does
  // NOT affect an already-constructed options struct — set this field.
  // `exact` keeps T=0 token parity for every dispatched ISA; `fast` opts
  // the scoring passes into FMA/reassociated SIMD and the grouped-int8
  // logit weights (nn/quant.hpp), and the summary's `kernel` block reports
  // the compression stats alongside the dispatched ISA.
  nn::KernelMode kernel = nn::kernel_mode();
};

/// Serving accounting.  `ticks` counts scheduler iterations: under the
/// repo's serving-latency model (see eval/harness.hpp) one tick costs one
/// shared batched base-model forward, which is what the paper's
/// memory-bandwidth-bound GPU regime measures.
/// One check stage's accounting for a run.
struct CheckStageStats {
  std::string name;
  int pass = 0;
  int fail = 0;
  obs::HistogramStats latency{};
};

struct ServeStats {
  long ticks = 0;
  int completed = 0;
  int max_in_flight = 0;
  double wall_seconds = 0.0;
  long prefill_positions = 0;  // decoder positions spent priming prompts
  long cached_positions = 0;   // prompt positions restored from the cache
  long fused_rows = 0;         // hidden rows scored through the fused pass
  long fused_passes = 0;       // stacked score passes run (0 when unfused)
  nn::KvArenaStats kv{};       // serving arena accounting at end of run
  // Latency distributions for the run (always populated, even without an
  // external registry): end-to-end request latency (enqueue -> complete),
  // queue wait (enqueue -> admit), time to first token (admit -> first
  // accepted token), and per-tick duration, plus mean batch occupancy
  // (live sessions per tick).
  obs::HistogramStats latency{};
  obs::HistogramStats queue_wait{};
  obs::HistogramStats ttft{};
  obs::HistogramStats tick{};
  double occupancy_mean = 0.0;
  // Check-stage accounting (all zero/empty when no checks are installed).
  // `checks_pass`/`checks_fail` count whole requests (a request passes when
  // every stage passed); `check` is the per-request total across stages;
  // `check_stages` carries each stage's own counts and latency quantiles,
  // in the configured stage order.
  int checks_pass = 0;
  int checks_fail = 0;
  obs::HistogramStats check{};
  std::vector<CheckStageStats> check_stages;
  // Kernel tier the run executed: the configured mode, the ISA the probe
  // dispatched, and (fast mode only) the compressed-weight accounting.
  nn::KernelMode kernel = nn::KernelMode::Exact;
  nn::KernelIsa isa = nn::KernelIsa::Scalar;
  nn::QuantStats quant{};
};

class Scheduler {
 public:
  /// Called on the scheduler thread for each finished request, in
  /// completion order (not admission order).
  using Completion = std::function<void(const Request&, spec::DecodeResult)>;
  /// Completion that also receives the check stages' report — nullptr
  /// when no checks are installed (SchedulerOptions::checks is empty).
  using CheckedCompletion = std::function<void(
      const Request&, spec::DecodeResult, const CheckReport*)>;

  Scheduler(const nn::TransformerModel& model, RequestQueue& queue,
            SchedulerOptions opts);

  /// Runs until the queue is closed and fully drained.  A decode error in
  /// any request propagates out as vsd::Error.
  ServeStats run(const Completion& on_complete);
  ServeStats run(const CheckedCompletion& on_complete);

 private:
  const nn::TransformerModel& model_;
  RequestQueue& queue_;
  SchedulerOptions opts_;
};

}  // namespace vsd::serve
