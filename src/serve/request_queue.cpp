#include "serve/request_queue.hpp"

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vsd::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  check(capacity >= 1, "RequestQueue capacity must be >= 1");
}

void RequestQueue::attach_metrics(obs::Registry* reg) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (reg == nullptr) {
    depth_ = nullptr;
    wait_ = nullptr;
    return;
  }
  depth_ = &reg->gauge("serve.queue.depth");
  wait_ = &reg->histogram("serve.queue.wait_s");
  depth_->set(static_cast<double>(items_.size()));
}

void RequestQueue::sample_depth_locked() {
  if (depth_ != nullptr) depth_->set(static_cast<double>(items_.size()));
}

void RequestQueue::record_wait(const Request& r, obs::Histogram* wait) const {
  if (wait == nullptr) return;
  if (r.enqueued_at == std::chrono::steady_clock::time_point{}) return;
  wait->record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             r.enqueued_at)
                   .count());
}

bool RequestQueue::push(Request r) {
  r.enqueued_at = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(r));
  sample_depth_locked();
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::try_push(Request&& r) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    r.enqueued_at = std::chrono::steady_clock::now();
    items_.push_back(std::move(r));
    sample_depth_locked();
  }
  not_empty_.notify_one();
  return true;
}

std::optional<Request> RequestQueue::pop() {
  obs::Histogram* wait = nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  Request r = std::move(items_.front());
  items_.pop_front();
  sample_depth_locked();
  wait = wait_;
  lock.unlock();
  not_full_.notify_one();
  record_wait(r, wait);  // outside the lock: record is lock-free but not cheap
  return r;
}

std::vector<Request> RequestQueue::pop_burst(std::size_t max_n) {
  std::vector<Request> out;
  if (max_n == 0) return out;
  obs::Histogram* wait = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    while (out.size() < max_n && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    sample_depth_locked();
    wait = wait_;
  }
  if (!out.empty()) not_full_.notify_all();
  for (const Request& r : out) record_wait(r, wait);
  return out;
}

std::vector<Request> RequestQueue::try_pop_burst(std::size_t max_n) {
  std::vector<Request> out;
  if (max_n == 0) return out;
  obs::Histogram* wait = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    while (out.size() < max_n && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    sample_depth_locked();
    wait = wait_;
  }
  if (!out.empty()) not_full_.notify_all();
  for (const Request& r : out) record_wait(r, wait);
  return out;
}

std::optional<Request> RequestQueue::try_pop() {
  std::optional<Request> r;
  obs::Histogram* wait = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    r = std::move(items_.front());
    items_.pop_front();
    sample_depth_locked();
    wait = wait_;
  }
  not_full_.notify_one();
  record_wait(*r, wait);
  return r;
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace vsd::serve
