#include "serve/request_queue.hpp"

#include "common/error.hpp"

namespace vsd::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  check(capacity >= 1, "RequestQueue capacity must be >= 1");
}

bool RequestQueue::push(Request r) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(r));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::try_push(Request&& r) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(r));
  }
  not_empty_.notify_one();
  return true;
}

std::optional<Request> RequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // closed and drained
  Request r = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return r;
}

std::vector<Request> RequestQueue::pop_burst(std::size_t max_n) {
  std::vector<Request> out;
  if (max_n == 0) return out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    while (out.size() < max_n && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
  }
  if (!out.empty()) not_full_.notify_all();
  return out;
}

std::vector<Request> RequestQueue::try_pop_burst(std::size_t max_n) {
  std::vector<Request> out;
  if (max_n == 0) return out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    while (out.size() < max_n && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
  }
  if (!out.empty()) not_full_.notify_all();
  return out;
}

std::optional<Request> RequestQueue::try_pop() {
  std::optional<Request> r;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    r = std::move(items_.front());
    items_.pop_front();
  }
  not_full_.notify_one();
  return r;
}

void RequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace vsd::serve
