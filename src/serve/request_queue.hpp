// serve::RequestQueue — a bounded MPMC queue of decode requests, the
// admission edge of the serving subsystem.  Producers feel backpressure
// (push blocks while the queue is full); close() lets consumers drain the
// remaining items and then observe end-of-stream as an empty pop.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "spec/decode.hpp"

namespace vsd::obs {
class Gauge;
class Histogram;
class Registry;
}  // namespace vsd::obs

namespace vsd::serve {

/// One decode request as accepted by the service: tokenized prompt plus
/// the per-request decoding configuration and RNG stream.
struct Request {
  std::uint64_t id = 0;
  std::string prompt;           // original text, echoed in service output
  std::vector<int> prompt_ids;  // tokens fed to the decoder
  spec::DecodeConfig config;
  std::uint64_t seed = 0;       // per-request RNG stream (sampling only)
  // Stamped by the queue on push: when this request entered admission, so
  // the scheduler can attribute queue wait and end-to-end latency.
  std::chrono::steady_clock::time_point enqueued_at{};
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Blocks while the queue is full; returns false (request dropped) once
  /// the queue is closed.
  bool push(Request r);
  /// Non-blocking push; on failure (full or closed) `r` is NOT moved from,
  /// so the caller keeps the intact request — no half-moved state.
  bool try_push(Request&& r);

  /// Blocks while the queue is open and empty; returns nullopt only after
  /// close() once every queued request has been drained.
  std::optional<Request> pop();
  /// Non-blocking pop; nullopt when nothing is queued right now.
  std::optional<Request> try_pop();

  /// Blocking burst pop: waits like pop(), then drains up to `max_n`
  /// requests under one lock — a burst that accumulated while the consumer
  /// slept is handed over atomically, so an idle scheduler admits it into
  /// one tick instead of trickling it in.  Empty only after close() once
  /// everything has been drained (or when max_n == 0).
  std::vector<Request> pop_burst(std::size_t max_n);
  /// Non-blocking burst pop: up to `max_n` immediately-available requests.
  std::vector<Request> try_pop_burst(std::size_t max_n);

  /// Ends admission: subsequent pushes fail, consumers drain then stop.
  void close();
  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Wires the queue's observability into `reg`: admission depth as the
  /// `serve.queue.depth` gauge (sampled on every push/pop) and time spent
  /// queued as the `serve.queue.wait_s` histogram (recorded as each
  /// request is popped).  Call before producers/consumers start; nullptr
  /// detaches.
  void attach_metrics(obs::Registry* reg);

 private:
  void sample_depth_locked();
  void record_wait(const Request& r, obs::Histogram* wait) const;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Request> items_;
  bool closed_ = false;
  obs::Gauge* depth_ = nullptr;      // guarded by mu_
  obs::Histogram* wait_ = nullptr;   // guarded by mu_
};

}  // namespace vsd::serve
