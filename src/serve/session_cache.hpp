// serve::SessionCache — the prompt-prefix KV cache behind the scheduler:
// a radix tree over token prefixes whose terminals hold refcounted
// nn::KvPrefix page runs into the model's KvArena.
//
// Admission looks up the longest cached prefix of an incoming prompt and
// adopts it into the slot's InferSession (O(pages) refcount bumps — no
// row copies), so the prefill feeds only the suffix; after a request's
// first step the scheduler captures its prompt prefill (share_prefix,
// again O(pages)) and inserts it for future requests.  Speed-bench
// prompts all share the Alpaca preamble, which is exactly the repeated
// structure the tree compresses — one stored edge per shared token run,
// one arena page per shared KV block.
//
// The tree replaces the old longest-match LRU scan: lookup walks edges
// in O(prompt length) instead of O(entries * prompt length), and any
// terminal below the divergence point proves coverage of every matched
// token.  Entries still age on one LRU list (a hit bumps the matched
// entry; a covered hit bumps the covering entry, so full coverage cannot
// silently age out while the scheduler keeps skipping re-capture).
//
// Bounded by an entry capacity and a byte budget.  Bytes are accounted
// at page granularity and pages shared between entries (or with live
// sessions) count ONCE — the budget tracks distinct arena pages held,
// which is what the arena actually spends.  Least-recently-used entries
// evict first until both bounds hold; evicting an entry releases page
// references, freeing only the pages no other holder still references.
// Hit/miss/insertion/eviction counters feed the serve summary.  All
// operations are thread-safe; lookup hands out a shared_ptr so an adopt
// can proceed even if the entry is evicted concurrently (the pages stay
// referenced until the last holder lets go).
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "nn/kv_arena.hpp"

namespace vsd::obs {
class Counter;
class Histogram;
class Registry;
}  // namespace vsd::obs

namespace vsd::serve {

struct SessionCacheOptions {
  std::size_t capacity = 16;             // max warm entries
  std::size_t max_bytes = 64ull << 20;   // distinct-page byte budget
  int min_prefix = 4;                    // shortest prefix worth reusing
};

struct SessionCacheStats {
  long hits = 0;
  long misses = 0;
  long insertions = 0;
  long evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;  // distinct pages held + keys + encoder contexts
};

class SessionCache {
 public:
  /// A lookup result: `len` prompt tokens are covered by `prefix` (adopt
  /// with `sess.adopt_prefix(*prefix, len)`).  len == 0 means a miss.
  /// `covered` reports that some entry already spans the entire prompt,
  /// so re-capturing this prompt's prefill would add no coverage.
  struct Match {
    int len = 0;
    bool covered = false;
    std::shared_ptr<const nn::KvPrefix> prefix;
  };

  explicit SessionCache(SessionCacheOptions opts = {});
  ~SessionCache();

  /// Longest cached token prefix of `prompt_ids`, clamped one short of the
  /// full prompt (the decoder still needs a non-empty suffix to compute
  /// the next-token hidden state).  Matches shorter than min_prefix count
  /// as misses; a hit — covered or not — bumps the serving entry to
  /// most-recently-used.
  Match lookup(std::span<const int> prompt_ids);

  /// Stores `prefix` (the prefill of exactly `prefix_ids`) keyed by those
  /// tokens.  An exact-key entry is refreshed in place; least-recently-used
  /// entries evict until capacity and the byte budget hold.  Prefixes
  /// shorter than min_prefix are not worth a slot and are dropped.
  void insert(std::span<const int> prefix_ids, nn::KvPrefix prefix);

  SessionCacheStats stats() const;
  void clear();
  const SessionCacheOptions& options() const { return opts_; }

  /// Wires the cache's observability into `reg`: lookup latency as the
  /// `serve.cache.lookup_s` histogram plus `serve.cache.hits` /
  /// `serve.cache.misses` counters.  nullptr detaches.
  void attach_metrics(obs::Registry* reg);

 private:
  struct Node;
  struct Entry {
    Node* node = nullptr;
    std::size_t key_len = 0;
    std::shared_ptr<const nn::KvPrefix> prefix;
  };
  using EntryList = std::list<Entry>;  // most-recently-used first

  /// Compressed trie node: `edge` is the token run from the parent.  Every
  /// node except the root has a terminal somewhere in its subtree (nodes
  /// that lose that property are pruned or merged away on removal).
  struct Node {
    Node* parent = nullptr;
    std::vector<int> edge;
    std::vector<std::unique_ptr<Node>> children;
    bool has_term = false;
    EntryList::iterator term;
  };

  Match lookup_locked(std::span<const int> prompt_ids);
  Node* find_child(Node* n, int token) const;
  EntryList::iterator subtree_terminal(Node* n);
  void account_add_locked(const Entry& e);
  void account_drop_locked(const Entry& e);
  void remove_entry_locked(EntryList::iterator it);
  void evict_to_budget_locked();

  const SessionCacheOptions opts_;
  mutable std::mutex mu_;
  Node root_;
  EntryList lru_;
  // Distinct-page multiplicity across entries, keyed by (arena, page id):
  // a page enters the byte total when its first entry arrives and leaves
  // when its last entry goes.
  std::map<std::pair<const nn::KvArena*, int>, int> page_refs_;
  SessionCacheStats stats_;
  obs::Histogram* lookup_s_ = nullptr;  // guarded by mu_
  obs::Counter* hits_ = nullptr;        // guarded by mu_
  obs::Counter* misses_ = nullptr;      // guarded by mu_
};

}  // namespace vsd::serve
