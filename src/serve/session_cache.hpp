// serve::SessionCache — the prompt-prefix KV cache behind the scheduler:
// an LRU of warm sessions, each entry mapping a token prefix (a previously
// prefilled prompt) to a detachable nn::KvSnapshot of its KV rows.
//
// Admission looks up the longest cached prefix of an incoming prompt and
// restores it into the slot's InferSession, so the prefill feeds only the
// suffix; after a request's first step the scheduler captures its prompt
// prefill and inserts it for future requests.  Speed-bench prompts all
// share the Alpaca preamble, which is exactly the repeated structure this
// dedups — the same shared-prefix compression idea the ACAS-Xu BDD tables
// use, applied to KV rows.
//
// Bounded by an entry capacity and a byte budget (least-recently-used
// entries evict first); hit/miss/insertion/eviction counters feed the
// serve summary.  All operations are thread-safe; lookup hands out a
// shared_ptr so a restore can proceed even if the entry is evicted
// concurrently.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "nn/model.hpp"

namespace vsd::serve {

struct SessionCacheOptions {
  std::size_t capacity = 16;             // max warm entries
  std::size_t max_bytes = 64ull << 20;   // KV byte budget across entries
  int min_prefix = 4;                    // shortest prefix worth reusing
};

struct SessionCacheStats {
  long hits = 0;
  long misses = 0;
  long insertions = 0;
  long evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

class SessionCache {
 public:
  /// A lookup result: `len` prompt tokens are covered by `snap` (restore
  /// with `sess.restore(*snap, len)`).  len == 0 means a miss.  `covered`
  /// reports that some entry already spans the entire prompt, so
  /// re-capturing this prompt's prefill would add no coverage.
  struct Match {
    int len = 0;
    bool covered = false;
    std::shared_ptr<const nn::KvSnapshot> snap;
  };

  explicit SessionCache(SessionCacheOptions opts = {});

  /// Longest cached token prefix of `prompt_ids`, clamped one short of the
  /// full prompt (the decoder still needs a non-empty suffix to compute
  /// the next-token hidden state).  Matches shorter than min_prefix count
  /// as misses; a hit bumps the entry to most-recently-used.
  Match lookup(std::span<const int> prompt_ids);

  /// Stores `snap` (the prefill of exactly `prefix_ids`) keyed by those
  /// tokens.  An exact-key entry is refreshed in place; least-recently-used
  /// entries evict until capacity and the byte budget hold.  Prefixes
  /// shorter than min_prefix are not worth a slot and are dropped.
  void insert(std::span<const int> prefix_ids, nn::KvSnapshot snap);

  SessionCacheStats stats() const;
  void clear();
  const SessionCacheOptions& options() const { return opts_; }

 private:
  struct Entry {
    std::vector<int> key;
    std::shared_ptr<const nn::KvSnapshot> snap;
    std::size_t bytes = 0;
  };

  void evict_to_budget_locked();

  const SessionCacheOptions opts_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // most-recently-used first
  SessionCacheStats stats_;
};

}  // namespace vsd::serve
