// Registry of named post-acceptance check stages for the serving loop
// (`vsd serve --check lint,elab`).  A stage maps a finished request's
// decoded text to a CheckOutcome on a pool worker; the scheduler composes
// any subset in order (serve/scheduler.hpp's SchedulerOptions::checks) and
// never gates decoding on them, so tokens are bit-identical with any
// stage list.
//
// Built-in stages:
//   lint  — parse + flat semantic lint passes (vlog/lint.hpp, VSD-L0xx/L1xx)
//   elab  — parse + elaborate + hierarchical dataflow passes
//           (vlog/dataflow.hpp, VSD-L2xx: comb loops, CDC, port contracts)
//
// Both fail a request on Error-severity findings only; warnings ride along
// in the diagnostics payload.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/scheduler.hpp"

namespace vsd::serve {

/// Decodes a finished request's token ids back to source text.  Supplied
/// by the host, which owns the tokenizer; must be callable concurrently
/// from pool workers.
using DecodeTextFn = std::function<std::string(const spec::DecodeResult&)>;

/// Names of every registered stage, in canonical composition order.  Usage
/// errors and `--check` help text derive from this list, so adding a stage
/// here is the whole registration.
std::vector<std::string> check_stage_names();

/// Builds the named stage, or nullopt for an unknown name.
std::optional<CheckStage> make_check_stage(const std::string& name,
                                           DecodeTextFn decode);

/// Parses a comma-separated stage list ("lint" or "lint,elab") into built
/// stages.  On an unknown, duplicate, or empty name, returns an empty
/// vector and fills `error` with a message naming the offender and the
/// registered stages.
std::vector<CheckStage> parse_check_stages(const std::string& list,
                                           const DecodeTextFn& decode,
                                           std::string& error);

}  // namespace vsd::serve
