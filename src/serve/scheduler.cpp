#include "serve/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/trace.hpp"
#include "nn/parallel.hpp"
#include "serve/session_cache.hpp"
#include "serve/thread_pool.hpp"

namespace vsd::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Detachable copy of rows [off, off+n) of `t` — the scatter half of the
/// fused scoring pass.
nn::Tensor copy_rows(const nn::Tensor& t, int off, int n) {
  nn::Tensor out(n, t.cols());
  std::memcpy(out.data(), t.row(off), sizeof(float) * out.size());
  return out;
}

}  // namespace

Scheduler::Scheduler(const nn::TransformerModel& model, RequestQueue& queue,
                     SchedulerOptions opts)
    : model_(model), queue_(queue), opts_(opts) {}

ServeStats Scheduler::run(const Completion& on_complete) {
  return run(CheckedCompletion(
      [&on_complete](const Request& req, spec::DecodeResult result,
                     const CheckReport* /*report*/) {
        on_complete(req, std::move(result));
      }));
}

ServeStats Scheduler::run(const CheckedCompletion& on_complete) {
  const int batch = std::max(1, opts_.batch);
  // Assert the run's kernel policy before any forward pass: the mode is
  // process-global (like the compute pool), so every tick's GEMMs — the
  // fused stacked pass and per-slot stages alike — execute one tier.
  // Because it is process-global, concurrent runs in one process are NOT
  // supported (see SchedulerOptions::kernel); the ambient mode is restored
  // when run() returns so a sequential caller (e.g. an eval baseline pass
  // after a serve run) keeps its own tier.
  struct ModeGuard {
    nn::KernelMode prior = nn::kernel_mode();
    ~ModeGuard() { nn::set_kernel_mode(prior); }
  } mode_guard;
  nn::set_kernel_mode(opts_.kernel);

  struct Slot {
    std::unique_ptr<nn::InferSession> sess;  // KV allocations, reused
    std::unique_ptr<spec::DecodeSession> dec;
    Request req;
    bool capture_pending = false;  // snapshot the prompt prefill after step 1
    Clock::time_point admitted_at{};  // when this request entered a slot
    bool first_token_seen = false;    // TTFT recorded for the current req
  };
  // The cache only helps decoder-only models: enc-dec prompts feed the
  // encoder, not the KV cache the prefixes cover.
  SessionCache* const cache =
      model_.config().encoder_decoder ? nullptr : opts_.cache;

  // One paged KV arena shared by every slot's session and every warm
  // cache entry: prefix adoption and capture become O(pages) refcount
  // bumps on its pages instead of O(bytes) row copies.
  std::shared_ptr<nn::KvArena> arena = opts_.kv_arena;
  if (!arena) {
    const nn::ModelConfig& cfg = model_.config();
    nn::KvArenaOptions ao;
    ao.page = std::max(1, opts_.kv_page);
    if (opts_.kv_pages_max > 0) {
      ao.max_pages = opts_.kv_pages_max;
    } else {
      // Room for the in-flight batch, a full warm cache, and some
      // copy-on-write divergence headroom.
      const int per_seq = (cfg.max_seq + ao.page - 1) / ao.page;
      const long warm =
          cache != nullptr ? static_cast<long>(cache->options().capacity) : 0;
      ao.max_pages = static_cast<int>(
          std::max<long>(64, static_cast<long>(batch) + warm + 8) * per_seq);
    }
    arena = std::make_shared<nn::KvArena>(cfg.n_layers, cfg.d_model,
                                          cfg.max_seq, ao);
  }
  // Observability.  An external registry (vsd serve passes the global
  // one) collects the run's metrics; without one the run still fills a
  // private registry so ServeStats carries latency quantiles.  The
  // registry outlives the pool/slots below, so recording from workers
  // during unwind stays safe.
  obs::Registry local_registry;
  obs::Registry& reg =
      opts_.metrics != nullptr ? *opts_.metrics : local_registry;
  obs::TraceWriter* const trace = opts_.trace;
  queue_.attach_metrics(&reg);
  obs::Histogram& h_latency = reg.histogram("serve.request.latency_s");
  obs::Histogram& h_ttft = reg.histogram("serve.request.ttft_s");
  obs::Histogram& h_wait = reg.histogram("serve.queue.wait_s");
  obs::Histogram& h_tick = reg.histogram("serve.tick_s");
  obs::Histogram& h_occ = reg.histogram("serve.tick.occupancy");
  obs::Counter& c_completed = reg.counter("serve.requests.completed");
  obs::Gauge& g_inflight = reg.gauge("serve.in_flight");
  obs::Gauge& g_kv_used = reg.gauge("serve.kv.pages_in_use");
  obs::Gauge& g_kv_free = reg.gauge("serve.kv.pages_free");
  obs::Gauge& g_kv_cow = reg.gauge("serve.kv.cow_clones");
  // Check-stage instruments, created once so pool workers only record.
  // Declared before the pool (workers hold a pointer to the vector).
  const bool checked = !opts_.checks.empty();
  struct StageInstruments {
    obs::Histogram* latency = nullptr;
    obs::Counter* pass = nullptr;
    obs::Counter* fail = nullptr;
  };
  std::vector<StageInstruments> stage_obs;
  for (const CheckStage& cs : opts_.checks) {
    stage_obs.push_back({&reg.histogram("serve.check." + cs.name + "_s"),
                         &reg.counter("serve.check." + cs.name + ".pass"),
                         &reg.counter("serve.check." + cs.name + ".fail")});
  }
  obs::Histogram* const h_check =
      checked ? &reg.histogram("serve.check.total_s") : nullptr;
  if (trace != nullptr) trace->name_this_thread("scheduler");

  // Declared before the pool: if a decode error unwinds this frame, the
  // pool must join its workers (which may still be mid-step on other
  // slots' sessions) before the slots are destroyed.  worker_seq likewise
  // (the init hooks run on pool threads).
  std::atomic<int> worker_seq{0};
  std::function<void()> worker_init;
  if (trace != nullptr) {
    worker_init = [trace, &worker_seq] {
      trace->name_this_thread(
          "pool-worker-" + std::to_string(worker_seq.fetch_add(1)));
    };
  }
  // Completed requests waiting on their check stage.  Declared before the
  // pool (like the slots): workers hold pointers into these entries, so on
  // unwind the pool must join before the deque dies.  End-insertion keeps
  // element addresses stable while workers read them.
  struct PendingCheck {
    Request req;
    spec::DecodeResult result;
    std::future<CheckReport> fut;
  };
  std::deque<PendingCheck> checks;
  std::vector<Slot> slots(static_cast<std::size_t>(batch));
  ThreadPool pool(std::max(1, opts_.workers), worker_init);

  ServeStats stats;
  for (const CheckStage& cs : opts_.checks) {
    stats.check_stages.push_back({cs.name, 0, 0, {}});
  }
  const auto start = Clock::now();
  int live = 0;

  const auto admit = [&](Slot& slot, Request&& r) {
    if (!slot.sess) slot.sess = std::make_unique<nn::InferSession>(model_, arena);
    slot.req = std::move(r);
    slot.admitted_at = Clock::now();
    slot.first_token_seen = false;
    if (trace != nullptr) {
      char args[64];
      std::snprintf(args, sizeof(args), "{\"prompt_tokens\":%zu}",
                    slot.req.prompt_ids.size());
      trace->async_begin("request", slot.req.id, args);
    }
    const bool cacheable = cache != nullptr && !slot.req.prompt_ids.empty();
    int prefix = 0;
    bool covered = false;
    if (cacheable) {
      const SessionCache::Match m = cache->lookup(slot.req.prompt_ids);
      covered = m.covered;
      if (m.len > 0) {
        slot.sess->adopt_prefix(*m.prefix, m.len);
        prefix = m.len;
      }
    }
    stats.cached_positions += prefix;
    // Re-capturing a prompt the cache already spans (repeat traffic)
    // would copy KV rows for zero new coverage — skip it.
    slot.capture_pending = cacheable && !covered;
    slot.dec = std::make_unique<spec::DecodeSession>(
        model_, *slot.sess, slot.req.prompt_ids, slot.req.config,
        Rng(slot.req.seed), prefix);
    ++live;
  };

  // TTFT: admit -> first committed token.  Checked after each tick (and
  // at completion, which can land in the same tick that produced the
  // token) — one tick is the scheduling grain, so that is also the
  // measurement grain.
  const auto note_first_token = [&](Slot& slot) {
    if (slot.first_token_seen || !slot.dec) return;
    if (slot.dec->result().ids.empty()) return;
    slot.first_token_seen = true;
    h_ttft.record(
        std::chrono::duration<double>(Clock::now() - slot.admitted_at).count());
    if (trace != nullptr) trace->async_instant("first_token", slot.req.id);
  };

  const auto complete_slot = [&](Slot& slot) {
    note_first_token(slot);
    stats.prefill_positions += slot.dec->result().prefill_positions;
    // End-to-end latency from the queue's enqueue stamp; requests that
    // bypassed the queue stamp (none today) fall back to admission time.
    // Latency covers decoding only — the check stage runs after the tokens
    // are final, so latency stays comparable with an unchecked run.
    const auto t0 = slot.req.enqueued_at == Clock::time_point{}
                        ? slot.admitted_at
                        : slot.req.enqueued_at;
    h_latency.record(std::chrono::duration<double>(Clock::now() - t0).count());
    c_completed.inc();
    if (!checked) {
      if (trace != nullptr) {
        char args[96];
        std::snprintf(args, sizeof(args), "{\"tokens\":%zu,\"steps\":%d}",
                      slot.dec->result().ids.size(), slot.dec->result().steps);
        trace->async_end("request", slot.req.id, args);
      }
      on_complete(slot.req, slot.dec->take_result(), nullptr);
    } else {
      // Hand the finished request to the check stages and free the slot
      // immediately — admission never waits on a check.  The request's
      // trace span stays open until the whole report lands (reap_checks).
      checks.push_back(PendingCheck{std::move(slot.req),
                                    slot.dec->take_result(), {}});
      PendingCheck& entry = checks.back();
      const std::vector<CheckStage>* const stages = &opts_.checks;
      const std::vector<StageInstruments>* const instruments = &stage_obs;
      const Request* req = &entry.req;
      const spec::DecodeResult* res = &entry.result;
      entry.fut = pool.submit(
          [stages, instruments, req, res, h_check, trace] {
            CheckReport report;
            report.stages.reserve(stages->size());
            for (std::size_t i = 0; i < stages->size(); ++i) {
              const CheckStage& cs = (*stages)[i];
              const std::string span_name = "check:" + cs.name;
              const obs::Span span(trace, span_name.c_str());
              const auto stage_start = Clock::now();
              CheckOutcome out = cs.fn(*req, *res);
              out.stage = cs.name;
              out.wall_seconds =
                  std::chrono::duration<double>(Clock::now() - stage_start)
                      .count();
              const StageInstruments& si = (*instruments)[i];
              si.latency->record(out.wall_seconds);
              (out.pass ? si.pass : si.fail)->inc();
              report.stages.push_back(std::move(out));
            }
            h_check->record(report.total_seconds());
            return report;
          });
    }
    slot.dec.reset();
    --live;
    ++stats.completed;
  };

  // Delivers finished checks (FIFO in check-submission order) to the
  // completion callback.  Non-blocking after each tick; blocking before the
  // scheduler would idle-wait on the queue and at the final drain, so every
  // result is delivered before the run can stall or end.
  const auto reap_checks = [&](bool block) {
    while (!checks.empty()) {
      PendingCheck& front = checks.front();
      if (!block && front.fut.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        break;
      }
      const CheckReport report = front.fut.get();  // rethrows check errors
      const bool all_pass = report.pass();
      (all_pass ? stats.checks_pass : stats.checks_fail) += 1;
      for (std::size_t i = 0;
           i < report.stages.size() && i < stats.check_stages.size(); ++i) {
        auto& ss = stats.check_stages[i];
        (report.stages[i].pass ? ss.pass : ss.fail) += 1;
      }
      if (trace != nullptr) {
        char args[96];
        std::snprintf(args, sizeof(args),
                      "{\"tokens\":%zu,\"check_pass\":%s}",
                      front.result.ids.size(), all_pass ? "true" : "false");
        trace->async_end("request", front.req.id, args);
      }
      on_complete(front.req, std::move(front.result), &report);
      checks.pop_front();
    }
  };

  // --- serial tick: every live session runs a whole step on the pool ----
  const auto tick_serial = [&] {
    std::vector<std::pair<Slot*, std::future<bool>>> inflight;
    inflight.reserve(static_cast<std::size_t>(live));
    for (Slot& slot : slots) {
      if (!slot.dec) continue;
      spec::DecodeSession* dec = slot.dec.get();
      if (slot.capture_pending) {
        // First step of a cacheable request: capture its prompt prefill on
        // the worker, sequenced right after the step (the prompt rows are
        // final once primed, and nothing else touches this slot's session
        // until the next tick) — share_prefix only bumps page refcounts,
        // so the capture costs O(pages), not a row copy.
        slot.capture_pending = false;
        nn::InferSession* sess = slot.sess.get();
        inflight.emplace_back(
            &slot, pool.submit([dec, sess, cache,
                                ids = slot.req.prompt_ids] {
              const bool more = dec->step();
              cache->insert(ids, sess->share_prefix(static_cast<int>(ids.size())));
              return more;
            }));
      } else {
        inflight.emplace_back(&slot, pool.submit([dec] { return dec->step(); }));
      }
    }
    // Requests finish independently, slots free immediately.
    for (auto& [slot, fut] : inflight) {
      if (fut.get()) continue;  // get() rethrows decode errors
      complete_slot(*slot);
    }
  };

  // --- fused tick: per-session propose stages on the pool, one stacked
  // [B, D] x [D, V] scoring pass per round on this thread ----------------
  // With a single worker there is no concurrency to buy, so the fused
  // rounds run their per-session stages inline instead of bouncing each
  // one through the pool (several hand-offs per tick, vs one for the
  // serial tick).
  const bool inline_stages = std::max(1, opts_.workers) == 1;

  // Runs one propose/resume stage per (slot, callable) pair — inline at
  // one worker, fanned across the pool otherwise — and partitions the
  // slots by whether they paused on a ScoreRequest or hit a step boundary.
  const auto run_stage = [&](auto& tasks, std::vector<Slot*>& pending,
                             std::vector<std::pair<Slot*, spec::StepState>>& finals) {
    if (inline_stages) {
      for (auto& [slot, fn] : tasks) {
        const spec::StepState st = fn();
        if (st == spec::StepState::NeedScores) pending.push_back(slot);
        else finals.emplace_back(slot, st);
      }
      return;
    }
    std::vector<std::pair<Slot*, std::future<spec::StepState>>> inflight;
    inflight.reserve(tasks.size());
    for (auto& [slot, fn] : tasks) {
      inflight.emplace_back(slot, pool.submit(std::move(fn)));
    }
    for (auto& [slot, fut] : inflight) {
      const spec::StepState st = fut.get();  // rethrows decode errors
      if (st == spec::StepState::NeedScores) pending.push_back(slot);
      else finals.emplace_back(slot, st);
    }
  };

  const auto tick_fused = [&] {
    // Phase A: advance every live session to its first scoring point
    // (prompt prefills, candidate feeds) across the workers.
    std::vector<Slot*> pending;  // paused on a ScoreRequest
    std::vector<std::pair<Slot*, spec::StepState>> finals;
    {
      const obs::Span propose_span(trace, "propose");
      std::vector<std::pair<Slot*, std::function<spec::StepState()>>> tasks;
      tasks.reserve(static_cast<std::size_t>(live));
      for (Slot& slot : slots) {
        if (!slot.dec) continue;
        spec::DecodeSession* dec = slot.dec.get();
        tasks.emplace_back(&slot, [dec] { return dec->advance(); });
      }
      run_stage(tasks, pending, finals);
    }

    // Score rounds: gather every pending request's hidden rows, run ONE
    // base-LM matmul over the stack (plus one per draft head), scatter the
    // logits rows back, and resume the sessions on the pool; repeat until
    // every session reaches its step boundary.  The futures order the
    // handoff (rows are read here after get(); scattered logits are read
    // by workers only after submit()), so the exchange is race-free.
    while (!pending.empty()) {
      const auto score_start = Clock::now();
      int total_rows = 0;
      int max_heads = 0;
      for (const Slot* s : pending) {
        total_rows += s->dec->request().hidden.rows();
        max_heads = std::max(max_heads, s->dec->request().n_heads);
      }
      nn::Tensor all_rows(total_rows, model_.config().d_model);
      // Draft-head row stacks, gathered up front: requests can want
      // different head counts (chain verification wants none), so head k
      // fuses the subset that has it.  Membership is monotone in k (a
      // request wanting head k wants every lower head), so the stack only
      // shrinks; consecutive heads with equal row counts share one tensor.
      std::vector<int> head_rows(static_cast<std::size_t>(max_heads), 0);
      std::vector<std::shared_ptr<const nn::Tensor>> head_stack(
          static_cast<std::size_t>(max_heads));
      {
        const obs::Span gather_span(trace, "gather");
        int off = 0;
        for (const Slot* s : pending) {
          const nn::Tensor& h = s->dec->request().hidden;
          std::memcpy(all_rows.row(off), h.data(), sizeof(float) * h.size());
          off += h.rows();
        }
        std::shared_ptr<nn::Tensor> hk;
        for (int k = 0; k < max_heads; ++k) {
          int rows_k = 0;
          for (const Slot* s : pending) {
            const spec::ScoreRequest& req = s->dec->request();
            if (req.n_heads > k) rows_k += req.hidden.rows();
          }
          if (!hk || hk->rows() != rows_k) {
            hk = std::make_shared<nn::Tensor>(rows_k, model_.config().d_model);
            int hoff = 0;
            for (const Slot* s : pending) {
              const spec::ScoreRequest& req = s->dec->request();
              if (req.n_heads <= k) continue;
              std::memcpy(hk->row(hoff), req.hidden.data(),
                          sizeof(float) * req.hidden.size());
              hoff += req.hidden.rows();
            }
          }
          head_rows[static_cast<std::size_t>(k)] = rows_k;
          head_stack[static_cast<std::size_t>(k)] = hk;
        }
      }

      // One stacked base-LM pass plus one pass per draft head.  With a
      // compute pool the K head passes run as coarse tasks concurrent with
      // the base pass (which itself partitions across the same pool); the
      // head passes' inner kernels detect they are on a pool worker and
      // stay serial, so the pool never waits on itself.  Every pass is
      // row-independent, so the schedule changes nothing but the clock.
      std::vector<nn::Tensor> head_logits(static_cast<std::size_t>(max_heads));
      nn::Tensor lm_all;
      {
        const obs::Span score_span(trace, "score");
        // Coarse concurrency only pays with real cores to run it on; on a
        // single-core host the head passes stay on this thread.
        ThreadPool* cpool =
            nn::hardware_threads() > 1 ? nn::compute_pool() : nullptr;
        std::vector<std::future<nn::Tensor>> head_futs;
        if (cpool != nullptr) {
          head_futs.reserve(static_cast<std::size_t>(max_heads));
          const nn::TransformerModel& model = model_;
          for (int k = 0; k < max_heads; ++k) {
            auto stack = head_stack[static_cast<std::size_t>(k)];
            head_futs.push_back(cpool->submit(
                [&model, stack, k] { return model.infer_head_logits(*stack, k); }));
          }
        }
        lm_all = model_.infer_lm_logits(all_rows);
        ++stats.fused_passes;
        stats.fused_rows += total_rows;
        for (int k = 0; k < max_heads; ++k) {
          head_logits[static_cast<std::size_t>(k)] =
              cpool != nullptr
                  ? head_futs[static_cast<std::size_t>(k)].get()
                  : model_.infer_head_logits(*head_stack[static_cast<std::size_t>(k)], k);
          ++stats.fused_passes;
          stats.fused_rows += head_rows[static_cast<std::size_t>(k)];
        }
      }

      std::vector<spec::Scores> scores(pending.size());
      {
        const obs::Span scatter_span(trace, "scatter");
        {
          int off = 0;
          for (std::size_t i = 0; i < pending.size(); ++i) {
            const spec::ScoreRequest& req = pending[i]->dec->request();
            scores[i].lm = copy_rows(lm_all, off, req.hidden.rows());
            scores[i].heads.resize(static_cast<std::size_t>(req.n_heads));
            off += req.hidden.rows();
          }
        }
        for (int k = 0; k < max_heads; ++k) {
          const nn::Tensor& hl = head_logits[static_cast<std::size_t>(k)];
          int off = 0;
          for (std::size_t i = 0; i < pending.size(); ++i) {
            const spec::ScoreRequest& req = pending[i]->dec->request();
            if (req.n_heads <= k) continue;
            scores[i].heads[static_cast<std::size_t>(k)] =
                copy_rows(hl, off, req.hidden.rows());
            off += req.hidden.rows();
          }
        }
      }

      // Attribute the shared scoring pass back to the requests it served
      // (by row-pass share), so per-request wall_seconds stays comparable
      // with the serial path, which times its local scoring.
      {
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - score_start).count();
        double total_weight = 0.0;
        for (const Slot* s : pending) {
          const spec::ScoreRequest& req = s->dec->request();
          total_weight += static_cast<double>(req.hidden.rows()) * (1 + req.n_heads);
        }
        for (Slot* s : pending) {
          const spec::ScoreRequest& req = s->dec->request();
          const double weight =
              static_cast<double>(req.hidden.rows()) * (1 + req.n_heads);
          s->dec->credit_wall(elapsed * weight / std::max(total_weight, 1.0));
        }
      }

      const obs::Span accept_span(trace, "accept");
      std::vector<std::pair<Slot*, std::function<spec::StepState()>>> tasks;
      tasks.reserve(pending.size());
      for (std::size_t i = 0; i < pending.size(); ++i) {
        spec::DecodeSession* dec = pending[i]->dec.get();
        auto sc = std::make_shared<spec::Scores>(std::move(scores[i]));
        tasks.emplace_back(pending[i], [dec, sc] {
          dec->supply(std::move(*sc));
          return dec->advance();
        });
      }
      pending.clear();
      run_stage(tasks, pending, finals);
    }

    // Capture prompt prefills for the cache once the tick's feeds are done
    // (the prompt rows are final from priming on), in parallel across
    // slots.
    {
      const obs::Span capture_span(trace, "capture");
      std::vector<std::future<void>> captures;
      for (auto& [slot, st] : finals) {
        if (!slot->capture_pending) continue;
        slot->capture_pending = false;
        nn::InferSession* sess = slot->sess.get();
        captures.push_back(pool.submit([sess, cache, ids = slot->req.prompt_ids] {
          cache->insert(ids, sess->share_prefix(static_cast<int>(ids.size())));
        }));
      }
      for (auto& f : captures) f.get();
    }

    for (auto& [slot, st] : finals) {
      if (st == spec::StepState::Finished) complete_slot(*slot);
    }
  };

  for (;;) {
    // --- admit: drain the queue into every free slot ---------------------
    // Block only when nothing is in flight; the burst pop drains the queue
    // under one lock, so requests that piled up while the scheduler was
    // idle are all batched into the same first tick instead of trickling
    // in one per tick.
    const std::size_t free_slots = static_cast<std::size_t>(batch - live);
    std::vector<Request> burst;
    if (live == 0) {
      // About to block on the queue: flush every pending check first so
      // completed results are never held hostage by an idle scheduler.
      reap_checks(/*block=*/true);
      burst = queue_.pop_burst(free_slots);
    } else {
      burst = queue_.try_pop_burst(free_slots);
    }
    {
      // The span covers slot setup (cache lookup, session build), not the
      // blocking wait above — an idle scheduler should trace as idle.
      const obs::Span admit_span(burst.empty() ? nullptr : trace, "admit");
      std::size_t next = 0;
      for (Slot& slot : slots) {
        if (next >= burst.size()) break;
        if (slot.dec) continue;
        admit(slot, std::move(burst[next++]));
      }
    }
    if (live == 0) break;  // queue closed and drained

    // --- tick: advance every live session one speculative step -----------
    ++stats.ticks;
    stats.max_in_flight = std::max(stats.max_in_flight, live);
    h_occ.record(static_cast<double>(live));
    g_inflight.set(static_cast<double>(live));
    const auto tick_start = Clock::now();
    {
      const obs::Span tick_span(trace, "tick");
      if (opts_.fuse) {
        tick_fused();
      } else {
        tick_serial();
      }
    }
    h_tick.record(
        std::chrono::duration<double>(Clock::now() - tick_start).count());
    reap_checks(/*block=*/false);
    for (Slot& slot : slots) {
      if (slot.dec) note_first_token(slot);
    }
    // Per-tick pressure sample: O(1) on the arena (no page census), one
    // mutex hop against a tick that just ran a batched forward.
    const nn::KvPressure kvp = arena->pressure();
    g_kv_used.set(static_cast<double>(kvp.in_use));
    g_kv_free.set(static_cast<double>(kvp.free_pages));
    g_kv_cow.set(static_cast<double>(kvp.cow_clones));
    if (trace != nullptr) {
      trace->counter("queue.depth", static_cast<double>(queue_.size()));
      trace->counter("batch.live", static_cast<double>(live));
      trace->counter("kv.pages_in_use", static_cast<double>(kvp.in_use));
      trace->counter("kv.pages_free", static_cast<double>(kvp.free_pages));
    }
  }
  reap_checks(/*block=*/true);  // final drain
  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  // Release the slots' sessions before sampling the arena, so the stats
  // report what the run leaves behind: pages pinned by warm cache entries
  // (plus anything an external kv_arena owner still holds).
  for (Slot& slot : slots) slot.sess.reset();
  stats.kv = arena->stats();
  g_inflight.set(0.0);
  stats.latency = h_latency.stats();
  stats.queue_wait = h_wait.stats();
  stats.ttft = h_ttft.stats();
  stats.tick = h_tick.stats();
  stats.occupancy_mean = h_occ.stats().mean();
  if (h_check != nullptr) stats.check = h_check->stats();
  for (std::size_t i = 0; i < stage_obs.size(); ++i) {
    stats.check_stages[i].latency = stage_obs[i].latency->stats();
  }
  stats.kernel = opts_.kernel;
  stats.isa = nn::dispatched_isa();
  stats.quant = model_.quant_stats();
  // A private registry dies with this frame — unhook the queue first.
  if (opts_.metrics == nullptr) queue_.attach_metrics(nullptr);
  return stats;
}

}  // namespace vsd::serve
