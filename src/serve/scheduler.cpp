#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "serve/session_cache.hpp"
#include "serve/thread_pool.hpp"

namespace vsd::serve {

namespace {
using Clock = std::chrono::steady_clock;
}

Scheduler::Scheduler(const nn::TransformerModel& model, RequestQueue& queue,
                     SchedulerOptions opts)
    : model_(model), queue_(queue), opts_(opts) {}

ServeStats Scheduler::run(const Completion& on_complete) {
  const int batch = std::max(1, opts_.batch);

  struct Slot {
    std::unique_ptr<nn::InferSession> sess;  // KV allocations, reused
    std::unique_ptr<spec::DecodeSession> dec;
    Request req;
    bool capture_pending = false;  // snapshot the prompt prefill after step 1
  };
  // The cache only helps decoder-only models: enc-dec prompts feed the
  // encoder, not the KV cache the snapshots capture.
  SessionCache* const cache =
      model_.config().encoder_decoder ? nullptr : opts_.cache;
  // Declared before the pool: if a decode error unwinds this frame, the
  // pool must join its workers (which may still be mid-step on other
  // slots' sessions) before the slots are destroyed.
  std::vector<Slot> slots(static_cast<std::size_t>(batch));
  ThreadPool pool(std::max(1, opts_.workers));

  ServeStats stats;
  const auto start = Clock::now();
  int live = 0;
  for (;;) {
    // --- admit: fill free slots from the queue ---------------------------
    // Only block when nothing is in flight; otherwise keep decoding and
    // take whatever is immediately available.
    for (Slot& slot : slots) {
      if (slot.dec) continue;
      std::optional<Request> r = live == 0 ? queue_.pop() : queue_.try_pop();
      if (!r) break;
      if (!slot.sess) slot.sess = std::make_unique<nn::InferSession>(model_);
      slot.req = std::move(*r);
      const bool cacheable = cache != nullptr && !slot.req.prompt_ids.empty();
      int prefix = 0;
      bool covered = false;
      if (cacheable) {
        const SessionCache::Match m = cache->lookup(slot.req.prompt_ids);
        covered = m.covered;
        if (m.len > 0) {
          slot.sess->restore(*m.snap, m.len);
          prefix = m.len;
        }
      }
      stats.cached_positions += prefix;
      // Re-capturing a prompt the cache already spans (repeat traffic)
      // would copy KV rows for zero new coverage — skip it.
      slot.capture_pending = cacheable && !covered;
      slot.dec = std::make_unique<spec::DecodeSession>(
          model_, *slot.sess, slot.req.prompt_ids, slot.req.config,
          Rng(slot.req.seed), prefix);
      ++live;
    }
    if (live == 0) break;  // queue closed and drained

    // --- tick: advance every live session one speculative step -----------
    std::vector<std::pair<Slot*, std::future<bool>>> inflight;
    inflight.reserve(static_cast<std::size_t>(live));
    for (Slot& slot : slots) {
      if (!slot.dec) continue;
      spec::DecodeSession* dec = slot.dec.get();
      if (slot.capture_pending) {
        // First step of a cacheable request: capture its prompt prefill on
        // the worker, sequenced right after the step (the prompt rows are
        // final once primed, and nothing else touches this slot's session
        // until the next tick) — the copy runs in parallel across slots
        // instead of stalling the scheduler thread between ticks.
        slot.capture_pending = false;
        nn::InferSession* sess = slot.sess.get();
        inflight.emplace_back(
            &slot, pool.submit([dec, sess, cache,
                                ids = slot.req.prompt_ids] {
              const bool more = dec->step();
              cache->insert(ids, sess->snapshot(static_cast<int>(ids.size())));
              return more;
            }));
      } else {
        inflight.emplace_back(&slot, pool.submit([dec] { return dec->step(); }));
      }
    }
    ++stats.ticks;
    stats.max_in_flight = std::max(stats.max_in_flight,
                                   static_cast<int>(inflight.size()));

    // --- complete: requests finish independently, slots free immediately -
    for (auto& [slot, fut] : inflight) {
      if (fut.get()) continue;  // get() rethrows decode errors
      stats.prefill_positions += slot->dec->result().prefill_positions;
      on_complete(slot->req, slot->dec->take_result());
      slot->dec.reset();
      --live;
      ++stats.completed;
    }
  }
  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return stats;
}

}  // namespace vsd::serve
