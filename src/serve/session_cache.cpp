#include "serve/session_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace vsd::serve {

namespace {

int common_prefix_len(std::span<const int> a, std::span<const int> b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return static_cast<int>(i);
}

}  // namespace

SessionCache::SessionCache(SessionCacheOptions opts) : opts_(opts) {
  check(opts_.capacity >= 1, "SessionCache capacity must be >= 1");
  check(opts_.min_prefix >= 1, "SessionCache min_prefix must be >= 1");
}

SessionCache::Match SessionCache::lookup(std::span<const int> prompt_ids) {
  const std::lock_guard<std::mutex> lock(mu_);
  // A full-prompt match is clamped one token short: the decoder must feed
  // at least one position to produce the next-token hidden state.
  const int usable = static_cast<int>(prompt_ids.size()) - 1;
  auto best = lru_.end();
  int best_len = 0;
  bool covered = false;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const int common = common_prefix_len(it->key, prompt_ids);
    covered = covered || common == static_cast<int>(prompt_ids.size());
    const int len = std::min({common, usable, it->snap->len});
    if (len > best_len) {
      best_len = len;
      best = it;
    }
  }
  if (best == lru_.end() || best_len < opts_.min_prefix) {
    ++stats_.misses;
    return {.len = 0, .covered = covered, .snap = nullptr};
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, best);  // bump to most-recently-used
  return {.len = best_len, .covered = covered, .snap = best->snap};
}

void SessionCache::insert(std::span<const int> prefix_ids, nn::KvSnapshot snap) {
  check(snap.len == static_cast<int>(prefix_ids.size()),
        "SessionCache: snapshot length does not match the key prefix");
  if (snap.len < opts_.min_prefix) return;  // too short to ever match
  Entry e;
  e.key.assign(prefix_ids.begin(), prefix_ids.end());
  e.bytes = snap.byte_size() + e.key.size() * sizeof(int);
  e.snap = std::make_shared<const nn::KvSnapshot>(std::move(snap));

  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->key == e.key) {  // refresh: newest snapshot wins, no eviction
      stats_.bytes -= it->bytes;
      lru_.erase(it);
      break;
    }
  }
  stats_.bytes += e.bytes;
  lru_.push_front(std::move(e));
  ++stats_.insertions;
  evict_to_budget_locked();
}

void SessionCache::evict_to_budget_locked() {
  // An entry bigger than the whole byte budget evicts everything including
  // itself — the cache never holds more than max_bytes.
  while (!lru_.empty() &&
         (lru_.size() > opts_.capacity || stats_.bytes > opts_.max_bytes)) {
    stats_.bytes -= lru_.back().bytes;
    lru_.pop_back();
    ++stats_.evictions;
  }
}

SessionCacheStats SessionCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  SessionCacheStats out = stats_;
  out.entries = lru_.size();
  return out;
}

void SessionCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += static_cast<long>(lru_.size());
  lru_.clear();
  stats_.bytes = 0;
}

}  // namespace vsd::serve
