#include "serve/session_cache.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace vsd::serve {

SessionCache::SessionCache(SessionCacheOptions opts) : opts_(opts) {
  check(opts_.capacity >= 1, "SessionCache capacity must be >= 1");
  check(opts_.min_prefix >= 1, "SessionCache min_prefix must be >= 1");
}

SessionCache::~SessionCache() = default;

SessionCache::Node* SessionCache::find_child(Node* n, int token) const {
  for (auto& c : n->children) {
    if (c->edge.front() == token) return c.get();
  }
  return nullptr;
}

SessionCache::EntryList::iterator SessionCache::subtree_terminal(Node* n) {
  // Every non-root node keeps a terminal somewhere below (removal prunes
  // nodes that lose theirs), so this descent always lands on one.
  while (!n->has_term) n = n->children.front().get();
  return n->term;
}

void SessionCache::attach_metrics(obs::Registry* reg) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (reg == nullptr) {
    lookup_s_ = nullptr;
    hits_ = nullptr;
    misses_ = nullptr;
    return;
  }
  lookup_s_ = &reg->histogram("serve.cache.lookup_s");
  hits_ = &reg->counter("serve.cache.hits");
  misses_ = &reg->counter("serve.cache.misses");
}

SessionCache::Match SessionCache::lookup(std::span<const int> prompt_ids) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mu_);
  const Match m = lookup_locked(prompt_ids);
  // Recording is lock-free (relaxed atomics), so doing it under mu_ costs
  // a few nanoseconds against a radix-tree walk.
  if (lookup_s_ != nullptr) {
    lookup_s_->record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  obs::Counter* const c = m.len > 0 ? hits_ : misses_;
  if (c != nullptr) c->inc();
  return m;
}

SessionCache::Match SessionCache::lookup_locked(std::span<const int> prompt_ids) {
  // A full-prompt match is clamped one token short: the decoder must feed
  // at least one position to produce the next-token hidden state.
  const int usable = static_cast<int>(prompt_ids.size()) - 1;

  // Walk edges while prompt tokens keep matching.  Wherever the walk
  // stops, every terminal in the subtree below shares exactly `matched`
  // tokens with the prompt (keys diverge only past the stop point), so
  // one descent — not a scan over entries — yields the longest match.
  Node* node = &root_;
  std::size_t matched = 0;
  while (matched < prompt_ids.size()) {
    Node* child = find_child(node, prompt_ids[matched]);
    if (!child) break;
    std::size_t e = 0;
    while (e < child->edge.size() && matched < prompt_ids.size() &&
           child->edge[e] == prompt_ids[matched]) {
      ++e;
      ++matched;
    }
    node = child;
    if (e < child->edge.size()) break;  // diverged (or prompt ended) mid-edge
  }

  if (node == &root_) {  // nothing matched even one token
    ++stats_.misses;
    return {.len = 0, .covered = false, .prefix = nullptr};
  }

  const auto term = subtree_terminal(node);
  const bool covered = matched == prompt_ids.size();
  const int len = std::min(static_cast<int>(matched), usable);
  if (len < opts_.min_prefix) {
    ++stats_.misses;
    if (covered) {
      // The covering entry still serves a purpose (the scheduler skips
      // re-capturing this prompt because of it) — keep it warm.
      lru_.splice(lru_.begin(), lru_, term);
    }
    return {.len = 0, .covered = covered, .prefix = nullptr};
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, term);  // bump the serving entry to MRU
  return {.len = len, .covered = covered, .prefix = term->prefix};
}

void SessionCache::insert(std::span<const int> prefix_ids, nn::KvPrefix prefix) {
  check(prefix.len() == static_cast<int>(prefix_ids.size()),
        "SessionCache: prefix length does not match the key");
  if (prefix.len() < opts_.min_prefix) return;  // too short to ever match

  const std::lock_guard<std::mutex> lock(mu_);
  Node* node = &root_;
  std::size_t pos = 0;
  while (pos < prefix_ids.size()) {
    Node* child = find_child(node, prefix_ids[pos]);
    if (!child) {
      auto leaf = std::make_unique<Node>();
      leaf->parent = node;
      leaf->edge.assign(prefix_ids.begin() + static_cast<long>(pos),
                        prefix_ids.end());
      node->children.push_back(std::move(leaf));
      node = node->children.back().get();
      pos = prefix_ids.size();
      break;
    }
    std::size_t e = 0;
    while (e < child->edge.size() && pos < prefix_ids.size() &&
           child->edge[e] == prefix_ids[pos]) {
      ++e;
      ++pos;
    }
    if (e == child->edge.size()) {
      node = child;
      continue;
    }
    // The key leaves the edge mid-run: split the edge at the divergence,
    // with a new interior node owning the shared front half.
    auto mid = std::make_unique<Node>();
    mid->parent = node;
    mid->edge.assign(child->edge.begin(), child->edge.begin() + static_cast<long>(e));
    child->edge.erase(child->edge.begin(), child->edge.begin() + static_cast<long>(e));
    for (auto& slot : node->children) {
      if (slot.get() == child) {
        mid->children.push_back(std::move(slot));
        child->parent = mid.get();
        slot = std::move(mid);
        node = slot.get();
        break;
      }
    }
    // Loop continues: either the key is exhausted (node is the terminal)
    // or its next token diverges from the split-off child, so the next
    // iteration adds a fresh leaf under `node`.
  }

  if (node->has_term) {  // refresh in place: newest prefill wins, no eviction
    account_drop_locked(*node->term);
    lru_.erase(node->term);
    node->has_term = false;
  }
  lru_.push_front(Entry{
      .node = node,
      .key_len = prefix_ids.size(),
      .prefix = std::make_shared<const nn::KvPrefix>(std::move(prefix))});
  node->term = lru_.begin();
  node->has_term = true;
  account_add_locked(*node->term);
  ++stats_.insertions;
  evict_to_budget_locked();
}

void SessionCache::account_add_locked(const Entry& e) {
  const nn::KvArena* arena = e.prefix->arena().get();
  for (const int id : e.prefix->pages()) {
    if (page_refs_[{arena, id}]++ == 0) stats_.bytes += arena->page_bytes();
  }
  stats_.bytes += e.key_len * sizeof(int) +
                  e.prefix->enc_out().size() * sizeof(float);
}

void SessionCache::account_drop_locked(const Entry& e) {
  const nn::KvArena* arena = e.prefix->arena().get();
  for (const int id : e.prefix->pages()) {
    const auto it = page_refs_.find({arena, id});
    if (--it->second == 0) {
      page_refs_.erase(it);
      stats_.bytes -= arena->page_bytes();
    }
  }
  stats_.bytes -= e.key_len * sizeof(int) +
                  e.prefix->enc_out().size() * sizeof(float);
}

void SessionCache::remove_entry_locked(EntryList::iterator it) {
  Node* node = it->node;
  account_drop_locked(*it);
  lru_.erase(it);
  node->has_term = false;
  // Prune nodes left with neither a terminal nor children...
  while (node != &root_ && !node->has_term && node->children.empty()) {
    Node* parent = node->parent;
    auto& kids = parent->children;
    for (auto slot = kids.begin(); slot != kids.end(); ++slot) {
      if (slot->get() == node) {
        kids.erase(slot);
        break;
      }
    }
    node = parent;
  }
  // ...then re-compress a pass-through survivor into its only child, so
  // the tree stays a proper radix tree (one node per divergence).
  if (node != &root_ && !node->has_term && node->children.size() == 1) {
    Node* child = node->children.front().get();
    node->edge.insert(node->edge.end(), child->edge.begin(), child->edge.end());
    node->has_term = child->has_term;
    if (child->has_term) {
      node->term = child->term;
      node->term->node = node;
    }
    std::vector<std::unique_ptr<Node>> grand = std::move(child->children);
    node->children = std::move(grand);
    for (auto& g : node->children) g->parent = node;
  }
}

void SessionCache::evict_to_budget_locked() {
  // An entry bigger than the whole byte budget evicts everything including
  // itself — the cache never holds more than max_bytes of distinct pages.
  while (!lru_.empty() &&
         (lru_.size() > opts_.capacity || stats_.bytes > opts_.max_bytes)) {
    remove_entry_locked(std::prev(lru_.end()));
    ++stats_.evictions;
  }
}

SessionCacheStats SessionCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  SessionCacheStats out = stats_;
  out.entries = lru_.size();
  return out;
}

void SessionCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_.evictions += static_cast<long>(lru_.size());
  lru_.clear();
  root_.children.clear();
  root_.has_term = false;
  page_refs_.clear();
  stats_.bytes = 0;
}

}  // namespace vsd::serve
