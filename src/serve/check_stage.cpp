#include "serve/check_stage.hpp"

#include <set>
#include <utility>

#include "vlog/dataflow.hpp"
#include "vlog/diagnostics.hpp"
#include "vlog/lint.hpp"

namespace vsd::serve {

namespace {

CheckOutcome outcome_from(const vlog::LintResult& lint) {
  CheckOutcome out;
  out.pass = !lint.has_errors();
  out.errors = lint.errors();
  out.warnings = lint.warnings();
  out.infos = lint.infos();
  out.diagnostics_json = vlog::diagnostics_json(lint.diagnostics());
  return out;
}

std::string joined_names() {
  std::string s;
  for (const std::string& n : check_stage_names()) {
    if (!s.empty()) s += ", ";
    s += n;
  }
  return s;
}

}  // namespace

std::vector<std::string> check_stage_names() { return {"lint", "elab"}; }

std::optional<CheckStage> make_check_stage(const std::string& name,
                                           DecodeTextFn decode) {
  if (name == "lint") {
    return CheckStage{
        "lint",
        [decode = std::move(decode)](const Request&,
                                     const spec::DecodeResult& r) {
          return outcome_from(vlog::lint_source(decode(r)));
        }};
  }
  if (name == "elab") {
    return CheckStage{
        "elab",
        [decode = std::move(decode)](const Request&,
                                     const spec::DecodeResult& r) {
          return outcome_from(vlog::elab_lint_source(decode(r)));
        }};
  }
  return std::nullopt;
}

std::vector<CheckStage> parse_check_stages(const std::string& list,
                                           const DecodeTextFn& decode,
                                           std::string& error) {
  std::vector<CheckStage> out;
  std::set<std::string> seen;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? list.size() + 1 : comma + 1;
    if (name.empty()) {
      error = "--check needs a comma-separated stage list (available: " +
              joined_names() + ")";
      return {};
    }
    if (!seen.insert(name).second) {
      error = "--check lists stage '" + name + "' twice";
      return {};
    }
    auto stage = make_check_stage(name, decode);
    if (!stage) {
      error = "unknown check stage '" + name +
              "' (available: " + joined_names() + ")";
      return {};
    }
    out.push_back(std::move(*stage));
  }
  return out;
}

}  // namespace vsd::serve
