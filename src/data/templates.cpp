#include "data/templates.hpp"

#include <functional>
#include <unordered_map>

#include "common/error.hpp"

namespace vsd::data {

namespace {

struct NamePools {
  std::vector<std::string> suffixes;       // module-name suffixes
  std::vector<std::string> data_in;
  std::vector<std::string> data_out;
  std::vector<int> widths;
};

const NamePools& pools(Pool p) {
  static const NamePools train = {
      {"", "_unit", "_core", "_mod"},
      {"data_in", "in_data", "d_in", "din"},
      {"data_out", "out_data", "d_out", "dout"},
      {2, 4, 8, 16},
  };
  // The eval pool shares the identifier/width vocabulary with training and
  // differs only in its sampling stream: a ~10^5-parameter model has no
  // open-vocabulary copying ability, so held-out *identifiers* would floor
  // functional accuracy at zero for every method and erase the comparison.
  // Problems still differ from most corpus items in (family, width, name)
  // combination; see EXPERIMENTS.md "benchmark construction".
  static const NamePools eval = {
      {"", "_unit", "_core", "_mod"},
      {"data_in", "in_data", "d_in", "din"},
      {"data_out", "out_data", "d_out", "dout"},
      {2, 4, 8, 16},
  };
  return p == Pool::Train ? train : eval;
}

std::string W(int w) { return std::to_string(w); }
std::string msb(int w) { return "[" + std::to_string(w - 1) + ":0]"; }

struct Ctx {
  Rng& rng;
  const NamePools& np;
  std::string din;
  std::string dout;
  int width;

  std::string pick_phrase(std::vector<std::string> options) {
    return options[rng.next_below(options.size())];
  }
};

using FamilyFn = std::function<RtlSample(Ctx&)>;

RtlSample make(const std::string& family, const std::string& base_name,
               const std::string& description, const std::string& header,
               const std::string& body) {
  RtlSample s;
  s.family = family;
  s.module_name = base_name;
  s.description = description;
  s.header = header;
  s.code = header + "\n" + body;
  return s;
}

// --- family implementations --------------------------------------------------

RtlSample fam_register(Ctx& c) {
  const bool has_rst = c.rng.next_bool(0.6);
  const bool has_en = c.rng.next_bool(0.3);
  const std::string name = "data_register" + c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  std::string ports = "input clk, ";
  if (has_rst) ports += "input rst, ";
  if (has_en) ports += "input en, ";
  ports += "input " + msb(c.width) + " " + c.din + ", output reg " + msb(c.width) + " " + c.dout;
  const std::string header = "module " + name + "(" + ports + ");";
  std::string body = "  always @(posedge clk";
  if (has_rst) body += " or posedge rst";
  body += ")\n";
  if (has_rst && has_en) {
    body += "    if (rst) " + c.dout + " <= " + W(c.width) + "'d0;\n"
            "    else if (en) " + c.dout + " <= " + c.din + ";\n";
  } else if (has_rst) {
    body += "    if (rst) " + c.dout + " <= " + W(c.width) + "'d0;\n"
            "    else " + c.dout + " <= " + c.din + ";\n";
  } else if (has_en) {
    body += "    if (en) " + c.dout + " <= " + c.din + ";\n";
  } else {
    body += "    " + c.dout + " <= " + c.din + ";\n";
  }
  body += "endmodule\n";
  std::string desc = c.pick_phrase({
      "Create a " + W(c.width) + "-bit register named \"" + name + "\" that captures `" +
          c.din + "` into `" + c.dout + "` on the positive clock edge",
      "Write a Verilog module called \"" + name + "\" implementing a " + W(c.width) +
          "-bit data register: `" + c.dout + "` takes the value of `" + c.din +
          "` at every rising edge of `clk`",
  });
  if (has_rst) desc += ", with a synchronous-style clear to zero when `rst` is high";
  if (has_en) desc += ", updating only while `en` is asserted";
  desc += ".";
  return make("register", name, desc, header, body);
}

RtlSample fam_mux2(Ctx& c) {
  const std::string name = "mux2to1" + c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name + "(input " + msb(c.width) + " a, input " +
                             msb(c.width) + " b, input sel, output " + msb(c.width) + " y);";
  const std::string body = "  assign y = sel ? b : a;\nendmodule\n";
  const std::string desc = c.pick_phrase({
      "Write a simple Verilog module named \"" + name + "\" for a 2-to-1 multiplexer of " +
          W(c.width) + "-bit inputs `a` and `b`; output `y` equals `b` when `sel` is 1.",
      "Create a " + W(c.width) + "-bit 2-to-1 mux called \"" + name +
          "\": `y` selects between `a` (sel=0) and `b` (sel=1).",
  });
  return make("mux2", name, desc, header, body);
}

RtlSample fam_mux4(Ctx& c) {
  const std::string name = "mux4to1" + c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name + "(input " + msb(c.width) + " d0, input " +
                             msb(c.width) + " d1, input " + msb(c.width) + " d2, input " +
                             msb(c.width) + " d3, input [1:0] sel, output reg " +
                             msb(c.width) + " y);";
  const std::string body =
      "  always @(*)\n"
      "    case (sel)\n"
      "      2'd0: y = d0;\n"
      "      2'd1: y = d1;\n"
      "      2'd2: y = d2;\n"
      "      default: y = d3;\n"
      "    endcase\n"
      "endmodule\n";
  const std::string desc =
      "Implement a 4-to-1 multiplexer named \"" + name + "\" with four " + W(c.width) +
      "-bit inputs `d0`..`d3` and a 2-bit select `sel`; output `y` is registered "
      "combinationally through a case statement.";
  return make("mux4", name, desc, header, body);
}

RtlSample fam_counter(Ctx& c) {
  const bool down = c.rng.next_bool(0.3);
  const bool has_en = c.rng.next_bool(0.4);
  const std::string name = std::string(down ? "down_counter" : "up_counter") +
                           c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  std::string ports = "input clk, input rst, ";
  if (has_en) ports += "input en, ";
  ports += "output reg " + msb(c.width) + " count";
  const std::string header = "module " + name + "(" + ports + ");";
  const std::string step = down ? "count - " + W(c.width) + "'d1"
                                : "count + " + W(c.width) + "'d1";
  std::string body = "  always @(posedge clk or posedge rst)\n"
                     "    if (rst) count <= " + W(c.width) + "'d0;\n";
  if (has_en) {
    body += "    else if (en) count <= " + step + ";\n";
  } else {
    body += "    else count <= " + step + ";\n";
  }
  body += "endmodule\n";
  std::string desc = "Design a " + W(c.width) + "-bit " +
                     (down ? std::string("down") : std::string("up")) +
                     "-counter module named \"" + name +
                     "\" with asynchronous active-high reset `rst`";
  if (has_en) desc += " and count-enable `en`";
  desc += "; the count updates on the rising edge of `clk`.";
  return make("counter", name, desc, header, body);
}

RtlSample fam_adder(Ctx& c) {
  const bool carry = c.rng.next_bool(0.5);
  const std::string name = "adder" + W(c.width) +
                           c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  std::string header;
  std::string body;
  if (carry) {
    header = "module " + name + "(input " + msb(c.width) + " a, input " + msb(c.width) +
             " b, output " + msb(c.width) + " sum, output cout);";
    body = "  assign {cout, sum} = a + b;\nendmodule\n";
  } else {
    header = "module " + name + "(input " + msb(c.width) + " a, input " + msb(c.width) +
             " b, output [" + W(c.width) + ":0] sum);";
    body = "  assign sum = a + b;\nendmodule\n";
  }
  const std::string desc = c.pick_phrase({
      "Write a combinational " + W(c.width) + "-bit adder named \"" + name +
          "\" that adds `a` and `b`" +
          (carry ? " producing `sum` and a carry-out `cout`." : " into a " +
           W(c.width + 1) + "-bit result `sum`."),
      "Create module \"" + name + "\": a " + W(c.width) + "-bit adder" +
          (carry ? " with separate carry output `cout`." : " with full-width sum output."),
  });
  return make("adder", name, desc, header, body);
}

RtlSample fam_logic_unit(Ctx& c) {
  const std::string name = "logic_unit" + c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name + "(input " + msb(c.width) + " a, input " +
                             msb(c.width) + " b, input [1:0] op, output reg " +
                             msb(c.width) + " y);";
  const std::string body =
      "  always @(*)\n"
      "    case (op)\n"
      "      2'b00: y = a & b;\n"
      "      2'b01: y = a | b;\n"
      "      2'b10: y = a ^ b;\n"
      "      default: y = ~(a | b);\n"
      "    endcase\n"
      "endmodule\n";
  const std::string desc =
      "Implement a " + W(c.width) + "-bit bitwise logic unit named \"" + name +
      "\" computing AND, OR, XOR, or NOR of `a` and `b` according to the 2-bit "
      "opcode `op` (00, 01, 10, 11 respectively).";
  return make("logic_unit", name, desc, header, body);
}

RtlSample fam_alu(Ctx& c) {
  const std::string name = "alu" + W(c.width) +
                           c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name + "(input " + msb(c.width) + " a, input " +
                             msb(c.width) + " b, input [2:0] op, output reg " +
                             msb(c.width) + " y);";
  const std::string body =
      "  always @(*)\n"
      "    case (op)\n"
      "      3'd0: y = a + b;\n"
      "      3'd1: y = a - b;\n"
      "      3'd2: y = a & b;\n"
      "      3'd3: y = a | b;\n"
      "      3'd4: y = a ^ b;\n"
      "      3'd5: y = ~a;\n"
      "      3'd6: y = a << 1;\n"
      "      default: y = a >> 1;\n"
      "    endcase\n"
      "endmodule\n";
  const std::string desc =
      "Design a simple " + W(c.width) + "-bit ALU named \"" + name +
      "\" supporting add, subtract, AND, OR, XOR, NOT, shift-left and shift-right "
      "selected by the 3-bit opcode `op`.";
  return make("alu", name, desc, header, body);
}

RtlSample fam_comparator(Ctx& c) {
  const std::string name = "comparator" + c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name + "(input " + msb(c.width) + " a, input " +
                             msb(c.width) + " b, output eq, output lt, output gt);";
  const std::string body =
      "  assign eq = a == b;\n"
      "  assign lt = a < b;\n"
      "  assign gt = a > b;\nendmodule\n";
  const std::string desc =
      "Write a " + W(c.width) + "-bit unsigned comparator module named \"" + name +
      "\" with outputs `eq`, `lt`, `gt` indicating a == b, a < b and a > b.";
  return make("comparator", name, desc, header, body);
}

RtlSample fam_shifter(Ctx& c) {
  const std::string name = "shifter" + c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name + "(input " + msb(c.width) + " " + c.din +
                             ", input dir, output " + msb(c.width) + " " + c.dout + ");";
  const std::string body = "  assign " + c.dout + " = dir ? (" + c.din + " >> 1) : (" +
                           c.din + " << 1);\nendmodule\n";
  const std::string desc =
      "Create a " + W(c.width) + "-bit shifter named \"" + name + "\": output `" + c.dout +
      "` is `" + c.din + "` shifted left by one when `dir` is 0 and right by one when "
      "`dir` is 1.";
  return make("shifter", name, desc, header, body);
}

RtlSample fam_parity(Ctx& c) {
  const bool odd = c.rng.next_bool(0.5);
  const std::string name = std::string(odd ? "odd" : "even") + "_parity" +
                           c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header =
      "module " + name + "(input " + msb(c.width) + " " + c.din + ", output p);";
  const std::string body = std::string("  assign p = ") + (odd ? "~" : "") + "(^" + c.din +
                           ");\nendmodule\n";
  const std::string desc =
      "Implement module \"" + name + "\" computing the " +
      (odd ? std::string("odd") : std::string("even")) + " parity bit `p` of the " +
      W(c.width) + "-bit input `" + c.din + "` (XOR reduction" +
      (odd ? ", inverted)." : ").");
  return make("parity", name, desc, header, body);
}

RtlSample fam_decoder(Ctx& c) {
  const int n = c.rng.next_bool() ? 2 : 3;
  const int outs = 1 << n;
  const std::string name = "decoder" + W(n) + "to" + W(outs) +
                           c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name + "(input [" + W(n - 1) + ":0] sel, "
                             "input en, output " + msb(outs) + " y);";
  const std::string body =
      "  assign y = en ? (" + W(outs) + "'d1 << sel) : " + W(outs) + "'d0;\nendmodule\n";
  const std::string desc =
      "Write a " + W(n) + "-to-" + W(outs) + " one-hot decoder named \"" + name +
      "\" with enable `en`; exactly the bit of `y` indexed by `sel` is high when "
      "enabled, otherwise `y` is zero.";
  return make("decoder", name, desc, header, body);
}

RtlSample fam_gray(Ctx& c) {
  const std::string name = "bin2gray" + c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name + "(input " + msb(c.width) + " bin, output " +
                             msb(c.width) + " gray);";
  const std::string body = "  assign gray = bin ^ (bin >> 1);\nendmodule\n";
  const std::string desc =
      "Create a " + W(c.width) + "-bit binary-to-Gray-code converter named \"" + name +
      "\": `gray` equals `bin` XORed with `bin` shifted right by one.";
  return make("gray", name, desc, header, body);
}

RtlSample fam_edge_detector(Ctx& c) {
  const bool falling = c.rng.next_bool(0.3);
  const std::string name = std::string(falling ? "fall" : "rise") + "_edge_det" +
                           c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header =
      "module " + name + "(input clk, input rst, input sig, output pulse);";
  std::string body =
      "  reg prev;\n"
      "  always @(posedge clk or posedge rst)\n"
      "    if (rst) prev <= 1'b0;\n"
      "    else prev <= sig;\n";
  body += falling ? "  assign pulse = prev & ~sig;\nendmodule\n"
                  : "  assign pulse = sig & ~prev;\nendmodule\n";
  const std::string desc =
      std::string("Design module \"") + name + "\" that emits a one-cycle `pulse` on every " +
      (falling ? "falling" : "rising") +
      " edge of `sig`, using a register `prev` clocked by `clk` with async reset `rst`.";
  return make("edge_detector", name, desc, header, body);
}

RtlSample fam_shift_register(Ctx& c) {
  const std::string name = "shift_reg" + W(c.width) +
                           c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name +
                             "(input clk, input rst, input sin, output reg " +
                             msb(c.width) + " q);";
  const std::string body =
      "  always @(posedge clk or posedge rst)\n"
      "    if (rst) q <= " + W(c.width) + "'d0;\n"
      "    else q <= {q[" + W(c.width - 2) + ":0], sin};\nendmodule\n";
  const std::string desc =
      "Implement a " + W(c.width) + "-bit serial-in shift register named \"" + name +
      "\" shifting `sin` into the LSB of `q` each rising clock edge, with async reset.";
  return make("shift_register", name, desc, header, body);
}

RtlSample fam_min_max(Ctx& c) {
  const bool is_max = c.rng.next_bool(0.5);
  const std::string name = std::string(is_max ? "max" : "min") + "_unit" +
                           c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header = "module " + name + "(input " + msb(c.width) + " a, input " +
                             msb(c.width) + " b, output " + msb(c.width) + " y);";
  const std::string body = std::string("  assign y = (a ") + (is_max ? ">" : "<") +
                           " b) ? a : b;\nendmodule\n";
  const std::string desc =
      "Write module \"" + name + "\" outputting the " +
      (is_max ? std::string("maximum") : std::string("minimum")) + " of the two " +
      W(c.width) + "-bit unsigned inputs `a` and `b` on `y`.";
  return make("min_max", name, desc, header, body);
}

RtlSample fam_seq_detector(Ctx& c) {
  // Overlapping "101" or "110" detector, 3-state Mealy-ish FSM.
  const bool pat101 = c.rng.next_bool(0.5);
  const std::string name = std::string("seq") + (pat101 ? "101" : "110") + "_det" +
                           c.np.suffixes[c.rng.next_below(c.np.suffixes.size())];
  const std::string header =
      "module " + name + "(input clk, input rst, input din, output reg found);";
  std::string body =
      "  reg [1:0] state;\n"
      "  always @(posedge clk or posedge rst) begin\n"
      "    if (rst) begin\n"
      "      state <= 2'd0;\n"
      "      found <= 1'b0;\n"
      "    end else begin\n"
      "      found <= 1'b0;\n"
      "      case (state)\n";
  if (pat101) {
    body +=
        "        2'd0: state <= din ? 2'd1 : 2'd0;\n"
        "        2'd1: state <= din ? 2'd1 : 2'd2;\n"
        "        2'd2: begin\n"
        "          if (din) begin\n"
        "            found <= 1'b1;\n"
        "            state <= 2'd1;\n"
        "          end else\n"
        "            state <= 2'd0;\n"
        "        end\n"
        "        default: state <= 2'd0;\n";
  } else {
    body +=
        "        2'd0: state <= din ? 2'd1 : 2'd0;\n"
        "        2'd1: state <= din ? 2'd2 : 2'd0;\n"
        "        2'd2: begin\n"
        "          if (!din) begin\n"
        "            found <= 1'b1;\n"
        "            state <= 2'd0;\n"
        "          end else\n"
        "            state <= 2'd2;\n"
        "        end\n"
        "        default: state <= 2'd0;\n";
  }
  body +=
      "      endcase\n"
      "    end\n"
      "  end\nendmodule\n";
  const std::string desc =
      std::string("Design a Moore-style finite state machine module named \"") + name +
      "\" that raises `found` for one cycle whenever the serial input `din` has produced "
      "the bit pattern " + (pat101 ? "101" : "110") +
      " (overlapping detection), with async reset `rst`.";
  return make("seq_detector", name, desc, header, body);
}

const std::unordered_map<std::string, FamilyFn>& family_table() {
  static const std::unordered_map<std::string, FamilyFn> table = {
      {"register", fam_register},
      {"mux2", fam_mux2},
      {"mux4", fam_mux4},
      {"counter", fam_counter},
      {"adder", fam_adder},
      {"logic_unit", fam_logic_unit},
      {"alu", fam_alu},
      {"comparator", fam_comparator},
      {"shifter", fam_shifter},
      {"parity", fam_parity},
      {"decoder", fam_decoder},
      {"gray", fam_gray},
      {"edge_detector", fam_edge_detector},
      {"shift_register", fam_shift_register},
      {"min_max", fam_min_max},
      {"seq_detector", fam_seq_detector},
  };
  return table;
}

}  // namespace

const std::vector<std::string>& TemplateLibrary::families() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, fn] : family_table()) out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
  }();
  return names;
}

RtlSample TemplateLibrary::generate(const std::string& family, Rng& rng, Pool pool) {
  const auto it = family_table().find(family);
  check(it != family_table().end(), "unknown template family " + family);
  const NamePools& np = pools(pool);
  Ctx ctx{rng, np,
          np.data_in[rng.next_below(np.data_in.size())],
          np.data_out[rng.next_below(np.data_out.size())],
          np.widths[rng.next_below(np.widths.size())]};
  return it->second(ctx);
}

RtlSample TemplateLibrary::generate_any(Rng& rng, Pool pool) {
  const auto& names = families();
  return generate(names[rng.next_below(names.size())], rng, pool);
}

}  // namespace vsd::data
