// Parameterised RTL template library — the reproduction's substitute for
// the paper's GitHub .v scrape (+ MG-Verilog / RTLCoder) and for the GPT-4
// generated functional descriptions.
//
// Every template emits a (description, code) pair where the code parses
// with vsd::vlog and simulates with vsd::sim; the same library (with a
// held-out name/width pool) provides golden designs for the RTLLM-like and
// VGen-like evaluation benchmarks.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace vsd::data {

struct RtlSample {
  std::string family;       // template family, e.g. "counter"
  std::string module_name;
  std::string description;  // natural-language functional description
  std::string header;       // module header line(s), VGen-style prompt part
  std::string code;         // complete module
};

/// Name/width pool selector: Train is used for corpus generation, Eval for
/// benchmark golden designs (held-out identifiers and widths so benchmark
/// problems are not literal corpus members).
enum class Pool { Train, Eval };

class TemplateLibrary {
 public:
  /// All template family names.
  static const std::vector<std::string>& families();

  /// Generates one sample of `family`.
  static RtlSample generate(const std::string& family, Rng& rng,
                            Pool pool = Pool::Train);

  /// Generates a sample of a uniformly random family.
  static RtlSample generate_any(Rng& rng, Pool pool = Pool::Train);
};

}  // namespace vsd::data
