// Data refinement pipeline (paper Fig. 2, left): split raw files into
// modules, filter incomplete / comment-dominated code, de-duplicate with
// MinHash+Jaccard, and gate on the Stagira-substitute syntax check.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vsd::data {

/// Extracts each complete `module ... endmodule` span (verbatim source
/// text).  Files that do not lex return no modules.
std::vector<std::string> split_modules(std::string_view file_text);

/// True when more than `threshold` of the non-whitespace bytes sit inside
/// comments.
bool mostly_comments(std::string_view code, double threshold = 0.6);

struct RefineStats {
  int raw_files = 0;
  int modules_split = 0;
  int dropped_comment_only = 0;
  int dropped_duplicates = 0;
  int dropped_syntax = 0;
  int kept = 0;
};

struct RefineResult {
  std::vector<std::string> cleaned;  // modules that passed every gate
  RefineStats stats;
};

/// Runs the full refinement over raw file contents.
RefineResult refine(const std::vector<std::string>& files,
                    double dedup_threshold = 0.9);

}  // namespace vsd::data
