#include "data/pipeline.hpp"

#include "data/minhash.hpp"
#include "vlog/lexer.hpp"
#include "vlog/parser.hpp"

namespace vsd::data {

std::vector<std::string> split_modules(std::string_view file_text) {
  std::vector<std::string> out;
  const vlog::LexResult lexed = vlog::lex(file_text);
  if (!lexed.ok) return out;
  std::size_t module_begin = 0;
  bool in_module = false;
  for (const vlog::Token& tok : lexed.tokens) {
    if (tok.is_kw(vlog::Keyword::Module) || tok.is_kw(vlog::Keyword::Macromodule)) {
      if (!in_module) {
        module_begin = tok.begin;
        in_module = true;
      }
    } else if (tok.is_kw(vlog::Keyword::Endmodule) && in_module) {
      out.emplace_back(file_text.substr(module_begin, tok.end - module_begin));
      in_module = false;
    }
  }
  return out;  // a trailing unterminated module is dropped (incomplete)
}

bool mostly_comments(std::string_view code, double threshold) {
  std::size_t comment_bytes = 0;
  std::size_t code_bytes = 0;
  std::size_t i = 0;
  while (i < code.size()) {
    if (code[i] == '/' && i + 1 < code.size() && code[i + 1] == '/') {
      while (i < code.size() && code[i] != '\n') {
        ++comment_bytes;
        ++i;
      }
    } else if (code[i] == '/' && i + 1 < code.size() && code[i + 1] == '*') {
      while (i < code.size() && !(code[i] == '*' && i + 1 < code.size() && code[i + 1] == '/')) {
        ++comment_bytes;
        ++i;
      }
      comment_bytes += 2;
      i += 2;
    } else {
      if (!std::isspace(static_cast<unsigned char>(code[i]))) ++code_bytes;
      ++i;
    }
  }
  const std::size_t total = comment_bytes + code_bytes;
  if (total == 0) return true;
  return static_cast<double>(comment_bytes) / static_cast<double>(total) > threshold;
}

RefineResult refine(const std::vector<std::string>& files, double dedup_threshold) {
  RefineResult out;
  out.stats.raw_files = static_cast<int>(files.size());

  std::vector<std::string> modules;
  for (const std::string& f : files) {
    for (std::string& m : split_modules(f)) {
      modules.push_back(std::move(m));
    }
  }
  out.stats.modules_split = static_cast<int>(modules.size());

  std::vector<std::string> filtered;
  for (std::string& m : modules) {
    if (mostly_comments(m)) {
      ++out.stats.dropped_comment_only;
      continue;
    }
    filtered.push_back(std::move(m));
  }

  const std::vector<std::size_t> kept_idx = dedup_by_minhash(filtered, dedup_threshold);
  out.stats.dropped_duplicates = static_cast<int>(filtered.size() - kept_idx.size());

  for (const std::size_t i : kept_idx) {
    if (!vlog::syntax_ok(filtered[i])) {
      ++out.stats.dropped_syntax;
      continue;
    }
    out.cleaned.push_back(std::move(filtered[i]));
  }
  out.stats.kept = static_cast<int>(out.cleaned.size());
  return out;
}

}  // namespace vsd::data
