// Dataset construction (paper Section III-A / IV-A1): synthetic raw corpus
// -> refinement pipeline -> Alpaca-style instruction/response pairs with
// [FRAG]-marked responses, plus fractional subsets for the data-size sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/pipeline.hpp"
#include "data/templates.hpp"
#include "spec/trainer.hpp"
#include "text/bpe.hpp"

namespace vsd::data {

struct DatasetItem {
  std::string instruction;  // NL description (GPT-4-summary substitute)
  std::string code;         // cleaned Verilog
  std::string marked_code;  // code with [FRAG] markers (Fig. 3)
  std::string module_name;
  std::string family;
};

struct Dataset {
  std::vector<DatasetItem> items;
  RefineStats refine_stats;
};

struct DatasetConfig {
  int target_items = 400;        // item count after refinement (approximate)
  std::uint64_t seed = 1;
  double corrupt_fraction = 0.05;   // truncated files (incomplete modules)
  double duplicate_fraction = 0.08; // injected near-duplicates
  double comment_fraction = 0.03;   // comment-dominated files
};

/// Generates a raw synthetic corpus, runs the Fig. 2 refinement, and
/// attaches descriptions + [FRAG] markings.
Dataset build_dataset(const DatasetConfig& cfg);

/// Random `fraction` of the items (paper trains on 1/4, 1/2, 3/4, full).
Dataset subset(const Dataset& full, double fraction, std::uint64_t seed);

/// Alpaca-style prompt text for an instruction.
std::string alpaca_prompt(const std::string& instruction);

/// Corpus for tokenizer training (prompts + marked code).
std::vector<std::string> tokenizer_corpus(const Dataset& ds);

/// Tokenises the dataset for the trainer.  `marked` selects the
/// [FRAG]-marked response (Ours) vs the plain response (NTP/Medusa).
std::vector<spec::EncodedExample> encode_for_training(const Dataset& ds,
                                                      const text::Tokenizer& tok,
                                                      bool marked);

}  // namespace vsd::data
