#include "data/dataset.hpp"

#include <algorithm>
#include <unordered_map>

#include "vlog/fragment.hpp"

namespace vsd::data {

namespace {

std::string trimmed(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

Dataset build_dataset(const DatasetConfig& cfg) {
  Rng rng(cfg.seed);
  // Oversample: refinement drops some raw material by design.
  const int raw_target = cfg.target_items + cfg.target_items / 4 + 8;

  std::vector<RtlSample> samples;
  samples.reserve(static_cast<std::size_t>(raw_target));
  for (int i = 0; i < raw_target; ++i) {
    samples.push_back(TemplateLibrary::generate_any(rng, Pool::Train));
  }

  // Assemble raw "files": mostly one module per file, some multi-module
  // files, plus injected corruption / duplicates / comment-only files to
  // exercise every gate of the refinement pipeline.
  std::unordered_map<std::string, const RtlSample*> by_code;
  std::vector<std::string> files;
  std::size_t next = 0;
  while (next < samples.size()) {
    const int per_file = rng.next_bool(0.2) ? 2 : 1;
    std::string file;
    for (int m = 0; m < per_file && next < samples.size(); ++m) {
      const RtlSample& s = samples[next++];
      by_code[trimmed(s.code)] = &s;
      if (rng.next_bool(0.3)) {
        file += "// " + s.family + " module\n";
      }
      file += s.code;
      file += "\n";
    }
    if (rng.next_bool(cfg.corrupt_fraction)) {
      file.resize(file.size() / 2);  // truncated: incomplete module
    }
    files.push_back(file);
    if (rng.next_bool(cfg.duplicate_fraction) && !files.empty()) {
      files.push_back(files[rng.next_below(files.size())]);
    }
    if (rng.next_bool(cfg.comment_fraction)) {
      files.push_back("// nothing but commentary in this file\n// module endmodule\n");
    }
  }

  RefineResult refined = refine(files);

  Dataset out;
  out.refine_stats = refined.stats;
  for (std::string& code : refined.cleaned) {
    const auto it = by_code.find(trimmed(code));
    if (it == by_code.end()) continue;  // e.g. a truncated-file survivor
    const RtlSample& s = *it->second;
    DatasetItem item;
    item.instruction = s.description;
    item.code = code;
    item.marked_code = vlog::mark_fragments(code);
    item.module_name = s.module_name;
    item.family = s.family;
    out.items.push_back(std::move(item));
    if (static_cast<int>(out.items.size()) >= cfg.target_items) break;
  }
  return out;
}

Dataset subset(const Dataset& full, double fraction, std::uint64_t seed) {
  Dataset out;
  out.refine_stats = full.refine_stats;
  if (fraction >= 1.0) {
    out.items = full.items;
    return out;
  }
  Rng rng(seed);
  std::vector<std::size_t> idx(full.items.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  const auto n = static_cast<std::size_t>(fraction * static_cast<double>(idx.size()));
  idx.resize(n);
  std::sort(idx.begin(), idx.end());
  out.items.reserve(n);
  for (const std::size_t i : idx) out.items.push_back(full.items[i]);
  return out;
}

std::string alpaca_prompt(const std::string& instruction) {
  return "### Instruction:\n" + instruction + "\n### Response:\n";
}

std::vector<std::string> tokenizer_corpus(const Dataset& ds) {
  std::vector<std::string> out;
  out.reserve(ds.items.size() * 2);
  for (const DatasetItem& item : ds.items) {
    out.push_back(alpaca_prompt(item.instruction));
    out.push_back(item.marked_code);
  }
  return out;
}

std::vector<spec::EncodedExample> encode_for_training(const Dataset& ds,
                                                      const text::Tokenizer& tok,
                                                      bool marked) {
  std::vector<spec::EncodedExample> out;
  out.reserve(ds.items.size());
  for (const DatasetItem& item : ds.items) {
    spec::EncodedExample ex;
    ex.prompt_ids = tok.encode(alpaca_prompt(item.instruction));
    ex.code_ids = tok.encode(marked ? item.marked_code : item.code,
                             /*add_bos=*/false, /*add_eos=*/true);
    out.push_back(std::move(ex));
  }
  return out;
}

}  // namespace vsd::data
