// MinHash signatures + Jaccard similarity for near-duplicate removal
// (paper Section III-A, reference [31]).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vsd::data {

/// MinHash over character k-shingles.
class MinHash {
 public:
  explicit MinHash(int num_hashes = 64, int shingle_len = 5, std::uint64_t seed = 7);

  /// Signature of a document.
  std::vector<std::uint64_t> signature(std::string_view doc) const;

  /// Estimated Jaccard similarity of two signatures.
  static double similarity(const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b);

  /// Exact Jaccard similarity over shingle sets (used to validate the
  /// estimator in tests).
  double exact_jaccard(std::string_view a, std::string_view b) const;

  int num_hashes() const { return static_cast<int>(a_.size()); }

 private:
  std::uint64_t shingle_hash(std::string_view s) const;

  int shingle_len_;
  std::vector<std::uint64_t> a_;
  std::vector<std::uint64_t> b_;
};

/// Removes near-duplicates: keeps the first occurrence of every group of
/// documents whose pairwise similarity is >= threshold.  Returns kept
/// indices in the original order.
std::vector<std::size_t> dedup_by_minhash(const std::vector<std::string>& docs,
                                          double threshold = 0.9,
                                          int num_hashes = 64);

}  // namespace vsd::data
