#include "data/minhash.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"

namespace vsd::data {

MinHash::MinHash(int num_hashes, int shingle_len, std::uint64_t seed)
    : shingle_len_(shingle_len) {
  Rng rng(seed);
  a_.reserve(static_cast<std::size_t>(num_hashes));
  b_.reserve(static_cast<std::size_t>(num_hashes));
  for (int i = 0; i < num_hashes; ++i) {
    a_.push_back(rng.next_u64() | 1);  // odd multiplier
    b_.push_back(rng.next_u64());
  }
}

std::uint64_t MinHash::shingle_hash(std::string_view s) const {
  // FNV-1a.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<std::uint64_t> MinHash::signature(std::string_view doc) const {
  std::vector<std::uint64_t> sig(a_.size(), ~0ull);
  if (doc.size() < static_cast<std::size_t>(shingle_len_)) {
    const std::uint64_t h = shingle_hash(doc);
    for (std::size_t i = 0; i < a_.size(); ++i) sig[i] = a_[i] * h + b_[i];
    return sig;
  }
  for (std::size_t pos = 0; pos + shingle_len_ <= doc.size(); ++pos) {
    const std::uint64_t h = shingle_hash(doc.substr(pos, static_cast<std::size_t>(shingle_len_)));
    for (std::size_t i = 0; i < a_.size(); ++i) {
      sig[i] = std::min(sig[i], a_[i] * h + b_[i]);
    }
  }
  return sig;
}

double MinHash::similarity(const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  int match = 0;
  for (std::size_t i = 0; i < a.size(); ++i) match += a[i] == b[i] ? 1 : 0;
  return static_cast<double>(match) / static_cast<double>(a.size());
}

double MinHash::exact_jaccard(std::string_view a, std::string_view b) const {
  auto shingles = [this](std::string_view doc) {
    std::unordered_set<std::uint64_t> out;
    if (doc.size() < static_cast<std::size_t>(shingle_len_)) {
      out.insert(shingle_hash(doc));
      return out;
    }
    for (std::size_t pos = 0; pos + shingle_len_ <= doc.size(); ++pos) {
      out.insert(shingle_hash(doc.substr(pos, static_cast<std::size_t>(shingle_len_))));
    }
    return out;
  };
  const auto sa = shingles(a);
  const auto sb = shingles(b);
  std::size_t inter = 0;
  for (const std::uint64_t h : sa) inter += sb.count(h);
  const std::size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<std::size_t> dedup_by_minhash(const std::vector<std::string>& docs,
                                          double threshold, int num_hashes) {
  const MinHash mh(num_hashes);
  std::vector<std::vector<std::uint64_t>> kept_sigs;
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const auto sig = mh.signature(docs[i]);
    bool duplicate = false;
    for (const auto& prev : kept_sigs) {
      if (MinHash::similarity(sig, prev) >= threshold) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      kept.push_back(i);
      kept_sigs.push_back(sig);
    }
  }
  return kept;
}

}  // namespace vsd::data
