// Minimal command-line parsing for the `vsd` driver: positionals plus
// `--name value` / `--name=value` options declared per subcommand.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace vsd::cli {

struct OptionSpec {
  const char* name;         // without the leading "--"
  bool takes_value = true;  // false => presence-only flag
  const char* help = "";
  const char* value_name = "N";
};

class Args {
 public:
  /// Parses `argv[0..argc)` (the tokens after the subcommand) against
  /// `spec`.  Unknown options and missing values are recorded in error().
  static Args parse(int argc, const char* const* argv, std::span<const OptionSpec> spec);

  const std::vector<std::string>& positional() const { return positional_; }
  bool has(const std::string& name) const { return values_.count(name) != 0; }

  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback);
  double get_double(const std::string& name, double fallback);

  /// First parse/convert failure, empty when everything was well-formed.
  /// Conversion errors surface after the corresponding get_* call, so
  /// check once after reading all options.
  const std::string& error() const { return error_; }

 private:
  std::vector<std::string> positional_;
  std::unordered_map<std::string, std::string> values_;
  std::string error_;
};

/// Prints a usage block for `spec` to stdout (shared by help and errors).
void print_options(std::span<const OptionSpec> spec);

}  // namespace vsd::cli
