#include "cli/args.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace vsd::cli {

namespace {

const OptionSpec* find(std::span<const OptionSpec> spec, const std::string& name) {
  for (const OptionSpec& o : spec) {
    if (name == o.name) return &o;
  }
  return nullptr;
}

}  // namespace

Args Args::parse(int argc, const char* const* argv, std::span<const OptionSpec> spec) {
  Args a;
  for (int i = 0; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      a.positional_.push_back(std::move(tok));
      continue;
    }
    std::string name = tok.substr(2);
    std::string value;
    bool inline_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      inline_value = true;
    }
    const OptionSpec* o = find(spec, name);
    if (o == nullptr) {
      a.error_ = "unknown option --" + name;
      return a;
    }
    if (!o->takes_value && inline_value) {
      a.error_ = "option --" + name + " does not take a value";
      return a;
    }
    if (o->takes_value && !inline_value) {
      if (i + 1 >= argc) {
        a.error_ = "option --" + name + " expects a value";
        return a;
      }
      value = argv[++i];
    }
    a.values_[name] = value;
  }
  return a;
}

std::string Args::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int Args::get_int(const std::string& name, int fallback) {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE ||
      v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max()) {
    if (error_.empty()) error_ = "option --" + name + " expects an integer, got '" + it->second + "'";
    return fallback;
  }
  return static_cast<int>(v);
}

double Args::get_double(const std::string& name, double fallback) {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    if (error_.empty()) error_ = "option --" + name + " expects a number, got '" + it->second + "'";
    return fallback;
  }
  return v;
}

void print_options(std::span<const OptionSpec> spec) {
  for (const OptionSpec& o : spec) {
    std::string left = "--" + std::string(o.name);
    if (o.takes_value) left += " <" + std::string(o.value_name) + ">";
    std::printf("  %-24s %s\n", left.c_str(), o.help);
  }
}

}  // namespace vsd::cli
