// Shared file slurping for the subcommands.
#pragma once

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace vsd::cli {

/// Reads a whole file into `out`; returns false (out untouched) on failure.
/// Callers print their own diagnostic so the subcommand name is in it.
inline bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace vsd::cli
