// `vsd serve` — concurrent batched decoding service.  Trains a miniature
// system (like `vsd decode`), then streams line-delimited prompts from
// stdin or --input through the serve::Scheduler: up to --batch requests
// decode concurrently (continuous batching, steps spread over --workers
// threads), each finishing independently.  Results are JSON objects, one
// per line on stdout, completion order; a final {"summary":...} line
// carries the throughput numbers.  All diagnostics go to stderr so stdout
// stays machine-readable.
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "data/dataset.hpp"
#include "eval/harness.hpp"
#include "nn/kernel_dispatch.hpp"
#include "nn/parallel.hpp"
#include "serve/check_stage.hpp"
#include "serve/json.hpp"
#include "serve/request_queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/session_cache.hpp"

namespace vsd::cli {

namespace {

constexpr OptionSpec kOptions[] = {
    {"input", true, "file of prompts, one per line (default: stdin)", "FILE"},
    {"workers", true, "decode worker threads (default 1)"},
    {"compute-threads", true,
     "GEMM compute-pool threads (default: $VSD_COMPUTE_THREADS or hardware\n"
     "                   concurrency; 1 = serial kernels, identical tokens)", "N"},
    {"kernel", true,
     "GEMM kernel tier: 'exact' (bit-identical accumulation, the default)\n"
     "                   or 'fast' (FMA/reassociated SIMD + grouped-int8\n"
     "                   compressed logit weights; tokens may differ)", "MODE"},
    {"batch", true, "max in-flight requests (default = workers)"},
    {"queue", true, "admission queue capacity (default 2*batch)"},
    {"cache", true, "prompt-prefix KV cache capacity, warm entries (default 16)"},
    {"no-cache", false, "disable the prompt-prefix KV cache"},
    {"kv-page", true, "KV arena page size, positions per page (default 16)", "N"},
    {"kv-pages-max", true,
     "KV arena page cap (default: derived from batch + cache)", "N"},
    {"no-fuse", false, "disable the fused batched forward (per-session matmuls)"},
    {"check", true,
     "comma-separated post-acceptance check stages over each completed\n"
     "                   candidate ('lint', 'elab', or 'lint,elab'): lint runs\n"
     "                   the flat semantic passes, elab elaborates and runs the\n"
     "                   hierarchical VSD-L2xx passes; diagnostics attach to the\n"
     "                   JSON result (tokens are unchanged; checks run on the\n"
     "                   pool)", "STAGES"},
    {"trace", true,
     "write a Chrome-trace-event JSON timeline (per-tick phase spans,\n"
     "                   per-request lifecycles; open in Perfetto)", "FILE"},
    {"stats-every", true,
     "print a one-line metrics snapshot to stderr every SECS seconds", "SECS"},
    {"method", true, "ours | medusa (default ours)", "NAME"},
    {"items", true, "corpus size (default 48)"},
    {"epochs", true, "training epochs (default 3)"},
    {"seed", true, "global seed (default 7)"},
    {"max-tokens", true, "generation budget per request (default 220)"},
    {"candidates", true, "top-k base candidates per speculative step (default 1)", "K"},
    {"temperature", true, "sampling temperature, 0 = greedy (default 0)", "T"},
    {"enc-dec", false, "use the encoder-decoder (CodeT5p-like) architecture"},
    {"no-code", false, "omit the generated code from the JSON results"},
    {"help", false, "show this help"},
};

bool blank(const std::string& line) {
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

}  // namespace

void print_serve_help() {
  std::printf(
      "usage: vsd serve [options] < prompts.txt\n\n"
      "Trains a miniature system, then serves line-delimited prompts with\n"
      "continuous batched speculative decoding: --batch requests in flight,\n"
      "each advanced one speculative step per scheduler tick across\n"
      "--workers threads, admitted and completed independently.  Results\n"
      "are JSON-lines on stdout (diagnostics on stderr), ending with a\n"
      "{\"summary\":...} line (requests/sec, ticks, worker/batch shape).\n"
      "KV storage is a paged arena shared by all in-flight sessions\n"
      "(--kv-page positions per page, --kv-pages-max pages); a radix-tree\n"
      "prompt-prefix cache shares pages by refcount so overlapping prompts\n"
      "skip the shared part of the prefill; size it with --cache N or turn\n"
      "it off with --no-cache (results are identical either way\n"
      "at temperature 0).  Each tick fuses the per-session logits matmuls\n"
      "into one [batch, D] x [D, V] pass (the batched-forward win);\n"
      "--no-fuse falls back to fully per-session steps, again with\n"
      "identical results.\n\n"
      "Observability: --trace FILE records every tick phase and request\n"
      "lifecycle as a Chrome-trace timeline (load in Perfetto or\n"
      "chrome://tracing); --stats-every SECS prints periodic one-line\n"
      "metric snapshots to stderr; the summary line always carries\n"
      "latency/queue-wait/TTFT/tick quantiles.  Both are off by default\n"
      "and cost nothing when off.\n\n"
      "options:\n");
  print_options(kOptions);
}

int cmd_serve(int argc, const char* const* argv) {
  Args args = Args::parse(argc, argv, kOptions);
  if (args.has("help")) {
    print_serve_help();
    return kExitOk;
  }

  spec::Method method = spec::Method::Ours;
  const std::string method_name = args.get("method", "ours");
  if (method_name == "medusa") {
    method = spec::Method::Medusa;
  } else if (method_name != "ours") {
    std::fprintf(stderr,
                 "vsd serve: method must be ours|medusa (speculative decoding "
                 "is the service path; got '%s')\n",
                 method_name.c_str());
    return kExitUsage;
  }

  const int workers = args.get_int("workers", 1);
  const int compute_threads = args.get_int("compute-threads", 0);  // 0 = ambient
  // Kernel tier: the ambient mode ($VSD_KERNEL or exact) unless --kernel
  // overrides it.  Parsed up front so a typo fails before training.
  nn::KernelMode kernel = nn::kernel_mode();
  const std::string kernel_name = args.get("kernel", "");
  const bool kernel_ok =
      !args.has("kernel") || nn::parse_kernel_mode(kernel_name.c_str(), kernel);
  const int batch = args.get_int("batch", workers);
  const int queue_cap = args.get_int("queue", 2 * std::max(1, batch));
  const bool use_cache = !args.has("no-cache");
  const bool fuse = !args.has("no-fuse");
  const int cache_cap = args.get_int("cache", 16);
  const int kv_page = args.get_int("kv-page", 16);
  const int kv_pages_max = args.get_int("kv-pages-max", 0);  // 0 = derived
  const std::string trace_path = args.get("trace", "");
  const double stats_every = args.get_double("stats-every", 0.0);
  const std::string check_list = args.get("check", "");
  // Validate the stage list before any training runs; the real stages are
  // built later, once the tokenizer they decode with exists.  The error
  // message (and the help text's stage list) derive from the registry.
  std::string check_err;
  if (args.has("check")) {
    serve::parse_check_stages(
        check_list, [](const spec::DecodeResult&) { return std::string(); },
        check_err);
  }
  eval::SystemConfig cfg;
  cfg.method = method;
  cfg.encoder_decoder = args.has("enc-dec");
  cfg.epochs = args.get_int("epochs", 3);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  data::DatasetConfig dcfg;
  dcfg.target_items = args.get_int("items", 48);
  dcfg.seed = cfg.seed;
  spec::DecodeConfig base_cfg;
  base_cfg.max_new_tokens = args.get_int("max-tokens", 220);
  base_cfg.num_candidates = args.get_int("candidates", 1);
  base_cfg.temperature = static_cast<float>(args.get_double("temperature", 0.0));
  const bool emit_code = !args.has("no-code");
  // Degenerate decode configs are rejected here, before any training, with
  // a message naming the flag — not mid-decode by an opaque check().
  const char* bad_arg = nullptr;
  if (!args.error().empty()) bad_arg = args.error().c_str();
  else if (!args.positional().empty()) bad_arg = "unexpected positional argument";
  else if (workers < 1 || batch < 1 || queue_cap < 1)
    bad_arg = "--workers/--batch/--queue must be >= 1";
  else if (args.has("compute-threads") && compute_threads < 1)
    bad_arg = "--compute-threads must be >= 1 (1 = serial kernels)";
  else if (!kernel_ok)
    bad_arg = "--kernel must be exact|fast (exact keeps bit-identical tokens)";
  else if (base_cfg.max_new_tokens < 0) bad_arg = "--max-tokens must be >= 0";
  else if (base_cfg.num_candidates < 1) bad_arg = "--candidates must be >= 1";
  else if (!(std::isfinite(base_cfg.temperature) && base_cfg.temperature >= 0.0f))
    bad_arg = "--temperature must be finite and >= 0 (0 = greedy)";
  else if (use_cache && cache_cap < 1)
    bad_arg = "--cache must be >= 1 (use --no-cache to disable)";
  else if (kv_page < 1) bad_arg = "--kv-page must be >= 1 (positions per page)";
  else if (args.has("kv-pages-max") && kv_pages_max < 1)
    bad_arg = "--kv-pages-max must be >= 1 (0 is reserved for the derived cap)";
  else if (args.has("stats-every") &&
           !(std::isfinite(stats_every) && stats_every > 0.0))
    bad_arg = "--stats-every must be > 0 (seconds between snapshots)";
  else if (args.has("trace") && trace_path.empty())
    bad_arg = "--trace needs a file path to write the timeline to";
  else if (!check_err.empty()) bad_arg = check_err.c_str();
  if (bad_arg != nullptr) {
    std::fprintf(stderr, "vsd serve: %s\n", bad_arg);
    return kExitUsage;
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  const std::string input = args.get("input", "");
  if (!input.empty()) {
    file.open(input);
    if (!file) {
      std::fprintf(stderr, "vsd serve: cannot read %s\n", input.c_str());
      return kExitUsage;
    }
    in = &file;
  }

  // Open (and thereby validate) the trace destination before any training
  // runs — an unwritable path should fail in milliseconds, not minutes.
  std::FILE* trace_out = nullptr;
  if (!trace_path.empty()) {
    trace_out = std::fopen(trace_path.c_str(), "w");
    if (trace_out == nullptr) {
      std::fprintf(stderr, "vsd serve: cannot write --trace output to %s\n",
                   trace_path.c_str());
      return kExitUsage;
    }
  }
  std::unique_ptr<obs::TraceWriter> tracer;
  if (trace_out != nullptr) tracer = std::make_unique<obs::TraceWriter>();
  obs::Registry& reg = obs::Registry::global();

  // Size the process-wide GEMM pool before any forward pass runs.  The
  // tokens served are bit-identical at every setting; only the clock moves.
  if (args.has("compute-threads")) nn::set_compute_threads(compute_threads);

  // --- train the system that backs the service ---------------------------
  // Training always runs the exact tier: the served weights must be
  // identical across kernel modes, so a --kernel fast run measures kernel
  // relaxation, not training divergence.  The scheduler asserts the
  // requested mode at run start.
  nn::set_kernel_mode(nn::KernelMode::Exact);
  const data::Dataset dataset = data::build_dataset(dcfg);
  const text::Tokenizer tokenizer =
      text::Tokenizer::train(data::tokenizer_corpus(dataset), {.vocab_size = 384});
  std::fprintf(stderr, "serve: dataset %zu items; training %s (%s) ...\n",
               dataset.items.size(), spec::method_name(method),
               cfg.encoder_decoder ? "enc-dec" : "dec-only");
  const eval::TrainedSystem sys = eval::train_system(cfg, dataset, tokenizer);
  std::fprintf(stderr,
               "serve: trained, loss %.3f -> %.3f; workers=%d batch=%d queue=%d "
               "compute-threads=%d\n",
               sys.train_stats.first_loss, sys.train_stats.final_loss, workers,
               batch, queue_cap, nn::compute_threads());

  // --- stream prompts into the scheduler ---------------------------------
  serve::RequestQueue queue(static_cast<std::size_t>(queue_cap));
  queue.attach_metrics(&reg);  // before the producer starts pushing
  std::uint64_t admitted = 0;
  std::thread producer([&] {
    std::string line;
    while (std::getline(*in, line)) {
      if (blank(line)) continue;
      eval::PreparedRequest prep =
          eval::prepare_request(sys, data::alpaca_prompt(line), base_cfg);
      serve::Request req;
      req.id = admitted;
      req.prompt = line;
      req.prompt_ids = std::move(prep.prompt_ids);
      req.config = prep.config;
      req.seed = cfg.seed ^ (0x5eedull + admitted * 0x9E3779B97F4A7C15ull);
      if (!queue.push(std::move(req))) break;  // queue closed underneath us
      ++admitted;
    }
    queue.close();
  });

  long total_tokens = 0;
  long total_steps = 0;
  std::unique_ptr<serve::SessionCache> cache;
  if (use_cache && cfg.encoder_decoder) {
    // Enc-dec prompts feed the encoder, not the KV rows the snapshots
    // capture; say so instead of printing a cache that can only miss.
    std::fprintf(stderr,
                 "serve: prompt-prefix cache is decoder-only; disabled for "
                 "--enc-dec\n");
  } else if (use_cache) {
    cache = std::make_unique<serve::SessionCache>(serve::SessionCacheOptions{
        .capacity = static_cast<std::size_t>(cache_cap)});
  }
  if (cache) cache->attach_metrics(&reg);
  // --check lint,elab: run each completed candidate through the named
  // stages on the shared pool.  Decoding is not gated on them — tokens are
  // bit-identical to a run without --check; the report rides along on the
  // JSON result.
  std::vector<serve::CheckStage> check_stages;
  if (args.has("check")) {
    std::string ignored;  // the list already validated above
    check_stages = serve::parse_check_stages(
        check_list,
        [&sys](const spec::DecodeResult& r) {
          return sys.tokenizer.decode(r.ids);
        },
        ignored);
  }
  serve::Scheduler scheduler(*sys.model, queue,
                             {.workers = workers,
                              .batch = batch,
                              .fuse = fuse,
                              .cache = cache.get(),
                              .kv_page = kv_page,
                              .kv_pages_max = kv_pages_max,
                              .kv_arena = nullptr,
                              .metrics = &reg,
                              .trace = tracer.get(),
                              .checks = check_stages,
                              .kernel = kernel});

  // Periodic one-line snapshots (--stats-every): a sampling thread reads
  // the registry — every read is lock-free or a brief registry-map lock —
  // so it never perturbs the scheduler.
  std::atomic<bool> stats_stop{false};
  std::thread reporter;
  if (args.has("stats-every")) {
    reporter = std::thread([&reg, stats_every, &stats_stop] {
      const auto period = std::chrono::duration<double>(stats_every);
      auto next = std::chrono::steady_clock::now() + period;
      while (!stats_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (std::chrono::steady_clock::now() < next) continue;
        next += period;
        const obs::HistogramStats lat =
            reg.histogram("serve.request.latency_s").stats();
        const obs::HistogramStats tick = reg.histogram("serve.tick_s").stats();
        std::fprintf(stderr,
                     "serve: stats completed=%ld in_flight=%.0f queue=%.0f "
                     "latency{p50=%.3fs p99=%.3fs} tick_p50=%.4fs "
                     "kv_pages=%.0f\n",
                     reg.counter("serve.requests.completed").value(),
                     reg.gauge("serve.in_flight").value(),
                     reg.gauge("serve.queue.depth").value(), lat.p50, lat.p99,
                     tick.p50, reg.gauge("serve.kv.pages_in_use").value());
      }
    });
  }

  int exit_code = kExitOk;
  serve::ServeStats stats;
  try {
    stats = scheduler.run([&](const serve::Request& req, spec::DecodeResult r,
                              const serve::CheckReport* check) {
      total_tokens += static_cast<long>(r.ids.size());
      total_steps += r.steps;
      std::string line = "{\"id\":" + std::to_string(req.id) +
                         ",\"prompt\":\"" + serve::json_escape(req.prompt) +
                         "\",\"tokens\":" + std::to_string(r.ids.size()) +
                         ",\"steps\":" + std::to_string(r.steps);
      char buf[64];
      std::snprintf(buf, sizeof(buf), ",\"tok_per_step\":%.3f,\"wall_s\":%.4f",
                    r.mean_accepted(), r.wall_seconds);
      line += buf;
      line += r.hit_eos ? ",\"eos\":true" : ",\"eos\":false";
      if (check != nullptr) {
        std::snprintf(buf, sizeof(buf), ",\"total_s\":%.4f,\"stages\":[",
                      check->total_seconds());
        line += ",\"check\":{\"pass\":" +
                std::string(check->pass() ? "true" : "false") + buf;
        for (std::size_t i = 0; i < check->stages.size(); ++i) {
          const serve::CheckOutcome& s = check->stages[i];
          std::snprintf(buf, sizeof(buf),
                        ",\"errors\":%d,\"warnings\":%d,\"wall_s\":%.4f",
                        s.errors, s.warnings, s.wall_seconds);
          line += std::string(i == 0 ? "" : ",") + "{\"stage\":\"" + s.stage +
                  "\",\"pass\":" + (s.pass ? "true" : "false") + buf +
                  ",\"diagnostics\":" + s.diagnostics_json + "}";
        }
        line += "]}";
      }
      if (emit_code) {
        line += ",\"code\":\"" +
                serve::json_escape(sys.tokenizer.decode(r.ids)) + "\"";
      }
      line += "}";
      std::printf("%s\n", line.c_str());
      std::fflush(stdout);
    });
  } catch (const Error& e) {
    std::fprintf(stderr, "vsd serve: decode error: %s\n", e.what());
    queue.close();
    exit_code = kExitCheckFailed;
  }
  if (exit_code != kExitOk) {
    // The producer may be blocked in getline() on an interactive stdin,
    // which close() cannot interrupt — joining would wedge the process.
    // This is a fatal service error: flush what we have and leave without
    // running destructors the blocked thread could still be touching.
    std::fflush(stdout);
    std::fflush(stderr);
    std::_Exit(exit_code);
  }
  producer.join();
  stats_stop.store(true, std::memory_order_relaxed);
  if (reporter.joinable()) reporter.join();

  const double wall = stats.wall_seconds > 0.0 ? stats.wall_seconds : 1e-12;
  std::printf(
      "{\"summary\":{\"requests\":%d,\"workers\":%d,\"compute_threads\":%d,"
      "\"batch\":%d,"
      "\"max_in_flight\":%d,\"ticks\":%ld,\"total_tokens\":%ld,"
      "\"total_steps\":%ld,\"wall_s\":%.4f,\"requests_per_sec\":%.3f,"
      "\"tokens_per_sec\":%.2f,\"prefill_positions\":%ld,"
      "\"cached_positions\":%ld,\"fused\":%s,\"fused_rows\":%ld,"
      "\"fused_passes\":%ld",
      stats.completed, workers, nn::compute_threads(), batch,
      stats.max_in_flight, stats.ticks,
      total_tokens, total_steps, stats.wall_seconds,
      stats.completed / wall, total_tokens / wall, stats.prefill_positions,
      stats.cached_positions, fuse ? "true" : "false", stats.fused_rows,
      stats.fused_passes);
  std::printf(
      ",\"kernel\":{\"mode\":\"%s\",\"isa\":\"%s\",\"quant_matrices\":%d,"
      "\"quant_int8_bytes\":%zu,\"quant_fp32_bytes\":%zu,"
      "\"quant_max_abs_err\":%.6f}",
      nn::kernel_mode_name(stats.kernel), nn::isa_name(stats.isa),
      stats.quant.matrices, stats.quant.int8_bytes, stats.quant.fp32_bytes,
      stats.quant.max_abs_error);
  std::printf(
      ",\"latency\":{\"count\":%ld,\"mean_s\":%.4f,\"p50_s\":%.4f,"
      "\"p95_s\":%.4f,\"p99_s\":%.4f,\"max_s\":%.4f}",
      stats.latency.count, stats.latency.mean(), stats.latency.p50,
      stats.latency.p95, stats.latency.p99, stats.latency.max);
  std::printf(
      ",\"obs\":{\"queue_wait_p50_s\":%.4f,\"queue_wait_p99_s\":%.4f,"
      "\"ttft_p50_s\":%.4f,\"ttft_p99_s\":%.4f,\"tick_p50_s\":%.5f,"
      "\"tick_p99_s\":%.5f,\"occupancy_mean\":%.3f,\"trace_events\":%zu",
      stats.queue_wait.p50, stats.queue_wait.p99, stats.ttft.p50,
      stats.ttft.p99, stats.tick.p50, stats.tick.p99, stats.occupancy_mean,
      tracer ? tracer->events() : std::size_t{0});
  if (!check_stages.empty()) {
    std::printf(
        ",\"check\":{\"pass\":%d,\"fail\":%d,\"p50_s\":%.5f,\"p99_s\":%.5f,"
        "\"total_s\":%.4f,\"stages\":[",
        stats.checks_pass, stats.checks_fail, stats.check.p50, stats.check.p99,
        stats.check.mean() * static_cast<double>(stats.check.count));
    for (std::size_t i = 0; i < stats.check_stages.size(); ++i) {
      const serve::CheckStageStats& ss = stats.check_stages[i];
      std::printf(
          "%s{\"stage\":\"%s\",\"pass\":%d,\"fail\":%d,\"p50_s\":%.5f,"
          "\"p99_s\":%.5f}",
          i == 0 ? "" : ",", ss.name.c_str(), ss.pass, ss.fail, ss.latency.p50,
          ss.latency.p99);
    }
    std::printf("]}");
  }
  std::printf("}");
  if (cache) {
    const serve::SessionCacheStats cs = cache->stats();
    std::printf(
        ",\"cache\":{\"capacity\":%d,\"entries\":%zu,\"bytes\":%zu,"
        "\"hits\":%ld,\"misses\":%ld,\"evictions\":%ld}",
        cache_cap, cs.entries, cs.bytes, cs.hits, cs.misses, cs.evictions);
  }
  std::printf(
      ",\"kv_arena\":{\"page\":%d,\"page_bytes\":%zu,\"pages_total\":%zu,"
      "\"pages_shared\":%zu,\"pages_free\":%zu,\"pages_cow_cloned\":%ld,"
      "\"bytes\":%zu}",
      stats.kv.page, stats.kv.page_bytes, stats.kv.pages_total,
      stats.kv.pages_shared, stats.kv.pages_free, stats.kv.pages_cow_cloned,
      stats.kv.bytes);
  std::printf("}}\n");
  if (tracer) {
    tracer->write(trace_out);
    std::fclose(trace_out);
    std::fprintf(stderr, "serve: wrote trace (%zu events, %zu dropped) to %s\n",
                 tracer->events(), tracer->dropped(), trace_path.c_str());
  }
  return kExitOk;
}

}  // namespace vsd::cli
