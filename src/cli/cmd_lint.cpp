// `vsd lint` — parse Verilog sources, run the semantic lint passes
// (vlog/lint.hpp), report structured diagnostics, and optionally show the
// paper's Fig.-3 views (AST keywords, canonical print, [FRAG] marking).
// With --elab each file is also elaborated and the hierarchical L2xx
// passes (vlog/dataflow.hpp) run over the flattened design.
// Accepts files and directories (scanned recursively for *.v); with no
// inputs it lints a built-in example module.
//
// Exit codes: 0 clean (warnings allowed), 2 syntax or semantic errors,
// 4 warnings under --werror, 5 I/O failure, 1 bad usage.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "cli/io.hpp"
#include "serve/json.hpp"
#include "vlog/dataflow.hpp"
#include "vlog/fragment.hpp"
#include "vlog/lint.hpp"
#include "vlog/parser.hpp"
#include "vlog/printer.hpp"
#include "vlog/significant.hpp"

namespace vsd::cli {

namespace {

constexpr OptionSpec kOptions[] = {
    {"keywords", false, "print extracted AST keywords per module"},
    {"print", false, "print the canonical pretty-printed source"},
    {"frag", false, "print the [FRAG]-marked training-data view"},
    {"elab", false, "elaborate and run the hierarchical L2xx passes too"},
    {"top", true, "root module for --elab (default: inferred roots)", "NAME"},
    {"quiet", false, "only report errors"},
    {"json", false, "emit a JSON array with one object per input"},
    {"werror", false, "treat lint warnings as errors (exit 4)"},
    {"syntax-only", false, "parse only; skip the semantic lint passes"},
    {"help", false, "show this help"},
};

constexpr const char* kBuiltin = R"(
module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
)";

struct Input {
  std::string label;
  std::string source;
};

/// Expands files/directories into lintable sources; returns false on I/O
/// failure (already reported).
bool collect(const std::vector<std::string>& paths, std::vector<Input>& out) {
  namespace fs = std::filesystem;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> found;
      // Explicit increment(ec): the range-for form throws on unreadable
      // subdirectories instead of reaching the error check.
      fs::recursive_directory_iterator it(
          p, fs::directory_options::skip_permission_denied, ec);
      for (; !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (it->is_regular_file() && it->path().extension() == ".v") {
          found.push_back(it->path());
        }
      }
      if (ec) {
        std::fprintf(stderr, "vsd lint: cannot scan %s: %s\n", p.c_str(),
                     ec.message().c_str());
        return false;
      }
      std::sort(found.begin(), found.end());
      if (found.empty()) {
        std::fprintf(stderr, "vsd lint: no .v files under %s\n", p.c_str());
      }
      for (const fs::path& f : found) {
        Input in{f.string(), {}};
        if (!read_file(f, in.source)) {
          std::fprintf(stderr, "vsd lint: cannot open %s\n", f.string().c_str());
          return false;
        }
        out.push_back(std::move(in));
      }
    } else {
      Input in{p, {}};
      if (!read_file(p, in.source)) {
        std::fprintf(stderr, "vsd lint: cannot open %s\n", p.c_str());
        return false;
      }
      out.push_back(std::move(in));
    }
  }
  return true;
}

}  // namespace

void print_lint_help() {
  std::printf(
      "usage: vsd lint [options] [file.v | directory]...\n\n"
      "Parses each source (directories are scanned recursively for *.v),\n"
      "runs the semantic lint passes (VSD-Lxxx diagnostics; see README\n"
      "\"Static analysis\"), and reports findings.  With --elab each file\n"
      "is additionally elaborated and the hierarchical dataflow passes\n"
      "(VSD-L2xx: comb loops, CDC, port contracts) run over the flattened\n"
      "design.  With no inputs, lints a built-in example.\n\n"
      "exit codes:\n"
      "  %d  clean (warnings/infos do not fail without --werror)\n"
      "  %d  bad usage\n"
      "  %d  syntax or semantic-lint errors\n"
      "  %d  warnings present and --werror given\n"
      "  %d  I/O failure (unreadable file or directory)\n\noptions:\n",
      kExitOk, kExitUsage, kExitSyntax, kExitLintWarnings, kExitIo);
  print_options(kOptions);
}

int cmd_lint(int argc, const char* const* argv) {
  Args args = Args::parse(argc, argv, kOptions);
  if (args.has("help")) {
    print_lint_help();
    return kExitOk;
  }
  if (!args.error().empty()) {
    std::fprintf(stderr, "vsd lint: %s\n", args.error().c_str());
    return kExitUsage;
  }
  const bool quiet = args.has("quiet");
  const bool json = args.has("json");
  const bool werror = args.has("werror");
  const bool syntax_only = args.has("syntax-only");
  const bool elab = args.has("elab");
  const std::string top = args.get("top", "");
  if (!top.empty() && !elab) {
    std::fprintf(stderr, "vsd lint: --top requires --elab\n");
    return kExitUsage;
  }
  if (elab && syntax_only) {
    std::fprintf(stderr, "vsd lint: --elab conflicts with --syntax-only\n");
    return kExitUsage;
  }

  std::vector<Input> inputs;
  if (args.positional().empty()) {
    inputs.push_back({"<built-in example>", kBuiltin});
  } else if (!collect(args.positional(), inputs)) {
    return kExitIo;
  }

  int syntax_bad = 0;
  int total_errors = 0;
  int total_warnings = 0;
  std::vector<std::string> json_entries;
  for (const Input& input : inputs) {
    vlog::ParseResult result = vlog::parse(input.source);
    // The AST is shared from here: --elab hands it to the elaborator, which
    // keeps it alive alongside the design it borrows from.
    const std::shared_ptr<const vlog::SourceUnit> unit(std::move(result.unit));
    vlog::LintResult lint;
    if (result.ok && !syntax_only) {
      lint = vlog::lint_unit(*unit);
      if (elab) {
        lint.merge(vlog::analyze_unit(unit, top));
        lint.sort_by_location();
      }
    } else if (!result.ok) {
      lint.add(vlog::Severity::Error, "VSD-L001", result.error_line,
               "syntax error: " + result.error);
    }
    total_errors += lint.errors();
    total_warnings += lint.warnings();
    if (!result.ok) ++syntax_bad;

    if (json) {
      json_entries.push_back(
          "{\"file\":\"" + serve::json_escape(input.label) +
          "\",\"ok\":" + (lint.has_errors() ? "false" : "true") +
          ",\"errors\":" + std::to_string(lint.errors()) +
          ",\"warnings\":" + std::to_string(lint.warnings()) +
          ",\"infos\":" + std::to_string(lint.infos()) +
          ",\"diagnostics\":" + vlog::diagnostics_json(lint.diagnostics()) +
          "}");
      continue;
    }

    if (!result.ok) {
      std::printf("%s: SYNTAX ERROR at line %d: %s\n", input.label.c_str(),
                  result.error_line, result.error.c_str());
      continue;
    }
    if (!quiet) {
      std::printf("%s: %s (%zu module(s))\n", input.label.c_str(),
                  lint.has_errors() ? "LINT ERRORS" : "OK",
                  unit->modules.size());
      if (args.has("keywords")) {
        for (const auto& m : unit->modules) {
          std::printf("  %s:", m->name.c_str());
          for (const auto& kw : vlog::extract_ast_keywords(*m)) {
            std::printf(" %s", kw.c_str());
          }
          std::printf("\n");
        }
      }
      if (args.has("print")) {
        std::printf("%s", vlog::print_source(*unit).c_str());
      }
      if (args.has("frag")) {
        std::printf("%s\n", vlog::mark_fragments(input.source).c_str());
      }
    }
    for (const vlog::Diagnostic& d : lint.diagnostics()) {
      if (quiet && d.severity != vlog::Severity::Error) continue;
      const std::string where =
          d.module.empty() ? std::string() : " [" + d.module +
              (d.signal.empty() ? "" : "." + d.signal) + "]";
      std::printf("%s:%d: %s %s%s: %s\n", input.label.c_str(), d.line,
                  vlog::severity_name(d.severity), d.code.c_str(),
                  where.c_str(), d.message.c_str());
    }
  }
  if (json) {
    std::printf("[");
    for (std::size_t i = 0; i < json_entries.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : ",\n ", json_entries[i].c_str());
    }
    std::printf("]\n");
  }
  if (!quiet && !json) {
    std::printf("%zu file(s), %d with syntax errors, %d lint error(s), "
                "%d warning(s)\n",
                inputs.size(), syntax_bad, total_errors, total_warnings);
  }
  if (total_errors > 0) return kExitSyntax;
  if (werror && total_warnings > 0) return kExitLintWarnings;
  return kExitOk;
}

}  // namespace vsd::cli
