// `vsd lint` — parse Verilog sources, report syntax errors, and optionally
// show the paper's Fig.-3 views (AST keywords, canonical print, [FRAG]
// marking).  Accepts files and directories (scanned recursively for *.v);
// with no inputs it lints a built-in example module.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "cli/io.hpp"
#include "vlog/fragment.hpp"
#include "vlog/parser.hpp"
#include "vlog/printer.hpp"
#include "vlog/significant.hpp"

namespace vsd::cli {

namespace {

constexpr OptionSpec kOptions[] = {
    {"keywords", false, "print extracted AST keywords per module"},
    {"print", false, "print the canonical pretty-printed source"},
    {"frag", false, "print the [FRAG]-marked training-data view"},
    {"quiet", false, "only report errors"},
    {"help", false, "show this help"},
};

constexpr const char* kBuiltin = R"(
module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
)";

struct Input {
  std::string label;
  std::string source;
};

/// Expands files/directories into lintable sources; returns false on I/O
/// failure (already reported).
bool collect(const std::vector<std::string>& paths, std::vector<Input>& out) {
  namespace fs = std::filesystem;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> found;
      // Explicit increment(ec): the range-for form throws on unreadable
      // subdirectories instead of reaching the error check.
      fs::recursive_directory_iterator it(
          p, fs::directory_options::skip_permission_denied, ec);
      for (; !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (it->is_regular_file() && it->path().extension() == ".v") {
          found.push_back(it->path());
        }
      }
      if (ec) {
        std::fprintf(stderr, "vsd lint: cannot scan %s: %s\n", p.c_str(),
                     ec.message().c_str());
        return false;
      }
      std::sort(found.begin(), found.end());
      if (found.empty()) {
        std::fprintf(stderr, "vsd lint: no .v files under %s\n", p.c_str());
      }
      for (const fs::path& f : found) {
        Input in{f.string(), {}};
        if (!read_file(f, in.source)) {
          std::fprintf(stderr, "vsd lint: cannot open %s\n", f.string().c_str());
          return false;
        }
        out.push_back(std::move(in));
      }
    } else {
      Input in{p, {}};
      if (!read_file(p, in.source)) {
        std::fprintf(stderr, "vsd lint: cannot open %s\n", p.c_str());
        return false;
      }
      out.push_back(std::move(in));
    }
  }
  return true;
}

}  // namespace

void print_lint_help() {
  std::printf("usage: vsd lint [options] [file.v | directory]...\n\n"
              "Parses each source (directories are scanned recursively for *.v)\n"
              "and reports syntax errors.  With no inputs, lints a built-in\n"
              "example.  Exit code: 0 all clean, %d on syntax errors.\n\noptions:\n",
              kExitSyntax);
  print_options(kOptions);
}

int cmd_lint(int argc, const char* const* argv) {
  Args args = Args::parse(argc, argv, kOptions);
  if (args.has("help")) {
    print_lint_help();
    return kExitOk;
  }
  if (!args.error().empty()) {
    std::fprintf(stderr, "vsd lint: %s\n", args.error().c_str());
    return kExitUsage;
  }
  const bool quiet = args.has("quiet");

  std::vector<Input> inputs;
  if (args.positional().empty()) {
    inputs.push_back({"<built-in example>", kBuiltin});
  } else if (!collect(args.positional(), inputs)) {
    return kExitUsage;
  }

  int bad = 0;
  for (const Input& input : inputs) {
    const vlog::ParseResult result = vlog::parse(input.source);
    if (!result.ok) {
      std::printf("%s: SYNTAX ERROR at line %d: %s\n", input.label.c_str(),
                  result.error_line, result.error.c_str());
      ++bad;
      continue;
    }
    if (!quiet) {
      std::printf("%s: OK (%zu module(s))\n", input.label.c_str(),
                  result.unit->modules.size());
      if (args.has("keywords")) {
        for (const auto& m : result.unit->modules) {
          std::printf("  %s:", m->name.c_str());
          for (const auto& kw : vlog::extract_ast_keywords(*m)) {
            std::printf(" %s", kw.c_str());
          }
          std::printf("\n");
        }
      }
      if (args.has("print")) {
        std::printf("%s", vlog::print_source(*result.unit).c_str());
      }
      if (args.has("frag")) {
        std::printf("%s\n", vlog::mark_fragments(input.source).c_str());
      }
    }
  }
  if (!quiet) {
    std::printf("%zu file(s), %d with syntax errors\n", inputs.size(), bad);
  }
  return bad == 0 ? kExitOk : kExitSyntax;
}

}  // namespace vsd::cli
