// `vsd lint` — parse Verilog sources, run the semantic lint passes
// (vlog/lint.hpp), report structured diagnostics, and optionally show the
// paper's Fig.-3 views (AST keywords, canonical print, [FRAG] marking).
// Accepts files and directories (scanned recursively for *.v); with no
// inputs it lints a built-in example module.
//
// Exit codes: 0 clean (warnings allowed), 2 syntax or semantic errors,
// 4 warnings under --werror, 5 I/O failure, 1 bad usage.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "cli/io.hpp"
#include "serve/json.hpp"
#include "vlog/fragment.hpp"
#include "vlog/lint.hpp"
#include "vlog/parser.hpp"
#include "vlog/printer.hpp"
#include "vlog/significant.hpp"

namespace vsd::cli {

namespace {

constexpr OptionSpec kOptions[] = {
    {"keywords", false, "print extracted AST keywords per module"},
    {"print", false, "print the canonical pretty-printed source"},
    {"frag", false, "print the [FRAG]-marked training-data view"},
    {"quiet", false, "only report errors"},
    {"json", false, "emit one JSON object per input (machine-readable)"},
    {"werror", false, "treat lint warnings as errors (exit 4)"},
    {"syntax-only", false, "parse only; skip the semantic lint passes"},
    {"help", false, "show this help"},
};

constexpr const char* kBuiltin = R"(
module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
)";

struct Input {
  std::string label;
  std::string source;
};

/// Expands files/directories into lintable sources; returns false on I/O
/// failure (already reported).
bool collect(const std::vector<std::string>& paths, std::vector<Input>& out) {
  namespace fs = std::filesystem;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      std::vector<fs::path> found;
      // Explicit increment(ec): the range-for form throws on unreadable
      // subdirectories instead of reaching the error check.
      fs::recursive_directory_iterator it(
          p, fs::directory_options::skip_permission_denied, ec);
      for (; !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (it->is_regular_file() && it->path().extension() == ".v") {
          found.push_back(it->path());
        }
      }
      if (ec) {
        std::fprintf(stderr, "vsd lint: cannot scan %s: %s\n", p.c_str(),
                     ec.message().c_str());
        return false;
      }
      std::sort(found.begin(), found.end());
      if (found.empty()) {
        std::fprintf(stderr, "vsd lint: no .v files under %s\n", p.c_str());
      }
      for (const fs::path& f : found) {
        Input in{f.string(), {}};
        if (!read_file(f, in.source)) {
          std::fprintf(stderr, "vsd lint: cannot open %s\n", f.string().c_str());
          return false;
        }
        out.push_back(std::move(in));
      }
    } else {
      Input in{p, {}};
      if (!read_file(p, in.source)) {
        std::fprintf(stderr, "vsd lint: cannot open %s\n", p.c_str());
        return false;
      }
      out.push_back(std::move(in));
    }
  }
  return true;
}

}  // namespace

void print_lint_help() {
  std::printf(
      "usage: vsd lint [options] [file.v | directory]...\n\n"
      "Parses each source (directories are scanned recursively for *.v),\n"
      "runs the semantic lint passes (VSD-Lxxx diagnostics; see README\n"
      "\"Static analysis\"), and reports findings.  With no inputs, lints a\n"
      "built-in example.\n\n"
      "exit codes:\n"
      "  %d  clean (warnings/infos do not fail without --werror)\n"
      "  %d  bad usage\n"
      "  %d  syntax or semantic-lint errors\n"
      "  %d  warnings present and --werror given\n"
      "  %d  I/O failure (unreadable file or directory)\n\noptions:\n",
      kExitOk, kExitUsage, kExitSyntax, kExitLintWarnings, kExitIo);
  print_options(kOptions);
}

int cmd_lint(int argc, const char* const* argv) {
  Args args = Args::parse(argc, argv, kOptions);
  if (args.has("help")) {
    print_lint_help();
    return kExitOk;
  }
  if (!args.error().empty()) {
    std::fprintf(stderr, "vsd lint: %s\n", args.error().c_str());
    return kExitUsage;
  }
  const bool quiet = args.has("quiet");
  const bool json = args.has("json");
  const bool werror = args.has("werror");
  const bool syntax_only = args.has("syntax-only");

  std::vector<Input> inputs;
  if (args.positional().empty()) {
    inputs.push_back({"<built-in example>", kBuiltin});
  } else if (!collect(args.positional(), inputs)) {
    return kExitIo;
  }

  int syntax_bad = 0;
  int total_errors = 0;
  int total_warnings = 0;
  for (const Input& input : inputs) {
    const vlog::ParseResult result = vlog::parse(input.source);
    vlog::LintResult lint;
    if (result.ok && !syntax_only) {
      lint = vlog::lint_unit(*result.unit);
    } else if (!result.ok) {
      lint.add(vlog::Severity::Error, "VSD-L001", result.error_line,
               "syntax error: " + result.error);
    }
    total_errors += lint.errors();
    total_warnings += lint.warnings();
    if (!result.ok) ++syntax_bad;

    if (json) {
      std::string line = "{\"file\":\"" + serve::json_escape(input.label) +
                         "\",\"ok\":" + (lint.has_errors() ? "false" : "true") +
                         ",\"errors\":" + std::to_string(lint.errors()) +
                         ",\"warnings\":" + std::to_string(lint.warnings()) +
                         ",\"infos\":" + std::to_string(lint.infos()) +
                         ",\"diagnostics\":" +
                         vlog::diagnostics_json(lint.diagnostics()) + "}";
      std::printf("%s\n", line.c_str());
      continue;
    }

    if (!result.ok) {
      std::printf("%s: SYNTAX ERROR at line %d: %s\n", input.label.c_str(),
                  result.error_line, result.error.c_str());
      continue;
    }
    if (!quiet) {
      std::printf("%s: %s (%zu module(s))\n", input.label.c_str(),
                  lint.has_errors() ? "LINT ERRORS" : "OK",
                  result.unit->modules.size());
      if (args.has("keywords")) {
        for (const auto& m : result.unit->modules) {
          std::printf("  %s:", m->name.c_str());
          for (const auto& kw : vlog::extract_ast_keywords(*m)) {
            std::printf(" %s", kw.c_str());
          }
          std::printf("\n");
        }
      }
      if (args.has("print")) {
        std::printf("%s", vlog::print_source(*result.unit).c_str());
      }
      if (args.has("frag")) {
        std::printf("%s\n", vlog::mark_fragments(input.source).c_str());
      }
    }
    for (const vlog::Diagnostic& d : lint.diagnostics()) {
      if (quiet && d.severity != vlog::Severity::Error) continue;
      const std::string where =
          d.module.empty() ? std::string() : " [" + d.module +
              (d.signal.empty() ? "" : "." + d.signal) + "]";
      std::printf("%s:%d: %s %s%s: %s\n", input.label.c_str(), d.line,
                  vlog::severity_name(d.severity), d.code.c_str(),
                  where.c_str(), d.message.c_str());
    }
  }
  if (!quiet && !json) {
    std::printf("%zu file(s), %d with syntax errors, %d lint error(s), "
                "%d warning(s)\n",
                inputs.size(), syntax_bad, total_errors, total_warnings);
  }
  if (total_errors > 0) return kExitSyntax;
  if (werror && total_warnings > 0) return kExitLintWarnings;
  return kExitOk;
}

}  // namespace vsd::cli
