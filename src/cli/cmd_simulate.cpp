// `vsd simulate` — run a self-checking testbench through the event-driven
// simulator, or (with --diff) run the harness's differential functional
// check between a candidate and a golden design.  With no input file it
// simulates a built-in counter + testbench.
#include <cstdio>
#include <string>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "cli/io.hpp"
#include "sim/check.hpp"
#include "vlog/parser.hpp"

namespace vsd::cli {

namespace {

constexpr OptionSpec kOptions[] = {
    {"top", true, "top module to elaborate (default: last module in the file)", "NAME"},
    {"diff", true, "differential check: golden design to compare against", "FILE"},
    {"cycles", true, "clock cycles compared in --diff mode (default 64)"},
    {"vectors", true, "random vectors compared in --diff mode (default 64)"},
    {"seed", true, "stimulus seed for --diff mode (default 1)"},
    {"quiet", false, "suppress the $display log"},
    {"help", false, "show this help"},
};

constexpr const char* kBuiltin = R"(
module counter(input clk, input rst, output reg [3:0] q);
  always @(posedge clk or posedge rst)
    if (rst) q <= 4'd0;
    else q <= q + 4'd1;
endmodule

module tb;
  reg clk, rst;
  wire [3:0] q;
  counter dut (.clk(clk), .rst(rst), .q(q));
  initial begin
    clk = 0;
    forever #5 clk = ~clk;
  end
  initial begin
    rst = 1;
    #12 rst = 0;
    #100;
    if (q === 4'd10) $display("TEST PASSED");
    else $display("TEST FAILED: expected 10, got %d", q);
    $finish;
  end
endmodule
)";

bool read_input(const std::string& path, std::string& out) {
  if (read_file(path, out)) return true;
  std::fprintf(stderr, "vsd simulate: cannot open %s\n", path.c_str());
  return false;
}

/// Default top: name of the last module in the source (the testbench
/// convention).  Empty on parse failure — the caller reports it.
std::string last_module(const std::string& source) {
  const vlog::ParseResult r = vlog::parse(source);
  if (!r.ok || r.unit->modules.empty()) return {};
  return r.unit->modules.back()->name;
}

}  // namespace

void print_simulate_help() {
  std::printf("usage: vsd simulate [options] [file.v]\n\n"
              "Runs the file's self-checking testbench ($display protocol) and\n"
              "reports the verdict; with --diff, compares the file against a\n"
              "golden design cycle by cycle instead.  With no file, simulates a\n"
              "built-in counter testbench.  Exit code: 0 passed, %d compile\n"
              "error, %d test failed or designs differ.\n\noptions:\n",
              kExitSyntax, kExitCheckFailed);
  print_options(kOptions);
}

int cmd_simulate(int argc, const char* const* argv) {
  Args args = Args::parse(argc, argv, kOptions);
  if (args.has("help")) {
    print_simulate_help();
    return kExitOk;
  }
  sim::DiffOptions dopts;
  dopts.cycles = args.get_int("cycles", dopts.cycles);
  dopts.vectors = args.get_int("vectors", dopts.vectors);
  dopts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (!args.error().empty() || args.positional().size() > 1) {
    std::fprintf(stderr, "vsd simulate: %s\n",
                 args.error().empty() ? "expected at most one input file"
                                      : args.error().c_str());
    return kExitUsage;
  }

  std::string source = kBuiltin;
  std::string label = "<built-in counter testbench>";
  if (!args.positional().empty()) {
    label = args.positional()[0];
    if (!read_input(label, source)) return kExitUsage;
  }

  // --- differential mode -----------------------------------------------------
  if (args.has("diff")) {
    std::string golden;
    if (!read_input(args.get("diff", ""), golden)) return kExitUsage;
    const std::string top = args.get("top", last_module(golden));
    if (top.empty()) {
      std::fprintf(stderr, "vsd simulate: cannot determine top module of golden\n");
      return kExitSyntax;
    }
    const sim::DiffResult r = sim::diff_check(golden, source, top, dopts);
    std::printf("diff %s vs golden %s (top %s): %s\n", label.c_str(),
                args.get("diff", "").c_str(), top.c_str(),
                r.equivalent ? "EQUIVALENT" : "DIFFERENT");
    std::printf("  candidate compiles: %s, interface matches: %s, "
                "%d checks, %d mismatches\n",
                r.candidate_compiles ? "yes" : "no",
                r.interface_matches ? "yes" : "no", r.checks, r.mismatches);
    if (!r.detail.empty()) std::printf("  detail: %s\n", r.detail.c_str());
    if (!r.candidate_compiles) return kExitSyntax;
    return r.equivalent ? kExitOk : kExitCheckFailed;
  }

  // --- testbench mode --------------------------------------------------------
  const std::string top = args.get("top", last_module(source));
  if (top.empty()) {
    const sim::CompileCheck cc = sim::check_compiles(source);
    std::printf("%s: COMPILE ERROR: %s\n", label.c_str(), cc.error.c_str());
    return kExitSyntax;
  }
  const sim::TbResult tb = sim::run_testbench(source, top);
  if (!tb.ran) {
    std::printf("%s: simulation did not complete: %s\n", label.c_str(),
                tb.error.c_str());
    return kExitSyntax;
  }
  if (!args.has("quiet")) std::printf("%s", tb.log.c_str());
  std::printf("%s (top %s): %s\n", label.c_str(), top.c_str(),
              tb.passed ? "PASSED" : "FAILED");
  return tb.passed ? kExitOk : kExitCheckFailed;
}

}  // namespace vsd::cli
