// `vsd decode` — the full paper pipeline as one command: build the
// synthetic corpus, train a tokenizer and a miniature model with the
// chosen method, generate a module with (speculative) decoding, and check
// the result with the parser and simulator.
#include <cmath>
#include <cstdio>
#include <string>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "data/dataset.hpp"
#include "eval/harness.hpp"
#include "nn/kernel_dispatch.hpp"
#include "nn/parallel.hpp"
#include "sim/check.hpp"
#include "vlog/parser.hpp"

namespace vsd::cli {

namespace {

constexpr OptionSpec kOptions[] = {
    {"prompt", true, "instruction to generate from (default: a 2-to-1 mux spec)", "TEXT"},
    {"method", true, "ours | medusa | ntp (default ours)", "NAME"},
    {"items", true, "corpus size (default 48)"},
    {"epochs", true, "training epochs (default 3)"},
    {"seed", true, "global seed (default 7)"},
    {"max-tokens", true, "generation budget (default 220)"},
    {"candidates", true, "top-k base candidates per speculative step (default 1)", "K"},
    {"temperature", true, "sampling temperature, 0 = greedy (default 0)", "T"},
    {"compute-threads", true,
     "GEMM compute-pool threads (default: $VSD_COMPUTE_THREADS or hardware\n"
     "                   concurrency; 1 = serial kernels, identical tokens)", "N"},
    {"kernel", true,
     "GEMM kernel tier: 'exact' (bit-identical accumulation, the default)\n"
     "                   or 'fast' (FMA/reassociated SIMD + grouped-int8\n"
     "                   compressed logit weights; tokens may differ)", "MODE"},
    {"enc-dec", false, "use the encoder-decoder (CodeT5p-like) architecture"},
    {"strict", false, "exit nonzero when the generated code fails the checks"},
    {"help", false, "show this help"},
};

constexpr const char* kDefaultInstruction =
    "Write a simple Verilog code for a 2-to-1 multiplexer of 4-bit inputs "
    "`a` and `b`; output `y` equals `b` when `sel` is 1.";

bool parse_method(const std::string& name, spec::Method& out) {
  if (name == "ours") out = spec::Method::Ours;
  else if (name == "medusa") out = spec::Method::Medusa;
  else if (name == "ntp") out = spec::Method::NTP;
  else return false;
  return true;
}

}  // namespace

void print_decode_help() {
  std::printf("usage: vsd decode [options]\n\n"
              "Trains a miniature system on the synthetic corpus and generates\n"
              "one module with the chosen decoding method, then syntax- and\n"
              "compile-checks the result.  Exit code: 0 once the pipeline ran\n"
              "(with --strict, %d if the generated code fails a check).\n\noptions:\n",
              kExitSyntax);
  print_options(kOptions);
}

int cmd_decode(int argc, const char* const* argv) {
  Args args = Args::parse(argc, argv, kOptions);
  if (args.has("help")) {
    print_decode_help();
    return kExitOk;
  }

  spec::Method method = spec::Method::Ours;
  if (!parse_method(args.get("method", "ours"), method)) {
    std::fprintf(stderr, "vsd decode: unknown method '%s' (ours|medusa|ntp)\n",
                 args.get("method", "").c_str());
    return kExitUsage;
  }
  eval::SystemConfig cfg;
  cfg.method = method;
  cfg.encoder_decoder = args.has("enc-dec");
  cfg.epochs = args.get_int("epochs", 3);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  data::DatasetConfig dcfg;
  dcfg.target_items = args.get_int("items", 48);
  dcfg.seed = cfg.seed;
  spec::DecodeConfig dc;
  dc.max_new_tokens = args.get_int("max-tokens", 220);
  dc.num_candidates = args.get_int("candidates", 1);
  dc.temperature = static_cast<float>(args.get_double("temperature", 0.0));
  nn::KernelMode kernel = nn::kernel_mode();
  const std::string kernel_name = args.get("kernel", "");
  const bool kernel_ok =
      !args.has("kernel") || nn::parse_kernel_mode(kernel_name.c_str(), kernel);
  // Reject degenerate configs before any training, with the flag named —
  // not mid-decode by an opaque check().
  const char* bad_arg = nullptr;
  if (!args.error().empty()) bad_arg = args.error().c_str();
  else if (!args.positional().empty()) bad_arg = "unexpected positional argument";
  else if (dc.max_new_tokens < 0) bad_arg = "--max-tokens must be >= 0";
  else if (dc.num_candidates < 1) bad_arg = "--candidates must be >= 1";
  else if (!(std::isfinite(dc.temperature) && dc.temperature >= 0.0f))
    bad_arg = "--temperature must be finite and >= 0 (0 = greedy)";
  else if (args.has("compute-threads") && args.get_int("compute-threads", 0) < 1)
    bad_arg = "--compute-threads must be >= 1 (1 = serial kernels)";
  else if (!kernel_ok)
    bad_arg = "--kernel must be exact|fast (exact keeps bit-identical tokens)";
  if (bad_arg != nullptr) {
    std::fprintf(stderr, "vsd decode: %s\n", bad_arg);
    return kExitUsage;
  }
  // Size the process-wide GEMM pool before any forward pass runs; tokens
  // are bit-identical at every setting.
  if (args.has("compute-threads")) {
    nn::set_compute_threads(args.get_int("compute-threads", 1));
  }

  // Training always runs the exact tier so the weights are identical
  // across kernel modes; --kernel selects the generation tier below.
  nn::set_kernel_mode(nn::KernelMode::Exact);
  const data::Dataset dataset = data::build_dataset(dcfg);
  std::printf("dataset: %zu cleaned (module,description) pairs\n",
              dataset.items.size());
  const text::Tokenizer tokenizer =
      text::Tokenizer::train(data::tokenizer_corpus(dataset), {.vocab_size = 384});
  std::printf("tokenizer: vocab=%d\n", tokenizer.vocab_size());

  std::printf("training %s (%s) ...\n", spec::method_name(method),
              cfg.encoder_decoder ? "enc-dec" : "dec-only");
  std::fflush(stdout);
  const eval::TrainedSystem sys = eval::train_system(cfg, dataset, tokenizer);
  std::printf("trained: %d steps, loss %.3f -> %.3f\n", sys.train_stats.steps,
              sys.train_stats.first_loss, sys.train_stats.final_loss);

  const std::string prompt =
      data::alpaca_prompt(args.get("prompt", kDefaultInstruction));
  nn::set_kernel_mode(kernel);
  Rng rng(cfg.seed ^ 0x5eedu);
  const spec::DecodeResult result = eval::generate(sys, prompt, dc, rng);
  const std::string code = sys.tokenizer.decode(result.ids);
  std::printf("\ngenerated with the %s/%s kernels in %d decode steps "
              "(%.2f tokens/step):\n%s\n",
              nn::kernel_mode_name(kernel), nn::isa_name(nn::dispatched_isa()),
              result.steps, result.mean_accepted(), code.c_str());

  const bool syntax = vlog::syntax_ok(code);
  std::printf("syntax check: %s\n", syntax ? "PASS" : "FAIL");
  bool compiles = false;
  if (syntax) {
    const sim::CompileCheck cc = sim::check_compiles(code);
    compiles = cc.ok;
    if (cc.ok) std::printf("elaboration: PASS\n");
    else std::printf("elaboration: FAIL — %s\n", cc.error.c_str());
  }
  if (args.has("strict") && !(syntax && compiles)) return kExitSyntax;
  return kExitOk;
}

}  // namespace vsd::cli
