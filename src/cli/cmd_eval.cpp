// `vsd eval` — a compact method comparison: trains Ours / Medusa / NTP on
// the same corpus and reports quality (pass@1, pass rate) and speed
// (latency-model tokens/s, Eq. 3/4) side by side.  This is the benches'
// protocol at CLI-friendly scale; use the bench_* binaries for the full
// tables.
#include <cstdio>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "eval/harness.hpp"
#include "nn/kernel_dispatch.hpp"
#include "nn/parallel.hpp"

namespace vsd::cli {

namespace {

constexpr OptionSpec kOptions[] = {
    {"items", true, "corpus size (default 32)"},
    {"epochs", true, "training epochs (default 2)"},
    {"problems", true, "quality problems per benchmark style (default 2)"},
    {"samples", true, "samples per problem, n in pass@k (default 2)"},
    {"prompts", true, "speed-eval prompts (default 4)"},
    {"workers", true, "quality-eval worker threads (default 1; scores are\n"
                      "                   identical for any worker count)"},
    {"compute-threads", true,
     "GEMM compute-pool threads (default: $VSD_COMPUTE_THREADS or hardware\n"
     "                   concurrency; 1 = serial kernels, identical scores)", "N"},
    {"kernel", true,
     "GEMM kernel tier: 'exact' (bit-identical, default) or 'fast' (SIMD\n"
     "                   reassociation + int8 compressed logit weights);\n"
     "                   'fast' additionally reports quality/accept-rate\n"
     "                   deltas vs the exact tier on the same weights", "MODE"},
    {"max-tokens", true, "generation budget (default 200)"},
    {"seed", true, "global seed (default 1)"},
    {"enc-dec", false, "use the encoder-decoder (CodeT5p-like) architecture"},
    {"no-quality", false, "skip the quality evaluation"},
    {"no-speed", false, "skip the speed evaluation"},
    {"help", false, "show this help"},
};

}  // namespace

void print_eval_help() {
  std::printf("usage: vsd eval [options]\n\n"
              "Trains the three methods (Ours, Medusa, NTP) on one corpus and\n"
              "prints a side-by-side quality and speed comparison (the paper's\n"
              "Table I / Table II protocol at small scale).\n\noptions:\n");
  print_options(kOptions);
}

int cmd_eval(int argc, const char* const* argv) {
  Args args = Args::parse(argc, argv, kOptions);
  if (args.has("help")) {
    print_eval_help();
    return kExitOk;
  }

  const int items = args.get_int("items", 32);
  const int epochs = args.get_int("epochs", 2);
  const int problems = args.get_int("problems", 2);
  const int samples = args.get_int("samples", 2);
  const int prompts = args.get_int("prompts", 4);
  const int workers = args.get_int("workers", 1);
  const int max_tokens = args.get_int("max-tokens", 200);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const bool enc_dec = args.has("enc-dec");
  const bool run_quality = !args.has("no-quality");
  const bool run_speed = !args.has("no-speed");
  nn::KernelMode kernel = nn::kernel_mode();
  const std::string kernel_name = args.get("kernel", "");
  const bool kernel_ok =
      !args.has("kernel") || nn::parse_kernel_mode(kernel_name.c_str(), kernel);
  if (!args.error().empty() || !args.positional().empty()) {
    std::fprintf(stderr, "vsd eval: %s\n",
                 args.error().empty() ? "unexpected positional argument"
                                      : args.error().c_str());
    return kExitUsage;
  }
  if (args.has("compute-threads") && args.get_int("compute-threads", 0) < 1) {
    std::fprintf(stderr,
                 "vsd eval: --compute-threads must be >= 1 (1 = serial kernels)\n");
    return kExitUsage;
  }
  if (!kernel_ok) {
    std::fprintf(stderr,
                 "vsd eval: --kernel must be exact|fast (exact keeps "
                 "bit-identical scores)\n");
    return kExitUsage;
  }
  // Size the process-wide GEMM pool before any forward pass runs; scores
  // are bit-identical at every setting.
  if (args.has("compute-threads")) {
    nn::set_compute_threads(args.get_int("compute-threads", 1));
  }

  data::DatasetConfig dcfg;
  dcfg.target_items = items;
  dcfg.seed = seed;
  const data::Dataset dataset = data::build_dataset(dcfg);
  const text::Tokenizer tokenizer =
      text::Tokenizer::train(data::tokenizer_corpus(dataset), {.vocab_size = 384});
  std::printf("dataset: %zu items; arch: %s; epochs: %d\n", dataset.items.size(),
              enc_dec ? "enc-dec" : "dec-only", epochs);

  const auto quality_problems = eval::make_from_dataset(
      dataset, problems, eval::BenchStyle::RtllmLike, seed + 101);
  eval::QualityOptions qopts;
  qopts.n_samples = samples;
  qopts.temperatures = {0.4f};
  qopts.max_new_tokens = max_tokens;
  qopts.ks = {1};
  qopts.seed = seed + 5;
  qopts.workers = workers;

  const auto speed_prompts = eval::make_speed_prompts(prompts, seed + 17);
  eval::SpeedOptions sopts;
  sopts.n_prompts = prompts;
  sopts.max_new_tokens = max_tokens;
  sopts.seed = seed + 7;

  const spec::Method methods[3] = {spec::Method::Ours, spec::Method::Medusa,
                                   spec::Method::NTP};
  const bool fast = kernel == nn::KernelMode::Fast;
  eval::BenchScores quality[3];
  eval::BenchScores quality_fast[3];
  eval::SpeedRow speed[3];
  eval::SpeedRow speed_fast[3];
  double t_step = 0.0;
  for (int m = 0; m < 3; ++m) {
    eval::SystemConfig cfg;
    cfg.method = methods[m];
    cfg.encoder_decoder = enc_dec;
    cfg.epochs = epochs;
    cfg.seed = seed;
    std::printf("training %-6s ...\n", spec::method_name(methods[m]));
    std::fflush(stdout);
    // Train and baseline-evaluate with the exact tier: fast-mode deltas
    // below then measure kernel relaxation on identical weights, not
    // training divergence.
    nn::set_kernel_mode(nn::KernelMode::Exact);
    const eval::TrainedSystem sys = eval::train_system(cfg, dataset, tokenizer);
    if (run_quality) quality[m] = eval::evaluate_quality(sys, quality_problems, qopts);
    if (run_speed) {
      const spec::Decoder dec(*sys.model);
      if (t_step == 0.0) t_step = dec.measure_step_seconds(64);
      speed[m] = eval::evaluate_speed(sys, speed_prompts, sopts, t_step);
    }
    if (fast) {
      nn::set_kernel_mode(nn::KernelMode::Fast);
      if (run_quality) {
        quality_fast[m] = eval::evaluate_quality(sys, quality_problems, qopts);
      }
      if (run_speed) {
        speed_fast[m] = eval::evaluate_speed(sys, speed_prompts, sopts, t_step);
      }
      nn::set_kernel_mode(nn::KernelMode::Exact);
    }
  }

  if (run_quality) {
    std::printf("\n-- quality (%d problems x %d samples, RTLLM-like) --\n",
                problems, samples);
    std::printf("%-8s %10s %10s %10s %10s %10s %10s\n", "Method", "func@1",
                "funcRate", "syn@1", "synRate", "lintRate", "elabRate");
    for (int m = 0; m < 3; ++m) {
      const eval::BenchScores& s = quality[m];
      std::printf("%-8s %9.2f%% %9.2f%% %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
                  spec::method_name(methods[m]), 100.0 * s.func_pass_at_k[0],
                  100.0 * s.func_rate, 100.0 * s.syn_pass_at_k[0],
                  100.0 * s.syn_rate, 100.0 * s.lint_rate, 100.0 * s.elab_rate);
    }
  }
  if (run_quality && fast) {
    // Same weights, relaxed kernels: each cell is the fast-tier score with
    // its delta vs the exact baseline above.
    std::printf("\n-- quality with --kernel fast (isa %s; delta vs exact) --\n",
                nn::isa_name(nn::dispatched_isa()));
    std::printf("%-8s %14s %14s %14s %14s %14s %14s\n", "Method", "func@1",
                "funcRate", "syn@1", "synRate", "lintRate", "elabRate");
    for (int m = 0; m < 3; ++m) {
      const eval::BenchScores& f = quality_fast[m];
      const eval::BenchScores& e = quality[m];
      const auto cell = [](double fv, double ev) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f%%%+.1f", 100.0 * fv,
                      100.0 * (fv - ev));
        return std::string(buf);
      };
      std::printf("%-8s %14s %14s %14s %14s %14s %14s\n",
                  spec::method_name(methods[m]),
                  cell(f.func_pass_at_k[0], e.func_pass_at_k[0]).c_str(),
                  cell(f.func_rate, e.func_rate).c_str(),
                  cell(f.syn_pass_at_k[0], e.syn_pass_at_k[0]).c_str(),
                  cell(f.syn_rate, e.syn_rate).c_str(),
                  cell(f.lint_rate, e.lint_rate).c_str(),
                  cell(f.elab_rate, e.elab_rate).c_str());
    }
  }
  if (run_speed) {
    std::printf("\n-- speed (%d prompts, latency model; Eq. 3/4) --\n", prompts);
    std::printf("%-8s %14s %9s %10s %12s\n", "Method", "tok/s (model)", "speedup",
                "tok/step", "wall tok/s");
    for (int m = 0; m < 3; ++m) {
      std::printf("%-8s %14.2f %8.2fx %10.2f %12.2f\n",
                  spec::method_name(methods[m]), speed[m].tokens_per_sec_model,
                  eval::speedup(speed[m], speed[2]), speed[m].mean_accepted,
                  speed[m].tokens_per_sec_wall);
    }
  }
  if (run_speed && fast) {
    // tok/step is the accept rate of speculative decoding — its delta is
    // what the relaxed kernels cost (or gain) in acceptance.
    std::printf("\n-- speed with --kernel fast (delta vs exact) --\n");
    std::printf("%-8s %16s %18s\n", "Method", "tok/step (delta)",
                "wall tok/s (delta)");
    for (int m = 0; m < 3; ++m) {
      std::printf("%-8s %9.2f %+.2f %12.2f %+.2f\n",
                  spec::method_name(methods[m]), speed_fast[m].mean_accepted,
                  speed_fast[m].mean_accepted - speed[m].mean_accepted,
                  speed_fast[m].tokens_per_sec_wall,
                  speed_fast[m].tokens_per_sec_wall -
                      speed[m].tokens_per_sec_wall);
    }
  }
  return kExitOk;
}

}  // namespace vsd::cli
