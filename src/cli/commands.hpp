// The `vsd` subcommands.  Each takes the argv slice after its own name and
// returns a process exit code:
//   0 — success (lint: no errors; warnings do not fail without --werror)
//   1 — usage error (bad flags / arguments)
//   2 — input failed a syntax / compile / semantic-lint check
//   3 — simulation or differential check failed
//   4 — lint found only warnings and --werror was given
//   5 — I/O failure (unreadable file or directory)
#pragma once

namespace vsd::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 1;
inline constexpr int kExitSyntax = 2;
inline constexpr int kExitCheckFailed = 3;
inline constexpr int kExitLintWarnings = 4;
inline constexpr int kExitIo = 5;

int cmd_lint(int argc, const char* const* argv);
int cmd_simulate(int argc, const char* const* argv);
int cmd_decode(int argc, const char* const* argv);
int cmd_eval(int argc, const char* const* argv);
int cmd_serve(int argc, const char* const* argv);

/// `vsd <cmd> --help` support: prints usage for one subcommand.
void print_lint_help();
void print_simulate_help();
void print_decode_help();
void print_eval_help();
void print_serve_help();

}  // namespace vsd::cli
