// `vsd` — unified driver for the syntax-aligned speculative-decoding
// library: lint Verilog, run the simulator, generate code, and compare the
// decoding methods, all from one binary.
#include <cstdio>
#include <cstring>
#include <string>

#include "cli/commands.hpp"
#include "common/version.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: vsd <command> [options]\n\n"
      "commands:\n"
      "  lint      parse Verilog files and report syntax errors\n"
      "  simulate  run a self-checking testbench or a differential check\n"
      "  decode    train a miniature model and generate a module\n"
      "  eval      compare Ours / Medusa / NTP on quality and speed\n"
      "  serve     batched decoding service: prompts in, JSON results out\n\n"
      "  vsd <command> --help shows per-command options.\n"
      "  vsd --version prints build information.\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vsd::cli;

  if (argc < 2 || std::strcmp(argv[1], "help") == 0 ||
      std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    print_usage();
    return argc < 2 ? kExitUsage : kExitOk;
  }
  if (std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", vsd::build_info());
    return kExitOk;
  }

  const std::string cmd = argv[1];
  const int sub_argc = argc - 2;
  const char* const* sub_argv = argv + 2;
  if (cmd == "lint") return cmd_lint(sub_argc, sub_argv);
  if (cmd == "simulate") return cmd_simulate(sub_argc, sub_argv);
  if (cmd == "decode") return cmd_decode(sub_argc, sub_argv);
  if (cmd == "eval") return cmd_eval(sub_argc, sub_argv);
  if (cmd == "serve") return cmd_serve(sub_argc, sub_argv);

  std::fprintf(stderr, "vsd: unknown command '%s'\n\n", cmd.c_str());
  print_usage();
  return kExitUsage;
}
