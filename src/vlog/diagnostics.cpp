#include "vlog/diagnostics.hpp"

#include <algorithm>
#include <cstdio>

namespace vsd::vlog {

namespace {

/// Minimal JSON string escaping for diagnostic text: codes, identifiers,
/// and messages are ASCII by construction, but messages can quote source
/// fragments, so control characters and quotes must not leak through.
/// (The serve layer has a full UTF-8-aware escaper; vlog sits below it in
/// the layer graph and only ever emits text it produced itself.)
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

void LintResult::add(Severity sev, std::string code, int line,
                     std::string message, std::string module,
                     std::string signal) {
  Diagnostic d;
  d.severity = sev;
  d.code = std::move(code);
  d.line = line;
  d.message = std::move(message);
  d.module = std::move(module);
  d.signal = std::move(signal);
  diags_.push_back(std::move(d));
}

int LintResult::count(Severity s) const {
  int n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

void LintResult::sort_by_location() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.line != b.line) return a.line < b.line;
                     if (a.code != b.code) return a.code < b.code;
                     return a.signal < b.signal;
                   });
}

void LintResult::merge(LintResult other) {
  diags_.insert(diags_.end(),
                std::make_move_iterator(other.diags_.begin()),
                std::make_move_iterator(other.diags_.end()));
}

std::string diagnostic_json(const Diagnostic& d) {
  std::string out = "{\"severity\":\"";
  out += severity_name(d.severity);
  out += "\",\"code\":\"" + escape(d.code) + "\",\"line\":" +
         std::to_string(d.line) + ",\"message\":\"" + escape(d.message) + "\"";
  if (!d.module.empty()) out += ",\"module\":\"" + escape(d.module) + "\"";
  if (!d.signal.empty()) out += ",\"signal\":\"" + escape(d.signal) + "\"";
  out += "}";
  return out;
}

std::string diagnostics_json(const std::vector<Diagnostic>& ds) {
  std::string out = "[";
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (i > 0) out += ",";
    out += diagnostic_json(ds[i]);
  }
  out += "]";
  return out;
}

}  // namespace vsd::vlog
