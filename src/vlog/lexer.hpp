// Lexer for the Verilog-2001 subset.
//
// Converts source text into a token stream.  Comments and compiler
// directives (`timescale, `define, ...) are treated as trivia and skipped.
// Lexical errors are reported via LexResult rather than exceptions so the
// data-refinement pipeline can gate arbitrary (possibly malformed)
// generated code without exception overhead.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "vlog/token.hpp"

namespace vsd::vlog {

/// Result of lexing a whole buffer.
struct LexResult {
  std::vector<Token> tokens;  // always terminated by an Eof token on success
  bool ok = true;
  std::string error;          // first lexical error, if any
  int error_line = 0;
};

/// Lexes `source` completely.  On error, `tokens` holds everything lexed
/// before the offending character.
LexResult lex(std::string_view source);

}  // namespace vsd::vlog
