#include "vlog/printer.hpp"

#include <sstream>

namespace vsd::vlog {

namespace {

std::string ind(int n) { return std::string(static_cast<std::size_t>(n) * 2, ' '); }

std::string_view unary_spelling(UnaryOp op) {
  switch (op) {
    case UnaryOp::Plus: return "+";
    case UnaryOp::Minus: return "-";
    case UnaryOp::LogicNot: return "!";
    case UnaryOp::BitNot: return "~";
    case UnaryOp::ReduceAnd: return "&";
    case UnaryOp::ReduceNand: return "~&";
    case UnaryOp::ReduceOr: return "|";
    case UnaryOp::ReduceNor: return "~|";
    case UnaryOp::ReduceXor: return "^";
    case UnaryOp::ReduceXnor: return "~^";
  }
  return "?";
}

std::string_view binary_spelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Pow: return "**";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Neq: return "!=";
    case BinaryOp::CaseEq: return "===";
    case BinaryOp::CaseNeq: return "!==";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::LogicAnd: return "&&";
    case BinaryOp::LogicOr: return "||";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::BitXnor: return "^~";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::AShl: return "<<<";
    case BinaryOp::AShr: return ">>>";
  }
  return "?";
}

std::string escape_string(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

std::string print_range(const Range& r) {
  return "[" + print_expr(*r.msb) + ":" + print_expr(*r.lsb) + "]";
}

std::string_view dir_spelling(PortDir d) {
  switch (d) {
    case PortDir::Input: return "input";
    case PortDir::Output: return "output";
    case PortDir::Inout: return "inout";
  }
  return "?";
}

std::string_view net_spelling(NetType n) {
  switch (n) {
    case NetType::Wire: return "wire";
    case NetType::Reg: return "reg";
    case NetType::Integer: return "integer";
    case NetType::Genvar: return "genvar";
    case NetType::Real: return "real";
    case NetType::Time: return "time";
    case NetType::Supply0: return "supply0";
    case NetType::Supply1: return "supply1";
    case NetType::Tri: return "tri";
  }
  return "?";
}

}  // namespace

std::string print_expr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Number:
      return static_cast<const NumberExpr&>(e).text;
    case ExprKind::String:
      return "\"" + escape_string(static_cast<const StringExpr&>(e).value) + "\"";
    case ExprKind::Ident:
      return static_cast<const IdentExpr&>(e).full_name();
    case ExprKind::Select: {
      const auto& s = static_cast<const SelectExpr&>(e);
      std::string out = print_expr(*s.base) + "[" + print_expr(*s.index);
      switch (s.select) {
        case SelectKind::Bit: break;
        case SelectKind::Part: out += ":" + print_expr(*s.width); break;
        case SelectKind::IndexedUp: out += "+:" + print_expr(*s.width); break;
        case SelectKind::IndexedDown: out += "-:" + print_expr(*s.width); break;
      }
      return out + "]";
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      return std::string(unary_spelling(u.op)) + "(" + print_expr(*u.operand) + ")";
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return "(" + print_expr(*b.lhs) + " " + std::string(binary_spelling(b.op)) +
             " " + print_expr(*b.rhs) + ")";
    }
    case ExprKind::Ternary: {
      const auto& t = static_cast<const TernaryExpr&>(e);
      return "(" + print_expr(*t.cond) + " ? " + print_expr(*t.then_expr) +
             " : " + print_expr(*t.else_expr) + ")";
    }
    case ExprKind::Concat: {
      const auto& c = static_cast<const ConcatExpr&>(e);
      std::string out = "{";
      for (std::size_t i = 0; i < c.parts.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(*c.parts[i]);
      }
      return out + "}";
    }
    case ExprKind::Repl: {
      const auto& r = static_cast<const ReplExpr&>(e);
      const auto& body = static_cast<const ConcatExpr&>(*r.body);
      std::string out = "{" + print_expr(*r.count) + "{";
      for (std::size_t i = 0; i < body.parts.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(*body.parts[i]);
      }
      return out + "}}";
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      std::string out = c.callee + "(";
      for (std::size_t i = 0; i < c.args.size(); ++i) {
        if (i) out += ", ";
        out += print_expr(*c.args[i]);
      }
      return out + ")";
    }
  }
  return "";
}

std::string print_stmt(const Stmt& s, int indent) {
  std::ostringstream out;
  switch (s.kind) {
    case StmtKind::Block: {
      const auto& b = static_cast<const BlockStmt&>(s);
      out << ind(indent) << "begin";
      if (!b.label.empty()) out << " : " << b.label;
      out << "\n";
      for (const auto& st : b.body) out << print_stmt(*st, indent + 1);
      out << ind(indent) << "end\n";
      break;
    }
    case StmtKind::Assign: {
      const auto& a = static_cast<const AssignStmt&>(s);
      out << ind(indent) << print_expr(*a.lhs) << (a.non_blocking ? " <= " : " = ");
      if (a.delay) out << "#" << print_expr(*a.delay) << " ";
      out << print_expr(*a.rhs) << ";\n";
      break;
    }
    case StmtKind::If: {
      const auto& i = static_cast<const IfStmt&>(s);
      out << ind(indent) << "if (" << print_expr(*i.cond) << ")\n";
      out << print_stmt(*i.then_stmt, indent + 1);
      if (i.else_stmt) {
        out << ind(indent) << "else\n";
        out << print_stmt(*i.else_stmt, indent + 1);
      }
      break;
    }
    case StmtKind::Case: {
      const auto& c = static_cast<const CaseStmt&>(s);
      const char* kw = c.case_kind == CaseKind::Case ? "case"
                       : c.case_kind == CaseKind::Casez ? "casez" : "casex";
      out << ind(indent) << kw << " (" << print_expr(*c.subject) << ")\n";
      for (const auto& item : c.items) {
        if (item.labels.empty()) {
          out << ind(indent + 1) << "default:\n";
        } else {
          out << ind(indent + 1);
          for (std::size_t i = 0; i < item.labels.size(); ++i) {
            if (i) out << ", ";
            out << print_expr(*item.labels[i]);
          }
          out << ":\n";
        }
        out << print_stmt(*item.body, indent + 2);
      }
      out << ind(indent) << "endcase\n";
      break;
    }
    case StmtKind::For: {
      const auto& f = static_cast<const ForStmt&>(s);
      const auto& init = static_cast<const AssignStmt&>(*f.init);
      const auto& step = static_cast<const AssignStmt&>(*f.step);
      out << ind(indent) << "for (" << print_expr(*init.lhs) << " = "
          << print_expr(*init.rhs) << "; " << print_expr(*f.cond) << "; "
          << print_expr(*step.lhs) << " = " << print_expr(*step.rhs) << ")\n";
      out << print_stmt(*f.body, indent + 1);
      break;
    }
    case StmtKind::While: {
      const auto& w = static_cast<const WhileStmt&>(s);
      out << ind(indent) << "while (" << print_expr(*w.cond) << ")\n";
      out << print_stmt(*w.body, indent + 1);
      break;
    }
    case StmtKind::Repeat: {
      const auto& r = static_cast<const RepeatStmt&>(s);
      out << ind(indent) << "repeat (" << print_expr(*r.count) << ")\n";
      out << print_stmt(*r.body, indent + 1);
      break;
    }
    case StmtKind::Forever: {
      const auto& f = static_cast<const ForeverStmt&>(s);
      out << ind(indent) << "forever\n" << print_stmt(*f.body, indent + 1);
      break;
    }
    case StmtKind::Delay: {
      const auto& d = static_cast<const DelayStmt&>(s);
      out << ind(indent) << "#" << print_expr(*d.delay);
      if (d.body->kind == StmtKind::Null) {
        out << ";\n";
      } else {
        out << "\n" << print_stmt(*d.body, indent + 1);
      }
      break;
    }
    case StmtKind::EventControl: {
      const auto& e = static_cast<const EventControlStmt&>(s);
      out << ind(indent) << "@(";
      if (e.star) {
        out << "*";
      } else {
        for (std::size_t i = 0; i < e.events.size(); ++i) {
          if (i) out << " or ";
          if (e.events[i].edge == EdgeKind::Posedge) out << "posedge ";
          if (e.events[i].edge == EdgeKind::Negedge) out << "negedge ";
          out << print_expr(*e.events[i].signal);
        }
      }
      out << ")\n" << print_stmt(*e.body, indent + 1);
      break;
    }
    case StmtKind::Wait: {
      const auto& w = static_cast<const WaitStmt&>(s);
      out << ind(indent) << "wait (" << print_expr(*w.cond) << ")\n";
      out << print_stmt(*w.body, indent + 1);
      break;
    }
    case StmtKind::SysTask: {
      const auto& t = static_cast<const SysTaskStmt&>(s);
      out << ind(indent) << t.name;
      if (!t.args.empty()) {
        out << "(";
        for (std::size_t i = 0; i < t.args.size(); ++i) {
          if (i) out << ", ";
          out << print_expr(*t.args[i]);
        }
        out << ")";
      }
      out << ";\n";
      break;
    }
    case StmtKind::TaskCall: {
      const auto& t = static_cast<const TaskCallStmt&>(s);
      out << ind(indent) << t.name;
      if (!t.args.empty()) {
        out << "(";
        for (std::size_t i = 0; i < t.args.size(); ++i) {
          if (i) out << ", ";
          out << print_expr(*t.args[i]);
        }
        out << ")";
      }
      out << ";\n";
      break;
    }
    case StmtKind::Disable:
      out << ind(indent) << "disable "
          << static_cast<const DisableStmt&>(s).target << ";\n";
      break;
    case StmtKind::Trigger:
      out << ind(indent) << "-> " << static_cast<const TriggerStmt&>(s).target
          << ";\n";
      break;
    case StmtKind::Null:
      out << ind(indent) << ";\n";
      break;
  }
  return out.str();
}

std::string print_item(const ModuleItem& item, int indent) {
  std::ostringstream out;
  switch (item.kind) {
    case ItemKind::PortDecl: {
      const auto& p = static_cast<const PortDeclItem&>(item);
      out << ind(indent) << dir_spelling(p.dir);
      if (p.is_reg) out << " reg";
      if (p.is_signed) out << " signed";
      if (p.range) out << " " << print_range(*p.range);
      for (std::size_t i = 0; i < p.names.size(); ++i) {
        out << (i ? ", " : " ") << p.names[i];
      }
      out << ";\n";
      break;
    }
    case ItemKind::NetDecl: {
      const auto& n = static_cast<const NetDeclItem&>(item);
      out << ind(indent) << net_spelling(n.net);
      if (n.is_signed) out << " signed";
      if (n.range) out << " " << print_range(*n.range);
      for (std::size_t i = 0; i < n.nets.size(); ++i) {
        out << (i ? ", " : " ") << n.nets[i].name;
        if (n.nets[i].unpacked) out << " " << print_range(*n.nets[i].unpacked);
        if (n.nets[i].init) out << " = " << print_expr(*n.nets[i].init);
      }
      out << ";\n";
      break;
    }
    case ItemKind::ParamDecl: {
      const auto& p = static_cast<const ParamDeclItem&>(item);
      out << ind(indent) << (p.local ? "localparam" : "parameter");
      if (p.is_signed) out << " signed";
      if (p.range) out << " " << print_range(*p.range);
      for (std::size_t i = 0; i < p.params.size(); ++i) {
        out << (i ? ", " : " ") << p.params[i].name << " = "
            << print_expr(*p.params[i].value);
      }
      out << ";\n";
      break;
    }
    case ItemKind::ContAssign: {
      const auto& a = static_cast<const ContAssignItem&>(item);
      out << ind(indent) << "assign ";
      if (a.delay) out << "#" << print_expr(*a.delay) << " ";
      for (std::size_t i = 0; i < a.assigns.size(); ++i) {
        if (i) out << ", ";
        out << print_expr(*a.assigns[i].first) << " = "
            << print_expr(*a.assigns[i].second);
      }
      out << ";\n";
      break;
    }
    case ItemKind::Always:
      out << ind(indent) << "always\n"
          << print_stmt(*static_cast<const AlwaysItem&>(item).body, indent + 1);
      break;
    case ItemKind::Initial:
      out << ind(indent) << "initial\n"
          << print_stmt(*static_cast<const InitialItem&>(item).body, indent + 1);
      break;
    case ItemKind::Instance: {
      const auto& inst = static_cast<const InstanceItem&>(item);
      out << ind(indent) << inst.module_name;
      if (!inst.param_overrides.empty()) {
        out << " #(";
        for (std::size_t i = 0; i < inst.param_overrides.size(); ++i) {
          if (i) out << ", ";
          const auto& c = inst.param_overrides[i];
          if (!c.formal.empty()) {
            out << "." << c.formal << "(" << (c.actual ? print_expr(*c.actual) : "")
                << ")";
          } else {
            out << print_expr(*c.actual);
          }
        }
        out << ")";
      }
      out << " " << inst.instance_name << " (";
      for (std::size_t i = 0; i < inst.connections.size(); ++i) {
        if (i) out << ", ";
        const auto& c = inst.connections[i];
        if (!c.formal.empty()) {
          out << "." << c.formal << "(" << (c.actual ? print_expr(*c.actual) : "")
              << ")";
        } else {
          out << print_expr(*c.actual);
        }
      }
      out << ");\n";
      break;
    }
    case ItemKind::Function: {
      const auto& f = static_cast<const FunctionItem&>(item);
      out << ind(indent) << "function";
      if (f.is_signed) out << " signed";
      if (f.return_range) out << " " << print_range(*f.return_range);
      out << " " << f.name << ";\n";
      for (const auto& a : f.args) {
        out << ind(indent + 1) << dir_spelling(a.dir);
        if (a.net == NetType::Integer) out << " integer";
        if (a.is_signed) out << " signed";
        if (a.range) out << " " << print_range(*a.range);
        out << " " << a.name << ";\n";
      }
      for (const auto& l : f.locals) out << print_item(*l, indent + 1);
      out << print_stmt(*f.body, indent + 1);
      out << ind(indent) << "endfunction\n";
      break;
    }
    case ItemKind::Task: {
      const auto& t = static_cast<const TaskItem&>(item);
      out << ind(indent) << "task " << t.name << ";\n";
      for (const auto& a : t.args) {
        out << ind(indent + 1) << dir_spelling(a.dir);
        if (a.net == NetType::Integer) out << " integer";
        if (a.is_signed) out << " signed";
        if (a.range) out << " " << print_range(*a.range);
        out << " " << a.name << ";\n";
      }
      for (const auto& l : t.locals) out << print_item(*l, indent + 1);
      out << print_stmt(*t.body, indent + 1);
      out << ind(indent) << "endtask\n";
      break;
    }
    case ItemKind::Genvar: {
      const auto& g = static_cast<const GenvarItem&>(item);
      out << ind(indent) << "genvar";
      for (std::size_t i = 0; i < g.names.size(); ++i) {
        out << (i ? ", " : " ") << g.names[i];
      }
      out << ";\n";
      break;
    }
    case ItemKind::GenerateFor: {
      const auto& g = static_cast<const GenerateForItem&>(item);
      out << ind(indent) << "generate\n";
      out << ind(indent + 1) << "for (" << g.genvar << " = " << print_expr(*g.init)
          << "; " << print_expr(*g.cond) << "; " << g.genvar << " = "
          << print_expr(*g.step) << ") begin";
      if (!g.label.empty()) out << " : " << g.label;
      out << "\n";
      for (const auto& it : g.body) out << print_item(*it, indent + 2);
      out << ind(indent + 1) << "end\n";
      out << ind(indent) << "endgenerate\n";
      break;
    }
  }
  return out.str();
}

std::string print_module(const Module& m) {
  std::ostringstream out;
  out << "module " << m.name;
  if (!m.header_params.empty()) {
    out << " #(";
    for (std::size_t i = 0; i < m.header_params.size(); ++i) {
      if (i) out << ", ";
      out << "parameter " << m.header_params[i].name << " = "
          << print_expr(*m.header_params[i].value);
    }
    out << ")";
  }
  if (!m.ports.empty()) {
    out << " (";
    for (std::size_t i = 0; i < m.ports.size(); ++i) {
      if (i) out << ", ";
      const ModulePort& p = m.ports[i];
      if (p.ansi) {
        out << dir_spelling(p.dir);
        if (p.is_reg) out << " reg";
        if (p.is_signed) out << " signed";
        if (p.range) out << " " << print_range(*p.range);
        out << " ";
      }
      out << p.name;
    }
    out << ")";
  }
  out << ";\n";
  for (const auto& item : m.items) out << print_item(*item, 1);
  out << "endmodule\n";
  return out.str();
}

std::string print_source(const SourceUnit& unit) {
  std::string out;
  for (const auto& m : unit.modules) {
    out += print_module(*m);
    out += "\n";
  }
  return out;
}

}  // namespace vsd::vlog
