#include "vlog/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace vsd::vlog {

namespace {

const std::unordered_map<std::string_view, Keyword>& keyword_table() {
  static const std::unordered_map<std::string_view, Keyword> table = {
      {"module", Keyword::Module},
      {"endmodule", Keyword::Endmodule},
      {"macromodule", Keyword::Macromodule},
      {"input", Keyword::Input},
      {"output", Keyword::Output},
      {"inout", Keyword::Inout},
      {"wire", Keyword::Wire},
      {"reg", Keyword::Reg},
      {"integer", Keyword::Integer},
      {"real", Keyword::Real},
      {"time", Keyword::Time},
      {"genvar", Keyword::Genvar},
      {"event", Keyword::Event},
      {"supply0", Keyword::Supply0},
      {"supply1", Keyword::Supply1},
      {"tri", Keyword::Tri},
      {"tri0", Keyword::Tri0},
      {"tri1", Keyword::Tri1},
      {"triand", Keyword::Triand},
      {"trior", Keyword::Trior},
      {"trireg", Keyword::Trireg},
      {"wand", Keyword::Wand},
      {"wor", Keyword::Wor},
      {"parameter", Keyword::Parameter},
      {"localparam", Keyword::Localparam},
      {"defparam", Keyword::Defparam},
      {"signed", Keyword::Signed},
      {"assign", Keyword::Assign},
      {"deassign", Keyword::Deassign},
      {"force", Keyword::Force},
      {"release", Keyword::Release},
      {"always", Keyword::Always},
      {"initial", Keyword::Initial},
      {"begin", Keyword::Begin},
      {"end", Keyword::End},
      {"if", Keyword::If},
      {"else", Keyword::Else},
      {"case", Keyword::Case},
      {"casez", Keyword::Casez},
      {"casex", Keyword::Casex},
      {"endcase", Keyword::Endcase},
      {"default", Keyword::Default},
      {"for", Keyword::For},
      {"while", Keyword::While},
      {"repeat", Keyword::Repeat},
      {"forever", Keyword::Forever},
      {"wait", Keyword::Wait},
      {"disable", Keyword::Disable},
      {"posedge", Keyword::Posedge},
      {"negedge", Keyword::Negedge},
      {"edge", Keyword::Edge},
      {"or", Keyword::Or},
      {"and", Keyword::And},
      {"nand", Keyword::Nand},
      {"nor", Keyword::Nor},
      {"xor", Keyword::Xor},
      {"xnor", Keyword::Xnor},
      {"not", Keyword::Not},
      {"buf", Keyword::Buf},
      {"bufif0", Keyword::Bufif0},
      {"bufif1", Keyword::Bufif1},
      {"notif0", Keyword::Notif0},
      {"notif1", Keyword::Notif1},
      {"function", Keyword::Function},
      {"endfunction", Keyword::Endfunction},
      {"task", Keyword::Task},
      {"endtask", Keyword::Endtask},
      {"generate", Keyword::Generate},
      {"endgenerate", Keyword::Endgenerate},
      {"fork", Keyword::Fork},
      {"join", Keyword::Join},
      {"specify", Keyword::Specify},
      {"endspecify", Keyword::Endspecify},
      {"primitive", Keyword::Primitive},
      {"endprimitive", Keyword::Endprimitive},
      {"table", Keyword::Table},
      {"endtable", Keyword::Endtable},
      {"scalared", Keyword::Scalared},
      {"vectored", Keyword::Vectored},
      {"small", Keyword::Small},
      {"medium", Keyword::Medium},
      {"large", Keyword::Large},
      {"pulldown", Keyword::Pulldown},
      {"pullup", Keyword::Pullup},
  };
  return table;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_base_digit(char c, char base) {
  switch (base) {
    case 'b': return c == '0' || c == '1' || c == 'x' || c == 'X' ||
                     c == 'z' || c == 'Z' || c == '?' || c == '_';
    case 'o': return (c >= '0' && c <= '7') || c == 'x' || c == 'X' ||
                     c == 'z' || c == 'Z' || c == '?' || c == '_';
    case 'd': return std::isdigit(static_cast<unsigned char>(c)) || c == '_' ||
                     c == 'x' || c == 'X' || c == 'z' || c == 'Z';
    case 'h': return std::isxdigit(static_cast<unsigned char>(c)) ||
                     c == 'x' || c == 'X' || c == 'z' || c == 'Z' ||
                     c == '?' || c == '_';
    default:  return false;
  }
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view src) : src_(src) {}

  LexResult run() {
    LexResult out;
    while (true) {
      skip_trivia();
      if (!ok_) {
        out.ok = false;
        out.error = error_;
        out.error_line = error_line_;
        return out;
      }
      if (at_end()) break;
      const std::size_t begin = pos_;
      Token tok = next_token();
      if (!ok_) {
        out.tokens = std::move(tokens_);
        out.ok = false;
        out.error = error_;
        out.error_line = error_line_;
        return out;
      }
      tok.begin = begin;
      tok.end = pos_;
      tokens_.push_back(std::move(tok));
    }
    Token eof;
    eof.kind = TokenKind::Eof;
    eof.line = line_;
    eof.col = col_;
    eof.begin = pos_;
    eof.end = pos_;
    tokens_.push_back(std::move(eof));
    out.tokens = std::move(tokens_);
    return out;
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  void fail(std::string msg) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(msg);
      error_line_ = line_;
    }
  }

  void skip_trivia() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        bool closed = false;
        while (!at_end()) {
          if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            closed = true;
            break;
          }
          advance();
        }
        if (!closed) fail("unterminated block comment");
        if (!ok_) return;
      } else if (c == '`') {
        // Compiler directive: skip to end of line (handles `timescale,
        // `define, `include, `default_nettype, ...).  Line continuations
        // in `define bodies are honoured.
        while (!at_end() && peek() != '\n') {
          if (peek() == '\\' && peek(1) == '\n') advance();
          advance();
        }
      } else {
        break;
      }
    }
  }

  Token make(TokenKind kind, std::string text, int line, int col) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.col = col;
    return t;
  }

  Token next_token() {
    const int line = line_;
    const int col = col_;
    const char c = peek();

    if (is_ident_start(c)) return lex_identifier(line, col);
    if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(line, col);
    if (c == '\'') return lex_based_number(line, col, /*prefix=*/"");
    if (c == '$') return lex_system_identifier(line, col);
    if (c == '\\') return lex_escaped_identifier(line, col);
    if (c == '"') return lex_string(line, col);
    return lex_punct(line, col);
  }

  Token lex_identifier(int line, int col) {
    std::string text;
    while (!at_end() && is_ident_char(peek())) text.push_back(advance());
    Token t = make(TokenKind::Identifier, std::move(text), line, col);
    const Keyword kw = lookup_keyword(t.text);
    if (kw != Keyword::None) {
      t.kind = TokenKind::Keyword;
      t.keyword = kw;
    }
    return t;
  }

  Token lex_system_identifier(int line, int col) {
    std::string text;
    text.push_back(advance());  // '$'
    while (!at_end() && is_ident_char(peek())) text.push_back(advance());
    if (text.size() == 1) {
      fail("stray '$'");
      return {};
    }
    return make(TokenKind::SystemIdentifier, std::move(text), line, col);
  }

  Token lex_escaped_identifier(int line, int col) {
    advance();  // '\\'
    std::string text;
    while (!at_end() && !std::isspace(static_cast<unsigned char>(peek()))) {
      text.push_back(advance());
    }
    if (text.empty()) {
      fail("empty escaped identifier");
      return {};
    }
    return make(TokenKind::Identifier, std::move(text), line, col);
  }

  Token lex_string(int line, int col) {
    advance();  // opening quote
    std::string text;
    while (!at_end() && peek() != '"') {
      char c = advance();
      if (c == '\\' && !at_end()) {
        const char esc = advance();
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: c = esc; break;
        }
      }
      text.push_back(c);
    }
    if (at_end()) {
      fail("unterminated string literal");
      return {};
    }
    advance();  // closing quote
    return make(TokenKind::String, std::move(text), line, col);
  }

  // Lexes the optional size part then delegates to lex_based_number when a
  // base follows; otherwise produces a plain decimal (or real) literal.
  Token lex_number(int line, int col) {
    std::string text;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                         peek() == '_')) {
      text.push_back(advance());
    }
    // Real literal: 3.14, 1e6, 2.5e-3
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      text.push_back(advance());
      while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                           peek() == '_')) {
        text.push_back(advance());
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      const char sign = peek(1);
      const char digit = (sign == '+' || sign == '-') ? peek(2) : sign;
      if (std::isdigit(static_cast<unsigned char>(digit))) {
        text.push_back(advance());
        if (peek() == '+' || peek() == '-') text.push_back(advance());
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
          text.push_back(advance());
        }
        return make(TokenKind::Number, std::move(text), line, col);
      }
    }
    // Sized based literal: 4'b1010
    skip_spaces_within_number();
    if (peek() == '\'') return lex_based_number(line, col, text);
    return make(TokenKind::Number, std::move(text), line, col);
  }

  void skip_spaces_within_number() {
    // Verilog allows whitespace between size and base: "4 'b0".
    std::size_t p = pos_;
    while (p < src_.size() && (src_[p] == ' ' || src_[p] == '\t')) ++p;
    if (p < src_.size() && src_[p] == '\'') {
      while (pos_ < p) advance();
    }
  }

  Token lex_based_number(int line, int col, const std::string& prefix) {
    std::string text = prefix;
    text.push_back(advance());  // '\''
    if (peek() == 's' || peek() == 'S') text.push_back(advance());
    char base = static_cast<char>(
        std::tolower(static_cast<unsigned char>(peek())));
    if (base != 'b' && base != 'o' && base != 'd' && base != 'h') {
      fail("invalid number base");
      return {};
    }
    text.push_back(advance());
    std::size_t digits = 0;
    // Whitespace allowed between base and value.
    while (peek() == ' ' || peek() == '\t') advance();
    while (!at_end() && is_base_digit(peek(), base)) {
      text.push_back(advance());
      ++digits;
    }
    if (digits == 0) {
      fail("based literal has no digits");
      return {};
    }
    return make(TokenKind::Number, std::move(text), line, col);
  }

  Token lex_punct(int line, int col) {
    const char c = advance();
    Punct p = Punct::None;
    std::string text(1, c);
    switch (c) {
      case '(': p = Punct::LParen; break;
      case ')': p = Punct::RParen; break;
      case '[': p = Punct::LBracket; break;
      case ']': p = Punct::RBracket; break;
      case '{': p = Punct::LBrace; break;
      case '}': p = Punct::RBrace; break;
      case ';': p = Punct::Semi; break;
      case ',': p = Punct::Comma; break;
      case '.': p = Punct::Dot; break;
      case '?': p = Punct::Question; break;
      case '@': p = Punct::At; break;
      case '#': p = Punct::Hash; break;
      case ':': p = Punct::Colon; break;
      case '+':
        if (peek() == ':') { advance(); text = "+:"; p = Punct::PlusColon; }
        else p = Punct::Plus;
        break;
      case '-':
        if (peek() == '>') { advance(); text = "->"; p = Punct::Arrow; }
        else if (peek() == ':') { advance(); text = "-:"; p = Punct::MinusColon; }
        else p = Punct::Minus;
        break;
      case '*':
        if (peek() == '*') { advance(); text = "**"; p = Punct::StarStar; }
        else p = Punct::Star;
        break;
      case '/': p = Punct::Slash; break;
      case '%': p = Punct::Percent; break;
      case '=':
        if (peek() == '=' && peek(1) == '=') {
          advance(); advance(); text = "==="; p = Punct::CaseEq;
        } else if (peek() == '=') {
          advance(); text = "=="; p = Punct::EqEq;
        } else {
          p = Punct::Assign;
        }
        break;
      case '!':
        if (peek() == '=' && peek(1) == '=') {
          advance(); advance(); text = "!=="; p = Punct::CaseNeq;
        } else if (peek() == '=') {
          advance(); text = "!="; p = Punct::NotEq;
        } else {
          p = Punct::Bang;
        }
        break;
      case '<':
        if (peek() == '<' && peek(1) == '<') {
          advance(); advance(); text = "<<<"; p = Punct::AShl;
        } else if (peek() == '<') {
          advance(); text = "<<"; p = Punct::Shl;
        } else if (peek() == '=') {
          advance(); text = "<="; p = Punct::LtEq;
        } else {
          p = Punct::Lt;
        }
        break;
      case '>':
        if (peek() == '>' && peek(1) == '>') {
          advance(); advance(); text = ">>>"; p = Punct::AShr;
        } else if (peek() == '>') {
          advance(); text = ">>"; p = Punct::Shr;
        } else if (peek() == '=') {
          advance(); text = ">="; p = Punct::GtEq;
        } else {
          p = Punct::Gt;
        }
        break;
      case '&':
        if (peek() == '&') { advance(); text = "&&"; p = Punct::AndAnd; }
        else p = Punct::Amp;
        break;
      case '|':
        if (peek() == '|') { advance(); text = "||"; p = Punct::OrOr; }
        else p = Punct::Pipe;
        break;
      case '^':
        if (peek() == '~') { advance(); text = "^~"; p = Punct::TildeCaret; }
        else p = Punct::Caret;
        break;
      case '~':
        if (peek() == '&') { advance(); text = "~&"; p = Punct::TildeAmp; }
        else if (peek() == '|') { advance(); text = "~|"; p = Punct::TildePipe; }
        else if (peek() == '^') { advance(); text = "~^"; p = Punct::TildeCaret; }
        else p = Punct::Tilde;
        break;
      default:
        fail(std::string("unexpected character '") + c + "'");
        return {};
    }
    Token t = make(TokenKind::Punct, std::move(text), line, col);
    t.punct = p;
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  std::vector<Token> tokens_;
  bool ok_ = true;
  std::string error_;
  int error_line_ = 0;
};

}  // namespace

LexResult lex(std::string_view source) { return LexerImpl(source).run(); }

Keyword lookup_keyword(std::string_view text) {
  const auto& table = keyword_table();
  const auto it = table.find(text);
  return it == table.end() ? Keyword::None : it->second;
}

std::string_view keyword_spelling(Keyword k) {
  for (const auto& [name, kw] : keyword_table()) {
    if (kw == k) return name;
  }
  return "";
}

std::string_view punct_spelling(Punct p) {
  switch (p) {
    case Punct::None: return "";
    case Punct::LParen: return "(";
    case Punct::RParen: return ")";
    case Punct::LBracket: return "[";
    case Punct::RBracket: return "]";
    case Punct::LBrace: return "{";
    case Punct::RBrace: return "}";
    case Punct::Semi: return ";";
    case Punct::Comma: return ",";
    case Punct::Dot: return ".";
    case Punct::Colon: return ":";
    case Punct::Question: return "?";
    case Punct::At: return "@";
    case Punct::Hash: return "#";
    case Punct::Assign: return "=";
    case Punct::Plus: return "+";
    case Punct::Minus: return "-";
    case Punct::Star: return "*";
    case Punct::Slash: return "/";
    case Punct::Percent: return "%";
    case Punct::StarStar: return "**";
    case Punct::EqEq: return "==";
    case Punct::NotEq: return "!=";
    case Punct::CaseEq: return "===";
    case Punct::CaseNeq: return "!==";
    case Punct::Lt: return "<";
    case Punct::LtEq: return "<=";
    case Punct::Gt: return ">";
    case Punct::GtEq: return ">=";
    case Punct::AndAnd: return "&&";
    case Punct::OrOr: return "||";
    case Punct::Bang: return "!";
    case Punct::Amp: return "&";
    case Punct::Pipe: return "|";
    case Punct::Caret: return "^";
    case Punct::Tilde: return "~";
    case Punct::TildeAmp: return "~&";
    case Punct::TildePipe: return "~|";
    case Punct::TildeCaret: return "~^";
    case Punct::Shl: return "<<";
    case Punct::Shr: return ">>";
    case Punct::AShl: return "<<<";
    case Punct::AShr: return ">>>";
    case Punct::Arrow: return "->";
    case Punct::PlusColon: return "+:";
    case Punct::MinusColon: return "-:";
  }
  return "";
}

}  // namespace vsd::vlog
