// Hierarchical dataflow analysis — the VSD-L2xx pass family.
//
// Where vlog/lint.hpp analyzes one module's AST at a time, these passes run
// over the *elaborated* sim::Design: the module hierarchy flattened,
// parameters folded, generate loops unrolled.  That is the representation
// in which the defects that actually sink generated RTL become visible —
// a combinational loop closed through an instance boundary, a register
// sampling another clock domain's flop, a port whose widths disagree only
// after parameter resolution.
//
// Pass catalogue (codes are stable; tests pin them):
//
//   code      sev      pass
//   VSD-L200  error    combinational loop (Tarjan SCC over comb def/use
//                      edges, verified per-bit so ripple structures like
//                      carry[i+1] = f(carry[i]) do not false-positive;
//                      message carries the cycle path)
//   VSD-L201  error    elaboration failure (unknown module, non-constant
//                      parameter, unresolved name, ...)
//   VSD-L210  warning  clock-domain crossing reaches a register through
//                      combinational logic
//   VSD-L211  warning  register samples a foreign-domain register directly
//                      without a 2-flop synchronizer (the front flop of a
//                      proper synchronizer — pure copy, fanout only into
//                      same-domain pure-copy flops — is exempt)
//   VSD-L220  warning  instance port width mismatch (formal vs. actual,
//                      both widths known after parameter folding)
//   VSD-L221  error    net connected to an instance output is also driven
//                      by another process (overlapping bits)
//   VSD-L222  warning  instance input port left unconnected
//   VSD-L230  warning  combinational always reads a signal before the
//                      block assigns it (stale-value hazard)
//   VSD-L240  warning  register in an async-reset process is not assigned
//                      on the reset branch
//
// Like the flat linter, every pass is conservative: it fires only when the
// elaborated design proves the condition, and anything dynamic (variable
// indices, unresolvable widths) gets the benefit of the doubt.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "sim/design.hpp"
#include "vlog/diagnostics.hpp"

namespace vsd::vlog {

/// Runs the L2xx passes over one elaborated design.  `top` is used as the
/// module context on the emitted diagnostics.
LintResult analyze_design(const sim::Design& design, const std::string& top);

/// Elaborates `unit` and analyzes the result.  With `top` empty, every
/// root module (one no other module instantiates; the last module when all
/// are instantiated) is elaborated and analyzed.  An elaboration failure
/// yields a VSD-L201 error diagnostic instead of findings.
LintResult analyze_unit(std::shared_ptr<const SourceUnit> unit,
                        const std::string& top = "");

/// Parses `source` and runs analyze_unit.  A parse failure yields the same
/// single VSD-L001 error diagnostic lint_source produces, so the serving
/// check stages built on either have one result shape.
LintResult elab_lint_source(std::string_view source,
                            const std::string& top = "");

/// True iff `source` parses, elaborates, and carries no Error-severity
/// L2xx finding — the hierarchical twin of lint_ok, and what `vsd eval`
/// reports as the elab-clean rate.
bool elab_ok(std::string_view source, const std::string& top = "");

}  // namespace vsd::vlog
