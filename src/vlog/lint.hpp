// Semantic static analysis over the vlog AST — the "does this RTL mean
// something sane" gate that sits one level above the parser's "does this
// text parse" gate.  The serving path runs it on generated candidates
// (`vsd serve --check lint`), the CLI exposes it as `vsd lint`, and the
// eval harness reports lint-clean rates next to syntax rates.
//
// Pass catalogue (codes are stable; tests pin them):
//
//   code      sev      pass
//   VSD-L001  error    syntax error (parse failure; lint_source only)
//   VSD-L002  error    duplicate module name in the source unit
//   VSD-L100  error    undeclared identifier
//   VSD-L101  error    duplicate declaration of a signal
//   VSD-L102  error    assignment drives an input port
//   VSD-L110  error    multiple continuous assignments drive overlapping
//                      bits of one signal
//   VSD-L111  error    signal driven by both a continuous assignment and
//                      a procedural always block
//   VSD-L112  warning  signal assigned in more than one always block
//   VSD-L120  warning  latch inference: combinational always does not
//                      assign a signal on every path ('if' without 'else')
//   VSD-L121  warning  latch inference: 'case' without a covering default
//                      in a combinational always
//   VSD-L130  warning  non-blocking assignment in a combinational always
//   VSD-L131  warning  blocking assignment to a non-integer signal in an
//                      edge-triggered always
//   VSD-L140  warning  sensitivity list misses a signal the body reads
//   VSD-L141  info     sensitivity list entry never read in the body
//   VSD-L150  error    constant bit-select outside the declared range
//   VSD-L151  error    constant part-select outside the declared range
//                      (or reversed against the declaration)
//   VSD-L152  warning  sized assignment wider than its target (truncation)
//   VSD-L160  warning  signal declared but never read
//   VSD-L161  info     parameter declared but never used
//   VSD-L103  warning  signal read but never driven
//
// Analysis is intentionally conservative: a check only fires when the
// AST proves the condition (constant indices, declared ranges, resolvable
// names).  Anything dynamic — variable indices, hierarchical references
// into other modules, instances of modules outside the source unit —
// is given the benefit of the doubt, so a diagnostic is always worth
// reading, never noise to be suppressed wholesale.
#pragma once

#include <string_view>

#include "vlog/ast.hpp"
#include "vlog/diagnostics.hpp"

namespace vsd::vlog {

/// Lints one module.  Findings carry `m.name` as their module context.
LintResult lint_module(const Module& m);

/// Lints every module in the unit plus unit-level checks (VSD-L002).
LintResult lint_unit(const SourceUnit& unit);

/// Parses and lints `source`.  A parse failure yields a single VSD-L001
/// error diagnostic (with the parser's line and message) — the structured
/// twin of ParseResult — so callers get one result type either way.
LintResult lint_source(std::string_view source);

/// True iff `source` parses and lints with no Error-severity findings.
/// This is the cheap deterministic accept/reject the serving check stage
/// and the eval harness's lint-clean rate are built on (warnings do not
/// fail it; they ride along in the diagnostics).
bool lint_ok(std::string_view source);

}  // namespace vsd::vlog
