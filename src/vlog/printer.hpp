// Pretty-printer: emits canonical Verilog source from an AST.
//
// print(parse(print(ast))) is a fixed point; tests rely on this round-trip
// property to validate the parser over randomly generated modules.
#pragma once

#include <string>

#include "vlog/ast.hpp"

namespace vsd::vlog {

std::string print_expr(const Expr& e);
std::string print_stmt(const Stmt& s, int indent = 0);
std::string print_item(const ModuleItem& item, int indent = 1);
std::string print_module(const Module& m);
std::string print_source(const SourceUnit& unit);

}  // namespace vsd::vlog
