#include "vlog/fragment.hpp"

#include "vlog/lexer.hpp"
#include "vlog/parser.hpp"
#include "vlog/significant.hpp"

namespace vsd::vlog {

std::string insert_frag_markers(std::string_view code,
                                const std::set<std::string>& significant,
                                std::string_view marker) {
  const LexResult lexed = lex(code);
  if (!lexed.ok) return std::string(code);

  std::string out;
  out.reserve(code.size() + lexed.tokens.size() * marker.size());
  std::size_t cursor = 0;
  for (const Token& tok : lexed.tokens) {
    if (tok.kind == TokenKind::Eof) break;
    const bool is_significant = significant.count(tok.text) > 0;
    if (!is_significant) continue;
    // Copy the gap, then marker + token text + marker.
    out.append(code.substr(cursor, tok.begin - cursor));
    out.append(marker);
    out.append(code.substr(tok.begin, tok.end - tok.begin));
    out.append(marker);
    cursor = tok.end;
  }
  out.append(code.substr(cursor));
  return out;
}

std::string mark_fragments(std::string_view code, std::string_view marker) {
  std::set<std::string> sig = significant_tokens(code);
  if (sig.empty()) {
    for (const auto& kw : extra_keywords()) sig.insert(kw);
    for (const auto& op : significant_operators()) sig.insert(op);
  }
  return insert_frag_markers(code, sig, marker);
}

std::string strip_frag_markers(std::string_view text, std::string_view marker) {
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t hit = text.find(marker, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      break;
    }
    out.append(text.substr(pos, hit - pos));
    pos = hit + marker.size();
  }
  return out;
}

std::vector<std::string> split_fragments(std::string_view marked,
                                         std::string_view marker) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= marked.size()) {
    const std::size_t hit = marked.find(marker, pos);
    const std::size_t end = hit == std::string_view::npos ? marked.size() : hit;
    if (end > pos) out.emplace_back(marked.substr(pos, end - pos));
    if (hit == std::string_view::npos) break;
    pos = hit + marker.size();
  }
  return out;
}

}  // namespace vsd::vlog
