#include "vlog/const_eval.hpp"

namespace vsd::vlog {

std::optional<std::int64_t> fold_int(const Expr* e, const IntResolver& resolve) {
  if (e == nullptr) return std::nullopt;
  switch (e->kind) {
    case ExprKind::Number: {
      const auto& n = static_cast<const NumberExpr&>(*e);
      if (n.is_real || n.bits.empty() || n.bits.size() > 62) {
        return std::nullopt;
      }
      std::int64_t v = 0;
      for (const char c : n.bits) {
        if (c != '0' && c != '1') return std::nullopt;  // x/z digits
        v = (v << 1) | (c == '1' ? 1 : 0);
      }
      return v;
    }
    case ExprKind::Ident: {
      const auto& id = static_cast<const IdentExpr&>(*e);
      if (id.path.size() != 1) return std::nullopt;
      if (!resolve) return std::nullopt;
      return resolve(id.path.front());
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(*e);
      const auto v = fold_int(u.operand.get(), resolve);
      if (!v) return std::nullopt;
      switch (u.op) {
        case UnaryOp::Plus: return *v;
        case UnaryOp::Minus: return -*v;
        case UnaryOp::LogicNot: return *v == 0 ? 1 : 0;
        default: return std::nullopt;  // ~ and reductions are width-bound
      }
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(*e);
      const auto l = fold_int(b.lhs.get(), resolve);
      const auto r = fold_int(b.rhs.get(), resolve);
      if (!l || !r) return std::nullopt;
      switch (b.op) {
        case BinaryOp::Add: return *l + *r;
        case BinaryOp::Sub: return *l - *r;
        case BinaryOp::Mul: return *l * *r;
        case BinaryOp::Div:
          return *r == 0 ? std::nullopt : std::optional<std::int64_t>(*l / *r);
        case BinaryOp::Mod:
          return *r == 0 ? std::nullopt : std::optional<std::int64_t>(*l % *r);
        case BinaryOp::Shl:
        case BinaryOp::AShl:
          return (*r < 0 || *r > 62) ? std::nullopt
                                     : std::optional<std::int64_t>(*l << *r);
        case BinaryOp::Shr:
        case BinaryOp::AShr:
          return (*r < 0 || *r > 62) ? std::nullopt
                                     : std::optional<std::int64_t>(*l >> *r);
        case BinaryOp::Lt: return *l < *r ? 1 : 0;
        case BinaryOp::Le: return *l <= *r ? 1 : 0;
        case BinaryOp::Gt: return *l > *r ? 1 : 0;
        case BinaryOp::Ge: return *l >= *r ? 1 : 0;
        case BinaryOp::Eq: return *l == *r ? 1 : 0;
        case BinaryOp::Neq: return *l != *r ? 1 : 0;
        case BinaryOp::LogicAnd: return (*l != 0 && *r != 0) ? 1 : 0;
        case BinaryOp::LogicOr: return (*l != 0 || *r != 0) ? 1 : 0;
        case BinaryOp::BitAnd: return *l & *r;
        case BinaryOp::BitOr: return *l | *r;
        case BinaryOp::BitXor: return *l ^ *r;
        case BinaryOp::Pow: {
          if (*r < 0 || *r > 62) return std::nullopt;
          std::int64_t v = 1;
          for (std::int64_t i = 0; i < *r; ++i) {
            if (v > (1LL << 50)) return std::nullopt;
            v *= *l;
          }
          return v;
        }
        default: return std::nullopt;
      }
    }
    case ExprKind::Ternary: {
      const auto& t = static_cast<const TernaryExpr&>(*e);
      const auto c = fold_int(t.cond.get(), resolve);
      if (!c) return std::nullopt;
      return fold_int(*c != 0 ? t.then_expr.get() : t.else_expr.get(), resolve);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace vsd::vlog
