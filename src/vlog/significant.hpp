// Identification of syntactically significant tokens (paper Section III-C,
// Fig. 3).
//
// Significant tokens are the union of:
//   1. AST keywords — identifiers and literal leaves extracted from the
//      parsed AST of the code (module/port/net/parameter/instance names,
//      range bounds, ...),
//   2. extra keywords — a fixed list of common Verilog constructs such as
//      `module`, `endmodule`, `posedge`, `case`, ...,
//   3. structural operators — a small fixed set ( '(' ')' ';' '=' '<=' '@' )
//      that delimit code fragments.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "vlog/ast.hpp"

namespace vsd::vlog {

/// The fixed "extra keywords" list from Fig. 3 (supplemented Verilog
/// constructs such as negedge/endmodule).
const std::vector<std::string>& extra_keywords();

/// Structural operator lexemes that also count as significant.
const std::vector<std::string>& significant_operators();

/// Walks a module's AST and collects its AST keywords: every identifier
/// leaf and every numeric literal spelled in a range/select position.
std::set<std::string> extract_ast_keywords(const Module& m);

/// Significant tokens of a whole source unit:
/// AST keywords of every module ∪ extra keywords ∪ structural operators.
std::set<std::string> significant_tokens(const SourceUnit& unit);

/// Convenience: parses `source` and returns its significant tokens.
/// Returns an empty set when the source does not parse.
std::set<std::string> significant_tokens(std::string_view source);

}  // namespace vsd::vlog
