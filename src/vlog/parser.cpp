#include "vlog/parser.hpp"

#include <utility>

#include "vlog/number.hpp"

namespace vsd::vlog {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ParseResult run() {
    ParseResult out;
    out.unit = std::make_unique<SourceUnit>();
    while (ok_ && !at(TokenKind::Eof)) {
      if (cur().is_kw(Keyword::Module) || cur().is_kw(Keyword::Macromodule)) {
        auto m = parse_module();
        if (ok_) out.unit->modules.push_back(std::move(m));
      } else {
        fail("expected 'module'");
      }
    }
    out.ok = ok_;
    out.error = error_;
    out.error_line = error_line_;
    return out;
  }

 private:
  // --- token cursor -------------------------------------------------------
  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek(std::size_t ahead = 1) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool at(TokenKind k) const { return cur().kind == k; }
  bool at_kw(Keyword k) const { return cur().is_kw(k); }
  bool at_punct(Punct p) const { return cur().is_punct(p); }

  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool accept_punct(Punct p) {
    if (at_punct(p)) {
      advance();
      return true;
    }
    return false;
  }
  bool accept_kw(Keyword k) {
    if (at_kw(k)) {
      advance();
      return true;
    }
    return false;
  }

  void expect_punct(Punct p, std::string_view what) {
    if (!accept_punct(p)) fail(std::string("expected '") + std::string(punct_spelling(p)) + "' in " + std::string(what));
  }
  void expect_kw(Keyword k, std::string_view what) {
    if (!accept_kw(k)) fail(std::string("expected '") + std::string(keyword_spelling(k)) + "' in " + std::string(what));
  }
  std::string expect_ident(std::string_view what) {
    if (!at(TokenKind::Identifier)) {
      fail(std::string("expected identifier in ") + std::string(what));
      return {};
    }
    return advance().text;
  }

  void fail(std::string msg) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(msg);
      error_line_ = cur().line;
    }
  }

  // --- expressions --------------------------------------------------------

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(0);
    if (!ok_) return nullptr;
    if (accept_punct(Punct::Question)) {
      auto t = std::make_unique<TernaryExpr>();
      t->line = cond ? cond->line : cur().line;
      t->cond = std::move(cond);
      t->then_expr = parse_ternary();
      expect_punct(Punct::Colon, "ternary expression");
      t->else_expr = parse_ternary();
      return t;
    }
    return cond;
  }

  // Binary operator precedence, lowest first.
  static int binary_prec(Punct p) {
    switch (p) {
      case Punct::OrOr: return 1;
      case Punct::AndAnd: return 2;
      case Punct::Pipe: return 3;
      case Punct::Caret:
      case Punct::TildeCaret: return 4;
      case Punct::Amp: return 5;
      case Punct::EqEq:
      case Punct::NotEq:
      case Punct::CaseEq:
      case Punct::CaseNeq: return 6;
      case Punct::Lt:
      case Punct::LtEq:
      case Punct::Gt:
      case Punct::GtEq: return 7;
      case Punct::Shl:
      case Punct::Shr:
      case Punct::AShl:
      case Punct::AShr: return 8;
      case Punct::Plus:
      case Punct::Minus: return 9;
      case Punct::Star:
      case Punct::Slash:
      case Punct::Percent: return 10;
      case Punct::StarStar: return 11;
      default: return -1;
    }
  }

  static BinaryOp binary_op(Punct p) {
    switch (p) {
      case Punct::OrOr: return BinaryOp::LogicOr;
      case Punct::AndAnd: return BinaryOp::LogicAnd;
      case Punct::Pipe: return BinaryOp::BitOr;
      case Punct::Caret: return BinaryOp::BitXor;
      case Punct::TildeCaret: return BinaryOp::BitXnor;
      case Punct::Amp: return BinaryOp::BitAnd;
      case Punct::EqEq: return BinaryOp::Eq;
      case Punct::NotEq: return BinaryOp::Neq;
      case Punct::CaseEq: return BinaryOp::CaseEq;
      case Punct::CaseNeq: return BinaryOp::CaseNeq;
      case Punct::Lt: return BinaryOp::Lt;
      case Punct::LtEq: return BinaryOp::Le;
      case Punct::Gt: return BinaryOp::Gt;
      case Punct::GtEq: return BinaryOp::Ge;
      case Punct::Shl: return BinaryOp::Shl;
      case Punct::Shr: return BinaryOp::Shr;
      case Punct::AShl: return BinaryOp::AShl;
      case Punct::AShr: return BinaryOp::AShr;
      case Punct::Plus: return BinaryOp::Add;
      case Punct::Minus: return BinaryOp::Sub;
      case Punct::Star: return BinaryOp::Mul;
      case Punct::Slash: return BinaryOp::Div;
      case Punct::Percent: return BinaryOp::Mod;
      case Punct::StarStar: return BinaryOp::Pow;
      default: return BinaryOp::Add;
    }
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    while (ok_ && at(TokenKind::Punct)) {
      const int prec = binary_prec(cur().punct);
      if (prec < 0 || prec < min_prec) break;
      const Punct p = cur().punct;
      advance();
      ExprPtr rhs = parse_binary(prec + 1);
      if (!ok_) return nullptr;
      auto b = std::make_unique<BinaryExpr>();
      b->line = lhs ? lhs->line : cur().line;
      b->op = binary_op(p);
      b->lhs = std::move(lhs);
      b->rhs = std::move(rhs);
      lhs = std::move(b);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::Punct)) {
      UnaryOp op;
      bool matched = true;
      switch (cur().punct) {
        case Punct::Plus: op = UnaryOp::Plus; break;
        case Punct::Minus: op = UnaryOp::Minus; break;
        case Punct::Bang: op = UnaryOp::LogicNot; break;
        case Punct::Tilde: op = UnaryOp::BitNot; break;
        case Punct::Amp: op = UnaryOp::ReduceAnd; break;
        case Punct::TildeAmp: op = UnaryOp::ReduceNand; break;
        case Punct::Pipe: op = UnaryOp::ReduceOr; break;
        case Punct::TildePipe: op = UnaryOp::ReduceNor; break;
        case Punct::Caret: op = UnaryOp::ReduceXor; break;
        case Punct::TildeCaret: op = UnaryOp::ReduceXnor; break;
        default: matched = false; op = UnaryOp::Plus; break;
      }
      if (matched) {
        const int line = cur().line;
        advance();
        auto u = std::make_unique<UnaryExpr>();
        u->line = line;
        u->op = op;
        u->operand = parse_unary();
        return u;
      }
    }
    return parse_postfix(parse_primary());
  }

  ExprPtr parse_postfix(ExprPtr base) {
    while (ok_ && at_punct(Punct::LBracket)) {
      advance();
      auto sel = std::make_unique<SelectExpr>();
      sel->line = base ? base->line : cur().line;
      sel->base = std::move(base);
      sel->index = parse_expr();
      if (accept_punct(Punct::Colon)) {
        sel->select = SelectKind::Part;
        sel->width = parse_expr();
      } else if (accept_punct(Punct::PlusColon)) {
        sel->select = SelectKind::IndexedUp;
        sel->width = parse_expr();
      } else if (accept_punct(Punct::MinusColon)) {
        sel->select = SelectKind::IndexedDown;
        sel->width = parse_expr();
      } else {
        sel->select = SelectKind::Bit;
      }
      expect_punct(Punct::RBracket, "select");
      base = std::move(sel);
    }
    return base;
  }

  ExprPtr parse_primary() {
    const int line = cur().line;
    if (at(TokenKind::Number)) {
      auto n = std::make_unique<NumberExpr>();
      n->line = line;
      n->text = advance().text;
      const DecodedNumber d = decode_number(n->text);
      if (!d.ok) {
        fail("bad numeric literal: " + d.error);
        return nullptr;
      }
      n->is_real = d.is_real;
      n->real_value = d.real_value;
      n->width = d.width;
      n->is_signed = d.is_signed;
      n->bits = d.bits;
      return n;
    }
    if (at(TokenKind::String)) {
      auto s = std::make_unique<StringExpr>();
      s->line = line;
      s->value = advance().text;
      return s;
    }
    if (at(TokenKind::SystemIdentifier)) {
      auto c = std::make_unique<CallExpr>();
      c->line = line;
      c->callee = advance().text;
      c->is_system = true;
      if (accept_punct(Punct::LParen)) {
        if (!at_punct(Punct::RParen)) {
          c->args.push_back(parse_expr());
          while (ok_ && accept_punct(Punct::Comma)) c->args.push_back(parse_expr());
        }
        expect_punct(Punct::RParen, "system function call");
      }
      return c;
    }
    if (at(TokenKind::Identifier)) {
      // Function call or (hierarchical) identifier.
      if (peek().is_punct(Punct::LParen)) {
        auto c = std::make_unique<CallExpr>();
        c->line = line;
        c->callee = advance().text;
        advance();  // '('
        if (!at_punct(Punct::RParen)) {
          c->args.push_back(parse_expr());
          while (ok_ && accept_punct(Punct::Comma)) c->args.push_back(parse_expr());
        }
        expect_punct(Punct::RParen, "function call");
        return c;
      }
      auto id = std::make_unique<IdentExpr>();
      id->line = line;
      id->path.push_back(advance().text);
      while (ok_ && at_punct(Punct::Dot) && peek().is(TokenKind::Identifier)) {
        advance();
        id->path.push_back(advance().text);
      }
      return id;
    }
    if (at_punct(Punct::LParen)) {
      advance();
      ExprPtr e = parse_expr();
      expect_punct(Punct::RParen, "parenthesised expression");
      return e;
    }
    if (at_punct(Punct::LBrace)) {
      advance();
      ExprPtr first = parse_expr();
      if (!ok_) return nullptr;
      if (at_punct(Punct::LBrace)) {
        // Replication: {N{...}}
        advance();
        auto body = std::make_unique<ConcatExpr>();
        body->line = line;
        body->parts.push_back(parse_expr());
        while (ok_ && accept_punct(Punct::Comma)) body->parts.push_back(parse_expr());
        expect_punct(Punct::RBrace, "replication body");
        expect_punct(Punct::RBrace, "replication");
        auto r = std::make_unique<ReplExpr>();
        r->line = line;
        r->count = std::move(first);
        r->body = std::move(body);
        return r;
      }
      auto c = std::make_unique<ConcatExpr>();
      c->line = line;
      c->parts.push_back(std::move(first));
      while (ok_ && accept_punct(Punct::Comma)) c->parts.push_back(parse_expr());
      expect_punct(Punct::RBrace, "concatenation");
      return c;
    }
    fail("expected expression");
    return nullptr;
  }

  /// LHS of an assignment: identifier with selects, or a concat of LHSs.
  ExprPtr parse_lvalue() {
    if (at_punct(Punct::LBrace)) {
      const int line = cur().line;
      advance();
      auto c = std::make_unique<ConcatExpr>();
      c->line = line;
      c->parts.push_back(parse_lvalue());
      while (ok_ && accept_punct(Punct::Comma)) c->parts.push_back(parse_lvalue());
      expect_punct(Punct::RBrace, "lvalue concatenation");
      return c;
    }
    if (!at(TokenKind::Identifier)) {
      fail("expected lvalue");
      return nullptr;
    }
    auto id = std::make_unique<IdentExpr>();
    id->line = cur().line;
    id->path.push_back(advance().text);
    while (ok_ && at_punct(Punct::Dot) && peek().is(TokenKind::Identifier)) {
      advance();
      id->path.push_back(advance().text);
    }
    return parse_postfix(std::move(id));
  }

  // --- ranges / delays ----------------------------------------------------

  std::optional<Range> maybe_range() {
    if (!at_punct(Punct::LBracket)) return std::nullopt;
    advance();
    Range r;
    r.msb = parse_expr();
    expect_punct(Punct::Colon, "range");
    r.lsb = parse_expr();
    expect_punct(Punct::RBracket, "range");
    return r;
  }

  ExprPtr maybe_delay() {
    if (!accept_punct(Punct::Hash)) return nullptr;
    if (accept_punct(Punct::LParen)) {
      ExprPtr e = parse_expr();
      // #(min:typ:max) — keep the typ value.
      if (accept_punct(Punct::Colon)) {
        ExprPtr typ = parse_expr();
        expect_punct(Punct::Colon, "min:typ:max delay");
        parse_expr();
        e = std::move(typ);
      }
      expect_punct(Punct::RParen, "delay");
      return e;
    }
    return parse_primary();
  }

  // --- statements ---------------------------------------------------------

  StmtPtr parse_stmt() {
    const int line = cur().line;
    if (at_kw(Keyword::Begin)) return parse_block();
    if (accept_punct(Punct::Semi)) {
      auto s = std::make_unique<NullStmt>();
      s->line = line;
      return s;
    }
    if (at_kw(Keyword::If)) return parse_if();
    if (at_kw(Keyword::Case) || at_kw(Keyword::Casez) || at_kw(Keyword::Casex)) {
      return parse_case();
    }
    if (at_kw(Keyword::For)) return parse_for();
    if (accept_kw(Keyword::While)) {
      auto s = std::make_unique<WhileStmt>();
      s->line = line;
      expect_punct(Punct::LParen, "while");
      s->cond = parse_expr();
      expect_punct(Punct::RParen, "while");
      s->body = parse_stmt();
      return s;
    }
    if (accept_kw(Keyword::Repeat)) {
      auto s = std::make_unique<RepeatStmt>();
      s->line = line;
      expect_punct(Punct::LParen, "repeat");
      s->count = parse_expr();
      expect_punct(Punct::RParen, "repeat");
      s->body = parse_stmt();
      return s;
    }
    if (accept_kw(Keyword::Forever)) {
      auto s = std::make_unique<ForeverStmt>();
      s->line = line;
      s->body = parse_stmt();
      return s;
    }
    if (accept_kw(Keyword::Wait)) {
      auto s = std::make_unique<WaitStmt>();
      s->line = line;
      expect_punct(Punct::LParen, "wait");
      s->cond = parse_expr();
      expect_punct(Punct::RParen, "wait");
      s->body = parse_stmt();
      return s;
    }
    if (accept_kw(Keyword::Disable)) {
      auto s = std::make_unique<DisableStmt>();
      s->line = line;
      s->target = expect_ident("disable");
      expect_punct(Punct::Semi, "disable");
      return s;
    }
    if (at_punct(Punct::Arrow)) {
      advance();
      auto s = std::make_unique<TriggerStmt>();
      s->line = line;
      s->target = expect_ident("event trigger");
      expect_punct(Punct::Semi, "event trigger");
      return s;
    }
    if (at_punct(Punct::Hash)) {
      auto s = std::make_unique<DelayStmt>();
      s->line = line;
      s->delay = maybe_delay();
      if (accept_punct(Punct::Semi)) {
        s->body = std::make_unique<NullStmt>();
      } else {
        s->body = parse_stmt();
      }
      return s;
    }
    if (at_punct(Punct::At)) return parse_event_control();
    if (at(TokenKind::SystemIdentifier)) {
      auto s = std::make_unique<SysTaskStmt>();
      s->line = line;
      s->name = advance().text;
      if (accept_punct(Punct::LParen)) {
        if (!at_punct(Punct::RParen)) {
          s->args.push_back(parse_expr());
          while (ok_ && accept_punct(Punct::Comma)) s->args.push_back(parse_expr());
        }
        expect_punct(Punct::RParen, "system task");
      }
      expect_punct(Punct::Semi, "system task");
      return s;
    }
    // Assignment or task call.
    if (at(TokenKind::Identifier) || at_punct(Punct::LBrace)) {
      // Task call: ident ; or ident(...) ;
      if (at(TokenKind::Identifier) &&
          (peek().is_punct(Punct::Semi) ||
           (peek().is_punct(Punct::LParen)))) {
        // Could still be an assignment "x = f(y);" — but an identifier
        // followed directly by '(' or ';' at statement level is a task call.
        auto s = std::make_unique<TaskCallStmt>();
        s->line = line;
        s->name = advance().text;
        if (accept_punct(Punct::LParen)) {
          if (!at_punct(Punct::RParen)) {
            s->args.push_back(parse_expr());
            while (ok_ && accept_punct(Punct::Comma)) s->args.push_back(parse_expr());
          }
          expect_punct(Punct::RParen, "task call");
        }
        expect_punct(Punct::Semi, "task call");
        return s;
      }
      auto s = std::make_unique<AssignStmt>();
      s->line = line;
      s->lhs = parse_lvalue();
      if (accept_punct(Punct::LtEq)) {
        s->non_blocking = true;
      } else if (!accept_punct(Punct::Assign)) {
        fail("expected '=' or '<=' in assignment");
        return s;
      }
      if (at_punct(Punct::Hash)) s->delay = maybe_delay();
      s->rhs = parse_expr();
      expect_punct(Punct::Semi, "assignment");
      return s;
    }
    fail("expected statement");
    return std::make_unique<NullStmt>();
  }

  StmtPtr parse_block() {
    auto b = std::make_unique<BlockStmt>();
    b->line = cur().line;
    expect_kw(Keyword::Begin, "block");
    if (accept_punct(Punct::Colon)) b->label = expect_ident("block label");
    while (ok_ && !at_kw(Keyword::End) && !at(TokenKind::Eof)) {
      b->body.push_back(parse_stmt());
    }
    expect_kw(Keyword::End, "block");
    return b;
  }

  StmtPtr parse_if() {
    auto s = std::make_unique<IfStmt>();
    s->line = cur().line;
    expect_kw(Keyword::If, "if");
    expect_punct(Punct::LParen, "if");
    s->cond = parse_expr();
    expect_punct(Punct::RParen, "if");
    s->then_stmt = parse_stmt();
    if (accept_kw(Keyword::Else)) s->else_stmt = parse_stmt();
    return s;
  }

  StmtPtr parse_case() {
    auto s = std::make_unique<CaseStmt>();
    s->line = cur().line;
    if (accept_kw(Keyword::Casez)) s->case_kind = CaseKind::Casez;
    else if (accept_kw(Keyword::Casex)) s->case_kind = CaseKind::Casex;
    else expect_kw(Keyword::Case, "case");
    expect_punct(Punct::LParen, "case");
    s->subject = parse_expr();
    expect_punct(Punct::RParen, "case");
    while (ok_ && !at_kw(Keyword::Endcase) && !at(TokenKind::Eof)) {
      CaseItem item;
      if (accept_kw(Keyword::Default)) {
        accept_punct(Punct::Colon);
      } else {
        item.labels.push_back(parse_expr());
        while (ok_ && accept_punct(Punct::Comma)) item.labels.push_back(parse_expr());
        expect_punct(Punct::Colon, "case item");
      }
      item.body = parse_stmt();
      s->items.push_back(std::move(item));
    }
    expect_kw(Keyword::Endcase, "case");
    return s;
  }

  StmtPtr parse_for() {
    auto s = std::make_unique<ForStmt>();
    s->line = cur().line;
    expect_kw(Keyword::For, "for");
    expect_punct(Punct::LParen, "for");
    s->init = parse_for_assign();
    expect_punct(Punct::Semi, "for");
    s->cond = parse_expr();
    expect_punct(Punct::Semi, "for");
    s->step = parse_for_assign();
    expect_punct(Punct::RParen, "for");
    s->body = parse_stmt();
    return s;
  }

  StmtPtr parse_for_assign() {
    auto a = std::make_unique<AssignStmt>();
    a->line = cur().line;
    a->lhs = parse_lvalue();
    if (!accept_punct(Punct::Assign)) fail("expected '=' in for clause");
    a->rhs = parse_expr();
    return a;
  }

  StmtPtr parse_event_control() {
    auto s = std::make_unique<EventControlStmt>();
    s->line = cur().line;
    expect_punct(Punct::At, "event control");
    if (at_punct(Punct::Star)) {
      advance();
      s->star = true;
    } else if (at(TokenKind::Identifier)) {
      EventExpr e;
      auto id = std::make_unique<IdentExpr>();
      id->line = cur().line;
      id->path.push_back(advance().text);
      e.signal = std::move(id);
      s->events.push_back(std::move(e));
    } else {
      expect_punct(Punct::LParen, "event control");
      if (at_punct(Punct::Star)) {
        advance();
        s->star = true;
      } else {
        s->events.push_back(parse_event_expr());
        while (ok_ && (accept_kw(Keyword::Or) || accept_punct(Punct::Comma))) {
          s->events.push_back(parse_event_expr());
        }
      }
      expect_punct(Punct::RParen, "event control");
    }
    if (at_kw(Keyword::Endmodule) || at(TokenKind::Eof)) {
      fail("event control without statement");
      return s;
    }
    s->body = parse_stmt();
    return s;
  }

  EventExpr parse_event_expr() {
    EventExpr e;
    if (accept_kw(Keyword::Posedge)) e.edge = EdgeKind::Posedge;
    else if (accept_kw(Keyword::Negedge)) e.edge = EdgeKind::Negedge;
    e.signal = parse_expr();
    return e;
  }

  // --- module items -------------------------------------------------------

  std::unique_ptr<Module> parse_module() {
    auto m = std::make_unique<Module>();
    m->line = cur().line;
    advance();  // module / macromodule
    m->name = expect_ident("module header");

    if (accept_punct(Punct::Hash)) {
      expect_punct(Punct::LParen, "parameter port list");
      parse_header_params(*m);
      expect_punct(Punct::RParen, "parameter port list");
    }
    if (accept_punct(Punct::LParen)) {
      if (!at_punct(Punct::RParen)) parse_port_list(*m);
      expect_punct(Punct::RParen, "port list");
    }
    expect_punct(Punct::Semi, "module header");

    while (ok_ && !at_kw(Keyword::Endmodule) && !at(TokenKind::Eof)) {
      parse_item(m->items);
    }
    expect_kw(Keyword::Endmodule, "module");
    return m;
  }

  void parse_header_params(Module& m) {
    accept_kw(Keyword::Parameter);
    maybe_range();  // parameter [3:0] W = ...
    while (ok_) {
      ParamAssign pa;
      pa.name = expect_ident("parameter");
      expect_punct(Punct::Assign, "parameter");
      pa.value = parse_expr();
      m.header_params.push_back(std::move(pa));
      if (!accept_punct(Punct::Comma)) break;
      accept_kw(Keyword::Parameter);
      maybe_range();
    }
  }

  void parse_port_list(Module& m) {
    // ANSI header if the first port starts with a direction keyword.
    if (at_kw(Keyword::Input) || at_kw(Keyword::Output) || at_kw(Keyword::Inout)) {
      PortDir dir = PortDir::Input;
      bool is_reg = false;
      bool is_signed = false;
      std::optional<Range> range;
      while (ok_) {
        if (at_kw(Keyword::Input) || at_kw(Keyword::Output) || at_kw(Keyword::Inout)) {
          if (accept_kw(Keyword::Input)) dir = PortDir::Input;
          else if (accept_kw(Keyword::Output)) dir = PortDir::Output;
          else { accept_kw(Keyword::Inout); dir = PortDir::Inout; }
          is_reg = false;
          is_signed = false;
          range.reset();
          if (accept_kw(Keyword::Wire)) is_reg = false;
          else if (accept_kw(Keyword::Reg)) is_reg = true;
          if (accept_kw(Keyword::Signed)) is_signed = true;
          if (at_punct(Punct::LBracket)) range = maybe_range();
        }
        ModulePort p;
        p.ansi = true;
        p.dir = dir;
        p.is_reg = is_reg;
        p.is_signed = is_signed;
        if (range) {
          p.range = Range{clone_expr(range->msb), clone_expr(range->lsb)};
        }
        p.name = expect_ident("ANSI port");
        m.ports.push_back(std::move(p));
        if (!accept_punct(Punct::Comma)) break;
      }
      return;
    }
    // Non-ANSI: just names.
    while (ok_) {
      ModulePort p;
      p.ansi = false;
      p.name = expect_ident("port");
      m.ports.push_back(std::move(p));
      if (!accept_punct(Punct::Comma)) break;
    }
  }

  // Clones a (constant) expression.  Only the node kinds that can appear in
  // ranges/delays are supported; anything else throws via fail().
  ExprPtr clone_expr(const ExprPtr& e) {
    if (!e) return nullptr;
    switch (e->kind) {
      case ExprKind::Number: {
        const auto& n = static_cast<const NumberExpr&>(*e);
        auto out = std::make_unique<NumberExpr>();
        out->line = n.line;
        out->text = n.text;
        out->is_real = n.is_real;
        out->real_value = n.real_value;
        out->width = n.width;
        out->is_signed = n.is_signed;
        out->bits = n.bits;
        return out;
      }
      case ExprKind::Ident: {
        const auto& i = static_cast<const IdentExpr&>(*e);
        auto out = std::make_unique<IdentExpr>();
        out->line = i.line;
        out->path = i.path;
        return out;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(*e);
        auto out = std::make_unique<UnaryExpr>();
        out->line = u.line;
        out->op = u.op;
        out->operand = clone_expr(u.operand);
        return out;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(*e);
        auto out = std::make_unique<BinaryExpr>();
        out->line = b.line;
        out->op = b.op;
        out->lhs = clone_expr(b.lhs);
        out->rhs = clone_expr(b.rhs);
        return out;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(*e);
        auto out = std::make_unique<TernaryExpr>();
        out->line = t.line;
        out->cond = clone_expr(t.cond);
        out->then_expr = clone_expr(t.then_expr);
        out->else_expr = clone_expr(t.else_expr);
        return out;
      }
      default:
        fail("unsupported expression in constant context");
        return nullptr;
    }
  }

  void parse_item(std::vector<ItemPtr>& items) {
    const int line = cur().line;
    if (at_kw(Keyword::Input) || at_kw(Keyword::Output) || at_kw(Keyword::Inout)) {
      items.push_back(parse_port_decl());
      return;
    }
    if (at_kw(Keyword::Wire) || at_kw(Keyword::Reg) || at_kw(Keyword::Integer) ||
        at_kw(Keyword::Real) || at_kw(Keyword::Time) || at_kw(Keyword::Tri) ||
        at_kw(Keyword::Supply0) || at_kw(Keyword::Supply1)) {
      items.push_back(parse_net_decl());
      return;
    }
    if (at_kw(Keyword::Genvar)) {
      advance();
      auto g = std::make_unique<GenvarItem>();
      g->line = line;
      g->names.push_back(expect_ident("genvar"));
      while (ok_ && accept_punct(Punct::Comma)) g->names.push_back(expect_ident("genvar"));
      expect_punct(Punct::Semi, "genvar");
      items.push_back(std::move(g));
      return;
    }
    if (at_kw(Keyword::Parameter) || at_kw(Keyword::Localparam)) {
      items.push_back(parse_param_decl());
      return;
    }
    if (at_kw(Keyword::Assign)) {
      items.push_back(parse_cont_assign());
      return;
    }
    if (accept_kw(Keyword::Always)) {
      auto a = std::make_unique<AlwaysItem>();
      a->line = line;
      a->body = parse_stmt();
      items.push_back(std::move(a));
      return;
    }
    if (accept_kw(Keyword::Initial)) {
      auto i = std::make_unique<InitialItem>();
      i->line = line;
      i->body = parse_stmt();
      items.push_back(std::move(i));
      return;
    }
    if (at_kw(Keyword::Function)) {
      items.push_back(parse_function());
      return;
    }
    if (at_kw(Keyword::Task)) {
      items.push_back(parse_task());
      return;
    }
    if (at_kw(Keyword::Generate)) {
      parse_generate(items);
      return;
    }
    if (at(TokenKind::Identifier)) {
      items.push_back(parse_instance());
      return;
    }
    fail("unexpected token in module body");
  }

  ItemPtr parse_port_decl() {
    auto p = std::make_unique<PortDeclItem>();
    p->line = cur().line;
    if (accept_kw(Keyword::Input)) p->dir = PortDir::Input;
    else if (accept_kw(Keyword::Output)) p->dir = PortDir::Output;
    else { expect_kw(Keyword::Inout, "port declaration"); p->dir = PortDir::Inout; }
    if (accept_kw(Keyword::Wire)) p->is_reg = false;
    else if (accept_kw(Keyword::Reg)) p->is_reg = true;
    if (accept_kw(Keyword::Signed)) p->is_signed = true;
    p->range = maybe_range();
    p->names.push_back(expect_ident("port declaration"));
    while (ok_ && accept_punct(Punct::Comma)) p->names.push_back(expect_ident("port declaration"));
    expect_punct(Punct::Semi, "port declaration");
    return p;
  }

  ItemPtr parse_net_decl() {
    auto d = std::make_unique<NetDeclItem>();
    d->line = cur().line;
    if (accept_kw(Keyword::Wire)) d->net = NetType::Wire;
    else if (accept_kw(Keyword::Reg)) d->net = NetType::Reg;
    else if (accept_kw(Keyword::Integer)) d->net = NetType::Integer;
    else if (accept_kw(Keyword::Real)) d->net = NetType::Real;
    else if (accept_kw(Keyword::Time)) d->net = NetType::Time;
    else if (accept_kw(Keyword::Tri)) d->net = NetType::Tri;
    else if (accept_kw(Keyword::Supply0)) d->net = NetType::Supply0;
    else { expect_kw(Keyword::Supply1, "net declaration"); d->net = NetType::Supply1; }
    if (accept_kw(Keyword::Signed)) d->is_signed = true;
    d->range = maybe_range();
    while (ok_) {
      DeclaredNet n;
      n.name = expect_ident("net declaration");
      if (at_punct(Punct::LBracket)) n.unpacked = maybe_range();
      if (accept_punct(Punct::Assign)) n.init = parse_expr();
      d->nets.push_back(std::move(n));
      if (!accept_punct(Punct::Comma)) break;
    }
    expect_punct(Punct::Semi, "net declaration");
    return d;
  }

  ItemPtr parse_param_decl() {
    auto d = std::make_unique<ParamDeclItem>();
    d->line = cur().line;
    d->local = accept_kw(Keyword::Localparam);
    if (!d->local) expect_kw(Keyword::Parameter, "parameter declaration");
    accept_kw(Keyword::Integer);
    if (accept_kw(Keyword::Signed)) d->is_signed = true;
    d->range = maybe_range();
    while (ok_) {
      ParamAssign pa;
      pa.name = expect_ident("parameter declaration");
      expect_punct(Punct::Assign, "parameter declaration");
      pa.value = parse_expr();
      d->params.push_back(std::move(pa));
      if (!accept_punct(Punct::Comma)) break;
    }
    expect_punct(Punct::Semi, "parameter declaration");
    return d;
  }

  ItemPtr parse_cont_assign() {
    auto a = std::make_unique<ContAssignItem>();
    a->line = cur().line;
    expect_kw(Keyword::Assign, "continuous assignment");
    if (at_punct(Punct::Hash)) a->delay = maybe_delay();
    while (ok_) {
      ExprPtr lhs = parse_lvalue();
      expect_punct(Punct::Assign, "continuous assignment");
      ExprPtr rhs = parse_expr();
      a->assigns.emplace_back(std::move(lhs), std::move(rhs));
      if (!accept_punct(Punct::Comma)) break;
    }
    expect_punct(Punct::Semi, "continuous assignment");
    return a;
  }

  ItemPtr parse_instance() {
    auto inst = std::make_unique<InstanceItem>();
    inst->line = cur().line;
    inst->module_name = expect_ident("instance");
    if (accept_punct(Punct::Hash)) {
      expect_punct(Punct::LParen, "parameter override");
      inst->param_overrides = parse_connection_list();
      expect_punct(Punct::RParen, "parameter override");
    }
    inst->instance_name = expect_ident("instance");
    expect_punct(Punct::LParen, "instance");
    if (!at_punct(Punct::RParen)) inst->connections = parse_connection_list();
    expect_punct(Punct::RParen, "instance");
    expect_punct(Punct::Semi, "instance");
    return inst;
  }

  std::vector<PortConnection> parse_connection_list() {
    std::vector<PortConnection> conns;
    while (ok_) {
      PortConnection c;
      if (accept_punct(Punct::Dot)) {
        c.formal = expect_ident("named connection");
        expect_punct(Punct::LParen, "named connection");
        if (!at_punct(Punct::RParen)) c.actual = parse_expr();
        expect_punct(Punct::RParen, "named connection");
      } else {
        c.actual = parse_expr();
      }
      conns.push_back(std::move(c));
      if (!accept_punct(Punct::Comma)) break;
    }
    return conns;
  }

  void parse_function_args(std::vector<FunctionArg>& args, bool ansi) {
    // One direction group: input [range] name {, name}
    while (ok_) {
      FunctionArg proto;
      if (accept_kw(Keyword::Input)) proto.dir = PortDir::Input;
      else if (accept_kw(Keyword::Output)) proto.dir = PortDir::Output;
      else if (accept_kw(Keyword::Inout)) proto.dir = PortDir::Inout;
      else if (!ansi) { fail("expected direction in function/task argument"); return; }
      if (accept_kw(Keyword::Integer)) proto.net = NetType::Integer;
      else if (accept_kw(Keyword::Reg)) proto.net = NetType::Reg;
      if (accept_kw(Keyword::Signed)) proto.is_signed = true;
      proto.range = maybe_range();
      while (ok_) {
        FunctionArg a;
        a.dir = proto.dir;
        a.net = proto.net;
        a.is_signed = proto.is_signed;
        if (proto.range) {
          a.range = Range{clone_expr(proto.range->msb), clone_expr(proto.range->lsb)};
        }
        a.name = expect_ident("function/task argument");
        args.push_back(std::move(a));
        if (ansi) break;
        if (!accept_punct(Punct::Comma)) { expect_punct(Punct::Semi, "argument declaration"); return; }
      }
      if (ansi) {
        if (!accept_punct(Punct::Comma)) return;
      }
    }
  }

  ItemPtr parse_function() {
    auto f = std::make_unique<FunctionItem>();
    f->line = cur().line;
    expect_kw(Keyword::Function, "function");
    accept_kw(Keyword::Integer);
    if (accept_kw(Keyword::Signed)) f->is_signed = true;
    f->return_range = maybe_range();
    f->name = expect_ident("function");
    if (accept_punct(Punct::LParen)) {
      if (!at_punct(Punct::RParen)) parse_function_args(f->args, /*ansi=*/true);
      expect_punct(Punct::RParen, "function");
      expect_punct(Punct::Semi, "function");
    } else {
      expect_punct(Punct::Semi, "function");
      while (ok_ && (at_kw(Keyword::Input) || at_kw(Keyword::Output) || at_kw(Keyword::Inout))) {
        parse_function_args(f->args, /*ansi=*/false);
      }
    }
    while (ok_ && (at_kw(Keyword::Reg) || at_kw(Keyword::Integer) ||
                   at_kw(Keyword::Parameter) || at_kw(Keyword::Localparam))) {
      if (at_kw(Keyword::Parameter) || at_kw(Keyword::Localparam)) {
        f->locals.push_back(parse_param_decl());
      } else {
        f->locals.push_back(parse_net_decl());
      }
    }
    f->body = parse_stmt();
    expect_kw(Keyword::Endfunction, "function");
    return f;
  }

  ItemPtr parse_task() {
    auto t = std::make_unique<TaskItem>();
    t->line = cur().line;
    expect_kw(Keyword::Task, "task");
    t->name = expect_ident("task");
    if (accept_punct(Punct::LParen)) {
      if (!at_punct(Punct::RParen)) parse_function_args(t->args, /*ansi=*/true);
      expect_punct(Punct::RParen, "task");
      expect_punct(Punct::Semi, "task");
    } else {
      expect_punct(Punct::Semi, "task");
      while (ok_ && (at_kw(Keyword::Input) || at_kw(Keyword::Output) || at_kw(Keyword::Inout))) {
        parse_function_args(t->args, /*ansi=*/false);
      }
    }
    while (ok_ && (at_kw(Keyword::Reg) || at_kw(Keyword::Integer))) {
      t->locals.push_back(parse_net_decl());
    }
    t->body = parse_stmt();
    expect_kw(Keyword::Endtask, "task");
    return t;
  }

  void parse_generate(std::vector<ItemPtr>& items) {
    expect_kw(Keyword::Generate, "generate");
    while (ok_ && !at_kw(Keyword::Endgenerate) && !at(TokenKind::Eof)) {
      if (at_kw(Keyword::For)) {
        items.push_back(parse_generate_for());
      } else if (at_kw(Keyword::Genvar)) {
        parse_item(items);
      } else {
        parse_item(items);
      }
    }
    expect_kw(Keyword::Endgenerate, "generate");
  }

  ItemPtr parse_generate_for() {
    auto g = std::make_unique<GenerateForItem>();
    g->line = cur().line;
    expect_kw(Keyword::For, "generate for");
    expect_punct(Punct::LParen, "generate for");
    g->genvar = expect_ident("generate for");
    expect_punct(Punct::Assign, "generate for");
    g->init = parse_expr();
    expect_punct(Punct::Semi, "generate for");
    g->cond = parse_expr();
    expect_punct(Punct::Semi, "generate for");
    const std::string step_var = expect_ident("generate for");
    if (step_var != g->genvar) fail("generate-for step must assign the genvar");
    expect_punct(Punct::Assign, "generate for");
    g->step = parse_expr();
    expect_punct(Punct::RParen, "generate for");
    expect_kw(Keyword::Begin, "generate for");
    if (accept_punct(Punct::Colon)) g->label = expect_ident("generate label");
    while (ok_ && !at_kw(Keyword::End) && !at(TokenKind::Eof)) {
      parse_item(g->body);
    }
    expect_kw(Keyword::End, "generate for");
    return g;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
  int error_line_ = 0;
};

}  // namespace

ParseResult parse(std::string_view source) {
  LexResult lexed = lex(source);
  if (!lexed.ok) {
    ParseResult out;
    out.unit = std::make_unique<SourceUnit>();
    out.ok = false;
    out.error = "lex error: " + lexed.error;
    out.error_line = lexed.error_line;
    return out;
  }
  Parser p(std::move(lexed.tokens));
  return p.run();
}

bool syntax_ok(std::string_view source) {
  const ParseResult r = parse(source);
  return r.ok && r.unit && !r.unit->modules.empty();
}

}  // namespace vsd::vlog
