// Structured diagnostics for the Verilog semantic analyzer (vlog/lint).
//
// Modeled on elaboration-diagnostic designs in production SystemVerilog
// front ends: every finding is a Diagnostic carrying a severity, a stable
// machine-readable code ("VSD-Lxxx"), a source line, a human message, and
// the module/signal context it applies to.  LintResult aggregates the
// findings of one analysis run (one file, one module, or one generated
// candidate) and answers the questions callers actually ask: are there
// errors, how many warnings, give me the findings in source order.
//
// The JSON helpers here are what `vsd lint --json` and the serving path's
// `--check lint` stage emit, so the schema lives in exactly one place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vsd::vlog {

enum class Severity : std::uint8_t { Info, Warning, Error };

/// "info" / "warning" / "error" — the JSON spelling.
const char* severity_name(Severity s);

/// One finding.  `code` is stable across releases ("VSD-L110"); tools may
/// key suppression or CI gates on it.  `line` is 1-based in the linted
/// buffer, 0 when the finding has no single source line.
struct Diagnostic {
  Severity severity = Severity::Warning;
  std::string code;     // "VSD-Lxxx"
  int line = 0;
  std::string message;
  std::string module;   // enclosing module name, empty for file-level
  std::string signal;   // subject signal/identifier, empty when n/a
};

/// Aggregated findings of one lint run.
class LintResult {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void add(Severity sev, std::string code, int line, std::string message,
           std::string module = {}, std::string signal = {});

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int count(Severity s) const;
  int errors() const { return count(Severity::Error); }
  int warnings() const { return count(Severity::Warning); }
  int infos() const { return count(Severity::Info); }
  bool has_errors() const { return errors() > 0; }
  /// No findings at any severity.
  bool clean() const { return diags_.empty(); }

  /// Stable order for output and tests: (line, code, signal).
  void sort_by_location();
  /// Appends `other`'s findings to this result.
  void merge(LintResult other);

 private:
  std::vector<Diagnostic> diags_;
};

/// One diagnostic as a JSON object:
///   {"severity":"warning","code":"VSD-L120","line":7,
///    "message":"...","module":"m","signal":"q"}
/// (module/signal keys are omitted when empty).
std::string diagnostic_json(const Diagnostic& d);

/// A JSON array of diagnostic_json objects ("[]" when empty) — the
/// `diagnostics` field of `vsd lint --json` and serve's check stage.
std::string diagnostics_json(const std::vector<Diagnostic>& ds);

}  // namespace vsd::vlog
