#include "vlog/number.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>

namespace vsd::vlog {

namespace {

// Multiplies a little-endian binary digit vector (values 0/1) by 10 and adds
// `d`; used for arbitrary-precision decimal decoding.
void mul10_add(std::string& lsb_first_bits, int d) {
  int carry = d;
  for (char& c : lsb_first_bits) {
    const int v = (c - '0') * 10 + carry;
    c = static_cast<char>('0' + (v & 1));
    carry = v >> 1;
  }
  while (carry != 0) {
    lsb_first_bits.push_back(static_cast<char>('0' + (carry & 1)));
    carry >>= 1;
  }
}

std::string decode_base_digits(std::string_view digits, int bits_per_digit,
                               bool& ok) {
  std::string out;  // msb-first
  for (const char raw : digits) {
    if (raw == '_') continue;
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (c == 'x' || c == 'z') {
      out.append(static_cast<std::size_t>(bits_per_digit), c);
      continue;
    }
    if (c == '?') {
      out.append(static_cast<std::size_t>(bits_per_digit), 'z');
      continue;
    }
    int v = 0;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else {
      ok = false;
      return out;
    }
    if (v >= (1 << bits_per_digit)) {
      ok = false;
      return out;
    }
    for (int b = bits_per_digit - 1; b >= 0; --b) {
      out.push_back(static_cast<char>('0' + ((v >> b) & 1)));
    }
  }
  return out;
}

std::string decode_decimal_digits(std::string_view digits, bool& ok) {
  // A decimal based literal may be all-x or all-z ("'dx"); mixed digits are
  // not legal.
  bool has_xz = false;
  bool has_num = false;
  for (const char c : digits) {
    if (c == '_') continue;
    const char lc = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lc == 'x' || lc == 'z') has_xz = true;
    else has_num = true;
  }
  if (has_xz) {
    if (has_num) {
      ok = false;
      return "";
    }
    const char lc = static_cast<char>(
        std::tolower(static_cast<unsigned char>(digits.front())));
    return std::string(1, lc);
  }
  std::string lsb_first = "0";
  for (const char c : digits) {
    if (c == '_') continue;
    mul10_add(lsb_first, c - '0');
  }
  // Strip leading zeros (but keep at least one bit).
  while (lsb_first.size() > 1 && lsb_first.back() == '0') lsb_first.pop_back();
  std::reverse(lsb_first.begin(), lsb_first.end());
  return lsb_first;
}

/// Resizes an msb-first digit string to exactly `width` digits using
/// Verilog extension rules (x/z extend with themselves, otherwise zero).
std::string fit_width(std::string bits, int width) {
  const auto w = static_cast<std::size_t>(width);
  if (bits.size() > w) {
    return bits.substr(bits.size() - w);
  }
  if (bits.size() < w) {
    const char msb = bits.empty() ? '0' : bits.front();
    const char ext = (msb == 'x' || msb == 'z') ? msb : '0';
    bits.insert(bits.begin(), w - bits.size(), ext);
  }
  return bits;
}

}  // namespace

DecodedNumber decode_number(std::string_view text) {
  DecodedNumber out;
  if (text.empty()) {
    out.error = "empty literal";
    return out;
  }
  // Real literal?
  if (text.find('.') != std::string_view::npos ||
      ((text.find('e') != std::string_view::npos ||
        text.find('E') != std::string_view::npos) &&
       text.find('\'') == std::string_view::npos)) {
    out.ok = true;
    out.is_real = true;
    out.real_value = std::stod(std::string(text));
    return out;
  }

  const std::size_t tick = text.find('\'');
  if (tick == std::string_view::npos) {
    // Plain decimal literal: signed, 32-bit self-determined minimum.
    bool ok = true;
    std::string bits = decode_decimal_digits(text, ok);
    if (!ok) {
      out.error = "bad decimal literal";
      return out;
    }
    out.ok = true;
    out.is_signed = true;
    out.width = std::max<int>(32, static_cast<int>(bits.size()));
    out.bits = fit_width(std::move(bits), out.width);
    return out;
  }

  // Sized or unsized based literal.
  int width = -1;
  if (tick > 0) {
    int w = 0;
    for (const char c : text.substr(0, tick)) {
      if (c == '_' || c == ' ' || c == '\t') continue;
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        out.error = "bad size prefix";
        return out;
      }
      w = w * 10 + (c - '0');
      if (w > 1 << 20) {
        out.error = "size prefix too large";
        return out;
      }
    }
    if (w == 0) {
      out.error = "zero-width literal";
      return out;
    }
    width = w;
  }
  std::size_t p = tick + 1;
  bool is_signed = false;
  if (p < text.size() && (text[p] == 's' || text[p] == 'S')) {
    is_signed = true;
    ++p;
  }
  if (p >= text.size()) {
    out.error = "missing base";
    return out;
  }
  const char base = static_cast<char>(
      std::tolower(static_cast<unsigned char>(text[p])));
  ++p;
  const std::string_view digits = text.substr(p);
  if (digits.empty()) {
    out.error = "missing digits";
    return out;
  }

  bool ok = true;
  std::string bits;
  switch (base) {
    case 'b': bits = decode_base_digits(digits, 1, ok); break;
    case 'o': bits = decode_base_digits(digits, 3, ok); break;
    case 'h': bits = decode_base_digits(digits, 4, ok); break;
    case 'd': bits = decode_decimal_digits(digits, ok); break;
    default:
      out.error = "bad base";
      return out;
  }
  if (!ok || bits.empty()) {
    out.error = "bad digits for base";
    return out;
  }
  // Unsized x/z decimal expands to full width later; give it one digit now.
  if (width < 0) {
    width = std::max<int>(32, static_cast<int>(bits.size()));
    // A literal like 'bx extends to the full unsized width.
    if (bits.size() == 1 && (bits[0] == 'x' || bits[0] == 'z')) {
      bits.assign(static_cast<std::size_t>(width), bits[0]);
    }
  }
  out.ok = true;
  out.is_signed = is_signed;
  out.width = width;
  out.bits = fit_width(std::move(bits), width);
  return out;
}

}  // namespace vsd::vlog
