// Abstract syntax tree for the Verilog-2001 subset.
//
// Nodes are owned through std::unique_ptr; the tree is strictly
// hierarchical.  Dispatch is by NodeKind + static_cast (the tree is closed,
// no user extension point is needed).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace vsd::vlog {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  Number, String, Ident, Select, Unary, Binary, Ternary, Concat, Repl, Call,
};

enum class UnaryOp : std::uint8_t {
  Plus, Minus, LogicNot, BitNot,
  ReduceAnd, ReduceNand, ReduceOr, ReduceNor, ReduceXor, ReduceXnor,
};

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod, Pow,
  Eq, Neq, CaseEq, CaseNeq,
  Lt, Le, Gt, Ge,
  LogicAnd, LogicOr,
  BitAnd, BitOr, BitXor, BitXnor,
  Shl, Shr, AShl, AShr,
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
  int line = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Integer or real literal.  Based literals are decoded into an msb-first
/// 4-state digit string over {0,1,x,z}.
struct NumberExpr final : Expr {
  NumberExpr() : Expr(ExprKind::Number) {}
  std::string text;        // exact source spelling, e.g. "4'b10x0"
  bool is_real = false;
  double real_value = 0.0;
  int width = -1;          // -1 when unsized
  bool is_signed = false;  // 's' flag or plain decimal
  std::string bits;        // msb-first, chars in {0,1,x,z}; empty for reals
};

struct StringExpr final : Expr {
  StringExpr() : Expr(ExprKind::String) {}
  std::string value;
};

/// Possibly hierarchical name: "a", "u_dut.q".
struct IdentExpr final : Expr {
  IdentExpr() : Expr(ExprKind::Ident) {}
  std::vector<std::string> path;  // non-empty; >1 element means hierarchical

  std::string full_name() const {
    std::string s = path.front();
    for (std::size_t i = 1; i < path.size(); ++i) s += "." + path[i];
    return s;
  }
};

enum class SelectKind : std::uint8_t { Bit, Part, IndexedUp, IndexedDown };

/// base[index], base[msb:lsb], base[idx+:w], base[idx-:w]
struct SelectExpr final : Expr {
  SelectExpr() : Expr(ExprKind::Select) {}
  ExprPtr base;
  SelectKind select = SelectKind::Bit;
  ExprPtr index;  // bit index / msb / base index
  ExprPtr width;  // lsb for Part; width for Indexed*; null for Bit
};

struct UnaryExpr final : Expr {
  UnaryExpr() : Expr(ExprKind::Unary) {}
  UnaryOp op = UnaryOp::Plus;
  ExprPtr operand;
};

struct BinaryExpr final : Expr {
  BinaryExpr() : Expr(ExprKind::Binary) {}
  BinaryOp op = BinaryOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct TernaryExpr final : Expr {
  TernaryExpr() : Expr(ExprKind::Ternary) {}
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
};

struct ConcatExpr final : Expr {
  ConcatExpr() : Expr(ExprKind::Concat) {}
  std::vector<ExprPtr> parts;
};

struct ReplExpr final : Expr {
  ReplExpr() : Expr(ExprKind::Repl) {}
  ExprPtr count;
  ExprPtr body;  // a ConcatExpr
};

/// Function or system-function call: f(a,b) or $signed(x).
struct CallExpr final : Expr {
  CallExpr() : Expr(ExprKind::Call) {}
  std::string callee;      // includes '$' for system functions
  bool is_system = false;
  std::vector<ExprPtr> args;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Block, Assign, If, Case, For, While, Repeat, Forever, Delay, EventControl,
  Wait, SysTask, TaskCall, Disable, Trigger, Null,
};

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  StmtKind kind;
  int line = 0;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt final : Stmt {
  BlockStmt() : Stmt(StmtKind::Block) {}
  std::string label;  // optional "begin : name"
  std::vector<StmtPtr> body;
};

/// Blocking (=) or non-blocking (<=) procedural assignment, with an
/// optional intra-assignment delay:  q <= #1 d;
struct AssignStmt final : Stmt {
  AssignStmt() : Stmt(StmtKind::Assign) {}
  bool non_blocking = false;
  ExprPtr lhs;  // IdentExpr, SelectExpr, or ConcatExpr of those
  ExprPtr rhs;
  ExprPtr delay;  // nullable
};

struct IfStmt final : Stmt {
  IfStmt() : Stmt(StmtKind::If) {}
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  // nullable
};

enum class CaseKind : std::uint8_t { Case, Casez, Casex };

struct CaseItem {
  std::vector<ExprPtr> labels;  // empty => default
  StmtPtr body;
};

struct CaseStmt final : Stmt {
  CaseStmt() : Stmt(StmtKind::Case) {}
  CaseKind case_kind = CaseKind::Case;
  ExprPtr subject;
  std::vector<CaseItem> items;
};

struct ForStmt final : Stmt {
  ForStmt() : Stmt(StmtKind::For) {}
  StmtPtr init;  // AssignStmt
  ExprPtr cond;
  StmtPtr step;  // AssignStmt
  StmtPtr body;
};

struct WhileStmt final : Stmt {
  WhileStmt() : Stmt(StmtKind::While) {}
  ExprPtr cond;
  StmtPtr body;
};

struct RepeatStmt final : Stmt {
  RepeatStmt() : Stmt(StmtKind::Repeat) {}
  ExprPtr count;
  StmtPtr body;
};

struct ForeverStmt final : Stmt {
  ForeverStmt() : Stmt(StmtKind::Forever) {}
  StmtPtr body;
};

/// "#10 stmt" — also used for a bare "#10;" (body is a NullStmt).
struct DelayStmt final : Stmt {
  DelayStmt() : Stmt(StmtKind::Delay) {}
  ExprPtr delay;
  StmtPtr body;
};

enum class EdgeKind : std::uint8_t { Any, Posedge, Negedge };

struct EventExpr {
  EdgeKind edge = EdgeKind::Any;
  ExprPtr signal;  // null for @(*)
};

/// "@(posedge clk or negedge rst) stmt" or "@(*) stmt" or "@*"
struct EventControlStmt final : Stmt {
  EventControlStmt() : Stmt(StmtKind::EventControl) {}
  bool star = false;
  std::vector<EventExpr> events;
  StmtPtr body;
};

struct WaitStmt final : Stmt {
  WaitStmt() : Stmt(StmtKind::Wait) {}
  ExprPtr cond;
  StmtPtr body;
};

/// $display(...), $finish, $stop, $monitor(...), ...
struct SysTaskStmt final : Stmt {
  SysTaskStmt() : Stmt(StmtKind::SysTask) {}
  std::string name;  // includes '$'
  std::vector<ExprPtr> args;
};

struct TaskCallStmt final : Stmt {
  TaskCallStmt() : Stmt(StmtKind::TaskCall) {}
  std::string name;
  std::vector<ExprPtr> args;
};

struct DisableStmt final : Stmt {
  DisableStmt() : Stmt(StmtKind::Disable) {}
  std::string target;
};

struct TriggerStmt final : Stmt {
  TriggerStmt() : Stmt(StmtKind::Trigger) {}
  std::string target;
};

struct NullStmt final : Stmt {
  NullStmt() : Stmt(StmtKind::Null) {}
};

// ---------------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------------

enum class ItemKind : std::uint8_t {
  PortDecl, NetDecl, ParamDecl, ContAssign, Always, Initial, Instance,
  Function, Task, Genvar, GenerateFor,
};

struct ModuleItem {
  explicit ModuleItem(ItemKind k) : kind(k) {}
  virtual ~ModuleItem() = default;
  ModuleItem(const ModuleItem&) = delete;
  ModuleItem& operator=(const ModuleItem&) = delete;

  ItemKind kind;
  int line = 0;
};

using ItemPtr = std::unique_ptr<ModuleItem>;

/// "[msb:lsb]" — both bounds are constant expressions.
struct Range {
  ExprPtr msb;
  ExprPtr lsb;
};

enum class PortDir : std::uint8_t { Input, Output, Inout };
enum class NetType : std::uint8_t { Wire, Reg, Integer, Genvar, Real, Time, Supply0, Supply1, Tri };

struct PortDeclItem final : ModuleItem {
  PortDeclItem() : ModuleItem(ItemKind::PortDecl) {}
  PortDir dir = PortDir::Input;
  bool is_reg = false;
  bool is_signed = false;
  std::optional<Range> range;
  std::vector<std::string> names;
};

struct DeclaredNet {
  std::string name;
  std::optional<Range> unpacked;  // memory: reg [7:0] m [0:15]
  ExprPtr init;                   // nullable (wire w = expr)
};

struct NetDeclItem final : ModuleItem {
  NetDeclItem() : ModuleItem(ItemKind::NetDecl) {}
  NetType net = NetType::Wire;
  bool is_signed = false;
  std::optional<Range> range;
  std::vector<DeclaredNet> nets;
};

struct ParamAssign {
  std::string name;
  ExprPtr value;
};

struct ParamDeclItem final : ModuleItem {
  ParamDeclItem() : ModuleItem(ItemKind::ParamDecl) {}
  bool local = false;  // localparam vs parameter
  bool is_signed = false;
  std::optional<Range> range;
  std::vector<ParamAssign> params;
};

struct ContAssignItem final : ModuleItem {
  ContAssignItem() : ModuleItem(ItemKind::ContAssign) {}
  ExprPtr delay;  // nullable
  std::vector<std::pair<ExprPtr, ExprPtr>> assigns;  // (lhs, rhs)
};

struct AlwaysItem final : ModuleItem {
  AlwaysItem() : ModuleItem(ItemKind::Always) {}
  StmtPtr body;  // usually an EventControlStmt
};

struct InitialItem final : ModuleItem {
  InitialItem() : ModuleItem(ItemKind::Initial) {}
  StmtPtr body;
};

struct PortConnection {
  std::string formal;  // empty for ordered connections
  ExprPtr actual;      // may be null for .name()
};

struct InstanceItem final : ModuleItem {
  InstanceItem() : ModuleItem(ItemKind::Instance) {}
  std::string module_name;
  std::string instance_name;
  std::vector<PortConnection> param_overrides;  // #(...) — named or ordered
  std::vector<PortConnection> connections;
};

struct FunctionArg {
  PortDir dir = PortDir::Input;
  bool is_signed = false;
  std::optional<Range> range;
  std::string name;
  NetType net = NetType::Wire;  // Integer for "input integer i"
};

struct FunctionItem final : ModuleItem {
  FunctionItem() : ModuleItem(ItemKind::Function) {}
  std::string name;
  bool is_signed = false;
  std::optional<Range> return_range;
  std::vector<FunctionArg> args;
  std::vector<ItemPtr> locals;  // NetDecl / ParamDecl items
  StmtPtr body;
};

struct TaskItem final : ModuleItem {
  TaskItem() : ModuleItem(ItemKind::Task) {}
  std::string name;
  std::vector<FunctionArg> args;
  std::vector<ItemPtr> locals;
  StmtPtr body;
};

struct GenvarItem final : ModuleItem {
  GenvarItem() : ModuleItem(ItemKind::Genvar) {}
  std::vector<std::string> names;
};

/// generate for (i = 0; i < N; i = i + 1) begin : label ... end endgenerate
struct GenerateForItem final : ModuleItem {
  GenerateForItem() : ModuleItem(ItemKind::GenerateFor) {}
  std::string genvar;
  ExprPtr init;
  ExprPtr cond;
  ExprPtr step;  // full step expression, e.g. i + 1
  std::string label;
  std::vector<ItemPtr> body;
};

// ---------------------------------------------------------------------------
// Module / source unit
// ---------------------------------------------------------------------------

/// An ANSI-style port in the module header, or a plain name for
/// non-ANSI headers.
struct ModulePort {
  std::string name;
  bool ansi = false;  // true when the header itself declares direction
  PortDir dir = PortDir::Input;
  bool is_reg = false;
  bool is_signed = false;
  std::optional<Range> range;
};

struct Module {
  std::string name;
  std::vector<ParamAssign> header_params;  // #(parameter W = 8, ...)
  std::vector<ModulePort> ports;
  std::vector<ItemPtr> items;
  int line = 0;
};

struct SourceUnit {
  std::vector<std::unique_ptr<Module>> modules;
};

}  // namespace vsd::vlog
