// Fragment segmentation: inserting [FRAG] markers around syntactically
// significant tokens (paper Fig. 3, "Code with [FRAG]").
//
// The marked text is what the tokenizer sees during training; the marker
// becomes a single vocabulary token and the syntax-enriched labels of
// vsd::spec are built from its positions.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace vsd::vlog {

/// Default textual marker.  It deliberately contains characters that never
/// occur in Verilog identifiers so the tokenizer can treat it atomically.
inline constexpr std::string_view kFragMarker = "[FRAG]";

/// Inserts `marker` immediately before and after every occurrence of a
/// significant token in `code`.  Markers are not merged: adjacent
/// significant tokens produce back-to-back markers exactly as in Fig. 3.
/// Tokens inside comments/strings are untouched (the lexer skips trivia).
/// If `code` fails to lex, it is returned unchanged.
std::string insert_frag_markers(std::string_view code,
                                const std::set<std::string>& significant,
                                std::string_view marker = kFragMarker);

/// Convenience: parses `code`, derives its significant-token set, and
/// marks it.  Falls back to extra keywords + operators when the code does
/// not parse (so the pipeline can still process near-miss samples).
std::string mark_fragments(std::string_view code,
                           std::string_view marker = kFragMarker);

/// Removes every occurrence of `marker` from `text` (used on decoded model
/// output before syntax/function evaluation).
std::string strip_frag_markers(std::string_view text,
                               std::string_view marker = kFragMarker);

/// Splits marked text on `marker`, dropping empty pieces; used by tests to
/// reason about fragment structure.
std::vector<std::string> split_fragments(std::string_view marked,
                                         std::string_view marker = kFragMarker);

}  // namespace vsd::vlog
