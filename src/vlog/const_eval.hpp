// Shared compile-time constant folding over the AST.
//
// Both consumers of constant expressions fold to a plain signed integer:
// the semantic linter (range bounds, part-select widths, case-label
// comparisons) and the elaboration/dataflow side (parameter lookups against
// already-elaborated constant pseudo-signals).  This is the single
// implementation of that integer fold; callers differ only in how a bare
// identifier resolves to a value, which they inject through `IntResolver`.
//
// The fold is deliberately conservative: anything whose Verilog result
// depends on operand *width* (bit-not, reductions, wrapping arithmetic on
// sized operands) returns nullopt rather than a plausible-but-wrong value.
// Four-state width-accurate evaluation stays in `sim::detail::const_eval`.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "vlog/ast.hpp"

namespace vsd::vlog {

/// Maps a bare identifier (parameter, genvar, localparam) to its constant
/// integer value, or nullopt when the name is not a known constant.
using IntResolver =
    std::function<std::optional<std::int64_t>(const std::string&)>;

/// Folds `e` to a signed integer if it is a plain-integer constant
/// expression: literals without x/z digits up to 62 bits, resolvable
/// identifiers, +/-/! unary ops, the full binary operator set with
/// divide-by-zero / shift-range / pow-overflow guards, and ternaries with
/// foldable conditions.  Returns nullopt otherwise.
std::optional<std::int64_t> fold_int(const Expr* e, const IntResolver& resolve);

}  // namespace vsd::vlog
