// Recursive-descent parser for the Verilog-2001 subset.
//
// This is the reproduction's stand-in for the Stagira parser used by the
// paper: it provides (a) the syntax gate in the data-refinement pipeline,
// (b) ASTs for significant-token extraction, and (c) the front end of the
// vsd::sim event-driven simulator.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "vlog/ast.hpp"
#include "vlog/lexer.hpp"

namespace vsd::vlog {

/// Result of parsing a buffer.  `unit` holds all modules parsed before the
/// first error (if any).
struct ParseResult {
  std::unique_ptr<SourceUnit> unit;
  bool ok = true;
  std::string error;
  int error_line = 0;
};

/// Lexes and parses `source`.
ParseResult parse(std::string_view source);

/// Returns true iff `source` lexes and parses cleanly and contains at
/// least one complete module.  This is the "syntax check" used by the
/// dataset refinement pipeline and the Syntax rows of Table I.
bool syntax_ok(std::string_view source);

}  // namespace vsd::vlog
