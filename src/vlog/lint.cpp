#include "vlog/lint.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "vlog/const_eval.hpp"
#include "vlog/parser.hpp"

namespace vsd::vlog {

namespace {

// ---------------------------------------------------------------------------
// Symbol / drive model
// ---------------------------------------------------------------------------

/// Who is driving a signal.  Conflict passes (L110/L111/L112) only consider
/// "hard" structural drivers: continuous assignments, procedural always
/// blocks, and instance output connections whose direction we resolved.
/// Initial blocks, function/task bodies, and generate bodies are recorded so
/// the signal counts as driven (no false L103) but are exempt from conflict
/// detection — initial blocks model test stimulus, and generate iterations
/// legitimately drive different slices through non-constant selects.
enum class DriveKind : std::uint8_t {
  Continuous,
  AlwaysBlocking,
  AlwaysNonBlocking,
  Initial,
  Instance,
  Generate,
  Function,
};

struct Drive {
  DriveKind kind = DriveKind::Continuous;
  const AlwaysItem* always = nullptr;  // owning block for Always* kinds
  int line = 0;
  bool whole = true;  // false when lo/hi bound the driven bits
  int lo = 0;
  int hi = 0;
  bool soft = false;  // direction unknown (unresolvable instance port)
};

enum class SymKind : std::uint8_t { Net, Param, Function, Task, Instance };

struct Sym {
  SymKind kind = SymKind::Net;
  NetType net = NetType::Wire;
  bool is_port = false;
  bool dir_known = false;  // false for non-ANSI header names pre-PortDecl
  PortDir dir = PortDir::Input;
  bool net_redeclared = false;  // "output q; reg q;" merge already applied
  int line = 0;

  // Normalized packed range when const-evaluable.  Scalars are [0,0].
  bool range_known = false;
  int lo = 0;
  int hi = 0;
  int decl_msb = 0;  // declared order, for reversed part-select messages
  int decl_lsb = 0;

  bool has_unpacked = false;  // memory: bit-range checks are skipped

  bool read = false;
  std::vector<Drive> drives;

  const FunctionItem* func = nullptr;
  const TaskItem* task = nullptr;
};

/// Per-walk context: which construct we are inside, and what the enclosing
/// always block has read/assigned so far (for the latch / sensitivity /
/// blocking-style passes).
struct WalkCtx {
  DriveKind kind = DriveKind::Continuous;
  const AlwaysItem* always = nullptr;
  bool comb = false;
  bool seq = false;
  std::set<std::string> assigned;
  std::set<std::string> reads;
  std::vector<const CaseStmt*> defaultless_cases;
  std::set<std::string> l131_reported;
};

bool interval_overlap(const Drive& a, const Drive& b) {
  if (a.whole || b.whole) return true;
  return a.lo <= b.hi && b.lo <= a.hi;
}

/// True when the literal's source spelling carries an explicit size prefix
/// ("4'b1010").  Unsized literals decode to >= 32 bits, so only sized ones
/// participate in the truncation pass.
bool number_is_sized(const NumberExpr& n) {
  const auto tick = n.text.find('\'');
  return tick != std::string::npos && tick > 0;
}

// ---------------------------------------------------------------------------
// Module linter
// ---------------------------------------------------------------------------

class ModuleLinter {
 public:
  ModuleLinter(const Module& m, LintResult& out,
               const std::map<std::string, const Module*>* unit_modules)
      : m_(m), out_(out), unit_modules_(unit_modules) {
    scopes_.emplace_back();
  }

  void run() {
    declare_params();
    declare_items();
    walk_items();
    report_symbols();
  }

 private:
  // ---- diagnostics -------------------------------------------------------

  void diag(Severity sev, const char* code, int line, std::string message,
            std::string signal = {}) {
    out_.add(sev, code, line, std::move(message), m_.name, std::move(signal));
  }

  // ---- scopes ------------------------------------------------------------

  Sym* resolve(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  Sym& declare_local(const std::string& name, Sym s) {
    return scopes_.back()[name] = std::move(s);
  }

  // ---- constant evaluation ----------------------------------------------

  std::optional<long long> const_int(const Expr* e) const {
    // One shared fold (vlog/const_eval.hpp) serves both this linter and the
    // elaborator; the linter's identifier environment is its parameter map.
    return fold_int(e, [this](const std::string& name) -> std::optional<std::int64_t> {
      const auto it = params_.find(name);
      if (it == params_.end()) return std::nullopt;
      return it->second;
    });
  }

  void apply_range(Sym& s, const std::optional<Range>& r) {
    if (!r) {
      s.range_known = true;  // scalar: exactly bit [0:0]
      s.lo = s.hi = 0;
      s.decl_msb = s.decl_lsb = 0;
      return;
    }
    const auto msb = const_int(r->msb.get());
    const auto lsb = const_int(r->lsb.get());
    if (!msb || !lsb) {
      s.range_known = false;
      return;
    }
    s.range_known = true;
    s.decl_msb = static_cast<int>(*msb);
    s.decl_lsb = static_cast<int>(*lsb);
    s.lo = std::min(s.decl_msb, s.decl_lsb);
    s.hi = std::max(s.decl_msb, s.decl_lsb);
  }

  // ---- pass 0: parameters ------------------------------------------------

  void declare_param(const ParamAssign& p, int line) {
    Sym s;
    s.kind = SymKind::Param;
    s.line = line;
    if (scopes_.size() == 1) {
      auto [it, inserted] = scopes_.front().emplace(p.name, std::move(s));
      if (!inserted) {
        diag(Severity::Error, "VSD-L101", line,
             "'" + p.name + "' is already declared at line " +
                 std::to_string(it->second.line),
             p.name);
        return;
      }
    } else {
      declare_local(p.name, std::move(s));
    }
    if (const auto v = const_int(p.value.get())) params_[p.name] = *v;
  }

  void declare_params() {
    for (const ParamAssign& p : m_.header_params) declare_param(p, m_.line);
    // Item-list parameters are const-evaluated in item order so later
    // parameters may reference earlier ones.
    for (const ItemPtr& item : m_.items) {
      if (item->kind != ItemKind::ParamDecl) continue;
      const auto& pd = static_cast<const ParamDeclItem&>(*item);
      for (const ParamAssign& p : pd.params) declare_param(p, pd.line);
    }
  }

  // ---- pass 1: declarations ----------------------------------------------

  void declare_header_ports() {
    for (const ModulePort& p : m_.ports) {
      Sym s;
      s.kind = SymKind::Net;
      s.is_port = true;
      s.line = m_.line;
      if (p.ansi) {
        s.dir_known = true;
        s.dir = p.dir;
        s.net = p.is_reg ? NetType::Reg : NetType::Wire;
        apply_range(s, p.range);
      }
      auto [it, inserted] = scopes_.front().emplace(p.name, std::move(s));
      if (!inserted) {
        diag(Severity::Error, "VSD-L101", m_.line,
             "port '" + p.name + "' appears more than once in the port list",
             p.name);
      } else {
        (void)it;
      }
    }
  }

  void declare_port_decl(const PortDeclItem& pd) {
    for (const std::string& name : pd.names) {
      Sym* existing = scopes_.front().count(name)
                          ? &scopes_.front()[name]
                          : nullptr;
      if (existing != nullptr && existing->is_port && !existing->dir_known) {
        // Non-ANSI header name getting its direction.
        existing->dir_known = true;
        existing->dir = pd.dir;
        existing->net = pd.is_reg ? NetType::Reg : NetType::Wire;
        existing->line = pd.line;
        apply_range(*existing, pd.range);
        continue;
      }
      if (existing != nullptr) {
        diag(Severity::Error, "VSD-L101", pd.line,
             "'" + name + "' is already declared at line " +
                 std::to_string(existing->line),
             name);
        continue;
      }
      // A port declaration for a name the header does not list: declare it
      // anyway so uses resolve (the mismatch is a concern for elaboration,
      // not this layer).
      Sym s;
      s.kind = SymKind::Net;
      s.is_port = true;
      s.dir_known = true;
      s.dir = pd.dir;
      s.net = pd.is_reg ? NetType::Reg : NetType::Wire;
      s.line = pd.line;
      apply_range(s, pd.range);
      scopes_.front().emplace(name, std::move(s));
    }
  }

  void declare_net_decl(const NetDeclItem& nd, bool in_generate) {
    for (const DeclaredNet& n : nd.nets) {
      Sym* existing = scopes_.front().count(n.name)
                          ? &scopes_.front()[n.name]
                          : nullptr;
      if (existing != nullptr && existing->is_port &&
          !existing->net_redeclared) {
        // "output q;  reg q;" — the legal net-type redeclaration of a port.
        existing->net = nd.net;
        existing->net_redeclared = true;
        if (!existing->range_known && nd.range) apply_range(*existing, nd.range);
        existing->has_unpacked = existing->has_unpacked || n.unpacked.has_value();
        continue;
      }
      if (existing != nullptr) {
        if (!in_generate) {
          diag(Severity::Error, "VSD-L101", nd.line,
               "'" + n.name + "' is already declared at line " +
                   std::to_string(existing->line),
               n.name);
        }
        continue;
      }
      Sym s;
      s.kind = SymKind::Net;
      s.net = nd.net;
      s.line = nd.line;
      apply_range(s, nd.range);
      s.has_unpacked = n.unpacked.has_value();
      if (n.init != nullptr) {
        Drive d;
        d.kind = in_generate ? DriveKind::Generate : DriveKind::Continuous;
        d.line = nd.line;
        s.drives.push_back(d);
      }
      scopes_.front().emplace(n.name, std::move(s));
    }
  }

  void declare_item(const ModuleItem& item, bool in_generate) {
    switch (item.kind) {
      case ItemKind::PortDecl:
        declare_port_decl(static_cast<const PortDeclItem&>(item));
        break;
      case ItemKind::NetDecl:
        declare_net_decl(static_cast<const NetDeclItem&>(item), in_generate);
        break;
      case ItemKind::Genvar: {
        const auto& g = static_cast<const GenvarItem&>(item);
        for (const std::string& name : g.names) {
          Sym s;
          s.kind = SymKind::Net;
          s.net = NetType::Genvar;
          s.line = g.line;
          s.range_known = false;
          scopes_.front().emplace(name, std::move(s));
        }
        break;
      }
      case ItemKind::Function: {
        const auto& f = static_cast<const FunctionItem&>(item);
        Sym s;
        s.kind = SymKind::Function;
        s.line = f.line;
        s.func = &f;
        auto [it, inserted] = scopes_.front().emplace(f.name, std::move(s));
        if (!inserted) {
          diag(Severity::Error, "VSD-L101", f.line,
               "'" + f.name + "' is already declared at line " +
                   std::to_string(it->second.line),
               f.name);
        }
        break;
      }
      case ItemKind::Task: {
        const auto& t = static_cast<const TaskItem&>(item);
        Sym s;
        s.kind = SymKind::Task;
        s.line = t.line;
        s.task = &t;
        auto [it, inserted] = scopes_.front().emplace(t.name, std::move(s));
        if (!inserted) {
          diag(Severity::Error, "VSD-L101", t.line,
               "'" + t.name + "' is already declared at line " +
                   std::to_string(it->second.line),
               t.name);
        }
        break;
      }
      case ItemKind::Instance: {
        const auto& inst = static_cast<const InstanceItem&>(item);
        if (inst.instance_name.empty()) break;
        Sym s;
        s.kind = SymKind::Instance;
        s.line = inst.line;
        auto [it, inserted] =
            scopes_.front().emplace(inst.instance_name, std::move(s));
        if (!inserted && !in_generate) {
          diag(Severity::Error, "VSD-L101", inst.line,
               "'" + inst.instance_name + "' is already declared at line " +
                   std::to_string(it->second.line),
               inst.instance_name);
        }
        break;
      }
      case ItemKind::GenerateFor: {
        const auto& g = static_cast<const GenerateForItem&>(item);
        if (!g.genvar.empty() && scopes_.front().count(g.genvar) == 0) {
          Sym s;
          s.kind = SymKind::Net;
          s.net = NetType::Genvar;
          s.line = g.line;
          scopes_.front().emplace(g.genvar, std::move(s));
        }
        for (const ItemPtr& body_item : g.body) declare_item(*body_item, true);
        break;
      }
      default:
        break;
    }
  }

  void declare_items() {
    declare_header_ports();
    for (const ItemPtr& item : m_.items) declare_item(*item, false);
  }

  // ---- expression reads / select checking --------------------------------

  void note_undeclared(const std::string& name, int line) {
    if (!reported_undeclared_.insert(name).second) return;
    diag(Severity::Error, "VSD-L100", line,
         "identifier '" + name + "' is undeclared", name);
  }

  /// Marks a read of `name`; tracks it in the always context if the symbol
  /// is a module-scope net (the only things sensitivity lists care about).
  Sym* mark_read(const std::string& name, int line, WalkCtx* ctx) {
    Sym* sym = resolve(name);
    if (sym == nullptr) {
      note_undeclared(name, line);
      return nullptr;
    }
    sym->read = true;
    if (ctx != nullptr && ctx->always != nullptr && sym->kind == SymKind::Net &&
        sym->net != NetType::Genvar && scopes_.front().count(name) != 0) {
      ctx->reads.insert(name);
    }
    return sym;
  }

  /// Walks to the root identifier of an lvalue-shaped select chain
  /// (mem[i][3] -> mem).  Returns nullptr for computed bases.
  static const IdentExpr* root_ident(const Expr* e) {
    while (e != nullptr && e->kind == ExprKind::Select) {
      e = static_cast<const SelectExpr&>(*e).base.get();
    }
    if (e != nullptr && e->kind == ExprKind::Ident) {
      return &static_cast<const IdentExpr&>(*e);
    }
    return nullptr;
  }

  std::string range_spelling(const Sym& s) const {
    return "[" + std::to_string(s.decl_msb) + ":" +
           std::to_string(s.decl_lsb) + "]";
  }

  /// Constant range checks on a select whose base resolves to a symbol with
  /// a known packed range.  Returns the driven/read interval when constant.
  std::optional<std::pair<int, int>> check_select(const SelectExpr& sel) {
    const IdentExpr* base = root_ident(sel.base.get());
    if (base == nullptr || base->path.size() != 1) return std::nullopt;
    // A nested select (memory word + bit) defeats the simple packed-range
    // model; only check single-level selects.
    if (sel.base->kind != ExprKind::Ident) return std::nullopt;
    Sym* sym = resolve(base->path.front());
    if (sym == nullptr || sym->kind != SymKind::Net || sym->has_unpacked ||
        !sym->range_known || sym->net == NetType::Integer ||
        sym->net == NetType::Time || sym->net == NetType::Real ||
        sym->net == NetType::Genvar) {
      return std::nullopt;
    }
    const std::string& name = base->path.front();
    switch (sel.select) {
      case SelectKind::Bit: {
        const auto idx = const_int(sel.index.get());
        if (!idx) return std::nullopt;
        if (*idx < sym->lo || *idx > sym->hi) {
          diag(Severity::Error, "VSD-L150", sel.line,
               "bit-select '" + name + "[" + std::to_string(*idx) +
                   "]' is outside the declared range " + range_spelling(*sym),
               name);
          return std::nullopt;
        }
        return std::make_pair(static_cast<int>(*idx), static_cast<int>(*idx));
      }
      case SelectKind::Part: {
        const auto msb = const_int(sel.index.get());
        const auto lsb = const_int(sel.width.get());
        if (!msb || !lsb) return std::nullopt;
        const bool decl_desc = sym->decl_msb >= sym->decl_lsb;
        const bool part_desc = *msb >= *lsb;
        if (decl_desc != part_desc && *msb != *lsb) {
          diag(Severity::Error, "VSD-L151", sel.line,
               "part-select '" + name + "[" + std::to_string(*msb) + ":" +
                   std::to_string(*lsb) +
                   "]' is reversed against the declared range " +
                   range_spelling(*sym),
               name);
          return std::nullopt;
        }
        const int lo = static_cast<int>(std::min(*msb, *lsb));
        const int hi = static_cast<int>(std::max(*msb, *lsb));
        if (lo < sym->lo || hi > sym->hi) {
          diag(Severity::Error, "VSD-L151", sel.line,
               "part-select '" + name + "[" + std::to_string(*msb) + ":" +
                   std::to_string(*lsb) +
                   "]' is outside the declared range " + range_spelling(*sym),
               name);
          return std::nullopt;
        }
        return std::make_pair(lo, hi);
      }
      case SelectKind::IndexedUp:
      case SelectKind::IndexedDown: {
        const auto base_idx = const_int(sel.index.get());
        const auto width = const_int(sel.width.get());
        if (!base_idx || !width) return std::nullopt;
        if (*width <= 0) {
          diag(Severity::Error, "VSD-L151", sel.line,
               "indexed part-select of '" + name + "' has non-positive width",
               name);
          return std::nullopt;
        }
        const int lo = sel.select == SelectKind::IndexedUp
                           ? static_cast<int>(*base_idx)
                           : static_cast<int>(*base_idx - *width + 1);
        const int hi = sel.select == SelectKind::IndexedUp
                           ? static_cast<int>(*base_idx + *width - 1)
                           : static_cast<int>(*base_idx);
        if (lo < sym->lo || hi > sym->hi) {
          diag(Severity::Error, "VSD-L151", sel.line,
               "indexed part-select of '" + name +
                   "' is outside the declared range " + range_spelling(*sym),
               name);
          return std::nullopt;
        }
        return std::make_pair(lo, hi);
      }
    }
    return std::nullopt;
  }

  void read_expr(const Expr* e, WalkCtx* ctx) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::Number:
      case ExprKind::String:
        return;
      case ExprKind::Ident: {
        const auto& id = static_cast<const IdentExpr&>(*e);
        if (id.path.size() == 1) {
          mark_read(id.path.front(), id.line, ctx);
        } else {
          // Hierarchical reference: resolve the head if we can, give the
          // rest the benefit of the doubt.
          Sym* sym = resolve(id.path.front());
          if (sym != nullptr) sym->read = true;
        }
        return;
      }
      case ExprKind::Select: {
        const auto& sel = static_cast<const SelectExpr&>(*e);
        check_select(sel);
        read_expr(sel.base.get(), ctx);
        read_expr(sel.index.get(), ctx);
        read_expr(sel.width.get(), ctx);
        return;
      }
      case ExprKind::Unary:
        read_expr(static_cast<const UnaryExpr&>(*e).operand.get(), ctx);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(*e);
        read_expr(b.lhs.get(), ctx);
        read_expr(b.rhs.get(), ctx);
        return;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(*e);
        read_expr(t.cond.get(), ctx);
        read_expr(t.then_expr.get(), ctx);
        read_expr(t.else_expr.get(), ctx);
        return;
      }
      case ExprKind::Concat:
        for (const ExprPtr& p : static_cast<const ConcatExpr&>(*e).parts) {
          read_expr(p.get(), ctx);
        }
        return;
      case ExprKind::Repl: {
        const auto& r = static_cast<const ReplExpr&>(*e);
        read_expr(r.count.get(), ctx);
        read_expr(r.body.get(), ctx);
        return;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(*e);
        if (!c.is_system) {
          Sym* sym = resolve(c.callee);
          if (sym == nullptr) {
            note_undeclared(c.callee, c.line);
          } else {
            sym->read = true;
          }
        }
        for (const ExprPtr& a : c.args) read_expr(a.get(), ctx);
        return;
      }
    }
  }

  // ---- width model (L152) ------------------------------------------------

  std::optional<int> sym_width(const Sym& s) const {
    if (s.kind != SymKind::Net || !s.range_known || s.has_unpacked ||
        s.net == NetType::Integer || s.net == NetType::Time ||
        s.net == NetType::Real || s.net == NetType::Genvar) {
      return std::nullopt;
    }
    return s.hi - s.lo + 1;
  }

  std::optional<int> expr_width(const Expr* e) {
    if (e == nullptr) return std::nullopt;
    switch (e->kind) {
      case ExprKind::Number: {
        const auto& n = static_cast<const NumberExpr&>(*e);
        if (n.is_real || !number_is_sized(n) || n.width <= 0) {
          return std::nullopt;
        }
        return n.width;
      }
      case ExprKind::Ident: {
        const auto& id = static_cast<const IdentExpr&>(*e);
        if (id.path.size() != 1) return std::nullopt;
        Sym* sym = resolve(id.path.front());
        if (sym == nullptr) return std::nullopt;
        return sym_width(*sym);
      }
      case ExprKind::Select: {
        const auto& sel = static_cast<const SelectExpr&>(*e);
        if (sel.select == SelectKind::Bit) {
          const IdentExpr* base = root_ident(sel.base.get());
          if (base == nullptr) return std::nullopt;
          Sym* sym = resolve(base->full_name());
          // A bit-select of a memory yields a word, not one bit.
          if (sym != nullptr && sym->has_unpacked) return sym_width(*sym);
          return 1;
        }
        if (sel.select == SelectKind::Part) {
          const auto msb = const_int(sel.index.get());
          const auto lsb = const_int(sel.width.get());
          if (!msb || !lsb) return std::nullopt;
          const long long w = std::max(*msb, *lsb) - std::min(*msb, *lsb) + 1;
          return static_cast<int>(w);
        }
        const auto w = const_int(sel.width.get());
        if (!w || *w <= 0) return std::nullopt;
        return static_cast<int>(*w);
      }
      case ExprKind::Concat: {
        int total = 0;
        for (const ExprPtr& p : static_cast<const ConcatExpr&>(*e).parts) {
          const auto w = expr_width(p.get());
          if (!w) return std::nullopt;
          total += *w;
        }
        return total;
      }
      case ExprKind::Repl: {
        const auto& r = static_cast<const ReplExpr&>(*e);
        const auto c = const_int(r.count.get());
        const auto w = expr_width(r.body.get());
        if (!c || !w || *c <= 0) return std::nullopt;
        return static_cast<int>(*c) * *w;
      }
      default:
        // Operator results follow context-determined sizing rules that a
        // lint pass should not second-guess.
        return std::nullopt;
    }
  }

  void check_assign_width(const Expr* lhs, const Expr* rhs, int line) {
    const auto lw = expr_width(lhs);
    const auto rw = expr_width(rhs);
    if (!lw || !rw || *rw <= *lw) return;
    const IdentExpr* base = root_ident(lhs);
    const std::string name = base != nullptr ? base->full_name() : "";
    diag(Severity::Warning, "VSD-L152", line,
         "assignment truncates a " + std::to_string(*rw) +
             "-bit value to " + std::to_string(*lw) + " bits" +
             (name.empty() ? "" : " ('" + name + "')"),
         name);
  }

  // ---- lvalue drives -----------------------------------------------------

  void record_drive(const std::string& name, int line, WalkCtx* ctx,
                    std::optional<std::pair<int, int>> bits, bool soft) {
    Sym* sym = resolve(name);
    if (sym == nullptr) {
      note_undeclared(name, line);
      return;
    }
    if (sym->kind != SymKind::Net) return;
    const DriveKind kind = ctx != nullptr ? ctx->kind : DriveKind::Continuous;
    if (sym->is_port && sym->dir_known && sym->dir == PortDir::Input &&
        !soft && kind != DriveKind::Function) {
      diag(Severity::Error, "VSD-L102", line,
           "assignment drives input port '" + name + "'", name);
    }
    Drive d;
    d.kind = kind;
    d.always = ctx != nullptr ? ctx->always : nullptr;
    d.line = line;
    d.soft = soft;
    if (bits) {
      d.whole = false;
      d.lo = bits->first;
      d.hi = bits->second;
    }
    sym->drives.push_back(d);
    if (ctx != nullptr && scopes_.front().count(name) != 0) {
      ctx->assigned.insert(name);
    }
  }

  void drive_lvalue(const Expr* e, int line, WalkCtx* ctx, bool soft = false) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::Ident: {
        const auto& id = static_cast<const IdentExpr&>(*e);
        if (id.path.size() == 1) {
          record_drive(id.path.front(), line, ctx, std::nullopt, soft);
        }
        return;
      }
      case ExprKind::Select: {
        const auto& sel = static_cast<const SelectExpr&>(*e);
        const auto bits = check_select(sel);
        read_expr(sel.index.get(), ctx);
        read_expr(sel.width.get(), ctx);
        const IdentExpr* base = root_ident(sel.base.get());
        if (base != nullptr && base->path.size() == 1) {
          // Selected writes drive the selected bits; a non-constant or
          // nested select means "unknown bits" (whole-signal drive).
          record_drive(base->path.front(), line, ctx, bits, soft);
        }
        // Memory word addressing inside the base chain reads its indices.
        if (sel.base->kind == ExprKind::Select) {
          const auto& inner = static_cast<const SelectExpr&>(*sel.base);
          read_expr(inner.index.get(), ctx);
          read_expr(inner.width.get(), ctx);
        }
        return;
      }
      case ExprKind::Concat:
        for (const ExprPtr& p : static_cast<const ConcatExpr&>(*e).parts) {
          drive_lvalue(p.get(), line, ctx, soft);
        }
        return;
      default:
        // Not lvalue-shaped; treat as a read so uses still resolve.
        read_expr(e, ctx);
        return;
    }
  }

  static void collect_lhs_names(const Expr* e, std::set<std::string>& out) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::Ident) {
      const auto& id = static_cast<const IdentExpr&>(*e);
      if (id.path.size() == 1) out.insert(id.path.front());
      return;
    }
    if (e->kind == ExprKind::Select) {
      const IdentExpr* base = root_ident(e);
      if (base != nullptr && base->path.size() == 1) {
        out.insert(base->path.front());
      }
      return;
    }
    if (e->kind == ExprKind::Concat) {
      for (const ExprPtr& p : static_cast<const ConcatExpr&>(*e).parts) {
        collect_lhs_names(p.get(), out);
      }
    }
  }

  // ---- statement walk ----------------------------------------------------

  void walk_stmt(const Stmt* s, WalkCtx& ctx) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Block:
        for (const StmtPtr& c : static_cast<const BlockStmt&>(*s).body) {
          walk_stmt(c.get(), ctx);
        }
        return;
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(*s);
        if (ctx.comb && a.non_blocking) {
          std::set<std::string> names;
          collect_lhs_names(a.lhs.get(), names);
          diag(Severity::Warning, "VSD-L130", a.line,
               "non-blocking assignment in a combinational always block",
               names.empty() ? "" : *names.begin());
        }
        if (ctx.seq && !a.non_blocking) {
          std::set<std::string> names;
          collect_lhs_names(a.lhs.get(), names);
          for (const std::string& n : names) {
            Sym* sym = resolve(n);
            if (sym == nullptr || sym->kind != SymKind::Net) continue;
            if (sym->net == NetType::Integer || sym->net == NetType::Time ||
                sym->net == NetType::Real || sym->net == NetType::Genvar) {
              continue;  // loop indices and bookkeeping variables
            }
            if (scopes_.front().count(n) == 0) continue;
            if (!ctx.l131_reported.insert(n).second) continue;
            diag(Severity::Warning, "VSD-L131", a.line,
                 "blocking assignment to '" + n +
                     "' in an edge-triggered always block",
                 n);
          }
        }
        drive_lvalue(a.lhs.get(), a.line, &ctx);
        read_expr(a.rhs.get(), &ctx);
        read_expr(a.delay.get(), &ctx);
        check_assign_width(a.lhs.get(), a.rhs.get(), a.line);
        return;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        read_expr(i.cond.get(), &ctx);
        walk_stmt(i.then_stmt.get(), ctx);
        walk_stmt(i.else_stmt.get(), ctx);
        return;
      }
      case StmtKind::Case: {
        const auto& c = static_cast<const CaseStmt&>(*s);
        read_expr(c.subject.get(), &ctx);
        bool has_default = false;
        for (const CaseItem& item : c.items) {
          if (item.labels.empty()) has_default = true;
          for (const ExprPtr& l : item.labels) read_expr(l.get(), &ctx);
          walk_stmt(item.body.get(), ctx);
        }
        if (!has_default && ctx.comb) ctx.defaultless_cases.push_back(&c);
        return;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(*s);
        walk_stmt(f.init.get(), ctx);
        read_expr(f.cond.get(), &ctx);
        walk_stmt(f.body.get(), ctx);
        walk_stmt(f.step.get(), ctx);
        return;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(*s);
        read_expr(w.cond.get(), &ctx);
        walk_stmt(w.body.get(), ctx);
        return;
      }
      case StmtKind::Repeat: {
        const auto& r = static_cast<const RepeatStmt&>(*s);
        read_expr(r.count.get(), &ctx);
        walk_stmt(r.body.get(), ctx);
        return;
      }
      case StmtKind::Forever:
        walk_stmt(static_cast<const ForeverStmt&>(*s).body.get(), ctx);
        return;
      case StmtKind::Delay: {
        const auto& d = static_cast<const DelayStmt&>(*s);
        read_expr(d.delay.get(), &ctx);
        walk_stmt(d.body.get(), ctx);
        return;
      }
      case StmtKind::EventControl: {
        const auto& ec = static_cast<const EventControlStmt&>(*s);
        for (const EventExpr& ev : ec.events) read_expr(ev.signal.get(), &ctx);
        walk_stmt(ec.body.get(), ctx);
        return;
      }
      case StmtKind::Wait: {
        const auto& w = static_cast<const WaitStmt&>(*s);
        read_expr(w.cond.get(), &ctx);
        walk_stmt(w.body.get(), ctx);
        return;
      }
      case StmtKind::SysTask:
        for (const ExprPtr& a : static_cast<const SysTaskStmt&>(*s).args) {
          read_expr(a.get(), &ctx);
        }
        return;
      case StmtKind::TaskCall: {
        const auto& t = static_cast<const TaskCallStmt&>(*s);
        Sym* sym = resolve(t.name);
        if (sym == nullptr) {
          note_undeclared(t.name, t.line);
        } else {
          sym->read = true;
        }
        const TaskItem* decl =
            (sym != nullptr && sym->kind == SymKind::Task) ? sym->task
                                                           : nullptr;
        for (std::size_t i = 0; i < t.args.size(); ++i) {
          const bool writes = decl != nullptr && i < decl->args.size() &&
                              decl->args[i].dir != PortDir::Input;
          if (writes) {
            drive_lvalue(t.args[i].get(), t.line, &ctx);
          } else {
            read_expr(t.args[i].get(), &ctx);
          }
        }
        return;
      }
      case StmtKind::Disable:
      case StmtKind::Trigger:
      case StmtKind::Null:
        return;
    }
  }

  // ---- all-paths assignment analysis (L120/L121) -------------------------

  bool task_assigns(const TaskCallStmt& t, const std::string& name) {
    Sym* sym = resolve(t.name);
    const TaskItem* decl =
        (sym != nullptr && sym->kind == SymKind::Task) ? sym->task : nullptr;
    if (decl == nullptr) return false;
    for (std::size_t i = 0; i < t.args.size() && i < decl->args.size(); ++i) {
      if (decl->args[i].dir == PortDir::Input) continue;
      std::set<std::string> names;
      collect_lhs_names(t.args[i].get(), names);
      if (names.count(name) != 0) return true;
    }
    return false;
  }

  /// True when every execution path through `s` assigns `name`.  Loops are
  /// treated optimistically (their body is assumed to run) — the pass exists
  /// to catch `if` without `else` and defaultless `case`, not to prove loop
  /// trip counts.
  bool assigns_on_all_paths(const Stmt* s, const std::string& name) {
    if (s == nullptr) return false;
    switch (s->kind) {
      case StmtKind::Assign: {
        std::set<std::string> names;
        collect_lhs_names(static_cast<const AssignStmt&>(*s).lhs.get(), names);
        return names.count(name) != 0;
      }
      case StmtKind::Block:
        for (const StmtPtr& c : static_cast<const BlockStmt&>(*s).body) {
          if (assigns_on_all_paths(c.get(), name)) return true;
        }
        return false;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        return assigns_on_all_paths(i.then_stmt.get(), name) &&
               assigns_on_all_paths(i.else_stmt.get(), name);
      }
      case StmtKind::Case: {
        const auto& c = static_cast<const CaseStmt&>(*s);
        if (c.items.empty()) return false;
        bool has_default = false;
        for (const CaseItem& item : c.items) {
          if (item.labels.empty()) has_default = true;
          if (!assigns_on_all_paths(item.body.get(), name)) return false;
        }
        return has_default;
      }
      case StmtKind::For:
        return assigns_on_all_paths(
            static_cast<const ForStmt&>(*s).body.get(), name);
      case StmtKind::While:
        return assigns_on_all_paths(
            static_cast<const WhileStmt&>(*s).body.get(), name);
      case StmtKind::Repeat:
        return assigns_on_all_paths(
            static_cast<const RepeatStmt&>(*s).body.get(), name);
      case StmtKind::Forever:
        return assigns_on_all_paths(
            static_cast<const ForeverStmt&>(*s).body.get(), name);
      case StmtKind::Delay:
        return assigns_on_all_paths(
            static_cast<const DelayStmt&>(*s).body.get(), name);
      case StmtKind::EventControl:
        return assigns_on_all_paths(
            static_cast<const EventControlStmt&>(*s).body.get(), name);
      case StmtKind::Wait:
        return assigns_on_all_paths(
            static_cast<const WaitStmt&>(*s).body.get(), name);
      case StmtKind::TaskCall:
        return task_assigns(static_cast<const TaskCallStmt&>(*s), name);
      default:
        return false;
    }
  }

  static void collect_assigned_names(const Stmt* s,
                                     std::set<std::string>& out) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Assign:
        collect_lhs_names(static_cast<const AssignStmt&>(*s).lhs.get(), out);
        return;
      case StmtKind::Block:
        for (const StmtPtr& c : static_cast<const BlockStmt&>(*s).body) {
          collect_assigned_names(c.get(), out);
        }
        return;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        collect_assigned_names(i.then_stmt.get(), out);
        collect_assigned_names(i.else_stmt.get(), out);
        return;
      }
      case StmtKind::Case:
        for (const CaseItem& item :
             static_cast<const CaseStmt&>(*s).items) {
          collect_assigned_names(item.body.get(), out);
        }
        return;
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(*s);
        collect_assigned_names(f.init.get(), out);
        collect_assigned_names(f.body.get(), out);
        collect_assigned_names(f.step.get(), out);
        return;
      }
      case StmtKind::While:
        collect_assigned_names(static_cast<const WhileStmt&>(*s).body.get(),
                               out);
        return;
      case StmtKind::Repeat:
        collect_assigned_names(static_cast<const RepeatStmt&>(*s).body.get(),
                               out);
        return;
      case StmtKind::Forever:
        collect_assigned_names(static_cast<const ForeverStmt&>(*s).body.get(),
                               out);
        return;
      case StmtKind::Delay:
        collect_assigned_names(static_cast<const DelayStmt&>(*s).body.get(),
                               out);
        return;
      case StmtKind::EventControl:
        collect_assigned_names(
            static_cast<const EventControlStmt&>(*s).body.get(), out);
        return;
      case StmtKind::Wait:
        collect_assigned_names(static_cast<const WaitStmt&>(*s).body.get(),
                               out);
        return;
      default:
        return;
    }
  }

  // ---- always / initial / function walks ---------------------------------

  void lint_always(const AlwaysItem& a, bool in_generate) {
    WalkCtx ctx;
    ctx.always = &a;
    const Stmt* inner = a.body.get();
    const EventControlStmt* ec = nullptr;
    bool star = false;
    std::vector<std::string> listed;  // explicit non-edge sensitivity names
    if (inner != nullptr && inner->kind == StmtKind::EventControl) {
      ec = static_cast<const EventControlStmt*>(inner);
      star = ec->star;
      bool any_edge = false;
      for (const EventExpr& ev : ec->events) {
        if (ev.edge != EdgeKind::Any) any_edge = true;
      }
      if (star || !any_edge) {
        ctx.comb = true;
        if (!star) {
          for (const EventExpr& ev : ec->events) {
            const IdentExpr* id =
                ev.signal != nullptr ? root_ident(ev.signal.get()) : nullptr;
            if (id != nullptr && id->path.size() == 1) {
              listed.push_back(id->path.front());
              mark_read(id->path.front(), ec->line, nullptr);
            }
          }
        }
      } else {
        ctx.seq = true;
        for (const EventExpr& ev : ec->events) {
          read_expr(ev.signal.get(), nullptr);
        }
      }
      inner = ec->body.get();
    }
    ctx.kind = in_generate
                   ? DriveKind::Generate
                   : (ctx.seq ? DriveKind::AlwaysNonBlocking
                              : DriveKind::AlwaysBlocking);
    // Blocking/non-blocking drives are distinguished per assignment for
    // conflict grouping; ctx.kind carries the default used by task calls.
    walk_stmt(inner, ctx);

    if (!ctx.comb) return;

    // L120: a combinational block must assign each of its targets on every
    // path, or simulation/synthesis infer a latch.
    for (const std::string& name : ctx.assigned) {
      Sym* sym = resolve(name);
      if (sym == nullptr || sym->kind != SymKind::Net) continue;
      if (sym->net == NetType::Integer || sym->net == NetType::Time ||
          sym->net == NetType::Real || sym->net == NetType::Genvar) {
        continue;
      }
      if (!assigns_on_all_paths(inner, name)) {
        diag(Severity::Warning, "VSD-L120", a.line,
             "'" + name +
                 "' is not assigned on every path through this combinational "
                 "always block (latch inferred)",
             name);
      }
    }
    // L121: point at the specific defaultless case feeding a latch.
    for (const CaseStmt* c : ctx.defaultless_cases) {
      std::set<std::string> case_targets;
      collect_assigned_names(c, case_targets);
      for (const std::string& name : case_targets) {
        if (!assigns_on_all_paths(inner, name)) {
          diag(Severity::Warning, "VSD-L121", c->line,
               "case statement without a default may infer a latch for '" +
                   name + "'",
               name);
          break;
        }
      }
    }
    // L140/L141: explicit sensitivity lists only — @(*) is always complete.
    if (!star && ec != nullptr && !listed.empty()) {
      const std::set<std::string> listed_set(listed.begin(), listed.end());
      for (const std::string& name : ctx.reads) {
        if (listed_set.count(name) != 0) continue;
        if (ctx.assigned.count(name) != 0) continue;
        diag(Severity::Warning, "VSD-L140", ec->line,
             "combinational always reads '" + name +
                 "' but the sensitivity list omits it",
             name);
      }
      for (const std::string& name : listed) {
        if (ctx.reads.count(name) == 0) {
          diag(Severity::Info, "VSD-L141", ec->line,
               "sensitivity list entry '" + name +
                   "' is never read in the block",
               name);
        }
      }
    }
  }

  void lint_function(const FunctionItem& f) {
    scopes_.emplace_back();
    // The function name doubles as its return-value variable.
    Sym ret;
    ret.kind = SymKind::Net;
    ret.net = NetType::Reg;
    ret.line = f.line;
    apply_range(ret, f.return_range);
    declare_local(f.name, std::move(ret));
    for (const FunctionArg& a : f.args) {
      Sym s;
      s.kind = SymKind::Net;
      s.net = a.net;
      s.line = f.line;
      apply_range(s, a.range);
      declare_local(a.name, std::move(s));
    }
    for (const ItemPtr& local : f.locals) declare_item(*local, false);
    WalkCtx ctx;
    ctx.kind = DriveKind::Function;
    walk_stmt(f.body.get(), ctx);
    scopes_.pop_back();
  }

  void lint_task(const TaskItem& t) {
    scopes_.emplace_back();
    for (const FunctionArg& a : t.args) {
      Sym s;
      s.kind = SymKind::Net;
      s.net = a.net;
      s.line = t.line;
      apply_range(s, a.range);
      declare_local(a.name, std::move(s));
    }
    for (const ItemPtr& local : t.locals) declare_item(*local, false);
    WalkCtx ctx;
    ctx.kind = DriveKind::Function;
    walk_stmt(t.body.get(), ctx);
    scopes_.pop_back();
  }

  // ---- instances ---------------------------------------------------------

  static std::optional<PortDir> port_dir(const Module& m,
                                         const std::string& name) {
    for (const ModulePort& p : m.ports) {
      if (p.name != name) continue;
      if (p.ansi) return p.dir;
      break;
    }
    for (const ItemPtr& item : m.items) {
      if (item->kind != ItemKind::PortDecl) continue;
      const auto& pd = static_cast<const PortDeclItem&>(*item);
      for (const std::string& n : pd.names) {
        if (n == name) return pd.dir;
      }
    }
    return std::nullopt;
  }

  const Module* find_module(const std::string& name) const {
    if (unit_modules_ == nullptr) return nullptr;
    const auto it = unit_modules_->find(name);
    return it != unit_modules_->end() ? it->second : nullptr;
  }

  static bool lvalue_shaped(const Expr* e) {
    if (e == nullptr) return false;
    if (e->kind == ExprKind::Ident) return true;
    if (e->kind == ExprKind::Select) return true;
    if (e->kind == ExprKind::Concat) {
      for (const ExprPtr& p : static_cast<const ConcatExpr&>(*e).parts) {
        if (!lvalue_shaped(p.get())) return false;
      }
      return true;
    }
    return false;
  }

  void lint_instance(const InstanceItem& inst, WalkCtx& ctx) {
    for (const PortConnection& p : inst.param_overrides) {
      read_expr(p.actual.get(), &ctx);
    }
    const Module* target = find_module(inst.module_name);
    std::size_t index = 0;
    for (const PortConnection& conn : inst.connections) {
      const std::size_t pos = index++;
      if (conn.actual == nullptr) continue;
      std::optional<PortDir> dir;
      if (target != nullptr) {
        if (!conn.formal.empty()) {
          dir = port_dir(*target, conn.formal);
        } else if (pos < target->ports.size()) {
          dir = port_dir(*target, target->ports[pos].name);
        }
      }
      if (dir.has_value() && *dir == PortDir::Input) {
        read_expr(conn.actual.get(), &ctx);
      } else if (dir.has_value() && lvalue_shaped(conn.actual.get())) {
        // Output or inout: the instance drives the actual.
        drive_lvalue(conn.actual.get(), inst.line, &ctx, /*soft=*/false);
        if (*dir == PortDir::Inout) read_expr(conn.actual.get(), &ctx);
      } else {
        // Unknown direction (module outside the unit): count it as a read
        // and as a soft drive so undriven/unused passes stay quiet.
        read_expr(conn.actual.get(), &ctx);
        if (lvalue_shaped(conn.actual.get())) {
          drive_lvalue(conn.actual.get(), inst.line, &ctx, /*soft=*/true);
        }
      }
    }
  }

  // ---- pass 2: usage -----------------------------------------------------

  void walk_item(const ModuleItem& item, bool in_generate) {
    switch (item.kind) {
      case ItemKind::ParamDecl: {
        const auto& pd = static_cast<const ParamDeclItem&>(item);
        if (pd.range) {
          read_expr(pd.range->msb.get(), nullptr);
          read_expr(pd.range->lsb.get(), nullptr);
        }
        for (const ParamAssign& p : pd.params) {
          read_expr(p.value.get(), nullptr);
        }
        break;
      }
      case ItemKind::PortDecl: {
        const auto& pd = static_cast<const PortDeclItem&>(item);
        if (pd.range) {
          read_expr(pd.range->msb.get(), nullptr);
          read_expr(pd.range->lsb.get(), nullptr);
        }
        break;
      }
      case ItemKind::NetDecl: {
        const auto& nd = static_cast<const NetDeclItem&>(item);
        if (nd.range) {
          read_expr(nd.range->msb.get(), nullptr);
          read_expr(nd.range->lsb.get(), nullptr);
        }
        for (const DeclaredNet& n : nd.nets) {
          if (n.unpacked) {
            read_expr(n.unpacked->msb.get(), nullptr);
            read_expr(n.unpacked->lsb.get(), nullptr);
          }
          read_expr(n.init.get(), nullptr);
        }
        break;
      }
      case ItemKind::ContAssign: {
        const auto& ca = static_cast<const ContAssignItem&>(item);
        WalkCtx ctx;
        ctx.kind = in_generate ? DriveKind::Generate : DriveKind::Continuous;
        read_expr(ca.delay.get(), nullptr);
        for (const auto& [lhs, rhs] : ca.assigns) {
          drive_lvalue(lhs.get(), ca.line, &ctx);
          read_expr(rhs.get(), nullptr);
          check_assign_width(lhs.get(), rhs.get(), ca.line);
        }
        break;
      }
      case ItemKind::Always:
        lint_always(static_cast<const AlwaysItem&>(item), in_generate);
        break;
      case ItemKind::Initial: {
        WalkCtx ctx;
        ctx.kind = DriveKind::Initial;
        walk_stmt(static_cast<const InitialItem&>(item).body.get(), ctx);
        break;
      }
      case ItemKind::Instance: {
        WalkCtx ctx;
        ctx.kind = in_generate ? DriveKind::Generate : DriveKind::Instance;
        lint_instance(static_cast<const InstanceItem&>(item), ctx);
        break;
      }
      case ItemKind::Function:
        lint_function(static_cast<const FunctionItem&>(item));
        break;
      case ItemKind::Task:
        lint_task(static_cast<const TaskItem&>(item));
        break;
      case ItemKind::GenerateFor: {
        const auto& g = static_cast<const GenerateForItem&>(item);
        if (!g.genvar.empty()) mark_read(g.genvar, g.line, nullptr);
        read_expr(g.init.get(), nullptr);
        read_expr(g.cond.get(), nullptr);
        read_expr(g.step.get(), nullptr);
        for (const ItemPtr& body_item : g.body) walk_item(*body_item, true);
        break;
      }
      case ItemKind::Genvar:
        break;
    }
  }

  void walk_items() {
    for (const ParamAssign& p : m_.header_params) {
      read_expr(p.value.get(), nullptr);
    }
    for (const ModulePort& p : m_.ports) {
      if (p.ansi && p.range) {
        read_expr(p.range->msb.get(), nullptr);
        read_expr(p.range->lsb.get(), nullptr);
      }
    }
    for (const ItemPtr& item : m_.items) walk_item(*item, false);
  }

  // ---- pass 3: per-symbol reporting --------------------------------------

  void report_symbols() {
    for (auto& [name, s] : scopes_.front()) {
      if (s.kind == SymKind::Param) {
        if (!s.read) {
          diag(Severity::Info, "VSD-L161", s.line,
               "parameter '" + name + "' is never used", name);
        }
        continue;
      }
      if (s.kind != SymKind::Net) continue;
      if (s.net == NetType::Genvar) continue;

      const bool is_input =
          s.is_port && s.dir_known && s.dir == PortDir::Input;
      const bool is_inout =
          s.is_port && s.dir_known && s.dir == PortDir::Inout;
      const bool supply =
          s.net == NetType::Supply0 || s.net == NetType::Supply1;

      if (s.read && s.drives.empty() && !is_input && !is_inout && !supply) {
        diag(Severity::Warning, "VSD-L103", s.line,
             "'" + name + "' is read but never driven", name);
      }
      if (!s.read && !s.is_port) {
        diag(Severity::Warning, "VSD-L160", s.line,
             "'" + name + "' is declared but never read", name);
      }

      if (s.net == NetType::Tri || supply) continue;

      // Split hard drives into structural (continuous-like) and procedural.
      std::vector<const Drive*> structural;
      std::vector<const Drive*> procedural;
      for (const Drive& d : s.drives) {
        if (d.soft) continue;
        switch (d.kind) {
          case DriveKind::Continuous:
          case DriveKind::Instance:
            structural.push_back(&d);
            break;
          case DriveKind::AlwaysBlocking:
          case DriveKind::AlwaysNonBlocking:
            procedural.push_back(&d);
            break;
          default:
            break;  // Initial / Generate / Function are exempt
        }
      }

      // L110: overlapping structural drivers.
      bool l110 = false;
      for (std::size_t i = 0; i < structural.size() && !l110; ++i) {
        for (std::size_t j = i + 1; j < structural.size(); ++j) {
          if (interval_overlap(*structural[i], *structural[j])) {
            diag(Severity::Error, "VSD-L110", structural[j]->line,
                 "'" + name +
                     "' has multiple continuous drivers for the same bits "
                     "(first driver at line " +
                     std::to_string(structural[i]->line) + ")",
                 name);
            l110 = true;
            break;
          }
        }
      }

      // L111: structural vs procedural conflict.
      bool l111 = false;
      for (const Drive* a : structural) {
        if (l111) break;
        for (const Drive* b : procedural) {
          if (interval_overlap(*a, *b)) {
            diag(Severity::Error, "VSD-L111", b->line,
                 "'" + name +
                     "' is driven by both a continuous assignment (line " +
                     std::to_string(a->line) + ") and an always block",
                 name);
            l111 = true;
            break;
          }
        }
      }

      // L112: the same bits assigned from more than one always block.
      bool l112 = false;
      for (std::size_t i = 0; i < procedural.size() && !l112; ++i) {
        for (std::size_t j = i + 1; j < procedural.size(); ++j) {
          if (procedural[i]->always != procedural[j]->always &&
              interval_overlap(*procedural[i], *procedural[j])) {
            diag(Severity::Warning, "VSD-L112", procedural[j]->line,
                 "'" + name + "' is assigned in more than one always block "
                              "(also at line " +
                     std::to_string(procedural[i]->line) + ")",
                 name);
            l112 = true;
            break;
          }
        }
      }
    }
  }

  const Module& m_;
  LintResult& out_;
  const std::map<std::string, const Module*>* unit_modules_;
  std::vector<std::map<std::string, Sym>> scopes_;
  std::map<std::string, long long> params_;
  std::set<std::string> reported_undeclared_;
};

LintResult lint_module_impl(
    const Module& m,
    const std::map<std::string, const Module*>* unit_modules) {
  LintResult out;
  ModuleLinter linter(m, out, unit_modules);
  linter.run();
  return out;
}

}  // namespace

LintResult lint_module(const Module& m) {
  LintResult out = lint_module_impl(m, nullptr);
  out.sort_by_location();
  return out;
}

LintResult lint_unit(const SourceUnit& unit) {
  LintResult out;
  std::map<std::string, const Module*> modules;
  for (const auto& m : unit.modules) {
    const auto [it, inserted] = modules.emplace(m->name, m.get());
    if (!inserted) {
      out.add(Severity::Error, "VSD-L002", m->line,
              "duplicate module '" + m->name + "' (first declared at line " +
                  std::to_string(it->second->line) + ")",
              m->name);
    }
  }
  for (const auto& m : unit.modules) {
    out.merge(lint_module_impl(*m, &modules));
  }
  out.sort_by_location();
  return out;
}

LintResult lint_source(std::string_view source) {
  const ParseResult parsed = parse(source);
  if (!parsed.ok) {
    LintResult out;
    out.add(Severity::Error, "VSD-L001", parsed.error_line,
            "syntax error: " + parsed.error);
    return out;
  }
  return lint_unit(*parsed.unit);
}

bool lint_ok(std::string_view source) {
  return !lint_source(source).has_errors();
}

}  // namespace vsd::vlog
