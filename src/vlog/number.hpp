// Decoding of Verilog numeric literals into 4-state digit strings.
#pragma once

#include <string>
#include <string_view>

namespace vsd::vlog {

/// Decoded numeric literal.
struct DecodedNumber {
  bool ok = false;
  bool is_real = false;
  double real_value = 0.0;
  int width = -1;          // -1 when the literal is unsized
  bool is_signed = false;  // 's' flag, or plain decimal literal
  std::string bits;        // msb-first, chars in {0,1,x,z}
  std::string error;
};

/// Decodes a literal as produced by the lexer ("42", "4'b10x0", "8'shFF",
/// "'d15", "3.14", "1e6").  Unsized literals get their natural bit width
/// (>= 1); callers apply the 32-bit self-determined width rule if desired.
DecodedNumber decode_number(std::string_view text);

}  // namespace vsd::vlog
