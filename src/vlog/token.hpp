// Token definitions for the Verilog-2001 subset lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace vsd::vlog {

/// Broad lexical class of a token.
enum class TokenKind : std::uint8_t {
  Eof,
  Identifier,        // foo, \escaped$name
  SystemIdentifier,  // $display, $signed
  Number,            // 42, 4'b10x0, 3.14
  String,            // "text"
  Keyword,           // module, always, ...
  Punct,             // operators and punctuation
};

/// Reserved words recognised by the lexer.
enum class Keyword : std::uint8_t {
  None,
  Module, Endmodule, Macromodule,
  Input, Output, Inout,
  Wire, Reg, Integer, Real, Time, Genvar, Event,
  Supply0, Supply1, Tri, Tri0, Tri1, Triand, Trior, Trireg, Wand, Wor,
  Parameter, Localparam, Defparam, Signed,
  Assign, Deassign, Force, Release,
  Always, Initial,
  Begin, End,
  If, Else,
  Case, Casez, Casex, Endcase, Default,
  For, While, Repeat, Forever, Wait, Disable,
  Posedge, Negedge, Edge, Or,
  And, Nand, Nor, Xor, Xnor, Not, Buf, Bufif0, Bufif1, Notif0, Notif1,
  Function, Endfunction, Task, Endtask,
  Generate, Endgenerate,
  Fork, Join,
  Specify, Endspecify,
  Primitive, Endprimitive, Table, Endtable,
  Scalared, Vectored, Small, Medium, Large,
  Pulldown, Pullup,
};

/// Operators and punctuation.
enum class Punct : std::uint8_t {
  None,
  LParen, RParen, LBracket, RBracket, LBrace, RBrace,
  Semi, Comma, Dot, Colon, Question, At, Hash,
  Assign,                         // =
  Plus, Minus, Star, Slash, Percent, StarStar,
  EqEq, NotEq, CaseEq, CaseNeq,   // == != === !==
  Lt, LtEq, Gt, GtEq,
  AndAnd, OrOr, Bang,
  Amp, Pipe, Caret,
  Tilde, TildeAmp, TildePipe, TildeCaret,  // ~ ~& ~| ~^ (also ^~)
  Shl, Shr, AShl, AShr,           // << >> <<< >>>
  Arrow,                          // ->
  PlusColon, MinusColon,          // +: -:
};

/// One lexed token with its source location (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::Eof;
  std::string text;            // exact source lexeme (without \ for escaped ids)
  Keyword keyword = Keyword::None;
  Punct punct = Punct::None;
  int line = 0;
  int col = 0;
  std::size_t begin = 0;  // byte offset of first character in the source
  std::size_t end = 0;    // byte offset one past the last character

  bool is(TokenKind k) const { return kind == k; }
  bool is_kw(Keyword k) const { return kind == TokenKind::Keyword && keyword == k; }
  bool is_punct(Punct p) const { return kind == TokenKind::Punct && punct == p; }
};

/// Maps an identifier-shaped lexeme to a keyword, or Keyword::None.
Keyword lookup_keyword(std::string_view text);

/// Human-readable name of a keyword (its source spelling).
std::string_view keyword_spelling(Keyword k);

/// Human-readable spelling of a punctuator.
std::string_view punct_spelling(Punct p);

}  // namespace vsd::vlog
