#include "vlog/significant.hpp"

#include "vlog/parser.hpp"

namespace vsd::vlog {

namespace {

class KeywordCollector {
 public:
  explicit KeywordCollector(std::set<std::string>& out) : out_(out) {}

  void expr(const Expr* e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::Number: {
        // Fig. 3 extracts literal leaves ("3" in "[3:0]") but not the
        // ubiquitous bare "0": it is glue, not structural information.
        const auto& n = static_cast<const NumberExpr&>(*e);
        if (n.text != "0") out_.insert(n.text);
        break;
      }
      case ExprKind::String:
        break;
      case ExprKind::Ident: {
        const auto& i = static_cast<const IdentExpr&>(*e);
        for (const auto& part : i.path) out_.insert(part);
        break;
      }
      case ExprKind::Select: {
        const auto& s = static_cast<const SelectExpr&>(*e);
        expr(s.base.get());
        expr(s.index.get());
        expr(s.width.get());
        break;
      }
      case ExprKind::Unary:
        expr(static_cast<const UnaryExpr&>(*e).operand.get());
        break;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(*e);
        expr(b.lhs.get());
        expr(b.rhs.get());
        break;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(*e);
        expr(t.cond.get());
        expr(t.then_expr.get());
        expr(t.else_expr.get());
        break;
      }
      case ExprKind::Concat:
        for (const auto& p : static_cast<const ConcatExpr&>(*e).parts) expr(p.get());
        break;
      case ExprKind::Repl: {
        const auto& r = static_cast<const ReplExpr&>(*e);
        expr(r.count.get());
        expr(r.body.get());
        break;
      }
      case ExprKind::Call: {
        const auto& c = static_cast<const CallExpr&>(*e);
        out_.insert(c.callee);
        for (const auto& a : c.args) expr(a.get());
        break;
      }
    }
  }

  void range(const std::optional<Range>& r) {
    if (!r) return;
    expr(r->msb.get());
    expr(r->lsb.get());
  }

  void stmt(const Stmt* s) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Block: {
        const auto& b = static_cast<const BlockStmt&>(*s);
        if (!b.label.empty()) out_.insert(b.label);
        for (const auto& st : b.body) stmt(st.get());
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(*s);
        expr(a.lhs.get());
        expr(a.rhs.get());
        expr(a.delay.get());
        break;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        expr(i.cond.get());
        stmt(i.then_stmt.get());
        stmt(i.else_stmt.get());
        break;
      }
      case StmtKind::Case: {
        const auto& c = static_cast<const CaseStmt&>(*s);
        expr(c.subject.get());
        for (const auto& item : c.items) {
          for (const auto& l : item.labels) expr(l.get());
          stmt(item.body.get());
        }
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(*s);
        stmt(f.init.get());
        expr(f.cond.get());
        stmt(f.step.get());
        stmt(f.body.get());
        break;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(*s);
        expr(w.cond.get());
        stmt(w.body.get());
        break;
      }
      case StmtKind::Repeat: {
        const auto& r = static_cast<const RepeatStmt&>(*s);
        expr(r.count.get());
        stmt(r.body.get());
        break;
      }
      case StmtKind::Forever:
        stmt(static_cast<const ForeverStmt&>(*s).body.get());
        break;
      case StmtKind::Delay: {
        const auto& d = static_cast<const DelayStmt&>(*s);
        expr(d.delay.get());
        stmt(d.body.get());
        break;
      }
      case StmtKind::EventControl: {
        const auto& e = static_cast<const EventControlStmt&>(*s);
        for (const auto& ev : e.events) expr(ev.signal.get());
        stmt(e.body.get());
        break;
      }
      case StmtKind::Wait: {
        const auto& w = static_cast<const WaitStmt&>(*s);
        expr(w.cond.get());
        stmt(w.body.get());
        break;
      }
      case StmtKind::SysTask: {
        const auto& t = static_cast<const SysTaskStmt&>(*s);
        out_.insert(t.name);
        for (const auto& a : t.args) expr(a.get());
        break;
      }
      case StmtKind::TaskCall: {
        const auto& t = static_cast<const TaskCallStmt&>(*s);
        out_.insert(t.name);
        for (const auto& a : t.args) expr(a.get());
        break;
      }
      case StmtKind::Disable:
        out_.insert(static_cast<const DisableStmt&>(*s).target);
        break;
      case StmtKind::Trigger:
        out_.insert(static_cast<const TriggerStmt&>(*s).target);
        break;
      case StmtKind::Null:
        break;
    }
  }

  void item(const ModuleItem* it) {
    if (it == nullptr) return;
    switch (it->kind) {
      case ItemKind::PortDecl: {
        const auto& p = static_cast<const PortDeclItem&>(*it);
        range(p.range);
        for (const auto& n : p.names) out_.insert(n);
        break;
      }
      case ItemKind::NetDecl: {
        const auto& n = static_cast<const NetDeclItem&>(*it);
        range(n.range);
        for (const auto& d : n.nets) {
          out_.insert(d.name);
          range(d.unpacked);
          expr(d.init.get());
        }
        break;
      }
      case ItemKind::ParamDecl: {
        const auto& p = static_cast<const ParamDeclItem&>(*it);
        range(p.range);
        for (const auto& pa : p.params) {
          out_.insert(pa.name);
          expr(pa.value.get());
        }
        break;
      }
      case ItemKind::ContAssign: {
        const auto& a = static_cast<const ContAssignItem&>(*it);
        expr(a.delay.get());
        for (const auto& [lhs, rhs] : a.assigns) {
          expr(lhs.get());
          expr(rhs.get());
        }
        break;
      }
      case ItemKind::Always:
        stmt(static_cast<const AlwaysItem&>(*it).body.get());
        break;
      case ItemKind::Initial:
        stmt(static_cast<const InitialItem&>(*it).body.get());
        break;
      case ItemKind::Instance: {
        const auto& inst = static_cast<const InstanceItem&>(*it);
        out_.insert(inst.module_name);
        out_.insert(inst.instance_name);
        for (const auto& c : inst.param_overrides) {
          if (!c.formal.empty()) out_.insert(c.formal);
          expr(c.actual.get());
        }
        for (const auto& c : inst.connections) {
          if (!c.formal.empty()) out_.insert(c.formal);
          expr(c.actual.get());
        }
        break;
      }
      case ItemKind::Function: {
        const auto& f = static_cast<const FunctionItem&>(*it);
        out_.insert(f.name);
        range(f.return_range);
        for (const auto& a : f.args) {
          out_.insert(a.name);
          range(a.range);
        }
        for (const auto& l : f.locals) item(l.get());
        stmt(f.body.get());
        break;
      }
      case ItemKind::Task: {
        const auto& t = static_cast<const TaskItem&>(*it);
        out_.insert(t.name);
        for (const auto& a : t.args) {
          out_.insert(a.name);
          range(a.range);
        }
        for (const auto& l : t.locals) item(l.get());
        stmt(t.body.get());
        break;
      }
      case ItemKind::Genvar:
        for (const auto& n : static_cast<const GenvarItem&>(*it).names) out_.insert(n);
        break;
      case ItemKind::GenerateFor: {
        const auto& g = static_cast<const GenerateForItem&>(*it);
        out_.insert(g.genvar);
        if (!g.label.empty()) out_.insert(g.label);
        expr(g.init.get());
        expr(g.cond.get());
        expr(g.step.get());
        for (const auto& b : g.body) item(b.get());
        break;
      }
    }
  }

 private:
  std::set<std::string>& out_;
};

}  // namespace

const std::vector<std::string>& extra_keywords() {
  static const std::vector<std::string> kw = {
      "module", "endmodule", "input", "output", "inout",
      "wire", "reg", "integer", "parameter", "localparam",
      "assign", "always", "initial", "begin", "end",
      "if", "else", "case", "casez", "casex", "endcase", "default",
      "for", "while", "repeat", "forever",
      "posedge", "negedge", "or",
      "function", "endfunction", "task", "endtask",
      "generate", "endgenerate", "genvar", "signed",
  };
  return kw;
}

const std::vector<std::string>& significant_operators() {
  static const std::vector<std::string> ops = {"(", ")", ";", "=", "<=", "@"};
  return ops;
}

std::set<std::string> extract_ast_keywords(const Module& m) {
  std::set<std::string> out;
  out.insert(m.name);
  KeywordCollector collector(out);
  for (const auto& p : m.ports) {
    out.insert(p.name);
    if (p.range) {
      collector.expr(p.range->msb.get());
      collector.expr(p.range->lsb.get());
    }
  }
  for (const auto& pa : m.header_params) {
    out.insert(pa.name);
    collector.expr(pa.value.get());
  }
  for (const auto& item : m.items) collector.item(item.get());
  return out;
}

std::set<std::string> significant_tokens(const SourceUnit& unit) {
  std::set<std::string> out;
  for (const auto& m : unit.modules) {
    std::set<std::string> ast_kw = extract_ast_keywords(*m);
    out.merge(ast_kw);
  }
  for (const auto& kw : extra_keywords()) out.insert(kw);
  for (const auto& op : significant_operators()) out.insert(op);
  return out;
}

std::set<std::string> significant_tokens(std::string_view source) {
  const ParseResult r = parse(source);
  if (!r.ok || !r.unit) return {};
  return significant_tokens(*r.unit);
}

}  // namespace vsd::vlog
