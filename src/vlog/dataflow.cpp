#include "vlog/dataflow.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "vlog/const_eval.hpp"
#include "vlog/parser.hpp"

namespace vsd::vlog {

namespace {

using sim::Design;
using sim::ProcKind;
using sim::Signal;

// ---------------------------------------------------------------------------
// Graph model
// ---------------------------------------------------------------------------

/// Physical bit range within a signal (lsb-offsets, inclusive).  The
/// default-constructed value is the "whole signal" wildcard.
struct BitRange {
  int lo = 0;
  int hi = -1;
  bool whole() const { return hi < lo; }
};

bool ranges_overlap(const BitRange& a, const BitRange& b) {
  if (a.whole() || b.whole()) return true;
  return a.lo <= b.hi && b.lo <= a.hi;
}

/// One same-tick dependency: reading `src` can change `dst` without a clock
/// edge in between (continuous assigns and combinational always blocks).
struct CombEdge {
  int src = -1;
  int dst = -1;
  BitRange use;  // bits of src read
  BitRange def;  // bits of dst written
  int line = 0;
};

/// One non-reset assignment in an edge-triggered always block, with the
/// reads (data + enclosing conditions) that feed it — the unit the CDC
/// passes reason about.
struct SeqAssign {
  int reg = -1;
  int clock = -1;
  int line = 0;
  bool pure_copy = false;  // rhs is a bare identifier
  int copy_src = -1;
  std::set<int> reads;
};

/// A signal reference with the bit range actually touched.
struct Ref {
  int sig = -1;
  BitRange range;
};

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

class DesignAnalyzer {
 public:
  DesignAnalyzer(const Design& d, std::string top, LintResult& out)
      : d_(d), top_(std::move(top)), out_(out) {}

  void run() {
    build();                // also emits L230 / L240 as blocks are walked
    pass_comb_loops();      // L200
    pass_cdc();             // L210 / L211
    pass_port_contracts();  // L220 / L221 / L222
  }

 private:
  // ---- diagnostics -------------------------------------------------------

  void diag(Severity sev, const char* code, int line, std::string message,
            std::string signal = {}) {
    out_.add(sev, code, line, std::move(message), top_, std::move(signal));
  }

  const std::string& name(int sig) const {
    return d_.signals[static_cast<std::size_t>(sig)].name;
  }

  int width(int sig) const {
    return d_.signals[static_cast<std::size_t>(sig)].width;
  }

  // ---- name resolution (mirrors the elaborator's scope chain) ------------

  int resolve(const std::string& scope, const std::string& nm) const {
    std::string s = scope;
    while (true) {
      const int id = d_.find(s + nm);
      if (id >= 0) return id;
      if (s.empty()) return -1;
      const std::size_t dot = s.rfind('.', s.size() - 2);
      s = dot == std::string::npos ? std::string() : s.substr(0, dot + 1);
    }
  }

  /// Constant-signal lookup for fold_int: parameters and genvars survive
  /// elaboration as is_const pseudo-signals carrying their value.
  std::optional<std::int64_t> const_lookup(const std::string& scope,
                                           const std::string& nm) const {
    const int id = resolve(scope, nm);
    if (id < 0) return std::nullopt;
    const Signal& s = d_.signals[static_cast<std::size_t>(id)];
    if (!s.is_const || s.value.has_xz()) return std::nullopt;
    return s.value.to_int();
  }

  std::optional<std::int64_t> fold(const Expr* e,
                                   const std::string& scope) const {
    return fold_int(e, [this, &scope](const std::string& nm) {
      return const_lookup(scope, nm);
    });
  }

  // ---- reference collection ----------------------------------------------

  /// Physical bit range a select covers, or whole when not const-foldable.
  BitRange select_range(const SelectExpr& s, int sig_id,
                        const std::string& scope) const {
    const Signal& sig = d_.signals[static_cast<std::size_t>(sig_id)];
    if (sig.is_array) return {};  // word select: the whole word width
    switch (s.select) {
      case SelectKind::Bit: {
        const auto i = fold(s.index.get(), scope);
        if (!i) return {};
        const int off = sig.bit_offset(*i);
        if (off < 0) return {};
        return {off, off};
      }
      case SelectKind::Part: {
        const auto m = fold(s.index.get(), scope);
        const auto l = fold(s.width.get(), scope);
        if (!m || !l) return {};
        const int a = sig.bit_offset(*m);
        const int b = sig.bit_offset(*l);
        if (a < 0 || b < 0) return {};
        return {std::min(a, b), std::max(a, b)};
      }
      case SelectKind::IndexedUp:
      case SelectKind::IndexedDown: {
        const auto i = fold(s.index.get(), scope);
        const auto w = fold(s.width.get(), scope);
        if (!i || !w || *w <= 0) return {};
        const std::int64_t other =
            s.select == SelectKind::IndexedUp ? *i + *w - 1 : *i - *w + 1;
        const int a = sig.bit_offset(*i);
        const int b = sig.bit_offset(other);
        if (a < 0 || b < 0) return {};
        return {std::min(a, b), std::max(a, b)};
      }
    }
    return {};
  }

  /// Signals read by `e`, with bit ranges where const-foldable.  Constant
  /// pseudo-signals (parameters, genvars) are not dataflow and are skipped.
  void expr_reads(const Expr* e, const std::string& scope,
                  std::vector<Ref>& out) const {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::Ident: {
        const int id =
            resolve(scope, static_cast<const IdentExpr&>(*e).full_name());
        if (id >= 0 && !d_.signals[static_cast<std::size_t>(id)].is_const) {
          out.push_back({id, BitRange{}});
        }
        return;
      }
      case ExprKind::Select: {
        const auto& s = static_cast<const SelectExpr&>(*e);
        if (s.base != nullptr && s.base->kind == ExprKind::Ident) {
          const int id = resolve(
              scope, static_cast<const IdentExpr&>(*s.base).full_name());
          if (id >= 0 && !d_.signals[static_cast<std::size_t>(id)].is_const) {
            out.push_back({id, select_range(s, id, scope)});
          }
        } else {
          expr_reads(s.base.get(), scope, out);
        }
        expr_reads(s.index.get(), scope, out);
        expr_reads(s.width.get(), scope, out);
        return;
      }
      case ExprKind::Unary:
        expr_reads(static_cast<const UnaryExpr&>(*e).operand.get(), scope, out);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(*e);
        expr_reads(b.lhs.get(), scope, out);
        expr_reads(b.rhs.get(), scope, out);
        return;
      }
      case ExprKind::Ternary: {
        const auto& t = static_cast<const TernaryExpr&>(*e);
        expr_reads(t.cond.get(), scope, out);
        expr_reads(t.then_expr.get(), scope, out);
        expr_reads(t.else_expr.get(), scope, out);
        return;
      }
      case ExprKind::Concat:
        for (const auto& p : static_cast<const ConcatExpr&>(*e).parts) {
          expr_reads(p.get(), scope, out);
        }
        return;
      case ExprKind::Repl: {
        const auto& r = static_cast<const ReplExpr&>(*e);
        expr_reads(r.count.get(), scope, out);
        expr_reads(r.body.get(), scope, out);
        return;
      }
      case ExprKind::Call:
        for (const auto& a : static_cast<const CallExpr&>(*e).args) {
          expr_reads(a.get(), scope, out);
        }
        return;
      default:
        return;
    }
  }

  /// Assignment targets of an lhs (ident / select / concat of those), plus
  /// the reads hidden in select indices.
  void lhs_refs(const Expr* lhs, const std::string& scope,
                std::vector<Ref>& targets, std::vector<Ref>& index_reads) const {
    if (lhs == nullptr) return;
    switch (lhs->kind) {
      case ExprKind::Ident: {
        const int id =
            resolve(scope, static_cast<const IdentExpr&>(*lhs).full_name());
        if (id >= 0 && !d_.signals[static_cast<std::size_t>(id)].is_const) {
          targets.push_back({id, BitRange{}});
        }
        return;
      }
      case ExprKind::Select: {
        const auto& s = static_cast<const SelectExpr&>(*lhs);
        if (s.base != nullptr && s.base->kind == ExprKind::Ident) {
          const int id = resolve(
              scope, static_cast<const IdentExpr&>(*s.base).full_name());
          if (id >= 0 && !d_.signals[static_cast<std::size_t>(id)].is_const) {
            targets.push_back({id, select_range(s, id, scope)});
          }
        } else {
          lhs_refs(s.base.get(), scope, targets, index_reads);
        }
        expr_reads(s.index.get(), scope, index_reads);
        expr_reads(s.width.get(), scope, index_reads);
        return;
      }
      case ExprKind::Concat:
        for (const auto& p : static_cast<const ConcatExpr&>(*lhs).parts) {
          lhs_refs(p.get(), scope, targets, index_reads);
        }
        return;
      default:
        return;
    }
  }

  // ---- build --------------------------------------------------------------

  void build() {
    for (std::size_t pi = 0; pi < d_.processes.size(); ++pi) {
      const sim::Process& p = d_.processes[pi];
      switch (p.kind) {
        case ProcKind::ContAssign:
          add_cont_assign(static_cast<int>(pi), p);
          break;
        case ProcKind::Always:
          add_always(static_cast<int>(pi), p);
          break;
        case ProcKind::Initial:
          break;  // test stimulus, not hardware
      }
    }
  }

  void record_driver(int sig, const BitRange& range, int pi) {
    drivers_[sig].push_back({pi, range});
  }

  void add_cont_assign(int pi, const sim::Process& p) {
    std::vector<Ref> targets;
    std::vector<Ref> index_reads;
    lhs_refs(p.lhs, p.scope, targets, index_reads);
    std::vector<Ref> reads;
    expr_reads(p.rhs, p.scope, reads);
    for (const Ref& r : index_reads) reads.push_back(r);
    int line = p.lhs != nullptr ? p.lhs->line : 0;
    if (line == 0 && p.rhs != nullptr) line = p.rhs->line;
    for (const Ref& t : targets) {
      record_driver(t.sig, t.range, pi);
      for (const Ref& r : reads) {
        comb_edges_.push_back({r.sig, t.sig, r.range, t.range, line});
      }
    }
  }

  void add_always(int pi, const sim::Process& p) {
    if (p.body == nullptr || p.body->kind != StmtKind::EventControl) {
      return;  // `always #5 ...` style — testbench, not synthesizable flow
    }
    const auto& ec = static_cast<const EventControlStmt&>(*p.body);
    bool edged = false;
    for (const auto& ev : ec.events) edged = edged || ev.edge != EdgeKind::Any;
    if (ec.star || !edged) {
      walk_comb_block(pi, p, ec.body.get());
    } else {
      walk_seq_block(pi, p, ec);
    }
  }

  /// Prepass over a block: everything it assigns (also feeds drivers_).
  void collect_block_writes(const Stmt* s, const std::string& scope,
                            std::set<int>& out, int pi) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& st : static_cast<const BlockStmt&>(*s).body) {
          collect_block_writes(st.get(), scope, out, pi);
        }
        return;
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(*s);
        std::vector<Ref> targets;
        std::vector<Ref> index_reads;
        lhs_refs(a.lhs.get(), scope, targets, index_reads);
        for (const Ref& t : targets) {
          if (out.insert(t.sig).second || !t.range.whole()) {
            record_driver(t.sig, t.range, pi);
          }
        }
        return;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        collect_block_writes(i.then_stmt.get(), scope, out, pi);
        collect_block_writes(i.else_stmt.get(), scope, out, pi);
        return;
      }
      case StmtKind::Case:
        for (const auto& item : static_cast<const CaseStmt&>(*s).items) {
          collect_block_writes(item.body.get(), scope, out, pi);
        }
        return;
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(*s);
        collect_block_writes(f.init.get(), scope, out, pi);
        collect_block_writes(f.step.get(), scope, out, pi);
        collect_block_writes(f.body.get(), scope, out, pi);
        return;
      }
      case StmtKind::While:
        collect_block_writes(static_cast<const WhileStmt&>(*s).body.get(),
                             scope, out, pi);
        return;
      case StmtKind::Repeat:
        collect_block_writes(static_cast<const RepeatStmt&>(*s).body.get(),
                             scope, out, pi);
        return;
      case StmtKind::Forever:
        collect_block_writes(static_cast<const ForeverStmt&>(*s).body.get(),
                             scope, out, pi);
        return;
      case StmtKind::Delay:
        collect_block_writes(static_cast<const DelayStmt&>(*s).body.get(),
                             scope, out, pi);
        return;
      case StmtKind::EventControl:
        collect_block_writes(
            static_cast<const EventControlStmt&>(*s).body.get(), scope, out, pi);
        return;
      case StmtKind::Wait:
        collect_block_writes(static_cast<const WaitStmt&>(*s).body.get(),
                             scope, out, pi);
        return;
      default:
        return;
    }
  }

  // ---- combinational blocks (comb edges, L230) ---------------------------

  struct CombCtx {
    const std::string* scope = nullptr;
    const std::set<int>* writes = nullptr;
    // Blocking-assignment substitution: current root deps of each signal the
    // block has assigned so far.  A read of an assigned signal sees those
    // roots; a read of anything else is itself a root.
    std::map<int, std::set<int>> defined;
    std::vector<std::set<int>> ctrl;  // expanded condition deps, stacked
    std::set<int> l230_reported;
  };

  void note_comb_read(int sig, int line, CombCtx& c, std::set<int>& roots) {
    const auto it = c.defined.find(sig);
    if (it != c.defined.end()) {
      roots.insert(it->second.begin(), it->second.end());
      return;
    }
    if (c.writes->count(sig) > 0 && c.l230_reported.insert(sig).second) {
      diag(Severity::Warning, "VSD-L230", line,
           "combinational block reads '" + name(sig) +
               "' before assigning it (stale-value hazard)",
           name(sig));
    }
    roots.insert(sig);
  }

  std::set<int> expand_reads(const Expr* e, int line, CombCtx& c) {
    std::vector<Ref> reads;
    expr_reads(e, *c.scope, reads);
    std::set<int> roots;
    for (const Ref& r : reads) note_comb_read(r.sig, line, c, roots);
    return roots;
  }

  void walk_comb_block(int pi, const sim::Process& p, const Stmt* body) {
    std::set<int> writes;
    collect_block_writes(body, p.scope, writes, pi);
    CombCtx c;
    c.scope = &p.scope;
    c.writes = &writes;
    walk_comb_stmt(body, c);
  }

  void walk_comb_stmt(const Stmt* s, CombCtx& c) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& st : static_cast<const BlockStmt&>(*s).body) {
          walk_comb_stmt(st.get(), c);
        }
        return;
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(*s);
        std::vector<Ref> targets;
        std::vector<Ref> index_reads;
        lhs_refs(a.lhs.get(), *c.scope, targets, index_reads);
        std::set<int> roots = expand_reads(a.rhs.get(), s->line, c);
        for (const Ref& ir : index_reads) note_comb_read(ir.sig, s->line, c, roots);
        for (const auto& cs : c.ctrl) roots.insert(cs.begin(), cs.end());
        for (const Ref& t : targets) {
          std::set<int>& defs = c.defined[t.sig];
          if (t.range.whole()) {
            defs = roots;
          } else {
            defs.insert(roots.begin(), roots.end());  // partial: merge
          }
          for (const int r : roots) {
            comb_edges_.push_back({r, t.sig, BitRange{}, t.range, s->line});
          }
        }
        return;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        c.ctrl.push_back(expand_reads(i.cond.get(), s->line, c));
        walk_comb_stmt(i.then_stmt.get(), c);
        walk_comb_stmt(i.else_stmt.get(), c);
        c.ctrl.pop_back();
        return;
      }
      case StmtKind::Case: {
        const auto& cs = static_cast<const CaseStmt&>(*s);
        c.ctrl.push_back(expand_reads(cs.subject.get(), s->line, c));
        for (const auto& item : cs.items) walk_comb_stmt(item.body.get(), c);
        c.ctrl.pop_back();
        return;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(*s);
        walk_comb_stmt(f.init.get(), c);
        c.ctrl.push_back(expand_reads(f.cond.get(), s->line, c));
        walk_comb_stmt(f.body.get(), c);
        walk_comb_stmt(f.step.get(), c);
        c.ctrl.pop_back();
        return;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(*s);
        c.ctrl.push_back(expand_reads(w.cond.get(), s->line, c));
        walk_comb_stmt(w.body.get(), c);
        c.ctrl.pop_back();
        return;
      }
      case StmtKind::Repeat:
        walk_comb_stmt(static_cast<const RepeatStmt&>(*s).body.get(), c);
        return;
      case StmtKind::Forever:
        walk_comb_stmt(static_cast<const ForeverStmt&>(*s).body.get(), c);
        return;
      case StmtKind::Delay:
        walk_comb_stmt(static_cast<const DelayStmt&>(*s).body.get(), c);
        return;
      case StmtKind::EventControl:
        walk_comb_stmt(static_cast<const EventControlStmt&>(*s).body.get(), c);
        return;
      case StmtKind::Wait:
        walk_comb_stmt(static_cast<const WaitStmt&>(*s).body.get(), c);
        return;
      default:
        return;
    }
  }

  // ---- sequential blocks (domains, SeqAssigns, L240) ---------------------

  /// Value of the reset-if condition when the reset is at its active level,
  /// or nullopt when the condition is too clever to fold.
  std::optional<bool> cond_at_reset(const Expr* e,
                                    const std::map<int, bool>& active,
                                    const std::string& scope) const {
    if (e == nullptr) return std::nullopt;
    switch (e->kind) {
      case ExprKind::Ident: {
        const int id =
            resolve(scope, static_cast<const IdentExpr&>(*e).full_name());
        const auto it = active.find(id);
        if (it == active.end()) return std::nullopt;
        return it->second;
      }
      case ExprKind::Unary: {
        const auto& u = static_cast<const UnaryExpr&>(*e);
        if (u.op != UnaryOp::LogicNot && u.op != UnaryOp::BitNot) {
          return std::nullopt;
        }
        const auto v = cond_at_reset(u.operand.get(), active, scope);
        if (!v) return std::nullopt;
        return !*v;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(*e);
        if (b.op == BinaryOp::Eq || b.op == BinaryOp::Neq) {
          const Expr* ident = b.lhs.get();
          const Expr* num = b.rhs.get();
          if (ident != nullptr && ident->kind != ExprKind::Ident) {
            std::swap(ident, num);
          }
          const auto v = cond_at_reset(ident, active, scope);
          const auto n = fold(num, scope);
          if (!v || !n) return std::nullopt;
          const bool eq = (*n != 0) == *v;
          return b.op == BinaryOp::Eq ? eq : !eq;
        }
        if (b.op == BinaryOp::LogicAnd || b.op == BinaryOp::LogicOr) {
          const auto l = cond_at_reset(b.lhs.get(), active, scope);
          const auto r = cond_at_reset(b.rhs.get(), active, scope);
          if (b.op == BinaryOp::LogicAnd) {
            if ((l && !*l) || (r && !*r)) return false;
            if (l && r) return *l && *r;
          } else {
            if ((l && *l) || (r && *r)) return true;
            if (l && r) return *l || *r;
          }
          return std::nullopt;
        }
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  struct SeqCtx {
    const std::string* scope = nullptr;
    int clock = -1;
    bool in_reset = false;
    std::set<int> ctrl;  // condition reads below the reset-if
    std::set<int> reset_assigned;
    std::map<int, int> nonreset_assigned;  // reg -> first assignment line
  };

  void walk_seq_stmt(const Stmt* s, SeqCtx& c) {
    if (s == nullptr) return;
    switch (s->kind) {
      case StmtKind::Block:
        for (const auto& st : static_cast<const BlockStmt&>(*s).body) {
          walk_seq_stmt(st.get(), c);
        }
        return;
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(*s);
        std::vector<Ref> targets;
        std::vector<Ref> index_reads;
        lhs_refs(a.lhs.get(), *c.scope, targets, index_reads);
        std::vector<Ref> reads;
        expr_reads(a.rhs.get(), *c.scope, reads);
        for (const Ref& r : index_reads) reads.push_back(r);
        const bool bare_ident =
            a.rhs != nullptr && a.rhs->kind == ExprKind::Ident;
        for (const Ref& t : targets) {
          if (reg_domain_.count(t.sig) == 0) reg_domain_[t.sig] = c.clock;
          if (c.in_reset) {
            c.reset_assigned.insert(t.sig);
            continue;
          }
          c.nonreset_assigned.emplace(t.sig, s->line);
          SeqAssign sa;
          sa.reg = t.sig;
          sa.clock = c.clock;
          sa.line = s->line;
          if (bare_ident && reads.size() == 1 && c.ctrl.empty()) {
            sa.pure_copy = true;
            sa.copy_src = reads.front().sig;
          }
          for (const Ref& r : reads) sa.reads.insert(r.sig);
          sa.reads.insert(c.ctrl.begin(), c.ctrl.end());
          seq_assigns_.push_back(std::move(sa));
        }
        return;
      }
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(*s);
        std::vector<Ref> cr;
        expr_reads(i.cond.get(), *c.scope, cr);
        std::vector<int> added;
        for (const Ref& r : cr) {
          if (c.ctrl.insert(r.sig).second) added.push_back(r.sig);
        }
        walk_seq_stmt(i.then_stmt.get(), c);
        walk_seq_stmt(i.else_stmt.get(), c);
        for (const int sig : added) c.ctrl.erase(sig);
        return;
      }
      case StmtKind::Case: {
        const auto& cs = static_cast<const CaseStmt&>(*s);
        std::vector<Ref> cr;
        expr_reads(cs.subject.get(), *c.scope, cr);
        std::vector<int> added;
        for (const Ref& r : cr) {
          if (c.ctrl.insert(r.sig).second) added.push_back(r.sig);
        }
        for (const auto& item : cs.items) walk_seq_stmt(item.body.get(), c);
        for (const int sig : added) c.ctrl.erase(sig);
        return;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(*s);
        walk_seq_stmt(f.init.get(), c);
        walk_seq_stmt(f.body.get(), c);
        walk_seq_stmt(f.step.get(), c);
        return;
      }
      case StmtKind::While:
        walk_seq_stmt(static_cast<const WhileStmt&>(*s).body.get(), c);
        return;
      case StmtKind::Repeat:
        walk_seq_stmt(static_cast<const RepeatStmt&>(*s).body.get(), c);
        return;
      case StmtKind::Delay:
        walk_seq_stmt(static_cast<const DelayStmt&>(*s).body.get(), c);
        return;
      default:
        return;
    }
  }

  void walk_seq_block(int pi, const sim::Process& p, const EventControlStmt& ec) {
    std::set<int> writes;
    collect_block_writes(ec.body.get(), p.scope, writes, pi);

    std::vector<std::pair<int, EdgeKind>> edge_sigs;
    for (const auto& ev : ec.events) {
      if (ev.edge == EdgeKind::Any || ev.signal == nullptr) continue;
      if (ev.signal->kind != ExprKind::Ident) continue;
      const int id = resolve(
          p.scope, static_cast<const IdentExpr&>(*ev.signal).full_name());
      if (id >= 0) edge_sigs.push_back({id, ev.edge});
    }
    if (edge_sigs.empty()) return;

    // The reset(s) are the edge signals the body's top-level if tests; the
    // remaining edge signal is the clock.
    const IfStmt* reset_if = nullptr;
    {
      const Stmt* s = ec.body.get();
      while (s != nullptr && s->kind == StmtKind::Block) {
        const auto& b = static_cast<const BlockStmt&>(*s);
        if (b.body.size() != 1) {
          s = nullptr;
          break;
        }
        s = b.body.front().get();
      }
      if (s != nullptr && s->kind == StmtKind::If) {
        reset_if = static_cast<const IfStmt*>(s);
      }
    }
    std::set<int> cond_sigs;
    if (reset_if != nullptr && edge_sigs.size() > 1) {
      std::vector<Ref> cr;
      expr_reads(reset_if->cond.get(), p.scope, cr);
      for (const Ref& r : cr) cond_sigs.insert(r.sig);
    }
    int clock = -1;
    std::map<int, bool> reset_active;  // reset sig -> active level
    for (const auto& [id, edge] : edge_sigs) {
      if (cond_sigs.count(id) > 0) {
        reset_active.emplace(id, edge == EdgeKind::Posedge);
      } else if (clock < 0) {
        clock = id;
      }
    }
    if (clock < 0) {
      clock = edge_sigs.front().first;
      reset_active.erase(clock);
    }

    SeqCtx c;
    c.scope = &p.scope;
    c.clock = clock;
    if (!reset_active.empty() && reset_if != nullptr) {
      const bool then_is_reset =
          cond_at_reset(reset_if->cond.get(), reset_active, p.scope)
              .value_or(true);
      c.in_reset = then_is_reset;
      walk_seq_stmt(reset_if->then_stmt.get(), c);
      c.in_reset = !then_is_reset;
      walk_seq_stmt(reset_if->else_stmt.get(), c);
      c.in_reset = false;

      // L240: registers this async-reset block updates but never resets.
      for (const auto& [reg, line] : c.nonreset_assigned) {
        if (c.reset_assigned.count(reg) > 0) continue;
        diag(Severity::Warning, "VSD-L240", line,
             "register '" + name(reg) +
                 "' is updated in an async-reset block but not assigned on "
                 "the reset branch",
             name(reg));
      }
    } else {
      walk_seq_stmt(ec.body.get(), c);
    }
  }

  // ---- L200: combinational loops -----------------------------------------

  void pass_comb_loops() {
    if (comb_edges_.empty()) return;
    std::map<int, std::vector<int>> adj;  // node -> edge indices out of it
    std::set<int> nodes;
    for (std::size_t i = 0; i < comb_edges_.size(); ++i) {
      adj[comb_edges_[i].src].push_back(static_cast<int>(i));
      nodes.insert(comb_edges_[i].src);
      nodes.insert(comb_edges_[i].dst);
    }

    // Iterative Tarjan SCC.
    std::map<int, int> index;
    std::map<int, int> low;
    std::set<int> on_stack;
    std::vector<int> stack;
    int counter = 0;
    struct Frame {
      int node;
      std::size_t next = 0;
    };
    for (const int start : nodes) {
      if (index.count(start) > 0) continue;
      std::vector<Frame> frames;
      frames.push_back({start});
      index[start] = low[start] = counter++;
      stack.push_back(start);
      on_stack.insert(start);
      while (!frames.empty()) {
        Frame& f = frames.back();
        const auto it = adj.find(f.node);
        bool descended = false;
        while (it != adj.end() && f.next < it->second.size()) {
          const CombEdge& e = comb_edges_[static_cast<std::size_t>(
              it->second[f.next++])];
          const int w = e.dst;
          if (index.count(w) == 0) {
            index[w] = low[w] = counter++;
            stack.push_back(w);
            on_stack.insert(w);
            frames.push_back({w});
            descended = true;
            break;
          }
          if (on_stack.count(w) > 0) low[f.node] = std::min(low[f.node], index[w]);
        }
        if (descended) continue;
        if (low[f.node] == index[f.node]) {
          std::set<int> scc;
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack.erase(w);
            scc.insert(w);
            if (w == f.node) break;
          }
          report_scc(scc);
        }
        const int done = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] = std::min(low[frames.back().node], low[done]);
        }
      }
    }
  }

  void report_scc(const std::set<int>& scc) {
    std::vector<const CombEdge*> inside;
    for (const CombEdge& e : comb_edges_) {
      if (scc.count(e.src) > 0 && scc.count(e.dst) > 0) inside.push_back(&e);
    }
    if (scc.size() == 1) {
      bool self = false;
      for (const CombEdge* e : inside) self = self || e->src == e->dst;
      if (!self) return;
    }
    if (inside.empty()) return;
    if (!bit_level_cycle(scc, inside)) return;

    // Walk an actual cycle for the message.
    std::vector<int> path;
    std::set<int> seen;
    int cur = *scc.begin();
    while (seen.insert(cur).second) {
      path.push_back(cur);
      int next = -1;
      for (const CombEdge* e : inside) {
        if (e->src == cur) {
          next = e->dst;
          break;
        }
      }
      if (next < 0) break;
      cur = next;
    }
    std::string msg = "combinational loop: ";
    std::size_t from = 0;
    for (std::size_t i = 0; i < path.size(); ++i) {
      if (path[i] == cur) {
        from = i;
        break;
      }
    }
    for (std::size_t i = from; i < path.size(); ++i) {
      msg += name(path[i]) + " -> ";
    }
    msg += name(cur);

    int line = 0;
    for (const CombEdge* e : inside) {
      if (e->line > 0 && (line == 0 || e->line < line)) line = e->line;
    }
    diag(Severity::Error, "VSD-L200", line, std::move(msg), name(cur));
  }

  /// Re-verifies a signal-level SCC at bit granularity, so per-bit chains
  /// (carry[i+1] = f(carry[i])) are not reported as loops.  Falls back to
  /// "it's a loop" when the expansion would be unreasonably large.
  bool bit_level_cycle(const std::set<int>& scc,
                       const std::vector<const CombEdge*>& edges) const {
    long long cost = 0;
    for (const CombEdge* e : edges) {
      const long long uw =
          e->use.whole() ? width(e->src) : e->use.hi - e->use.lo + 1;
      const long long dw =
          e->def.whole() ? width(e->dst) : e->def.hi - e->def.lo + 1;
      cost += uw * dw;
    }
    if (cost > 200000) return true;

    std::map<int, int> base;
    int total = 0;
    for (const int s : scc) {
      base[s] = total;
      total += width(s);
    }
    std::vector<std::vector<int>> g(static_cast<std::size_t>(total));
    for (const CombEdge* e : edges) {
      const int ulo = e->use.whole() ? 0 : e->use.lo;
      const int uhi = e->use.whole() ? width(e->src) - 1 : e->use.hi;
      const int dlo = e->def.whole() ? 0 : e->def.lo;
      const int dhi = e->def.whole() ? width(e->dst) - 1 : e->def.hi;
      for (int u = ulo; u <= uhi && u < width(e->src); ++u) {
        for (int d = dlo; d <= dhi && d < width(e->dst); ++d) {
          g[static_cast<std::size_t>(base.at(e->src) + u)].push_back(
              base.at(e->dst) + d);
        }
      }
    }

    // Iterative DFS cycle detection (colors: 0 white, 1 grey, 2 black).
    std::vector<int> color(static_cast<std::size_t>(total), 0);
    for (int s = 0; s < total; ++s) {
      if (color[static_cast<std::size_t>(s)] != 0) continue;
      std::vector<std::pair<int, std::size_t>> st;
      st.push_back({s, 0});
      color[static_cast<std::size_t>(s)] = 1;
      while (!st.empty()) {
        auto& [n, next] = st.back();
        if (next < g[static_cast<std::size_t>(n)].size()) {
          const int m = g[static_cast<std::size_t>(n)][next++];
          if (color[static_cast<std::size_t>(m)] == 1) return true;
          if (color[static_cast<std::size_t>(m)] == 0) {
            color[static_cast<std::size_t>(m)] = 1;
            st.push_back({m, 0});
          }
        } else {
          color[static_cast<std::size_t>(n)] = 2;
          st.pop_back();
        }
      }
    }
    return false;
  }

  // ---- L210 / L211: clock-domain crossings -------------------------------

  /// A proper synchronizer front flop: drives no combinational logic, is
  /// not a top-level output, and every register that samples it is a pure
  /// copy in the same domain (the second flop).
  bool clean_sync_front(int q, int domain) const {
    for (const CombEdge& e : comb_edges_) {
      if (e.src == q) return false;
    }
    for (const int t : d_.top_outputs) {
      if (t == q) return false;
    }
    for (const SeqAssign& sa : seq_assigns_) {
      if (sa.reads.count(q) == 0) continue;
      if (sa.clock != domain || !sa.pure_copy || sa.copy_src != q) return false;
    }
    return true;
  }

  void pass_cdc() {
    if (seq_assigns_.empty()) return;
    std::map<int, std::vector<const CombEdge*>> into;
    for (const CombEdge& e : comb_edges_) into[e.dst].push_back(&e);

    std::set<std::pair<int, int>> reported;  // (dst reg, src reg)
    for (const SeqAssign& sa : seq_assigns_) {
      for (const int r : sa.reads) {
        const auto dom = reg_domain_.find(r);
        if (dom != reg_domain_.end()) {
          if (dom->second == sa.clock) continue;
          if (sa.pure_copy && sa.copy_src == r &&
              clean_sync_front(sa.reg, sa.clock)) {
            continue;  // front flop of a 2-flop synchronizer
          }
          if (reported.insert({sa.reg, r}).second) {
            diag(Severity::Warning, "VSD-L211", sa.line,
                 "register '" + name(sa.reg) + "' (clock '" + name(sa.clock) +
                     "') samples '" + name(r) + "' from clock domain '" +
                     name(dom->second) + "' without a 2-flop synchronizer",
                 name(sa.reg));
          }
          continue;  // registers terminate the cone
        }
        // Fan in through combinational logic to foreign-domain registers.
        std::vector<int> work{r};
        std::set<int> visited{r};
        while (!work.empty()) {
          const int sig = work.back();
          work.pop_back();
          const auto it = into.find(sig);
          if (it == into.end()) continue;
          for (const CombEdge* e : it->second) {
            const int src = e->src;
            const auto sdom = reg_domain_.find(src);
            if (sdom != reg_domain_.end()) {
              if (sdom->second != sa.clock &&
                  reported.insert({sa.reg, src}).second) {
                diag(Severity::Warning, "VSD-L210", sa.line,
                     "clock-domain crossing: '" + name(src) + "' (clock '" +
                         name(sdom->second) + "') reaches register '" +
                         name(sa.reg) + "' (clock '" + name(sa.clock) +
                         "') through combinational logic",
                     name(sa.reg));
              }
              continue;  // do not traverse through registers
            }
            if (visited.insert(src).second) work.push_back(src);
          }
        }
      }
    }
  }

  // ---- L220 / L221 / L222: port contracts --------------------------------

  void pass_port_contracts() {
    std::set<int> l221_reported;
    for (const sim::PortBinding& pb : d_.port_bindings) {
      const std::string subject = pb.instance + "." + pb.port;
      if (pb.actual == nullptr) {
        if (pb.dir == PortDir::Input) {
          diag(Severity::Warning, "VSD-L222", pb.line,
               "input port '" + pb.port + "' of instance '" + pb.instance +
                   "' (module " + pb.module_name + ") is left unconnected",
               subject);
        }
        continue;
      }
      if (pb.formal_width > 0 && pb.actual_width > 0 &&
          pb.formal_width != pb.actual_width) {
        diag(Severity::Warning, "VSD-L220", pb.line,
             "port '" + pb.port + "' of instance '" + pb.instance +
                 "' (module " + pb.module_name + ") is " +
                 std::to_string(pb.formal_width) + " bits but connects to a " +
                 std::to_string(pb.actual_width) + "-bit expression",
             subject);
      }
      if (pb.dir == PortDir::Output) {
        const std::size_t dot = pb.instance.rfind('.');
        const std::string scope =
            dot == std::string::npos ? std::string()
                                     : pb.instance.substr(0, dot + 1);
        std::vector<Ref> targets;
        std::vector<Ref> index_reads;
        lhs_refs(pb.actual, scope, targets, index_reads);
        for (const Ref& t : targets) {
          const auto it = drivers_.find(t.sig);
          if (it == drivers_.end()) continue;
          for (const auto& [proc, range] : it->second) {
            if (proc == pb.connect_process) continue;
            if (!ranges_overlap(range, t.range)) continue;
            if (l221_reported.insert(t.sig).second) {
              diag(Severity::Error, "VSD-L221", pb.line,
                   "net '" + name(t.sig) + "' is driven by output port '" +
                       subject + "' and by another driver",
                   name(t.sig));
            }
            break;
          }
        }
      }
    }
  }

  // ---- state --------------------------------------------------------------

  const Design& d_;
  std::string top_;
  LintResult& out_;

  std::vector<CombEdge> comb_edges_;
  std::vector<SeqAssign> seq_assigns_;
  std::map<int, int> reg_domain_;  // register -> clock signal id
  std::map<int, std::vector<std::pair<int, BitRange>>> drivers_;
};

void collect_instantiated(const std::vector<ItemPtr>& items,
                          std::set<std::string>& out) {
  for (const auto& item : items) {
    if (item->kind == ItemKind::Instance) {
      out.insert(static_cast<const InstanceItem&>(*item).module_name);
    } else if (item->kind == ItemKind::GenerateFor) {
      collect_instantiated(static_cast<const GenerateForItem&>(*item).body,
                           out);
    }
  }
}

}  // namespace

LintResult analyze_design(const sim::Design& design, const std::string& top) {
  LintResult out;
  DesignAnalyzer(design, top, out).run();
  return out;
}

LintResult analyze_unit(std::shared_ptr<const SourceUnit> unit,
                        const std::string& top) {
  LintResult out;
  if (!unit) return out;
  std::vector<std::string> roots;
  if (!top.empty()) {
    roots.push_back(top);
  } else {
    // Every root module: one nothing else instantiates.  A unit where every
    // module is instantiated (unusual) falls back to the last module, the
    // same convention sim::check_compiles uses for testbench files.
    std::set<std::string> instantiated;
    for (const auto& m : unit->modules) {
      collect_instantiated(m->items, instantiated);
    }
    for (const auto& m : unit->modules) {
      if (instantiated.count(m->name) == 0) roots.push_back(m->name);
    }
    if (roots.empty() && !unit->modules.empty()) {
      roots.push_back(unit->modules.back()->name);
    }
  }
  for (const std::string& root : roots) {
    sim::ElabResult er = sim::elaborate(unit, root);
    if (!er.ok) {
      out.add(Severity::Error, "VSD-L201", 0,
              "elaboration of '" + root + "' failed: " + er.error, root);
      continue;
    }
    out.merge(analyze_design(*er.design, root));
  }
  out.sort_by_location();
  return out;
}

LintResult elab_lint_source(std::string_view source, const std::string& top) {
  ParseResult pr = parse(source);
  if (!pr.ok || pr.unit == nullptr || pr.unit->modules.empty()) {
    LintResult out;
    out.add(Severity::Error, "VSD-L001", pr.error_line,
            pr.error.empty() ? "source contains no modules" : pr.error);
    return out;
  }
  return analyze_unit(std::shared_ptr<const SourceUnit>(std::move(pr.unit)),
                      top);
}

bool elab_ok(std::string_view source, const std::string& top) {
  return !elab_lint_source(source, top).has_errors();
}

}  // namespace vsd::vlog
