// vsd::obs — the serving stack's metrics layer: named counters, gauges,
// and fixed log-bucket histograms behind a registry, built so that the
// hot path (a scheduler tick, a queue pop, a cache lookup) records with a
// handful of relaxed atomic operations and no locks.
//
// Design points:
//   - Counter is sharded across cache lines: concurrent add()s from the
//     scheduler and every pool worker land on different shards instead of
//     bouncing one hot line; value() sums the shards.
//   - Histogram buckets are logarithmic (4 per doubling, ~19% wide) over
//     a fixed range, so one 128-slot array covers microseconds to an hour
//     of latency and record() is bucket-index + fetch_add.  Quantiles
//     (p50/p95/p99) interpolate inside the covering bucket and clamp to
//     the observed min/max, so a degenerate distribution (all values
//     equal) reports its exact value.
//   - Registry hands out stable references (metrics are never destroyed
//     while the registry lives), so callers resolve a name once and keep
//     the pointer; creation takes a mutex, recording never does.
//
// Per-run isolation: the Scheduler and benches build their own Registry
// per serving run; `Registry::global()` is the process-wide instance the
// `vsd serve` front end snapshots for --stats-every and the summary.
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vsd::obs {

/// Point-in-time summary of one histogram, quantiles extracted from the
/// log buckets.  Plain data — copy it into stats structs and ledgers.
struct HistogramStats {
  long count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Monotonic counter, sharded so concurrent add()s don't contend.
class Counter {
 public:
  static constexpr int kShards = 16;

  void add(long n);
  void inc() { add(1); }
  long value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<long> v{0};
  };
  Shard shards_[kShards];
};

/// Last-written value — sampled state like queue depth or arena pressure.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed log-bucket histogram with lock-free record().
///
/// Bucket 0 holds values <= kMin (and anything non-positive); bucket i
/// (i >= 1) covers [kMin * 2^((i-1)/4), kMin * 2^(i/4)); the last bucket
/// additionally catches overflow.  Recording seconds, the range runs from
/// 1 microsecond to ~3.6e3 s with ~19% relative resolution — one bucket
/// width is the quantile error bound the test suite asserts against a
/// sorted-vector oracle.
class Histogram {
 public:
  static constexpr int kBuckets = 128;
  static constexpr double kMin = 1e-6;
  static constexpr double kBucketsPerDoubling = 4.0;

  void record(double v);
  long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min_value() const;
  double max_value() const;
  /// Approximate quantile (q in [0, 1]): linear interpolation by rank
  /// inside the covering bucket, clamped to the observed min/max.
  double quantile(double q) const;
  HistogramStats stats() const;

  static int bucket_index(double v);
  static double bucket_lower(int i);
  static double bucket_upper(int i);

 private:
  std::atomic<long> buckets_[kBuckets] = {};
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0.0};
  // min/max are meaningful only while count_ > 0 (readers guard on it).
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

enum class MetricKind { Counter, Gauge, Histogram };

/// One row of a registry snapshot (the --stats-every line, the summary's
/// obs block).
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;      // counter / gauge
  HistogramStats hist{};   // kind == Histogram
};

/// Named metrics, get-or-create.  References stay valid for the
/// registry's lifetime; resolve once, record through the pointer.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Snapshot of every metric, name-sorted within each kind.
  std::vector<MetricRow> collect() const;

  /// The process-wide registry (`vsd serve` records here; benches and
  /// tests build their own instances for per-run isolation).
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace vsd::obs
