#include "common/version.hpp"

namespace vsd {

#ifndef VSD_VERSION_STRING
#define VSD_VERSION_STRING "0.0.0"
#endif
#ifndef VSD_BUILD_TYPE
#define VSD_BUILD_TYPE "unknown"
#endif

const char* version() { return VSD_VERSION_STRING; }

const char* build_info() {
  return "vsd " VSD_VERSION_STRING " (" VSD_BUILD_TYPE ", "
#if defined(__clang__)
         "clang " __clang_version__
#elif defined(__GNUC__)
         "gcc " __VERSION__
#else
         "unknown compiler"
#endif
         ")";
}

}  // namespace vsd
