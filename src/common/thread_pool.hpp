// vsd::ThreadPool — a fixed-size worker pool returning std::futures.
//
// Lives in the common layer (it started out in serve/) so that both the
// serving front end and the nn compute kernels can share the abstraction
// without a layer inversion: nn must not link serve.
//
// Deliberately simple (no work stealing, one shared FIFO): tasks in this
// codebase are coarse — a speculative decode step, a full eval sample, a
// GEMM partition — so queue contention is negligible and FIFO keeps
// scheduling deterministic enough to reason about.  Exceptions thrown by a
// task surface from the corresponding future's get().  Destruction drains
// every queued task before joining the workers.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace vsd {

class ThreadPool {
 public:
  /// Spawns max(1, workers) threads.  `worker_init`, when given, runs once
  /// on each worker thread before it takes tasks (e.g. to set a
  /// thread_local "I am a pool worker" mark that nested submitters check).
  explicit ThreadPool(int workers, std::function<void()> worker_init = nullptr);
  /// Drains the queue (pending tasks still run), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      check(!stop_, "ThreadPool::submit after shutdown");
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::function<void()> worker_init_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace vsd
