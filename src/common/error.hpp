// vsd::Error — library-wide exception type and contract-check helpers.
//
// All vsd libraries signal contract violations and unrecoverable input
// errors by throwing vsd::Error.  Recoverable conditions (e.g. "this code
// does not parse") are reported through result types, not exceptions.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace vsd {

/// Exception thrown on contract violations across all vsd libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws vsd::Error with `msg` if `cond` is false.
inline void check(bool cond, std::string_view msg) {
  if (!cond) throw Error(std::string(msg));
}

}  // namespace vsd
