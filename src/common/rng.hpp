// vsd::Rng — deterministic, splittable pseudo-random generator.
//
// Every stochastic component in the library (corpus generation, weight
// initialisation, sampling decoders, stimulus generation) takes a vsd::Rng
// so that experiments are reproducible bit-for-bit from a single seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace vsd {

/// xoshiro256**-based generator.  Cheap to copy; `split()` derives an
/// independent stream so parallel components never share state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform float in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() { return static_cast<float>(next_double()); }

  /// Gaussian sample via Box–Muller.
  double next_gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = next_double() * 2.0 - 1.0;
      v = next_double() * 2.0 - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  /// Bernoulli with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Derives an independent generator stream.
  Rng split() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[next_below(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[next_below(i)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace vsd
