// Build identification for the vsd tools (`vsd --version`, bench headers).
#pragma once

namespace vsd {

/// Semantic version of the library, e.g. "0.1.0".
const char* version();

/// One-line build description: version, build type, and compiler.
const char* build_info();

}  // namespace vsd
