#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace vsd::obs {

namespace {

/// Stable per-thread shard index: threads take the next slot round-robin
/// on first use, so up to kShards concurrent recorders never collide.
std::size_t this_thread_shard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx % static_cast<unsigned>(Counter::kShards);
}

/// fetch_add for atomic<double> via CAS (portable before P0020 support).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::add(long n) {
  shards_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
}

long Counter::value() const {
  long total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

int Histogram::bucket_index(double v) {
  if (!(v > kMin)) return 0;  // non-positive, tiny, and NaN all land here
  const int idx =
      1 + static_cast<int>(std::floor(std::log2(v / kMin) * kBucketsPerDoubling));
  return idx >= kBuckets ? kBuckets - 1 : idx;
}

double Histogram::bucket_lower(int i) {
  return i <= 0 ? 0.0
                : kMin * std::exp2(static_cast<double>(i - 1) / kBucketsPerDoubling);
}

double Histogram::bucket_upper(int i) {
  return kMin * std::exp2(static_cast<double>(i) / kBucketsPerDoubling);
}

void Histogram::record(double v) {
  if (std::isnan(v)) return;
  if (v < 0.0) v = 0.0;
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  atomic_min(min_, v);  // min_/max_ start at +/-inf, so the CAS loops
  atomic_max(max_, v);  // need no first-recorder special case
  atomic_add(sum_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min_value() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max_value() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::quantile(double q) const {
  const long n = count();
  if (n <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);

  // Walk buckets until the cumulative count reaches the target rank;
  // remember the last non-empty bucket so racing reads (count_ and the
  // buckets are sampled separately) degrade to the tail, never past it.
  int idx = -1;
  long in_bucket = 0;
  double before = 0.0;
  double cum = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const long b = buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (b <= 0) continue;
    idx = i;
    in_bucket = b;
    before = cum;
    cum += b;
    if (cum >= target) break;
  }
  if (idx < 0) return 0.0;

  const double lo = bucket_lower(idx);
  const double hi = bucket_upper(idx);
  const double frac =
      in_bucket > 0
          ? std::clamp((target - before) / static_cast<double>(in_bucket), 0.0, 1.0)
          : 0.0;
  double v = lo + (hi - lo) * frac;
  // Clamp to the observed range: a one-value distribution reports that
  // value exactly instead of a bucket bound.
  v = std::min(v, max_.load(std::memory_order_relaxed));
  v = std::max(v, min_.load(std::memory_order_relaxed));
  return v;
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count();
  if (s.count <= 0) return s;
  s.sum = sum();
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricRow> Registry::collect() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    rows.push_back({.name = name,
                    .kind = MetricKind::Counter,
                    .value = static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    rows.push_back(
        {.name = name, .kind = MetricKind::Gauge, .value = g->value()});
  }
  for (const auto& [name, h] : histograms_) {
    MetricRow row;
    row.name = name;
    row.kind = MetricKind::Histogram;
    row.hist = h->stats();
    rows.push_back(std::move(row));
  }
  return rows;
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

}  // namespace vsd::obs
