#include "common/thread_pool.hpp"

#include <algorithm>

namespace vsd {

ThreadPool::ThreadPool(int workers, std::function<void()> worker_init)
    : worker_init_(std::move(worker_init)) {
  const int n = std::max(1, workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  if (worker_init_) worker_init_();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

}  // namespace vsd
