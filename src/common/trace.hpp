// vsd::obs::TraceWriter — a Chrome-trace-event JSON timeline writer
// (loadable in Perfetto / chrome://tracing) for the serving stack.
//
// Events accumulate cross-thread into one buffer (a mutex-guarded append;
// spans are opened and closed hundreds of times per tick at most, so the
// lock never shows up next to a forward pass) and are written out once at
// the end of the run.  Each recording thread gets its own lane (tid),
// assigned on first event and nameable via name_this_thread(), so the
// scheduler and every pool worker render as separate tracks.  Request
// lifecycles use async events keyed by the request id, which Perfetto
// groups into one track per in-flight request.
//
// The buffer is bounded (max_events): past the cap events are counted as
// dropped — never silently — and the count is reported both by dropped()
// and in the written file's otherData block.
//
// A null TraceWriter* disables everything: Span and the record calls are
// no-ops, which is how `vsd serve` keeps zero overhead with --trace off.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vsd::obs {

/// UTC wall-clock timestamp (ISO 8601, seconds resolution) — dates the
/// perf-ledger entries (BENCH_*.json) and the trace file's metadata.
inline std::string utc_iso8601() {
  const std::time_t t = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

class TraceWriter {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TraceWriter(std::size_t max_events = std::size_t{1} << 22);

  /// Names the calling thread's lane ("scheduler", "pool-worker-0", ...).
  void name_this_thread(const std::string& name);

  /// Complete event (ph "X"): a [begin, end) span on this thread's lane.
  /// `args_json`, when non-empty, must be a JSON object literal.
  void complete(const char* name, const char* cat, Clock::time_point begin,
                Clock::time_point end, std::string args_json = {});
  /// Instant event (ph "i") on this thread's lane.
  void instant(const char* name, const char* cat);
  /// Counter event (ph "C"): a sampled series Perfetto renders as a track.
  void counter(const char* name, double value);
  /// Async span events (ph "b"/"n"/"e"), grouped by `id` — one lane per
  /// in-flight request regardless of which thread emits them.
  void async_begin(const char* name, std::uint64_t id, std::string args_json = {});
  void async_instant(const char* name, std::uint64_t id);
  void async_end(const char* name, std::uint64_t id, std::string args_json = {});

  std::size_t events() const;
  std::size_t dropped() const;

  /// Writes the whole timeline as one JSON object ({"traceEvents": [...]}).
  void write(std::FILE* out) const;
  /// Convenience wrapper: write to `path`, false if the file won't open.
  bool write_file(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    std::string cat;
    char ph = 'X';
    int tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;     // ph == 'X'
    std::uint64_t id = 0;    // async events
    double value = 0.0;      // ph == 'C'
    std::string args;        // raw JSON object text, may be empty
  };

  int lane_locked();
  void push(Event e);

  const std::size_t max_events_;
  const Clock::time_point t0_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> lanes_;
  std::map<int, std::string> lane_names_;
  std::size_t dropped_ = 0;
};

/// RAII phase span: times a scope and records it as one complete event on
/// the calling thread's lane.  A null writer makes construction and
/// destruction branch-only no-ops.
class Span {
 public:
  explicit Span(TraceWriter* w, const char* name, const char* cat = "serve")
      : w_(w),
        name_(name),
        cat_(cat),
        t0_(w != nullptr ? TraceWriter::Clock::now()
                         : TraceWriter::Clock::time_point{}) {}
  ~Span() {
    if (w_ != nullptr) w_->complete(name_, cat_, t0_, TraceWriter::Clock::now());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceWriter* w_;
  const char* name_;
  const char* cat_;
  TraceWriter::Clock::time_point t0_;
};

}  // namespace vsd::obs
