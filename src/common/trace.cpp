#include "common/trace.hpp"

#include <string_view>
#include <utility>

namespace vsd::obs {

namespace {

/// Minimal JSON string escape for event/thread names and categories (all
/// generated in-tree, but a stray quote must not corrupt the file).  The
/// common layer cannot use serve/json.hpp — serve links common, not the
/// other way around.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceWriter::TraceWriter(std::size_t max_events)
    : max_events_(max_events), t0_(Clock::now()) {}

int TraceWriter::lane_locked() {
  const auto id = std::this_thread::get_id();
  const auto it = lanes_.find(id);
  if (it != lanes_.end()) return it->second;
  const int lane = static_cast<int>(lanes_.size());
  lanes_.emplace(id, lane);
  return lane;
}

void TraceWriter::push(Event e) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  e.tid = lane_locked();
  events_.push_back(std::move(e));
}

void TraceWriter::name_this_thread(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  lane_names_[lane_locked()] = name;
}

void TraceWriter::complete(const char* name, const char* cat,
                           Clock::time_point begin, Clock::time_point end,
                           std::string args_json) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.ts_us = std::chrono::duration<double, std::micro>(begin - t0_).count();
  e.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  e.args = std::move(args_json);
  push(std::move(e));
}

void TraceWriter::instant(const char* name, const char* cat) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = std::chrono::duration<double, std::micro>(Clock::now() - t0_).count();
  push(std::move(e));
}

void TraceWriter::counter(const char* name, double value) {
  Event e;
  e.name = name;
  e.ph = 'C';
  e.ts_us = std::chrono::duration<double, std::micro>(Clock::now() - t0_).count();
  e.value = value;
  push(std::move(e));
}

void TraceWriter::async_begin(const char* name, std::uint64_t id,
                              std::string args_json) {
  Event e;
  e.name = name;
  e.cat = "request";
  e.ph = 'b';
  e.id = id;
  e.ts_us = std::chrono::duration<double, std::micro>(Clock::now() - t0_).count();
  e.args = std::move(args_json);
  push(std::move(e));
}

void TraceWriter::async_instant(const char* name, std::uint64_t id) {
  Event e;
  e.name = name;
  e.cat = "request";
  e.ph = 'n';
  e.id = id;
  e.ts_us = std::chrono::duration<double, std::micro>(Clock::now() - t0_).count();
  push(std::move(e));
}

void TraceWriter::async_end(const char* name, std::uint64_t id,
                            std::string args_json) {
  Event e;
  e.name = name;
  e.cat = "request";
  e.ph = 'e';
  e.id = id;
  e.ts_us = std::chrono::duration<double, std::micro>(Clock::now() - t0_).count();
  e.args = std::move(args_json);
  push(std::move(e));
}

std::size_t TraceWriter::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceWriter::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceWriter::write(std::FILE* out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out, "{\n\"traceEvents\":[\n");
  // Metadata first: the process lane and one named track per thread.
  std::fprintf(out,
               "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
               "\"args\":{\"name\":\"vsd serve\"}}");
  for (const auto& [id, lane] : lanes_) {
    const auto named = lane_names_.find(lane);
    std::string name = named != lane_names_.end()
                           ? named->second
                           : "thread-" + std::to_string(lane);
    std::fprintf(out,
                 ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"%s\"}},\n"
                 "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":"
                 "\"thread_sort_index\",\"args\":{\"sort_index\":%d}}",
                 lane, escape(name).c_str(), lane, lane);
  }
  for (const Event& e : events_) {
    std::fprintf(out, ",\n{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":1,\"tid\":%d",
                 escape(e.name).c_str(), e.ph, e.tid);
    if (!e.cat.empty()) std::fprintf(out, ",\"cat\":\"%s\"", escape(e.cat).c_str());
    std::fprintf(out, ",\"ts\":%.3f", e.ts_us);
    switch (e.ph) {
      case 'X': std::fprintf(out, ",\"dur\":%.3f", e.dur_us); break;
      case 'i': std::fprintf(out, ",\"s\":\"t\""); break;
      case 'C': std::fprintf(out, ",\"args\":{\"value\":%.6g}", e.value); break;
      case 'b':
      case 'n':
      case 'e':
        std::fprintf(out, ",\"id\":%llu", static_cast<unsigned long long>(e.id));
        break;
      default: break;
    }
    if (!e.args.empty() && e.ph != 'C') {
      std::fprintf(out, ",\"args\":%s", e.args.c_str());
    }
    std::fprintf(out, "}");
  }
  std::fprintf(out,
               "\n],\n\"displayTimeUnit\":\"ms\",\n"
               "\"otherData\":{\"generated_utc\":\"%s\",\"dropped_events\":%zu}"
               "\n}\n",
               utc_iso8601().c_str(), dropped_);
}

bool TraceWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  write(f);
  std::fclose(f);
  return true;
}

}  // namespace vsd::obs
