// Fine-tuning driver for the three training strategies compared in the
// paper (Section IV-A): conventional next-token prediction (NTP), the
// original MEDUSA-2 joint fine-tuning, and Ours (MEDUSA-2 with
// syntax-enriched labels built from [FRAG]-marked code).
//
// Loss (Eq. 2):  Loss = Loss_base + lambda * sum_i gamma^i * Loss_head_i,
// with lambda growing 0 -> 0.2 along a sine schedule and gamma = 0.8.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model.hpp"
#include "nn/optim.hpp"
#include "spec/labels.hpp"
#include "text/bpe.hpp"

namespace vsd::spec {

enum class Method { NTP, Medusa, Ours };

const char* method_name(Method m);

struct TrainConfig {
  Method method = Method::Ours;
  float gamma = 0.8f;
  float lambda_max = 0.2f;
  float lr = 5e-4f;
  int epochs = 2;
  int warmup_steps = 40;
  int max_seq = 256;  // sequences longer than this are skipped
  std::uint64_t seed = 1;
};

/// A tokenized training example.  For decoder-only models the prompt is a
/// prefix of the decoder sequence; for encoder-decoder models it feeds the
/// encoder.  `code_ids` must end with EOS and, for Method::Ours, contain
/// [FRAG] ids.
struct EncodedExample {
  std::vector<int> prompt_ids;
  std::vector<int> code_ids;
};

struct TrainStats {
  double first_loss = 0.0;
  double final_loss = 0.0;  // running mean over the last epoch
  int steps = 0;
  int skipped = 0;          // examples over max_seq
  double seconds = 0.0;
};

class Trainer {
 public:
  Trainer(nn::TransformerModel& model, TrainConfig cfg);

  /// Runs `cfg.epochs` passes over `data` (micro-batch of one, as in the
  /// paper's recipe) and returns loss statistics.
  TrainStats fit(const std::vector<EncodedExample>& data);

 private:
  double train_one(const EncodedExample& ex, int step, int total_steps);

  nn::TransformerModel& model_;
  TrainConfig cfg_;
  nn::AdamW optim_;
};

}  // namespace vsd::spec
