// Typical-acceptance rule for speculative tokens (paper Eq. 1, following
// MEDUSA): a drafted token x is accepted when
//     p_base(x | prefix) > min(epsilon, delta * exp(-H(p_base(.|prefix)))).
#pragma once

#include <cmath>
#include <span>
#include <vector>

namespace vsd::spec {

struct TypicalAcceptance {
  float epsilon = 0.09f;
  float delta = 0.3f;

  /// Shannon entropy (nats) of a probability vector.
  static double entropy(std::span<const float> probs) {
    double h = 0.0;
    for (const float p : probs) {
      if (p > 1e-12f) h -= static_cast<double>(p) * std::log(static_cast<double>(p));
    }
    return h;
  }

  /// Eq. 1: accept `token` under base-model distribution `probs`.
  bool accepts(std::span<const float> probs, int token) const {
    const double threshold =
        std::min(static_cast<double>(epsilon),
                 static_cast<double>(delta) * std::exp(-entropy(probs)));
    return static_cast<double>(probs[static_cast<std::size_t>(token)]) > threshold;
  }
};

/// softmax(logits / temperature); temperature <= 0 means 1.0 (raw).
std::vector<float> softmax(std::span<const float> logits, float temperature = 1.0f);

}  // namespace vsd::spec
