// Syntax-enriched label construction (paper Section III-C, Fig. 4).
//
// For a token sequence L0 (the [FRAG]-marked code), the label of head i is
// Li = L0[i:] padded to length with [PAD].  The masking step then finds,
// for every sequence position, the last [FRAG] along the head dimension
// and replaces every label beyond it with [IGNORE], so each head is only
// trained on positions that complete a syntactic fragment.
//
// Two implementations are provided: the paper's parallel algorithm
// (Fig. 4 right panel) and a direct per-column reference used to validate
// it and to quantify the speedup (ablation bench).
#pragma once

#include <span>
#include <vector>

namespace vsd::spec {

/// Labels for the base model and n heads.  heads[i] has the same length
/// as base; entries are token ids, pad_id, or ignore_id.
struct LabelSet {
  std::vector<int> base;
  std::vector<std::vector<int>> heads;
};

/// Builds the unmasked label matrix: base = ids, heads[i] = ids shifted
/// left by (i+1) with pad_id appended.  (Head i predicts position t+i+2
/// from position t's hidden state, one beyond the base model's t+1.)
LabelSet build_shifted_labels(std::span<const int> ids, int num_heads, int pad_id);

/// Fig. 4 parallel masking algorithm: per column, labels of heads after
/// the last [FRAG] along the head dimension become ignore_id.  Columns
/// whose head labels contain no [FRAG] are left untouched.  [PAD] labels
/// are always converted to ignore_id.
void apply_ignore_mask_parallel(LabelSet& labels, int frag_id, int pad_id,
                                int ignore_id);

/// Straightforward per-column reference with identical semantics.
void apply_ignore_mask_naive(LabelSet& labels, int frag_id, int pad_id,
                             int ignore_id);

/// Convenience: shifted labels + parallel masking.
LabelSet build_syntax_enriched_labels(std::span<const int> ids, int num_heads,
                                      int frag_id, int pad_id, int ignore_id);

/// Fraction of head-label entries equal to ignore_id, per head.  The paper
/// argues this proportion grows with head index, easing later heads'
/// prediction task; tests assert the monotone trend.
std::vector<double> ignore_fraction_per_head(const LabelSet& labels, int ignore_id);

}  // namespace vsd::spec
