// Decoders: conventional next-token prediction (NTP), MEDUSA speculative
// decoding, and the paper's syntax-aligned variant (MEDUSA + fragment
// integrity check) — Section III-B.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/model.hpp"
#include "spec/accept.hpp"
#include "text/bpe.hpp"

namespace vsd::spec {

struct DecodeConfig {
  int max_new_tokens = 200;
  float temperature = 0.0f;  // 0 => greedy
  int num_heads = 10;        // draft heads used per step (<= model heads)
  int num_candidates = 1;    // top-k base candidates kept per step
  TypicalAcceptance acceptance;
  bool fragment_integrity = false;  // true => "Ours"
  int frag_id = text::Tokenizer::kFrag;
  int eos_id = text::Tokenizer::kEos;
};

struct DecodeResult {
  std::vector<int> ids;                // generated token ids (no prompt/EOS)
  int steps = 0;                       // decoding iterations (Fig. 5 metric)
  long positions = 0;                  // decoder positions fed in total
  double wall_seconds = 0.0;
  std::vector<int> accepted_per_step;  // tokens committed per iteration
  bool hit_eos = false;

  double mean_accepted() const {
    if (accepted_per_step.empty()) return 0.0;
    double sum = 0.0;
    for (const int a : accepted_per_step) sum += a;
    return sum / static_cast<double>(accepted_per_step.size());
  }
};

/// Runs generation for `prompt_ids`.  For encoder-decoder models the
/// prompt feeds the encoder and generation starts from BOS; for
/// decoder-only models the prompt ids are fed into the decoder directly.
class Decoder {
 public:
  explicit Decoder(const nn::TransformerModel& model) : model_(model) {}

  DecodeResult ntp(std::span<const int> prompt_ids, const DecodeConfig& cfg,
                   Rng& rng) const;

  /// MEDUSA-style speculative decoding; cfg.fragment_integrity switches
  /// between the Medusa baseline (false) and the paper's method (true).
  DecodeResult speculative(std::span<const int> prompt_ids, const DecodeConfig& cfg,
                           Rng& rng) const;

  /// Calibration: mean seconds for a single-token decoder step at a given
  /// context length (used by the speed harness's latency model).
  double measure_step_seconds(int context_len, int reps = 16) const;

 private:
  int prime_session(nn::InferSession& sess, std::span<const int> prompt_ids,
                    nn::Tensor& h_last) const;

  const nn::TransformerModel& model_;
};

/// Picks a token from logits: argmax when temperature <= 0, else samples.
int pick_token(std::span<const float> logits, float temperature, Rng& rng);

}  // namespace vsd::spec
