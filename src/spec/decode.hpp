// Decoders: conventional next-token prediction (NTP), MEDUSA speculative
// decoding, and the paper's syntax-aligned variant (MEDUSA + fragment
// integrity check) — Section III-B.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/model.hpp"
#include "spec/accept.hpp"
#include "text/bpe.hpp"

namespace vsd::spec {

struct DecodeConfig {
  int max_new_tokens = 200;
  float temperature = 0.0f;  // 0 => greedy; must be finite and >= 0
  int num_heads = 10;        // draft heads used per step (<= model heads)
  int num_candidates = 1;    // top-k base candidates kept per step
  TypicalAcceptance acceptance;
  bool fragment_integrity = false;  // true => "Ours"
  int frag_id = text::Tokenizer::kFrag;
  int eos_id = text::Tokenizer::kEos;
};

/// One forward request emitted by the fused-forward protocol (see
/// DecodeSession::advance): `hidden` rows need base-LM logits and, when
/// `n_heads > 0`, logits from draft heads 0..n_heads-1 over the same rows.
/// Requests from many sessions can be stacked into one [B, D] pass — the
/// scoring matmuls are row-independent, so fused and per-session logits
/// are bit-identical.
struct ScoreRequest {
  nn::Tensor hidden;  // [n, D] rows to score
  int n_heads = 0;    // draft heads wanted (0 => base LM only)
};

/// Logits answering a ScoreRequest, produced either locally (the serial
/// path scores with the session's own model) or scattered back out of the
/// scheduler's fused batch.
struct Scores {
  nn::Tensor lm;                  // [n, V]
  std::vector<nn::Tensor> heads;  // n_heads tensors, each [n, V]
};

/// Where a DecodeSession stopped when advance() returned.
enum class StepState {
  NeedScores,  // request() awaits logits; hand them back via supply()
  StepDone,    // one speculative iteration committed; more steps remain
  Finished,    // the request is complete (EOS, budget, or empty prompt)
};

struct DecodeResult {
  std::vector<int> ids;                // generated token ids (no prompt/EOS)
  int steps = 0;                       // decoding iterations (Fig. 5 metric)
  long positions = 0;                  // decoder positions fed in total
  long prefill_positions = 0;          // positions fed while priming the prompt
  double wall_seconds = 0.0;
  std::vector<int> accepted_per_step;  // tokens committed per iteration
  bool hit_eos = false;

  double mean_accepted() const {
    if (accepted_per_step.empty()) return 0.0;
    double sum = 0.0;
    for (const int a : accepted_per_step) sum += a;
    return sum / static_cast<double>(accepted_per_step.size());
  }
};

/// One in-flight speculative decode: the per-request state behind
/// Decoder::speculative (KV session, last hidden row, remaining budget),
/// factored out so a batching scheduler can interleave many requests and
/// advance each one speculative iteration at a time.
///
/// The referenced InferSession is reset() on construction and must outlive
/// this object; reusing one InferSession across consecutive requests keeps
/// its KV-cache allocations warm.  The prompt is fed lazily on the first
/// step() call so a thread pool can absorb the prefill cost too.
///
/// `primed_prefix` > 0 declares that the first `primed_prefix` prompt
/// tokens are already in the KV cache (an nn::KvPrefix adopted from the
/// serving layer's prompt-prefix cache — shared arena pages, possibly
/// referenced by other in-flight sessions): the session is NOT reset and
/// prime() feeds only the remaining suffix, which must be non-empty so the
/// next-token hidden state is computed.  Results are token-identical to
/// the unprimed path (feeds are row-local, so splitting the prompt at any
/// boundary is bit-exact), and the speculative feed/truncate rollbacks
/// work unchanged over the page table: truncate releases whole pages past
/// the new length, and a feed into a page still shared with the cache
/// copy-on-writes just that page.  Decoder-only models only; degenerate configs
/// (num_candidates < 1, max_new_tokens < 0, no draft heads) are rejected
/// here, up front.  An empty prompt yields an immediately-done empty
/// result instead of crashing in the prefill.
class DecodeSession {
 public:
  DecodeSession(const nn::TransformerModel& model, nn::InferSession& sess,
                std::vector<int> prompt_ids, const DecodeConfig& cfg, Rng rng,
                int primed_prefix = 0);

  /// Advances decoding by one speculative iteration (the first call also
  /// primes the KV cache with the prompt).  Returns true while the request
  /// has more steps to run.  Equivalent to driving the fused-forward
  /// protocol below with local scoring.
  bool step();

  /// Fused-forward protocol: one speculative step, split into a propose
  /// stage (per-session work: priming, candidate feeds, acceptance) and
  /// external score stages (the logits matmuls).  advance() runs the
  /// session to its next scoring point; on NeedScores the caller scores
  /// request() — locally, or fused with other sessions' requests into one
  /// [B, D] x [D, V] pass — hands the logits back via supply(), and calls
  /// advance() again.  StepDone/Finished mark the step boundary exactly
  /// where step() would have returned.  Results are token-identical to
  /// step() however the scoring is batched.
  StepState advance();
  /// The pending request; valid only after advance() returned NeedScores.
  const ScoreRequest& request() const;
  /// Fulfills the pending request; the next advance() resumes the step.
  void supply(Scores scores);
  /// Attributes a share of an externally-run (fused) scoring pass to this
  /// request's wall_seconds, keeping per-request timings comparable with
  /// the serial path, where step() times the scoring locally.
  void credit_wall(double seconds) { out_.wall_seconds += seconds; }

  bool done() const { return done_; }
  const DecodeResult& result() const { return out_; }
  DecodeResult take_result() { return std::move(out_); }
  /// RNG state after the draws consumed so far (lets single-prompt callers
  /// keep threading one generator through consecutive calls).
  const Rng& rng() const { return rng_; }

 private:
  enum class Phase { Idle, AwaitDraft, AwaitChain };

  void prime();
  StepState begin_step();
  StepState consume_draft();
  StepState run_candidates();
  void consume_chain();
  void track_candidate(int accepted);
  StepState commit();
  void score_local();

  const nn::TransformerModel& model_;
  nn::InferSession& sess_;
  std::vector<int> prompt_ids_;
  DecodeConfig cfg_;
  Rng rng_;
  DecodeResult out_;
  nn::Tensor h_;
  int n_heads_ = 0;
  int generated_ = 0;
  int prefix_len_ = 0;  // prompt tokens already in the KV cache
  bool primed_ = false;
  bool done_ = false;

  // Fused-forward protocol state: where the in-progress step paused, the
  // request it paused on, and the candidate-verification loop locals that
  // must survive across the pause.
  Phase phase_ = Phase::Idle;
  ScoreRequest req_;
  Scores scores_;
  bool scores_ready_ = false;
  std::vector<float> base_logits_;
  std::vector<float> base_probs_;
  std::vector<int> first_tokens_;
  std::vector<int> head_tokens_;
  std::vector<int> chain_;  // candidate currently being verified
  nn::Tensor hs_;           // hidden rows of the fed chain
  std::size_t cand_ = 0;
  int base_len_ = 0;
  float prob_temp_ = 1.0f;
  int best_accepted_ = 0;
  std::vector<int> best_chain_;
  nn::Tensor best_hidden_;
  std::size_t best_c_ = 0;
  std::size_t last_fed_ = static_cast<std::size_t>(-1);
};

/// One prompt of a batched decode (Decoder::speculative_batch).
struct BatchRequest {
  std::vector<int> prompt_ids;
  DecodeConfig config;
  std::uint64_t seed = 0;  // per-request RNG stream (unused at temperature 0)
};

/// Accounting for a batched decode under the serving-latency model: each
/// tick advances every in-flight session one speculative step, i.e. one
/// shared batched base-model forward in the regime the paper measures.
struct BatchStats {
  long ticks = 0;
  int max_in_flight = 0;
};

/// Runs generation for `prompt_ids`.  For encoder-decoder models the
/// prompt feeds the encoder and generation starts from BOS; for
/// decoder-only models the prompt ids are fed into the decoder directly.
class Decoder {
 public:
  explicit Decoder(const nn::TransformerModel& model) : model_(model) {}

  DecodeResult ntp(std::span<const int> prompt_ids, const DecodeConfig& cfg,
                   Rng& rng) const;

  /// MEDUSA-style speculative decoding; cfg.fragment_integrity switches
  /// between the Medusa baseline (false) and the paper's method (true).
  DecodeResult speculative(std::span<const int> prompt_ids, const DecodeConfig& cfg,
                           Rng& rng) const;

  /// Batched speculative decoding with continuous admission: keeps up to
  /// `batch_slots` requests in flight (0 => all at once), advances every
  /// live request one speculative step per tick, and refills a slot the
  /// moment its request completes — no barrier on the slowest prompt.
  /// Results are token-identical to per-request speculative() calls
  /// seeded with the same BatchRequest::seed.
  std::vector<DecodeResult> speculative_batch(std::span<const BatchRequest> requests,
                                              int batch_slots = 0,
                                              BatchStats* stats = nullptr) const;

  /// Calibration: mean seconds for a single-token decoder step at a given
  /// context length (used by the speed harness's latency model).
  double measure_step_seconds(int context_len, int reps = 16) const;

 private:
  const nn::TransformerModel& model_;
};

/// Picks a token from logits: argmax when temperature <= 0, else samples.
int pick_token(std::span<const float> logits, float temperature, Rng& rng);

}  // namespace vsd::spec
