#include "spec/decode.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

namespace vsd::spec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<float> row_of(const nn::Tensor& t, int row) {
  return std::vector<float>(t.row(row), t.row(row) + t.cols());
}

/// Indices of the k largest logits.
std::vector<int> top_k_indices(std::span<const float> logits, int k) {
  std::vector<int> idx(logits.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  const int kk = std::min<int>(k, static_cast<int>(idx.size()));
  std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                    [&](int a, int b) {
                      return logits[static_cast<std::size_t>(a)] >
                             logits[static_cast<std::size_t>(b)];
                    });
  idx.resize(static_cast<std::size_t>(kk));
  return idx;
}

}  // namespace

std::vector<float> softmax(std::span<const float> logits, float temperature) {
  check(!logits.empty(), "softmax: empty logits");
  const float t = temperature > 0.0f ? temperature : 1.0f;
  std::vector<float> out(logits.size());
  float maxv = logits[0];
  for (const float v : logits) maxv = std::max(maxv, v);
  double denom = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp((logits[i] - maxv) / t);
    denom += out[i];
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (float& v : out) v *= inv;
  return out;
}

int pick_token(std::span<const float> logits, float temperature, Rng& rng) {
  check(!logits.empty(), "pick_token: empty logits");
  if (temperature <= 0.0f) {
    int best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i) {
      if (logits[i] > logits[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
    }
    return best;
  }
  const std::vector<float> probs = softmax(logits, temperature);
  double r = rng.next_double();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    r -= probs[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(probs.size()) - 1;
}

namespace {

/// Feeds the prompt (encoder side for enc-dec models) and returns the
/// number of decoder positions consumed; `h_last` gets the hidden rows of
/// the fed tokens.
int prime_session(const nn::TransformerModel& model, nn::InferSession& sess,
                  std::span<const int> prompt_ids, nn::Tensor& h_last) {
  if (model.config().encoder_decoder) {
    sess.set_encoder(prompt_ids);
    const int bos = text::Tokenizer::kBos;
    h_last = sess.feed(std::span<const int>(&bos, 1));
    return 1;
  }
  h_last = sess.feed(prompt_ids);
  return static_cast<int>(prompt_ids.size());
}

}  // namespace

DecodeResult Decoder::ntp(std::span<const int> prompt_ids, const DecodeConfig& cfg,
                          Rng& rng) const {
  DecodeResult out;
  if (prompt_ids.empty()) return out;  // nothing to condition on
  const auto start = Clock::now();
  nn::InferSession sess(model_);
  nn::Tensor h;
  out.prefill_positions = prime_session(model_, sess, prompt_ids, h);
  out.positions += out.prefill_positions;

  const int budget = std::min(cfg.max_new_tokens,
                              model_.config().max_seq - sess.len() - 1);
  for (int i = 0; i < budget; ++i) {
    const nn::Tensor logits = sess.lm_logits(h);
    const std::vector<float> last = row_of(logits, logits.rows() - 1);
    const int next = pick_token(last, cfg.temperature, rng);
    ++out.steps;
    out.accepted_per_step.push_back(1);
    if (next == cfg.eos_id) {
      out.hit_eos = true;
      break;
    }
    out.ids.push_back(next);
    h = sess.feed(std::span<const int>(&next, 1));
    ++out.positions;
  }
  out.wall_seconds = seconds_since(start);
  return out;
}

DecodeSession::DecodeSession(const nn::TransformerModel& model,
                             nn::InferSession& sess, std::vector<int> prompt_ids,
                             const DecodeConfig& cfg, Rng rng, int primed_prefix)
    : model_(model),
      sess_(sess),
      prompt_ids_(std::move(prompt_ids)),
      cfg_(cfg),
      rng_(rng) {
  check(cfg_.num_candidates >= 1, "DecodeConfig: num_candidates must be >= 1");
  check(cfg_.max_new_tokens >= 0, "DecodeConfig: max_new_tokens must be >= 0");
  // softmax divides by the temperature, so a negative or non-finite value
  // outside the exact greedy branch would silently decode garbage — reject
  // it here with the field named rather than downstream.
  check(std::isfinite(cfg_.temperature) && cfg_.temperature >= 0.0f,
        "DecodeConfig: temperature must be finite and >= 0 (0 = greedy)");
  n_heads_ = std::min(cfg_.num_heads, model_.config().n_medusa_heads);
  check(n_heads_ >= 1, "speculative decoding needs at least one draft head");
  if (primed_prefix > 0) {
    check(!model_.config().encoder_decoder,
          "primed prefix requires a decoder-only model");
    check(primed_prefix < static_cast<int>(prompt_ids_.size()),
          "primed prefix must leave a non-empty prompt suffix");
    check(sess_.len() == primed_prefix,
          "InferSession length does not match the primed prefix");
    prefix_len_ = primed_prefix;
  } else {
    check(primed_prefix == 0, "primed prefix must be >= 0");
    sess_.reset();
  }
  if (prompt_ids_.empty()) done_ = true;  // empty prompt => clean empty result
}

void DecodeSession::prime() {
  const std::span<const int> suffix(prompt_ids_.data() + prefix_len_,
                                    prompt_ids_.size() -
                                        static_cast<std::size_t>(prefix_len_));
  out_.prefill_positions = prime_session(model_, sess_, suffix, h_);
  out_.positions += out_.prefill_positions;
  // Only the final prompt row seeds the first draft (base and head logits
  // were always read at rows()-1); dropping the rest keeps the draft
  // scoring request at one row per session instead of the whole prompt.
  if (h_.rows() > 1) {
    nn::Tensor last(1, h_.cols());
    std::copy(h_.row(h_.rows() - 1), h_.row(h_.rows() - 1) + h_.cols(), last.row(0));
    h_ = std::move(last);
  }
  primed_ = true;
}

bool DecodeSession::step() {
  for (;;) {
    const StepState st = advance();
    if (st == StepState::NeedScores) {
      score_local();
      continue;
    }
    return st == StepState::StepDone;
  }
}

StepState DecodeSession::advance() {
  const auto start = Clock::now();
  StepState st = StepState::Finished;
  switch (phase_) {
    case Phase::Idle:
      st = begin_step();
      break;
    case Phase::AwaitDraft:
      check(scores_ready_, "advance: draft scores not supplied");
      st = consume_draft();
      break;
    case Phase::AwaitChain:
      check(scores_ready_, "advance: chain scores not supplied");
      consume_chain();
      st = run_candidates();
      break;
  }
  out_.wall_seconds += seconds_since(start);
  return st;
}

const ScoreRequest& DecodeSession::request() const {
  check(phase_ != Phase::Idle, "request: no pending score request");
  return req_;
}

void DecodeSession::supply(Scores scores) {
  check(phase_ != Phase::Idle, "supply: no pending score request");
  check(!scores_ready_, "supply: scores already supplied");
  check(scores.lm.rows() == req_.hidden.rows() &&
            scores.lm.cols() == model_.config().vocab,
        "supply: lm logits shape mismatch");
  check(static_cast<int>(scores.heads.size()) == req_.n_heads,
        "supply: draft head count mismatch");
  for (const nn::Tensor& ht : scores.heads) {
    check(ht.rows() == req_.hidden.rows() && ht.cols() == model_.config().vocab,
          "supply: head logits shape mismatch");
  }
  scores_ = std::move(scores);
  scores_ready_ = true;
}

void DecodeSession::score_local() {
  const auto start = Clock::now();
  Scores s;
  s.lm = model_.infer_lm_logits(req_.hidden);
  s.heads.reserve(static_cast<std::size_t>(req_.n_heads));
  for (int k = 0; k < req_.n_heads; ++k) {
    s.heads.push_back(model_.infer_head_logits(req_.hidden, k));
  }
  out_.wall_seconds += seconds_since(start);
  supply(std::move(s));
}

StepState DecodeSession::begin_step() {
  if (done_) return StepState::Finished;
  if (!primed_) prime();
  if (generated_ >= cfg_.max_new_tokens ||
      sess_.len() + n_heads_ + 2 >= model_.config().max_seq) {
    done_ = true;
    return StepState::Finished;
  }
  // --- draft: pause for base + head logits of the current row -----------
  req_.hidden = h_;
  req_.n_heads = n_heads_;
  scores_ready_ = false;
  phase_ = Phase::AwaitDraft;
  return StepState::NeedScores;
}

StepState DecodeSession::consume_draft() {
  scores_ready_ = false;
  base_logits_ = row_of(scores_.lm, 0);

  first_tokens_.clear();
  if (cfg_.temperature > 0.0f) {
    first_tokens_.push_back(pick_token(base_logits_, cfg_.temperature, rng_));
    for (const int t : top_k_indices(base_logits_, cfg_.num_candidates)) {
      if (static_cast<int>(first_tokens_.size()) >= cfg_.num_candidates) break;
      if (t != first_tokens_[0]) first_tokens_.push_back(t);
    }
  } else {
    first_tokens_ = top_k_indices(base_logits_, cfg_.num_candidates);
  }

  head_tokens_.assign(static_cast<std::size_t>(n_heads_), 0);
  for (int k = 0; k < n_heads_; ++k) {
    const std::vector<float> row = row_of(scores_.heads[static_cast<std::size_t>(k)], 0);
    head_tokens_[static_cast<std::size_t>(k)] =
        pick_token(row, /*temperature=*/0.0f, rng_);
  }
  scores_ = Scores();  // vocab-wide logits are dead scratch past this point

  // --- verify each candidate chain, keep the longest accepted prefix ----
  base_len_ = sess_.len();
  prob_temp_ = cfg_.temperature > 0.0f ? cfg_.temperature : 1.0f;
  best_accepted_ = 0;
  best_chain_.clear();
  best_hidden_ = nn::Tensor();
  best_c_ = 0;
  last_fed_ = static_cast<std::size_t>(-1);
  // Base-distribution probabilities for first-token acceptance, shared by
  // every alternative candidate this step (computed at most once).
  base_probs_.clear();
  cand_ = 0;
  return run_candidates();
}

StepState DecodeSession::run_candidates() {
  while (cand_ < first_tokens_.size()) {
    const std::size_t c = cand_;
    chain_.clear();
    chain_.push_back(first_tokens_[c]);
    chain_.insert(chain_.end(), head_tokens_.begin(), head_tokens_.end());

    // The primary candidate's first token came from the base model
    // itself (argmax / sample) and is always accepted; alternative
    // candidates must pass the acceptance rule for their first token.
    if (c > 0) {
      if (cfg_.temperature <= 0.0f) {
        ++cand_;
        continue;  // greedy: only the argmax first token is lossless
      }
      if (base_probs_.empty()) base_probs_ = softmax(base_logits_, prob_temp_);
      if (!cfg_.acceptance.accepts(base_probs_, chain_[0])) {
        ++cand_;
        continue;
      }
    }
    if (sess_.len() > base_len_) sess_.truncate(base_len_);
    hs_ = sess_.feed(chain_);
    last_fed_ = c;
    out_.positions += static_cast<long>(chain_.size());
    if (chain_[0] != cfg_.eos_id) {
      // Pause for verification logits: the fed rows that have a drafted
      // successor (the final row only predicts past the chain).
      const int need = static_cast<int>(chain_.size()) - 1;
      nn::Tensor rows(need, hs_.cols());
      std::copy(hs_.data(),
                hs_.data() + static_cast<std::size_t>(need) *
                                 static_cast<std::size_t>(hs_.cols()),
                rows.data());
      req_.hidden = std::move(rows);
      req_.n_heads = 0;
      scores_ready_ = false;
      phase_ = Phase::AwaitChain;
      return StepState::NeedScores;
    }
    // First token is EOS: nothing to verify, the chain commits one token.
    track_candidate(1);
    ++cand_;
  }
  return commit();
}

void DecodeSession::consume_chain() {
  scores_ready_ = false;
  int accepted = 1;  // the base-model token is always accepted
  for (int j = 1; j < static_cast<int>(chain_.size()); ++j) {
    const std::vector<float> logits_row = row_of(scores_.lm, j - 1);
    const int tok = chain_[static_cast<std::size_t>(j)];
    bool ok = false;
    if (cfg_.temperature <= 0.0f) {
      // Greedy decoding: lossless — accept only the base argmax
      // (MEDUSA's greedy verification).
      int best = 0;
      for (std::size_t v = 1; v < logits_row.size(); ++v) {
        if (logits_row[v] > logits_row[static_cast<std::size_t>(best)]) {
          best = static_cast<int>(v);
        }
      }
      ok = tok == best;
    } else {
      // Sampling: typical acceptance (Eq. 1).
      const std::vector<float> probs = softmax(logits_row, prob_temp_);
      ok = cfg_.acceptance.accepts(probs, tok);
    }
    if (!ok) break;
    ++accepted;
    if (tok == cfg_.eos_id) break;
  }
  scores_ = Scores();  // vocab-wide logits are dead scratch past this point
  track_candidate(accepted);
  ++cand_;
}

void DecodeSession::track_candidate(int accepted) {
  // Fragment-integrity check (the paper's addition): the committed
  // burst must end on a complete syntactic fragment, i.e. at the last
  // [FRAG] boundary inside the accepted span.  EOS also closes a
  // fragment.
  if (cfg_.fragment_integrity && accepted > 1) {
    int last_ok = 0;  // index of last fragment-closing token
    bool found = false;
    for (int j = accepted - 1; j >= 0; --j) {
      const int tok = chain_[static_cast<std::size_t>(j)];
      if (tok == cfg_.frag_id || tok == cfg_.eos_id) {
        last_ok = j;
        found = true;
        break;
      }
    }
    accepted = found ? last_ok + 1 : 1;
  }
  if (accepted > best_accepted_) {
    best_accepted_ = accepted;
    best_chain_ = chain_;
    best_hidden_ = hs_;
    best_c_ = cand_;
  }
}

StepState DecodeSession::commit() {
  check(best_accepted_ >= 1, "speculative step accepted nothing");
  std::vector<int> committed(best_chain_.begin(),
                             best_chain_.begin() + best_accepted_);
  if (best_c_ == last_fed_) {
    // The winner was the last candidate fed: its KV rows are still in
    // the cache; just roll back the rejected tail.
    sess_.truncate(base_len_ + best_accepted_);
    // h := hidden row of the last committed token.
    nn::Tensor h_new(1, best_hidden_.cols());
    std::copy(best_hidden_.row(best_accepted_ - 1),
              best_hidden_.row(best_accepted_ - 1) + best_hidden_.cols(),
              h_new.row(0));
    h_ = std::move(h_new);
  } else {
    sess_.truncate(base_len_);
    const nn::Tensor hc = sess_.feed(committed);
    out_.positions += static_cast<long>(committed.size());
    nn::Tensor h_new(1, hc.cols());
    std::copy(hc.row(hc.rows() - 1), hc.row(hc.rows() - 1) + hc.cols(),
              h_new.row(0));
    h_ = std::move(h_new);
  }

  ++out_.steps;
  int emitted = 0;
  for (const int tok : committed) {
    if (tok == cfg_.eos_id) {
      out_.hit_eos = true;
      done_ = true;
      break;
    }
    out_.ids.push_back(tok);
    ++emitted;
    ++generated_;
  }
  out_.accepted_per_step.push_back(emitted > 0 ? emitted : 1);
  phase_ = Phase::Idle;
  return done_ ? StepState::Finished : StepState::StepDone;
}

DecodeResult Decoder::speculative(std::span<const int> prompt_ids,
                                  const DecodeConfig& cfg, Rng& rng) const {
  nn::InferSession sess(model_);
  DecodeSession session(model_, sess,
                        std::vector<int>(prompt_ids.begin(), prompt_ids.end()),
                        cfg, rng);
  while (session.step()) {
  }
  rng = session.rng();  // hand the consumed randomness back to the caller
  return session.take_result();
}

std::vector<DecodeResult> Decoder::speculative_batch(
    std::span<const BatchRequest> requests, int batch_slots,
    BatchStats* stats) const {
  const int n = static_cast<int>(requests.size());
  std::vector<DecodeResult> results(static_cast<std::size_t>(n));
  if (n == 0) return results;
  const int slots = batch_slots > 0 ? std::min(batch_slots, n) : n;

  // One InferSession per slot, reset between the requests it hosts so the
  // KV-cache allocations are reused for the whole batch.
  std::vector<std::unique_ptr<nn::InferSession>> sessions(
      static_cast<std::size_t>(slots));
  std::vector<std::unique_ptr<DecodeSession>> live(static_cast<std::size_t>(slots));
  std::vector<int> req_of_slot(static_cast<std::size_t>(slots), -1);

  int next = 0;
  int completed = 0;
  while (completed < n) {
    int in_flight = 0;
    for (int s = 0; s < slots; ++s) {
      auto& slot = live[static_cast<std::size_t>(s)];
      if (!slot && next < n) {
        const BatchRequest& req = requests[static_cast<std::size_t>(next)];
        auto& sess = sessions[static_cast<std::size_t>(s)];
        if (!sess) sess = std::make_unique<nn::InferSession>(model_);
        slot = std::make_unique<DecodeSession>(model_, *sess, req.prompt_ids,
                                               req.config, Rng(req.seed));
        req_of_slot[static_cast<std::size_t>(s)] = next++;
      }
      if (!slot) continue;
      ++in_flight;
      if (!slot->step()) {
        results[static_cast<std::size_t>(req_of_slot[static_cast<std::size_t>(s)])] =
            slot->take_result();
        slot.reset();
        ++completed;
      }
    }
    if (stats != nullptr) {
      ++stats->ticks;
      stats->max_in_flight = std::max(stats->max_in_flight, in_flight);
    }
  }
  return results;
}

double Decoder::measure_step_seconds(int context_len, int reps) const {
  nn::InferSession sess(model_);
  Rng rng(42);
  const int vocab = model_.config().vocab;
  std::vector<int> ctx;
  ctx.reserve(static_cast<std::size_t>(context_len));
  for (int i = 0; i < context_len; ++i) {
    ctx.push_back(static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(vocab - text::Tokenizer::kNumSpecials))) +
                  text::Tokenizer::kNumSpecials);
  }
  if (model_.config().encoder_decoder) {
    sess.set_encoder(ctx);
    const int bos = text::Tokenizer::kBos;
    sess.feed(std::span<const int>(&bos, 1));
  } else {
    sess.feed(ctx);
  }
  const auto start = std::chrono::steady_clock::now();
  nn::Tensor h;
  for (int r = 0; r < reps; ++r) {
    const int tok = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(vocab - 5))) + 5;
    h = sess.feed(std::span<const int>(&tok, 1));
    (void)sess.lm_logits(h);
  }
  return seconds_since(start) / reps;
}

}  // namespace vsd::spec
