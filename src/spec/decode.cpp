#include "spec/decode.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

namespace vsd::spec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<float> row_of(const nn::Tensor& t, int row) {
  return std::vector<float>(t.row(row), t.row(row) + t.cols());
}

/// Indices of the k largest logits.
std::vector<int> top_k_indices(std::span<const float> logits, int k) {
  std::vector<int> idx(logits.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  const int kk = std::min<int>(k, static_cast<int>(idx.size()));
  std::partial_sort(idx.begin(), idx.begin() + kk, idx.end(),
                    [&](int a, int b) {
                      return logits[static_cast<std::size_t>(a)] >
                             logits[static_cast<std::size_t>(b)];
                    });
  idx.resize(static_cast<std::size_t>(kk));
  return idx;
}

}  // namespace

std::vector<float> softmax(std::span<const float> logits, float temperature) {
  check(!logits.empty(), "softmax: empty logits");
  const float t = temperature > 0.0f ? temperature : 1.0f;
  std::vector<float> out(logits.size());
  float maxv = logits[0];
  for (const float v : logits) maxv = std::max(maxv, v);
  double denom = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp((logits[i] - maxv) / t);
    denom += out[i];
  }
  const float inv = static_cast<float>(1.0 / denom);
  for (float& v : out) v *= inv;
  return out;
}

int pick_token(std::span<const float> logits, float temperature, Rng& rng) {
  check(!logits.empty(), "pick_token: empty logits");
  if (temperature <= 0.0f) {
    int best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i) {
      if (logits[i] > logits[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
    }
    return best;
  }
  const std::vector<float> probs = softmax(logits, temperature);
  double r = rng.next_double();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    r -= probs[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(probs.size()) - 1;
}

namespace {

/// Feeds the prompt (encoder side for enc-dec models) and returns the
/// number of decoder positions consumed; `h_last` gets the hidden rows of
/// the fed tokens.
int prime_session(const nn::TransformerModel& model, nn::InferSession& sess,
                  std::span<const int> prompt_ids, nn::Tensor& h_last) {
  if (model.config().encoder_decoder) {
    sess.set_encoder(prompt_ids);
    const int bos = text::Tokenizer::kBos;
    h_last = sess.feed(std::span<const int>(&bos, 1));
    return 1;
  }
  h_last = sess.feed(prompt_ids);
  return static_cast<int>(prompt_ids.size());
}

}  // namespace

DecodeResult Decoder::ntp(std::span<const int> prompt_ids, const DecodeConfig& cfg,
                          Rng& rng) const {
  DecodeResult out;
  if (prompt_ids.empty()) return out;  // nothing to condition on
  const auto start = Clock::now();
  nn::InferSession sess(model_);
  nn::Tensor h;
  out.prefill_positions = prime_session(model_, sess, prompt_ids, h);
  out.positions += out.prefill_positions;

  const int budget = std::min(cfg.max_new_tokens,
                              model_.config().max_seq - sess.len() - 1);
  for (int i = 0; i < budget; ++i) {
    const nn::Tensor logits = sess.lm_logits(h);
    const std::vector<float> last = row_of(logits, logits.rows() - 1);
    const int next = pick_token(last, cfg.temperature, rng);
    ++out.steps;
    out.accepted_per_step.push_back(1);
    if (next == cfg.eos_id) {
      out.hit_eos = true;
      break;
    }
    out.ids.push_back(next);
    h = sess.feed(std::span<const int>(&next, 1));
    ++out.positions;
  }
  out.wall_seconds = seconds_since(start);
  return out;
}

DecodeSession::DecodeSession(const nn::TransformerModel& model,
                             nn::InferSession& sess, std::vector<int> prompt_ids,
                             const DecodeConfig& cfg, Rng rng, int primed_prefix)
    : model_(model),
      sess_(sess),
      prompt_ids_(std::move(prompt_ids)),
      cfg_(cfg),
      rng_(rng) {
  check(cfg_.num_candidates >= 1, "DecodeConfig: num_candidates must be >= 1");
  check(cfg_.max_new_tokens >= 0, "DecodeConfig: max_new_tokens must be >= 0");
  n_heads_ = std::min(cfg_.num_heads, model_.config().n_medusa_heads);
  check(n_heads_ >= 1, "speculative decoding needs at least one draft head");
  if (primed_prefix > 0) {
    check(!model_.config().encoder_decoder,
          "primed prefix requires a decoder-only model");
    check(primed_prefix < static_cast<int>(prompt_ids_.size()),
          "primed prefix must leave a non-empty prompt suffix");
    check(sess_.len() == primed_prefix,
          "InferSession length does not match the primed prefix");
    prefix_len_ = primed_prefix;
  } else {
    check(primed_prefix == 0, "primed prefix must be >= 0");
    sess_.reset();
  }
  if (prompt_ids_.empty()) done_ = true;  // empty prompt => clean empty result
}

void DecodeSession::prime() {
  const std::span<const int> suffix(prompt_ids_.data() + prefix_len_,
                                    prompt_ids_.size() -
                                        static_cast<std::size_t>(prefix_len_));
  out_.prefill_positions = prime_session(model_, sess_, suffix, h_);
  out_.positions += out_.prefill_positions;
  primed_ = true;
}

bool DecodeSession::step() {
  if (done_) return false;
  const auto start = Clock::now();
  if (!primed_) prime();
  if (generated_ >= cfg_.max_new_tokens ||
      sess_.len() + n_heads_ + 2 >= model_.config().max_seq) {
    done_ = true;
    out_.wall_seconds += seconds_since(start);
    return false;
  }

  // --- draft: base top-k candidates + one chain from the heads ----------
  const nn::Tensor base_logits_t = sess_.lm_logits(h_);
  const std::vector<float> base_logits = row_of(base_logits_t, base_logits_t.rows() - 1);

  std::vector<int> first_tokens;
  if (cfg_.temperature > 0.0f) {
    first_tokens.push_back(pick_token(base_logits, cfg_.temperature, rng_));
    for (const int t : top_k_indices(base_logits, cfg_.num_candidates)) {
      if (static_cast<int>(first_tokens.size()) >= cfg_.num_candidates) break;
      if (t != first_tokens[0]) first_tokens.push_back(t);
    }
  } else {
    first_tokens = top_k_indices(base_logits, cfg_.num_candidates);
  }

  std::vector<int> head_tokens(static_cast<std::size_t>(n_heads_));
  for (int k = 0; k < n_heads_; ++k) {
    const nn::Tensor hl = sess_.head_logits(h_, k);
    const std::vector<float> row = row_of(hl, hl.rows() - 1);
    head_tokens[static_cast<std::size_t>(k)] =
        pick_token(row, /*temperature=*/0.0f, rng_);
  }

  // --- verify each candidate chain, keep the longest accepted prefix ----
  const int base_len = sess_.len();
  const float prob_temp = cfg_.temperature > 0.0f ? cfg_.temperature : 1.0f;
  int best_accepted = 0;
  std::vector<int> best_chain;
  nn::Tensor best_hidden;
  std::size_t best_c = 0;
  std::size_t last_fed = static_cast<std::size_t>(-1);
  // Base-distribution probabilities for first-token acceptance, shared by
  // every alternative candidate this step (computed at most once).
  std::vector<float> base_probs;

  for (std::size_t c = 0; c < first_tokens.size(); ++c) {
    std::vector<int> chain;
    chain.push_back(first_tokens[c]);
    chain.insert(chain.end(), head_tokens.begin(), head_tokens.end());

    // The primary candidate's first token came from the base model
    // itself (argmax / sample) and is always accepted; alternative
    // candidates must pass the acceptance rule for their first token.
    if (c > 0) {
      if (cfg_.temperature <= 0.0f) {
        continue;  // greedy: only the argmax first token is lossless
      }
      if (base_probs.empty()) base_probs = softmax(base_logits, prob_temp);
      if (!cfg_.acceptance.accepts(base_probs, chain[0])) continue;
    }
    if (sess_.len() > base_len) sess_.truncate(base_len);
    const nn::Tensor hs = sess_.feed(chain);
    last_fed = c;
    out_.positions += static_cast<long>(chain.size());
    int accepted = 1;  // the base-model token is always accepted
    if (chain[0] != cfg_.eos_id) {
      const nn::Tensor lj = sess_.lm_logits(hs);  // logits for every row
      for (int j = 1; j < static_cast<int>(chain.size()); ++j) {
        const std::vector<float> logits_row = row_of(lj, j - 1);
        const int tok = chain[static_cast<std::size_t>(j)];
        bool ok = false;
        if (cfg_.temperature <= 0.0f) {
          // Greedy decoding: lossless — accept only the base argmax
          // (MEDUSA's greedy verification).
          int best = 0;
          for (std::size_t v = 1; v < logits_row.size(); ++v) {
            if (logits_row[v] > logits_row[static_cast<std::size_t>(best)]) {
              best = static_cast<int>(v);
            }
          }
          ok = tok == best;
        } else {
          // Sampling: typical acceptance (Eq. 1).
          const std::vector<float> probs = softmax(logits_row, prob_temp);
          ok = cfg_.acceptance.accepts(probs, tok);
        }
        if (!ok) break;
        ++accepted;
        if (tok == cfg_.eos_id) break;
      }
    }
    // Fragment-integrity check (the paper's addition): the committed
    // burst must end on a complete syntactic fragment, i.e. at the last
    // [FRAG] boundary inside the accepted span.  EOS also closes a
    // fragment.
    if (cfg_.fragment_integrity && accepted > 1) {
      int last_ok = 0;  // index of last fragment-closing token, -1 none
      bool found = false;
      for (int j = accepted - 1; j >= 0; --j) {
        const int tok = chain[static_cast<std::size_t>(j)];
        if (tok == cfg_.frag_id || tok == cfg_.eos_id) {
          last_ok = j;
          found = true;
          break;
        }
      }
      accepted = found ? last_ok + 1 : 1;
    }
    if (accepted > best_accepted) {
      best_accepted = accepted;
      best_chain = chain;
      best_hidden = hs;
      best_c = c;
    }
  }
  check(best_accepted >= 1, "speculative step accepted nothing");

  // --- commit ------------------------------------------------------------
  std::vector<int> committed(best_chain.begin(),
                             best_chain.begin() + best_accepted);
  if (best_c == last_fed) {
    // The winner was the last candidate fed: its KV rows are still in
    // the cache; just roll back the rejected tail.
    sess_.truncate(base_len + best_accepted);
    // h := hidden row of the last committed token.
    nn::Tensor h_new(1, best_hidden.cols());
    std::copy(best_hidden.row(best_accepted - 1),
              best_hidden.row(best_accepted - 1) + best_hidden.cols(),
              h_new.row(0));
    h_ = std::move(h_new);
  } else {
    sess_.truncate(base_len);
    h_ = sess_.feed(committed);
    out_.positions += static_cast<long>(committed.size());
    nn::Tensor h_new(1, h_.cols());
    std::copy(h_.row(h_.rows() - 1), h_.row(h_.rows() - 1) + h_.cols(), h_new.row(0));
    h_ = std::move(h_new);
  }

  ++out_.steps;
  int emitted = 0;
  for (const int tok : committed) {
    if (tok == cfg_.eos_id) {
      out_.hit_eos = true;
      done_ = true;
      break;
    }
    out_.ids.push_back(tok);
    ++emitted;
    ++generated_;
  }
  out_.accepted_per_step.push_back(emitted > 0 ? emitted : 1);
  out_.wall_seconds += seconds_since(start);
  return !done_;
}

DecodeResult Decoder::speculative(std::span<const int> prompt_ids,
                                  const DecodeConfig& cfg, Rng& rng) const {
  nn::InferSession sess(model_);
  DecodeSession session(model_, sess,
                        std::vector<int>(prompt_ids.begin(), prompt_ids.end()),
                        cfg, rng);
  while (session.step()) {
  }
  rng = session.rng();  // hand the consumed randomness back to the caller
  return session.take_result();
}

std::vector<DecodeResult> Decoder::speculative_batch(
    std::span<const BatchRequest> requests, int batch_slots,
    BatchStats* stats) const {
  const int n = static_cast<int>(requests.size());
  std::vector<DecodeResult> results(static_cast<std::size_t>(n));
  if (n == 0) return results;
  const int slots = batch_slots > 0 ? std::min(batch_slots, n) : n;

  // One InferSession per slot, reset between the requests it hosts so the
  // KV-cache allocations are reused for the whole batch.
  std::vector<std::unique_ptr<nn::InferSession>> sessions(
      static_cast<std::size_t>(slots));
  std::vector<std::unique_ptr<DecodeSession>> live(static_cast<std::size_t>(slots));
  std::vector<int> req_of_slot(static_cast<std::size_t>(slots), -1);

  int next = 0;
  int completed = 0;
  while (completed < n) {
    int in_flight = 0;
    for (int s = 0; s < slots; ++s) {
      auto& slot = live[static_cast<std::size_t>(s)];
      if (!slot && next < n) {
        const BatchRequest& req = requests[static_cast<std::size_t>(next)];
        auto& sess = sessions[static_cast<std::size_t>(s)];
        if (!sess) sess = std::make_unique<nn::InferSession>(model_);
        slot = std::make_unique<DecodeSession>(model_, *sess, req.prompt_ids,
                                               req.config, Rng(req.seed));
        req_of_slot[static_cast<std::size_t>(s)] = next++;
      }
      if (!slot) continue;
      ++in_flight;
      if (!slot->step()) {
        results[static_cast<std::size_t>(req_of_slot[static_cast<std::size_t>(s)])] =
            slot->take_result();
        slot.reset();
        ++completed;
      }
    }
    if (stats != nullptr) {
      ++stats->ticks;
      stats->max_in_flight = std::max(stats->max_in_flight, in_flight);
    }
  }
  return results;
}

double Decoder::measure_step_seconds(int context_len, int reps) const {
  nn::InferSession sess(model_);
  Rng rng(42);
  const int vocab = model_.config().vocab;
  std::vector<int> ctx;
  ctx.reserve(static_cast<std::size_t>(context_len));
  for (int i = 0; i < context_len; ++i) {
    ctx.push_back(static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(vocab - text::Tokenizer::kNumSpecials))) +
                  text::Tokenizer::kNumSpecials);
  }
  if (model_.config().encoder_decoder) {
    sess.set_encoder(ctx);
    const int bos = text::Tokenizer::kBos;
    sess.feed(std::span<const int>(&bos, 1));
  } else {
    sess.feed(ctx);
  }
  const auto start = std::chrono::steady_clock::now();
  nn::Tensor h;
  for (int r = 0; r < reps; ++r) {
    const int tok = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(vocab - 5))) + 5;
    h = sess.feed(std::span<const int>(&tok, 1));
    (void)sess.lm_logits(h);
  }
  return seconds_since(start) / reps;
}

}  // namespace vsd::spec
