#include "spec/labels.hpp"

#include "common/error.hpp"

namespace vsd::spec {

LabelSet build_shifted_labels(std::span<const int> ids, int num_heads, int pad_id) {
  check(num_heads >= 0, "num_heads must be >= 0");
  LabelSet out;
  out.base.assign(ids.begin(), ids.end());
  const int t = static_cast<int>(ids.size());
  out.heads.resize(static_cast<std::size_t>(num_heads));
  for (int k = 0; k < num_heads; ++k) {
    auto& row = out.heads[static_cast<std::size_t>(k)];
    row.assign(static_cast<std::size_t>(t), pad_id);
    const int shift = k + 1;
    for (int s = 0; s + shift < t; ++s) {
      row[static_cast<std::size_t>(s)] = ids[static_cast<std::size_t>(s + shift)];
    }
  }
  return out;
}

void apply_ignore_mask_naive(LabelSet& labels, int frag_id, int pad_id,
                             int ignore_id) {
  const int n = static_cast<int>(labels.heads.size());
  const int t = static_cast<int>(labels.base.size());
  for (int s = 0; s < t; ++s) {
    // Last head row whose label at column s is [FRAG].
    int last_frag = 0;  // 0 = none (base row is never masked)
    for (int i = n; i >= 1; --i) {
      if (labels.heads[static_cast<std::size_t>(i - 1)][static_cast<std::size_t>(s)] ==
          frag_id) {
        last_frag = i;
        break;
      }
    }
    if (last_frag == 0) continue;  // no [FRAG] among heads: leave untouched
    for (int i = last_frag + 1; i <= n; ++i) {
      labels.heads[static_cast<std::size_t>(i - 1)][static_cast<std::size_t>(s)] =
          ignore_id;
    }
  }
  // [PAD] labels never contribute to the loss.
  for (auto& row : labels.heads) {
    for (int& v : row) {
      if (v == pad_id) v = ignore_id;
    }
  }
}

void apply_ignore_mask_parallel(LabelSet& labels, int frag_id, int pad_id,
                                int ignore_id) {
  const int n = static_cast<int>(labels.heads.size());
  const int t = static_cast<int>(labels.base.size());
  if (n == 0 || t == 0) return;

  // Step 1: has_frag_mask[s] = any head row holds [FRAG] at column s.
  std::vector<char> has_frag(static_cast<std::size_t>(t), 0);
  for (int i = 0; i < n; ++i) {
    const auto& row = labels.heads[static_cast<std::size_t>(i)];
    for (int s = 0; s < t; ++s) {
      if (row[static_cast<std::size_t>(s)] == frag_id) has_frag[static_cast<std::size_t>(s)] = 1;
    }
  }

  // Step 2: iterate over heads in reverse; a column stays in the mask while
  // no [FRAG] has been seen at this row or below.
  for (int i = n; i >= 1; --i) {
    auto& row = labels.heads[static_cast<std::size_t>(i - 1)];
    bool any = false;
    for (int s = 0; s < t; ++s) {
      if (!has_frag[static_cast<std::size_t>(s)]) continue;
      if (row[static_cast<std::size_t>(s)] == frag_id) {
        has_frag[static_cast<std::size_t>(s)] = 0;  // FRAG reached: stop masking above
        continue;
      }
      row[static_cast<std::size_t>(s)] = ignore_id;
      any = true;
    }
    // Early termination when the mask is empty.
    if (!any) {
      bool mask_empty = true;
      for (int s = 0; s < t; ++s) mask_empty = mask_empty && !has_frag[static_cast<std::size_t>(s)];
      if (mask_empty) break;
    }
  }

  for (auto& r : labels.heads) {
    for (int& v : r) {
      if (v == pad_id) v = ignore_id;
    }
  }
}

LabelSet build_syntax_enriched_labels(std::span<const int> ids, int num_heads,
                                      int frag_id, int pad_id, int ignore_id) {
  LabelSet labels = build_shifted_labels(ids, num_heads, pad_id);
  apply_ignore_mask_parallel(labels, frag_id, pad_id, ignore_id);
  return labels;
}

std::vector<double> ignore_fraction_per_head(const LabelSet& labels, int ignore_id) {
  std::vector<double> out;
  out.reserve(labels.heads.size());
  for (const auto& row : labels.heads) {
    if (row.empty()) {
      out.push_back(0.0);
      continue;
    }
    int count = 0;
    for (const int v : row) count += v == ignore_id ? 1 : 0;
    out.push_back(static_cast<double>(count) / static_cast<double>(row.size()));
  }
  return out;
}

}  // namespace vsd::spec
