#include "spec/trainer.hpp"

#include <chrono>

namespace vsd::spec {

const char* method_name(Method m) {
  switch (m) {
    case Method::NTP: return "NTP";
    case Method::Medusa: return "Medusa";
    case Method::Ours: return "Ours";
  }
  return "?";
}

namespace {

nn::AdamW make_optimizer(nn::TransformerModel& model, const TrainConfig& cfg) {
  std::vector<float> mults;
  mults.reserve(model.params().size());
  for (const auto& p : model.params()) mults.push_back(model.lr_mult(p));
  nn::AdamW::Options opts;
  opts.lr = cfg.lr;
  return nn::AdamW(model.params(), mults, opts);
}

}  // namespace

Trainer::Trainer(nn::TransformerModel& model, TrainConfig cfg)
    : model_(model), cfg_(cfg), optim_(make_optimizer(model, cfg)) {
  if (cfg_.method != Method::NTP) {
    check(model.config().n_medusa_heads > 0,
          "Medusa/Ours training requires a model with medusa heads");
  }
}

double Trainer::train_one(const EncodedExample& ex, int step, int total_steps) {
  const int ignore = text::Tokenizer::kIgnore;
  const int pad = text::Tokenizer::kPad;
  const int frag = text::Tokenizer::kFrag;
  const bool enc_dec = model_.config().encoder_decoder;
  const int n_heads = cfg_.method == Method::NTP ? 0 : model_.config().n_medusa_heads;

  // Build the decoder token sequence and the index of the first code token.
  std::vector<int> seq;
  int code_start = 0;
  if (enc_dec) {
    seq.push_back(text::Tokenizer::kBos);
    seq.insert(seq.end(), ex.code_ids.begin(), ex.code_ids.end());
    code_start = 1;
  } else {
    seq.push_back(text::Tokenizer::kBos);
    seq.insert(seq.end(), ex.prompt_ids.begin(), ex.prompt_ids.end());
    code_start = static_cast<int>(seq.size());
    seq.insert(seq.end(), ex.code_ids.begin(), ex.code_ids.end());
  }

  // Fig. 4 label matrix over the full sequence.
  LabelSet labels = build_shifted_labels(seq, n_heads, pad);
  if (cfg_.method == Method::Ours) {
    apply_ignore_mask_parallel(labels, frag, pad, ignore);
  } else {
    // Baselines: no syntax masking; only padding is excluded from loss.
    for (auto& row : labels.heads) {
      for (int& v : row) {
        if (v == pad) v = ignore;
      }
    }
  }

  // Inputs are seq[:-1]; the target consumed at position t lives in label
  // column t+1 (base) — heads are already shifted inside the LabelSet.
  const int t_len = static_cast<int>(seq.size()) - 1;
  const std::vector<int> inputs(seq.begin(), seq.end() - 1);

  std::vector<int> base_targets(static_cast<std::size_t>(t_len), ignore);
  for (int t = 0; t < t_len; ++t) {
    const int target_pos = t + 1;
    if (target_pos < code_start) continue;  // never train on the prompt
    base_targets[static_cast<std::size_t>(t)] = labels.base[static_cast<std::size_t>(target_pos)];
  }
  std::vector<std::vector<int>> head_targets(static_cast<std::size_t>(n_heads));
  for (int k = 0; k < n_heads; ++k) {
    auto& row = head_targets[static_cast<std::size_t>(k)];
    row.assign(static_cast<std::size_t>(t_len), ignore);
    for (int t = 0; t < t_len; ++t) {
      // Head k's label column t+1 already refers to seq position t+k+2.
      const int absolute_target = t + k + 2;
      if (absolute_target < code_start) continue;
      if (t + 1 >= static_cast<int>(seq.size())) continue;
      row[static_cast<std::size_t>(t)] =
          labels.heads[static_cast<std::size_t>(k)][static_cast<std::size_t>(t + 1)];
    }
  }

  optim_.zero_grad();
  nn::Var enc;
  if (enc_dec) {
    enc = model_.encode_hidden(ex.prompt_ids);
  }
  nn::Var hidden = model_.decode_hidden(inputs, enc);
  nn::Var base_loss = nn::cross_entropy(model_.lm_logits(hidden), base_targets, ignore);

  nn::Var total = base_loss;
  if (n_heads > 0) {
    const float lambda = nn::lambda_sine(step, total_steps, cfg_.lambda_max);
    std::vector<nn::Var> losses = {base_loss};
    std::vector<float> coeffs = {1.0f};
    float g = cfg_.gamma;
    for (int k = 0; k < n_heads; ++k) {
      int counted = 0;
      nn::Var head_loss = nn::cross_entropy(
          model_.head_logits(hidden, k), head_targets[static_cast<std::size_t>(k)],
          ignore, &counted);
      if (counted > 0) {
        losses.push_back(head_loss);
        coeffs.push_back(lambda * g);
      }
      g *= cfg_.gamma;
    }
    total = nn::weighted_sum(losses, coeffs);
  }
  const double loss_value = total->value.at(0, 0);
  nn::backward(total);
  optim_.step(nn::cosine_lr_scale(step, total_steps, cfg_.warmup_steps));
  return loss_value;
}

TrainStats Trainer::fit(const std::vector<EncodedExample>& data) {
  TrainStats stats;
  const auto start = std::chrono::steady_clock::now();
  Rng rng(cfg_.seed);

  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Pre-count usable examples for the schedule length.
  int usable = 0;
  for (const auto& ex : data) {
    const int total_len = static_cast<int>(ex.prompt_ids.size() + ex.code_ids.size()) + 1;
    const int dec_len = model_.config().encoder_decoder
                            ? static_cast<int>(ex.code_ids.size()) + 1
                            : total_len;
    const int enc_len = static_cast<int>(ex.prompt_ids.size());
    if (dec_len <= cfg_.max_seq && enc_len <= model_.config().max_seq) ++usable;
  }
  const int total_steps = std::max(1, usable * cfg_.epochs);

  int step = 0;
  double last_epoch_sum = 0.0;
  int last_epoch_count = 0;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    rng.shuffle(order);
    const bool last_epoch = epoch + 1 == cfg_.epochs;
    for (const std::size_t i : order) {
      const EncodedExample& ex = data[i];
      const int dec_len = model_.config().encoder_decoder
                              ? static_cast<int>(ex.code_ids.size()) + 1
                              : static_cast<int>(ex.prompt_ids.size() +
                                                 ex.code_ids.size()) + 1;
      if (dec_len > cfg_.max_seq ||
          static_cast<int>(ex.prompt_ids.size()) > model_.config().max_seq) {
        if (epoch == 0) ++stats.skipped;
        continue;
      }
      const double loss = train_one(ex, step, total_steps);
      if (step == 0) stats.first_loss = loss;
      if (last_epoch) {
        last_epoch_sum += loss;
        ++last_epoch_count;
      }
      ++step;
    }
  }
  stats.steps = step;
  stats.final_loss = last_epoch_count > 0 ? last_epoch_sum / last_epoch_count : 0.0;
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

}  // namespace vsd::spec
