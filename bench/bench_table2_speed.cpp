// Table II reproduction: generation speed (tokens/s) and speedup of
// Ours / Medusa / NTP for the decoder-only (CodeLlama-like) and
// encoder-decoder (CodeT5p-like) architectures.
//
// Paper reference values: CodeLlama — Ours 420.13 tok/s (5.05x),
// Medusa 294.99 (3.55x), NTP 83.13 (1x); CodeT5p — Ours 2.66x,
// Medusa 1.16x.  We reproduce the ORDERING and rough factors under the
// serving-latency model (see harness.hpp), reporting wall-clock too.
#include "bench_common.hpp"

using namespace vsd;
using namespace vsd::bench;

namespace {

void run_arch(const Workbench& wb, const Scale& scale, bool enc_dec) {
  const char* arch = enc_dec ? "CodeT5p-like (enc-dec)" : "CodeLlama-like (dec-only)";
  std::printf("\n== %s ==\n", arch);

  const auto prompts = eval::make_speed_prompts(scale.prompts, scale.seed + 17);
  eval::SpeedOptions sopts;
  sopts.n_prompts = scale.prompts;

  eval::SpeedRow rows[3];
  const spec::Method methods[3] = {spec::Method::Ours, spec::Method::Medusa,
                                   spec::Method::NTP};
  double t_step = 0.0;
  for (int m = 0; m < 3; ++m) {
    const eval::TrainedSystem sys = wb.train(methods[m], enc_dec, 1.0, scale);
    const spec::Decoder dec(*sys.model);
    if (t_step == 0.0) t_step = dec.measure_step_seconds(64);
    rows[m] = eval::evaluate_speed(sys, prompts, sopts, t_step);
  }

  std::printf("\n%-8s %18s %10s %14s %14s\n", "Method", "Speed (tok/s)", "Speedup",
              "tok/step", "wall tok/s");
  for (int m = 0; m < 3; ++m) {
    std::printf("%-8s %18.2f %9.2fx %14.2f %14.2f\n", spec::method_name(methods[m]),
                rows[m].tokens_per_sec_model, eval::speedup(rows[m], rows[2]),
                rows[m].mean_accepted, rows[m].tokens_per_sec_wall);
  }
  std::printf("# paper (%s): Ours %s, Medusa %s, NTP 1x\n",
              enc_dec ? "CodeT5p" : "CodeLlama",
              enc_dec ? "2.66x" : "5.05x", enc_dec ? "1.16x" : "3.55x");
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  scale.print("Table II — speed of generating Verilog code");
  const Workbench wb = Workbench::build(scale);
  run_arch(wb, scale, /*enc_dec=*/false);
  run_arch(wb, scale, /*enc_dec=*/true);
  return 0;
}
