// Table II reproduction: generation speed (tokens/s) and speedup of
// Ours / Medusa / NTP for the decoder-only (CodeLlama-like) and
// encoder-decoder (CodeT5p-like) architectures.
//
// Paper reference values: CodeLlama — Ours 420.13 tok/s (5.05x),
// Medusa 294.99 (3.55x), NTP 83.13 (1x); CodeT5p — Ours 2.66x,
// Medusa 1.16x.  We reproduce the ORDERING and rough factors under the
// serving-latency model (see harness.hpp), reporting wall-clock too.
#include "bench_common.hpp"
#include "nn/kernel_dispatch.hpp"

using namespace vsd;
using namespace vsd::bench;

namespace {

struct JsonRow {
  const char* arch;
  const char* method;
  eval::SpeedRow row;
  eval::SpeedRow fast;  // same weights re-decoded under --kernel fast
  double speedup;
};

void run_arch(const Workbench& wb, const Scale& scale, bool enc_dec,
              std::vector<JsonRow>& json_rows) {
  const char* arch = enc_dec ? "CodeT5p-like (enc-dec)" : "CodeLlama-like (dec-only)";
  std::printf("\n== %s ==\n", arch);

  const auto prompts = eval::make_speed_prompts(scale.prompts, scale.seed + 17);
  eval::SpeedOptions sopts;
  sopts.n_prompts = scale.prompts;

  eval::SpeedRow rows[3];
  eval::SpeedRow fast_rows[3];
  const spec::Method methods[3] = {spec::Method::Ours, spec::Method::Medusa,
                                   spec::Method::NTP};
  double t_step = 0.0;
  for (int m = 0; m < 3; ++m) {
    // Train and baseline-decode on the exact tier, then re-decode the same
    // weights under the relaxed kernels: the tok/step delta is what the fast
    // tier costs (or gains) in speculative acceptance.
    nn::set_kernel_mode(nn::KernelMode::Exact);
    const eval::TrainedSystem sys = wb.train(methods[m], enc_dec, 1.0, scale);
    const spec::Decoder dec(*sys.model);
    if (t_step == 0.0) t_step = dec.measure_step_seconds(64);
    rows[m] = eval::evaluate_speed(sys, prompts, sopts, t_step);
    nn::set_kernel_mode(nn::KernelMode::Fast);
    fast_rows[m] = eval::evaluate_speed(sys, prompts, sopts, t_step);
    nn::set_kernel_mode(nn::KernelMode::Exact);
  }

  std::printf("\n%-8s %18s %10s %14s %14s %14s %14s\n", "Method",
              "Speed (tok/s)", "Speedup", "tok/step", "wall tok/s",
              "fast tok/step", "accept delta");
  for (int m = 0; m < 3; ++m) {
    const double sp = eval::speedup(rows[m], rows[2]);
    std::printf("%-8s %18.2f %9.2fx %14.2f %14.2f %14.2f %+14.2f\n",
                spec::method_name(methods[m]), rows[m].tokens_per_sec_model, sp,
                rows[m].mean_accepted, rows[m].tokens_per_sec_wall,
                fast_rows[m].mean_accepted,
                fast_rows[m].mean_accepted - rows[m].mean_accepted);
    json_rows.push_back(
        {arch, spec::method_name(methods[m]), rows[m], fast_rows[m], sp});
  }
  std::printf("# paper (%s): Ours %s, Medusa %s, NTP 1x\n",
              enc_dec ? "CodeT5p" : "CodeLlama",
              enc_dec ? "2.66x" : "5.05x", enc_dec ? "1.16x" : "3.55x");
}

}  // namespace

int main(int argc, char** argv) {
  const Scale scale = Scale::from_env();
  scale.print("Table II — speed of generating Verilog code");
  const Workbench wb = Workbench::build(scale);
  std::vector<JsonRow> json_rows;
  run_arch(wb, scale, /*enc_dec=*/false, json_rows);
  run_arch(wb, scale, /*enc_dec=*/true, json_rows);

  if (const char* path = json_out_path(argc, argv)) {
    std::FILE* f = open_json(path, "bench_table2_speed", scale);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      std::fprintf(f,
                   "    {\"arch\": \"%s\", \"method\": \"%s\", "
                   "\"tok_per_s_model\": %.2f, \"speedup\": %.2f, "
                   "\"tok_per_step\": %.2f, \"tok_per_s_wall\": %.2f, "
                   "\"fast_tok_per_step\": %.2f, \"fast_tok_per_s_wall\": %.2f, "
                   "\"fast_accept_delta\": %.4f}%s\n",
                   r.arch, r.method, r.row.tokens_per_sec_model, r.speedup,
                   r.row.mean_accepted, r.row.tokens_per_sec_wall,
                   r.fast.mean_accepted, r.fast.tokens_per_sec_wall,
                   r.fast.mean_accepted - r.row.mean_accepted,
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"isa\": \"%s\"\n}\n",
                 nn::isa_name(nn::dispatched_isa()));
    std::fclose(f);
    std::printf("\n# wrote %s (%zu rows)\n", path, json_rows.size());
  }
  return 0;
}
