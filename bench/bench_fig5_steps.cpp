// Fig. 5 reproduction: decoding-step comparison on the paper's
// data_register example.  The paper reports Ours 14 steps < Medusa 24 <
// NTP 77, with Ours committing only complete code fragments per step.
#include "bench_common.hpp"
#include "vlog/fragment.hpp"

using namespace vsd;
using namespace vsd::bench;

int main() {
  Scale scale = Scale::from_env();
  scale.print("Fig. 5 — decoding processes on the data_register example");
  const Workbench wb = Workbench::build(scale);

  // The paper decodes its Fig.-5 prompt ("Create a simple Verilog module
  // named data_register ...") with a fine-tuned 7B model.  Our miniature
  // model only speaks its own corpus dialect, so we use the corpus's
  // register-family instruction — the same design, phrased as trained.
  std::string instruction =
      "Please act as a professional Verilog designer. Create a simple Verilog "
      "module named \"data_register\" that takes a 4-bit input `data_in` and "
      "assigns it to a 4-bit output `data_out` using a non-blocking assignment "
      "on the positive edge of the clock.";
  for (const auto& item : wb.dataset.items) {
    if (item.family == "register") {
      instruction = item.instruction;
      break;
    }
  }
  const std::string prompt = data::alpaca_prompt(instruction);

  const spec::Method methods[3] = {spec::Method::Ours, spec::Method::Medusa,
                                   spec::Method::NTP};
  for (const spec::Method m : methods) {
    const eval::TrainedSystem sys = wb.train(m, /*enc_dec=*/false, 1.0, scale);
    Rng rng(scale.seed);
    spec::DecodeConfig dcfg;
    dcfg.max_new_tokens = 260;
    const spec::DecodeResult r = eval::generate(sys, prompt, dcfg, rng);
    const std::string text = sys.tokenizer.decode(r.ids);
    std::printf("\n== %s: %d steps, %zu tokens, %.2f tokens/step ==\n",
                spec::method_name(m), r.steps, r.ids.size(), r.mean_accepted());
    // Step-by-step trace of committed bursts (Fig. 5's "complete code
    // fragments" column).
    std::size_t pos = 0;
    int shown = 0;
    for (const int accepted : r.accepted_per_step) {
      if (shown++ >= 12) {
        std::printf("  ... (%zu more steps)\n", r.accepted_per_step.size() -
                    static_cast<std::size_t>(shown) + 1);
        break;
      }
      std::vector<int> burst;
      for (int i = 0; i < accepted && pos < r.ids.size(); ++i, ++pos) {
        burst.push_back(r.ids[pos]);
      }
      std::string burst_text = sys.tokenizer.decode(burst, /*keep_special=*/true);
      for (char& ch : burst_text) {
        if (ch == '\n') ch = ' ';
      }
      std::printf("  step %2d: +%d tok | %s\n", shown, accepted, burst_text.c_str());
    }
    std::printf("  generated code:\n%s\n", text.c_str());
  }
  std::printf("# paper: Ours 14 steps < Medusa 24 < NTP 77 (same ordering expected)\n");
  return 0;
}
