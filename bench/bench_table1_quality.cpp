// Table I reproduction: pass@{1,5,10} and Pass Rate for Function and
// Syntax, across methods (Ours / Medusa / NTP), training-data fractions,
// and both benchmarks (RTLLM-like, VGen-like).
//
// Default scale covers the decoder-only architecture at fractions
// {1/4, 1}; set VSD_FULL=1 for both architectures at all four fractions
// (the paper's full grid), and VSD_SAMPLES=20 for the paper's n.
#include "bench_common.hpp"

using namespace vsd;
using namespace vsd::bench;

int main(int argc, char** argv) {
  const Scale scale = Scale::from_env();
  scale.print("Table I — quality of generated Verilog code");
  const bool full_grid = eval::env_int("VSD_FULL", 0) != 0;
  const Workbench wb = Workbench::build(scale);

  struct JsonRow {
    const char* arch;
    double fraction;
    const char* benchmark;
    const char* method;
    eval::BenchScores scores;
  };
  std::vector<JsonRow> json_rows;

  // Quality problems come from the corpus distribution itself (retrieval
  // regime — see EXPERIMENTS.md): RTLLM-like = NL spec only, VGen-like =
  // spec + module header.
  const auto rtllm = eval::make_from_dataset(wb.dataset, scale.problems,
                                             eval::BenchStyle::RtllmLike,
                                             scale.seed + 101);
  const auto vgen = eval::make_from_dataset(wb.dataset, scale.problems,
                                            eval::BenchStyle::VgenLike,
                                            scale.seed + 202);

  eval::QualityOptions qopts;
  qopts.n_samples = scale.samples;
  qopts.temperatures = {0.4f};
  qopts.seed = scale.seed + 5;
  // Sample grid parallelism (serve::ThreadPool); scores are identical for
  // any worker count thanks to per-sample RNG splits.
  qopts.workers = eval::env_int("VSD_WORKERS", 1);

  std::vector<bool> archs = {false};
  if (full_grid) archs.push_back(true);
  std::vector<double> fractions = full_grid
                                      ? std::vector<double>{0.25, 0.5, 0.75, 1.0}
                                      : std::vector<double>{0.25, 1.0};
  const spec::Method methods[3] = {spec::Method::Ours, spec::Method::Medusa,
                                   spec::Method::NTP};

  for (const bool enc_dec : archs) {
    std::printf("\n===== %s =====\n", enc_dec ? "CodeT5p-like (enc-dec)"
                                              : "CodeLlama-like (dec-only)");
    for (const double frac : fractions) {
      eval::BenchScores cell[3][2];  // [method][benchmark]
      for (int m = 0; m < 3; ++m) {
        const eval::TrainedSystem sys = wb.train(methods[m], enc_dec, frac, scale);
        cell[m][0] = eval::evaluate_quality(sys, rtllm, qopts);
        cell[m][1] = eval::evaluate_quality(sys, vgen, qopts);
        const char* arch = enc_dec ? "enc-dec" : "dec-only";
        json_rows.push_back({arch, frac, "RTLLM-like",
                             spec::method_name(methods[m]), cell[m][0]});
        json_rows.push_back({arch, frac, "VGen-like",
                             spec::method_name(methods[m]), cell[m][1]});
      }
      for (int b = 0; b < 2; ++b) {
        const char* bench_name = b == 0 ? "RTLLM-like" : "VGen-like";
        std::printf("\n-- data fraction %.2f, %s --\n", frac, bench_name);
        std::printf("%-10s %-8s %8s %8s %8s %10s\n", "Test", "Method", "pass@1",
                    "pass@5", "pass@10", "PassRate");
        for (int row = 0; row < 2; ++row) {
          const char* test = row == 0 ? "Function" : "Syntax";
          for (int m = 0; m < 3; ++m) {
            const eval::BenchScores& s = cell[m][b];
            const auto& pk = row == 0 ? s.func_pass_at_k : s.syn_pass_at_k;
            const double rate = row == 0 ? s.func_rate : s.syn_rate;
            std::printf("%-10s %-8s %7.2f%% %7.2f%% %7.2f%% %9.2f%%\n", test,
                        spec::method_name(methods[m]), pct(pk[0]), pct(pk[1]),
                        pct(pk[2]), pct(rate));
          }
        }
      }
    }
  }
  std::printf("\n# paper shape to check: Ours >= NTP > Medusa on Function;\n"
              "# Ours > NTP and Ours >> Medusa on Syntax; quality grows with data.\n");

  if (const char* path = json_out_path(argc, argv)) {
    std::FILE* f = open_json(path, "bench_table1_quality", scale);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& r = json_rows[i];
      std::fprintf(f,
                   "    {\"arch\": \"%s\", \"fraction\": %.2f, \"benchmark\": \"%s\", "
                   "\"method\": \"%s\", \"func_pass_at\": [%.4f, %.4f, %.4f], "
                   "\"func_rate\": %.4f, \"syn_pass_at\": [%.4f, %.4f, %.4f], "
                   "\"syn_rate\": %.4f}%s\n",
                   r.arch, r.fraction, r.benchmark, r.method,
                   r.scores.func_pass_at_k[0], r.scores.func_pass_at_k[1],
                   r.scores.func_pass_at_k[2], r.scores.func_rate,
                   r.scores.syn_pass_at_k[0], r.scores.syn_pass_at_k[1],
                   r.scores.syn_pass_at_k[2], r.scores.syn_rate,
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s (%zu rows)\n", path, json_rows.size());
  }
  return 0;
}
