// Fig. 1 reproduction: the speed-vs-quality scatter for the decoder-only
// model — speed (tokens/s, serving-latency model) against RTLLM-like
// functional Pass Rate for NTP, Medusa, and Ours.
#include "bench_common.hpp"

using namespace vsd;
using namespace vsd::bench;

int main() {
  const Scale scale = Scale::from_env();
  scale.print("Fig. 1 — performance/speed trade-off (CodeLlama-like)");
  const Workbench wb = Workbench::build(scale);

  const auto problems = eval::make_from_dataset(
      wb.dataset, scale.problems, eval::BenchStyle::RtllmLike, scale.seed + 101);
  const auto prompts = eval::make_speed_prompts(scale.prompts, scale.seed + 17);

  eval::QualityOptions qopts;
  qopts.n_samples = scale.samples;
  qopts.temperatures = {0.4f};
  eval::SpeedOptions sopts;
  sopts.n_prompts = scale.prompts;

  const spec::Method methods[3] = {spec::Method::Ours, spec::Method::Medusa,
                                   spec::Method::NTP};
  double speed[3] = {};
  double quality[3] = {};
  double t_step = 0.0;
  eval::SpeedRow ntp_row;
  eval::SpeedRow rows[3];
  for (int m = 0; m < 3; ++m) {
    const eval::TrainedSystem sys = wb.train(methods[m], false, 1.0, scale);
    const spec::Decoder dec(*sys.model);
    if (t_step == 0.0) t_step = dec.measure_step_seconds(64);
    rows[m] = eval::evaluate_speed(sys, prompts, sopts, t_step);
    speed[m] = rows[m].tokens_per_sec_model;
    quality[m] = eval::evaluate_quality(sys, problems, qopts).func_rate;
  }
  ntp_row = rows[2];

  std::printf("\n%-8s %16s %10s %18s\n", "Method", "Speed (tok/s)", "Speedup",
              "RTLLM PassRate");
  for (int m = 0; m < 3; ++m) {
    std::printf("%-8s %16.2f %9.2fx %17.2f%%\n", spec::method_name(methods[m]),
                speed[m], eval::speedup(rows[m], ntp_row), pct(quality[m]));
  }
  std::printf("\n# Fig. 1 shape: Ours sits top-right (fastest AND most accurate);\n"
              "# Medusa is fast but least accurate; NTP is slowest.\n");
  return 0;
}
