// GEMM kernel micro-bench (google-benchmark): the naive reference loops of
// tensor.hpp vs the cache-blocked kernels of kernels.hpp vs the parallel
// drivers of parallel.hpp, across the two shapes the model actually runs:
//   * QKV / attention projections  [T, D] x [D, D]   (T = a drafted chain)
//   * logit GEMMs                  [B, D] x [D, V]   (B = fused batch rows)
//
// Beyond the google-benchmark tables, the binary times a fixed
// naive-vs-blocked-vs-parallel comparison itself (best-of rounds) and
// emits the ledger row for scripts/bench.sh (`--json out.json` /
// VSD_JSON=PATH, like every other bench).  The acceptance floor this bench
// guards: on the logit shape the blocked parallel driver must beat naive
// matmul_acc.  Every kernel is bit-identical to its reference — the bench
// asserts that too, so a "fast but wrong" kernel can never post a number.
//
// Knobs: VSD_KERNEL_ROWS (fused batch rows B, default 16), VSD_KERNEL_REPS
// (timing repetitions, default auto), VSD_COMPUTE_THREADS (parallel-driver
// width, default hardware).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nn/kernel_dispatch.hpp"
#include "nn/kernels.hpp"
#include "nn/parallel.hpp"
#include "nn/quant.hpp"

namespace {

using namespace vsd;
using Clock = std::chrono::steady_clock;

constexpr int kD = 64;     // d_model of the reproduction's models
constexpr int kV = 384;    // trained tokenizer vocab
constexpr int kChain = 11; // drafted chain rows fed per verification

// --- google-benchmark registrations -----------------------------------------

template <void (*Kernel)(const float*, const float*, float*, int, int, int)>
void BM_Gemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  Rng rng(5);
  const nn::Tensor a = nn::Tensor::randn(m, k, 1.0f, rng);
  const nn::Tensor b = nn::Tensor::randn(k, n, 1.0f, rng);
  nn::Tensor c(m, n);
  for (auto _ : state) {
    c.fill(0.0f);
    Kernel(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2ll *
                          m * k * n);
}

// The exact-tier dispatched SIMD GEMM (bit-identical to naive by contract;
// falls back to the blocked scalar kernel when the probe found no vector ISA).
void simd_exact_gemm(const float* a, const float* b, float* c, int m, int k,
                     int n) {
  nn::kernels_for(nn::dispatched_isa(), nn::KernelMode::Exact)
      .acc_kouter(a, b, c, m, k, n);
}

// The grouped-int8 compressed-weight path (fast tier: weights are packed
// once, dequantised in-register per group — NOT bit-identical).
void BM_GemmInt8(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  Rng rng(5);
  const nn::Tensor a = nn::Tensor::randn(m, k, 1.0f, rng);
  const nn::Tensor b = nn::Tensor::randn(k, n, 1.0f, rng);
  const nn::QuantizedWeights qw = nn::QuantizedWeights::pack(b.data(), k, n);
  nn::Tensor c(m, n);
  for (auto _ : state) {
    c.fill(0.0f);
    nn::q8_linear_acc(a.data(), qw, c.data(), m);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2ll *
                          m * k * n);
}

void register_gemm_benchmarks() {
  const std::vector<std::vector<std::int64_t>> shapes = {
      {1, kD, kD},     {kChain, kD, kD},   // QKV: one row / a drafted chain
      {1, kD, kV},     {4, kD, kV},        // logits: single / small batch
      {8, kD, kV},     {16, kD, kV},       // logits: fused batch rows
  };
  for (const auto& s : shapes) {
    benchmark::RegisterBenchmark("naive", BM_Gemm<nn::matmul_acc>)->Args(s);
    benchmark::RegisterBenchmark("kouter", BM_Gemm<nn::matmul_acc_kouter>)->Args(s);
    benchmark::RegisterBenchmark("blocked", BM_Gemm<nn::matmul_acc_blocked>)->Args(s);
    benchmark::RegisterBenchmark("parallel", BM_Gemm<nn::matmul_acc_parallel>)->Args(s);
    benchmark::RegisterBenchmark("simd", BM_Gemm<simd_exact_gemm>)->Args(s);
    benchmark::RegisterBenchmark("int8", BM_GemmInt8)->Args(s);
  }
}

// --- ledger comparison --------------------------------------------------------

/// Best-of-rounds seconds per call for `kernel` on fresh-zeroed C.
template <typename Fn>
double time_kernel(const Fn& kernel, nn::Tensor& c, int reps, int rounds) {
  double best = 1e30;
  for (int r = 0; r < rounds; ++r) {
    c.fill(0.0f);
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) kernel();
    const double dt =
        std::chrono::duration<double>(Clock::now() - t0).count() / reps;
    best = std::min(best, dt);
  }
  return best;
}

struct ShapeReport {
  int m, k, n;
  double naive_s = 0.0;
  double kouter_s = 0.0;
  double blocked_s = 0.0;
  double parallel_s = 0.0;
  double simd_s = 0.0;
  double int8_s = 0.0;
  bool identical = true;
};

ShapeReport compare_shape(int m, int k, int n, int reps) {
  Rng rng(11);
  const nn::Tensor a = nn::Tensor::randn(m, k, 1.0f, rng);
  const nn::Tensor b = nn::Tensor::randn(k, n, 1.0f, rng);
  const nn::QuantizedWeights qw = nn::QuantizedWeights::pack(b.data(), k, n);
  nn::Tensor c(m, n);
  constexpr int kRounds = 5;

  ShapeReport rep{m, k, n};
  rep.naive_s = time_kernel(
      [&] { nn::matmul_acc(a.data(), b.data(), c.data(), m, k, n); }, c, reps,
      kRounds);
  nn::Tensor ref(m, n);
  nn::matmul_acc(a.data(), b.data(), ref.data(), m, k, n);

  // Every exact-tier kernel (simd included) must reproduce the reference
  // bit-for-bit; the int8 path is fast-tier and exempt by design.
  const auto check_identical = [&](const char* name, const auto& run) {
    nn::Tensor once(m, n);
    run(once.data());
    if (std::memcmp(once.data(), ref.data(), ref.size() * sizeof(float)) != 0) {
      rep.identical = false;
      std::fprintf(stderr, "kernel %s NOT bit-identical at [%d,%d]x[%d,%d]\n",
                   name, m, k, k, n);
    }
  };

  rep.kouter_s = time_kernel(
      [&] { nn::matmul_acc_kouter(a.data(), b.data(), c.data(), m, k, n); }, c,
      reps, kRounds);
  check_identical("kouter", [&](float* out) {
    nn::matmul_acc_kouter(a.data(), b.data(), out, m, k, n);
  });
  rep.blocked_s = time_kernel(
      [&] { nn::matmul_acc_blocked(a.data(), b.data(), c.data(), m, k, n); }, c,
      reps, kRounds);
  check_identical("blocked", [&](float* out) {
    nn::matmul_acc_blocked(a.data(), b.data(), out, m, k, n);
  });
  rep.parallel_s = time_kernel(
      [&] { nn::matmul_acc_parallel(a.data(), b.data(), c.data(), m, k, n); },
      c, reps, kRounds);
  check_identical("parallel", [&](float* out) {
    nn::matmul_acc_parallel(a.data(), b.data(), out, m, k, n);
  });
  rep.simd_s = time_kernel(
      [&] { simd_exact_gemm(a.data(), b.data(), c.data(), m, k, n); }, c, reps,
      kRounds);
  check_identical("simd", [&](float* out) {
    simd_exact_gemm(a.data(), b.data(), out, m, k, n);
  });
  rep.int8_s = time_kernel(
      [&] { nn::q8_linear_acc(a.data(), qw, c.data(), m); }, c, reps, kRounds);
  return rep;
}

void print_report(const ShapeReport& r, const char* label) {
  std::printf(
      "%-18s [%2d,%3d]x[%3d,%3d]: naive %8.0f ns  kouter %8.0f ns  "
      "blocked %8.0f ns  parallel %8.0f ns  simd %8.0f ns  int8 %8.0f ns  "
      "(blocked %.2fx, parallel %.2fx, simd %.2fx, int8 %.2fx vs naive)%s\n",
      label, r.m, r.k, r.k, r.n, r.naive_s * 1e9, r.kouter_s * 1e9,
      r.blocked_s * 1e9, r.parallel_s * 1e9, r.simd_s * 1e9, r.int8_s * 1e9,
      r.naive_s / r.blocked_s, r.naive_s / r.parallel_s, r.naive_s / r.simd_s,
      r.naive_s / r.int8_s, r.identical ? "" : "  BIT-IDENTITY FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off this repo's --json flag before google-benchmark sees argv (it
  // rejects flags it does not know).  Discovery reuses the shared helper.
  const char* json_path = vsd::bench::json_out_path(argc, argv);
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) continue;
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  register_gemm_benchmarks();
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();

  // --- ledger comparison: the shapes the serving stack actually runs ------
  const int fused_rows = eval::env_int("VSD_KERNEL_ROWS", 16);
  const int threads = vsd::nn::compute_threads();
  const ShapeReport qkv = compare_shape(kChain, kD, kD,
                                        eval::env_int("VSD_KERNEL_REPS", 4000));
  const ShapeReport logits = compare_shape(
      fused_rows, kD, kV, eval::env_int("VSD_KERNEL_REPS", 1000));
  std::printf("\n# kernel ledger (compute_threads=%d, best of 5 rounds)\n",
              threads);
  print_report(qkv, "qkv chain");
  print_report(logits, "logits fused");

  // Acceptance floors, all on the [B, D] x [D, V] logit shape — the GEMM
  // behind the fused batched forward: (1) the blocked parallel driver must
  // beat the naive reference loop, with bit-identical output; (2) when the
  // CPUID probe dispatched a vector ISA, the exact-tier SIMD kernel must
  // beat the blocked scalar kernel (on a scalar-only host simd IS blocked,
  // so the floor is vacuous and skipped).
  const double parallel_speedup = logits.naive_s / logits.parallel_s;
  const double blocked_speedup = logits.naive_s / logits.blocked_s;
  const double simd_speedup = logits.naive_s / logits.simd_s;
  const double int8_speedup = logits.naive_s / logits.int8_s;
  const nn::KernelIsa isa = nn::dispatched_isa();
  const bool simd_active = isa != nn::KernelIsa::Scalar;
  const bool identical = qkv.identical && logits.identical;
  const bool floor_ok = parallel_speedup > 1.0;
  const bool floor_simd_ok = !simd_active || simd_speedup > blocked_speedup;
  std::printf("logit-shape floor: parallel %.2fx vs naive (>1.0x %s), "
              "bit-identity %s\n",
              parallel_speedup, floor_ok ? "PASS" : "FAIL",
              identical ? "PASS" : "FAIL");
  std::printf("logit-shape simd floor (isa %s): simd %.2fx vs blocked %.2fx "
              "(%s); int8 %.2fx\n",
              nn::isa_name(isa), simd_speedup, blocked_speedup,
              simd_active ? (floor_simd_ok ? "PASS" : "FAIL")
                          : "SKIP: scalar host",
              int8_speedup);

  if (json_path != nullptr) {
    const vsd::bench::Scale scale = vsd::bench::Scale::from_env();
    std::FILE* f = vsd::bench::open_json(json_path, "bench_kernels", scale);
    const auto shape_json = [&](const ShapeReport& r) {
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "{\"m\": %d, \"k\": %d, \"n\": %d, \"naive_ns\": %.0f, "
          "\"kouter_ns\": %.0f, \"blocked_ns\": %.0f, \"parallel_ns\": %.0f, "
          "\"simd_ns\": %.0f, \"int8_ns\": %.0f, "
          "\"blocked_speedup\": %.3f, \"parallel_speedup\": %.3f, "
          "\"simd_speedup\": %.3f, \"int8_speedup\": %.3f, "
          "\"bit_identical\": %s}",
          r.m, r.k, r.n, r.naive_s * 1e9, r.kouter_s * 1e9, r.blocked_s * 1e9,
          r.parallel_s * 1e9, r.simd_s * 1e9, r.int8_s * 1e9,
          r.naive_s / r.blocked_s, r.naive_s / r.parallel_s,
          r.naive_s / r.simd_s, r.naive_s / r.int8_s,
          r.identical ? "true" : "false");
      return std::string(buf);
    };
    std::fprintf(f,
                 "  \"compute_threads\": %d,\n"
                 "  \"isa\": \"%s\",\n"
                 "  \"qkv_chain\": %s,\n"
                 "  \"logits_fused\": %s,\n"
                 "  \"logit_parallel_speedup\": %.3f,\n"
                 "  \"logit_blocked_speedup\": %.3f,\n"
                 "  \"logit_simd_speedup\": %.3f,\n"
                 "  \"logit_int8_speedup\": %.3f,\n"
                 "  \"floor_parallel_beats_naive\": %s,\n"
                 "  \"floor_simd_beats_blocked\": %s,\n"
                 "  \"bit_identical\": %s\n}\n",
                 threads, nn::isa_name(isa), shape_json(qkv).c_str(),
                 shape_json(logits).c_str(), parallel_speedup, blocked_speedup,
                 simd_speedup, int8_speedup, floor_ok ? "true" : "false",
                 floor_simd_ok ? "true" : "false",
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  }
  return floor_ok && floor_simd_ok && identical ? 0 : 1;
}
