// Ablation B: sensitivity of the speculative decoder to the typical-
// acceptance hyper-parameters (epsilon, delta of Eq. 1), the number of
// draft heads, and the candidate count — reporting mean accepted tokens
// per step and modeled speedup for the Ours-trained model (design choices
// called out in DESIGN.md).
#include "bench_common.hpp"

using namespace vsd;
using namespace vsd::bench;

namespace {

double run_config(const eval::TrainedSystem& sys,
                  const std::vector<std::string>& prompts, int n_prompts,
                  const spec::DecodeConfig& base_cfg, double* mean_accept) {
  Rng rng(9);
  double sum_accept = 0.0;
  double steps = 0.0;
  double tokens = 0.0;
  int outputs = 0;
  for (int i = 0; i < n_prompts; ++i) {
    spec::DecodeConfig cfg = base_cfg;
    const spec::DecodeResult r = eval::generate(sys, prompts[static_cast<std::size_t>(i)],
                                                cfg, rng);
    if (r.steps == 0) continue;
    sum_accept += r.mean_accepted();
    steps += r.steps;
    tokens += static_cast<double>(r.ids.size());
    ++outputs;
  }
  if (mean_accept != nullptr && outputs > 0) *mean_accept = sum_accept / outputs;
  return steps > 0 ? tokens / steps : 0.0;  // == modeled speedup vs NTP
}

}  // namespace

int main() {
  const Scale scale = Scale::from_env();
  scale.print("Ablation — typical acceptance / head count / candidates");
  const Workbench wb = Workbench::build(scale);
  const eval::TrainedSystem sys =
      wb.train(spec::Method::Ours, /*enc_dec=*/false, 1.0, scale);
  const auto prompts = eval::make_speed_prompts(scale.prompts, scale.seed + 17);

  spec::DecodeConfig base;
  base.max_new_tokens = 180;
  base.temperature = 0.8f;

  std::printf("\n-- epsilon sweep (delta=%.2f, heads=%d) --\n", base.acceptance.delta,
              base.num_heads);
  std::printf("%8s %14s %16s\n", "epsilon", "tok/step", "modeled speedup");
  for (const float eps : {0.02f, 0.05f, 0.09f, 0.2f, 0.4f}) {
    spec::DecodeConfig cfg = base;
    cfg.acceptance.epsilon = eps;
    double accept = 0.0;
    const double sp = run_config(sys, prompts, scale.prompts, cfg, &accept);
    std::printf("%8.2f %14.2f %15.2fx\n", eps, accept, sp);
  }

  std::printf("\n-- delta sweep (epsilon=0.09, heads=%d) --\n", base.num_heads);
  std::printf("%8s %14s %16s\n", "delta", "tok/step", "modeled speedup");
  for (const float delta : {0.1f, 0.3f, 0.6f, 0.9f}) {
    spec::DecodeConfig cfg = base;
    cfg.acceptance.delta = delta;
    double accept = 0.0;
    const double sp = run_config(sys, prompts, scale.prompts, cfg, &accept);
    std::printf("%8.2f %14.2f %15.2fx\n", delta, accept, sp);
  }

  std::printf("\n-- head-count sweep --\n");
  std::printf("%8s %14s %16s\n", "heads", "tok/step", "modeled speedup");
  for (const int heads : {1, 2, 4, 6, 8, 10}) {
    spec::DecodeConfig cfg = base;
    cfg.num_heads = heads;
    double accept = 0.0;
    const double sp = run_config(sys, prompts, scale.prompts, cfg, &accept);
    std::printf("%8d %14.2f %15.2fx\n", heads, accept, sp);
  }

  std::printf("\n-- candidate-count sweep (greedy) --\n");
  std::printf("%8s %14s %16s\n", "cands", "tok/step", "modeled speedup");
  for (const int cands : {1, 2, 3, 5}) {
    spec::DecodeConfig cfg = base;
    cfg.temperature = 0.0f;
    cfg.num_candidates = cands;
    double accept = 0.0;
    const double sp = run_config(sys, prompts, scale.prompts, cfg, &accept);
    std::printf("%8d %14.2f %15.2fx\n", cands, accept, sp);
  }
  return 0;
}
