// Shared plumbing for the experiment benches: builds the dataset and
// tokenizer once, trains the three method variants, and provides printing
// helpers.  Every bench accepts environment knobs so the same binary can
// run as a quick smoke test or at closer-to-paper scale:
//   VSD_ITEMS     full-dataset item count          (default 96)
//   VSD_EPOCHS    training epochs                  (default 3)
//   VSD_PROBLEMS  problems per benchmark           (default 6)
//   VSD_SAMPLES   samples per prompt (n in pass@k) (default 6)
//   VSD_PROMPTS   speed-eval prompts               (default 16)
//   VSD_SEED      global seed                      (default 1)
// Machine-readable output: pass `--json out.json` (or set VSD_JSON=PATH)
// and the bench writes its result table as JSON itself — scripts/bench.sh
// consumes that instead of scraping stdout.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "eval/harness.hpp"

namespace vsd::bench {

struct Scale {
  int items;
  int epochs;
  int problems;
  int samples;
  int prompts;
  std::uint64_t seed;

  static Scale from_env() {
    Scale s;
    s.items = eval::env_int("VSD_ITEMS", 32);
    s.epochs = eval::env_int("VSD_EPOCHS", 20);
    s.problems = eval::env_int("VSD_PROBLEMS", 6);
    s.samples = eval::env_int("VSD_SAMPLES", 6);
    s.prompts = eval::env_int("VSD_PROMPTS", 12);
    s.seed = static_cast<std::uint64_t>(eval::env_int("VSD_SEED", 1));
    return s;
  }

  void print(const char* bench_name) const {
    std::printf("# %s — scaled reproduction (CPU)\n", bench_name);
    std::printf("# scale: items=%d epochs=%d problems=%d samples=%d prompts=%d seed=%llu\n",
                items, epochs, problems, samples, prompts,
                static_cast<unsigned long long>(seed));
    std::printf("# (set VSD_ITEMS/VSD_EPOCHS/... to rescale; see bench_common.hpp)\n\n");
  }

  std::string json() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"items\":%d,\"epochs\":%d,\"problems\":%d,\"samples\":%d,"
                  "\"prompts\":%d,\"seed\":%llu}",
                  items, epochs, problems, samples, prompts,
                  static_cast<unsigned long long>(seed));
    return buf;
  }
};

/// Path given via `--json PATH` / `--json=PATH` / VSD_JSON=PATH, else null.
inline const char* json_out_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) return argv[i + 1];
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return std::getenv("VSD_JSON");
}

/// Opens the --json output file and writes the shared header fields
/// (bench name, timestamp, scale); the caller continues the object.  The
/// timestamp comes from vsd::obs::utc_iso8601 — one formatter dates both
/// the perf ledger and the trace files.
inline std::FILE* open_json(const char* path, const char* bench_name,
                            const Scale& scale) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write JSON output to %s\n", path);
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"generated_utc\": \"%s\",\n"
               "  \"scale\": %s,\n",
               bench_name, obs::utc_iso8601().c_str(), scale.json().c_str());
  return f;
}

struct Workbench {
  data::Dataset dataset;
  text::Tokenizer tokenizer = text::Tokenizer::byte_fallback();

  static Workbench build(const Scale& s) {
    Workbench w;
    data::DatasetConfig dcfg;
    dcfg.target_items = s.items;
    dcfg.seed = s.seed;
    w.dataset = data::build_dataset(dcfg);
    w.tokenizer = text::Tokenizer::train(data::tokenizer_corpus(w.dataset),
                                         {.vocab_size = 384});
    std::printf("# dataset: %zu cleaned items (raw files=%d, dropped: dup=%d syntax=%d comment=%d)\n",
                w.dataset.items.size(), w.dataset.refine_stats.raw_files,
                w.dataset.refine_stats.dropped_duplicates,
                w.dataset.refine_stats.dropped_syntax,
                w.dataset.refine_stats.dropped_comment_only);
    return w;
  }

  eval::TrainedSystem train(spec::Method method, bool encoder_decoder,
                            double fraction, const Scale& s) const {
    eval::SystemConfig cfg;
    cfg.method = method;
    cfg.encoder_decoder = encoder_decoder;
    cfg.fraction = fraction;
    cfg.epochs = s.epochs;
    cfg.seed = s.seed;
    std::printf("# training %-6s (%s, fraction %.2f) ...\n", spec::method_name(method),
                encoder_decoder ? "enc-dec" : "dec-only", fraction);
    std::fflush(stdout);
    eval::TrainedSystem sys = eval::train_system(cfg, dataset, tokenizer);
    std::printf("#   %d items, %d steps, %.1fs, loss %.3f -> %.3f\n",
                sys.train_items, sys.train_stats.steps, sys.train_stats.seconds,
                sys.train_stats.first_loss, sys.train_stats.final_loss);
    std::fflush(stdout);
    return sys;
  }
};

inline double pct(double v) { return 100.0 * v; }

}  // namespace vsd::bench
