// Component micro-benchmarks (google-benchmark): the substrates every
// experiment rests on — lexer, parser, fragment marking, simulator,
// tokenizer, tensor kernels, and single-step model inference.
#include <benchmark/benchmark.h>

#include "data/templates.hpp"
#include "nn/model.hpp"
#include "sim/check.hpp"
#include "text/bpe.hpp"
#include "vlog/parser.hpp"

namespace {

using namespace vsd;

const std::string& sample_code() {
  static const std::string code = [] {
    Rng rng(1);
    std::string out;
    for (int i = 0; i < 8; ++i) {
      out += data::TemplateLibrary::generate_any(rng).code;
      out += "\n";
    }
    return out;
  }();
  return code;
}

void BM_Lexer(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(vlog::lex(sample_code()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample_code().size()));
}
BENCHMARK(BM_Lexer);

void BM_Parser(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(vlog::parse(sample_code()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample_code().size()));
}
BENCHMARK(BM_Parser);

void BM_SyntaxCheck(benchmark::State& state) {
  Rng rng(2);
  const data::RtlSample s = data::TemplateLibrary::generate_any(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vlog::syntax_ok(s.code));
  }
}
BENCHMARK(BM_SyntaxCheck);

void BM_SimDiffCheck(benchmark::State& state) {
  Rng rng(3);
  const data::RtlSample s =
      data::TemplateLibrary::generate(state.range(0) == 0 ? "adder" : "counter", rng);
  sim::DiffOptions opts;
  opts.cycles = 32;
  opts.vectors = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::diff_check(s.code, s.code, s.module_name, opts));
  }
}
BENCHMARK(BM_SimDiffCheck)->Arg(0)->Arg(1);

void BM_TokenizerEncode(benchmark::State& state) {
  const text::Tokenizer tok =
      text::Tokenizer::train({sample_code()}, {.vocab_size = 384});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok.encode(sample_code()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample_code().size()));
}
BENCHMARK(BM_TokenizerEncode);

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  nn::Tensor a = nn::Tensor::randn(n, n, 1.0f, rng);
  nn::Tensor b = nn::Tensor::randn(n, n, 1.0f, rng);
  nn::Tensor c(n, n);
  for (auto _ : state) {
    c.fill(0.0f);
    nn::matmul_acc(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2ll * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

void BM_DecoderStep(benchmark::State& state) {
  nn::ModelConfig cfg;
  cfg.vocab = 384;
  cfg.d_model = 64;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 192;
  cfg.max_seq = 448;
  cfg.n_medusa_heads = 10;
  const nn::TransformerModel model(cfg, 1);
  nn::InferSession sess(model);
  std::vector<int> ctx(64, 10);
  sess.feed(ctx);
  const int tok = 11;
  int len = sess.len();
  for (auto _ : state) {
    sess.truncate(len);
    nn::Tensor h = sess.feed(std::span<const int>(&tok, 1));
    benchmark::DoNotOptimize(sess.lm_logits(h));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DecoderStep);

void BM_BatchedVerifyStep(benchmark::State& state) {
  // Cost of verifying n+1=11 drafted positions in one pass — compare with
  // 11x BM_DecoderStep to see the batching win the speed model captures.
  nn::ModelConfig cfg;
  cfg.vocab = 384;
  cfg.d_model = 64;
  cfg.n_layers = 2;
  cfg.n_heads = 2;
  cfg.d_ff = 192;
  cfg.max_seq = 448;
  cfg.n_medusa_heads = 10;
  const nn::TransformerModel model(cfg, 1);
  nn::InferSession sess(model);
  std::vector<int> ctx(64, 10);
  sess.feed(ctx);
  std::vector<int> chain(11, 11);
  const int len = sess.len();
  for (auto _ : state) {
    sess.truncate(len);
    nn::Tensor h = sess.feed(chain);
    benchmark::DoNotOptimize(sess.lm_logits(h));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 11);
}
BENCHMARK(BM_BatchedVerifyStep);

}  // namespace

BENCHMARK_MAIN();
