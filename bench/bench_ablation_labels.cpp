// Ablation A (google-benchmark): the paper's parallel label-masking
// algorithm (Fig. 4, right panel) vs the naive per-column reference —
// identical semantics (asserted in tests), lower cost here.  Also measures
// full label construction and the tokenizer, since both sit on the
// training hot path.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "spec/labels.hpp"
#include "text/bpe.hpp"
#include "vlog/fragment.hpp"

namespace {

using namespace vsd;

std::vector<int> random_marked_sequence(int len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(len));
  while (static_cast<int>(ids.size()) < len) {
    const int frag_len = 1 + static_cast<int>(rng.next_below(6));
    for (int j = 0; j < frag_len; ++j) {
      ids.push_back(10 + static_cast<int>(rng.next_below(300)));
    }
    ids.push_back(text::Tokenizer::kFrag);
  }
  ids.resize(static_cast<std::size_t>(len));
  return ids;
}

void BM_LabelMaskParallel(benchmark::State& state) {
  const auto ids = random_marked_sequence(static_cast<int>(state.range(0)), 1);
  const int heads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    spec::LabelSet l = spec::build_shifted_labels(ids, heads, text::Tokenizer::kPad);
    spec::apply_ignore_mask_parallel(l, text::Tokenizer::kFrag, text::Tokenizer::kPad,
                                     text::Tokenizer::kIgnore);
    benchmark::DoNotOptimize(l);
  }
}
BENCHMARK(BM_LabelMaskParallel)->Args({256, 10})->Args({1024, 10})->Args({4096, 10});

void BM_LabelMaskNaive(benchmark::State& state) {
  const auto ids = random_marked_sequence(static_cast<int>(state.range(0)), 1);
  const int heads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    spec::LabelSet l = spec::build_shifted_labels(ids, heads, text::Tokenizer::kPad);
    spec::apply_ignore_mask_naive(l, text::Tokenizer::kFrag, text::Tokenizer::kPad,
                                  text::Tokenizer::kIgnore);
    benchmark::DoNotOptimize(l);
  }
}
BENCHMARK(BM_LabelMaskNaive)->Args({256, 10})->Args({1024, 10})->Args({4096, 10});

void BM_MaskOnlyParallel(benchmark::State& state) {
  const auto ids = random_marked_sequence(static_cast<int>(state.range(0)), 1);
  const spec::LabelSet base =
      spec::build_shifted_labels(ids, 10, text::Tokenizer::kPad);
  for (auto _ : state) {
    spec::LabelSet l = base;
    spec::apply_ignore_mask_parallel(l, text::Tokenizer::kFrag, text::Tokenizer::kPad,
                                     text::Tokenizer::kIgnore);
    benchmark::DoNotOptimize(l);
  }
}
BENCHMARK(BM_MaskOnlyParallel)->Arg(1024)->Arg(4096);

void BM_MaskOnlyNaive(benchmark::State& state) {
  const auto ids = random_marked_sequence(static_cast<int>(state.range(0)), 1);
  const spec::LabelSet base =
      spec::build_shifted_labels(ids, 10, text::Tokenizer::kPad);
  for (auto _ : state) {
    spec::LabelSet l = base;
    spec::apply_ignore_mask_naive(l, text::Tokenizer::kFrag, text::Tokenizer::kPad,
                                  text::Tokenizer::kIgnore);
    benchmark::DoNotOptimize(l);
  }
}
BENCHMARK(BM_MaskOnlyNaive)->Arg(1024)->Arg(4096);

void BM_FragMarkInsertion(benchmark::State& state) {
  const std::string code =
      "module data_register(input clk, input [3:0] data_in, output reg [3:0] data_out);\n"
      "  always @(posedge clk) begin data_out <= data_in; end\nendmodule\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(vlog::mark_fragments(code));
  }
}
BENCHMARK(BM_FragMarkInsertion);

}  // namespace

BENCHMARK_MAIN();
