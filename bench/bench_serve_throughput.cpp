// Serving throughput: serial request loop vs the src/serve continuous
// batching scheduler on the same prompt set, reported as requests/sec.
//
// Two numbers per path, following the repo's Table-II convention (see
// eval/harness.hpp): raw single-core WALL clock, and the serving-latency
// MODEL — the paper's regime, where batch-1 GPU decoding is
// memory-bandwidth-bound, one speculative step costs one weight-streaming
// forward pass, and a batched step shares that pass across the whole
// batch.  Under the model, serial cost is (total steps) x t_step while the
// batched scheduler costs (ticks) x t_step: continuous batching advances
// every in-flight request in one shared tick, which is exactly where
// vLLM-style serving gets its throughput.  Wall clock additionally scales
// with --workers on multi-core hosts.
//
// Knobs: VSD_PROMPTS (>= 8 enforced), VSD_WORKERS (4), VSD_BATCH (4), plus
// the usual training-scale knobs; `--json out.json` writes the ledger row.
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "serve/request_queue.hpp"
#include "serve/scheduler.hpp"

using namespace vsd;
using namespace vsd::bench;

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  Scale scale = Scale::from_env();
  scale.prompts = std::max(8, scale.prompts);  // acceptance floor
  const int workers = eval::env_int("VSD_WORKERS", 4);
  const int batch = eval::env_int("VSD_BATCH", 4);
  scale.print("Serving throughput — serial loop vs continuous batching");
  std::printf("# serve shape: workers=%d batch=%d prompts=%d\n", workers, batch,
              scale.prompts);

  const Workbench wb = Workbench::build(scale);
  const eval::TrainedSystem sys =
      wb.train(spec::Method::Ours, /*encoder_decoder=*/false, 1.0, scale);
  const spec::Decoder dec(*sys.model);
  const double t_step = dec.measure_step_seconds(64);

  // The same admission path `vsd serve` uses, at temperature 0 so the
  // batched results must be token-identical to the serial loop.
  const auto prompt_texts = eval::make_speed_prompts(scale.prompts, scale.seed + 17);
  const int n = static_cast<int>(prompt_texts.size());
  std::vector<serve::Request> requests;
  requests.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    spec::DecodeConfig base;
    base.max_new_tokens = 220;
    eval::PreparedRequest prep =
        eval::prepare_request(sys, prompt_texts[static_cast<std::size_t>(i)], base);
    serve::Request req;
    req.id = static_cast<std::uint64_t>(i);
    req.prompt_ids = std::move(prep.prompt_ids);
    req.config = prep.config;
    req.seed = scale.seed + static_cast<std::uint64_t>(i);
    requests.push_back(std::move(req));
  }

  // --- serial loop: one request at a time --------------------------------
  std::vector<spec::DecodeResult> serial(static_cast<std::size_t>(n));
  const auto t_serial = Clock::now();
  long serial_steps = 0;
  for (int i = 0; i < n; ++i) {
    Rng rng(requests[static_cast<std::size_t>(i)].seed);
    serial[static_cast<std::size_t>(i)] =
        dec.speculative(requests[static_cast<std::size_t>(i)].prompt_ids,
                        requests[static_cast<std::size_t>(i)].config, rng);
    serial_steps += serial[static_cast<std::size_t>(i)].steps;
  }
  const double serial_wall = since(t_serial);

  // --- batched: the serving stack (queue + scheduler + pool) -------------
  serve::RequestQueue queue(static_cast<std::size_t>(std::max(1, batch)));
  std::thread producer([&] {
    for (const serve::Request& req : requests) {
      serve::Request copy = req;
      if (!queue.push(std::move(copy))) break;
    }
    queue.close();
  });
  std::vector<spec::DecodeResult> batched(static_cast<std::size_t>(n));
  serve::Scheduler scheduler(*sys.model, queue,
                             {.workers = workers, .batch = batch});
  const serve::ServeStats stats =
      scheduler.run([&](const serve::Request& req, spec::DecodeResult r) {
        batched[req.id] = std::move(r);
      });
  producer.join();

  bool parity = true;
  for (int i = 0; i < n; ++i) {
    parity = parity && batched[static_cast<std::size_t>(i)].ids ==
                           serial[static_cast<std::size_t>(i)].ids;
  }

  const double serial_model_s = static_cast<double>(serial_steps) * t_step;
  const double batched_model_s = static_cast<double>(stats.ticks) * t_step;
  const double serial_rps_model = n / std::max(serial_model_s, 1e-12);
  const double batched_rps_model = n / std::max(batched_model_s, 1e-12);
  const double serial_rps_wall = n / std::max(serial_wall, 1e-12);
  const double batched_rps_wall = n / std::max(stats.wall_seconds, 1e-12);

  std::printf("\n%-8s %10s %12s %14s %14s\n", "Path", "steps", "wall (s)",
              "req/s (model)", "req/s (wall)");
  std::printf("%-8s %10ld %12.3f %14.2f %14.2f\n", "serial", serial_steps,
              serial_wall, serial_rps_model, serial_rps_wall);
  std::printf("%-8s %10ld %12.3f %14.2f %14.2f\n", "batched", stats.ticks,
              stats.wall_seconds, batched_rps_model, batched_rps_wall);
  // The acceptance floor this bench exists to guard: at the advertised
  // shape (batch >= 4) continuous batching must deliver >= 2x requests/sec
  // under the latency model.  Narrower batches (a user knob) only warn.
  const double speedup_model = batched_rps_model / serial_rps_model;
  const bool speedup_ok = batch < 4 || speedup_model >= 2.0;
  std::printf("\nspeedup: %.2fx (model), %.2fx (wall); parity at T=0: %s%s\n",
              speedup_model, batched_rps_wall / serial_rps_wall,
              parity ? "PASS" : "FAIL",
              speedup_ok ? "" : "; speedup FLOOR (>=2x at batch>=4) FAILED");

  if (const char* path = json_out_path(argc, argv)) {
    std::FILE* f = open_json(path, "bench_serve_throughput", scale);
    std::fprintf(
        f,
        "  \"n_prompts\": %d,\n  \"workers\": %d,\n  \"batch\": %d,\n"
        "  \"t_step_seconds\": %.6e,\n"
        "  \"serial\": {\"steps\": %ld, \"wall_s\": %.4f, "
        "\"requests_per_sec_model\": %.3f, \"requests_per_sec_wall\": %.3f},\n"
        "  \"batched\": {\"ticks\": %ld, \"max_in_flight\": %d, \"wall_s\": %.4f, "
        "\"requests_per_sec_model\": %.3f, \"requests_per_sec_wall\": %.3f},\n"
        "  \"speedup_model\": %.3f,\n  \"speedup_wall\": %.3f,\n"
        "  \"parity_temp0\": %s\n}\n",
        n, workers, batch, t_step, serial_steps, serial_wall,
        serial_rps_model, serial_rps_wall, stats.ticks, stats.max_in_flight,
        stats.wall_seconds, batched_rps_model, batched_rps_wall,
        speedup_model, batched_rps_wall / serial_rps_wall,
        parity ? "true" : "false");
    std::fclose(f);
    std::printf("# wrote %s\n", path);
  }
  return parity && speedup_ok ? 0 : 1;
}
