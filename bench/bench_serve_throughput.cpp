// Serving throughput: serial request loop vs the src/serve continuous
// batching scheduler on the same prompt set, reported as requests/sec.
//
// Two numbers per path, following the repo's Table-II convention (see
// eval/harness.hpp): raw single-core WALL clock, and the serving-latency
// MODEL — the paper's regime, where batch-1 GPU decoding is
// memory-bandwidth-bound, one speculative step costs one weight-streaming
// forward pass, and a batched step shares that pass across the whole
// batch.  Under the model, serial cost is (total steps) x t_step while the
// batched scheduler costs (ticks) x t_step: continuous batching advances
// every in-flight request in one shared tick, which is exactly where
// vLLM-style serving gets its throughput.  Wall clock additionally scales
// with --workers on multi-core hosts.
//
// A third pass reruns the batched scheduler with the prompt-prefix KV
// cache (serve::SessionCache over the paged KV arena): the speed prompts
// all share the Alpaca preamble, so later requests adopt the shared
// prefill's pages by reference instead of recomputing it.  The cache and
// arena persist across runs — one cold pass warms them, then WARM passes
// are timed, which is the steady state a long-lived server sits in.  All
// wall floors are judged on medians of within-round ratios (serial,
// batched, and cached run back to back each round) so host-load noise
// cancels instead of inverting thin margins.  The warm pass must show
// fewer prefill positions, beat the
// uncached batched wall clock at batch >= 4 (adopting pages has to be
// cheaper than re-feeding the preamble), AND keep bit-identical
// temperature-0 outputs — caching trades memory for prefill compute,
// never correctness.
//
// A final pair isolates the fused batched forward: the same scheduler at
// ONE worker with and without fusion (one stacked [B, D] x [D, V] scoring
// pass per tick vs per-session matmuls).  At batch >= 4 the fused side
// must win raw single-thread wall clock (>1x) with token-identical
// outputs — the claim that batching amortizes the weight streaming, not
// just the latency model.
//
// Thread sizing: the serial baseline (and the fused/unfused 1t pair) run
// at --compute-threads 1 — the exact pre-PR execution path, reference
// kernels on one thread.  The batched and cached passes run with the
// compute-kernel layer engaged (VSD_COMPUTE_THREADS, default
// max(2, hardware)): blocked GEMM kernels, the pool-partitioned drivers,
// and the scheduler's concurrent head passes where the hardware has cores
// for them.  That pair is the bench's headline: `speedup_wall` compares
// the full serving stack against the pre-PR serial loop and must exceed
// 1.0 at batch >= 4 — model-level speedups have to show up on the wall
// clock.  Tokens are asserted identical across all of it.
//
// Knobs: VSD_PROMPTS (>= 8 enforced), VSD_WORKERS (min(4, hardware)),
// VSD_BATCH (4), VSD_CACHE (16 warm entries), VSD_COMPUTE_THREADS, plus
// the usual training-scale knobs; `--json out.json` writes the ledger row.
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "common/metrics.hpp"
#include "nn/kv_arena.hpp"
#include "nn/parallel.hpp"
#include "serve/check_stage.hpp"
#include "serve/request_queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/session_cache.hpp"

using namespace vsd;
using namespace vsd::bench;

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Median of a sample of per-round wall-clock ratios.  The speedup floors
// are judged on medians of WITHIN-round ratios rather than ratios of
// cross-round minima: adjacent runs in one round see the same host load,
// so the ratio cancels noise that best-of-N minima taken in different
// load windows do not — on a busy shared core the minima can land
// seconds apart and invert a thin (~1.1x) but real margin.
double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace

int main(int argc, char** argv) {
  Scale scale = Scale::from_env();
  scale.prompts = std::max(8, scale.prompts);  // acceptance floor
  // Workers sized to the hardware: parking four OS threads on one core is
  // how the ledger once recorded a 0.97x wall "speedup".
  const int workers = eval::env_int("VSD_WORKERS", std::min(4, nn::hardware_threads()));
  const int batch = eval::env_int("VSD_BATCH", 4);
  const int cache_cap = eval::env_int("VSD_CACHE", 16);
  // Timed decode passes cost well under a second each against minutes of
  // training, so extra rounds are nearly free — and the speedup floors
  // are medians over per-round ratios, so more rounds directly tightens
  // the estimate on a noisy shared host (best-of-2 minima, the old
  // scheme, wobbled enough to flip the >1x floors outright).
  const int timed_rounds = std::max(1, eval::env_int("VSD_BENCH_ROUNDS", 6));
  // The batched passes run with the compute pool sized to the hardware
  // (identical tokens either way; on a single-core host that resolves to
  // the serial reference path, so nothing is oversubscribed).
  const int compute_threads =
      eval::env_int("VSD_COMPUTE_THREADS", nn::hardware_threads());
  scale.print("Serving throughput — serial loop vs continuous batching");
  std::printf(
      "# serve shape: workers=%d batch=%d prompts=%d cache=%d compute-threads=%d"
      " (hardware %d)\n",
      workers, batch, scale.prompts, cache_cap, compute_threads,
      nn::hardware_threads());

  const Workbench wb = Workbench::build(scale);
  const eval::TrainedSystem sys =
      wb.train(spec::Method::Ours, /*encoder_decoder=*/false, 1.0, scale);
  const spec::Decoder dec(*sys.model);
  nn::set_compute_threads(1);  // pre-PR serial path for baseline + t_step
  const double t_step = dec.measure_step_seconds(64);

  // The same admission path `vsd serve` uses, at temperature 0 so the
  // batched results must be token-identical to the serial loop.
  const auto prompt_texts = eval::make_speed_prompts(scale.prompts, scale.seed + 17);
  const int n = static_cast<int>(prompt_texts.size());
  std::vector<serve::Request> requests;
  requests.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    spec::DecodeConfig base;
    base.max_new_tokens = 220;
    eval::PreparedRequest prep =
        eval::prepare_request(sys, prompt_texts[static_cast<std::size_t>(i)], base);
    serve::Request req;
    req.id = static_cast<std::uint64_t>(i);
    req.prompt_ids = std::move(prep.prompt_ids);
    req.config = prep.config;
    req.seed = scale.seed + static_cast<std::uint64_t>(i);
    requests.push_back(std::move(req));
  }

  // --- serial loop: one request at a time --------------------------------
  // An untimed warm-up decode first (the first pass through a fresh
  // process is consistently slower — pages, allocator, branch history),
  // then a sweep helper the main timing loop below interleaves with the
  // batched passes: this baseline anchors every speedup the ledger
  // reports, so it must sample the same load windows as its rivals.
  std::vector<spec::DecodeResult> serial(static_cast<std::size_t>(n));
  {
    Rng rng(requests[0].seed);
    (void)dec.speculative(requests[0].prompt_ids, requests[0].config, rng);
  }
  long serial_steps = 0;
  long serial_prefill = 0;
  double serial_wall = 1e30;
  const auto run_serial_sweep = [&] {
    nn::set_compute_threads(1);  // the exact pre-PR serial path
    const auto t_serial = Clock::now();
    serial_steps = 0;
    serial_prefill = 0;
    for (int i = 0; i < n; ++i) {
      Rng rng(requests[static_cast<std::size_t>(i)].seed);
      serial[static_cast<std::size_t>(i)] =
          dec.speculative(requests[static_cast<std::size_t>(i)].prompt_ids,
                          requests[static_cast<std::size_t>(i)].config, rng);
      serial_steps += serial[static_cast<std::size_t>(i)].steps;
      serial_prefill += serial[static_cast<std::size_t>(i)].prefill_positions;
    }
    const double wall = since(t_serial);
    serial_wall = std::min(serial_wall, wall);
    return wall;
  };

  // --- batched: the serving stack (queue + scheduler + pool) -------------
  // `active_checks` is empty for every pass except the check-overhead pass
  // at the end — an empty stage list leaves the scheduler on its unchecked
  // fast path, so the timed passes above are unaffected.
  std::vector<serve::CheckStage> active_checks;
  const auto run_serving = [&](int run_workers, bool fuse,
                               serve::SessionCache* cache,
                               const std::shared_ptr<nn::KvArena>& arena,
                               std::vector<spec::DecodeResult>& out) {
    serve::RequestQueue queue(static_cast<std::size_t>(std::max(1, batch)));
    std::thread producer([&] {
      for (const serve::Request& req : requests) {
        serve::Request copy = req;
        if (!queue.push(std::move(copy))) break;
      }
      queue.close();
    });
    serve::Scheduler scheduler(*sys.model, queue,
                               {.workers = run_workers,
                                .batch = batch,
                                .fuse = fuse,
                                .cache = cache,
                                .kv_arena = arena,
                                .checks = active_checks});
    const serve::ServeStats stats =
        scheduler.run([&](const serve::Request& req, spec::DecodeResult r) {
          out[req.id] = std::move(r);
        });
    producer.join();
    return stats;
  };
  // --- cached setup: the prompt-prefix KV cache + its arena --------------
  // The cache AND the paged arena its entries live in outlive the runs, so
  // warm passes adopt same-arena pages by reference (O(pages) refcount
  // bumps) exactly like a long-lived server.  The arena is sized with the
  // scheduler's own derived-cap formula.
  serve::SessionCache cache(
      {.capacity = static_cast<std::size_t>(std::max(1, cache_cap))});
  const auto shared_arena = [&] {
    const nn::ModelConfig& cfg = sys.model->config();
    nn::KvArenaOptions ao;
    // Page granularity sized to the traffic, not the default: the speed
    // prompts' template families share ~9-token openings (the BPE folds
    // the Alpaca preamble into ~2 tokens), so 16-position pages never
    // complete a shared page and every adoption copy-on-writes its way to
    // fully private storage.  Quarter-size pages let cluster-mates hold
    // the shared opening pages by refcount, which is what keeps
    // cache_bytes below the flat-snapshot cache this arena replaced.
    ao.page = 4;
    const long per_seq = (cfg.max_seq + ao.page - 1) / ao.page;
    ao.max_pages = static_cast<int>(
        std::max<long>(64, static_cast<long>(batch) + cache_cap + 8) * per_seq);
    return std::make_shared<nn::KvArena>(cfg.n_layers, cfg.d_model, cfg.max_seq,
                                         ao);
  }();
  // --- serial, batched (uncached), and warm cached, interleaved ----------
  // The batched pass is the headline wall number; the warm cached pass
  // must beat it, and both are judged against the serial baseline.  Best
  // of several rounds per side, alternating serial/batched/cached inside
  // each round so a host load spike lands on every side alike instead of
  // sinking whichever section it overlapped (outputs are identical by
  // construction, which the parity block below asserts).
  std::vector<spec::DecodeResult> batched(static_cast<std::size_t>(n));
  std::vector<spec::DecodeResult> cached(static_cast<std::size_t>(n));
  // Cold cached pass first: every prompt misses and its prefill is
  // captured into the cache (untimed for the headline — it matches the
  // uncached pass plus capture overhead).
  nn::set_compute_threads(compute_threads);
  serve::ServeStats cstats =
      run_serving(workers, true, &cache, shared_arena, cached);
  const serve::ServeStats cstats_cold = cstats;
  serve::ServeStats stats{};
  bool have_warm = false;
  std::vector<double> wall_ratios;       // serial_r / batched_r, per round
  std::vector<double> cached_ratios;     // warm_r / batched_r, per round
  for (int round = 0; round < timed_rounds; ++round) {
    const double serial_r = run_serial_sweep();
    nn::set_compute_threads(compute_threads);
    double batched_r = 0.0;
    if (round == 0) {
      stats = run_serving(workers, true, nullptr, nullptr, batched);
      batched_r = stats.wall_seconds;
    } else {
      std::vector<spec::DecodeResult> scratch(static_cast<std::size_t>(n));
      const serve::ServeStats b2 =
          run_serving(workers, true, nullptr, nullptr, scratch);
      batched_r = b2.wall_seconds;
      if (b2.wall_seconds < stats.wall_seconds) stats = b2;
    }
    std::vector<spec::DecodeResult> warm(static_cast<std::size_t>(n));
    const serve::ServeStats w =
        run_serving(workers, true, &cache, shared_arena, warm);
    wall_ratios.push_back(serial_r / std::max(batched_r, 1e-12));
    cached_ratios.push_back(w.wall_seconds / std::max(batched_r, 1e-12));
    if (!have_warm || w.wall_seconds < cstats.wall_seconds) {
      cstats = w;
      cached = std::move(warm);
      have_warm = true;
    }
  }
  const serve::SessionCacheStats cache_stats = cache.stats();

  // --- fused vs unfused at ONE worker: the single-core wall-clock claim --
  // The latency model already credits a tick as one shared pass; this pair
  // isolates what fusing the logits matmuls buys in raw single-thread wall
  // clock, with the thread pool held at one worker — and the compute pool
  // at one thread — on both sides so only the batching of the
  // [B, D] x [D, V] scoring differs.  This pair has the thinnest margin
  // in the ledger (~1.1x), so it gets twice the rounds, interleaved AND
  // alternating which side goes first each round — a load spike or a
  // slow drift then hits both sides alike instead of whichever side
  // happened to own that slice of wall clock.
  nn::set_compute_threads(1);
  std::vector<spec::DecodeResult> unfused_1t(static_cast<std::size_t>(n));
  std::vector<spec::DecodeResult> fused_1t(static_cast<std::size_t>(n));
  serve::ServeStats ustats = run_serving(1, false, nullptr, nullptr, unfused_1t);
  serve::ServeStats fstats = run_serving(1, true, nullptr, nullptr, fused_1t);
  std::vector<double> fused_ratios;  // unfused_r / fused_r, per round
  fused_ratios.push_back(ustats.wall_seconds /
                         std::max(fstats.wall_seconds, 1e-12));
  for (int round = 1; round < 2 * timed_rounds; ++round) {
    std::vector<spec::DecodeResult> scratch(static_cast<std::size_t>(n));
    double u_r = 0.0;
    double f_r = 0.0;
    const auto time_unfused = [&] {
      const serve::ServeStats u2 =
          run_serving(1, false, nullptr, nullptr, scratch);
      u_r = u2.wall_seconds;
      if (u2.wall_seconds < ustats.wall_seconds) ustats = u2;
    };
    const auto time_fused = [&] {
      const serve::ServeStats f2 =
          run_serving(1, true, nullptr, nullptr, scratch);
      f_r = f2.wall_seconds;
      if (f2.wall_seconds < fstats.wall_seconds) fstats = f2;
    };
    if (round % 2 == 0) {
      time_unfused();
      time_fused();
    } else {
      time_fused();
      time_unfused();
    }
    fused_ratios.push_back(u_r / std::max(f_r, 1e-12));
  }

  // --- check stages: `--check lint,elab` overhead on the batched path ----
  // One more batched pass with BOTH registry stages installed, exactly as
  // `vsd serve --check lint,elab` wires them: each completed request's
  // tokens are decoded, flat-linted (L0xx/L1xx), then elaborated through
  // the hierarchical L2xx dataflow passes on the shared pool while
  // decoding continues.  The ledger records what the whole pipeline costs
  // as a fraction of the run's wall clock (checks overlap decoding, so the
  // frac is check CPU time over serving wall time) with a ceiling
  // assertion — analysing a few hundred tokens must stay a rounding error
  // next to decoding them — plus per-stage cost rows and the T=0 parity
  // the stages guarantee: checks observe results, they never gate or
  // reorder token output.
  {
    std::string check_err;
    active_checks = serve::parse_check_stages(
        "lint,elab",
        [&](const spec::DecodeResult& r) { return sys.tokenizer.decode(r.ids); },
        check_err);
    if (!check_err.empty()) {
      std::fprintf(stderr, "check stage registry: %s\n", check_err.c_str());
      return 1;
    }
  }
  nn::set_compute_threads(compute_threads);
  std::vector<spec::DecodeResult> checked(static_cast<std::size_t>(n));
  const serve::ServeStats kstats =
      run_serving(workers, true, nullptr, nullptr, checked);
  active_checks.clear();
  const double check_total_s =
      kstats.check.mean() * static_cast<double>(kstats.check.count);
  const double check_overhead_frac =
      check_total_s / std::max(kstats.wall_seconds, 1e-12);
  bool check_all = kstats.checks_pass + kstats.checks_fail == n;
  for (const serve::CheckStageStats& st : kstats.check_stages) {
    check_all = check_all && st.pass + st.fail == n;
  }
  // Ceiling: the whole check pipeline may cost at most 15% of serving wall
  // clock at bench scale (in practice it is well under 1%; the slack
  // absorbs noisy shared hosts without ever letting a quadratic pass sneak
  // in).
  const bool check_ok = check_all && check_overhead_frac <= 0.15;

  bool parity = true;
  bool cached_parity = true;
  bool fused_parity = true;
  bool check_parity = true;
  for (int i = 0; i < n; ++i) {
    parity = parity && batched[static_cast<std::size_t>(i)].ids ==
                           serial[static_cast<std::size_t>(i)].ids;
    cached_parity = cached_parity && cached[static_cast<std::size_t>(i)].ids ==
                                         serial[static_cast<std::size_t>(i)].ids;
    fused_parity = fused_parity &&
                   fused_1t[static_cast<std::size_t>(i)].ids ==
                       serial[static_cast<std::size_t>(i)].ids &&
                   unfused_1t[static_cast<std::size_t>(i)].ids ==
                       serial[static_cast<std::size_t>(i)].ids;
    check_parity = check_parity && checked[static_cast<std::size_t>(i)].ids ==
                                       serial[static_cast<std::size_t>(i)].ids;
  }

  // Per-request wall-latency quantiles.  The serving passes carry theirs in
  // ServeStats (enqueue -> complete through the queue + scheduler); the
  // serial loop has no queue, so each request's latency is its own decode
  // wall time, folded through the same histogram type for like-for-like
  // quantile extraction.
  obs::Histogram serial_lat_hist;
  for (int i = 0; i < n; ++i) {
    serial_lat_hist.record(serial[static_cast<std::size_t>(i)].wall_seconds);
  }
  const obs::HistogramStats serial_lat = serial_lat_hist.stats();
  const obs::HistogramStats batched_lat = stats.latency;
  const obs::HistogramStats cached_lat = cstats.latency;

  const double serial_model_s = static_cast<double>(serial_steps) * t_step;
  const double batched_model_s = static_cast<double>(stats.ticks) * t_step;
  const double cached_model_s = static_cast<double>(cstats.ticks) * t_step;
  const double serial_rps_model = n / std::max(serial_model_s, 1e-12);
  const double batched_rps_model = n / std::max(batched_model_s, 1e-12);
  const double cached_rps_model = n / std::max(cached_model_s, 1e-12);
  const double serial_rps_wall = n / std::max(serial_wall, 1e-12);
  const double batched_rps_wall = n / std::max(stats.wall_seconds, 1e-12);
  const double cached_rps_wall = n / std::max(cstats.wall_seconds, 1e-12);

  std::printf("\n%-8s %10s %12s %14s %14s %10s\n", "Path", "steps", "wall (s)",
              "req/s (model)", "req/s (wall)", "prefill");
  std::printf("%-8s %10ld %12.3f %14.2f %14.2f %10ld\n", "serial", serial_steps,
              serial_wall, serial_rps_model, serial_rps_wall, serial_prefill);
  std::printf("%-8s %10ld %12.3f %14.2f %14.2f %10ld\n", "batched", stats.ticks,
              stats.wall_seconds, batched_rps_model, batched_rps_wall,
              stats.prefill_positions);
  std::printf("%-8s %10ld %12.3f %14.2f %14.2f %10ld\n", "cached", cstats.ticks,
              cstats.wall_seconds, cached_rps_model, cached_rps_wall,
              cstats.prefill_positions);
  std::printf("%-8s %10ld %12.3f %14s %14.2f %10ld\n", "1t-raw", ustats.ticks,
              ustats.wall_seconds, "-",
              n / std::max(ustats.wall_seconds, 1e-12),
              ustats.prefill_positions);
  std::printf("%-8s %10ld %12.3f %14s %14.2f %10ld\n", "1t-fuse", fstats.ticks,
              fstats.wall_seconds, "-",
              n / std::max(fstats.wall_seconds, 1e-12),
              fstats.prefill_positions);
  // The acceptance floor this bench exists to guard: at the advertised
  // shape (batch >= 4) continuous batching must deliver >= 2x requests/sec
  // under the latency model.  Narrower batches (a user knob) note a missed
  // floor without failing the run.
  const double speedup_model = batched_rps_model / serial_rps_model;
  // Wall speedups are medians of within-round ratios (see median() above):
  // each round times serial, batched, and warm-cached back to back, so the
  // per-round ratio sees one load window, not two.
  const double speedup_wall = median(wall_ratios);
  const bool speedup_ok = batch < 4 || speedup_model >= 2.0;
  // The wall floor this PR exists for: with the compute-kernel layer
  // engaged, batched serving must beat the pre-PR serial loop in real
  // time, not just under the latency model.
  const bool wall_ok = batch < 4 || speedup_wall > 1.0;
  const char* speedup_note = "";
  if (!speedup_ok) {
    speedup_note = "; speedup FLOOR (>=2x at batch>=4) FAILED";
  } else if (speedup_model < 2.0) {
    speedup_note = "; note: below the 2x floor (only enforced at batch>=4)";
  }
  // The prefix cache's floors: on shared-preamble prompts the warm cached
  // pass must prime strictly fewer prefill positions AND, at the
  // advertised batch, beat the uncached batched wall clock — adopting
  // refcounted arena pages has to be cheaper than re-feeding the preamble,
  // or the cache is dead weight.  Identical outputs throughout.
  const bool prefill_reduced = cstats.prefill_positions < stats.prefill_positions;
  const bool cached_ok = batch < 4 || median(cached_ratios) <= 1.0;
  const double prefill_saved_frac =
      stats.prefill_positions > 0
          ? 1.0 - static_cast<double>(cstats.prefill_positions) /
                      static_cast<double>(stats.prefill_positions)
          : 0.0;
  // The fused forward's acceptance floor: at the advertised batch the
  // stacked [B, D] x [D, V] pass must beat per-session matmuls in raw
  // single-thread wall clock (>1x), with token-identical outputs.
  const double fused_speedup_wall = median(fused_ratios);
  const bool fused_ok = batch < 4 || fused_speedup_wall > 1.0;
  std::printf(
      "\nspeedup: %.2fx (model), %.2fx (wall, compute-threads=%d); parity at "
      "T=0: %s%s%s\n",
      speedup_model, speedup_wall, compute_threads, parity ? "PASS" : "FAIL",
      speedup_note,
      wall_ok ? "" : "; wall SPEEDUP FLOOR (>1x at batch>=4) FAILED");
  std::printf(
      "fused forward: %.3fs -> %.3fs single-thread wall (%.2fx, %ld rows in "
      "%ld passes); fused parity at T=0: %s%s\n",
      ustats.wall_seconds, fstats.wall_seconds, fused_speedup_wall,
      fstats.fused_rows, fstats.fused_passes, fused_parity ? "PASS" : "FAIL",
      fused_ok ? "" : "; fused SPEEDUP FLOOR (>1x at batch>=4) FAILED");
  std::printf(
      "prefix cache: %ld -> %ld prefill positions (%.1f%% saved), "
      "%ld hits / %ld misses / %ld evictions; cached parity at T=0: %s%s%s\n",
      stats.prefill_positions, cstats.prefill_positions,
      100.0 * prefill_saved_frac, cache_stats.hits, cache_stats.misses,
      cache_stats.evictions, cached_parity ? "PASS" : "FAIL",
      prefill_reduced ? "" : "; prefill REDUCTION FLOOR FAILED",
      cached_ok ? "" : "; cached WALL FLOOR (<= batched at batch>=4) FAILED");
  std::printf(
      "kv arena: page=%d pages_total=%zu shared=%zu cow_cloned=%ld "
      "bytes=%zu (cold wall %.3fs -> warm %.3fs)\n",
      cstats.kv.page, cstats.kv.pages_total, cstats.kv.pages_shared,
      cstats.kv.pages_cow_cloned, cstats.kv.bytes, cstats_cold.wall_seconds,
      cstats.wall_seconds);
  std::printf(
      "latency p50/p95/p99 (s): serial %.3f/%.3f/%.3f, "
      "batched %.3f/%.3f/%.3f, cached %.3f/%.3f/%.3f\n",
      serial_lat.p50, serial_lat.p95, serial_lat.p99, batched_lat.p50,
      batched_lat.p95, batched_lat.p99, cached_lat.p50, cached_lat.p95,
      cached_lat.p99);
  std::printf(
      "check stages (lint,elab): %d pass / %d fail over %d requests, %.4fs "
      "checking in %.3fs serving wall (overhead %.2f%%); checked parity at "
      "T=0: %s%s%s\n",
      kstats.checks_pass, kstats.checks_fail, n, check_total_s,
      kstats.wall_seconds, 100.0 * check_overhead_frac,
      check_parity ? "PASS" : "FAIL",
      check_all ? "" : "; check COVERAGE (one outcome per request) FAILED",
      check_overhead_frac <= 0.15 ? ""
                                  : "; check OVERHEAD CEILING (15%) FAILED");
  for (const serve::CheckStageStats& st : kstats.check_stages) {
    std::printf("  stage %-5s: %d pass / %d fail, %.4fs total "
                "(p50 %.5fs, p99 %.5fs per request)\n",
                st.name.c_str(), st.pass, st.fail,
                st.latency.mean() * static_cast<double>(st.latency.count),
                st.latency.p50, st.latency.p99);
  }

  if (const char* path = json_out_path(argc, argv)) {
    std::FILE* f = open_json(path, "bench_serve_throughput", scale);
    std::fprintf(
        f,
        "  \"n_prompts\": %d,\n  \"workers\": %d,\n  \"compute_threads\": %d,\n"
        "  \"batch\": %d,\n"
        "  \"cache_capacity\": %d,\n"
        "  \"t_step_seconds\": %.6e,\n"
        "  \"serial\": {\"steps\": %ld, \"wall_s\": %.4f, "
        "\"requests_per_sec_model\": %.3f, \"requests_per_sec_wall\": %.3f, "
        "\"prefill_positions\": %ld},\n"
        "  \"batched\": {\"ticks\": %ld, \"max_in_flight\": %d, \"wall_s\": %.4f, "
        "\"requests_per_sec_model\": %.3f, \"requests_per_sec_wall\": %.3f, "
        "\"prefill_positions\": %ld},\n"
        "  \"cached\": {\"ticks\": %ld, \"max_in_flight\": %d, \"wall_s\": %.4f, "
        "\"cold_wall_s\": %.4f, "
        "\"requests_per_sec_model\": %.3f, \"requests_per_sec_wall\": %.3f, "
        "\"prefill_positions\": %ld, \"cached_positions\": %ld, "
        "\"cache_hits\": %ld, \"cache_misses\": %ld, \"cache_evictions\": %ld, "
        "\"cache_entries\": %zu, \"cache_bytes\": %zu, "
        "\"kv_arena\": {\"page\": %d, \"page_bytes\": %zu, "
        "\"pages_total\": %zu, \"pages_shared\": %zu, \"pages_free\": %zu, "
        "\"pages_cow_cloned\": %ld, \"bytes\": %zu}},\n"
        "  \"unfused_1t\": {\"ticks\": %ld, \"wall_s\": %.4f},\n"
        "  \"fused_1t\": {\"ticks\": %ld, \"wall_s\": %.4f, "
        "\"fused_rows\": %ld, \"fused_passes\": %ld},\n"
        "  \"fused_speedup_wall_1t\": %.3f,\n"
        "  \"speedup_model\": %.3f,\n  \"speedup_wall\": %.3f,\n"
        "  \"prefill_saved_frac\": %.4f,\n"
        "  \"cached_le_batched_wall\": %s,\n"
        "  \"parity_temp0\": %s,\n  \"cached_parity_temp0\": %s,\n"
        "  \"fused_parity_temp0\": %s,\n"
        "  \"check\": {\"stages\": \"lint,elab\", \"pass\": %d, \"fail\": %d, "
        "\"wall_s\": %.4f, \"total_s\": %.4f, \"p50_s\": %.5f, "
        "\"p99_s\": %.5f},\n"
        "  \"check_overhead_frac\": %.4f,\n"
        "  \"check_parity_temp0\": %s,\n",
        n, workers, compute_threads, batch, cache_cap, t_step, serial_steps,
        serial_wall,
        serial_rps_model, serial_rps_wall, serial_prefill, stats.ticks,
        stats.max_in_flight, stats.wall_seconds, batched_rps_model,
        batched_rps_wall, stats.prefill_positions, cstats.ticks,
        cstats.max_in_flight, cstats.wall_seconds, cstats_cold.wall_seconds,
        cached_rps_model,
        cached_rps_wall, cstats.prefill_positions, cstats.cached_positions,
        cache_stats.hits, cache_stats.misses, cache_stats.evictions,
        cache_stats.entries, cache_stats.bytes, cstats.kv.page,
        cstats.kv.page_bytes, cstats.kv.pages_total, cstats.kv.pages_shared,
        cstats.kv.pages_free, cstats.kv.pages_cow_cloned, cstats.kv.bytes,
        ustats.ticks,
        ustats.wall_seconds, fstats.ticks, fstats.wall_seconds,
        fstats.fused_rows, fstats.fused_passes, fused_speedup_wall,
        speedup_model, speedup_wall, prefill_saved_frac,
        cstats.wall_seconds <= stats.wall_seconds ? "true" : "false",
        parity ? "true" : "false", cached_parity ? "true" : "false",
        fused_parity ? "true" : "false", kstats.checks_pass,
        kstats.checks_fail, kstats.wall_seconds, check_total_s,
        kstats.check.p50, kstats.check.p99, check_overhead_frac,
        check_parity ? "true" : "false");
    // Per-stage cost rows: how the check budget splits between the flat
    // linter and the elaboration-backed dataflow passes.
    std::fprintf(f, "  \"check_stages\": [");
    for (std::size_t i = 0; i < kstats.check_stages.size(); ++i) {
      const serve::CheckStageStats& st = kstats.check_stages[i];
      std::fprintf(
          f,
          "%s{\"stage\": \"%s\", \"pass\": %d, \"fail\": %d, "
          "\"total_s\": %.4f, \"p50_s\": %.5f, \"p99_s\": %.5f}",
          i == 0 ? "" : ", ", st.name.c_str(), st.pass, st.fail,
          st.latency.mean() * static_cast<double>(st.latency.count),
          st.latency.p50, st.latency.p99);
    }
    std::fprintf(f, "],\n");
    std::fprintf(
        f,
        "  \"latency\": {"
        "\"serial\": {\"p50_s\": %.4f, \"p95_s\": %.4f, \"p99_s\": %.4f}, "
        "\"batched\": {\"p50_s\": %.4f, \"p95_s\": %.4f, \"p99_s\": %.4f}, "
        "\"cached\": {\"p50_s\": %.4f, \"p95_s\": %.4f, \"p99_s\": %.4f}}\n}\n",
        serial_lat.p50, serial_lat.p95, serial_lat.p99, batched_lat.p50,
        batched_lat.p95, batched_lat.p99, cached_lat.p50, cached_lat.p95,
        cached_lat.p99);
    std::fclose(f);
    std::printf("# wrote %s\n", path);
  }
  return parity && cached_parity && fused_parity && check_parity &&
                 speedup_ok && wall_ok && prefill_reduced && cached_ok &&
                 fused_ok && check_ok
             ? 0
             : 1;
}
