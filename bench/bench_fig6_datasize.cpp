// Fig. 6 reproduction: pass@5 (Function and Syntax, both benchmarks) as a
// function of training-data size for the encoder-decoder (CodeT5p-like)
// architecture, comparing Ours / Medusa / NTP.
#include "bench_common.hpp"

using namespace vsd;
using namespace vsd::bench;

int main() {
  const Scale scale = Scale::from_env();
  scale.print("Fig. 6 — pass@5 vs training-data size (CodeT5p-like)");
  const Workbench wb = Workbench::build(scale);

  const auto rtllm = eval::make_from_dataset(wb.dataset, scale.problems,
                                             eval::BenchStyle::RtllmLike,
                                             scale.seed + 101);
  const auto vgen = eval::make_from_dataset(wb.dataset, scale.problems,
                                            eval::BenchStyle::VgenLike,
                                            scale.seed + 202);

  eval::QualityOptions qopts;
  qopts.n_samples = scale.samples;
  qopts.temperatures = {0.4f};

  const std::vector<double> fractions =
      eval::env_int("VSD_FULL", 0) != 0 ? std::vector<double>{0.25, 0.5, 0.75, 1.0}
                                        : std::vector<double>{0.25, 1.0};
  const spec::Method methods[3] = {spec::Method::Ours, spec::Method::Medusa,
                                   spec::Method::NTP};

  std::printf("\n%-9s %-8s | %18s | %18s\n", "", "", "Function pass@5", "Syntax pass@5");
  std::printf("%-9s %-8s | %8s %9s | %8s %9s\n", "fraction", "method", "RTLLM",
              "VGen", "RTLLM", "VGen");
  for (const double frac : fractions) {
    for (int m = 0; m < 3; ++m) {
      const eval::TrainedSystem sys = wb.train(methods[m], /*enc_dec=*/true, frac, scale);
      const eval::BenchScores r = eval::evaluate_quality(sys, rtllm, qopts);
      const eval::BenchScores v = eval::evaluate_quality(sys, vgen, qopts);
      std::printf("%-9.2f %-8s | %7.2f%% %8.2f%% | %7.2f%% %8.2f%%\n", frac,
                  spec::method_name(methods[m]), pct(r.func_pass_at_k[1]),
                  pct(v.func_pass_at_k[1]), pct(r.syn_pass_at_k[1]),
                  pct(v.syn_pass_at_k[1]));
    }
  }
  std::printf("\n# Fig. 6 shape: Ours curve above both baselines at every data size;\n"
              "# all curves trend upward with more data.\n");
  return 0;
}
