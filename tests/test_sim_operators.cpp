// Parameterised operator-semantics sweeps: each case compiles a tiny
// module around one expression, simulates it, and checks the result —
// validating the full lexer->parser->elaborator->interpreter chain against
// IEEE 1364 semantics for every operator the corpus can emit.
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "vlog/parser.hpp"

namespace vsd::sim {
namespace {

struct ExprCase {
  const char* expr;       // expression over inputs a (8b), b (8b), c (1b)
  int out_width;          // declared output width
  std::uint64_t a, b, c;  // stimulus
  const char* expected;   // msb-first expected bits of y
};

class OperatorSweep : public ::testing::TestWithParam<ExprCase> {};

TEST_P(OperatorSweep, EvaluatesPerIeee1364) {
  const ExprCase& tc = GetParam();
  std::string src = "module m(input [7:0] a, input [7:0] b, input c, output [";
  src += std::to_string(tc.out_width - 1);
  src += ":0] y);\n  assign y = ";
  src += tc.expr;
  src += ";\nendmodule";
  vlog::ParseResult pr = vlog::parse(src);
  ASSERT_TRUE(pr.ok) << pr.error << "\n" << src;
  ElabResult er = elaborate(
      std::shared_ptr<const vlog::SourceUnit>(std::move(pr.unit)), "m");
  ASSERT_TRUE(er.ok) << er.error;
  Simulation sim(std::move(er));
  sim.poke("a", Value::from_uint(tc.a, 8));
  sim.poke("b", Value::from_uint(tc.b, 8));
  sim.poke("c", Value::from_uint(tc.c, 1));
  sim.settle();
  EXPECT_EQ(sim.peek("y").to_bit_string(), tc.expected)
      << "expr: " << tc.expr << " a=" << tc.a << " b=" << tc.b;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, OperatorSweep,
    ::testing::Values(
        ExprCase{"a + b", 8, 200, 100, 0, "00101100"},      // 300 mod 256 = 44
        ExprCase{"a + b", 9, 200, 100, 0, "100101100"},     // ctx width keeps carry
        ExprCase{"a - b", 8, 5, 7, 0, "11111110"},          // wraps to 254
        ExprCase{"a * b", 8, 20, 13, 0, "00000100"},        // 260 mod 256 = 4
        ExprCase{"a / b", 8, 100, 7, 0, "00001110"},        // 14
        ExprCase{"a % b", 8, 100, 7, 0, "00000010"},        // 2
        ExprCase{"a ** 2", 8, 5, 0, 0, "00011001"},         // 25
        ExprCase{"-a", 8, 1, 0, 0, "11111111"}));

INSTANTIATE_TEST_SUITE_P(
    Bitwise, OperatorSweep,
    ::testing::Values(
        ExprCase{"a & b", 8, 0b11001100, 0b10101010, 0, "10001000"},
        ExprCase{"a | b", 8, 0b11001100, 0b10101010, 0, "11101110"},
        ExprCase{"a ^ b", 8, 0b11001100, 0b10101010, 0, "01100110"},
        ExprCase{"a ^~ b", 8, 0b11001100, 0b10101010, 0, "10011001"},
        ExprCase{"~a", 8, 0b11001100, 0, 0, "00110011"}));

INSTANTIATE_TEST_SUITE_P(
    Reductions, OperatorSweep,
    ::testing::Values(
        ExprCase{"&a", 1, 0xFF, 0, 0, "1"},
        ExprCase{"&a", 1, 0xFE, 0, 0, "0"},
        ExprCase{"|a", 1, 0x00, 0, 0, "0"},
        ExprCase{"|a", 1, 0x10, 0, 0, "1"},
        ExprCase{"^a", 1, 0b1110, 0, 0, "1"},
        ExprCase{"^a", 1, 0b1111, 0, 0, "0"},
        ExprCase{"~&a", 1, 0xFF, 0, 0, "0"},
        ExprCase{"~|a", 1, 0x00, 0, 0, "1"},
        ExprCase{"~^a", 1, 0b1111, 0, 0, "1"}));

INSTANTIATE_TEST_SUITE_P(
    Comparison, OperatorSweep,
    ::testing::Values(
        ExprCase{"a == b", 1, 42, 42, 0, "1"},
        ExprCase{"a != b", 1, 42, 41, 0, "1"},
        ExprCase{"a < b", 1, 3, 5, 0, "1"},
        ExprCase{"a <= b", 1, 5, 5, 0, "1"},
        ExprCase{"a > b", 1, 5, 3, 0, "1"},
        ExprCase{"a >= b", 1, 2, 3, 0, "0"},
        ExprCase{"a === b", 1, 7, 7, 0, "1"},
        ExprCase{"a !== b", 1, 7, 9, 0, "1"}));

INSTANTIATE_TEST_SUITE_P(
    Logical, OperatorSweep,
    ::testing::Values(
        ExprCase{"a && b", 1, 4, 0, 0, "0"},
        ExprCase{"a && b", 1, 4, 9, 0, "1"},
        ExprCase{"a || b", 1, 0, 0, 0, "0"},
        ExprCase{"a || b", 1, 0, 1, 0, "1"},
        ExprCase{"!a", 1, 0, 0, 0, "1"},
        ExprCase{"!a", 1, 3, 0, 0, "0"}));

INSTANTIATE_TEST_SUITE_P(
    Shifts, OperatorSweep,
    ::testing::Values(
        ExprCase{"a << 2", 8, 0b00000111, 0, 0, "00011100"},
        ExprCase{"a >> 2", 8, 0b11100000, 0, 0, "00111000"},
        ExprCase{"a << b", 8, 1, 3, 0, "00001000"},
        ExprCase{"a >> b", 8, 0x80, 7, 0, "00000001"},
        ExprCase{"a >>> 1", 8, 0x80, 0, 0, "01000000"}));  // unsigned >>> == >>

INSTANTIATE_TEST_SUITE_P(
    Structure, OperatorSweep,
    ::testing::Values(
        ExprCase{"{a[3:0], b[3:0]}", 8, 0x0A, 0x05, 0, "10100101"},
        ExprCase{"{4{c}}", 4, 0, 0, 1, "1111"},
        ExprCase{"{2{a[1:0]}}", 4, 0b10, 0, 0, "1010"},
        ExprCase{"a[4]", 1, 0b00010000, 0, 0, "1"},
        ExprCase{"a[5:2]", 4, 0b00111100, 0, 0, "1111"},
        ExprCase{"a[b[2:0]+:2]", 2, 0b00011000, 3, 0, "11"},
        ExprCase{"a[b[2:0]-:2]", 2, 0b00011000, 4, 0, "11"},
        ExprCase{"c ? a : b", 8, 0xAA, 0x55, 1, "10101010"},
        ExprCase{"c ? a : b", 8, 0xAA, 0x55, 0, "01010101"}));

// --- x-propagation semantics ------------------------------------------------

TEST(SimX, ArithmeticWithXInputIsAllX) {
  auto pr = vlog::parse("module m(input [3:0] a, output [3:0] y); assign y = a + 4'd1; endmodule");
  ASSERT_TRUE(pr.ok);
  ElabResult er = elaborate(std::shared_ptr<const vlog::SourceUnit>(std::move(pr.unit)), "m");
  ASSERT_TRUE(er.ok);
  Simulation sim(std::move(er));
  // a stays x at time zero -> y must be all-x, not garbage.
  sim.settle();
  EXPECT_TRUE(sim.peek("y").is_all_x());
}

TEST(SimX, IfWithXConditionTakesElse) {
  auto pr = vlog::parse(R"(
    module m(input c, output reg [1:0] y);
      always @(*)
        if (c) y = 2'd1;
        else y = 2'd2;
    endmodule)");
  ASSERT_TRUE(pr.ok);
  ElabResult er = elaborate(std::shared_ptr<const vlog::SourceUnit>(std::move(pr.unit)), "m");
  ASSERT_TRUE(er.ok);
  Simulation sim(std::move(er));
  sim.poke("c", Value::from_uint(1, 1));
  sim.settle();
  EXPECT_EQ(sim.peek("y").to_uint(), 1u);
  sim.poke("c", Value(1, Logic::X));  // 1 -> x transition re-triggers @(*)
  sim.settle();
  EXPECT_EQ(sim.peek("y").to_uint(), 2u);  // x is not true => else branch
}

TEST(SimX, XIndexWriteIsDropped) {
  auto pr = vlog::parse(R"(
    module m(input [2:0] i, input t, output reg [7:0] y);
      initial y = 8'hFF;
      always @(t) y[i] = 1'b0;
    endmodule)");
  ASSERT_TRUE(pr.ok);
  ElabResult er = elaborate(std::shared_ptr<const vlog::SourceUnit>(std::move(pr.unit)), "m");
  ASSERT_TRUE(er.ok);
  Simulation sim(std::move(er));
  sim.poke("t", Value::from_uint(1, 1));  // i is x -> write silently dropped
  sim.settle();
  EXPECT_EQ(sim.peek("y").to_uint(), 0xFFu);
}

// --- declared-range conventions ------------------------------------------------

TEST(SimRange, AscendingRangeSelects) {
  auto pr = vlog::parse(R"(
    module m(input [0:7] a, output y0, output [0:3] hi);
      assign y0 = a[0];
      assign hi = a[0:3];
    endmodule)");
  ASSERT_TRUE(pr.ok);
  ElabResult er = elaborate(std::shared_ptr<const vlog::SourceUnit>(std::move(pr.unit)), "m");
  ASSERT_TRUE(er.ok);
  Simulation sim(std::move(er));
  // For [0:7], index 0 is the MSB (physical offset 7).
  Value a(8, Logic::Zero);
  a.set_bit(7, Logic::One);  // a[0] = 1
  sim.poke("a", a);
  sim.settle();
  EXPECT_EQ(sim.peek("y0").to_uint(), 1u);
}

TEST(SimRange, NonZeroLsbRange) {
  auto pr = vlog::parse(R"(
    module m(input [11:4] a, output y);
      assign y = a[4];
    endmodule)");
  ASSERT_TRUE(pr.ok);
  ElabResult er = elaborate(std::shared_ptr<const vlog::SourceUnit>(std::move(pr.unit)), "m");
  ASSERT_TRUE(er.ok);
  Simulation sim(std::move(er));
  sim.poke("a", Value::from_uint(0b00000001, 8));  // physical bit 0 == a[4]
  sim.settle();
  EXPECT_EQ(sim.peek("y").to_uint(), 1u);
}

}  // namespace
}  // namespace vsd::sim
