// Tests for the hierarchical dataflow analyzer (vlog/dataflow) — the
// elaboration-backed VSD-L2xx pass family: one positive (the pass fires on
// a minimal offending design) and one negative (a clean twin stays silent)
// per pass, pinned to the stable codes the CLI (`vsd lint --elab`), the
// serving check stage (`--check elab`), and CI gates key on — plus the
// corpus gate: every generated training template and the CLI's built-in
// example must elaborate L2xx-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.hpp"
#include "data/templates.hpp"
#include "vlog/diagnostics.hpp"
#include "vlog/dataflow.hpp"

namespace vsd::vlog {
namespace {

int count_code(const LintResult& r, const std::string& code) {
  return static_cast<int>(
      std::count_if(r.diagnostics().begin(), r.diagnostics().end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

bool has_code(const LintResult& r, const std::string& code) {
  return count_code(r, code) > 0;
}

const Diagnostic& find_code(const LintResult& r, const std::string& code) {
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.code == code) return d;
  }
  ADD_FAILURE() << "no diagnostic with code " << code;
  static const Diagnostic none{};
  return none;
}

bool any_l2xx(const LintResult& r) {
  return std::any_of(r.diagnostics().begin(), r.diagnostics().end(),
                     [](const Diagnostic& d) {
                       return d.code.rfind("VSD-L2", 0) == 0;
                     });
}

// --- baseline ----------------------------------------------------------------

TEST(Dataflow, CleanHierarchyHasNoFindings) {
  const LintResult r = elab_lint_source(
      "module leaf(input a, input b, output y);\n"
      "  assign y = a & b;\n"
      "endmodule\n"
      "module top(input p, input q, output z);\n"
      "  leaf u0 (.a(p), .b(q), .y(z));\n"
      "endmodule\n");
  EXPECT_TRUE(r.clean()) << diagnostics_json(r.diagnostics());
  EXPECT_TRUE(elab_ok(
      "module m(input a, output y);\n  assign y = ~a;\nendmodule\n"));
}

TEST(Dataflow, ParseFailureYieldsL001) {
  const LintResult r = elab_lint_source("module m(; endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L001"));
  EXPECT_FALSE(elab_ok("module m(; endmodule\n"));
}

// --- L200: combinational loop ------------------------------------------------

TEST(Dataflow, L200CombLoopThroughContinuousAssigns) {
  const LintResult r = elab_lint_source(
      "module loop_top (input a, output y);\n"
      "  wire p, q;\n"
      "  assign p = q & a;\n"
      "  assign q = p | a;\n"
      "  assign y = q;\n"
      "endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L200")) << diagnostics_json(r.diagnostics());
  const Diagnostic& d = find_code(r, "VSD-L200");
  EXPECT_EQ(d.severity, Severity::Error);
  // The message carries the cycle path through both nets.
  EXPECT_NE(d.message.find("->"), std::string::npos);
  EXPECT_NE(d.message.find("p"), std::string::npos);
  EXPECT_NE(d.message.find("q"), std::string::npos);
  EXPECT_FALSE(elab_ok(
      "module loop_top (input a, output y);\n"
      "  wire p, q;\n"
      "  assign p = q & a;\n"
      "  assign q = p | a;\n"
      "  assign y = q;\n"
      "endmodule\n"));
}

TEST(Dataflow, L200FiresOnCombAlwaysSelfDependence) {
  const LintResult r = elab_lint_source(
      "module m (input a, output reg y);\n"
      "  always @(*) y = y ^ a;\n"
      "endmodule\n");
  EXPECT_TRUE(has_code(r, "VSD-L200")) << diagnostics_json(r.diagnostics());
}

TEST(Dataflow, L200SilentOnRippleCarryGenerate) {
  // carry[i+1] = f(carry[i]) loops at signal granularity; the per-bit
  // verification must clear it.
  const LintResult r = elab_lint_source(
      "module ripple #(parameter W = 8) (input [W-1:0] a, input [W-1:0] b,"
      " output [W-1:0] s);\n"
      "  wire [W:0] c;\n"
      "  assign c[0] = 1'b0;\n"
      "  genvar i;\n"
      "  generate\n"
      "    for (i = 0; i < W; i = i + 1) begin : g\n"
      "      assign s[i] = a[i] ^ b[i] ^ c[i];\n"
      "      assign c[i+1] = (a[i] & b[i]) | (c[i] & (a[i] ^ b[i]));\n"
      "    end\n"
      "  endgenerate\n"
      "endmodule\n");
  EXPECT_FALSE(has_code(r, "VSD-L200")) << diagnostics_json(r.diagnostics());
}

// --- L201: elaboration failure -----------------------------------------------

TEST(Dataflow, L201UnknownModuleFailsElaboration) {
  const LintResult r = elab_lint_source(
      "module top (input a, output y);\n"
      "  missing u0 (.a(a), .y(y));\n"
      "endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L201")) << diagnostics_json(r.diagnostics());
  EXPECT_EQ(find_code(r, "VSD-L201").severity, Severity::Error);
}

TEST(Dataflow, L201SilentWhenHierarchyElaborates) {
  const LintResult r = elab_lint_source(
      "module inner (input a, output y);\n  assign y = a;\nendmodule\n"
      "module top (input a, output y);\n"
      "  inner u0 (.a(a), .y(y));\n"
      "endmodule\n");
  EXPECT_FALSE(has_code(r, "VSD-L201")) << diagnostics_json(r.diagnostics());
}

// --- L210 / L211: clock-domain crossings -------------------------------------

TEST(Dataflow, L210CdcThroughCombLogic) {
  const LintResult r = elab_lint_source(
      "module cdc_top (input clk_a, input clk_b, input rst_n, input d,"
      " output reg q_b);\n"
      "  reg r_a;\n"
      "  always @(posedge clk_a or negedge rst_n) begin\n"
      "    if (!rst_n) r_a <= 1'b0;\n"
      "    else r_a <= d;\n"
      "  end\n"
      "  wire mix = r_a & d;\n"
      "  always @(posedge clk_b or negedge rst_n) begin\n"
      "    if (!rst_n) q_b <= 1'b0;\n"
      "    else q_b <= mix;\n"
      "  end\n"
      "endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L210")) << diagnostics_json(r.diagnostics());
  EXPECT_EQ(find_code(r, "VSD-L210").severity, Severity::Warning);
}

TEST(Dataflow, L211DirectForeignSampleWithoutSynchronizer) {
  const LintResult r = elab_lint_source(
      "module l211_top (input clk_a, input clk_b, input d, output reg q);\n"
      "  reg r_a;\n"
      "  always @(posedge clk_a) r_a <= d;\n"
      "  always @(posedge clk_b) q <= r_a;\n"
      "endmodule\n");
  EXPECT_TRUE(has_code(r, "VSD-L211")) << diagnostics_json(r.diagnostics());
}

TEST(Dataflow, TwoFlopSynchronizerIsExempt) {
  // s1 samples r_a directly but is the front flop of a proper 2-flop
  // synchronizer: a pure copy whose fanout is same-domain pure copies.
  const LintResult r = elab_lint_source(
      "module sync_top (input clk_a, input clk_b, input d, output reg q);\n"
      "  reg r_a, s1, s2;\n"
      "  always @(posedge clk_a) r_a <= d;\n"
      "  always @(posedge clk_b) begin\n"
      "    s1 <= r_a;\n"
      "    s2 <= s1;\n"
      "  end\n"
      "  always @(posedge clk_b) q <= s2;\n"
      "endmodule\n");
  EXPECT_FALSE(has_code(r, "VSD-L210")) << diagnostics_json(r.diagnostics());
  EXPECT_FALSE(has_code(r, "VSD-L211")) << diagnostics_json(r.diagnostics());
}

TEST(Dataflow, SameDomainPipelineIsSilent) {
  const LintResult r = elab_lint_source(
      "module pipe (input clk, input d, output reg q);\n"
      "  reg a, b;\n"
      "  always @(posedge clk) begin\n"
      "    a <= d;\n"
      "    b <= a & d;\n"
      "    q <= b;\n"
      "  end\n"
      "endmodule\n");
  EXPECT_FALSE(has_code(r, "VSD-L210")) << diagnostics_json(r.diagnostics());
  EXPECT_FALSE(has_code(r, "VSD-L211")) << diagnostics_json(r.diagnostics());
}

// --- L220 / L221 / L222: port contracts --------------------------------------

TEST(Dataflow, L220PortWidthMismatchAfterParameterFolding) {
  const LintResult r = elab_lint_source(
      "module child (input [7:0] in8, output [7:0] out8);\n"
      "  assign out8 = in8;\n"
      "endmodule\n"
      "module port_top (input [3:0] narrow, output [7:0] wide);\n"
      "  wire [7:0] w;\n"
      "  child u0 (.in8(narrow), .out8(w));\n"
      "  assign wide = w;\n"
      "endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L220")) << diagnostics_json(r.diagnostics());
  EXPECT_EQ(find_code(r, "VSD-L220").severity, Severity::Warning);
}

TEST(Dataflow, L220SilentWhenWidthsAgree) {
  const LintResult r = elab_lint_source(
      "module child (input [7:0] in8, output [7:0] out8);\n"
      "  assign out8 = in8;\n"
      "endmodule\n"
      "module port_top (input [7:0] a, output [7:0] y);\n"
      "  child u0 (.in8(a), .out8(y));\n"
      "endmodule\n");
  EXPECT_FALSE(has_code(r, "VSD-L220")) << diagnostics_json(r.diagnostics());
}

TEST(Dataflow, L221InstanceOutputNetDoubleDriven) {
  const LintResult r = elab_lint_source(
      "module drv (output o);\n"
      "  assign o = 1'b1;\n"
      "endmodule\n"
      "module l221_top (input a, output y);\n"
      "  wire n;\n"
      "  drv u0 (.o(n));\n"
      "  assign n = a;\n"
      "  assign y = n;\n"
      "endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L221")) << diagnostics_json(r.diagnostics());
  EXPECT_EQ(find_code(r, "VSD-L221").severity, Severity::Error);
}

TEST(Dataflow, L221SilentWhenOutputNetHasOneDriver) {
  const LintResult r = elab_lint_source(
      "module drv (output o);\n"
      "  assign o = 1'b1;\n"
      "endmodule\n"
      "module top (output y);\n"
      "  wire n;\n"
      "  drv u0 (.o(n));\n"
      "  assign y = n;\n"
      "endmodule\n");
  EXPECT_FALSE(has_code(r, "VSD-L221")) << diagnostics_json(r.diagnostics());
}

TEST(Dataflow, L222DanglingInstanceInput) {
  const LintResult r = elab_lint_source(
      "module leaf (input a, input b, output y);\n"
      "  assign y = a & b;\n"
      "endmodule\n"
      "module l222_top (input p, output q);\n"
      "  leaf u0 (.a(p), .y(q));\n"
      "endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L222")) << diagnostics_json(r.diagnostics());
  const Diagnostic& d = find_code(r, "VSD-L222");
  EXPECT_EQ(d.severity, Severity::Warning);
  EXPECT_NE(d.message.find("b"), std::string::npos);
}

TEST(Dataflow, L222SilentWhenAllInputsConnected) {
  const LintResult r = elab_lint_source(
      "module leaf (input a, input b, output y);\n"
      "  assign y = a & b;\n"
      "endmodule\n"
      "module top (input p, input r, output q);\n"
      "  leaf u0 (.a(p), .b(r), .y(q));\n"
      "endmodule\n");
  EXPECT_FALSE(has_code(r, "VSD-L222")) << diagnostics_json(r.diagnostics());
}

// --- L230: comb read-before-write --------------------------------------------

TEST(Dataflow, L230ReadBeforeBlockingWrite) {
  const LintResult r = elab_lint_source(
      "module l230_top (input [1:0] sel, input a, output reg y);\n"
      "  reg t;\n"
      "  always @(*) begin\n"
      "    y = t;\n"
      "    t = a & sel[0];\n"
      "  end\n"
      "endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L230")) << diagnostics_json(r.diagnostics());
  EXPECT_EQ(find_code(r, "VSD-L230").severity, Severity::Warning);
}

TEST(Dataflow, L230SilentWhenWriteComesFirst) {
  const LintResult r = elab_lint_source(
      "module m (input [1:0] sel, input a, output reg y);\n"
      "  reg t;\n"
      "  always @(*) begin\n"
      "    t = a & sel[0];\n"
      "    y = t;\n"
      "  end\n"
      "endmodule\n");
  EXPECT_FALSE(has_code(r, "VSD-L230")) << diagnostics_json(r.diagnostics());
}

// --- L240: register not reset in an async-reset block ------------------------

TEST(Dataflow, L240RegisterMissingFromResetBranch) {
  const LintResult r = elab_lint_source(
      "module l240_top (input clk, input rst_n, input d, output reg q,"
      " output reg u);\n"
      "  always @(posedge clk or negedge rst_n) begin\n"
      "    if (!rst_n) begin\n"
      "      q <= 1'b0;\n"
      "    end else begin\n"
      "      q <= d;\n"
      "      u <= ~d;\n"
      "    end\n"
      "  end\n"
      "endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L240")) << diagnostics_json(r.diagnostics());
  const Diagnostic& d = find_code(r, "VSD-L240");
  EXPECT_EQ(d.severity, Severity::Warning);
  EXPECT_EQ(d.signal, "u");
}

TEST(Dataflow, L240SilentWhenEveryRegisterResets) {
  const LintResult r = elab_lint_source(
      "module m (input clk, input rst_n, input d, output reg q,"
      " output reg u);\n"
      "  always @(posedge clk or negedge rst_n) begin\n"
      "    if (!rst_n) begin\n"
      "      q <= 1'b0;\n"
      "      u <= 1'b0;\n"
      "    end else begin\n"
      "      q <= d;\n"
      "      u <= ~d;\n"
      "    end\n"
      "  end\n"
      "endmodule\n");
  EXPECT_FALSE(has_code(r, "VSD-L240")) << diagnostics_json(r.diagnostics());
}

// --- API shape ---------------------------------------------------------------

TEST(Dataflow, TopSelectsTheAnalyzedRoot) {
  // With --top naming the clean module, the loop module is never
  // elaborated and the result is clean; with the loop module as top the
  // L200 fires.
  const std::string src =
      "module clean_m (input a, output y);\n  assign y = a;\nendmodule\n"
      "module loop_m (input a, output y);\n"
      "  wire p, q;\n"
      "  assign p = q & a;\n"
      "  assign q = p | a;\n"
      "  assign y = q;\n"
      "endmodule\n";
  EXPECT_TRUE(elab_ok(src, "clean_m"));
  EXPECT_FALSE(elab_ok(src, "loop_m"));
}

TEST(Dataflow, DiagnosticsCarryModuleContext) {
  const LintResult r = elab_lint_source(
      "module loop_top (input a, output y);\n"
      "  wire p, q;\n"
      "  assign p = q & a;\n"
      "  assign q = p | a;\n"
      "  assign y = q;\n"
      "endmodule\n");
  ASSERT_TRUE(has_code(r, "VSD-L200"));
  EXPECT_EQ(find_code(r, "VSD-L200").module, "loop_top");
  EXPECT_GT(find_code(r, "VSD-L200").line, 0);
}

// --- corpus gate -------------------------------------------------------------
// Every training template the data layer generates — and the CLI's
// built-in example — must elaborate with zero L2xx findings at every
// severity, or the serving `--check elab` stage would reject the model's
// own training distribution.

TEST(DataflowCorpus, GeneratedTemplatesAreElabClean) {
  Rng rng(20240807);
  for (const std::string& family : data::TemplateLibrary::families()) {
    for (int i = 0; i < 4; ++i) {
      const data::RtlSample s =
          data::TemplateLibrary::generate(family, rng, data::Pool::Train);
      const LintResult r = elab_lint_source(s.code, s.module_name);
      EXPECT_FALSE(any_l2xx(r))
          << "family " << family << " sample " << i << " module "
          << s.module_name << ":\n"
          << s.code << "\n"
          << diagnostics_json(r.diagnostics());
    }
  }
}

TEST(DataflowCorpus, EvalPoolTemplatesAreElabClean) {
  Rng rng(77);
  for (const std::string& family : data::TemplateLibrary::families()) {
    const data::RtlSample s =
        data::TemplateLibrary::generate(family, rng, data::Pool::Eval);
    const LintResult r = elab_lint_source(s.code, s.module_name);
    EXPECT_FALSE(any_l2xx(r)) << "family " << family << ":\n"
                              << s.code << "\n"
                              << diagnostics_json(r.diagnostics());
  }
}

TEST(DataflowCorpus, BuiltinExampleIsElabClean) {
  // The same source `vsd lint` analyzes when run with no input.
  const char* builtin =
      "module data_register (\n"
      "    input clk,\n"
      "    input [3:0] data_in,\n"
      "    output reg [3:0] data_out\n"
      ");\n"
      "    always @(posedge clk) begin\n"
      "        data_out <= data_in;\n"
      "    end\n"
      "endmodule\n";
  const LintResult r = elab_lint_source(builtin);
  EXPECT_FALSE(any_l2xx(r)) << diagnostics_json(r.diagnostics());
  EXPECT_TRUE(elab_ok(builtin));
}

}  // namespace
}  // namespace vsd::vlog
