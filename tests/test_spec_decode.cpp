// Tests for typical acceptance (Eq. 1), the decoders, and the fragment
// integrity check — using a model overfit on a tiny corpus so speculative
// behaviour is deterministic.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "spec/decode.hpp"
#include "spec/trainer.hpp"

namespace vsd::spec {
namespace {

TEST(Acceptance, HighProbTokenAccepted) {
  TypicalAcceptance acc;
  std::vector<float> probs = {0.9f, 0.05f, 0.05f};
  EXPECT_TRUE(acc.accepts(probs, 0));
  EXPECT_FALSE(acc.accepts(probs, 1));
}

TEST(Acceptance, UniformDistributionLoosensThreshold) {
  TypicalAcceptance acc;
  // High entropy => threshold = delta * exp(-H) gets small; even modest
  // probabilities pass.
  std::vector<float> probs(50, 0.02f);
  EXPECT_TRUE(acc.accepts(probs, 7));  // 0.02 > 0.3*exp(-ln50)=0.006
}

TEST(Acceptance, PeakedDistributionRejectsTail) {
  TypicalAcceptance acc;
  std::vector<float> probs = {0.98f, 0.01f, 0.01f};
  // Low entropy => threshold ~ min(0.09, 0.3*exp(-0.1)) ~ 0.09.
  EXPECT_FALSE(acc.accepts(probs, 2));
}

TEST(Acceptance, EntropyOfUniform) {
  std::vector<float> probs(8, 0.125f);
  EXPECT_NEAR(TypicalAcceptance::entropy(probs), std::log(8.0), 1e-5);
}

TEST(Softmax, NormalisesAndRespectsTemperature) {
  std::vector<float> logits = {1.0f, 2.0f, 3.0f};
  const auto p1 = softmax(logits, 1.0f);
  double sum = 0.0;
  for (const float p : p1) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-5);
  const auto p_cold = softmax(logits, 0.25f);
  EXPECT_GT(p_cold[2], p1[2]);  // lower temperature sharpens
}

TEST(Softmax, EmptyLogitsRejectedAndSingletonIsOne) {
  // Empty spans used to read logits[0] — UB; now a contract error.
  EXPECT_THROW(softmax(std::span<const float>(), 1.0f), Error);
  const std::vector<float> one = {2.5f};
  const auto p = softmax(one, 0.7f);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_FLOAT_EQ(p[0], 1.0f);
}

TEST(PickToken, EmptyLogitsRejectedAndSingletonPicked) {
  Rng rng(5);
  EXPECT_THROW(pick_token(std::span<const float>(), 0.0f, rng), Error);
  EXPECT_THROW(pick_token(std::span<const float>(), 1.0f, rng), Error);
  const std::vector<float> one = {-3.0f};
  EXPECT_EQ(pick_token(one, 0.0f, rng), 0);  // greedy
  EXPECT_EQ(pick_token(one, 1.0f, rng), 0);  // sampling
}

TEST(PickToken, GreedyIsArgmax) {
  Rng rng(1);
  std::vector<float> logits = {0.1f, 5.0f, 1.0f};
  EXPECT_EQ(pick_token(logits, 0.0f, rng), 1);
}

TEST(PickToken, SamplingCoversSupport) {
  Rng rng(2);
  std::vector<float> logits = {2.0f, 2.0f};
  int counts[2] = {0, 0};
  for (int i = 0; i < 200; ++i) ++counts[pick_token(logits, 1.0f, rng)];
  EXPECT_GT(counts[0], 40);
  EXPECT_GT(counts[1], 40);
}

// --- end-to-end decoding on an overfit model -------------------------------

struct Fixture {
  nn::ModelConfig cfg;
  std::unique_ptr<nn::TransformerModel> model;
  std::vector<int> prompt;
  std::vector<int> code;

  explicit Fixture(Method method) {
    cfg.vocab = 48;
    cfg.d_model = 32;
    cfg.n_layers = 2;
    cfg.n_heads = 2;
    cfg.d_ff = 64;
    cfg.max_seq = 96;
    cfg.n_medusa_heads = method == Method::NTP ? 0 : 6;
    model = std::make_unique<nn::TransformerModel>(cfg, 11);

    // A synthetic "marked" token sequence: fragments of 2-3 tokens each
    // terminated by kFrag, ending in EOS.
    const int F = text::Tokenizer::kFrag;
    prompt = {10, 11, 12};
    code = {20, 21, F, 22, F, 23, 24, 25, F, 26, 27, F, text::Tokenizer::kEos};

    TrainConfig tc;
    tc.method = method;
    tc.epochs = 60;
    tc.lr = 3e-3f;
    tc.warmup_steps = 5;
    tc.max_seq = 96;
    Trainer trainer(*model, tc);
    EncodedExample ex;
    ex.prompt_ids = prompt;
    ex.code_ids = code;
    trainer.fit({ex});
  }

  std::vector<int> full_prompt() const {
    std::vector<int> ids = {text::Tokenizer::kBos};
    ids.insert(ids.end(), prompt.begin(), prompt.end());
    return ids;
  }
};

TEST(DecodeE2E, NtpReproducesMemorisedCode) {
  Fixture f(Method::NTP);
  Decoder dec(*f.model);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  Rng rng(3);
  const DecodeResult r = dec.ntp(f.full_prompt(), cfg, rng);
  EXPECT_TRUE(r.hit_eos);
  const std::vector<int> expected(f.code.begin(), f.code.end() - 1);
  EXPECT_EQ(r.ids, expected);
  EXPECT_EQ(r.steps, static_cast<int>(f.code.size()));  // one step per token
}

TEST(DecodeE2E, SpeculativeMatchesNtpOutputWithFewerSteps) {
  Fixture f(Method::Ours);
  Decoder dec(*f.model);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  cfg.num_heads = 6;
  Rng rng(4);
  const DecodeResult ntp_like = dec.ntp(f.full_prompt(), cfg, rng);
  const DecodeResult spec = dec.speculative(f.full_prompt(), cfg, rng);
  EXPECT_EQ(spec.ids, ntp_like.ids);  // greedy speculative decoding is lossless
  EXPECT_LT(spec.steps, ntp_like.steps);
  EXPECT_GT(spec.mean_accepted(), 1.0);
}

TEST(DecodeE2E, FragmentIntegrityEndsStepsAtBoundaries) {
  Fixture f(Method::Ours);
  Decoder dec(*f.model);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  cfg.num_heads = 6;
  cfg.fragment_integrity = true;
  Rng rng(5);
  const DecodeResult r = dec.speculative(f.full_prompt(), cfg, rng);
  // Every committed burst of >= 2 tokens must end on [FRAG] or EOS.
  std::size_t pos = 0;
  for (const int accepted : r.accepted_per_step) {
    pos += static_cast<std::size_t>(accepted);
    if (accepted >= 2 && pos <= r.ids.size() && pos >= 1) {
      const int last = r.ids[pos - 1];
      // The final step may have been cut by EOS (not present in ids).
      if (pos < r.ids.size()) {
        EXPECT_EQ(last, text::Tokenizer::kFrag)
            << "burst of " << accepted << " not fragment-aligned";
      }
    }
  }
  // Output should still match the memorised sequence.
  const std::vector<int> expected(f.code.begin(), f.code.end() - 1);
  EXPECT_EQ(r.ids, expected);
}

TEST(DecodeE2E, StepAccountingConsistent) {
  Fixture f(Method::Medusa);
  Decoder dec(*f.model);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  cfg.num_heads = 6;
  Rng rng(6);
  const DecodeResult r = dec.speculative(f.full_prompt(), cfg, rng);
  EXPECT_EQ(r.accepted_per_step.size(), static_cast<std::size_t>(r.steps));
  long sum = 0;
  for (const int a : r.accepted_per_step) sum += a;
  // Committed tokens == generated ids (+1 for the consumed EOS).
  EXPECT_GE(sum, static_cast<long>(r.ids.size()));
  EXPECT_GT(r.positions, 0);
}

TEST(DecodeE2E, MultipleCandidatesStillCorrect) {
  Fixture f(Method::Ours);
  Decoder dec(*f.model);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  cfg.num_heads = 6;
  cfg.num_candidates = 3;
  Rng rng(8);
  const DecodeResult r = dec.speculative(f.full_prompt(), cfg, rng);
  const std::vector<int> expected(f.code.begin(), f.code.end() - 1);
  EXPECT_EQ(r.ids, expected);
}

TEST(DecodeE2E, EmptyPromptYieldsEmptyResultNotACrash) {
  // A decoder-only session with no prompt tokens used to die inside
  // InferSession::feed ("feed: empty input"); it now degrades to a clean
  // empty result for both decoders.
  Fixture f(Method::Ours);
  Decoder dec(*f.model);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  cfg.num_heads = 6;
  Rng rng(9);
  const DecodeResult spec = dec.speculative(std::span<const int>(), cfg, rng);
  EXPECT_TRUE(spec.ids.empty());
  EXPECT_EQ(spec.steps, 0);
  EXPECT_EQ(spec.positions, 0);
  EXPECT_FALSE(spec.hit_eos);
  const DecodeResult ntp = dec.ntp(std::span<const int>(), cfg, rng);
  EXPECT_TRUE(ntp.ids.empty());
  EXPECT_EQ(ntp.steps, 0);
}

TEST(DecodeE2E, DegenerateConfigsRejectedAtConstruction) {
  // Bad configs used to survive until the opaque "speculative step
  // accepted nothing" check fired mid-step; now the ctor names the field.
  Fixture f(Method::Ours);
  Decoder dec(*f.model);
  Rng rng(10);
  DecodeConfig bad_candidates;
  bad_candidates.num_candidates = 0;
  EXPECT_THROW(dec.speculative(f.full_prompt(), bad_candidates, rng), Error);
  DecodeConfig bad_budget;
  bad_budget.max_new_tokens = -1;
  EXPECT_THROW(dec.speculative(f.full_prompt(), bad_budget, rng), Error);
  DecodeConfig zero_budget;  // zero is a valid no-op budget, not an error
  zero_budget.max_new_tokens = 0;
  zero_budget.num_heads = 6;
  const DecodeResult r = dec.speculative(f.full_prompt(), zero_budget, rng);
  EXPECT_TRUE(r.ids.empty());
}

TEST(DecodeE2E, PrimedPrefixSessionMatchesUncachedDecode) {
  // The serving prefix-cache path: capture a prompt's prefill, restore it
  // into a fresh session, and decode with only the suffix fed.  Results
  // must be token-identical, and the speculative steps (feed + truncate
  // rollbacks on top of restored rows) must behave exactly as uncached.
  Fixture f(Method::Ours);
  Decoder dec(*f.model);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  cfg.num_heads = 6;
  const std::vector<int> prompt = f.full_prompt();
  Rng rng(11);
  const DecodeResult uncached = dec.speculative(prompt, cfg, rng);
  ASSERT_FALSE(uncached.ids.empty());

  const int prefix = static_cast<int>(prompt.size()) - 1;
  nn::InferSession prefill(*f.model);
  prefill.feed(std::span<const int>(prompt.data(), prefix));
  const nn::KvSnapshot snap = prefill.snapshot(prefix);

  nn::InferSession sess(*f.model);
  sess.restore(snap);
  DecodeSession cached(*f.model, sess, prompt, cfg, Rng(11), prefix);
  while (cached.step()) {
  }
  const DecodeResult r = cached.take_result();
  EXPECT_EQ(r.ids, uncached.ids);
  EXPECT_EQ(r.steps, uncached.steps);
  EXPECT_EQ(r.accepted_per_step, uncached.accepted_per_step);
  EXPECT_EQ(r.hit_eos, uncached.hit_eos);
  // Only the one-token suffix was fed at prime time.
  EXPECT_EQ(r.prefill_positions, 1);
  EXPECT_EQ(uncached.prefill_positions, static_cast<long>(prompt.size()));
  EXPECT_EQ(r.positions, uncached.positions - prefix);
}

TEST(DecodeE2E, RollbackAcrossPageBoundariesKeepsTokenParity) {
  // Speculative verification feeds candidate tokens then truncates the
  // rejects — on a paged KV arena with tiny pages that rollback repeatedly
  // releases and re-allocates pages mid-decode and copy-on-writes shared
  // tails.  Tokens must not move for ANY page size: one page per sequence
  // is the flat layout, so parity across {1, 2, 4} pages vs max_seq is
  // the whole-decode determinism proof.
  Fixture f(Method::Ours);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  cfg.num_heads = 6;
  const std::vector<int> prompt = f.full_prompt();
  const nn::ModelConfig& mc = f.model->config();

  auto decode_with_page = [&](int page) {
    auto arena = std::make_shared<nn::KvArena>(mc.n_layers, mc.d_model,
                                               mc.max_seq,
                                               nn::KvArenaOptions{.page = page});
    nn::InferSession sess(*f.model, arena);
    DecodeSession dec(*f.model, sess, prompt, cfg, Rng(11));
    while (dec.step()) {
    }
    return dec.take_result();
  };

  const DecodeResult flat = decode_with_page(mc.max_seq);
  ASSERT_FALSE(flat.ids.empty());
  for (const int page : {1, 2, 4}) {
    const DecodeResult paged = decode_with_page(page);
    EXPECT_EQ(paged.ids, flat.ids) << "page=" << page;
    EXPECT_EQ(paged.steps, flat.steps) << "page=" << page;
    EXPECT_EQ(paged.accepted_per_step, flat.accepted_per_step);
  }
}

TEST(DecodeE2E, SharedPrefixForkDivergesByCopyOnWrite) {
  // Two decodes forked from ONE shared prefill (the serving cache's hot
  // path): both adopt the same pages by reference, then diverge — each
  // session's first append into the shared tail page clones it, and both
  // decodes must match their independently-prefilled twins token for token.
  Fixture f(Method::Ours);
  DecodeConfig cfg;
  cfg.max_new_tokens = 24;
  cfg.num_heads = 6;
  const std::vector<int> prompt = f.full_prompt();
  const nn::ModelConfig& mc = f.model->config();
  auto arena = std::make_shared<nn::KvArena>(mc.n_layers, mc.d_model, mc.max_seq,
                                             nn::KvArenaOptions{.page = 4});
  const int prefix = static_cast<int>(prompt.size()) - 1;

  nn::InferSession prefill(*f.model, arena);
  prefill.feed(std::span<const int>(prompt.data(), prefix));
  const nn::KvPrefix pre = prefill.share_prefix(prefix);

  auto run_fork = [&](std::uint64_t seed) {
    nn::InferSession sess(*f.model, arena);
    sess.adopt_prefix(pre, prefix);
    DecodeSession dec(*f.model, sess, prompt, cfg, Rng(seed), prefix);
    while (dec.step()) {
    }
    return dec.take_result();
  };
  auto run_flat = [&](std::uint64_t seed) {
    nn::InferSession sess(*f.model, arena);
    DecodeSession dec(*f.model, sess, prompt, cfg, Rng(seed));
    while (dec.step()) {
    }
    return dec.take_result();
  };

  const long cow_before = arena->stats().pages_cow_cloned;
  const DecodeResult fork_a = run_fork(21);
  const DecodeResult fork_b = run_fork(22);
  EXPECT_GE(arena->stats().pages_cow_cloned, cow_before + 1)
      << "diverging from a shared tail page must clone it";
  EXPECT_EQ(fork_a.ids, run_flat(21).ids);
  EXPECT_EQ(fork_b.ids, run_flat(22).ids);
  // The shared prefill pages are still intact for the next fork.
  EXPECT_EQ(pre.len(), prefix);
  for (const int id : pre.pages()) EXPECT_GE(arena->refcount(id), 1);
}

TEST(DecodeE2E, PrimedPrefixValidatesSessionState) {
  Fixture f(Method::Ours);
  DecodeConfig cfg;
  cfg.num_heads = 6;
  const std::vector<int> prompt = f.full_prompt();
  nn::InferSession sess(*f.model);
  // Session length must equal the declared prefix...
  EXPECT_THROW(
      DecodeSession(*f.model, sess, prompt, cfg, Rng(1), /*primed_prefix=*/2),
      Error);
  // ...and the prefix must leave a non-empty suffix to feed.
  sess.reset();
  sess.feed(prompt);
  EXPECT_THROW(DecodeSession(*f.model, sess, prompt, cfg, Rng(1),
                             static_cast<int>(prompt.size())),
               Error);
}

TEST(DecodeE2E, TemperatureValidatedAtConstruction) {
  // softmax divides logits by the temperature; a negative or non-finite
  // value would silently fall into the greedy branch (or worse) instead of
  // sampling.  The session ctor now rejects it with the field named.
  Fixture f(Method::Ours);
  Decoder dec(*f.model);
  Rng rng(12);
  DecodeConfig negative;
  negative.num_heads = 6;
  negative.temperature = -0.5f;
  EXPECT_THROW(dec.speculative(f.full_prompt(), negative, rng), Error);
  DecodeConfig nan_temp;
  nan_temp.num_heads = 6;
  nan_temp.temperature = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(dec.speculative(f.full_prompt(), nan_temp, rng), Error);
  DecodeConfig sampled;  // a genuine sampling temperature still works
  sampled.num_heads = 6;
  sampled.max_new_tokens = 16;
  sampled.temperature = 0.8f;
  const DecodeResult r = dec.speculative(f.full_prompt(), sampled, rng);
  EXPECT_GT(r.steps, 0);
}

// Scores a session's pending request with the model's batched scorers —
// what DecodeSession::step does internally, written out the way an
// external (fused) scorer would.
Scores score_request(const nn::TransformerModel& model, const ScoreRequest& req) {
  Scores s;
  s.lm = model.infer_lm_logits(req.hidden);
  for (int k = 0; k < req.n_heads; ++k) {
    s.heads.push_back(model.infer_head_logits(req.hidden, k));
  }
  return s;
}

TEST(DecodeE2E, ProposeScoreProtocolMatchesStep) {
  // Driving the session through advance()/request()/supply() with external
  // scoring must reproduce step()'s results exactly — the protocol is the
  // same step, merely paused at its scoring points.
  Fixture f(Method::Ours);
  Decoder dec(*f.model);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  cfg.num_heads = 6;
  cfg.fragment_integrity = true;
  Rng rng(13);
  const DecodeResult serial = dec.speculative(f.full_prompt(), cfg, rng);

  nn::InferSession sess(*f.model);
  DecodeSession driven(*f.model, sess, f.full_prompt(), cfg, Rng(13));
  int steps_seen = 0;
  for (;;) {
    const StepState st = driven.advance();
    if (st == StepState::NeedScores) {
      driven.supply(score_request(*f.model, driven.request()));
      continue;
    }
    if (st == StepState::StepDone) {
      ++steps_seen;
      continue;
    }
    break;  // Finished
  }
  const DecodeResult r = driven.take_result();
  EXPECT_EQ(r.ids, serial.ids);
  EXPECT_EQ(r.steps, serial.steps);
  EXPECT_EQ(r.accepted_per_step, serial.accepted_per_step);
  EXPECT_EQ(r.hit_eos, serial.hit_eos);
  EXPECT_EQ(r.positions, serial.positions);
  // StepDone fires once per committed iteration short of the final one.
  EXPECT_EQ(steps_seen, serial.steps - 1);
}

TEST(DecodeE2E, FusedScoringAcrossSessionsIsTokenIdentical) {
  // Two sessions interleaved tick by tick, their pending rows stacked into
  // ONE [B, D] scoring pass per round: outputs must match per-request
  // serial decodes bit for bit (the scoring matmuls are row-independent).
  Fixture f(Method::Ours);
  Decoder dec(*f.model);
  DecodeConfig cfg;
  cfg.max_new_tokens = 32;
  cfg.num_heads = 6;
  const std::vector<std::vector<int>> prompts = {
      f.full_prompt(), {text::Tokenizer::kBos, 11, 12}};
  std::vector<DecodeResult> serial;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    Rng rng(50 + i);
    serial.push_back(dec.speculative(prompts[i], cfg, rng));
  }

  std::vector<std::unique_ptr<nn::InferSession>> sessions;
  sessions.push_back(std::make_unique<nn::InferSession>(*f.model));
  sessions.push_back(std::make_unique<nn::InferSession>(*f.model));
  std::vector<std::unique_ptr<DecodeSession>> live;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    live.push_back(std::make_unique<DecodeSession>(*f.model, *sessions[i],
                                                   prompts[i], cfg, Rng(50 + i)));
  }
  while (live[0]->done() == false || live[1]->done() == false) {
    // One "tick": every live session advances one full speculative step.
    std::vector<DecodeSession*> pending;
    for (auto& s : live) {
      if (s->done()) continue;
      if (s->advance() == StepState::NeedScores) pending.push_back(s.get());
    }
    while (!pending.empty()) {
      // Gather: one stacked base-LM pass over every pending row.
      int rows = 0;
      for (DecodeSession* s : pending) rows += s->request().hidden.rows();
      nn::Tensor all(rows, f.cfg.d_model);
      int off = 0;
      for (DecodeSession* s : pending) {
        const nn::Tensor& h = s->request().hidden;
        std::copy(h.data(), h.data() + h.size(), all.row(off));
        off += h.rows();
      }
      const nn::Tensor lm = f.model->infer_lm_logits(all);
      // Scatter + per-head fused passes over the subset that wants them.
      off = 0;
      std::vector<Scores> scores(pending.size());
      for (std::size_t i = 0; i < pending.size(); ++i) {
        const ScoreRequest& req = pending[i]->request();
        scores[i].lm = nn::Tensor(req.hidden.rows(), f.cfg.vocab);
        std::copy(lm.row(off), lm.row(off + req.hidden.rows() - 1) + lm.cols(),
                  scores[i].lm.data());
        off += req.hidden.rows();
      }
      for (int k = 0; k < cfg.num_heads; ++k) {
        for (std::size_t i = 0; i < pending.size(); ++i) {
          const ScoreRequest& req = pending[i]->request();
          if (req.n_heads > k) {
            scores[i].heads.push_back(f.model->infer_head_logits(req.hidden, k));
          }
        }
      }
      std::vector<DecodeSession*> next;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        pending[i]->supply(std::move(scores[i]));
        if (pending[i]->advance() == StepState::NeedScores) {
          next.push_back(pending[i]);
        }
      }
      pending = std::move(next);
    }
  }
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    const DecodeResult r = live[i]->take_result();
    EXPECT_EQ(r.ids, serial[i].ids) << "request " << i;
    EXPECT_EQ(r.steps, serial[i].steps) << "request " << i;
    EXPECT_EQ(r.accepted_per_step, serial[i].accepted_per_step);
    EXPECT_EQ(r.hit_eos, serial[i].hit_eos);
  }
}

TEST(DecodeE2E, ProtocolMisuseIsRejected) {
  Fixture f(Method::Ours);
  DecodeConfig cfg;
  cfg.num_heads = 6;
  nn::InferSession sess(*f.model);
  DecodeSession session(*f.model, sess, f.full_prompt(), cfg, Rng(1));
  // No pending request yet: request()/supply() are contract errors.
  EXPECT_THROW(session.request(), Error);
  EXPECT_THROW(session.supply(Scores{}), Error);
  ASSERT_EQ(session.advance(), StepState::NeedScores);
  // advance() without scores, double-supply, and shape mismatches.
  EXPECT_THROW(session.advance(), Error);
  Scores wrong_shape;
  wrong_shape.lm = nn::Tensor(1, 3);  // vocab is 48
  EXPECT_THROW(session.supply(std::move(wrong_shape)), Error);
  Scores missing_heads;
  missing_heads.lm = nn::Tensor(1, f.cfg.vocab);
  EXPECT_THROW(session.supply(std::move(missing_heads)), Error);
}

TEST(DecodeE2E, MeasureStepSecondsPositive) {
  Fixture f(Method::NTP);
  Decoder dec(*f.model);
  EXPECT_GT(dec.measure_step_seconds(16, 4), 0.0);
}

TEST(Trainer, LossDecreases) {
  Fixture f(Method::Ours);  // Fixture already trains; retrain and inspect
  nn::ModelConfig cfg = f.cfg;
  nn::TransformerModel fresh(cfg, 21);
  TrainConfig tc;
  tc.method = Method::Ours;
  tc.epochs = 20;
  tc.lr = 3e-3f;
  tc.warmup_steps = 3;
  Trainer trainer(fresh, tc);
  EncodedExample ex;
  ex.prompt_ids = f.prompt;
  ex.code_ids = f.code;
  const TrainStats stats = trainer.fit({ex});
  EXPECT_LT(stats.final_loss, stats.first_loss);
  EXPECT_EQ(stats.steps, 20);
}

TEST(Trainer, SkipsOverlongExamples) {
  nn::ModelConfig cfg;
  cfg.vocab = 16;
  cfg.d_model = 8;
  cfg.n_layers = 1;
  cfg.n_heads = 1;
  cfg.d_ff = 16;
  cfg.max_seq = 32;
  nn::TransformerModel m(cfg, 1);
  TrainConfig tc;
  tc.method = Method::NTP;
  tc.epochs = 1;
  tc.max_seq = 16;
  Trainer trainer(m, tc);
  EncodedExample ok;
  ok.prompt_ids = {5, 6};
  ok.code_ids = {7, 8, text::Tokenizer::kEos};
  EncodedExample huge;
  huge.prompt_ids.assign(30, 5);
  huge.code_ids.assign(30, 6);
  const TrainStats stats = trainer.fit({ok, huge});
  EXPECT_EQ(stats.steps, 1);
  EXPECT_EQ(stats.skipped, 1);
}

}  // namespace
}  // namespace vsd::spec
